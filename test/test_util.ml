open Yasksite_util

let check_float = Alcotest.(check (float 1e-9))

let test_mean () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "singleton" 5.0 (Stats.mean [| 5.0 |])

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.geomean: non-positive entry")
    (fun () -> ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stddev () =
  check_float "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  check_float "constant" 0.0 (Stats.stddev [| 4.0; 4.0; 4.0 |]);
  check_float "singleton" 0.0 (Stats.stddev [| 7.0 |])

let test_median_percentile () =
  check_float "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "median even" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "p0" 1.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] ~p:0.0);
  check_float "p100" 3.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] ~p:100.0);
  check_float "p50 interp" 1.5 (Stats.percentile [| 1.0; 2.0 |] ~p:50.0)

let test_minmax () =
  check_float "min" (-2.0) (Stats.minimum [| 3.0; -2.0; 1.0 |]);
  check_float "max" 3.0 (Stats.maximum [| 3.0; -2.0; 1.0 |])

let test_rel_error () =
  check_float "signed" (-0.5) (Stats.rel_error ~predicted:1.0 ~measured:2.0);
  check_float "abs" 0.5 (Stats.abs_rel_error ~predicted:1.0 ~measured:2.0);
  Alcotest.check_raises "zero measured"
    (Invalid_argument "Stats.rel_error: zero measurement") (fun () ->
      ignore (Stats.rel_error ~predicted:1.0 ~measured:0.0))

let test_kendall () =
  check_float "identical" 1.0
    (Stats.kendall_tau [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
  check_float "reversed" (-1.0)
    (Stats.kendall_tau [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |]);
  check_float "partial" (1.0 /. 3.0)
    (Stats.kendall_tau [| 1.0; 2.0; 3.0 |] [| 1.0; 3.0; 2.0 |])

let test_top1 () =
  Alcotest.(check bool)
    "agree lower" true
    (Stats.top1_agrees ~better_is_lower:true [| 3.0; 1.0; 2.0 |]
       [| 30.0; 10.0; 20.0 |]);
  Alcotest.(check bool)
    "disagree" false
    (Stats.top1_agrees ~better_is_lower:true [| 3.0; 1.0; 2.0 |]
       [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check bool)
    "agree higher" true
    (Stats.top1_agrees ~better_is_lower:false [| 3.0; 1.0; 2.0 |]
       [| 30.0; 10.0; 20.0 |])

let test_linspace () =
  let a = Stats.linspace ~lo:0.0 ~hi:1.0 ~n:5 in
  Alcotest.(check int) "length" 5 (Array.length a);
  check_float "first" 0.0 a.(0);
  check_float "last" 1.0 a.(4);
  check_float "middle" 0.5 a.(2)

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done;
  let c = Prng.create ~seed:8 in
  Alcotest.(check bool)
    "different seed differs" true
    (Prng.int64 (Prng.create ~seed:7) <> Prng.int64 c)

let test_prng_split () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  Alcotest.(check bool) "split independent" true (Prng.int64 a <> Prng.int64 b)

let prng_bounds =
  QCheck.Test.make ~name:"prng int within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let v = Prng.int rng ~bound in
      v >= 0 && v < bound)

let prng_float_unit =
  QCheck.Test.make ~name:"prng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let v = Prng.float rng in
      v >= 0.0 && v < 1.0)

let shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      let rng = Prng.create ~seed in
      Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_table () =
  let t =
    Table.create ~title:"T" ~columns:[ ("name", Table.Left); ("v", Table.Right) ] ()
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains alpha" true
    (Astring_contains.contains s "alpha");
  Alcotest.(check bool) "contains 22" true (Astring_contains.contains s "22");
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_cells () =
  Alcotest.(check string) "cell_f" "3.14" (Table.cell_f ~prec:2 3.14159);
  Alcotest.(check string) "cell_pct" "7.3%" (Table.cell_pct 0.073)

let test_chart_line () =
  let s =
    Chart.line ~title:"t" ~x_label:"x" ~y_label:"y"
      [ { Chart.label = "a"; points = [| (0.0, 0.0); (1.0, 1.0) |] };
        { Chart.label = "b"; points = [| (0.0, 1.0); (1.0, 0.0) |] } ]
  in
  Alcotest.(check bool) "mentions labels" true
    (Astring_contains.contains s "a" && Astring_contains.contains s "b");
  Alcotest.(check bool) "has glyph" true (Astring_contains.contains s "*")

let test_chart_bars () =
  let s = Chart.bars ~title:"b" [ ("one", 1.0); ("two", 2.0) ] in
  Alcotest.(check bool) "contains one" true (Astring_contains.contains s "one");
  Alcotest.check_raises "negative" (Invalid_argument "Chart.bars: negative value")
    (fun () -> ignore (Chart.bars ~title:"b" [ ("x", -1.0) ]))

let test_units () =
  Alcotest.(check string) "bytes" "48 KiB" (Units.bytes 49152);
  Alcotest.(check string) "small bytes" "100 B" (Units.bytes 100);
  Alcotest.(check string) "gbs" "105.0 GB/s" (Units.gbs 105e9);
  Alcotest.(check string) "glups" "1.50 GLUP/s" (Units.glups 1.5e9);
  Alcotest.(check string) "seconds ms" "1.5 ms" (Units.seconds 0.0015)

let qt = QCheck_alcotest.to_alcotest

let base_suite =
  [ Alcotest.test_case "stats mean" `Quick test_mean;
    Alcotest.test_case "stats geomean" `Quick test_geomean;
    Alcotest.test_case "stats stddev" `Quick test_stddev;
    Alcotest.test_case "stats median/percentile" `Quick test_median_percentile;
    Alcotest.test_case "stats min/max" `Quick test_minmax;
    Alcotest.test_case "stats rel error" `Quick test_rel_error;
    Alcotest.test_case "stats kendall tau" `Quick test_kendall;
    Alcotest.test_case "stats top1" `Quick test_top1;
    Alcotest.test_case "stats linspace" `Quick test_linspace;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng split" `Quick test_prng_split;
    qt prng_bounds;
    qt prng_float_unit;
    qt shuffle_is_permutation;
    Alcotest.test_case "table render" `Quick test_table;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "chart line" `Quick test_chart_line;
    Alcotest.test_case "chart bars" `Quick test_chart_bars;
    Alcotest.test_case "units" `Quick test_units ]

let test_kendall_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.kendall_tau: length mismatch") (fun () ->
      ignore (Stats.kendall_tau [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "too short"
    (Invalid_argument "Stats.kendall_tau: need at least two points")
    (fun () -> ignore (Stats.kendall_tau [| 1.0 |] [| 1.0 |]))

let test_units_more () =
  Alcotest.(check string) "gib" "2.0 GiB" (Units.bytes (2 * 1024 * 1024 * 1024));
  Alcotest.(check string) "mib" "1.5 MiB" (Units.bytes (3 * 512 * 1024));
  Alcotest.(check string) "ns" "500 ns" (Units.seconds 5e-7);
  Alcotest.(check string) "us" "12.0 us" (Units.seconds 1.2e-5);
  Alcotest.(check string) "s" "2.50 s" (Units.seconds 2.5);
  Alcotest.(check string) "cy/CL" "12.4 cy/CL" (Units.cy_per_cl 12.44);
  Alcotest.(check string) "gflops" "1.50 GF/s" (Units.gflops 1.5e9)

let test_chart_degenerate () =
  (* A single flat series must not divide by zero. *)
  let s =
    Chart.line ~title:"flat" ~x_label:"x" ~y_label:"y"
      [ { Chart.label = "a"; points = [| (1.0, 5.0) |] } ]
  in
  Alcotest.(check bool) "rendered" true (String.length s > 0);
  Alcotest.check_raises "empty series" (Invalid_argument "Chart.line: no points")
    (fun () ->
      ignore (Chart.line ~title:"t" ~x_label:"x" ~y_label:"y" []));
  let b = Chart.bars ~title:"zeros" [ ("a", 0.0) ] in
  Alcotest.(check bool) "zero bars ok" true (String.length b > 0)

let test_percentile_validation () =
  Alcotest.check_raises "p range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0 |] ~p:101.0));
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

let extra_suite =
  [ Alcotest.test_case "kendall validation" `Quick test_kendall_validation;
    Alcotest.test_case "units more" `Quick test_units_more;
    Alcotest.test_case "chart degenerate" `Quick test_chart_degenerate;
    Alcotest.test_case "percentile validation" `Quick test_percentile_validation ]

let test_mad () =
  check_float "constant" 0.0 (Stats.mad [| 3.0; 3.0; 3.0 |]);
  (* median 3, abs devs [2;1;0;1;2] -> median 1 *)
  check_float "symmetric" 1.0 (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  (* the outlier moves the mean but barely moves the MAD *)
  check_float "outlier-resistant" 1.0
    (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 1000.0 |]);
  check_float "singleton" 0.0 (Stats.mad [| 42.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mad: empty input")
    (fun () -> ignore (Stats.mad [||]))

let test_trimmed_mean () =
  check_float "no trim" 2.0 (Stats.trimmed_mean [| 1.0; 2.0; 3.0 |] ~frac:0.0);
  (* 20% of 5 trims one sample per end: mean of [2;3;4] *)
  check_float "trims both tails" 3.0
    (Stats.trimmed_mean [| 1.0; 2.0; 3.0; 4.0; 1000.0 |] ~frac:0.2);
  (* input order must not matter *)
  check_float "sorted internally" 3.0
    (Stats.trimmed_mean [| 1000.0; 3.0; 1.0; 4.0; 2.0 |] ~frac:0.2);
  (* trimming everything but the median-ish core *)
  check_float "heavy trim keeps middle" 3.0
    (Stats.trimmed_mean [| 0.0; 3.0; 100.0 |] ~frac:0.4);
  Alcotest.check_raises "frac range"
    (Invalid_argument "Stats.trimmed_mean: frac must be in [0, 0.5)")
    (fun () -> ignore (Stats.trimmed_mean [| 1.0 |] ~frac:0.5))

let test_clock_manual () =
  let c = Clock.manual () in
  check_float "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  check_float "advances" 1.75 (Clock.now c);
  let c2 = Clock.manual ~start:10.0 () in
  check_float "custom start" 10.0 (Clock.now c2);
  Alcotest.check_raises "negative delta"
    (Invalid_argument "Clock.advance: negative delta") (fun () ->
      Clock.advance c (-1.0));
  Alcotest.check_raises "system not advanceable"
    (Invalid_argument "Clock.advance: not a manual clock") (fun () ->
      Clock.advance Clock.system 1.0)

let test_clock_of_fun () =
  let n = ref 0.0 in
  let c =
    Clock.of_fun (fun () ->
        n := !n +. 1.0;
        !n)
  in
  check_float "first read" 1.0 (Clock.now c);
  check_float "second read" 2.0 (Clock.now c);
  Alcotest.(check bool) "system clock readable" true
    (Clock.now Clock.system >= 0.0)

let test_gaussian () =
  let a = Prng.create ~seed:11 and b = Prng.create ~seed:11 in
  for _ = 1 to 50 do
    check_float "deterministic" (Prng.gaussian a) (Prng.gaussian b)
  done;
  let rng = Prng.create ~seed:12 in
  let n = 2000 in
  let samples = Array.init n (fun _ -> Prng.gaussian rng) in
  let m = Stats.mean samples and sd = Stats.stddev samples in
  Alcotest.(check bool)
    (Printf.sprintf "mean near 0 (%.3f)" m)
    true
    (abs_float m < 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "stddev near 1 (%.3f)" sd)
    true
    (abs_float (sd -. 1.0) < 0.1);
  Array.iter
    (fun x -> Alcotest.(check bool) "finite" true (Float.is_finite x))
    samples

let robust_suite =
  [ Alcotest.test_case "stats mad" `Quick test_mad;
    Alcotest.test_case "stats trimmed mean" `Quick test_trimmed_mean;
    Alcotest.test_case "clock manual" `Quick test_clock_manual;
    Alcotest.test_case "clock of_fun" `Quick test_clock_of_fun;
    Alcotest.test_case "prng gaussian" `Quick test_gaussian ]

let suite = base_suite @ extra_suite @ robust_suite
