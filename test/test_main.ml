let () =
  Alcotest.run "yasksite"
    [ ("util", Test_util.suite);
      ("arch", Test_arch.suite);
      ("grid", Test_grid.suite);
      ("stencil", Test_stencil.suite);
      ("plan", Test_plan.suite);
      ("codegen", Test_codegen.suite);
      ("cachesim", Test_cachesim.suite);
      ("ecm", Test_ecm.suite);
      ("engine", Test_engine.suite);
      ("faults", Test_faults.suite);
      ("store", Test_store.suite);
      ("tuner", Test_tuner.suite);
      ("parallel", Test_parallel.suite);
      ("ode", Test_ode.suite);
      ("offsite", Test_offsite.suite);
      ("lint", Test_lint.suite);
      ("plan_lint", Test_plan_lint.suite);
      ("native_lint", Test_native_lint.suite);
      ("schedule", Test_schedule.suite);
      ("program", Test_program.suite);
      ("core", Test_core.suite) ]
