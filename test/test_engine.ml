module Grid = Yasksite_grid.Grid
module Machine = Yasksite_arch.Machine
module Hierarchy = Yasksite_cachesim.Hierarchy
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Suite = Yasksite_stencil.Suite
module Gen = Yasksite_stencil.Gen
module Config = Yasksite_ecm.Config
module Sweep = Yasksite_engine.Sweep
module Wavefront = Yasksite_engine.Wavefront
module Measure = Yasksite_engine.Measure
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let make_grid ?(layout = Grid.Linear) ~halo ~dims rng =
  let g = Grid.create ~halo ~layout ~dims () in
  Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
  Grid.halo_dirichlet g 0.25;
  g

(* Run [spec] under two configurations (and layouts) and compare. *)
let schedules_agree ~seed ~variant =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:3 in
  let spec = Gen.spec rng ~rank () in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:12) in
  let src_rng = Prng.create ~seed:(seed + 1000) in
  let a1 = make_grid ~halo ~dims src_rng in
  let src_rng = Prng.create ~seed:(seed + 1000) in
  let layout2 =
    match variant with
    | `Fold ->
        let f = Array.make rank 1 in
        f.(rank - 1) <- 2;
        if rank > 1 then f.(rank - 2) <- 2;
        Grid.Folded f
    | _ -> Grid.Linear
  in
  let a2 = make_grid ~layout:layout2 ~halo ~dims src_rng in
  let o1 = Grid.create ~halo ~dims () in
  let o2 = Grid.create ~halo ~layout:layout2 ~dims () in
  let cfg2 =
    match variant with
    | `Block ->
        let b = Array.map (fun d -> 1 + Prng.int rng ~bound:d) dims in
        b.(0) <- 0;
        Config.v ~block:b ()
    | `Fold ->
        let f = match layout2 with Grid.Folded f -> f | _ -> assert false in
        Config.v ~fold:f ()
    | `Trace -> Config.default
  in
  let trace =
    match variant with
    | `Trace -> Some (Hierarchy.create Machine.test_chip)
    | _ -> None
  in
  let _ = Sweep.run spec ~inputs:[| a1 |] ~output:o1 in
  let _ = Sweep.run ?trace ~config:cfg2 spec ~inputs:[| a2 |] ~output:o2 in
  Grid.max_abs_diff o1 o2 = 0.0

let blocked_equals_naive =
  QCheck.Test.make ~name:"blocked schedule bit-reproduces naive" ~count:60
    QCheck.small_int (fun seed -> schedules_agree ~seed ~variant:`Block)

let folded_equals_naive =
  QCheck.Test.make ~name:"folded layout bit-reproduces naive" ~count:60
    QCheck.small_int (fun seed -> schedules_agree ~seed ~variant:`Fold)

let traced_equals_naive =
  QCheck.Test.make ~name:"tracing does not change results" ~count:30
    QCheck.small_int (fun seed -> schedules_agree ~seed ~variant:`Trace)

let wavefront_equals_sweeps =
  QCheck.Test.make ~name:"wavefront bit-reproduces repeated sweeps" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let rank = 2 + Prng.int rng ~bound:2 in
      let spec = Gen.spec rng ~rank () in
      let info = Analysis.of_spec spec in
      let halo = Analysis.halo info in
      let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:8) in
      let steps = 1 + Prng.int rng ~bound:6 in
      let wf = 2 + Prng.int rng ~bound:3 in
      let mk seed = make_grid ~halo ~dims (Prng.create ~seed) in
      let a1 = mk (seed + 1) and b1 = mk (seed + 2) in
      let a2 = mk (seed + 1) and b2 = mk (seed + 2) in
      let f1, _ = Wavefront.steps spec ~a:a1 ~b:b1 ~steps in
      let f2, _ =
        Wavefront.steps ~config:(Config.v ~wavefront:wf ()) spec ~a:a2 ~b:b2
          ~steps
      in
      Grid.max_abs_diff f1 f2 = 0.0)

let test_wavefront_depth1_is_sweep () =
  let rng = Prng.create ~seed:5 in
  let spec = Suite.resolve_defaults Suite.heat_2d_5pt in
  let halo = [| 1; 1 |] and dims = [| 9; 11 |] in
  let a = make_grid ~halo ~dims rng in
  let b = Grid.create ~halo ~dims () in
  Grid.halo_dirichlet b 0.25;
  let reference = Grid.create ~halo ~dims () in
  let _ = Sweep.run spec ~inputs:[| a |] ~output:reference in
  let final, _ = Wavefront.steps spec ~a ~b ~steps:1 in
  Alcotest.(check (float 0.0)) "one step equals one sweep" 0.0
    (Grid.max_abs_diff final reference)

let test_sweep_stats () =
  let spec = Suite.resolve_defaults Suite.heat_3d_7pt in
  let halo = [| 1; 1; 1 |] and dims = [| 8; 8; 8 |] in
  let rng = Prng.create ~seed:3 in
  let a = make_grid ~halo ~dims rng in
  let o = Grid.create ~halo ~dims () in
  let s = Sweep.run ~vec_unit:[| 1; 1; 8 |] spec ~inputs:[| a |] ~output:o in
  Alcotest.(check int) "points" 512 s.Sweep.points;
  Alcotest.(check int) "vec units" 64 s.Sweep.vec_units;
  Alcotest.(check int) "rows" 64 s.Sweep.rows;
  Alcotest.(check int) "blocks" 1 s.Sweep.blocks;
  let s2 =
    Sweep.run ~config:(Config.v ~block:[| 0; 4; 4 |] ()) ~vec_unit:[| 1; 1; 8 |]
      spec ~inputs:[| a |] ~output:o
  in
  Alcotest.(check int) "same points blocked" 512 s2.Sweep.points;
  Alcotest.(check int) "four blocks" 4 s2.Sweep.blocks;
  Alcotest.(check bool) "remainder-padded vec units" true
    (s2.Sweep.vec_units > 64)

let test_run_region_bounds () =
  let spec = Suite.resolve_defaults Suite.heat_1d_3pt in
  let g = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  let o = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  (* Precondition violations now surface as lint gate diagnostics
     (YS406/YS409), not bare Invalid_argument. *)
  Alcotest.(check bool) "oob rejected" true
    (try
       ignore
         (Sweep.run_region spec ~inputs:[| g |] ~output:o ~lo:[| 0 |]
            ~hi:[| 9 |]);
       false
     with Yasksite_lint.Lint.Gate_error msg ->
       Astring_contains.contains msg "YS406");
  Alcotest.(check bool) "rank mismatch rejected" true
    (try
       ignore
         (Sweep.run_region spec ~inputs:[| g |] ~output:o ~lo:[| 0; 0 |]
            ~hi:[| 8; 8 |]);
       false
     with Yasksite_lint.Lint.Gate_error msg ->
       Astring_contains.contains msg "YS409")

let test_measure_sanity () =
  let m = Machine.test_chip in
  let spec = Suite.resolve_defaults Suite.heat_2d_5pt in
  let meas = Measure.stencil_sweep m spec ~dims:[| 64; 64 |] ~config:Config.default in
  Alcotest.(check bool) "positive cycles" true (meas.Measure.cycles_per_cl > 0.0);
  Alcotest.(check bool) "positive perf" true (meas.Measure.lups_core > 0.0);
  Alcotest.(check bool) "some memory traffic" true
    (meas.Measure.mem_bytes_per_lup > 0.0);
  Alcotest.(check int) "boundaries" 3 (Array.length meas.Measure.t_data)

let test_measure_prediction_agreement () =
  (* The headline claim at unit-test scale: prediction within 20% of the
     measurement for the naive heat3d sweep on scaled Cascade Lake. *)
  let m = Machine.scaled ~factor:8 Machine.cascade_lake in
  let spec = Suite.resolve_defaults Suite.heat_3d_7pt in
  let dims = [| 48; 48; 48 |] in
  let info = Analysis.of_spec spec in
  let p = Yasksite_ecm.Model.predict m info ~dims ~config:Config.default in
  let meas = Measure.stencil_sweep m spec ~dims ~config:Config.default in
  let err =
    Yasksite_util.Stats.abs_rel_error ~predicted:p.Yasksite_ecm.Model.t_ecm
      ~measured:meas.Measure.cycles_per_cl
  in
  Alcotest.(check bool)
    (Printf.sprintf "prediction error %.1f%% within 20%%" (100.0 *. err))
    true (err < 0.20)

let test_measure_threads () =
  let m = Machine.scaled ~factor:8 Machine.cascade_lake in
  let spec = Suite.resolve_defaults Suite.heat_3d_7pt in
  let dims = [| 48; 48; 48 |] in
  let l1 = Measure.lups_at_threads m spec ~dims ~config:Config.default ~threads:1 in
  let l8 = Measure.lups_at_threads m spec ~dims ~config:Config.default ~threads:8 in
  Alcotest.(check bool) "more threads faster" true (l8 > l1);
  Alcotest.(check bool) "sublinear beyond saturation" true (l8 < 8.5 *. l1)

let base_suite =
  [ qt blocked_equals_naive;
    qt folded_equals_naive;
    qt traced_equals_naive;
    qt wavefront_equals_sweeps;
    Alcotest.test_case "wavefront depth 1" `Quick test_wavefront_depth1_is_sweep;
    Alcotest.test_case "sweep stats" `Quick test_sweep_stats;
    Alcotest.test_case "run_region bounds" `Quick test_run_region_bounds;
    Alcotest.test_case "measure sanity" `Quick test_measure_sanity;
    Alcotest.test_case "measure vs prediction" `Slow
      test_measure_prediction_agreement;
    Alcotest.test_case "measure threads" `Slow test_measure_threads ]

let test_measure_folded_config () =
  let m = Machine.test_chip in
  let spec = Suite.resolve_defaults Suite.heat_2d_5pt in
  let config = Config.v ~fold:[| 1; 4 |] () in
  let meas = Measure.stencil_sweep m spec ~dims:[| 48; 48 |] ~config in
  Alcotest.(check bool) "folded measurement runs" true
    (meas.Measure.cycles_per_cl > 0.0 && Float.is_finite meas.Measure.lups_core)

let test_measure_rome_victim_path () =
  let m = Machine.scaled ~factor:8 Machine.rome in
  let spec = Suite.resolve_defaults Suite.heat_3d_7pt in
  (* 64^3 grids (2 MiB each) exceed the scaled Rome L3 share. *)
  let meas =
    Measure.stencil_sweep m spec ~dims:[| 64; 64; 64 |] ~config:Config.default
  in
  Alcotest.(check bool) "victim hierarchy measured" true
    (meas.Measure.lups_core > 0.0);
  (* Steady state on a > L3 working set must show memory traffic. *)
  Alcotest.(check bool) "memory traffic present" true
    (meas.Measure.mem_bytes_per_lup > 8.0)

let test_multifield_sweep () =
  let spec = Suite.resolve_defaults Suite.varcoef_3d_7pt in
  let rng = Prng.create ~seed:11 in
  let halo = [| 1; 1; 1 |] and dims = [| 6; 6; 6 |] in
  let u = make_grid ~halo ~dims rng in
  let k = make_grid ~halo ~dims rng in
  let out = Grid.create ~halo ~dims () in
  let stats = Sweep.run spec ~inputs:[| u; k |] ~output:out in
  Alcotest.(check int) "points" 216 stats.Sweep.points;
  (* Reference: u + r*k*(sum neigh - 6u), r = 0.1 *)
  let v i = Grid.get u i and kv i = Grid.get k i in
  let idx = [| 3; 2; 4 |] in
  let neigh =
    v [| 2; 2; 4 |] +. v [| 4; 2; 4 |] +. v [| 3; 1; 4 |] +. v [| 3; 3; 4 |]
    +. v [| 3; 2; 3 |] +. v [| 3; 2; 5 |]
  in
  let expect = v idx +. (0.1 *. kv idx *. (neigh -. (6.0 *. v idx))) in
  Alcotest.(check (float 1e-12)) "varcoef value" expect (Grid.get out idx)

let test_region_stats () =
  let spec = Suite.resolve_defaults Suite.heat_2d_5pt in
  let rng = Prng.create ~seed:12 in
  let halo = [| 1; 1 |] and dims = [| 10; 10 |] in
  let a = make_grid ~halo ~dims rng in
  let o = Grid.create ~halo ~dims () in
  let s =
    Sweep.run_region spec ~inputs:[| a |] ~output:o ~lo:[| 2; 3 |]
      ~hi:[| 7; 9 |]
  in
  Alcotest.(check int) "region points" 30 s.Sweep.points




let test_streaming_store_sweep () =
  (* Results are unchanged; measured traffic drops by the write-allocate
     share for a memory-bound stencil. *)
  let m = Machine.scaled ~factor:8 Machine.cascade_lake in
  let spec = Suite.resolve_defaults Suite.heat_3d_7pt in
  (* Memory-bound working set: streaming stores only pay off when the
     output would otherwise stream write-allocate traffic. *)
  let dims = [| 64; 64; 64 |] in
  let rng = Prng.create ~seed:21 in
  let halo = [| 1; 1; 1 |] in
  let a = make_grid ~halo ~dims rng in
  let o1 = Grid.create ~halo ~dims () in
  let o2 = Grid.create ~halo ~dims () in
  let _ = Sweep.run spec ~inputs:[| a |] ~output:o1 in
  let trace = Hierarchy.create m in
  let _ =
    Sweep.run ~trace ~config:(Config.v ~streaming_stores:true ()) spec
      ~inputs:[| a |] ~output:o2
  in
  Alcotest.(check (float 0.0)) "identical results" 0.0 (Grid.max_abs_diff o1 o2);
  let meas_nt =
    Measure.stencil_sweep m spec ~dims
      ~config:(Config.v ~streaming_stores:true ())
  in
  let meas = Measure.stencil_sweep m spec ~dims ~config:Config.default in
  Alcotest.(check bool)
    (Printf.sprintf "nt reduces memory traffic (%.1f < %.1f)"
       meas_nt.Measure.mem_bytes_per_lup meas.Measure.mem_bytes_per_lup)
    true
    (meas_nt.Measure.mem_bytes_per_lup < meas.Measure.mem_bytes_per_lup -. 4.0)

let extra_suite =
  [ Alcotest.test_case "measure folded config" `Quick test_measure_folded_config;
    Alcotest.test_case "measure rome victim" `Quick test_measure_rome_victim_path;
    Alcotest.test_case "multifield sweep" `Quick test_multifield_sweep;
    Alcotest.test_case "region stats" `Quick test_region_stats;
    Alcotest.test_case "streaming store sweep" `Quick
      test_streaming_store_sweep ]



let test_load_imbalance () =
  (* 64 planes over 7 threads: the slowest core gets 10 of 64, so chip
     throughput loses the remainder; an even split does not. *)
  let m = Machine.scaled ~factor:8 Machine.cascade_lake in
  let spec = Suite.resolve_defaults Suite.heat_3d_7pt in
  let dims = [| 64; 64; 64 |] in
  let l7 = Measure.lups_at_threads m spec ~dims ~config:Config.default ~threads:7 in
  let l8 = Measure.lups_at_threads m spec ~dims ~config:Config.default ~threads:8 in
  Alcotest.(check bool)
    (Printf.sprintf "uneven split costs throughput (%.2f < %.2f GLUP/s)"
       (l7 /. 1e9) (l8 /. 1e9))
    true (l7 < l8)

let suite =
  base_suite @ extra_suite
  @ [ Alcotest.test_case "load imbalance" `Quick test_load_imbalance ]
