open Yasksite_offsite
module Machine = Yasksite_arch.Machine
module Grid = Yasksite_grid.Grid
module Config = Yasksite_ecm.Config
module Analysis = Yasksite_stencil.Analysis
module Tableau = Yasksite_ode.Tableau
module Pde = Yasksite_ode.Pde
module Rk = Yasksite_ode.Rk
module Ivp = Yasksite_ode.Ivp

let test_variant_structure () =
  let pde = Pde.heat ~rank:2 ~n:16 ~alpha:1.0 in
  let u = Variant.unfused Tableau.rk4 pde ~h:1e-4 in
  let f = Variant.fused Tableau.rk4 pde ~h:1e-4 in
  (* rk4: stage 0 reads y directly; stages 1..3 need an axpy each. *)
  Alcotest.(check int) "unfused sweeps" 8 (Variant.sweeps_per_step u);
  Alcotest.(check int) "fused sweeps" 5 (Variant.sweeps_per_step f);
  Alcotest.(check bool) "scratch only in unfused" true
    (List.mem Variant.Stage_input (Variant.buffers u)
    && not (List.mem Variant.Stage_input (Variant.buffers f)));
  (* The fused stage-1 kernel reads y and K_0 at stencil offsets. *)
  let stage1 = List.nth f.Variant.kernels 1 in
  let info = Analysis.of_spec stage1.Variant.spec in
  Alcotest.(check (list int)) "fused stage reads two fields" [ 0; 1 ]
    info.Analysis.read_fields;
  Alcotest.(check int) "stencil-width loads on both fields" 10
    info.Analysis.loads

let test_variant_euler () =
  let pde = Pde.heat ~rank:1 ~n:16 ~alpha:1.0 in
  let u = Variant.unfused Tableau.euler pde ~h:1e-4 in
  (* Euler: one rhs sweep + update. *)
  Alcotest.(check int) "euler sweeps" 2 (Variant.sweeps_per_step u)

(* Flatten a state grid to compare with the reference integrator. *)
let flatten g =
  let out = ref [] in
  Grid.iter_interior g ~f:(fun idx -> out := Grid.get g idx :: !out);
  Array.of_list (List.rev !out)

let max_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := max !m (abs_float (v -. b.(i)))) a;
  !m

let executor_matches_reference ~pde ~tab ~steps ~h ~tol =
  let reference =
    Rk.integrate tab (Pde.to_ivp pde ~t_end:(float_of_int steps *. h)) ~steps
  in
  List.iter
    (fun variant ->
      let ex = Executor.create pde variant in
      Executor.run ex ~steps;
      let got = flatten (Executor.state ex) in
      let d = max_diff got reference in
      Alcotest.(check bool)
        (Printf.sprintf "%s matches reference (diff %.2e)"
           variant.Variant.name d)
        true (d < tol))
    (Variant.all tab pde ~h)

let test_executor_heat2d_rk4 () =
  executor_matches_reference
    ~pde:(Pde.heat ~rank:2 ~n:12 ~alpha:1.0)
    ~tab:Tableau.rk4 ~steps:5 ~h:1e-4 ~tol:1e-12

let test_executor_heat1d_methods () =
  let pde = Pde.heat ~rank:1 ~n:20 ~alpha:1.0 in
  List.iter
    (fun tab ->
      executor_matches_reference ~pde ~tab ~steps:4 ~h:5e-5 ~tol:1e-12)
    [ Tableau.euler; Tableau.heun2; Tableau.kutta38; Tableau.dopri5;
      Tableau.pirk ~stages:2 ~iterations:2 ]

let test_executor_periodic () =
  executor_matches_reference
    ~pde:(Pde.advection_1d ~n:24 ~velocity:1.0)
    ~tab:Tableau.rk4 ~steps:6 ~h:1e-3 ~tol:1e-12

let test_executor_heat3d () =
  executor_matches_reference
    ~pde:(Pde.heat ~rank:3 ~n:6 ~alpha:1.0)
    ~tab:Tableau.heun2 ~steps:3 ~h:1e-4 ~tol:1e-12

let test_executor_accuracy () =
  (* End to end: the fused executor actually solves the PDE. *)
  let pde = Pde.heat ~rank:2 ~n:16 ~alpha:1.0 in
  let h = 2e-5 and steps = 100 in
  let ex = Executor.create pde (Variant.fused Tableau.rk4 pde ~h) in
  Executor.run ex ~steps;
  let err =
    Pde.grid_error_vs_exact pde ~tm:(h *. float_of_int steps)
      (Executor.state ex)
  in
  Alcotest.(check bool)
    (Printf.sprintf "solves heat2d (err %.2e)" err)
    true (err < 1e-3);
  Alcotest.(check int) "steps counted" steps (Executor.steps_done ex)

let test_best_static_config () =
  let m = Machine.test_chip in
  let pde = Pde.heat ~rank:2 ~n:32 ~alpha:1.0 in
  let info = Analysis.of_spec pde.Pde.spec in
  let c = Offsite.best_static_config m info ~dims:pde.Pde.dims ~threads:2 in
  Alcotest.(check int) "no wavefront" 1 c.Config.wavefront;
  Alcotest.(check int) "threads kept" 2 c.Config.threads

let test_evaluate_and_quality () =
  let m = Machine.test_chip in
  let pde = Pde.heat ~rank:2 ~n:32 ~alpha:1.0 in
  let candidates =
    Offsite.evaluate m pde Tableau.rk4 ~h:1e-4 ~threads:2
  in
  Alcotest.(check int) "four candidates" 4 (List.length candidates);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Offsite.predicted_step_seconds <= b.Offsite.predicted_step_seconds
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by prediction" true (sorted candidates);
  List.iter
    (fun c ->
      Alcotest.(check bool) "positive predicted" true
        (c.Offsite.predicted_step_seconds > 0.0);
      Alcotest.(check bool) "positive measured" true
        (c.Offsite.measured_step_seconds > 0.0))
    candidates;
  let q = Offsite.quality candidates in
  Alcotest.(check bool) "kendall in range" true
    (q.Offsite.kendall >= -1.0 && q.Offsite.kendall <= 1.0);
  Alcotest.(check bool) "speedup positive" true (q.Offsite.speedup_selected > 0.0);
  Alcotest.(check bool) "errors finite" true
    (Float.is_finite q.Offsite.mean_abs_error)

let base_suite =
  [ Alcotest.test_case "variant structure" `Quick test_variant_structure;
    Alcotest.test_case "variant euler" `Quick test_variant_euler;
    Alcotest.test_case "executor heat2d rk4" `Quick test_executor_heat2d_rk4;
    Alcotest.test_case "executor methods" `Quick test_executor_heat1d_methods;
    Alcotest.test_case "executor periodic" `Quick test_executor_periodic;
    Alcotest.test_case "executor heat3d" `Quick test_executor_heat3d;
    Alcotest.test_case "executor accuracy" `Quick test_executor_accuracy;
    Alcotest.test_case "best static config" `Quick test_best_static_config;
    Alcotest.test_case "evaluate + quality" `Slow test_evaluate_and_quality ]

let test_selected_gap () =
  let m = Machine.test_chip in
  let pde = Pde.heat ~rank:1 ~n:64 ~alpha:1.0 in
  let candidates = Offsite.evaluate m pde Tableau.heun2 ~h:1e-5 ~threads:1 in
  let q = Offsite.quality candidates in
  Alcotest.(check bool) "gap non-negative" true (q.Offsite.selected_gap >= 0.0);
  Alcotest.(check bool) "gap consistent with top1" true
    (not q.Offsite.top1 || q.Offsite.selected_gap < 1e-9)

let test_spectral_radius () =
  let n = 40 in
  let pde = Pde.heat ~rank:1 ~n ~alpha:1.0 in
  let dx = 1.0 /. float_of_int (n + 1) in
  (* 1D Laplacian spectral radius: (4/dx^2) sin^2(pi n dx / 2) ~ 4/dx^2 *)
  let expected =
    4.0 /. (dx *. dx)
    *. (sin (Float.pi *. float_of_int n *. dx /. 2.0) ** 2.0)
  in
  let got = Offsite.spectral_radius pde in
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% (got %.0f, expected %.0f)" got expected)
    true
    (abs_float (got -. expected) /. expected < 0.05)

let test_rank_methods () =
  let m = Machine.test_chip in
  let pde = Pde.heat ~rank:1 ~n:128 ~alpha:1.0 in
  let choices =
    Offsite.rank_methods m pde [ Tableau.euler; Tableau.rk4 ] ~threads:1
  in
  Alcotest.(check int) "two methods" 2 (List.length choices);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Offsite.predicted_time_per_unit <= b.Offsite.predicted_time_per_unit
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by prediction" true (sorted choices);
  List.iter
    (fun (c : Offsite.method_choice) ->
      Alcotest.(check bool) "stable step positive" true (c.Offsite.h_stable > 0.0);
      Alcotest.(check bool) "rk4 steps larger than euler's" true
        (c.Offsite.predicted_time_per_unit > 0.0))
    choices;
  (* RK4's stability interval is ~1.39x Euler's. *)
  let h_of name =
    (List.find
       (fun c -> c.Offsite.tableau.Tableau.name = name)
       choices)
      .Offsite.h_stable
  in
  Alcotest.(check bool) "h ratio ~1.39" true
    (abs_float ((h_of "rk4" /. h_of "euler") -. 1.3925) < 0.01)

let test_fisher_variant_correctness () =
  (* Nonlinear RHS: fused and unfused variants must still reproduce the
     reference integrator (stage fusion is exact for any RHS). *)
  let pde = Pde.fisher_kpp ~rank:1 ~n:24 ~diffusion:1e-3 ~rate:2.0 in
  let tab = Tableau.rk4 in
  let steps = 5 and h = 1e-3 in
  let reference =
    Rk.integrate tab (Pde.to_ivp pde ~t_end:(float_of_int steps *. h)) ~steps
  in
  List.iter
    (fun variant ->
      let ex = Executor.create pde variant in
      Executor.run ex ~steps;
      let got = flatten (Executor.state ex) in
      Alcotest.(check bool)
        (variant.Variant.name ^ " matches reference")
        true
        (max_diff got reference < 1e-12))
    (Variant.all tab pde ~h)

let extra_suite =
  [ Alcotest.test_case "selected gap" `Quick test_selected_gap;
    Alcotest.test_case "spectral radius" `Quick test_spectral_radius;
    Alcotest.test_case "rank methods" `Quick test_rank_methods;
    Alcotest.test_case "fisher variants" `Quick test_fisher_variant_correctness ]

let test_rank_methods_at_accuracy () =
  let m = Machine.test_chip in
  let pde = Pde.heat ~rank:1 ~n:32 ~alpha:1.0 in
  let methods = [ Tableau.euler; Tableau.rk4 ] in
  (* Loose tolerance: both methods run at the stability limit and the
     cheap low-order method wins on cost. *)
  let loose =
    Offsite.rank_methods_at_accuracy m pde methods ~t_end:0.002 ~tol:1e-2
      ~threads:1
  in
  Alcotest.(check int) "two choices" 2 (List.length loose);
  List.iter
    (fun (c : Offsite.accuracy_choice) ->
      Alcotest.(check bool) "tolerance met" true
        (c.Offsite.achieved_error <= 1e-2);
      Alcotest.(check bool) "cost positive" true (c.Offsite.predicted_seconds > 0.0))
    loose;
  let steps_of name l =
    (List.find
       (fun c -> c.Offsite.tableau_a.Tableau.name = name)
       l)
      .Offsite.steps
  in
  (* Tight tolerance: Euler needs far more steps than RK4. *)
  let tight =
    Offsite.rank_methods_at_accuracy m pde methods ~t_end:0.002 ~tol:1e-9
      ~threads:1
  in
  Alcotest.(check bool)
    (Printf.sprintf "euler needs more steps (%d vs %d)"
       (steps_of "euler" tight) (steps_of "rk4" tight))
    true
    (steps_of "euler" tight > 2 * steps_of "rk4" tight);
  (match tight with
  | best :: _ ->
      Alcotest.(check string) "rk4 selected at tight tolerance" "rk4"
        best.Offsite.tableau_a.Tableau.name
  | [] -> Alcotest.fail "empty");
  Alcotest.check_raises "tol positive"
    (Invalid_argument "Offsite.rank_methods_at_accuracy: tol must be positive")
    (fun () ->
      ignore
        (Offsite.rank_methods_at_accuracy m pde methods ~t_end:0.01 ~tol:0.0
           ~threads:1))

let accuracy_suite =
  [ Alcotest.test_case "rank methods at accuracy" `Slow
      test_rank_methods_at_accuracy ]

let test_variant_coefficients () =
  (* The stage-1 axpy of rk4 must scale K_0 by h * a_10 = h/2. *)
  let pde = Pde.heat ~rank:1 ~n:8 ~alpha:1.0 in
  let h = 0.25 in
  let u = Variant.unfused Tableau.rk4 pde ~h in
  let axpy1 =
    List.find (fun (k : Variant.kernel) ->
        k.Variant.output = Variant.Stage_input)
      u.Variant.kernels
  in
  let expr = axpy1.Variant.spec.Yasksite_stencil.Spec.expr in
  let found = ref false in
  let rec scan (e : Yasksite_stencil.Expr.t) =
    match e with
    | Yasksite_stencil.Expr.Mul (Yasksite_stencil.Expr.Const c, _)
      when abs_float (c -. (h /. 2.0)) < 1e-15 ->
        found := true
    | Yasksite_stencil.Expr.Add (a, b)
    | Yasksite_stencil.Expr.Sub (a, b)
    | Yasksite_stencil.Expr.Mul (a, b)
    | Yasksite_stencil.Expr.Div (a, b) ->
        scan a;
        scan b
    | Yasksite_stencil.Expr.Neg a -> scan a
    | _ -> ()
  in
  scan expr;
  Alcotest.(check bool) "h*a_10 present" true !found

let test_update_reads_nonzero_weights_only () =
  (* dopri5 has b_2 = 0 (index 1) and b_7 = 0: the update kernel must
     not read those stages. *)
  let pde = Pde.heat ~rank:1 ~n:8 ~alpha:1.0 in
  let u = Variant.unfused Tableau.dopri5 pde ~h:0.1 in
  let update =
    List.find (fun (k : Variant.kernel) ->
        k.Variant.output = Variant.Next_state)
      u.Variant.kernels
  in
  let reads_stage i =
    Array.exists (fun b -> b = Variant.Stage i) update.Variant.inputs
  in
  Alcotest.(check bool) "skips b=0 stages" false (reads_stage 1 || reads_stage 6);
  Alcotest.(check bool) "reads b<>0 stages" true (reads_stage 0 && reads_stage 5)

let coeff_suite =
  [ Alcotest.test_case "variant coefficients" `Quick test_variant_coefficients;
    Alcotest.test_case "update skips zero weights" `Quick
      test_update_reads_nonzero_weights_only ]

let test_mixed_variants () =
  let pde = Pde.heat ~rank:1 ~n:16 ~alpha:1.0 in
  let h = 1e-4 in
  let mixed = Variant.all_mixed Tableau.rk4 pde ~h in
  (* rk4: stage 0 has no coefficients, stages 1..3 are free: 8 masks. *)
  Alcotest.(check int) "eight masks" 8 (List.length mixed);
  let names = List.map (fun v -> v.Variant.name) mixed in
  Alcotest.(check int) "distinct names" 8
    (List.length (List.sort_uniq compare names));
  (* Every mixed variant computes the same step as the reference. *)
  let steps = 3 in
  let reference =
    Rk.integrate Tableau.rk4
      (Pde.to_ivp pde ~t_end:(float_of_int steps *. h))
      ~steps
  in
  List.iter
    (fun variant ->
      let ex = Executor.create pde variant in
      Executor.run ex ~steps;
      let got = flatten (Executor.state ex) in
      Alcotest.(check bool)
        (variant.Variant.name ^ " correct")
        true
        (max_diff got reference < 1e-12))
    mixed;
  (* Sweep counts interpolate between fused (5) and unfused (8). *)
  let sweeps = List.map Variant.sweeps_per_step mixed in
  Alcotest.(check int) "min sweeps" 5 (List.fold_left min 99 sweeps);
  Alcotest.(check int) "max sweeps" 8 (List.fold_left max 0 sweeps);
  (* Oversized methods fall back to the pure schemes. *)
  Alcotest.(check int) "dopri5 falls back" 2
    (List.length (Variant.all_mixed Tableau.dopri5 pde ~h));
  Alcotest.check_raises "mask length"
    (Invalid_argument "Variant.with_mask: mask length must equal the stage count")
    (fun () ->
      ignore (Variant.with_mask Tableau.rk4 pde ~h ~mask:[| true |]))

let test_evaluate_mixed () =
  let m = Machine.test_chip in
  let pde = Pde.heat ~rank:1 ~n:64 ~alpha:1.0 in
  let candidates = Offsite.evaluate_mixed m pde Tableau.heun2 ~h:1e-5 ~threads:1 in
  (* heun2: one free stage -> 2 masks x 2 tuning = 4 candidates. *)
  Alcotest.(check int) "four candidates" 4 (List.length candidates);
  let q = Offsite.quality candidates in
  Alcotest.(check bool) "quality computable" true
    (Float.is_finite q.Offsite.mean_abs_error)

let mixed_suite =
  [ Alcotest.test_case "mixed variants" `Quick test_mixed_variants;
    Alcotest.test_case "evaluate mixed" `Slow test_evaluate_mixed ]

module Plan = Yasksite_faults.Plan
module Policy = Yasksite_faults.Policy

let test_run_resilient_benign () =
  (* Without faults, run_resilient is exactly run. *)
  let pde = Pde.heat ~rank:1 ~n:16 ~alpha:1.0 in
  let h = 1e-4 and steps = 5 in
  let plain = Executor.create pde (Variant.fused Tableau.rk4 pde ~h) in
  Executor.run plain ~steps;
  let resilient = Executor.create pde (Variant.fused Tableau.rk4 pde ~h) in
  let report = Executor.run_resilient resilient ~steps in
  Alcotest.(check int) "all steps done" steps report.Executor.steps_completed;
  Alcotest.(check int) "one attempt per step" steps
    report.Executor.step_attempts;
  Alcotest.(check int) "no retries" 0 report.Executor.retries;
  Alcotest.(check bool) "did not give up" false report.Executor.gave_up;
  Alcotest.(check (float 0.0)) "nothing charged" 0.0
    report.Executor.charged_seconds;
  Alcotest.(check (float 1e-15)) "identical state" 0.0
    (max_diff
       (flatten (Executor.state plain))
       (flatten (Executor.state resilient)))

let test_run_resilient_retries () =
  (* Half the step attempts fail; with a generous retry cap the run still
     completes every step — and the state matches a clean run exactly,
     because faults fire before the kernels execute. *)
  let pde = Pde.heat ~rank:1 ~n:16 ~alpha:1.0 in
  let h = 1e-4 and steps = 8 in
  let clean = Executor.create pde (Variant.fused Tableau.rk4 pde ~h) in
  Executor.run clean ~steps;
  let ex = Executor.create pde (Variant.fused Tableau.rk4 pde ~h) in
  let report =
    Executor.run_resilient
      ~faults:(Plan.v ~seed:4 ~fail_rate:0.5 ())
      ~policy:(Policy.v ~max_attempts:20 ())
      ex ~steps
  in
  Alcotest.(check int) "all steps done" steps report.Executor.steps_completed;
  Alcotest.(check bool) "did not give up" false report.Executor.gave_up;
  Alcotest.(check bool) "some retries happened" true
    (report.Executor.retries > 0);
  Alcotest.(check int) "attempts = steps + retries"
    (steps + report.Executor.retries)
    report.Executor.step_attempts;
  Alcotest.(check bool) "backoff charged" true
    (report.Executor.charged_seconds > 0.0);
  Alcotest.(check (float 1e-15)) "state matches clean run" 0.0
    (max_diff (flatten (Executor.state clean)) (flatten (Executor.state ex)))

let test_run_resilient_gives_up () =
  let pde = Pde.heat ~rank:1 ~n:16 ~alpha:1.0 in
  let ex = Executor.create pde (Variant.fused Tableau.rk4 pde ~h:1e-4) in
  let report =
    Executor.run_resilient ~faults:(Plan.v ~seed:2 ~fail_rate:1.0 ()) ex
      ~steps:5
  in
  Alcotest.(check bool) "gave up" true report.Executor.gave_up;
  Alcotest.(check int) "no step completed" 0 report.Executor.steps_completed;
  Alcotest.(check int) "executor state agrees" 0 (Executor.steps_done ex);
  Alcotest.(check int) "stopped at the retry cap" 3
    report.Executor.step_attempts

let resilience_suite =
  [ Alcotest.test_case "run_resilient benign" `Quick test_run_resilient_benign;
    Alcotest.test_case "run_resilient retries" `Quick
      test_run_resilient_retries;
    Alcotest.test_case "run_resilient gives up" `Quick
      test_run_resilient_gives_up ]

let suite =
  base_suite @ extra_suite @ accuracy_suite @ coeff_suite @ mixed_suite
  @ resilience_suite
