module Store = Yasksite_store.Store
module Io = Yasksite_faults.Io
module Checkpoint = Yasksite_faults.Checkpoint
module Machine = Yasksite_arch.Machine
module Suite = Yasksite_stencil.Suite
module Analysis = Yasksite_stencil.Analysis
module Config = Yasksite_ecm.Config
module Model = Yasksite_ecm.Model
module Cache = Yasksite_ecm.Cache
module Cert = Yasksite_engine.Cert
module Tuner = Yasksite_tuner.Tuner

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)

let root_seq = ref 0

let fresh_root () =
  incr root_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ysstore-test-%d-%d" (Unix.getpid ()) !root_seq)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun n -> rm_rf (Filename.concat path n))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_root f =
  let root = fresh_root () in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

(* The first committed entry file under objects/ (bucketed layout). *)
let entry_files root =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | names ->
        Array.iter
          (fun n ->
            let p = Filename.concat dir n in
            if Sys.is_directory p then walk p
            else if not (String.length n > 0 && n.[0] = '.') then
              acc := p :: !acc)
          names
    | exception Sys_error _ -> ()
  in
  walk (Filename.concat root "objects");
  !acc

(* ------------------------------------------------------------------ *)
(* Basic entry semantics                                               *)

let test_roundtrip () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  Alcotest.(check bool) "active" true (Store.active s);
  Alcotest.(check bool) "writable" true (Store.writable s);
  Alcotest.(check bool) "absent misses" true
    (Store.get s ~ns:"a" ~key:"k" = None);
  Store.put s ~ns:"a" ~key:"k" "hello";
  Alcotest.(check (option string)) "round trip" (Some "hello")
    (Store.get s ~ns:"a" ~key:"k");
  Alcotest.(check bool) "mem" true (Store.mem s ~ns:"a" ~key:"k");
  (* Same key, different namespace: independent slots. *)
  Alcotest.(check bool) "ns isolation" true
    (Store.get s ~ns:"b" ~key:"k" = None);
  Store.put s ~ns:"a" ~key:"k" "replaced";
  Alcotest.(check (option string)) "overwrite" (Some "replaced")
    (Store.get s ~ns:"a" ~key:"k");
  (* Binary-ish payloads (newlines, NULs) survive exactly. *)
  let blob = "line1\nline2\x00tail" in
  Store.put s ~ns:"a" ~key:"blob" blob;
  Alcotest.(check (option string)) "binary payload" (Some blob)
    (Store.get s ~ns:"a" ~key:"blob");
  (* A second handle on the same root sees committed state. *)
  let s2 = Store.open_root root in
  Alcotest.(check (option string)) "shared root" (Some "replaced")
    (Store.get s2 ~ns:"a" ~key:"k")

let test_persistence_across_reopen () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  Store.put s ~ns:"n" ~key:"k" "payload";
  let s' = Store.open_root root in
  Alcotest.(check (option string)) "survives reopen" (Some "payload")
    (Store.get s' ~ns:"n" ~key:"k")

(* ------------------------------------------------------------------ *)
(* Crash consistency                                                   *)

let test_crash_consistency () =
  with_root @@ fun root ->
  let v1 = "value-one" and v2 = "value-two-longer-payload" in
  let s0 = Store.open_root root in
  Store.put s0 ~ns:"t" ~key:"k" v1;
  let crashes = ref 0 and commits = ref 0 in
  (* Enumerate every crash point of the commit protocol: at each guarded
     syscall index, kill the "process" there and check the slot holds
     the old or the new value — never a torn or absent one. *)
  for at = 1 to 16 do
    let io = Io.injector (Io.plan ~crash_at:at ()) in
    (try
       let s = Store.open_root ~io root in
       Store.put s ~ns:"t" ~key:"k" v2;
       incr commits
     with Io.Crashed _ -> incr crashes);
    let s' = Store.open_root root in
    match Store.get s' ~ns:"t" ~key:"k" with
    | Some v when v = v1 || v = v2 -> ()
    | Some v -> Alcotest.failf "torn value observed at crash point %d: %S" at v
    | None -> Alcotest.failf "committed value lost at crash point %d" at
  done;
  Alcotest.(check bool) "some crash points fired" true (!crashes > 0);
  Alcotest.(check bool) "some commits completed" true (!commits > 0)

let store_never_torn =
  QCheck.Test.make
    ~name:"store: seeded ENOSPC/EIO/torn faults leave old-or-new, never torn"
    ~count:60 QCheck.small_int (fun seed ->
      with_root @@ fun root ->
      let io =
        Io.injector
          (Io.plan ~seed ~enospc_rate:0.15 ~eio_rate:0.15 ~torn_rate:0.2 ())
      in
      let s = Store.open_root ~io root in
      (* What the slot may legitimately hold. A counted write pins it to
         the new value; an errored put leaves it at any previous
         possibility OR the new value (a fault on the directory fsync
         lands after the publishing rename), never anything else. *)
      let possible = ref [ None ] in
      let ok = ref true in
      for i = 1 to 8 do
        let v = Printf.sprintf "payload-%d-%d" seed i in
        let before = (Store.stats s).Store.writes in
        Store.put s ~ns:"p" ~key:"k" v;
        if (Store.stats s).Store.writes > before then possible := [ Some v ]
        else possible := Some v :: !possible;
        (* A read may degrade to a miss under injected EIO, but a hit
           must be bit-exactly one of the committable payloads. *)
        match Store.get s ~ns:"p" ~key:"k" with
        | None -> ()
        | Some got -> if not (List.mem (Some got) !possible) then ok := false
      done;
      (* Committed state must be durable and clean under real I/O. *)
      let s' = Store.open_root root in
      if not (List.mem (Store.get s' ~ns:"p" ~key:"k") !possible) then
        ok := false;
      !ok)

let test_torn_write_never_published () =
  with_root @@ fun root ->
  let s0 = Store.open_root root in
  Store.put s0 ~ns:"t" ~key:"k" "good";
  (* Every write tears but reports success: the read-back verification
     must catch it and abort the commit before the rename. *)
  let io = Io.injector (Io.plan ~torn_rate:1.0 ()) in
  let s = Store.open_root ~io root in
  Store.put s ~ns:"t" ~key:"k" "new-but-torn";
  Alcotest.(check int) "commit aborted" 1 (Store.stats s).Store.write_errors;
  let s' = Store.open_root root in
  Alcotest.(check (option string)) "old value preserved" (Some "good")
    (Store.get s' ~ns:"t" ~key:"k")

(* ------------------------------------------------------------------ *)
(* Corruption and degradation                                          *)

let test_quarantine_and_repair () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  Store.put s ~ns:"q" ~key:"k" "original";
  (match entry_files root with
  | [ file ] ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc "flipped bits")
  | files -> Alcotest.failf "expected one entry file, found %d"
               (List.length files));
  let s2 = Store.open_root root in
  Alcotest.(check (option string)) "corrupt entry misses" None
    (Store.get s2 ~ns:"q" ~key:"k");
  Alcotest.(check int) "quarantined" 1 (Store.stats s2).Store.quarantined;
  Alcotest.(check int) "moved to corrupt/" 1 (Store.usage s2).Store.corrupt;
  (* The caller recomputes and the next put repairs the slot. *)
  Store.put s2 ~ns:"q" ~key:"k" "recomputed";
  Alcotest.(check (option string)) "repaired" (Some "recomputed")
    (Store.get s2 ~ns:"q" ~key:"k")

let test_version_mismatch_disables () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  Store.put s ~ns:"v" ~key:"k" "data";
  Out_channel.with_open_bin (Filename.concat root "VERSION") (fun oc ->
      Out_channel.output_string oc "yasksite-store v99\n");
  let s2 = Store.open_root root in
  Alcotest.(check bool) "disabled" false (Store.active s2);
  Alcotest.(check (option string)) "gets miss cleanly" None
    (Store.get s2 ~ns:"v" ~key:"k");
  (* Puts drop without touching the foreign layout. *)
  Store.put s2 ~ns:"v" ~key:"k" "ignored";
  Alcotest.(check int) "nothing written" 0 (Store.stats s2).Store.writes

let test_unusable_root_degrades () =
  (* A root that cannot exist: every operation degrades, none raises. *)
  let s = Store.open_root "/dev/null/nope" in
  Alcotest.(check bool) "disabled" false (Store.active s);
  Alcotest.(check bool) "not writable" false (Store.writable s);
  Store.put s ~ns:"x" ~key:"k" "v";
  Alcotest.(check (option string)) "miss" None (Store.get s ~ns:"x" ~key:"k");
  Alcotest.(check int) "verify scans nothing" 0 (Store.verify s).Store.scanned;
  let g = Store.gc s in
  Alcotest.(check int) "gc removes nothing" 0 g.Store.removed;
  Alcotest.(check int) "usage empty" 0 (Store.usage s).Store.entries;
  Alcotest.(check int) "with_lock still runs" 42
    (Store.with_lock s ~name:"l" (fun () -> 42))

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

let test_stale_lock_takeover () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  (* Plant a lock naming a pid that cannot exist (beyond pid_max). *)
  let locks = Filename.concat root "locks" in
  (try Unix.mkdir locks 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let lock = Filename.concat locks "gc.lock" in
  Out_channel.with_open_bin lock (fun oc ->
      Out_channel.output_string oc "99999999\n");
  Alcotest.(check int) "runs under broken lock" 7
    (Store.with_lock s ~name:"gc" (fun () -> 7));
  Alcotest.(check int) "stale lock taken over" 1
    (Store.stats s).Store.locks_broken

let test_live_lock_times_out_but_runs () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  (* A lock held by a live process (ourselves): the waiter times out and
     proceeds anyway — liveness over exclusion, commits are atomic. *)
  let locks = Filename.concat root "locks" in
  (try Unix.mkdir locks 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let lock = Filename.concat locks "busy.lock" in
  Out_channel.with_open_bin lock (fun oc ->
      Out_channel.output_string oc (string_of_int (Unix.getpid ())));
  Alcotest.(check int) "still runs after timeout" 9
    (Store.with_lock ~wait_s:0.05 s ~name:"busy" (fun () -> 9));
  Alcotest.(check int) "live lock not broken" 0
    (Store.stats s).Store.locks_broken

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)

let test_verify_quarantines_bad_entries () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  Store.put s ~ns:"m" ~key:"a" "alpha";
  Store.put s ~ns:"m" ~key:"b" "beta";
  (match entry_files root with
  | file :: _ ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc "not an entry")
  | [] -> Alcotest.fail "no entry files");
  let r = Store.verify s in
  Alcotest.(check int) "scanned" 2 r.Store.scanned;
  Alcotest.(check int) "ok" 1 r.Store.ok;
  Alcotest.(check int) "bad" 1 r.Store.bad;
  Alcotest.(check int) "quarantined" 1 (Store.usage s).Store.corrupt;
  (* A second pass over the cleaned store is all-ok. *)
  let r2 = Store.verify s in
  Alcotest.(check int) "clean rescan" 0 r2.Store.bad

let test_verify_rejects_moved_entry () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  Store.put s ~ns:"m" ~key:"a" "alpha";
  (* A valid entry under the wrong filename is a lie about its content
     address: verify must quarantine it. *)
  (match entry_files root with
  | [ file ] ->
      let dir = Filename.dirname file in
      Sys.rename file
        (Filename.concat dir "00000000000000000000000000000000")
  | _ -> Alcotest.fail "expected one entry file");
  let r = Store.verify s in
  Alcotest.(check int) "misplaced entry is bad" 1 r.Store.bad

let test_gc_age_and_size () =
  with_root @@ fun root ->
  let s = Store.open_root root in
  for i = 1 to 10 do
    Store.put s ~ns:"g" ~key:(string_of_int i) (String.make 100 'x')
  done;
  (* Nothing is older than an hour: age-only gc keeps everything. *)
  let r = Store.gc ~max_age_s:3600.0 s in
  Alcotest.(check int) "age keeps fresh entries" 0 r.Store.removed;
  (* Size bound forces oldest-first eviction down to the budget. *)
  let r2 = Store.gc ~max_size_bytes:500 s in
  Alcotest.(check bool) "evicted down to budget" true
    (r2.Store.bytes_kept <= 500 && r2.Store.removed > 0);
  Alcotest.(check int) "usage agrees" r2.Store.kept
    (Store.usage s).Store.entries;
  (* max_age_s 0 empties the store. *)
  let r3 = Store.gc ~max_age_s:0.0 s in
  Alcotest.(check int) "expire all" 0 r3.Store.kept

(* ------------------------------------------------------------------ *)
(* Default resolution                                                  *)

let test_default_env () =
  let saved_store = Sys.getenv_opt "YASKSITE_STORE" in
  let saved_kill = Sys.getenv_opt "YASKSITE_NO_STORE" in
  let restore () =
    Unix.putenv "YASKSITE_STORE" (Option.value saved_store ~default:"");
    Unix.putenv "YASKSITE_NO_STORE" (Option.value saved_kill ~default:"");
    Store.reset_default_for_tests ()
  in
  Fun.protect ~finally:restore @@ fun () ->
  with_root @@ fun root ->
  Unix.putenv "YASKSITE_STORE" root;
  Unix.putenv "YASKSITE_NO_STORE" "";
  Store.reset_default_for_tests ();
  Alcotest.(check string) "env root respected" root (Store.default_root ());
  (match Store.default () with
  | Some s -> Alcotest.(check string) "default opens env root" root
                (Store.root s)
  | None -> Alcotest.fail "default store expected");
  (* The kill switch keeps every consumer purely in-memory. *)
  Unix.putenv "YASKSITE_NO_STORE" "1";
  Store.reset_default_for_tests ();
  Alcotest.(check bool) "kill switch" true (Store.default () = None)

(* ------------------------------------------------------------------ *)
(* ECM cache spill                                                     *)

let machine = Machine.test_chip
let spec = Suite.resolve_defaults Suite.heat_2d_5pt
let info = Analysis.of_spec spec
let dims = [| 48; 48 |]

let test_cache_spill_and_warm_start () =
  with_root @@ fun root ->
  let config = Config.v ~threads:2 () in
  let c1 = Cache.create () in
  Cache.attach_store c1 (Store.open_root root);
  let p1 = Cache.predict c1 machine info ~dims ~config in
  let s1 = Cache.stats c1 in
  Alcotest.(check int) "cold: store missed" 1 s1.Cache.store_misses;
  Alcotest.(check int) "cold: no store hit" 0 s1.Cache.store_hits;
  (* A fresh cache on the same root — a second process — warm-starts. *)
  let c2 = Cache.create () in
  Cache.attach_store c2 (Store.open_root root);
  let p2 = Cache.predict c2 machine info ~dims ~config in
  let s2 = Cache.stats c2 in
  Alcotest.(check int) "warm: store hit" 1 s2.Cache.store_hits;
  Alcotest.(check int) "warm: no store miss" 0 s2.Cache.store_misses;
  Alcotest.(check bool) "prediction bit-identical through disk" true
    (p1 = p2);
  (* Detached, the cache never consults the store again. *)
  Cache.detach_store c2;
  Cache.clear c2;
  let _ = Cache.predict c2 machine info ~dims ~config in
  Alcotest.(check int) "detached: no store traffic" 0
    (Cache.stats c2).Cache.store_hits

let test_prediction_codec_roundtrip () =
  let config = Config.v ~threads:2 ~block:[| 0; 16 |] ~fold:[| 1; 4 |] () in
  let p = Model.predict machine info ~dims ~config in
  (match Cache.prediction_of_string (Cache.prediction_to_string p) with
  | Some p' -> Alcotest.(check bool) "exact round trip" true (p = p')
  | None -> Alcotest.fail "codec failed to parse its own rendering");
  (* lups_saturated can be infinity (working set fits cache). *)
  let p_inf = { p with Model.lups_saturated = infinity } in
  (match Cache.prediction_of_string (Cache.prediction_to_string p_inf) with
  | Some p' ->
      Alcotest.(check bool) "infinity survives" true
        (p'.Model.lups_saturated = infinity)
  | None -> Alcotest.fail "codec rejected infinity");
  Alcotest.(check bool) "garbage rejected" true
    (Cache.prediction_of_string "ecm-pred v1\nconfig nonsense" = None);
  Alcotest.(check bool) "wrong magic rejected" true
    (Cache.prediction_of_string "ecm-pred v0\n" = None)

let test_cache_with_degraded_store_identical () =
  (* Attaching a dead store changes nothing but the counters. *)
  let config = Config.v ~threads:2 () in
  let plain = Cache.create () in
  let p_ref = Cache.predict plain machine info ~dims ~config in
  let degraded = Cache.create () in
  Cache.attach_store degraded (Store.open_root "/dev/null/nope");
  let p = Cache.predict degraded machine info ~dims ~config in
  Alcotest.(check bool) "bit-identical prediction" true (p = p_ref)

(* ------------------------------------------------------------------ *)
(* Certificate persistence                                             *)

let test_cert_persistence () =
  with_root @@ fun root ->
  let finally () =
    Cert.set_store None;
    Cert.clear ()
  in
  Fun.protect ~finally @@ fun () ->
  Cert.clear ();
  Cert.set_store (Some (Store.open_root root));
  Cert.insert
    { Cert.key = "cert-key-1"; fingerprint = "fp-abc"; loads_per_point = 3;
      stores_per_point = 1; flops_per_point = 7 };
  (* Clearing the in-memory table simulates a new process; the lookup
     must restore the certificate from disk. *)
  Cert.clear ();
  Alcotest.(check int) "memory table empty" 0 (Cert.size ());
  (match Cert.lookup "cert-key-1" with
  | Some e ->
      Alcotest.(check string) "fingerprint" "fp-abc" e.Cert.fingerprint;
      Alcotest.(check int) "loads" 3 e.Cert.loads_per_point;
      Alcotest.(check int) "stores" 1 e.Cert.stores_per_point;
      Alcotest.(check int) "flops" 7 e.Cert.flops_per_point
  | None -> Alcotest.fail "certificate lost across clear");
  (* Detached again, a fresh clear really is empty. *)
  Cert.set_store None;
  Cert.clear ();
  Alcotest.(check bool) "no store, no resurrection" true
    (Cert.lookup "cert-key-1" = None)

(* ------------------------------------------------------------------ *)
(* Tuner checkpoints through the store                                 *)

let small_space =
  [ Yasksite_ecm.Config.v ~threads:2 ();
    Yasksite_ecm.Config.v ~threads:2 ~block:[| 0; 16 |] ();
    Yasksite_ecm.Config.v ~threads:2 ~fold:[| 1; 4 |] () ]

let test_tuner_checkpoint_via_store () =
  with_root @@ fun root ->
  let store = Store.open_root root in
  let r1 =
    Tuner.tune_empirical ~space:small_space ~store machine spec ~dims
      ~threads:2
  in
  Alcotest.(check int) "cold sweep ran every candidate"
    (List.length small_space) r1.Tuner.kernel_runs;
  Alcotest.(check bool) "checkpoint persisted" true
    ((Store.usage store).Store.entries > 0);
  (* A second sweep on the same root resumes: zero kernel runs, same
     choice, bit-equal measurement. *)
  let r2 =
    Tuner.tune_empirical ~space:small_space ~store:(Store.open_root root)
      machine spec ~dims ~threads:2
  in
  Alcotest.(check int) "warm sweep re-ran nothing" 0 r2.Tuner.kernel_runs;
  Alcotest.(check bool) "same choice" true
    (Config.equal r1.Tuner.chosen r2.Tuner.chosen);
  Alcotest.(check (float 0.0)) "bit-equal measurement" r1.Tuner.measured_lups
    r2.Tuner.measured_lups

let test_tuner_degraded_store_identity () =
  (* An unusable store root must leave the sweep bit-identical to a
     store-less run. *)
  let baseline =
    Tuner.tune_empirical ~space:small_space machine spec ~dims ~threads:2
  in
  let degraded =
    Tuner.tune_empirical ~space:small_space
      ~store:(Store.open_root "/dev/null/nope") machine spec ~dims ~threads:2
  in
  Alcotest.(check bool) "same choice" true
    (Config.equal baseline.Tuner.chosen degraded.Tuner.chosen);
  Alcotest.(check (float 0.0)) "bit-equal measurement"
    baseline.Tuner.measured_lups degraded.Tuner.measured_lups;
  Alcotest.(check int) "same kernel runs" baseline.Tuner.kernel_runs
    degraded.Tuner.kernel_runs

(* Satellite: stale or corrupt checkpoints must never leak results into
   a scheme-3 sweep — they load as empty and the sweep re-measures. *)

let bogus_entries =
  [ (0, Checkpoint.Done { lups = 1e30; runs = 1; attempts = 1 });
    (1, Checkpoint.Done { lups = 1e30; runs = 1; attempts = 1 });
    (2, Checkpoint.Done { lups = 1e30; runs = 1; attempts = 1 }) ]

let check_sweep_ignores_checkpoint ~what path =
  let baseline =
    Tuner.tune_empirical ~space:small_space machine spec ~dims ~threads:2
  in
  let r =
    Tuner.tune_empirical ~space:small_space ~checkpoint:path machine spec
      ~dims ~threads:2
  in
  Alcotest.(check int) (what ^ ": every candidate re-measured")
    (List.length small_space) r.Tuner.kernel_runs;
  Alcotest.(check bool) (what ^ ": absurd lups did not leak") true
    (r.Tuner.measured_lups < 1e29);
  Alcotest.(check bool) (what ^ ": same choice as clean sweep") true
    (Config.equal baseline.Tuner.chosen r.Tuner.chosen);
  Alcotest.(check (float 0.0)) (what ^ ": bit-equal measurement")
    baseline.Tuner.measured_lups r.Tuner.measured_lups

let test_stale_checkpoint_loads_empty () =
  let path = Filename.temp_file "ysstale" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* A checkpoint written under another key derivation (e.g. scheme 2)
     carries a key this sweep does not derive: it must load as empty. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (Checkpoint.render ~key:"0123456789abcdef0123456789abcdef"
           bogus_entries));
  check_sweep_ignores_checkpoint ~what:"stale key" path

let test_corrupt_checkpoint_loads_empty () =
  let path = Filename.temp_file "yscorrupt" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* Truncated mid-write: header gone, lines mangled. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "yasksite-checkpoint v1\tgarb");
  check_sweep_ignores_checkpoint ~what:"truncated" path

(* ------------------------------------------------------------------ *)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [ Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "persists across reopen" `Quick
      test_persistence_across_reopen;
    Alcotest.test_case "crash-point enumeration" `Quick
      test_crash_consistency;
    qt store_never_torn;
    Alcotest.test_case "torn write never published" `Quick
      test_torn_write_never_published;
    Alcotest.test_case "quarantine and repair" `Quick
      test_quarantine_and_repair;
    Alcotest.test_case "version mismatch disables" `Quick
      test_version_mismatch_disables;
    Alcotest.test_case "unusable root degrades" `Quick
      test_unusable_root_degrades;
    Alcotest.test_case "stale lock takeover" `Quick test_stale_lock_takeover;
    Alcotest.test_case "live lock timeout" `Quick
      test_live_lock_times_out_but_runs;
    Alcotest.test_case "verify quarantines bad entries" `Quick
      test_verify_quarantines_bad_entries;
    Alcotest.test_case "verify rejects moved entry" `Quick
      test_verify_rejects_moved_entry;
    Alcotest.test_case "gc age and size" `Quick test_gc_age_and_size;
    Alcotest.test_case "default resolution" `Quick test_default_env;
    Alcotest.test_case "cache spill and warm start" `Quick
      test_cache_spill_and_warm_start;
    Alcotest.test_case "prediction codec round trip" `Quick
      test_prediction_codec_roundtrip;
    Alcotest.test_case "degraded store leaves cache identical" `Quick
      test_cache_with_degraded_store_identical;
    Alcotest.test_case "certificate persistence" `Quick
      test_cert_persistence;
    Alcotest.test_case "tuner checkpoint via store" `Quick
      test_tuner_checkpoint_via_store;
    Alcotest.test_case "tuner degraded-store identity" `Quick
      test_tuner_degraded_store_identity;
    Alcotest.test_case "stale checkpoint loads empty" `Quick
      test_stale_checkpoint_loads_empty;
    Alcotest.test_case "corrupt checkpoint loads empty" `Quick
      test_corrupt_checkpoint_loads_empty ]
