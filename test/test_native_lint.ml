(* The YS6xx translation validator.

   Contract under test: every legal kernel Codegen emits — the whole
   suite, both layouts — validates with zero findings (no false
   rejections); the checked AST round-trips through its own printer;
   every seeded miscompile class is rejected with its expected stable
   code (100% kill rate); the engine refuses to compile, load or run a
   source the validator rejects (falling back bit-identically to the
   interpreter); and a passing verdict earns a native certificate that
   lets warm resolutions skip re-validation. *)

module Stencil = Yasksite_stencil
module Grid = Yasksite_grid.Grid
module Spec = Stencil.Spec
module Codegen = Stencil.Codegen
module Ast = Stencil.Kernel_ast
module Lint = Yasksite_lint.Lint
module NL = Yasksite_lint.Native_lint
module D = Yasksite_lint.Diagnostic
module Mis = Yasksite_faults.Miscompile
module Native = Yasksite_engine.Native
module Cert = Yasksite_engine.Cert
module Sweep = Yasksite_engine.Sweep
module Store = Yasksite_store.Store
module Analysis = Stencil.Analysis
module Lower = Stencil.Lower
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

(* Every (suite stencil × layout) with its plan, variant, grids and
   emitted source — the corpus all the whole-suite properties run
   over. *)
let emitted_suite () =
  List.concat_map
    (fun spec ->
      let spec = Stencil.Suite.resolve_defaults spec in
      let plan = Lower.lower spec in
      let rank = spec.Spec.rank in
      let halo = Analysis.halo (Analysis.of_spec spec) in
      let dims = Array.init rank (fun i -> max 8 ((2 * halo.(i)) + 1)) in
      List.filter_map
        (fun layout ->
          let space = Grid.fresh_space () in
          let mk () = Grid.create ~space ~halo ~layout ~dims () in
          let inputs = Array.init spec.Spec.n_fields (fun _ -> mk ()) in
          let output = mk () in
          let v = Codegen.variant_of ~plan ~inputs ~output in
          match Codegen.source ~plan v with
          | Error _ -> None
          | Ok src -> Some (spec, plan, v, inputs, src))
        [ Grid.Linear;
          Grid.Folded
            (Array.init rank (fun i -> if i = rank - 1 then 4 else 1)) ])
    Stencil.Suite.all

(* ------------------------------------------------------------------ *)
(* No false rejections, and the grammar round-trips.                   *)

let test_suite_validates () =
  let n = ref 0 in
  List.iter
    (fun (spec, plan, v, inputs, src) ->
      incr n;
      match NL.check ~plan ~variant:v ~inputs src with
      | [] -> ()
      | ds ->
          Alcotest.failf "%s: legal kernel rejected: %s" spec.Spec.name
            (String.concat "; "
               (List.map (fun d -> d.D.code ^ " " ^ d.D.message) ds)))
    (emitted_suite ());
  (* both layouts of all nine suite stencils actually emitted *)
  Alcotest.(check bool) "full corpus emitted" true (!n >= 18)

let test_ast_roundtrip () =
  List.iter
    (fun (spec, _, _, _, src) ->
      match Ast.parse src with
      | Error (msg, line) ->
          Alcotest.failf "%s: emitted source does not parse (line %d: %s)"
            spec.Spec.name line msg
      | Ok ast -> (
          match Ast.parse (Ast.print ast) with
          | Error (msg, line) ->
              Alcotest.failf "%s: printed AST does not re-parse (line %d: %s)"
                spec.Spec.name line msg
          | Ok ast' ->
              if ast' <> ast then
                Alcotest.failf "%s: AST does not round-trip" spec.Spec.name))
    (emitted_suite ())

(* ------------------------------------------------------------------ *)
(* Mutation corpus: every class killed, with its expected code.        *)

let test_mutation_kill_rate () =
  let total = ref 0 in
  let by_class = Hashtbl.create 8 in
  List.iter
    (fun (spec, plan, v, inputs, src) ->
      List.iter
        (fun (cls, mutant) ->
          incr total;
          Hashtbl.replace by_class cls ();
          let codes =
            List.map
              (fun d -> d.D.code)
              (NL.check ~plan ~variant:v ~inputs mutant)
          in
          let want = Mis.expected_code cls in
          if not (List.mem want codes) then
            Alcotest.failf "%s: %s mutant survived (want %s, got [%s])"
              spec.Spec.name (Mis.class_name cls) want
              (String.concat "," codes))
        (Mis.corpus ~seed:42 ~per_class:3 src))
    (emitted_suite ());
  Alcotest.(check bool)
    "at least 25 mutants exercised" true (!total >= 25);
  Alcotest.(check bool)
    "at least 5 distinct classes exercised" true
    (Hashtbl.length by_class >= 5)

(* A mutant differs from the original by construction, so its digest
   can never satisfy an original's certificate. *)
let test_mutants_are_distinct () =
  List.iter
    (fun (_, _, _, _, src) ->
      List.iter
        (fun (cls, mutant) ->
          if mutant = src then
            Alcotest.failf "%s mutant is identical to its source"
              (Mis.class_name cls))
        (Mis.corpus ~seed:7 ~per_class:2 src))
    (emitted_suite ())

(* Mutation is deterministic per (seed, class, source). *)
let test_mutation_deterministic () =
  match emitted_suite () with
  | [] -> Alcotest.fail "empty suite"
  | (_, _, _, _, src) :: _ ->
      List.iter
        (fun cls ->
          match
            (Mis.mutate ~seed:11 cls src, Mis.mutate ~seed:11 cls src)
          with
          | Ok a, Ok b -> Alcotest.(check string) "same mutant" a b
          | Error a, Error b -> Alcotest.(check string) "same refusal" a b
          | _ -> Alcotest.fail "mutate is not deterministic")
        Mis.classes

(* ------------------------------------------------------------------ *)
(* Hex-float literals round-trip bit-exactly through the grammar.      *)

let lit_roundtrip_ast f =
  { Ast.point_binds = [ Ast.Bind_data { name = 0; src = 0 };
                        Ast.Bind_row { name = 0; src = 0 } ];
    point_expr = Ast.Bin (Ast.Mul, Ast.Lit f,
                          Ast.Get (Ast.Unit_addr { data = 0; row = 0; shift = 0 }));
    row_binds = [ Ast.Bind_data { name = 0; src = 0 };
                  Ast.Bind_row { name = 0; src = 0 } ];
    row_out = Ast.Out_unit { lp = 1 };
    row_expr = Ast.Bin (Ast.Mul, Ast.Lit f,
                        Ast.Get (Ast.Unit_addr { data = 0; row = 0; shift = 0 }));
    reg_name = "yasksite.kern.test" }

let hex_float_roundtrip =
  QCheck.Test.make
    ~name:"float literals round-trip the printed grammar bit-exactly"
    ~count:500
    QCheck.(pair int64 bool)
    (fun (bits, negate) ->
      let f = Int64.float_of_bits bits in
      let f = if negate then -.f else f in
      if Float.is_nan f then true  (* Codegen refuses NaN; grammar too *)
      else
        match Ast.parse (Ast.print (lit_roundtrip_ast f)) with
        | Error _ -> false
        | Ok ast -> (
            match ast.Ast.row_expr with
            | Ast.Bin (_, Ast.Lit f', _) ->
                Int64.bits_of_float f' = Int64.bits_of_float f
            | _ -> false))

(* ------------------------------------------------------------------ *)
(* Rule-table integration: the YS6xx family is enumerable.             *)

let test_rules_enumerate_ys6xx () =
  let codes = List.map (fun (c, _, _) -> c) Lint.rules in
  List.iter
    (fun c ->
      if not (List.mem c codes) then
        Alcotest.failf "rule table lacks %s" c)
    [ "YS600"; "YS601"; "YS602"; "YS603"; "YS604"; "YS605"; "YS606";
      "YS607"; "YS608"; "YS609"; "YS610"; "YS611"; "YS612" ];
  let json = D.rules_to_json Lint.rules in
  Alcotest.(check bool)
    "JSON rule dump names YS612" true
    (Astring_contains.contains json "YS612");
  let text = D.rules_to_text Lint.rules in
  Alcotest.(check bool)
    "text rule dump names YS600" true
    (Astring_contains.contains text "YS600")

(* ------------------------------------------------------------------ *)
(* The engine gate: a rejected source never runs.                      *)

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (match old with Some v -> v | None -> ""))
    f

let with_tmp_store f =
  let root = Filename.temp_file "yasksite-nl-test" "" in
  Sys.remove root;
  let finally () =
    Native.reset_for_tests ();
    Cert.clear ();
    Cert.set_store None;
    let rec rm p =
      if Sys.is_directory p then begin
        Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
    in
    try rm root with Sys_error _ | Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      Native.reset_for_tests ();
      Cert.clear ();
      let store = Store.open_root root in
      Native.set_store (Some store);
      f root store)

let heat1 =
  Spec.v ~name:"heat1" ~rank:1
    Stencil.Dsl.(
      c 0.25 *: fld [ -1 ] +: (c 0.5 *: fld [ 0 ]) +: (c 0.25 *: fld [ 1 ]))

let make_grid ~halo ~dims seed =
  let rng = Prng.create ~seed in
  let g = Grid.create ~halo ~dims () in
  Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
  Grid.halo_dirichlet g 0.25;
  g

(* One codegen-backend sweep; returns whether it is bit-identical to
   the plan interpreter (it must be, kernel or fallback). *)
let sweep_codegen spec ~seed =
  let halo = Analysis.halo (Analysis.of_spec spec) in
  let dims = [| 18 |] in
  let a = make_grid ~halo ~dims seed in
  let o = Grid.create ~halo ~dims () in
  ignore
    (Sweep.run ~backend:Sweep.Codegen_backend spec ~inputs:[| a |] ~output:o);
  let p = Grid.create ~halo ~dims () in
  let a' = make_grid ~halo ~dims seed in
  ignore (Sweep.run ~backend:Sweep.Plan_backend spec ~inputs:[| a' |] ~output:p);
  Grid.max_abs_diff o p = 0.0

let test_gate_rejects_miscompile () =
  with_tmp_store @@ fun _root _store ->
  if Native.available () then begin
    (* Inject a real miscompile into the resolution path: the validator
       must reject it, the engine must fall back, and the sweep must
       stay bit-identical via the interpreter. *)
    Native.set_source_transform
      (Some
         (fun src ->
           match Mis.mutate ~seed:5 Mis.Coeff_perturb src with
           | Ok m -> m
           | Error _ -> src));
    Alcotest.(check bool)
      "sweep bit-identical via interpreter fallback" true
      (sweep_codegen heat1 ~seed:3);
    let s = Native.stats () in
    Alcotest.(check bool)
      "validator rejected the mutant" true
      (s.Native.validator_rejections > 0);
    Alcotest.(check int) "nothing was compiled" 0 s.Native.compiles;
    Alcotest.(check bool) "fallback counted" true (s.Native.fallbacks > 0)
  end

let test_gate_accepts_and_certifies () =
  with_tmp_store @@ fun _root store ->
  if Native.available () then begin
    Cert.set_store (Some store);
    assert (sweep_codegen heat1 ~seed:4);
    let s1 = Native.stats () in
    Alcotest.(check int) "cold resolution validates once" 1
      s1.Native.validations;
    Alcotest.(check int) "no rejection" 0 s1.Native.validator_rejections;
    Alcotest.(check int) "one compile" 1 s1.Native.compiles;
    Alcotest.(check bool)
      "a native certificate was recorded" true (Cert.native_size () > 0);
    (* Warm: new process-state (memo cleared) revives the kernel from
       the store; the persistent certificate skips re-validation. *)
    Native.reset_for_tests ();
    Cert.clear ();
    Native.set_store (Some store);
    Cert.set_store (Some store);
    assert (sweep_codegen heat1 ~seed:4);
    let s2 = Native.stats () in
    Alcotest.(check int) "warm resolution skips the validator" 0
      s2.Native.validations;
    Alcotest.(check int) "warm comes from the store" 1 s2.Native.store_hits;
    (* A changed source (same key) must NOT ride the old certificate:
       the digest in the certificate pins the validated bytes. *)
    Native.reset_for_tests ();
    Native.set_store (Some store);
    Cert.set_store (Some store);
    Native.set_source_transform
      (Some
         (fun src ->
           match Mis.mutate ~seed:5 Mis.Coeff_perturb src with
           | Ok m -> m
           | Error _ -> src));
    assert (sweep_codegen heat1 ~seed:4);
    let s3 = Native.stats () in
    Alcotest.(check bool)
      "digest mismatch re-validates and rejects" true
      (s3.Native.validator_rejections > 0)
  end

let test_no_cert_env_disables_skip () =
  with_tmp_store @@ fun _root store ->
  if Native.available () then
    with_env "YASKSITE_NO_CERT" "1" @@ fun () ->
    Cert.set_store (Some store);
    assert (sweep_codegen heat1 ~seed:6);
    Native.reset_for_tests ();
    Native.set_store (Some store);
    assert (sweep_codegen heat1 ~seed:6);
    let s = Native.stats () in
    Alcotest.(check int)
      "with certificates disabled every resolution validates" 1
      s.Native.validations

(* ------------------------------------------------------------------ *)
(* Stale kern-v1 payload detection.                                    *)

let test_payload_staleness () =
  let tc = Some ("ocamlfind version 9.99.9", [ "-shared"; "-w"; "-a" ]) in
  Alcotest.(check bool)
    "legacy headerless payload is stale" true
    (Native.payload_stale ~toolchain:tc "\xca\xferaw cmxs bytes");
  Alcotest.(check bool)
    "header with another compiler version is stale" true
    (Native.payload_stale ~toolchain:tc
       "yasksite-kern-payload v1\n1\nocamlfind version 1.0.0\n-shared -w -a\nbytes");
  Alcotest.(check bool)
    "matching header is fresh" false
    (Native.payload_stale ~toolchain:tc
       (Printf.sprintf "yasksite-kern-payload v1\n%d\nocamlfind version 9.99.9\n-shared -w -a\nbytes"
          Codegen.abi));
  Alcotest.(check bool)
    "old codegen ABI is stale even without a toolchain" true
    (Native.payload_stale ~toolchain:None
       "yasksite-kern-payload v1\n0\nany\n-shared\nbytes")

let test_stale_scan_and_gc () =
  with_tmp_store @@ fun _root store ->
  (* A legacy (headerless) entry planted directly in kern-v1 is flagged
     stale and dropped by gc_stale, whatever the toolchain. *)
  Store.put store ~ns:Native.store_ns ~key:"legacy-key" "not a payload";
  Alcotest.(check bool)
    "legacy entry flagged" true
    (List.mem "legacy-key" (Native.stale_kernels store));
  let removed = Native.gc_stale store in
  Alcotest.(check bool) "stale entry removed" true (removed >= 1);
  Alcotest.(check bool)
    "gone from the store" true
    (Store.get store ~ns:Native.store_ns ~key:"legacy-key" = None);
  Alcotest.(check bool)
    "scan now clean of it" true
    (not (List.mem "legacy-key" (Native.stale_kernels store)))

let test_fresh_payload_not_stale_end_to_end () =
  with_tmp_store @@ fun _root store ->
  if Native.available () then begin
    assert (sweep_codegen heat1 ~seed:9);
    (* The freshly committed payload carries a current header: the
       stale scan must not flag it. *)
    Alcotest.(check (list string))
      "freshly compiled kernel is not stale" []
      (Native.stale_kernels store);
    (* And stats must show the validator ran (part of satellite 3:
       counters visible end to end). *)
    let json = Native.stats_json () in
    Alcotest.(check bool)
      "stats_json carries validations" true
      (Astring_contains.contains json "\"validations\":1");
    Alcotest.(check bool)
      "stats_json carries validator_rejections" true
      (Astring_contains.contains json "\"validator_rejections\":0")
  end

(* ------------------------------------------------------------------ *)
(* Validator refusals (YS612) and parse rejections (YS600).            *)

let test_unparseable_source_is_ys600 () =
  match emitted_suite () with
  | [] -> Alcotest.fail "empty suite"
  | (_, plan, v, inputs, src) :: _ ->
      let broken = src ^ "\nlet stray = ()\n" in
      (match NL.check ~plan ~variant:v ~inputs broken with
      | [ d ] -> Alcotest.(check string) "YS600" "YS600" d.D.code
      | ds ->
          Alcotest.failf "expected exactly one YS600, got %d findings"
            (List.length ds));
      match NL.validate ~plan ~variant:v ~inputs broken with
      | Ok () -> Alcotest.fail "validate must reject an unparseable unit"
      | Error _ -> ()

let test_unresolved_plan_is_ys612 () =
  let accesses = [| { Stencil.Expr.field = 0; offsets = [| 0 |] } |] in
  let body =
    Stencil.Plan.Program
      { code = [| Stencil.Plan.Load 0; Stencil.Plan.Sym "r"; Stencil.Plan.Mul |];
        depth = 2 }
  in
  let plan = Stencil.Plan.v ~name:"sym" ~rank:1 ~n_fields:1 ~accesses ~body in
  match emitted_suite () with
  | [] -> Alcotest.fail "empty suite"
  | (_, _, _, _, src) :: _ -> (
      let halo = [| 0 |] in
      let g = Grid.create ~halo ~dims:[| 8 |] () in
      let v =
        Codegen.variant_of ~plan ~inputs:[| g |] ~output:(Grid.create ~halo ~dims:[| 8 |] ())
      in
      match NL.check ~plan ~variant:v ~inputs:[| g |] src with
      | ds when List.exists (fun d -> d.D.code = "YS612") ds -> ()
      | ds ->
          Alcotest.failf "expected YS612 for a Sym-bearing plan, got [%s]"
            (String.concat "," (List.map (fun d -> d.D.code) ds)))

let suite =
  [ Alcotest.test_case "whole suite validates (no false rejections)" `Quick
      test_suite_validates;
    Alcotest.test_case "checked AST round-trips print/parse" `Quick
      test_ast_roundtrip;
    Alcotest.test_case "mutation corpus: 100% kill rate" `Quick
      test_mutation_kill_rate;
    Alcotest.test_case "mutants differ from their source" `Quick
      test_mutants_are_distinct;
    Alcotest.test_case "mutation is seed-deterministic" `Quick
      test_mutation_deterministic;
    qt hex_float_roundtrip;
    Alcotest.test_case "rule table enumerates YS6xx" `Quick
      test_rules_enumerate_ys6xx;
    Alcotest.test_case "engine gate rejects an injected miscompile" `Quick
      test_gate_rejects_miscompile;
    Alcotest.test_case "engine gate certifies and skips warm validation"
      `Quick test_gate_accepts_and_certifies;
    Alcotest.test_case "YASKSITE_NO_CERT disables the warm skip" `Quick
      test_no_cert_env_disables_skip;
    Alcotest.test_case "payload staleness predicate" `Quick
      test_payload_staleness;
    Alcotest.test_case "stale kern-v1 scan and gc" `Quick
      test_stale_scan_and_gc;
    Alcotest.test_case "fresh payloads carry a current header" `Quick
      test_fresh_payload_not_stale_end_to_end;
    Alcotest.test_case "unparseable unit is YS600" `Quick
      test_unparseable_source_is_ys600;
    Alcotest.test_case "unevaluable plan is YS612" `Quick
      test_unresolved_plan_is_ys612 ]
