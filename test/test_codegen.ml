(* The plan→native codegen backend.

   Contract under test: a sweep on [Codegen_backend] — a natively
   compiled, fully unrolled specialization of the kernel plan — is
   bit-identical to both interpreters (plan driver and closure tree)
   across ranks, layouts, blocking, wavefronts and sanitized runs; the
   compiled artifact round-trips through the kern-v1 store schema
   (warm runs skip the compiler entirely); corrupted or garbage store
   entries recompile instead of loading; and a machine without a
   toolchain degrades to the plan interpreter with a warning, never a
   failure. Plus the satellite coverage: the three-way backend parser
   and its precedence chain. *)

module Grid = Yasksite_grid.Grid
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Gen = Yasksite_stencil.Gen
module Dsl = Yasksite_stencil.Dsl
module Plan = Yasksite_stencil.Plan
module Expr = Yasksite_stencil.Expr
module Lower = Yasksite_stencil.Lower
module Codegen = Yasksite_stencil.Codegen
module Config = Yasksite_ecm.Config
module Sweep = Yasksite_engine.Sweep
module Wavefront = Yasksite_engine.Wavefront
module Sanitizer = Yasksite_engine.Sanitizer
module Native = Yasksite_engine.Native
module Store = Yasksite_store.Store
module Pool = Yasksite_util.Pool
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let all_backends =
  [ Sweep.Plan_backend; Sweep.Closure_backend; Sweep.Codegen_backend ]

let make_grid ?(layout = Grid.Linear) ~halo ~dims seed =
  let rng = Prng.create ~seed in
  let g = Grid.create ~halo ~layout ~dims () in
  Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
  Grid.halo_dirichlet g 0.25;
  g

let force_program spec =
  Spec.v ~name:spec.Spec.name ~rank:spec.Spec.rank
    ~n_fields:spec.Spec.n_fields
    Dsl.(spec.Spec.expr /: c 1.0)

let heat1 =
  Spec.v ~name:"heat1" ~rank:1
    Dsl.(c 0.25 *: fld [ -1 ] +: (c 0.5 *: fld [ 0 ]) +: (c 0.25 *: fld [ 1 ]))

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (match old with Some v -> v | None -> ""))
    f

(* ------------------------------------------------------------------ *)
(* Backend parsing and precedence (satellite).                         *)

let test_backend_of_string () =
  (match Sweep.backend_of_string " CodeGen " with
  | Ok Sweep.Codegen_backend -> ()
  | _ -> Alcotest.fail "\" CodeGen \" should parse to Codegen_backend");
  match Sweep.backend_of_string "jit" with
  | Ok _ -> Alcotest.fail "\"jit\" should be rejected"
  | Error msg ->
      List.iter
        (fun name ->
          if not (contains ~needle:(Printf.sprintf "%S" name) msg) then
            Alcotest.failf "rejection message %S does not list %s" msg name)
        [ "plan"; "closure"; "codegen" ]

let test_backend_precedence () =
  Fun.protect ~finally:Sweep.clear_default_backend @@ fun () ->
  with_env "YASKSITE_BACKEND" "closure" @@ fun () ->
  Sweep.clear_default_backend ();
  Alcotest.(check string)
    "env wins over the built-in default" "closure"
    (Sweep.backend_name (Sweep.default_backend ()));
  Sweep.set_default_backend Sweep.Codegen_backend;
  Alcotest.(check string)
    "explicit override wins over the environment" "codegen"
    (Sweep.backend_name (Sweep.default_backend ()));
  Sweep.clear_default_backend ();
  with_env "YASKSITE_BACKEND" "" @@ fun () ->
  Alcotest.(check string)
    "plan is the built-in default" "plan"
    (Sweep.backend_name (Sweep.default_backend ()))

let test_env_codegen_selected () =
  Fun.protect ~finally:Sweep.clear_default_backend @@ fun () ->
  with_env "YASKSITE_BACKEND" "codegen" @@ fun () ->
  Sweep.clear_default_backend ();
  Alcotest.(check string)
    "YASKSITE_BACKEND=codegen selects the codegen backend" "codegen"
    (Sweep.backend_name (Sweep.default_backend ()))

(* ------------------------------------------------------------------ *)
(* Source emission.                                                    *)

let test_source_shape () =
  let plan = Lower.lower heat1 in
  let g = make_grid ~halo:[| 1 |] ~dims:[| 8 |] 1 in
  let o = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  let v = Codegen.variant_of ~plan ~inputs:[| g |] ~output:o in
  match Codegen.source ~plan v with
  | Error e -> Alcotest.failf "heat1 should be generatable: %s" e
  | Ok src ->
      List.iter
        (fun needle ->
          if not (contains ~needle src) then
            Alcotest.failf "generated source lacks %S:\n%s" needle src)
        [ "Callback.register";
          Codegen.callback_name (Codegen.key ~plan v);
          "kern_row";
          "kern_point";
          "0x1p-2" (* 0.25, as an exact hex-float literal *) ]

let test_source_refuses_unresolved () =
  let accesses = [| { Expr.field = 0; offsets = [| 0 |] } |] in
  let body =
    Plan.Program { code = [| Plan.Load 0; Plan.Sym "r"; Plan.Mul |]; depth = 2 }
  in
  let plan = Plan.v ~name:"sym" ~rank:1 ~n_fields:1 ~accesses ~body in
  (match Codegen.supported plan with
  | Ok () -> Alcotest.fail "a Sym-bearing plan must be unsupported"
  | Error _ -> ());
  let nan_plan =
    Plan.v ~name:"nan" ~rank:1 ~n_fields:1 ~accesses
      ~body:(Plan.Groups [| { Plan.scale = None;
                              terms = [| { Plan.coeff = Float.nan; slot = 0 } |] } |])
  in
  match Codegen.supported nan_plan with
  | Ok () -> Alcotest.fail "a NaN coefficient must be unsupported"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Three-way bit-identity (tentpole property).                         *)

(* One sweep of a random stencil, same grids and config, all three
   backends: outputs must be bit-identical and the stats equal. *)
let sweep_three_way ~seed =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:3 in
  let spec = Gen.spec rng ~rank () in
  let spec = if Prng.int rng ~bound:2 = 0 then force_program spec else spec in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:10) in
  let layout =
    if Prng.int rng ~bound:2 = 0 then Grid.Linear
    else begin
      let f = Array.make rank 1 in
      f.(rank - 1) <- 2;
      if rank > 1 then f.(rank - 2) <- 2;
      Grid.Folded f
    end
  in
  let cfg =
    let fold = match layout with Grid.Folded f -> Some f | _ -> None in
    let block =
      if Prng.int rng ~bound:2 = 0 then begin
        let b = Array.map (fun d -> 1 + Prng.int rng ~bound:d) dims in
        b.(0) <- 0;
        Some b
      end
      else None
    in
    Config.v ?fold ?block ()
  in
  let run backend =
    let a = make_grid ~layout ~halo ~dims (seed + 1000) in
    let o = Grid.create ~halo ~layout ~dims () in
    let s = Sweep.run ~backend ~config:cfg spec ~inputs:[| a |] ~output:o in
    (o, s)
  in
  let o_code, s_code = run Sweep.Codegen_backend in
  let o_plan, s_plan = run Sweep.Plan_backend in
  let o_closure, s_closure = run Sweep.Closure_backend in
  Grid.max_abs_diff o_code o_plan = 0.0
  && Grid.max_abs_diff o_code o_closure = 0.0
  && s_code = s_plan && s_code = s_closure

let codegen_three_way_sweep =
  QCheck.Test.make ~name:"codegen bit-reproduces plan and closure backends"
    ~count:20 QCheck.small_int (fun seed -> sweep_three_way ~seed)

let wavefront_three_way ~seed =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:3 in
  let spec = Gen.spec rng ~rank () in
  let spec = if Prng.int rng ~bound:2 = 0 then force_program spec else spec in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:8) in
  let steps = 1 + Prng.int rng ~bound:4 in
  let wf = 2 + Prng.int rng ~bound:3 in
  let stagger = halo.(0) + 1 + Prng.int rng ~bound:2 in
  let cfg = Config.v ~wavefront:wf ~wavefront_stagger:stagger () in
  let run backend =
    let a = make_grid ~halo ~dims (seed + 1) in
    let b = make_grid ~halo ~dims (seed + 2) in
    let final, _ = Wavefront.steps ~backend ~config:cfg spec ~a ~b ~steps in
    final
  in
  let f_code = run Sweep.Codegen_backend in
  Grid.max_abs_diff f_code (run Sweep.Plan_backend) = 0.0
  && Grid.max_abs_diff f_code (run Sweep.Closure_backend) = 0.0

let codegen_three_way_wavefront =
  QCheck.Test.make ~name:"wavefront agrees across all three backends"
    ~count:10 QCheck.small_int (fun seed -> wavefront_three_way ~seed)

(* A sanitized, gate-checked sweep must agree bit-for-bit too (the
   sanitizer routes codegen through the generated point evaluator). *)
let sanitized_three_way ~seed =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:2 in
  let spec = Gen.spec rng ~rank () in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:8) in
  let run backend =
    let a = make_grid ~halo ~dims (seed + 3) in
    let o = Grid.create ~halo ~dims () in
    let san = Sanitizer.create () in
    let _ = Sweep.run ~backend ~sanitize:san spec ~inputs:[| a |] ~output:o in
    o
  in
  let o_code = run Sweep.Codegen_backend in
  Grid.max_abs_diff o_code (run Sweep.Plan_backend) = 0.0
  && Grid.max_abs_diff o_code (run Sweep.Closure_backend) = 0.0

let codegen_three_way_sanitized =
  QCheck.Test.make ~name:"sanitized sweep agrees across all three backends"
    ~count:10 QCheck.small_int (fun seed -> sanitized_three_way ~seed)

(* The dynamic sanitizer reaches the same verdict on every backend: an
   aliased in-place sweep traps YS452 on codegen exactly as on the
   interpreters. *)
let test_sanitizer_verdict_parity () =
  let codes =
    List.map
      (fun backend ->
        let g = make_grid ~halo:[| 1 |] ~dims:[| 12 |] 6 in
        let san = Sanitizer.create () in
        try
          ignore
            (Sweep.run ~backend ~check:false ~sanitize:san heat1
               ~inputs:[| g |] ~output:g);
          None
        with Sanitizer.Trap t -> Some (Sanitizer.code_of_kind t.Sanitizer.kind))
      all_backends
  in
  List.iter
    (fun c -> Alcotest.(check (option string)) "same verdict" (Some "YS452") c)
    codes

let test_pool_parallel_codegen () =
  let spec = Gen.spec (Prng.create ~seed:42) ~rank:2 () in
  let halo = Analysis.halo (Analysis.of_spec spec) in
  let dims = [| 24; 33 |] in
  let cfg = Config.v ~block:[| 0; 8 |] () in
  let run ?pool backend =
    let a = make_grid ~halo ~dims 99 in
    let o = Grid.create ~halo ~dims () in
    ignore (Sweep.run ?pool ~backend ~config:cfg spec ~inputs:[| a |] ~output:o);
    o
  in
  Pool.with_pool ~domains:3 @@ fun pool ->
  let o_par = run ~pool Sweep.Codegen_backend in
  let o_seq = run Sweep.Plan_backend in
  Alcotest.(check (float 0.0))
    "pool-parallel codegen sweep is bit-identical" 0.0
    (Grid.max_abs_diff o_par o_seq)

(* ------------------------------------------------------------------ *)
(* Store round-trip, corruption, fallback.                             *)

let with_tmp_store f =
  let root =
    Filename.temp_file "yasksite-kern-test" ""
  in
  Sys.remove root;
  let finally () =
    Native.reset_for_tests ();
    let rec rm p =
      if Sys.is_directory p then begin
        Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
    in
    try rm root with Sys_error _ | Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      Native.reset_for_tests ();
      let store = Store.open_root root in
      Native.set_store (Some store);
      f root store)

let sweep_codegen spec ~seed =
  let halo = Analysis.halo (Analysis.of_spec spec) in
  let dims = [| 18 |] in
  let a = make_grid ~halo ~dims seed in
  let o = Grid.create ~halo ~dims () in
  ignore
    (Sweep.run ~backend:Sweep.Codegen_backend spec ~inputs:[| a |] ~output:o);
  let p = Grid.create ~halo ~dims () in
  let a' = make_grid ~halo ~dims seed in
  ignore (Sweep.run ~backend:Sweep.Plan_backend spec ~inputs:[| a' |] ~output:p);
  Grid.max_abs_diff o p = 0.0

let kern_entry_files root =
  let dir = Filename.concat (Filename.concat root "objects") "kern-v1" in
  match Sys.readdir dir with
  | buckets ->
      Array.to_list buckets
      |> List.concat_map (fun b ->
             let bd = Filename.concat dir b in
             Array.to_list (Sys.readdir bd)
             |> List.filter_map (fun n ->
                    if String.length n > 0 && n.[0] = '.' then None
                    else Some (Filename.concat bd n)))
  | exception Sys_error _ -> []

(* Warm runs come from the store without compiling; a corrupted entry
   (flipped bytes on disk → quarantined by the checksum) or a garbage
   payload (valid entry, unloadable bytes) recompiles and repairs. *)
let corrupted_entry_recompiles ~seed =
  with_tmp_store @@ fun root store ->
  if not (Native.available ()) then QCheck.assume_fail ()
  else begin
    let rng = Prng.create ~seed in
    let spec = Gen.spec rng ~rank:1 () in
    assert (sweep_codegen spec ~seed);
    let s1 = Native.stats () in
    (* cold: exactly one compile, nothing from the store *)
    if not (s1.Native.compiles = 1 && s1.Native.store_hits = 0) then false
    else begin
      Native.reset_for_tests ();
      Native.set_store (Some store);
      assert (sweep_codegen spec ~seed);
      let s2 = Native.stats () in
      (* warm: straight from the store, compiler never runs *)
      if not (s2.Native.compiles = 0 && s2.Native.store_hits = 1) then false
      else begin
        let entries = kern_entry_files root in
        if entries = [] then false
        else begin
          (match Prng.int rng ~bound:2 with
          | 0 ->
              (* flip one payload byte on disk: the checksum fails, the
                 entry is quarantined, the get misses *)
              List.iter
                (fun path ->
                  let raw =
                    In_channel.with_open_bin path In_channel.input_all
                  in
                  let i = String.length raw - 1 in
                  let b = Bytes.of_string raw in
                  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
                  Out_channel.with_open_bin path (fun oc ->
                      Out_channel.output_bytes oc b))
                entries
          | _ ->
              (* rewrite the entry through the store API with garbage
                 bytes: the entry is healthy, the load fails *)
              List.iter
                (fun path ->
                  let raw =
                    In_channel.with_open_bin path In_channel.input_all
                  in
                  match String.split_on_char '\t' raw with
                  | _magic :: ns :: key :: _ ->
                      Store.put store ~ns ~key "not a cmxs"
                  | _ -> ())
                entries);
          Native.reset_for_tests ();
          Native.set_store (Some store);
          let ok = sweep_codegen spec ~seed in
          let s3 = Native.stats () in
          (* either corruption mode must end in a recompile, and the
             sweep must still be bit-identical via the fresh kernel *)
          ok && s3.Native.compiles = 1 && s3.Native.store_hits = 0
        end
      end
    end
  end

let codegen_corruption_recompiles =
  QCheck.Test.make
    ~name:"corrupted kern-v1 entries recompile instead of loading" ~count:6
    QCheck.small_int (fun seed -> corrupted_entry_recompiles ~seed)

let test_no_toolchain_fallback () =
  Fun.protect ~finally:(fun () -> Native.reset_for_tests ()) @@ fun () ->
  Native.reset_for_tests ();
  with_env "PATH" "/nonexistent-yasksite-bin" @@ fun () ->
  Alcotest.(check bool) "toolchain invisible" false (Native.available ());
  Alcotest.(check bool)
    "codegen sweep falls back to the plan interpreter" true
    (sweep_codegen heat1 ~seed:7);
  let s = Native.stats () in
  Alcotest.(check bool) "fallbacks counted" true (s.Native.fallbacks > 0);
  Alcotest.(check int) "no compile attempted" 0 s.Native.compiles

let test_store_schema_visible () =
  with_tmp_store @@ fun _root store ->
  if Native.available () then begin
    assert (sweep_codegen heat1 ~seed:3);
    let by_ns = Store.usage_by_ns store in
    match
      List.find_opt (fun u -> u.Store.ns = Native.store_ns) by_ns
    with
    | None -> Alcotest.fail "kern-v1 missing from usage_by_ns"
    | Some u ->
        Alcotest.(check bool) "one kern entry" true (u.Store.ns_entries = 1);
        Alcotest.(check bool) "entry has bytes" true (u.Store.ns_bytes > 0);
        (* gc scoped to another schema must not touch kernels *)
        let r = Store.gc ~ns:"ecm-v1" ~max_size_bytes:0 store in
        Alcotest.(check int) "foreign-ns gc removes nothing" 0 r.Store.removed;
        let r = Store.gc ~ns:Native.store_ns ~max_size_bytes:0 store in
        Alcotest.(check int) "scoped gc evicts the kernel" 1 r.Store.removed
  end

let suite =
  [ Alcotest.test_case "backend_of_string three-way" `Quick
      test_backend_of_string;
    Alcotest.test_case "backend precedence chain" `Quick
      test_backend_precedence;
    Alcotest.test_case "YASKSITE_BACKEND=codegen" `Quick
      test_env_codegen_selected;
    Alcotest.test_case "generated source shape" `Quick test_source_shape;
    Alcotest.test_case "unsupported plans refused" `Quick
      test_source_refuses_unresolved;
    qt codegen_three_way_sweep;
    qt codegen_three_way_wavefront;
    qt codegen_three_way_sanitized;
    Alcotest.test_case "sanitizer verdict identical on codegen" `Quick
      test_sanitizer_verdict_parity;
    Alcotest.test_case "pool-parallel codegen sweep" `Quick
      test_pool_parallel_codegen;
    qt codegen_corruption_recompiles;
    Alcotest.test_case "no-toolchain fallback" `Quick
      test_no_toolchain_fallback;
    Alcotest.test_case "kern-v1 visible to store stats/gc" `Quick
      test_store_schema_visible ]
