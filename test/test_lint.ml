open Yasksite_lint
module Machine = Yasksite_arch.Machine
module Stencil = Yasksite_stencil
module Config = Yasksite_ecm.Config
module Advisor = Yasksite_ecm.Advisor
module Pde = Yasksite_ode.Pde
module Tableau = Yasksite_ode.Tableau
module Variant = Yasksite_offsite.Variant
module Prng = Yasksite_util.Prng
module D = Diagnostic

let qt = QCheck_alcotest.to_alcotest

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds

let has code ds = List.mem code (codes ds)

let check_has src code ds =
  Alcotest.(check bool) (src ^ " flags " ^ code) true (has code ds)

let check_hasnt src code ds =
  Alcotest.(check bool) (src ^ " clean of " ^ code) false (has code ds)

let check_no_errors what ds =
  Alcotest.(check (list string))
    (what ^ " has no error findings")
    [] (codes (D.errors ds))

(* ------------------------------------------------------------------ *)
(* Kernel rules, one positive and one negative case per code           *)

let lint2 src = Kernel_lint.source ~rank:2 src

let test_ys100 () =
  let ds = lint2 "f0(y,x" in
  check_has "unterminated" "YS100" ds;
  Alcotest.(check int) "exit" 1 (Lint.exit_code ds);
  check_hasnt "valid" "YS100" (lint2 "f0(y,x)");
  (* Axis misuse and rank misuse are parser-reported, hence YS100. *)
  check_has "axes swapped" "YS100" (lint2 "f0(x,y)");
  check_has "wrong arity" "YS100" (lint2 "f0(x)")

let test_ys100_position () =
  (* An error at end-of-input must point one past the last byte, not at
     offset 0 — the caret lands after "1 + ". *)
  let src = "1 + " in
  (match Stencil.Parser.parse_expr_located ~rank:1 src with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error (pos, _) ->
      Alcotest.(check int) "error at end of input" (String.length src) pos);
  match Kernel_lint.source ~rank:1 src with
  | [ d ] ->
      Alcotest.(check string) "code" "YS100" d.D.code;
      let rendered = D.render ~src d in
      Alcotest.(check bool) "caret rendered" true (String.contains rendered '^')
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length ds))

let test_ys101 () =
  (* Acceptance case: declared-but-unused input field is an error. *)
  let ds = Kernel_lint.source ~n_fields:2 ~rank:2 "f0(y,x)" in
  check_has "unused f1" "YS101" ds;
  Alcotest.(check int) "exit nonzero" 1 (Lint.exit_code ds);
  check_hasnt "both read" "YS101"
    (Kernel_lint.source ~n_fields:2 ~rank:2 "f0(y,x) + f1(y,x)");
  (* Same rule on a DSL-built spec. *)
  let open Stencil.Dsl in
  let spec =
    Stencil.Spec.v ~name:"dead-input" ~rank:1 ~n_fields:2 (fld [ 0 ])
  in
  check_has "spec unused f1" "YS101" (Kernel_lint.spec spec)

let test_ys102 () =
  let src = "f0(y,x) + f0(y,x)" in
  let ds = lint2 src in
  check_has "duplicate" "YS102" ds;
  (* The caret points at the second occurrence. *)
  (match List.find (fun (d : D.t) -> d.D.code = "YS102") ds with
  | { D.loc = D.Span { pos; _ }; _ } ->
      Alcotest.(check int) "second occurrence" 10 pos
  | _ -> Alcotest.fail "expected a span");
  Alcotest.(check int) "warning only: exit 0" 0 (Lint.exit_code ds);
  check_hasnt "distinct refs" "YS102" (lint2 "f0(y,x) + f0(y,x+1)")

let test_ys103 () =
  (* Acceptance case: division by literal zero, with a caret span. *)
  let src = "f0(y,x) / 0.0" in
  let ds = lint2 src in
  check_has "zero divide" "YS103" ds;
  Alcotest.(check int) "exit nonzero" 1 (Lint.exit_code ds);
  let rendered = D.render_list ~src ~origin:"kernel" ds in
  Alcotest.(check bool) "code in output" true
    (Astring_contains.contains rendered "YS103");
  Alcotest.(check bool) "caret in output" true (String.contains rendered '^');
  check_has "negated zero" "YS103" (lint2 "f0(y,x) / -0.0");
  check_hasnt "nonzero divisor" "YS103" (lint2 "f0(y,x) / 4.0")

let test_ys104 () =
  check_has "symbolic divisor" "YS104" (lint2 "f0(y,x) / h");
  check_hasnt "resolved divisor" "YS104" (lint2 "f0(y,x) / 2.0")

let test_ys105 () =
  check_has "pointwise" "YS105" (lint2 "2.0 * f0(y,x)");
  check_hasnt "has neighbors" "YS105" (lint2 "f0(y,x-1) + f0(y,x+1)")

let test_ys106 () =
  let src = "f0(y,x) + f0(y+1,x)" in
  let ds = lint2 src in
  check_has "one-sided" "YS106" ds;
  (* The caret points at the reference with the extreme offset. *)
  (match List.find (fun (d : D.t) -> d.D.code = "YS106") ds with
  | { D.loc = D.Span { pos; _ }; _ } ->
      Alcotest.(check int) "extreme ref" 10 pos
  | _ -> Alcotest.fail "expected a span");
  check_hasnt "symmetric" "YS106" (lint2 "f0(y-1,x) + f0(y+1,x)");
  (* Asymmetry in a non-streamed dimension is legal for wavefronts. *)
  check_hasnt "x asymmetry" "YS106" (lint2 "f0(y,x) + f0(y,x+1)")

let test_ys107 () =
  let ds = Kernel_lint.source ~rank:1 "1.0 + 2.0" in
  check_has "no field" "YS107" ds;
  Alcotest.(check int) "exit nonzero" 1 (Lint.exit_code ds);
  (* Divisions are still checked even without any reference. *)
  check_has "zero divide, no field" "YS103"
    (Kernel_lint.source ~rank:1 "1.0 / 0.0");
  check_hasnt "reads a field" "YS107" (Kernel_lint.source ~rank:1 "f0(x)")

let test_ys108 () =
  let ds = Kernel_lint.source ~n_fields:1 ~rank:1 "f1(x)" in
  check_has "out of range" "YS108" ds;
  check_hasnt "in range" "YS108" (Kernel_lint.source ~n_fields:2 ~rank:1 "f1(x)")

(* ------------------------------------------------------------------ *)
(* Machine rules                                                       *)

let base_machine =
  "name = toy\n\
   freq_ghz = 2.0\n\
   cores = 4\n\
   dp_lanes = 4\n\
   fma_ports = 1\n\
   mem_bw_gbs = 20.0\n\
   \n\
   [cache]\n\
   name = L1\n\
   size_kib = 32\n\
   assoc = 8\n\
   bytes_per_cycle = 32\n\
   latency_cycles = 4\n\
   \n\
   [cache]\n\
   name = L2\n\
   size_kib = 256\n\
   assoc = 8\n\
   bytes_per_cycle = 16\n\
   latency_cycles = 12\n"

(* Rewrite one "key = value" line of [base_machine]. [nth] selects among
   several occurrences of the key (sections share key names). *)
let tweak ?(nth = 0) key value =
  let n = ref (-1) in
  String.split_on_char '\n' base_machine
  |> List.map (fun line ->
         match String.index_opt line '=' with
         | Some j when String.trim (String.sub line 0 j) = key ->
             incr n;
             if !n = nth then Printf.sprintf "%s = %s" key value else line
         | _ -> line)
  |> String.concat "\n"

let test_machine_clean () =
  check_no_errors "base machine" (Machine_lint.source base_machine);
  Alcotest.(check int) "exit 0" 0
    (Lint.exit_code (Machine_lint.source base_machine))

let test_ys200 () =
  check_has "garbage line" "YS200" (Machine_lint.source "what is this\n");
  let without_name =
    String.concat "\n"
      (List.filter
         (fun line -> String.trim line <> "name = toy")
         (String.split_on_char '\n' base_machine))
  in
  check_has "missing name" "YS200" (Machine_lint.source without_name);
  check_has "bad number" "YS200"
    (Machine_lint.source (tweak "freq_ghz" "fast"));
  check_has "unknown vendor" "YS200"
    (Machine_lint.source ("vendor = arm\n" ^ base_machine));
  check_has "unreadable file" "YS200" (Machine_lint.file "no/such/file.machine");
  check_hasnt "base" "YS200" (Machine_lint.source base_machine)

let test_ys201 () =
  (* Acceptance case: a non-monotone hierarchy is an error, located at
     the offending size line and rendered with that line underlined. *)
  let src = tweak ~nth:1 "size_kib" "16" in
  let ds = Machine_lint.source src in
  check_has "shrinking L2" "YS201" ds;
  Alcotest.(check int) "exit nonzero" 1 (Lint.exit_code ds);
  let d = List.find (fun (d : D.t) -> d.D.code = "YS201") ds in
  (match d.D.loc with
  | D.Line n ->
      Alcotest.(check int) "points at L2 size line" 17 n
  | _ -> Alcotest.fail "expected a line location");
  let rendered = D.render ~src ~origin:"toy.machine" d in
  Alcotest.(check bool) "offending line shown" true
    (Astring_contains.contains rendered "size_kib = 16");
  Alcotest.(check bool) "underlined" true (String.contains rendered '^');
  check_hasnt "monotone" "YS201" (Machine_lint.source base_machine)

let test_ys202 () =
  check_has "zero bandwidth" "YS202"
    (Machine_lint.source (tweak "bytes_per_cycle" "0"));
  check_has "negative memory bw" "YS202"
    (Machine_lint.source (tweak "mem_bw_gbs" "-1.0"));
  check_hasnt "base" "YS202" (Machine_lint.source base_machine)

let test_ys203 () =
  check_has "zero latency" "YS203"
    (Machine_lint.source (tweak "latency_cycles" "0"));
  check_hasnt "base" "YS203" (Machine_lint.source base_machine)

let test_ys204 () =
  (* 48-byte lines with a 32-byte vector fold: neither divides the other.
     Sizes keep the set count integral so only YS204 fires. *)
  let src =
    tweak "size_kib" "3" |> fun s ->
    String.concat "\n"
      (List.map
         (fun line ->
           if String.trim line = "assoc = 8" then "assoc = 4\nline_bytes = 48"
           else line)
         (String.split_on_char '\n' s))
  in
  let ds = Machine_lint.source src in
  check_has "misaligned line" "YS204" ds;
  check_hasnt "aligned 64B" "YS204" (Machine_lint.source base_machine)

let test_ys205 () =
  let src =
    "name = toy\nfreq_ghz = 2.0\ncores = 4\ndp_lanes = 4\nfma_ports = 1\n\
     mem_bw_gbs = 20.0\n"
  in
  check_has "no caches" "YS205" (Machine_lint.source src);
  check_hasnt "has caches" "YS205" (Machine_lint.source base_machine)

let test_ys206 () =
  let ds = Machine_lint.source (tweak ~nth:1 "latency_cycles" "4") in
  check_has "flat latency" "YS206" ds;
  Alcotest.(check int) "warning only" 0 (Lint.exit_code ds);
  check_hasnt "increasing" "YS206" (Machine_lint.source base_machine)

let test_ys207 () =
  check_has "zero cores" "YS207" (Machine_lint.source (tweak "cores" "0"));
  (* 32 KiB with assoc 7 and 64-byte lines: no integral set count. *)
  check_has "bad set count" "YS207"
    (Machine_lint.source (tweak "assoc" "7"));
  check_hasnt "base" "YS207" (Machine_lint.source base_machine)

let test_ys208 () =
  check_has "duplicate key" "YS208"
    (Machine_lint.source (base_machine ^ "bytes_per_cycle = 8\n"));
  check_hasnt "base" "YS208" (Machine_lint.source base_machine)

let test_machine_value () =
  check_no_errors "test_chip" (Machine_lint.machine Machine.test_chip);
  check_no_errors "cascade_lake" (Machine_lint.machine Machine.cascade_lake);
  check_no_errors "rome" (Machine_lint.machine Machine.rome)

(* ------------------------------------------------------------------ *)
(* Config rules                                                        *)

let heat2d =
  Stencil.Analysis.of_spec
    (Stencil.Suite.resolve_defaults Stencil.Suite.heat_2d_5pt)

let m = Machine.test_chip

let cfg = Config.v

let test_ys301 () =
  (* Acceptance case: an 8000-wide explicit block needs ~188 KiB of rows
     while the largest share of the TestChip is 256 KiB (budget 128 KiB). *)
  let dims = [| 8192; 8192 |] in
  let ds =
    Config_lint.config m heat2d ~dims (cfg ~block:[| 0; 8000 |] ())
  in
  check_has "oversized block" "YS301" ds;
  Alcotest.(check int) "exit nonzero" 1 (Lint.exit_code ds);
  check_hasnt "modest block" "YS301"
    (Config_lint.config m heat2d ~dims (cfg ~block:[| 0; 64 |] ()));
  (* An unblocked config never triggers the block rule. *)
  check_hasnt "unblocked" "YS301" (Config_lint.config m heat2d ~dims (cfg ()))

let test_ys302 () =
  let dims = [| 48; 48 |] in
  check_has "5 does not divide 48" "YS302"
    (Config_lint.config m heat2d ~dims (cfg ~fold:[| 1; 5 |] ()));
  check_hasnt "4 divides 48" "YS302"
    (Config_lint.config m heat2d ~dims (cfg ~fold:[| 1; 4 |] ()))

let test_ys303_ys304 () =
  let dims = [| 48; 48 |] in
  let ds = Config_lint.space m heat2d ~dims [] in
  check_has "empty space" "YS303" ds;
  Alcotest.(check int) "exit nonzero" 1 (Lint.exit_code ds);
  let ds1 = Config_lint.space m heat2d ~dims [ cfg () ] in
  check_has "singleton space" "YS304" ds1;
  check_hasnt "real space" "YS304"
    (Config_lint.space m heat2d ~dims [ cfg (); cfg ~threads:2 () ])

let test_ys305 () =
  let dims = [| 48; 48 |] in
  let ds = Config_lint.config m heat2d ~dims (cfg ~block:[| 0; 0; 16 |] ()) in
  check_has "rank mismatch" "YS305" ds;
  (* Structural errors suppress the per-dimension rules. *)
  Alcotest.(check bool) "only YS305" true
    (List.for_all (fun (d : D.t) -> d.D.code = "YS305") ds);
  check_has "dims mismatch" "YS305"
    (Config_lint.config m heat2d ~dims:[| 48 |] (cfg ()));
  check_hasnt "matching ranks" "YS305"
    (Config_lint.config m heat2d ~dims (cfg ~block:[| 0; 16 |] ()))

let test_ys306 () =
  let dims = [| 64; 64 |] in
  check_has "wavefront + NT stores" "YS306"
    (Config_lint.config m heat2d ~dims
       (cfg ~wavefront:4 ~streaming_stores:true ()));
  check_hasnt "wavefront alone" "YS306"
    (Config_lint.config m heat2d ~dims (cfg ~wavefront:4 ()))

let test_ys307 () =
  let dims = [| 64; 64 |] in
  check_has "oversubscribed" "YS307"
    (Config_lint.config m heat2d ~dims (cfg ~threads:8 ()));
  check_hasnt "within cores" "YS307"
    (Config_lint.config m heat2d ~dims (cfg ~threads:4 ()))

let test_ys308 () =
  let dims = [| 64; 64 |] in
  check_has "over-packed fold" "YS308"
    (Config_lint.config m heat2d ~dims (cfg ~fold:[| 2; 4 |] ()));
  check_hasnt "matching fold" "YS308"
    (Config_lint.config m heat2d ~dims (cfg ~fold:[| 1; 4 |] ()))

let test_ys309 () =
  check_has "window too deep" "YS309"
    (Config_lint.config m heat2d ~dims:[| 4096; 4096 |] (cfg ~wavefront:8 ()));
  check_hasnt "window fits" "YS309"
    (Config_lint.config m heat2d ~dims:[| 64; 64 |] (cfg ~wavefront:4 ()))

(* ------------------------------------------------------------------ *)
(* Gate and end-to-end wiring                                          *)

let test_gate () =
  Alcotest.(check bool) "clean passes" true
    (try
       Lint.gate ~context:"t" [];
       Lint.gate ~context:"t" [ D.warningf ~code:"YS102" "w" ];
       true
     with Lint.Gate_error _ -> false);
  Alcotest.(check bool) "errors raise" true
    (try
       Lint.gate ~context:"t" [ D.errorf ~code:"YS103" "division by zero" ];
       false
     with Lint.Gate_error msg ->
       Astring_contains.contains msg "YS103"
       && Astring_contains.contains msg "t:")

let test_tuner_gate () =
  (* A spec with a dead input must be refused before any model run. *)
  let open Stencil.Dsl in
  let bad =
    Stencil.Spec.v ~name:"dead" ~rank:1 ~n_fields:2
      (fld [ -1 ] +: fld [ 1 ])
  in
  Alcotest.(check bool) "tuner refuses" true
    (try
       ignore
         (Yasksite_tuner.Tuner.tune_analytic m bad ~dims:[| 32 |] ~threads:1);
       false
     with Lint.Gate_error msg -> Astring_contains.contains msg "YS101")

let test_rules_table () =
  (* Every code the analyzers can emit is documented, exactly once. *)
  let table = List.map (fun (c, _, _) -> c) Lint.rules in
  Alcotest.(check int) "unique codes" (List.length table)
    (List.length (List.sort_uniq compare table));
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " documented") true (List.mem code table))
    [ "YS100"; "YS101"; "YS102"; "YS103"; "YS104"; "YS105"; "YS106"; "YS107";
      "YS108"; "YS200"; "YS201"; "YS202"; "YS203"; "YS204"; "YS205"; "YS206";
      "YS207"; "YS208"; "YS301"; "YS302"; "YS303"; "YS304"; "YS305"; "YS306";
      "YS307"; "YS308"; "YS309"; "YS400"; "YS401"; "YS402"; "YS403"; "YS404";
      "YS405"; "YS406"; "YS407"; "YS408"; "YS409"; "YS450"; "YS451"; "YS452";
      "YS453"; "YS454"; "YS455"; "YS456" ]

(* ------------------------------------------------------------------ *)
(* Self-lint of everything the repo ships                              *)

let test_selflint_suite () =
  List.iter
    (fun s ->
      let s = Stencil.Suite.resolve_defaults s in
      check_no_errors s.Stencil.Spec.name (Kernel_lint.spec s))
    Stencil.Suite.all

let test_selflint_examples () =
  (* The specs the shipped examples construct (examples/quickstart.ml and
     examples/multigrid.ml build theirs from scratch; the rest use the
     suite, covered above). *)
  let open Stencil.Dsl in
  let quickstart =
    Stencil.Spec.v ~name:"my-heat-3d" ~rank:3
      ((c 0.1
       *: sum
            [ fld [ -1; 0; 0 ]; fld [ 1; 0; 0 ]; fld [ 0; -1; 0 ];
              fld [ 0; 1; 0 ]; fld [ 0; 0; -1 ]; fld [ 0; 0; 1 ] ])
      +: (c 0.4 *: fld [ 0; 0; 0 ]))
  in
  let h2 = 1.0 /. 1024.0 and omega = 2.0 /. 3.0 in
  let jacobi =
    Stencil.Spec.v ~name:"mg-jacobi" ~rank:1 ~n_fields:2
      ((c (1.0 -. omega) *: fld [ 0 ])
      +: (c (omega /. 2.0)
         *: (fld [ -1 ] +: fld [ 1 ] +: (c h2 *: fld ~field:1 [ 0 ]))))
  in
  let residual =
    Stencil.Spec.v ~name:"mg-residual" ~rank:1 ~n_fields:2
      (fld ~field:1 [ 0 ]
      +: (c (1.0 /. h2)
         *: (fld [ -1 ] -: (c 2.0 *: fld [ 0 ]) +: fld [ 1 ])))
  in
  List.iter
    (fun s -> check_no_errors s.Stencil.Spec.name (Kernel_lint.spec s))
    [ quickstart; jacobi; residual ]

let test_selflint_variants () =
  (* Every stage kernel of every ODE variant must pass the gate the
     executor now applies. *)
  let pde = Pde.heat ~rank:2 ~n:16 ~alpha:1.0 in
  List.iter
    (fun (v : Variant.t) ->
      List.iter
        (fun (k : Variant.kernel) ->
          check_no_errors k.Variant.spec.Stencil.Spec.name
            (Kernel_lint.spec k.Variant.spec))
        v.Variant.kernels)
    (Variant.all Tableau.rk4 pde ~h:1e-4)

let test_selflint_machines () =
  let dir = "../machines" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".machine")
  in
  Alcotest.(check bool) "found shipped machine files" true
    (List.length files >= 2);
  List.iter
    (fun f ->
      let ds = Machine_lint.file (Filename.concat dir f) in
      check_no_errors f ds;
      Alcotest.(check int) (f ^ " exits 0") 0 (Lint.exit_code ds))
    files

let test_selflint_advisor_space () =
  (* The advisor's own search space must survive its own lint. *)
  let dims = [| 48; 48 |] in
  let space = Advisor.space m ~dims ~threads:2 ~rank:2 in
  check_no_errors "advisor space" (Config_lint.space m heat2d ~dims space)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let lint_total_on_strings =
  QCheck.Test.make ~name:"kernel lint total on arbitrary strings" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 40))
    (fun src ->
      let ds = Kernel_lint.source ~rank:2 src in
      (* Parse failures map to YS100; accepted inputs never do. *)
      (match Stencil.Parser.parse_expr ~rank:2 src with
      | Ok _ -> not (has "YS100" ds)
      | Error _ -> has "YS100" ds)
      && String.length (D.render_list ~src ds) >= 0)

let lint_total_on_generated_specs =
  QCheck.Test.make ~name:"lint never raises on generated kernels" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let rank = 1 + Prng.int rng ~bound:3 in
      let spec = Stencil.Gen.spec rng ~rank () in
      let ds = Kernel_lint.spec spec in
      (* Generated kernels are well-formed: no error-severity findings,
         and re-linting their printed source agrees on that. *)
      (not (D.has_errors ds))
      &&
      let printed = Stencil.Expr.to_c spec.Stencil.Spec.expr in
      not
        (D.has_errors
           (Kernel_lint.source ~n_fields:spec.Stencil.Spec.n_fields ~rank
              printed)))

let machine_lint_total =
  QCheck.Test.make ~name:"machine lint total on arbitrary strings" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun src -> String.length (D.render_list ~src (Machine_lint.source src)) >= 0)

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "YS100 parse failure" `Quick test_ys100;
    Alcotest.test_case "YS100 end-of-input position" `Quick test_ys100_position;
    Alcotest.test_case "YS101 unused field" `Quick test_ys101;
    Alcotest.test_case "YS102 duplicate ref" `Quick test_ys102;
    Alcotest.test_case "YS103 zero divide" `Quick test_ys103;
    Alcotest.test_case "YS104 symbolic divide" `Quick test_ys104;
    Alcotest.test_case "YS105 radius 0" `Quick test_ys105;
    Alcotest.test_case "YS106 asymmetric" `Quick test_ys106;
    Alcotest.test_case "YS107 no field" `Quick test_ys107;
    Alcotest.test_case "YS108 field range" `Quick test_ys108;
    Alcotest.test_case "machine base clean" `Quick test_machine_clean;
    Alcotest.test_case "YS200 parse/keys" `Quick test_ys200;
    Alcotest.test_case "YS201 non-monotone sizes" `Quick test_ys201;
    Alcotest.test_case "YS202 bandwidth" `Quick test_ys202;
    Alcotest.test_case "YS203 latency" `Quick test_ys203;
    Alcotest.test_case "YS204 line/fold alignment" `Quick test_ys204;
    Alcotest.test_case "YS205 no caches" `Quick test_ys205;
    Alcotest.test_case "YS206 latency order" `Quick test_ys206;
    Alcotest.test_case "YS207 geometry" `Quick test_ys207;
    Alcotest.test_case "YS208 duplicate keys" `Quick test_ys208;
    Alcotest.test_case "machine values" `Quick test_machine_value;
    Alcotest.test_case "YS301 block vs cache" `Quick test_ys301;
    Alcotest.test_case "YS302 fold divides" `Quick test_ys302;
    Alcotest.test_case "YS303/YS304 space size" `Quick test_ys303_ys304;
    Alcotest.test_case "YS305 rank mismatch" `Quick test_ys305;
    Alcotest.test_case "YS306 wavefront + NT" `Quick test_ys306;
    Alcotest.test_case "YS307 threads" `Quick test_ys307;
    Alcotest.test_case "YS308 fold lanes" `Quick test_ys308;
    Alcotest.test_case "YS309 wavefront window" `Quick test_ys309;
    Alcotest.test_case "gate" `Quick test_gate;
    Alcotest.test_case "tuner gate" `Quick test_tuner_gate;
    Alcotest.test_case "rules table" `Quick test_rules_table;
    Alcotest.test_case "self-lint: suite" `Quick test_selflint_suite;
    Alcotest.test_case "self-lint: examples" `Quick test_selflint_examples;
    Alcotest.test_case "self-lint: ODE variants" `Quick test_selflint_variants;
    Alcotest.test_case "self-lint: machine files" `Quick test_selflint_machines;
    Alcotest.test_case "self-lint: advisor space" `Quick
      test_selflint_advisor_space;
    qt lint_total_on_strings;
    qt lint_total_on_generated_specs;
    qt machine_lint_total ]
