module Machine = Yasksite_arch.Machine
module Suite = Yasksite_stencil.Suite
module Config = Yasksite_ecm.Config
module Tuner = Yasksite_tuner.Tuner

let machine = Machine.test_chip

let spec = Suite.resolve_defaults Suite.heat_2d_5pt

let dims = [| 48; 48 |]

let test_analytic () =
  let r = Tuner.tune_analytic machine spec ~dims ~threads:2 in
  Alcotest.(check int) "single validation run" 1 r.Tuner.kernel_runs;
  Alcotest.(check bool) "several model evals" true
    (r.Tuner.model_evaluations > 4);
  Alcotest.(check bool) "has prediction" true (r.Tuner.predicted_lups <> None);
  Alcotest.(check bool) "measured positive" true (r.Tuner.measured_lups > 0.0);
  Alcotest.(check int) "threads respected" 2 r.Tuner.chosen.Config.threads

let test_empirical () =
  let space =
    [ Config.v ~threads:2 (); Config.v ~threads:2 ~block:[| 0; 16 |] () ]
  in
  let r = Tuner.tune_empirical ~space machine spec ~dims ~threads:2 in
  Alcotest.(check int) "ran whole space" 2 r.Tuner.kernel_runs;
  Alcotest.(check bool) "no model evals" true (r.Tuner.model_evaluations = 0);
  Alcotest.(check bool) "picked from space" true
    (List.exists (fun c -> Config.equal c r.Tuner.chosen) space)

let test_empirical_picks_best () =
  (* The chosen config's measurement must be the max over the space. *)
  let space =
    [ Config.v ~threads:1 ();
      Config.v ~threads:1 ~block:[| 0; 8 |] ();
      Config.v ~threads:1 ~fold:[| 1; 4 |] () ]
  in
  let r = Tuner.tune_empirical ~space machine spec ~dims ~threads:1 in
  List.iter
    (fun config ->
      let m =
        Yasksite_engine.Measure.stencil_sweep machine spec ~dims ~config
      in
      Alcotest.(check bool) "chosen is at least this one" true
        (r.Tuner.measured_lups >= m.Yasksite_engine.Measure.lups_chip -. 1.0))
    space

let test_compare () =
  let space =
    [ Config.v ~threads:2 ();
      Config.v ~threads:2 ~block:[| 0; 16 |] ();
      Config.v ~threads:2 ~block:[| 0; 32 |] () ]
  in
  let c = Tuner.compare_strategies ~space machine spec ~dims ~threads:2 in
  Alcotest.(check (float 1e-9)) "cost ratio" 3.0 c.Tuner.cost_ratio;
  Alcotest.(check bool) "quality sane" true
    (c.Tuner.quality > 0.3 && c.Tuner.quality < 3.0)

let base_suite =
  [ Alcotest.test_case "analytic tuner" `Quick test_analytic;
    Alcotest.test_case "empirical tuner" `Quick test_empirical;
    Alcotest.test_case "empirical picks best" `Quick test_empirical_picks_best;
    Alcotest.test_case "compare strategies" `Quick test_compare ]

(* ------------------------------------------------------------------ *)
(* Resilience: faults, budgets, checkpoints                           *)

module Plan = Yasksite_faults.Plan
module Policy = Yasksite_faults.Policy
module Clock = Yasksite_util.Clock

let small_space =
  [ Config.v ~threads:2 ();
    Config.v ~threads:2 ~block:[| 0; 16 |] ();
    Config.v ~threads:2 ~block:[| 0; 32 |] () ]

let test_zero_fault_identity () =
  (* Acceptance: a benign fault plan must be behaviourally invisible —
     same chosen config, same kernel-run count, bit-equal measurement. *)
  let baseline = Tuner.tune_empirical ~space:small_space machine spec ~dims ~threads:2 in
  let resilient =
    Tuner.tune_empirical ~space:small_space
      ~faults:(Plan.v ~seed:999 ~fail_rate:0.0 ~noise_sigma:0.0 ())
      ~policy:Policy.default machine spec ~dims ~threads:2
  in
  Alcotest.(check bool) "same chosen" true
    (Config.equal baseline.Tuner.chosen resilient.Tuner.chosen);
  Alcotest.(check int) "same kernel runs" baseline.Tuner.kernel_runs
    resilient.Tuner.kernel_runs;
  Alcotest.(check (float 0.0)) "bit-equal measurement"
    baseline.Tuner.measured_lups resilient.Tuner.measured_lups;
  Alcotest.(check int) "one attempt per run" resilient.Tuner.kernel_runs
    resilient.Tuner.attempts;
  Alcotest.(check int) "nothing skipped" 0
    (List.length resilient.Tuner.skipped);
  Alcotest.(check bool) "not degraded" false resilient.Tuner.degraded

let test_all_fail_degrades () =
  (* Every run fails: the sweep must complete without raising, skip every
     candidate, and fall back to analytic ranking. *)
  let r =
    Tuner.tune_empirical ~space:small_space
      ~faults:(Plan.v ~seed:1 ~fail_rate:1.0 ())
      machine spec ~dims ~threads:2
  in
  Alcotest.(check int) "no kernel runs" 0 r.Tuner.kernel_runs;
  Alcotest.(check int) "all candidates skipped" (List.length small_space)
    (List.length r.Tuner.skipped);
  List.iter
    (fun s ->
      Alcotest.(check string) "reason" "transient failure" s.Tuner.s_reason;
      Alcotest.(check int) "retried to the cap" 3 s.Tuner.s_attempts)
    r.Tuner.skipped;
  Alcotest.(check bool) "degraded" true r.Tuner.degraded;
  Alcotest.(check bool) "analytic fallback has a prediction" true
    (r.Tuner.predicted_lups <> None);
  Alcotest.(check bool) "picked from space" true
    (List.exists (fun c -> Config.equal c r.Tuner.chosen) small_space)

let test_noisy_survives () =
  (* Noise + outliers + some failures: the sweep completes and still
     picks a member of the space, with more attempts than runs. *)
  let faults =
    Plan.v ~seed:3 ~fail_rate:0.3 ~noise_sigma:0.05 ~outlier_rate:0.2
      ~outlier_factor:5.0 ()
  in
  let policy = Policy.v ~max_attempts:4 ~repeats:3 () in
  let r =
    Tuner.tune_empirical ~space:small_space ~faults ~policy machine spec ~dims
      ~threads:2
  in
  Alcotest.(check bool) "picked from space" true
    (List.exists (fun c -> Config.equal c r.Tuner.chosen) small_space);
  Alcotest.(check bool) "attempts >= runs" true
    (r.Tuner.attempts >= r.Tuner.kernel_runs);
  Alcotest.(check bool) "measured positive" true (r.Tuner.measured_lups > 0.0)

let same_seed_deterministic =
  QCheck.Test.make ~name:"equal fault seeds give identical tuning results"
    ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let faults = Plan.v ~seed ~fail_rate:0.3 ~noise_sigma:0.05 () in
      let policy = Policy.v ~max_attempts:2 ~repeats:2 () in
      let run () =
        Tuner.tune_empirical ~space:small_space ~faults ~policy machine spec
          ~dims ~threads:2
      in
      let a = run () and b = run () in
      Config.equal a.Tuner.chosen b.Tuner.chosen
      && a.Tuner.measured_lups = b.Tuner.measured_lups
      && a.Tuner.attempts = b.Tuner.attempts
      && a.Tuner.kernel_runs = b.Tuner.kernel_runs
      && List.length a.Tuner.skipped = List.length b.Tuner.skipped
      && a.Tuner.degraded = b.Tuner.degraded)

let zero_rate_matches_seed_tuner =
  QCheck.Test.make
    ~name:"fault rate 0 reproduces the fault-free tuner exactly" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let baseline =
        Tuner.tune_empirical ~space:small_space machine spec ~dims ~threads:2
      in
      let r =
        Tuner.tune_empirical ~space:small_space
          ~faults:(Plan.v ~seed ~fail_rate:0.0 ~noise_sigma:0.0 ())
          machine spec ~dims ~threads:2
      in
      Config.equal baseline.Tuner.chosen r.Tuner.chosen
      && baseline.Tuner.measured_lups = r.Tuner.measured_lups
      && baseline.Tuner.kernel_runs = r.Tuner.kernel_runs
      && List.length r.Tuner.skipped = 0
      && not r.Tuner.degraded)

let with_temp_checkpoint f =
  let path = Filename.temp_file "yasksite" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_checkpoint_resume () =
  with_temp_checkpoint @@ fun path ->
  let r1 =
    Tuner.tune_empirical ~space:small_space ~checkpoint:path machine spec ~dims
      ~threads:2
  in
  Alcotest.(check int) "first pass runs everything" (List.length small_space)
    r1.Tuner.kernel_runs;
  (* Resuming a completed sweep re-runs nothing and returns the same
     answer. *)
  let r2 =
    Tuner.tune_empirical ~space:small_space ~checkpoint:path machine spec ~dims
      ~threads:2
  in
  Alcotest.(check int) "resume runs nothing" 0 r2.Tuner.kernel_runs;
  Alcotest.(check bool) "same chosen" true
    (Config.equal r1.Tuner.chosen r2.Tuner.chosen);
  Alcotest.(check (float 0.0)) "same measurement" r1.Tuner.measured_lups
    r2.Tuner.measured_lups;
  (* Drop the last recorded candidate: the resumed sweep re-runs exactly
     that one. *)
  let lines =
    String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
  in
  let kept =
    match List.rev (List.filter (fun l -> String.trim l <> "") lines) with
    | _last :: rest -> List.rev rest
    | [] -> []
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
  let r3 =
    Tuner.tune_empirical ~space:small_space ~checkpoint:path machine spec ~dims
      ~threads:2
  in
  Alcotest.(check int) "truncated resume runs one" 1 r3.Tuner.kernel_runs;
  Alcotest.(check bool) "same chosen after partial resume" true
    (Config.equal r1.Tuner.chosen r3.Tuner.chosen)

let test_checkpoint_key_mismatch () =
  with_temp_checkpoint @@ fun path ->
  let space2 = [ List.hd small_space; List.nth small_space 1 ] in
  let _ =
    Tuner.tune_empirical ~space:small_space ~checkpoint:path machine spec ~dims
      ~threads:2
  in
  (* A different sweep (smaller space) must ignore the stale file. *)
  let r =
    Tuner.tune_empirical ~space:space2 ~checkpoint:path machine spec ~dims
      ~threads:2
  in
  Alcotest.(check int) "stale checkpoint ignored" (List.length space2)
    r.Tuner.kernel_runs

let test_budget_interruption_and_resume () =
  with_temp_checkpoint @@ fun path ->
  let space =
    [ Config.v ~threads:2 ();
      Config.v ~threads:2 ~block:[| 0; 8 |] ();
      Config.v ~threads:2 ~block:[| 0; 16 |] ();
      Config.v ~threads:2 ~block:[| 0; 32 |] () ]
  in
  let full = Tuner.tune_empirical ~space machine spec ~dims ~threads:2 in
  (* A counting clock: every read advances one virtual second, so a tiny
     pass budget cuts the sweep off after the first candidate. *)
  let t = ref 0.0 in
  let clock =
    Clock.of_fun (fun () ->
        t := !t +. 1.0;
        !t)
  in
  let interrupted =
    Tuner.tune_empirical ~space
      ~policy:(Policy.v ~pass_budget_s:6.0 ())
      ~clock ~checkpoint:path machine spec ~dims ~threads:2
  in
  Alcotest.(check bool) "some candidate ran" true
    (interrupted.Tuner.kernel_runs >= 1);
  Alcotest.(check bool) "sweep was cut short" true
    (interrupted.Tuner.kernel_runs < List.length space);
  Alcotest.(check bool) "budget skips reported" true
    (List.exists
       (fun s -> s.Tuner.s_reason = "pass budget exhausted")
       interrupted.Tuner.skipped);
  Alcotest.(check bool) "not degraded by truncation" false
    interrupted.Tuner.degraded;
  (* Resume with an unbounded budget: only the missing candidates run,
     and the final answer matches the uninterrupted sweep. *)
  let resumed =
    Tuner.tune_empirical ~space ~checkpoint:path machine spec ~dims ~threads:2
  in
  Alcotest.(check int) "resume runs only the remainder"
    (List.length space - interrupted.Tuner.kernel_runs)
    resumed.Tuner.kernel_runs;
  Alcotest.(check bool) "same chosen as the full sweep" true
    (Config.equal full.Tuner.chosen resumed.Tuner.chosen);
  Alcotest.(check (float 0.0)) "same measurement as the full sweep"
    full.Tuner.measured_lups resumed.Tuner.measured_lups

let test_compare_with_faults () =
  let c =
    Tuner.compare_strategies ~space:small_space
      ~faults:(Plan.v ~seed:9 ~fail_rate:0.2 ())
      ~policy:(Policy.v ~max_attempts:5 ())
      machine spec ~dims ~threads:2
  in
  Alcotest.(check int) "analytic side untouched" 1
    c.Tuner.analytic.Tuner.kernel_runs;
  Alcotest.(check bool) "quality finite" true (Float.is_finite c.Tuner.quality)

let qt = QCheck_alcotest.to_alcotest

let resilience_suite =
  [ Alcotest.test_case "zero-fault identity" `Quick test_zero_fault_identity;
    Alcotest.test_case "all-fail degrades" `Quick test_all_fail_degrades;
    Alcotest.test_case "noisy sweep survives" `Quick test_noisy_survives;
    qt same_seed_deterministic;
    qt zero_rate_matches_seed_tuner;
    Alcotest.test_case "checkpoint resume" `Quick test_checkpoint_resume;
    Alcotest.test_case "checkpoint key mismatch" `Quick
      test_checkpoint_key_mismatch;
    Alcotest.test_case "budget interruption + resume" `Quick
      test_budget_interruption_and_resume;
    Alcotest.test_case "compare with faults" `Quick test_compare_with_faults ]

let suite = base_suite @ resilience_suite
