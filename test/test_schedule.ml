(* Schedule-legality analyzer (YS4xx) and shadow-memory sanitizer
   (YS45x): unit tests per static rule, an adversarial corpus of illegal
   schedules that must be BOTH statically rejected and dynamically
   trapped when forced through the engine with the gates bypassed, and
   the zero-trap sweep over the legal tuning space of the shipped
   machine files. *)

module Machine = Yasksite_arch.Machine
module Machine_file = Yasksite_arch.Machine_file
module Grid = Yasksite_grid.Grid
module Spec = Yasksite_stencil.Spec
module Suite = Yasksite_stencil.Suite
module Analysis = Yasksite_stencil.Analysis
module Parser = Yasksite_stencil.Parser
module Gen = Yasksite_stencil.Gen
module Config = Yasksite_ecm.Config
module Advisor = Yasksite_ecm.Advisor
module Sweep = Yasksite_engine.Sweep
module Wavefront = Yasksite_engine.Wavefront
module Sanitizer = Yasksite_engine.Sanitizer
module Measure = Yasksite_engine.Measure
module Tuner = Yasksite_tuner.Tuner
module Lint = Yasksite_lint.Lint
module Schedule = Yasksite_lint.Schedule_lint
module D = Yasksite_lint.Diagnostic
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let has code ds = List.exists (fun (d : D.t) -> d.D.code = code) ds

let info_of spec = Analysis.of_spec spec

let heat1 = Suite.resolve_defaults Suite.heat_1d_3pt

let heat2 = Suite.resolve_defaults Suite.heat_2d_5pt

let heat3 = Suite.resolve_defaults Suite.heat_3d_7pt

let varcoef = Suite.resolve_defaults Suite.varcoef_3d_7pt

(* Radius-2 1D star, for distinguishing version skew (stagger <= r-1)
   from same-front order dependence (stagger = r). *)
let star1_r2 =
  match
    Parser.parse_spec ~name:"star-1d-r2" ~rank:1
      "0.2*(f0(x-2)+f0(x+2))+0.2*(f0(x-1)+f0(x+1))+0.2*f0(x)"
  with
  | Ok s -> s
  | Error m -> failwith m

(* Forward reach 2 with no +-1 reads: an under-staggered wavefront
   skips the same-front plane and goes straight to a version skew. *)
let gap1_r2 =
  match
    Parser.parse_spec ~name:"gap-1d-r2" ~rank:1
      "0.3*f0(x-2)+0.3*f0(x+2)+0.4*f0(x)"
  with
  | Ok s -> s
  | Error m -> failwith m

(* Upwind: all streamed-dimension reads are backward (forward reach 0,
   backward reach 2). The legal minimum stagger is 2, not radius+1 = 3:
   the binding dependence is the anti one (ping-pong buffer reuse). *)
let upwind1 =
  match
    Parser.parse_spec ~name:"upwind-1d" ~rank:1 "0.5*f0(x-2)+0.5*f0(x)"
  with
  | Ok s -> s
  | Error m -> failwith m

(* Pointwise kernel: radius 0, the one legal in-place pattern. *)
let pointwise1 =
  match Parser.parse_spec ~name:"scale-1d" ~rank:1 "0.5*f0(x)" with
  | Ok s -> s
  | Error m -> failwith m

let make_grid ?space ?(layout = Grid.Linear) ?halo ~dims ~seed () =
  let halo = match halo with Some h -> h | None -> Array.map (fun _ -> 2) dims in
  let g = Grid.create ?space ~halo ~layout ~dims () in
  let rng = Prng.create ~seed in
  Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
  Grid.halo_dirichlet g 0.0;
  g

(* ------------------------------------------------------------------ *)
(* Static rules, one positive and one negative case per code           *)

let test_ys400_stagger () =
  let i = info_of heat2 in
  let dims = [| 16; 16 |] in
  let bad = Config.v ~wavefront:2 ~wavefront_stagger:1 () in
  Alcotest.(check bool) "stagger r rejected" true
    (has "YS400" (Schedule.schedule i ~dims bad));
  Alcotest.(check bool) "not legal" false (Schedule.legal i ~dims bad);
  let ok = Config.v ~wavefront:2 ~wavefront_stagger:2 () in
  Alcotest.(check bool) "stagger r+1 accepted" false
    (has "YS400" (Schedule.schedule i ~dims ok));
  (* Default stagger is radius+1 and therefore always legal. *)
  Alcotest.(check int) "default stagger" 2
    (Schedule.effective_stagger i (Config.v ~wavefront:4 ()));
  (* Depth 1 has no temporal dependence: any stagger is vacuously ok. *)
  Alcotest.(check bool) "depth 1 unconstrained" false
    (has "YS400"
       (Schedule.schedule i ~dims (Config.v ~wavefront_stagger:1 ())));
  (* Forward reach 2 raises the bound to 3. *)
  let i2 = info_of star1_r2 in
  Alcotest.(check bool) "reach-2 bound" true
    (has "YS400"
       (Schedule.schedule i2 ~dims:[| 24 |]
          (Config.v ~wavefront:2 ~wavefront_stagger:2 ())));
  (* Asymmetric bound: the upwind stencil (reach -2..0) needs only
     stagger 2 (backward reach) where the radius rule would demand 3 —
     but stagger 1 lets step t+1 overwrite planes later fronts still
     read. *)
  let iu = info_of upwind1 in
  Alcotest.(check bool) "upwind legal at stagger 2" false
    (has "YS400"
       (Schedule.schedule iu ~dims:[| 24 |]
          (Config.v ~wavefront:2 ~wavefront_stagger:2 ())));
  Alcotest.(check bool) "upwind illegal at stagger 1" true
    (has "YS400"
       (Schedule.schedule iu ~dims:[| 24 |]
          (Config.v ~wavefront:2 ~wavefront_stagger:1 ())))

let test_ys401_single_field () =
  let i = info_of varcoef in
  let dims = [| 8; 8; 8 |] in
  Alcotest.(check bool) "multi-field wavefront rejected" true
    (has "YS401" (Schedule.schedule i ~dims (Config.v ~wavefront:2 ())));
  Alcotest.(check bool) "multi-field spatial ok" false
    (has "YS401" (Schedule.schedule i ~dims Config.default));
  (* The wavefront engine needs one field even at depth 1 (it only has
     the ping-pong pair). *)
  Alcotest.(check bool) "engine gate at depth 1" true
    (has "YS401" (Schedule.wavefront_rules i ~dims Config.default))

let test_ys402_boundary () =
  let i = info_of heat2 in
  let dims = [| 16; 16 |] in
  Alcotest.(check bool) "periodic wavefront rejected" true
    (has "YS402"
       (Schedule.schedule ~boundary:`Periodic i ~dims
          (Config.v ~wavefront:2 ())));
  Alcotest.(check bool) "periodic spatial ok" false
    (has "YS402" (Schedule.schedule ~boundary:`Periodic i ~dims Config.default))

let test_ys403_alias () =
  let i = info_of heat1 in
  let g = make_grid ~dims:[| 12 |] ~seed:1 () in
  let other = make_grid ~dims:[| 12 |] ~seed:2 () in
  Alcotest.(check bool) "aliased neighbourhood read rejected" true
    (has "YS403" (Schedule.grids i Config.default ~inputs:[| g |] ~output:g));
  Alcotest.(check bool) "distinct grids ok" false
    (has "YS403"
       (Schedule.grids i Config.default ~inputs:[| g |] ~output:other));
  (* A pointwise kernel may update in place. *)
  let ip = info_of pointwise1 in
  Alcotest.(check bool) "pointwise in-place allowed" false
    (has "YS403" (Schedule.grids ip Config.default ~inputs:[| g |] ~output:g))

let test_ys404_halo () =
  let i = info_of heat1 in
  let thin = make_grid ~halo:[| 0 |] ~dims:[| 12 |] ~seed:1 () in
  let out = make_grid ~halo:[| 0 |] ~dims:[| 12 |] ~seed:2 () in
  Alcotest.(check bool) "thin halo rejected" true
    (has "YS404"
       (Schedule.grids i Config.default ~inputs:[| thin |] ~output:out));
  let wide = make_grid ~halo:[| 1 |] ~dims:[| 12 |] ~seed:1 () in
  Alcotest.(check bool) "covering halo ok" false
    (has "YS404"
       (Schedule.grids i Config.default ~inputs:[| wide |] ~output:out))

let test_ys405_layout () =
  let i = info_of heat1 in
  let lin = make_grid ~dims:[| 16 |] ~seed:1 () in
  let out = make_grid ~dims:[| 16 |] ~seed:2 () in
  let cfg = Config.v ~fold:[| 2 |] () in
  Alcotest.(check bool) "linear grids under folded schedule rejected" true
    (has "YS405" (Schedule.grids i cfg ~inputs:[| lin |] ~output:out));
  let folded = make_grid ~layout:(Grid.Folded [| 2 |]) ~dims:[| 16 |] ~seed:1 () in
  let fout = make_grid ~layout:(Grid.Folded [| 2 |]) ~dims:[| 16 |] ~seed:2 () in
  Alcotest.(check bool) "matching folded grids ok" false
    (has "YS405" (Schedule.grids i cfg ~inputs:[| folded |] ~output:fout))

let test_ys406_partition () =
  let dims = [| 8; 8 |] in
  let whole = ([| 0; 0 |], [| 8; 8 |]) in
  Alcotest.(check bool) "exact cover ok" true
    (Schedule.partition ~dims [ whole ] = []);
  let halves = [ ([| 0; 0 |], [| 8; 4 |]); ([| 0; 4 |], [| 8; 8 |]) ] in
  Alcotest.(check bool) "two halves ok" true
    (Schedule.partition ~dims halves = []);
  Alcotest.(check bool) "gap detected" true
    (has "YS406" (Schedule.partition ~dims [ ([| 0; 0 |], [| 8; 4 |]) ]));
  let overlapping = [ ([| 0; 0 |], [| 8; 5 |]); ([| 0; 4 |], [| 8; 8 |]) ] in
  Alcotest.(check bool) "overlap detected" true
    (has "YS406" (Schedule.partition ~dims overlapping));
  Alcotest.(check bool) "out of bounds detected" true
    (has "YS406" (Schedule.partition ~dims [ ([| 0; 0 |], [| 8; 9 |]) ]));
  Alcotest.(check bool) "rank mismatch detected" true
    (has "YS406" (Schedule.partition ~dims [ ([| 0 |], [| 8 |]) ]))

let test_ys407_pool_width () =
  let i = info_of heat2 in
  let dims = [| 32; 32 |] in
  (* Unblocked = one block column: 4 domains have nothing to slice. *)
  let ds = Schedule.schedule ~pool_width:4 i ~dims Config.default in
  Alcotest.(check bool) "wasted width hinted" true (has "YS407" ds);
  Alcotest.(check bool) "hint is not an error" true
    (Schedule.legal ~pool_width:4 i ~dims Config.default);
  let blocked = Config.v ~block:[| 0; 8 |] () in
  Alcotest.(check bool) "enough columns, no hint" false
    (has "YS407" (Schedule.schedule ~pool_width:4 i ~dims blocked))

let test_ys408_fold_overflow () =
  let i = info_of heat2 in
  Alcotest.(check bool) "fold wider than grid rejected" true
    (has "YS408"
       (Schedule.schedule i ~dims:[| 4; 4 |] (Config.v ~fold:[| 1; 8 |] ())));
  Alcotest.(check bool) "fitting fold ok" false
    (has "YS408"
       (Schedule.schedule i ~dims:[| 16; 16 |] (Config.v ~fold:[| 1; 8 |] ())))

let test_ys409_rank () =
  let i = info_of heat2 in
  Alcotest.(check bool) "rank mismatch rejected" true
    (has "YS409" (Schedule.schedule i ~dims:[| 16 |] Config.default));
  let g1 = make_grid ~dims:[| 12 |] ~seed:1 () in
  let g2 = make_grid ~dims:[| 10 |] ~seed:2 () in
  Alcotest.(check bool) "extent mismatch rejected" true
    (has "YS409"
       (Schedule.grids (info_of heat1) Config.default ~inputs:[| g1 |]
          ~output:g2));
  Alcotest.(check bool) "missing field grids rejected" true
    (has "YS409"
       (Schedule.grids (info_of varcoef) Config.default ~inputs:[||]
          ~output:(make_grid ~dims:[| 6; 6; 6 |] ~seed:3 ())))

(* ------------------------------------------------------------------ *)
(* Adversarial corpus: every entry is (a) statically rejected with the
   expected YS4xx code and (b) traps with the expected YS45x code when
   forced through the engine with the gates bypassed.                  *)

let trap_code f =
  try
    ignore (f ());
    None
  with Sanitizer.Trap t -> Some (Sanitizer.code_of_kind t.Sanitizer.kind)

let check_corpus name ~static ~static_code ~dynamic ~trap =
  Alcotest.(check bool)
    (name ^ " statically rejected with " ^ static_code)
    true
    (has static_code static && D.has_errors static);
  Alcotest.(check (option string)) (name ^ " traps " ^ trap) (Some trap)
    (trap_code dynamic)

(* 1. Wavefront stagger below the forward reach: version skew
   (YS400 / YS452). The +-1-free stencil never touches the same-front
   plane, so the first illegal read is of a plane a FUTURE front
   produces. *)
let corpus_stagger_skew () =
  let i = info_of gap1_r2 in
  let dims = [| 24 |] in
  let cfg = Config.v ~wavefront:2 ~wavefront_stagger:1 () in
  check_corpus "reach=2 stagger=1 skew"
    ~static:(Schedule.schedule i ~dims cfg)
    ~static_code:"YS400"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~dims ~seed:1 () and b = make_grid ~dims ~seed:2 () in
      Wavefront.steps ~check:false ~sanitize:san ~config:cfg gap1_r2 ~a ~b
        ~steps:2)
    ~trap:"YS452"

(* 2. Wavefront stagger equal to the radius: same-front order dependence
   (YS400 / YS451). *)
let corpus_stagger_same_front () =
  let i = info_of heat1 in
  let dims = [| 16 |] in
  let cfg = Config.v ~wavefront:2 ~wavefront_stagger:1 () in
  check_corpus "r=1 stagger=1 same-front"
    ~static:(Schedule.schedule i ~dims cfg)
    ~static_code:"YS400"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~dims ~seed:3 () and b = make_grid ~dims ~seed:4 () in
      Wavefront.steps ~check:false ~sanitize:san ~config:cfg heat1 ~a ~b
        ~steps:2)
    ~trap:"YS451"

(* 3. The same under-stagger in 3D. *)
let corpus_stagger_3d () =
  let i = info_of heat3 in
  let dims = [| 8; 6; 6 |] in
  let cfg = Config.v ~wavefront:2 ~wavefront_stagger:1 () in
  check_corpus "3D stagger=1"
    ~static:(Schedule.schedule i ~dims cfg)
    ~static_code:"YS400"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~dims ~seed:5 () and b = make_grid ~dims ~seed:6 () in
      Wavefront.steps ~check:false ~sanitize:san ~config:cfg heat3 ~a ~b
        ~steps:2)
    ~trap:"YS451"

(* 4. Aliased in-place sweep: the output is also the (radius > 0) input
   (YS403 / YS452). *)
let corpus_aliased_sweep () =
  let i = info_of heat1 in
  let g = make_grid ~dims:[| 12 |] ~seed:7 () in
  check_corpus "aliased sweep"
    ~static:(Schedule.grids i Config.default ~inputs:[| g |] ~output:g)
    ~static_code:"YS403"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      Sweep.run ~check:false ~sanitize:san heat1 ~inputs:[| g |] ~output:g)
    ~trap:"YS452"

(* 5. Aliased wavefront: both ping-pong buffers are the same grid
   (YS403 / YS452). *)
let corpus_aliased_wavefront () =
  let i = info_of heat1 in
  let g = make_grid ~dims:[| 12 |] ~seed:8 () in
  check_corpus "aliased wavefront"
    ~static:(Schedule.grids i Config.default ~inputs:[| g |] ~output:g)
    ~static_code:"YS403"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      Wavefront.steps ~check:false ~sanitize:san heat1 ~a:g ~b:g ~steps:2)
    ~trap:"YS452"

(* 6. Non-covering partition: a slice is missing, output cells are never
   written (YS406 / YS454). *)
let corpus_partition_gap () =
  let dims = [| 8; 8 |] in
  let boxes = [ ([| 0; 0 |], [| 8; 4 |]) ] in
  check_corpus "partition gap"
    ~static:(Schedule.partition ~dims boxes)
    ~static_code:"YS406"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~dims ~seed:9 () in
      let o = make_grid ~dims ~seed:10 () in
      Sanitizer.register san a;
      Sanitizer.register san o;
      let pass = Sanitizer.begin_sweep san ~inputs:[| a |] ~output:o in
      let sl = Sanitizer.slice pass 0 in
      let _ =
        Sweep.run_region ~check:false ~sanitize:sl heat2 ~inputs:[| a |]
          ~output:o ~lo:[| 0; 0 |] ~hi:[| 8; 4 |]
      in
      Sanitizer.end_sweep pass)
    ~trap:"YS454"

(* 7. Overlapping partition: two slices write the same cells
   (YS406 / YS450). *)
let corpus_partition_overlap () =
  let dims = [| 8; 8 |] in
  let boxes = [ ([| 0; 0 |], [| 8; 5 |]); ([| 0; 4 |], [| 8; 8 |]) ] in
  check_corpus "partition overlap"
    ~static:(Schedule.partition ~dims boxes)
    ~static_code:"YS406"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~dims ~seed:11 () in
      let o = make_grid ~dims ~seed:12 () in
      Sanitizer.register san a;
      Sanitizer.register san o;
      let pass = Sanitizer.begin_sweep san ~inputs:[| a |] ~output:o in
      List.iteri
        (fun s (lo, hi) ->
          ignore
            (Sweep.run_region ~check:false
               ~sanitize:(Sanitizer.slice pass s)
               heat2 ~inputs:[| a |] ~output:o ~lo ~hi))
        boxes;
      Sanitizer.end_sweep pass)
    ~trap:"YS450"

(* 8. Region escaping the iteration space (YS406 / YS453). The trap
   fires before the engine's unchecked Bigarray access would run. *)
let corpus_region_oob () =
  let dims = [| 8; 8 |] in
  check_corpus "out-of-bounds region"
    ~static:(Schedule.partition ~dims [ ([| 0; 0 |], [| 8; 10 |]) ])
    ~static_code:"YS406"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~halo:[| 2; 2 |] ~dims ~seed:13 () in
      let o = make_grid ~halo:[| 2; 2 |] ~dims ~seed:14 () in
      Sanitizer.register san a;
      Sanitizer.register san o;
      let pass = Sanitizer.begin_sweep san ~inputs:[| a |] ~output:o in
      Sweep.run_region ~check:false ~sanitize:(Sanitizer.slice pass 0) heat2
        ~inputs:[| a |] ~output:o ~lo:[| 0; 0 |] ~hi:[| 8; 10 |])
    ~trap:"YS453"

(* 9. Halo thinner than the stencil radius: neighbour reads leave the
   allocation (YS404 / YS453). The OCaml engine's kernel compiler
   refuses to emit this access pattern (defense in depth), so the
   dynamic half replays the schedule's first boundary-cell read — the
   access an unchecked native kernel would perform — through the
   sanitizer. *)
let corpus_thin_halo () =
  let i = info_of heat1 in
  let thin = make_grid ~halo:[| 0 |] ~dims:[| 12 |] ~seed:15 () in
  let out = make_grid ~halo:[| 0 |] ~dims:[| 12 |] ~seed:16 () in
  check_corpus "thin halo"
    ~static:(Schedule.grids i Config.default ~inputs:[| thin |] ~output:out)
    ~static_code:"YS404"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      Sanitizer.register san thin;
      Sanitizer.register san out;
      let pass = Sanitizer.begin_sweep san ~inputs:[| thin |] ~output:out in
      (* Updating cell 0 reads f0(x-1), i.e. coordinate -1. *)
      Sanitizer.reader (Sanitizer.slice pass 0) thin [| -1 |])
    ~trap:"YS453"

(* 10. Schedule claims a vector fold the grids do not have
   (YS405 / YS456). *)
let corpus_fold_mismatch () =
  let i = info_of heat1 in
  let lin = make_grid ~dims:[| 16 |] ~seed:17 () in
  let out = make_grid ~dims:[| 16 |] ~seed:18 () in
  let cfg = Config.v ~fold:[| 2 |] () in
  check_corpus "fold/layout mismatch"
    ~static:(Schedule.grids i cfg ~inputs:[| lin |] ~output:out)
    ~static_code:"YS405"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      Sweep.run ~check:false ~sanitize:san ~config:cfg heat1
        ~inputs:[| lin |] ~output:out)
    ~trap:"YS456"

(* 11. Temporal wavefront over snapshot (periodic-style) halos: the
   images go stale mid-front (YS402 / YS455). *)
let corpus_periodic_wavefront () =
  let i = info_of heat1 in
  let dims = [| 12 |] in
  let cfg = Config.v ~wavefront:2 () in
  check_corpus "periodic wavefront"
    ~static:(Schedule.schedule ~boundary:`Periodic i ~dims cfg)
    ~static_code:"YS402"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~dims ~seed:19 () in
      let b = make_grid ~dims ~seed:20 () in
      (* Halos maintained by copy (the periodic mechanism): valid only
         for the version they were refreshed at. *)
      Sanitizer.register ~halo:`Snapshot san a;
      Sanitizer.register ~halo:`Snapshot san b;
      Sanitizer.refresh_halo san a;
      Sanitizer.refresh_halo san b;
      Wavefront.steps ~check:false ~sanitize:san ~config:cfg heat1 ~a ~b
        ~steps:2)
    ~trap:"YS455"

(* 12. Anti-dependence: the upwind stencil at stagger 1 lets step t+1
   overwrite ping-pong planes later fronts still need to re-read
   (YS400 / YS452). *)
let corpus_upwind_anti () =
  let i = info_of upwind1 in
  let dims = [| 20 |] in
  let cfg = Config.v ~wavefront:2 ~wavefront_stagger:1 () in
  check_corpus "upwind stagger=1 anti-dependence"
    ~static:(Schedule.schedule i ~dims cfg)
    ~static_code:"YS400"
    ~dynamic:(fun () ->
      let san = Sanitizer.create () in
      let a = make_grid ~dims ~seed:21 () and b = make_grid ~dims ~seed:22 () in
      Wavefront.steps ~check:false ~sanitize:san ~config:cfg upwind1 ~a ~b
        ~steps:2)
    ~trap:"YS452"

(* ------------------------------------------------------------------ *)
(* Agreement property: the YS400 verdict and the sanitizer agree on
   random single-field stencils, wavefront depths and staggers.        *)

let verdicts_agree =
  QCheck.Test.make ~name:"static verdict agrees with sanitizer" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let rank = 1 + Prng.int rng ~bound:2 in
      let spec = Gen.spec rng ~rank () in
      let info = Analysis.of_spec spec in
      let r0 = info.Analysis.radius.(0) in
      let depth = 2 + Prng.int rng ~bound:3 in
      let stagger = 1 + Prng.int rng ~bound:(r0 + 2) in
      let cfg = Config.v ~wavefront:depth ~wavefront_stagger:stagger () in
      let n0 = (r0 + 3) * depth + 8 in
      let dims =
        Array.init rank (fun d -> if d = 0 then n0 else 6 + Prng.int rng ~bound:6)
      in
      let legal = Schedule.legal info ~dims cfg in
      let halo = Analysis.halo info in
      let mk seed =
        let g = Grid.create ~halo ~dims () in
        let rng = Prng.create ~seed in
        Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
        Grid.halo_dirichlet g 0.0;
        g
      in
      let a = mk (seed + 100) and b = mk (seed + 200) in
      let san = Sanitizer.create () in
      let trapped =
        try
          ignore
            (Wavefront.steps ~check:false ~sanitize:san ~config:cfg spec ~a
               ~b ~steps:depth);
          false
        with Sanitizer.Trap _ -> true
      in
      legal = not trapped)

(* Legal schedules leave the output bit-identical with and without the
   sanitizer: the shadow pass observes, never perturbs. *)
let sanitizer_is_transparent =
  QCheck.Test.make ~name:"sanitizer never changes results" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let rank = 1 + Prng.int rng ~bound:3 in
      let spec = Gen.spec rng ~rank () in
      let info = Analysis.of_spec spec in
      let halo = Analysis.halo info in
      let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:8) in
      let mk seed =
        let g = Grid.create ~halo ~dims () in
        let rng = Prng.create ~seed in
        Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
        Grid.halo_dirichlet g 0.0;
        g
      in
      let a1 = mk (seed + 1) and o1 = mk (seed + 2) in
      let a2 = mk (seed + 1) and o2 = mk (seed + 2) in
      let _ = Sweep.run spec ~inputs:[| a1 |] ~output:o1 in
      let san = Sanitizer.create () in
      let _ = Sweep.run ~sanitize:san spec ~inputs:[| a2 |] ~output:o2 in
      Grid.max_abs_diff o1 o2 = 0.0 && Sanitizer.trap_count san = 0)

(* ------------------------------------------------------------------ *)
(* Whole-space checks over the shipped machine files                    *)

let shipped_machines () =
  let files = [ "../machines/skylake-sp.machine"; "../machines/zen3.machine" ] in
  List.map
    (fun f ->
      match Machine_file.load f with
      | Ok m -> m
      | Error e -> failwith (f ^ ": " ^ e))
    files

let test_selflint_spaces () =
  (* For every shipped stencil and machine, the legality-filtered
     advisor space is non-empty and clean; single-field radius-1
     kernels lose no candidate at all (the advisor's defaults are
     provably legal). *)
  let machines = Machine.test_chip :: shipped_machines () in
  let dims_for rank =
    match rank with 1 -> [| 32 |] | 2 -> [| 16; 16 |] | _ -> [| 8; 8; 8 |]
  in
  List.iter
    (fun m ->
      List.iter
        (fun s ->
          let spec = Suite.resolve_defaults s in
          let info = Analysis.of_spec spec in
          let rank = spec.Spec.rank in
          let dims = dims_for rank in
          let space = Advisor.space m ~dims ~threads:4 ~rank in
          let legal = List.filter (Schedule.legal info ~dims) space in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s keeps candidates" spec.Spec.name
               m.Machine.name)
            true (legal <> []);
          let ds = Schedule.space info ~dims legal in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s legal space is clean" spec.Spec.name
               m.Machine.name)
            false (D.has_errors ds);
          if spec.Spec.n_fields = 1 then
            Alcotest.(check int)
              (Printf.sprintf "%s on %s loses nothing" spec.Spec.name
                 m.Machine.name)
              (List.length space) (List.length legal))
        Suite.all)
    machines

let test_legal_space_zero_traps () =
  (* E15-style: execute the whole legal tuning space of both shipped
     machine files under the fail-fast sanitizer — zero traps. *)
  let dims = [| 12; 12 |] in
  let info = Analysis.of_spec heat2 in
  List.iter
    (fun m ->
      let space = Advisor.space m ~dims ~threads:2 ~rank:2 in
      let legal = List.filter (Schedule.legal info ~dims) space in
      Alcotest.(check int)
        (m.Machine.name ^ " advisor space all legal")
        (List.length space) (List.length legal);
      List.iter
        (fun config ->
          let meas = Measure.stencil_sweep ~sanitize:true m heat2 ~dims ~config in
          Alcotest.(check bool)
            (m.Machine.name ^ " " ^ Config.describe config ^ " measured")
            true
            (meas.Measure.lups_chip > 0.0))
        legal)
    (shipped_machines ())

(* ------------------------------------------------------------------ *)
(* Gates: tuner pruning, advisor filter, engine entry points            *)

let test_tuner_prunes () =
  let m = Machine.test_chip in
  let dims = [| 12; 12 |] in
  let bad = Config.v ~wavefront:2 ~wavefront_stagger:1 () in
  let good = Config.v ~block:[| 0; 4 |] () in
  let r =
    Tuner.tune_empirical ~space:[ bad; good ] m heat2 ~dims ~threads:1
  in
  Alcotest.(check int) "one candidate pruned" 1 r.Tuner.pruned;
  Alcotest.(check bool) "chosen is the legal one" true
    (Config.equal r.Tuner.chosen good);
  Alcotest.(check bool) "analytic tune reports pruning" true
    ((Tuner.tune_analytic m heat2 ~dims ~threads:1).Tuner.pruned >= 0);
  (* An all-illegal space is a gate error carrying the analyzer's
     diagnostics, not a silent empty result. *)
  Alcotest.(check bool) "all-illegal space raises Gate_error" true
    (try
       ignore (Tuner.tune_empirical ~space:[ bad ] m heat2 ~dims ~threads:1);
       false
     with Lint.Gate_error msg -> Astring_contains.contains msg "YS400")

let test_advisor_filter () =
  let m = Machine.test_chip in
  let info = Analysis.of_spec varcoef in
  let dims = [| 6; 6; 6 |] in
  (* varcoef has two fields: every wavefront > 1 candidate is illegal
     (YS401) and must be pruned before scoring. *)
  let ranked =
    Advisor.rank_all ~filter:(Schedule.legal info ~dims) m info ~dims
      ~threads:1
  in
  Alcotest.(check bool) "filtered ranking non-empty" true (ranked <> []);
  Alcotest.(check bool) "no wavefront candidate survives" true
    (List.for_all (fun (c, _) -> c.Config.wavefront = 1) ranked)

let test_engine_gates () =
  (* Legality violations are refused at the engine entry points with
     the analyzer's diagnostics. *)
  let g = make_grid ~dims:[| 12 |] ~seed:30 () in
  Alcotest.(check bool) "sweep alias gated" true
    (try
       ignore (Sweep.run heat1 ~inputs:[| g |] ~output:g);
       false
     with Lint.Gate_error msg -> Astring_contains.contains msg "YS403");
  let a = make_grid ~dims:[| 12 |] ~seed:31 () in
  let b = make_grid ~dims:[| 12 |] ~seed:32 () in
  Alcotest.(check bool) "wavefront stagger gated" true
    (try
       ignore
         (Wavefront.steps
            ~config:(Config.v ~wavefront:2 ~wavefront_stagger:1 ())
            heat1 ~a ~b ~steps:2);
       false
     with Lint.Gate_error msg -> Astring_contains.contains msg "YS400");
  let v0 = make_grid ~dims:[| 6; 6; 6 |] ~seed:33 () in
  Alcotest.(check bool) "wavefront multi-field gated" true
    (try
       ignore (Wavefront.steps varcoef ~a:v0 ~b:v0 ~steps:1);
       false
     with Lint.Gate_error msg -> Astring_contains.contains msg "YS401")

(* ------------------------------------------------------------------ *)
(* JSON report schema                                                   *)

let test_json_schema () =
  let d =
    D.errorf ~loc:(D.Field "wavefront_stagger") ~code:"YS400"
      "bad \"stagger\"\nsecond line"
  in
  let one = D.to_json d in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("finding has " ^ frag) true
        (Astring_contains.contains one frag))
    [ "\"code\":\"YS400\"";
      "\"severity\":\"error\"";
      "\"origin\":\"input\"";
      "\"loc\":{\"kind\":\"field\",\"field\":\"wavefront_stagger\"}";
      (* Quotes and newlines are escaped, never raw. *)
      "bad \\\"stagger\\\"\\nsecond line" ];
  let report = D.report_to_json [ ("k1", None, d); ("k2", None, D.hintf ~code:"YS407" "idle") ] in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("report has " ^ frag) true
        (Astring_contains.contains report frag))
    [ "\"version\":1";
      "\"findings\":[";
      "\"origin\":\"k1\"";
      "\"origin\":\"k2\"";
      "\"summary\":{\"errors\":1,\"warnings\":0,\"hints\":1}" ];
  (* The empty report is still a valid document. *)
  Alcotest.(check bool) "empty report valid" true
    (Astring_contains.contains (D.report_to_json [])
       "\"summary\":{\"errors\":0,\"warnings\":0,\"hints\":0}")

let suite =
  [ Alcotest.test_case "YS400 stagger" `Quick test_ys400_stagger;
    Alcotest.test_case "YS401 single field" `Quick test_ys401_single_field;
    Alcotest.test_case "YS402 boundary" `Quick test_ys402_boundary;
    Alcotest.test_case "YS403 aliasing" `Quick test_ys403_alias;
    Alcotest.test_case "YS404 halo" `Quick test_ys404_halo;
    Alcotest.test_case "YS405 layout" `Quick test_ys405_layout;
    Alcotest.test_case "YS406 partition" `Quick test_ys406_partition;
    Alcotest.test_case "YS407 pool width" `Quick test_ys407_pool_width;
    Alcotest.test_case "YS408 fold overflow" `Quick test_ys408_fold_overflow;
    Alcotest.test_case "YS409 rank/extents" `Quick test_ys409_rank;
    Alcotest.test_case "corpus: stagger skew" `Quick corpus_stagger_skew;
    Alcotest.test_case "corpus: stagger same-front" `Quick
      corpus_stagger_same_front;
    Alcotest.test_case "corpus: stagger 3D" `Quick corpus_stagger_3d;
    Alcotest.test_case "corpus: aliased sweep" `Quick corpus_aliased_sweep;
    Alcotest.test_case "corpus: aliased wavefront" `Quick
      corpus_aliased_wavefront;
    Alcotest.test_case "corpus: partition gap" `Quick corpus_partition_gap;
    Alcotest.test_case "corpus: partition overlap" `Quick
      corpus_partition_overlap;
    Alcotest.test_case "corpus: region OOB" `Quick corpus_region_oob;
    Alcotest.test_case "corpus: thin halo" `Quick corpus_thin_halo;
    Alcotest.test_case "corpus: fold mismatch" `Quick corpus_fold_mismatch;
    Alcotest.test_case "corpus: periodic wavefront" `Quick
      corpus_periodic_wavefront;
    Alcotest.test_case "corpus: upwind anti-dependence" `Quick
      corpus_upwind_anti;
    qt verdicts_agree;
    qt sanitizer_is_transparent;
    Alcotest.test_case "self-lint: suite x machines x spaces" `Quick
      test_selflint_spaces;
    Alcotest.test_case "legal space runs trap-free" `Quick
      test_legal_space_zero_traps;
    Alcotest.test_case "tuner prunes illegal candidates" `Quick
      test_tuner_prunes;
    Alcotest.test_case "advisor filter" `Quick test_advisor_filter;
    Alcotest.test_case "engine gates" `Quick test_engine_gates;
    Alcotest.test_case "JSON report schema" `Quick test_json_schema ]
