(* The plan-IR dataflow verifier (YS5xx) and the certification layer.

   Three contracts under test:

   1. Per-rule behaviour of [Lint.Plan] on hand-built adversarial plans
      (the plan constructor accepts arbitrary bodies, so every rule can
      be driven directly) and cleanliness on the whole suite.

   2. The adversarial corpus: every statically rejected plan also
      misbehaves dynamically — a bounds escape (YS501) traps YS453 when
      its accesses are replayed against the shadow allocation, and no
      rejected plan ever earns a certificate (no false "safe"
      verdicts). Conversely every certified suite plan runs sanitized
      to completion with zero traps.

   3. The certified fast path is *pure optimisation*: sweeps and
      wavefronts with a certificate are bit-identical (outputs and
      stats) to the fully checked path, across random stencils, ranks,
      layouts and blocking. *)

module Grid = Yasksite_grid.Grid
module Machine = Yasksite_arch.Machine
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Suite = Yasksite_stencil.Suite
module Gen = Yasksite_stencil.Gen
module Dsl = Yasksite_stencil.Dsl
module Expr = Yasksite_stencil.Expr
module Plan = Yasksite_stencil.Plan
module Lower = Yasksite_stencil.Lower
module Config = Yasksite_ecm.Config
module Sweep = Yasksite_engine.Sweep
module Wavefront = Yasksite_engine.Wavefront
module Sanitizer = Yasksite_engine.Sanitizer
module Cert = Yasksite_engine.Cert
module Certify = Yasksite_engine.Certify
module Measure = Yasksite_engine.Measure
module PL = Yasksite_lint.Plan_lint
module D = Yasksite_lint.Diagnostic
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let has code ds = List.exists (fun (d : D.t) -> d.D.code = code) ds

let make_grid ?(layout = Grid.Linear) ~halo ~dims seed =
  let rng = Prng.create ~seed in
  let g = Grid.create ~halo ~layout ~dims () in
  Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
  Grid.halo_dirichlet g 0.25;
  g

(* Dividing by 1.0 is exact for every float and defeats the
   linear-combination detector, forcing the postfix-program body. *)
let force_program spec =
  Spec.v ~name:spec.Spec.name ~rank:spec.Spec.rank
    ~n_fields:spec.Spec.n_fields
    Dsl.(spec.Spec.expr /: c 1.0)

let acc ?(field = 0) offsets = { Expr.field; offsets }

(* A syntactically minimal healthy 1D plan to mutate from: one access,
   identity body. *)
let mk_plan ?(name = "adv") ?(rank = 1) ?(n_fields = 1)
    ?(accesses = [| acc [| 0 |] |]) body =
  Plan.v ~name ~rank ~n_fields ~accesses ~body

let groups terms = Plan.Groups [| { Plan.scale = None; terms } |]

let term ?(coeff = 1.0) slot = { Plan.coeff; slot }

(* ------------------------------------------------------------------ *)
(* Rule-by-rule units on hand-built plans.                             *)

let test_suite_plans_clean () =
  List.iter
    (fun s ->
      let spec = Suite.resolve_defaults s in
      let info = Analysis.of_spec spec in
      let halo = Analysis.halo info in
      let dims = Array.make spec.Spec.rank 8 in
      let inputs =
        Array.init spec.Spec.n_fields (fun i ->
            make_grid ~halo ~dims (100 + i))
      in
      let output = Grid.create ~halo ~dims () in
      let plan = Lower.lower spec in
      Alcotest.(check (list string))
        (spec.Spec.name ^ " verifies clean")
        []
        (List.map (fun (d : D.t) -> d.D.code)
           (PL.check ~info plan ~inputs ~output)))
    Suite.all

let test_ys500_dangling_slot () =
  let p = mk_plan (groups [| term 5 |]) in
  let ds = PL.structure p in
  Alcotest.(check bool) "slot outside the table" true (has "YS500" ds);
  Alcotest.(check bool) "is an error" true (D.has_errors ds);
  let p = mk_plan (Plan.Program { code = [| Plan.Load 3 |]; depth = 1 }) in
  Alcotest.(check bool) "program load outside the table" true
    (has "YS500" (PL.structure p))

let test_ys500_bad_field_and_rank () =
  let p = mk_plan ~accesses:[| acc ~field:3 [| 0 |] |] (groups [| term 0 |]) in
  Alcotest.(check bool) "field outside the declared range" true
    (has "YS500" (PL.structure p));
  let p = mk_plan ~accesses:[| acc [| 0; 0 |] |] (groups [| term 0 |]) in
  Alcotest.(check bool) "offset arity differs from the plan rank" true
    (has "YS500" (PL.structure p))

let test_ys502_underflow_and_depth () =
  let p = mk_plan (Plan.Program { code = [| Plan.Add |]; depth = 0 }) in
  Alcotest.(check bool) "underflow" true (has "YS502" (PL.structure p));
  let code = [| Plan.Load 0; Plan.Push 2.0; Plan.Add |] in
  let p = mk_plan (Plan.Program { code; depth = 5 }) in
  Alcotest.(check bool) "declared depth differs from measured" true
    (has "YS502" (PL.structure p));
  Alcotest.(check (option int)) "measured depth" (Some 2)
    (PL.measured_depth code)

let test_ys503_dead_load () =
  let p =
    mk_plan
      ~accesses:[| acc [| 0 |]; acc [| 1 |] |]
      (groups [| term 0 |])
  in
  let ds = PL.structure p in
  Alcotest.(check bool) "dead load reported" true (has "YS503" ds);
  Alcotest.(check bool) "dead load is a warning, not an error" false
    (D.has_errors ds)

let test_ys504_duplicate_slots () =
  let p =
    mk_plan
      ~accesses:[| acc [| 1 |]; acc [| 1 |] |]
      (groups [| term 0; term 1 |])
  in
  Alcotest.(check bool) "duplicate table entries" true
    (has "YS504" (PL.structure p))

let test_ys505_no_result () =
  let p = mk_plan (Plan.Groups [||]) in
  Alcotest.(check bool) "empty groups body" true
    (has "YS505" (PL.structure p));
  let p =
    mk_plan
      (Plan.Program { code = [| Plan.Load 0; Plan.Push 1.0 |]; depth = 2 })
  in
  Alcotest.(check bool) "two values left on the stack" true
    (has "YS505" (PL.structure p))

let test_ys506_unresolved_sym () =
  let spec = Spec.v ~name:"sym" ~rank:1 Dsl.(p "r" *: fld [ 0 ]) in
  Alcotest.(check bool) "lowered symbolic plan flagged" true
    (has "YS506" (PL.structure (Lower.lower spec)))

let test_ys507_div_by_zero () =
  let code = [| Plan.Load 0; Plan.Push 0.0; Plan.Div |] in
  let p = mk_plan (Plan.Program { code; depth = 2 }) in
  let ds = PL.structure p in
  Alcotest.(check bool) "provable zero divisor" true (has "YS507" ds);
  Alcotest.(check bool) "is an error" true (D.has_errors ds)

let test_ys508_zero_arithmetic () =
  let code = [| Plan.Push 0.0; Plan.Load 0; Plan.Mul |] in
  let p = mk_plan (Plan.Program { code; depth = 2 }) in
  Alcotest.(check bool) "zero multiply flagged" true
    (has "YS508" (PL.structure p));
  let p = mk_plan (groups [| term ~coeff:0.0 0 |]) in
  Alcotest.(check bool) "zero group coefficient flagged" true
    (has "YS508" (PL.structure p))

let wide1 = Spec.v ~name:"wide1" ~rank:1 Dsl.(fld [ -2 ] +: fld [ 2 ])

let test_ys501_bounds () =
  let plan = Lower.lower wide1 in
  let thin = make_grid ~halo:[| 1 |] ~dims:[| 8 |] 1 in
  let o = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  let ds = PL.bounds plan ~inputs:[| thin |] ~output:o in
  Alcotest.(check bool) "radius-2 access escapes a halo-1 allocation" true
    (has "YS501" ds && D.has_errors ds);
  let ok = make_grid ~halo:[| 2 |] ~dims:[| 8 |] 2 in
  let o2 = Grid.create ~halo:[| 2 |] ~dims:[| 8 |] () in
  Alcotest.(check int) "halo-2 allocation is safe" 0
    (List.length (PL.bounds plan ~inputs:[| ok |] ~output:o2));
  Alcotest.(check bool) "field-count mismatch" true
    (has "YS501" (PL.bounds plan ~inputs:[||] ~output:o))

let test_ys510_counts_disagree () =
  let heat1 =
    Spec.v ~name:"heat1" ~rank:1
      Dsl.(
        c 0.25 *: fld [ -1 ] +: (c 0.5 *: fld [ 0 ]) +: (c 0.25 *: fld [ 1 ]))
  in
  let info = Analysis.of_spec heat1 in
  (* A plan for a different kernel, judged against heat1's analysis:
     access set and load count both diverge. *)
  let ds = PL.counts_agree (Lower.lower wide1) info in
  Alcotest.(check bool) "foreign plan's counts disagree" true
    (has "YS510" ds && D.has_errors ds);
  Alcotest.(check int) "own plan agrees" 0
    (List.length (PL.counts_agree (Lower.lower heat1) info))

(* ------------------------------------------------------------------ *)
(* Satellite: declared Program depth equals the interpreter-measured
   maximum for random plans.                                           *)

let depth_matches_interpreter =
  QCheck.Test.make ~name:"Program.depth equals measured stack maximum"
    ~count:150 QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let rank = 1 + Prng.int rng ~bound:3 in
      let spec = force_program (Gen.spec rng ~rank ()) in
      match (Lower.lower spec).Plan.body with
      | Plan.Groups _ -> false (* [force_program] must defeat detection *)
      | Plan.Program { code; depth } ->
          PL.measured_depth code = Some depth)

(* ------------------------------------------------------------------ *)
(* Certificate store.                                                  *)

let cfg_grids ?(halo = [| 1 |]) ?(dims = [| 12 |]) seed =
  let a = make_grid ~halo ~dims seed in
  let o = Grid.create ~halo ~dims () in
  (a, o)

let test_cert_key_extent_independent () =
  let spec = Suite.resolve_defaults Suite.heat_1d_3pt in
  let plan = Lower.lower spec in
  let key ~dims ~config =
    let a, o = cfg_grids ~dims 3 in
    Cert.key ~plan ~inputs:[| a |] ~output:o ~config
  in
  let k = key ~dims:[| 12 |] ~config:Config.default in
  Alcotest.(check string) "key is deterministic" k
    (key ~dims:[| 12 |] ~config:Config.default);
  Alcotest.(check string) "key ignores grid extents" k
    (key ~dims:[| 48 |] ~config:Config.default);
  Alcotest.(check bool) "key depends on blocking" false
    (k = key ~dims:[| 12 |] ~config:(Config.v ~block:[| 0; 4 |] ()));
  let a, o = cfg_grids ~halo:[| 2 |] 4 in
  Alcotest.(check bool) "key depends on the halo" false
    (k = Cert.key ~plan ~inputs:[| a |] ~output:o ~config:Config.default)

let test_cert_store_roundtrip () =
  if Cert.enabled () then begin
    Cert.clear ();
    let e =
      { Cert.key = "k1";
        fingerprint = "fp";
        loads_per_point = 3;
        stores_per_point = 1;
        flops_per_point = 5 }
    in
    Alcotest.(check bool) "miss before insert" false (Cert.mem "k1");
    Cert.insert e;
    Alcotest.(check bool) "hit after insert" true (Cert.mem "k1");
    Alcotest.(check int) "size" 1 (Cert.size ());
    (match Cert.lookup "k1" with
    | Some e' -> Alcotest.(check int) "payload survives" 3 e'.Cert.loads_per_point
    | None -> Alcotest.fail "lookup lost the entry");
    Cert.record_fast_path ();
    Alcotest.(check int) "fast-path counter" 1 (Cert.fast_path_hits ());
    Cert.clear ();
    Alcotest.(check int) "clear empties the store" 0 (Cert.size ());
    Alcotest.(check int) "clear resets the counter" 0 (Cert.fast_path_hits ())
  end

let test_cert_disabled_by_env () =
  let saved = Sys.getenv_opt "YASKSITE_NO_CERT" in
  let restore () =
    Unix.putenv "YASKSITE_NO_CERT" (Option.value saved ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "YASKSITE_NO_CERT" "1";
      Alcotest.(check bool) "store disabled" false (Cert.enabled ());
      Cert.insert
        { Cert.key = "k-disabled";
          fingerprint = "fp";
          loads_per_point = 1;
          stores_per_point = 1;
          flops_per_point = 1 };
      Alcotest.(check bool) "inserts drop" false (Cert.mem "k-disabled");
      Unix.putenv "YASKSITE_NO_CERT" "0";
      Alcotest.(check bool) "\"0\" means enabled" true (Cert.enabled ()))

(* ------------------------------------------------------------------ *)
(* Certification pipeline.                                             *)

let test_certify_suite () =
  List.iter
    (fun s ->
      let spec = Suite.resolve_defaults s in
      let info = Analysis.of_spec spec in
      let halo = Analysis.halo info in
      let dims = Array.make spec.Spec.rank 8 in
      let inputs =
        Array.init spec.Spec.n_fields (fun i ->
            make_grid ~halo ~dims (200 + i))
      in
      let output = Grid.create ~halo ~dims () in
      match Certify.certify spec ~inputs ~output ~config:Config.default with
      | Ok e ->
          Alcotest.(check string)
            (spec.Spec.name ^ " certificate names the plan")
            (Lower.fingerprint spec) e.Cert.fingerprint;
          if Cert.enabled () then
            Alcotest.(check bool)
              (spec.Spec.name ^ " certificate stored")
              true (Cert.mem e.Cert.key)
      | Error ds ->
          Alcotest.failf "%s failed certification: %s" spec.Spec.name
            (D.summary ds))
    Suite.all

let test_validate_traffic_agrees () =
  let spec = Suite.resolve_defaults Suite.heat_2d_5pt in
  Alcotest.(check int) "traced proxy traffic matches certified counts" 0
    (List.length
       (Certify.validate_traffic spec ~plan:(Lower.lower spec)
          ~config:Config.default))

(* ------------------------------------------------------------------ *)
(* Adversarial corpus: static YS5xx verdicts agree with the dynamic
   outcome.                                                            *)

(* Replay a plan's access table at one interior point through a
   sanitizer slice: the dynamic counterpart of the YS501 bounds proof
   (an escaping access must trap YS453 before any unchecked read). *)
let replay_accesses plan ~inputs ~output =
  let san = Sanitizer.create () in
  Array.iter (Sanitizer.register san) inputs;
  Sanitizer.register san output;
  let pass = Sanitizer.begin_sweep san ~inputs ~output in
  let sl = Sanitizer.slice pass 0 in
  Array.iter
    (fun (a : Expr.access) ->
      Sanitizer.reader sl inputs.(a.Expr.field) a.Expr.offsets)
    plan.Plan.accesses

let trap_code f =
  try
    ignore (f ());
    None
  with Sanitizer.Trap t -> Some (Sanitizer.code_of_kind t.Sanitizer.kind)

(* Statically rejected AND dynamically trapping: a YS501 bounds escape
   replayed against the shadow allocation. *)
let corpus_bounds_escape name spec ~halo ~dims =
  let plan = Lower.lower spec in
  let inputs =
    Array.init spec.Spec.n_fields (fun i -> make_grid ~halo ~dims (300 + i))
  in
  let output = Grid.create ~halo ~dims () in
  let static = PL.bounds plan ~inputs ~output in
  Alcotest.(check bool)
    (name ^ " statically rejected with YS501")
    true
    (has "YS501" static && D.has_errors static);
  Alcotest.(check (option string)) (name ^ " replay traps YS453")
    (Some "YS453") (trap_code (fun () -> replay_accesses plan ~inputs ~output))

let corpus_wide_star_1d () =
  corpus_bounds_escape "radius-2 star on halo-1 grids" wide1 ~halo:[| 1 |]
    ~dims:[| 10 |]

let corpus_long_star_3d () =
  let spec = Suite.resolve_defaults Suite.star_3d_r2 in
  corpus_bounds_escape "3D radius-2 star on halo-1 grids" spec
    ~halo:[| 1; 1; 1 |] ~dims:[| 6; 6; 6 |]

(* Statically rejected plans must never earn a certificate, whatever
   the dynamic path would do (no false "safe" verdicts). *)
let corpus_rejected_never_certified () =
  let spec = Suite.resolve_defaults Suite.copy_1d in
  let a, o = cfg_grids 5 in
  let bad_plans =
    [ ("dangling slot", mk_plan (groups [| term 7 |]));
      ( "stack underflow",
        mk_plan (Plan.Program { code = [| Plan.Mul |]; depth = 0 }) );
      ( "zero divide",
        mk_plan
          (Plan.Program
             { code = [| Plan.Load 0; Plan.Push 0.0; Plan.Div |]; depth = 2 })
      );
      ( "wrong depth",
        mk_plan
          (Plan.Program { code = [| Plan.Load 0; Plan.Neg |]; depth = 9 }) )
    ]
  in
  List.iter
    (fun (name, plan) ->
      (match
         Certify.certify ~plan spec ~inputs:[| a |] ~output:o
           ~config:Config.default
       with
      | Ok _ -> Alcotest.failf "%s earned a certificate" name
      | Error ds ->
          Alcotest.(check bool) (name ^ " rejection carries errors") true
            (D.has_errors ds));
      Alcotest.(check bool) (name ^ " not in the store") false
        (Cert.mem
           (Cert.key ~plan ~inputs:[| a |] ~output:o ~config:Config.default)))
    bad_plans

(* The positive half: every certified suite plan runs a sanitized,
   gate-checked sweep to completion on the fast path — zero traps. *)
let corpus_certified_never_traps () =
  if Cert.enabled () then begin
    Cert.clear ();
    List.iter
      (fun s ->
        let spec = Suite.resolve_defaults s in
        let info = Analysis.of_spec spec in
        let halo = Analysis.halo info in
        let dims = Array.make spec.Spec.rank 8 in
        let inputs =
          Array.init spec.Spec.n_fields (fun i ->
              make_grid ~halo ~dims (400 + i))
        in
        let output = Grid.create ~halo ~dims () in
        Alcotest.(check bool)
          (spec.Spec.name ^ " certifies")
          true
          (Certify.ensure spec ~inputs ~output ~config:Config.default);
        let before = Cert.fast_path_hits () in
        let san = Sanitizer.create () in
        (* Fail-fast sanitizer: any trap raises and fails the test. *)
        ignore
          (Sweep.run ~sanitize:san spec ~inputs ~output : Sweep.stats);
        Alcotest.(check int)
          (spec.Spec.name ^ " ran the certified fast path")
          (before + 1) (Cert.fast_path_hits ()))
      Suite.all
  end

(* ------------------------------------------------------------------ *)
(* The fast path is pure optimisation: certified and checked sanitized
   sweeps are bit-identical across random stencils, ranks, layouts and
   blocking.                                                           *)

let certified_sweep_matches_checked ~seed =
  if not (Cert.enabled ()) then true
  else begin
    let rng = Prng.create ~seed in
    let rank = 1 + Prng.int rng ~bound:3 in
    let spec = Gen.spec rng ~rank () in
    let info = Analysis.of_spec spec in
    let halo = Analysis.halo info in
    let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:10) in
    let layout =
      if Prng.int rng ~bound:2 = 0 then Grid.Linear
      else begin
        let f = Array.make rank 1 in
        f.(rank - 1) <- 2;
        if rank > 1 then f.(rank - 2) <- 2;
        Grid.Folded f
      end
    in
    let cfg =
      let fold = match layout with Grid.Folded f -> Some f | _ -> None in
      let block =
        if Prng.int rng ~bound:2 = 0 then begin
          let b = Array.map (fun d -> 1 + Prng.int rng ~bound:d) dims in
          b.(0) <- 0;
          Some b
        end
        else None
      in
      Config.v ?fold ?block ()
    in
    let run ~certified =
      Cert.clear ();
      let a = make_grid ~layout ~halo ~dims (seed + 1000) in
      let o = Grid.create ~halo ~layout ~dims () in
      if certified then
        ignore
          (Certify.ensure spec ~inputs:[| a |] ~output:o ~config:cfg : bool);
      let san = Sanitizer.create () in
      let s = Sweep.run ~sanitize:san ~config:cfg spec ~inputs:[| a |] ~output:o in
      (o, s, Cert.fast_path_hits ())
    in
    let o_checked, s_checked, h_checked = run ~certified:false in
    let o_fast, s_fast, h_fast = run ~certified:true in
    Grid.max_abs_diff o_checked o_fast = 0.0
    && s_checked = s_fast && h_checked = 0 && h_fast = 1
  end

let certified_sweep_parity =
  QCheck.Test.make ~name:"certified fast path bit-reproduces checked sweeps"
    ~count:60 QCheck.small_int (fun seed ->
      certified_sweep_matches_checked ~seed)

let certified_wavefront_matches_checked ~seed =
  if not (Cert.enabled ()) then true
  else begin
    let rng = Prng.create ~seed in
    let rank = 1 + Prng.int rng ~bound:3 in
    let spec = Gen.spec rng ~rank () in
    let info = Analysis.of_spec spec in
    let halo = Analysis.halo info in
    let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:8) in
    let steps = 1 + Prng.int rng ~bound:3 in
    let wf = 2 + Prng.int rng ~bound:2 in
    let stagger = halo.(0) + 1 + Prng.int rng ~bound:2 in
    let cfg = Config.v ~wavefront:wf ~wavefront_stagger:stagger () in
    let run ~certified =
      Cert.clear ();
      let a = make_grid ~halo ~dims (seed + 1) in
      let b = make_grid ~halo ~dims (seed + 2) in
      if certified then
        ignore
          (Certify.ensure spec ~inputs:[| a |] ~output:b ~config:cfg : bool);
      let san = Sanitizer.create () in
      let final, stats =
        Wavefront.steps ~sanitize:san ~config:cfg spec ~a ~b ~steps
      in
      (final, stats, Cert.fast_path_hits ())
    in
    let f_checked, s_checked, h_checked = run ~certified:false in
    let f_fast, s_fast, h_fast = run ~certified:true in
    Grid.max_abs_diff f_checked f_fast = 0.0
    && s_checked = s_fast && h_checked = 0 && h_fast = 1
  end

let certified_wavefront_parity =
  QCheck.Test.make
    ~name:"certified fast path bit-reproduces checked wavefronts" ~count:40
    QCheck.small_int (fun seed -> certified_wavefront_matches_checked ~seed)

(* ------------------------------------------------------------------ *)
(* Fast-path gating and integration.                                   *)

let test_uncertified_keeps_checked_path () =
  if Cert.enabled () then begin
    Cert.clear ();
    let spec = Suite.resolve_defaults Suite.heat_1d_3pt in
    let a, o = cfg_grids 6 in
    let san = Sanitizer.create () in
    ignore (Sweep.run ~sanitize:san spec ~inputs:[| a |] ~output:o);
    Alcotest.(check int) "no certificate, no fast path" 0
      (Cert.fast_path_hits ())
  end

(* check:false must never engage the fast path even with a certificate:
   the YS4xx gate is part of what the certificate assumes. The aliased
   in-place sweep still traps. *)
let test_check_false_never_fast () =
  if Cert.enabled () then begin
    Cert.clear ();
    let spec = Suite.resolve_defaults Suite.heat_1d_3pt in
    let g = make_grid ~halo:[| 1 |] ~dims:[| 12 |] 7 in
    let a, o = cfg_grids 8 in
    Alcotest.(check bool) "certified" true
      (Certify.ensure spec ~inputs:[| a |] ~output:o ~config:Config.default);
    let san = Sanitizer.create () in
    Alcotest.(check (option string)) "aliased sweep still traps"
      (Some "YS452")
      (trap_code (fun () ->
           Sweep.run ~check:false ~sanitize:san spec ~inputs:[| g |]
             ~output:g))
  end

let test_measure_autocertifies () =
  if Cert.enabled () then begin
    Cert.clear ();
    let spec = Suite.resolve_defaults Suite.heat_1d_3pt in
    let r =
      Measure.stencil_sweep ~sanitize:true Machine.test_chip spec
        ~dims:[| 48 |] ~config:Config.default
    in
    Alcotest.(check bool) "measurement is sane" true (r.Measure.lups_chip > 0.0);
    Alcotest.(check bool) "measurement earned a certificate" true
      (Cert.size () > 0);
    Alcotest.(check bool) "measured sweeps ran the fast path" true
      (Cert.fast_path_hits () > 0)
  end

(* ------------------------------------------------------------------ *)
(* Satellite: backend-name validation.                                 *)

let test_backend_of_string () =
  Alcotest.(check bool) "plan parses" true
    (Sweep.backend_of_string "plan" = Ok Sweep.Plan_backend);
  Alcotest.(check bool) "case and whitespace tolerated" true
    (Sweep.backend_of_string " Closure " = Ok Sweep.Closure_backend);
  match Sweep.backend_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus backend accepted"
  | Error msg ->
      let contains s = Astring_contains.contains msg s in
      Alcotest.(check bool) "error lists the legal backends" true
        (contains "plan" && contains "closure" && contains "bogus")

let suite =
  [ Alcotest.test_case "suite plans verify clean" `Quick
      test_suite_plans_clean;
    Alcotest.test_case "YS500 dangling slot" `Quick test_ys500_dangling_slot;
    Alcotest.test_case "YS500 bad field / offset arity" `Quick
      test_ys500_bad_field_and_rank;
    Alcotest.test_case "YS502 underflow and declared depth" `Quick
      test_ys502_underflow_and_depth;
    Alcotest.test_case "YS503 dead load is a warning" `Quick
      test_ys503_dead_load;
    Alcotest.test_case "YS504 duplicate slots" `Quick
      test_ys504_duplicate_slots;
    Alcotest.test_case "YS505 missing or surplus result" `Quick
      test_ys505_no_result;
    Alcotest.test_case "YS506 unresolved coefficient" `Quick
      test_ys506_unresolved_sym;
    Alcotest.test_case "YS507 division by provable zero" `Quick
      test_ys507_div_by_zero;
    Alcotest.test_case "YS508 provably-zero arithmetic" `Quick
      test_ys508_zero_arithmetic;
    Alcotest.test_case "YS501 bounds proof" `Quick test_ys501_bounds;
    Alcotest.test_case "YS510 counts cross-validation" `Quick
      test_ys510_counts_disagree;
    qt depth_matches_interpreter;
    Alcotest.test_case "certificate keys: stable, extent-independent" `Quick
      test_cert_key_extent_independent;
    Alcotest.test_case "certificate store roundtrip" `Quick
      test_cert_store_roundtrip;
    Alcotest.test_case "YASKSITE_NO_CERT disables the store" `Quick
      test_cert_disabled_by_env;
    Alcotest.test_case "whole suite certifies (YS511 included)" `Quick
      test_certify_suite;
    Alcotest.test_case "traced traffic agrees with certified counts" `Quick
      test_validate_traffic_agrees;
    Alcotest.test_case "corpus: 1D bounds escape (YS501/YS453)" `Quick
      corpus_wide_star_1d;
    Alcotest.test_case "corpus: 3D bounds escape (YS501/YS453)" `Quick
      corpus_long_star_3d;
    Alcotest.test_case "corpus: rejected plans never certified" `Quick
      corpus_rejected_never_certified;
    Alcotest.test_case "corpus: certified suite never traps" `Quick
      corpus_certified_never_traps;
    qt certified_sweep_parity;
    qt certified_wavefront_parity;
    Alcotest.test_case "no certificate keeps the checked path" `Quick
      test_uncertified_keeps_checked_path;
    Alcotest.test_case "check:false never takes the fast path" `Quick
      test_check_false_never_fast;
    Alcotest.test_case "sanitized measurements auto-certify" `Quick
      test_measure_autocertifies;
    Alcotest.test_case "backend names validate eagerly" `Quick
      test_backend_of_string ]
