(* Stencil programs: min/max/select parsing, extended sweeps, the
   Program DAG layer (YS7xx lint), the topological executor, and the
   ECM-ranked fusion optimizer. *)

module Expr = Yasksite_stencil.Expr
module Spec = Yasksite_stencil.Spec
module Parser = Yasksite_stencil.Parser
module Compile = Yasksite_stencil.Compile
module Analysis = Yasksite_stencil.Analysis
module P = Yasksite_stencil.Program
module Suite = Yasksite_stencil.Suite
module Grid = Yasksite_grid.Grid
module Config = Yasksite_ecm.Config
module Model = Yasksite_ecm.Model
module Advisor = Yasksite_ecm.Advisor
module Machine = Yasksite_arch.Machine
module Sweep = Yasksite_engine.Sweep
module Sanitizer = Yasksite_engine.Sanitizer
module Prog = Yasksite_engine.Prog
module Lint = Yasksite_lint.Lint
module D = Yasksite_lint.Diagnostic
module Prng = Yasksite_util.Prng
module Pool = Yasksite_util.Pool

let qt = QCheck_alcotest.to_alcotest

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds

let has_code c ds = List.mem c (codes ds)

(* ------------------------------------------------------------------ *)
(* min / max / select through the parser                               *)

let eval1 src values =
  match Parser.parse_spec ~name:"t" ~rank:1 src with
  | Error m -> Alcotest.fail m
  | Ok spec ->
      let n = Array.length values in
      let g = Grid.create ~halo:[| 1 |] ~dims:[| n |] () in
      Grid.fill g ~f:(fun _ -> 0.0);
      Array.iteri (fun i v -> Grid.set g [| i |] v) values;
      let eval = Compile.compile1 spec ~inputs:[| g |] in
      List.init n eval

let test_select_semantics () =
  (* select(c,a,b) = if c > 0 then a else b, branchless; min/max are
     IEEE Float.min/max. *)
  let r = eval1 "select(f0(x), 10, 20)" [| -1.0; 0.0; 0.5 |] in
  Alcotest.(check (list (float 0.0))) "select" [ 20.0; 20.0; 10.0 ] r;
  let r = eval1 "min(f0(x), 0) + max(f0(x), 2)" [| -3.0; 4.0 |] in
  Alcotest.(check (list (float 0.0))) "min+max" [ -1.0; 4.0 ] r

let test_builtin_arity_errors () =
  let expect_error src frag =
    match Parser.parse_expr ~rank:2 src with
    | Ok _ -> Alcotest.fail (src ^ " should not parse")
    | Error m ->
        Alcotest.(check bool)
          (src ^ ": message mentions arity") true
          (Astring_contains.contains m frag);
        Alcotest.(check bool)
          (src ^ ": message is positioned") true
          (Astring_contains.contains m "at ")
  in
  expect_error "min(f0(y,x))" "min expects 2 arguments";
  expect_error "max(f0(y,x), 1, 2)" "max expects 2 arguments";
  expect_error "select(f0(y,x), 1)" "select expects 3 arguments";
  expect_error "select(1, 2, 3, 4)" "select expects 3 arguments"

let test_builtin_caret_spans () =
  (* Kernel lint turns the located parse error into a YS100 caret. *)
  List.iter
    (fun src ->
      match Lint.Kernel.source ~rank:2 src with
      | [ d ] ->
          Alcotest.(check string) "code" "YS100" d.D.code;
          Alcotest.(check bool) "located" true (d.D.loc <> D.No_loc);
          Alcotest.(check bool)
            "caret rendered" true
            (Astring_contains.contains (D.render ~src d) "^")
      | ds ->
          Alcotest.failf "%s: expected one finding, got %d" src
            (List.length ds))
    [ "min(f0(y,x))"; "select(f0(y,x), 1)" ]

(* ------------------------------------------------------------------ *)
(* Extended sweeps                                                     *)

let heat2 = Suite.resolve_defaults Suite.heat_2d_5pt

let fill_rng ?(seed = 3) g =
  let rng = Prng.create ~seed in
  Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0)

let test_extended_sweep_embedding () =
  (* An extended sweep over [-e, dims+e) must equal a plain sweep over a
     grid whose interior is the extended region. *)
  let dims = [| 6; 7 |] and ext = [| 1; 2 |] in
  let in_halo = [| 2; 3 |] in
  (* radius 1 + ext *)
  let input = Grid.create ~halo:in_halo ~dims () in
  let output = Grid.create ~halo:ext ~dims () in
  fill_rng input;
  let _ =
    Sweep.run ~extend:ext heat2 ~inputs:[| input |] ~output
  in
  (* Embedding: interior = extended region, same values. *)
  let edims = Array.mapi (fun d e -> dims.(d) + (2 * e)) ext in
  let space = Grid.fresh_space () in
  let input' = Grid.create ~space ~halo:[| 1; 1 |] ~dims:edims () in
  let output' = Grid.create ~space ~dims:edims () in
  for y = -2 to edims.(0) + 1 do
    for x = -3 to edims.(1) + 2 do
      if y >= -1 && y <= edims.(0) && x >= -1 && x <= edims.(1) then
        Grid.set input' [| y; x |]
          (Grid.get input [| y - ext.(0); x - ext.(1) |])
    done
  done;
  let _ = Sweep.run heat2 ~inputs:[| input' |] ~output:output' in
  for y = 0 to edims.(0) - 1 do
    for x = 0 to edims.(1) - 1 do
      let a = Grid.get output' [| y; x |] in
      let b = Grid.get output [| y - ext.(0); x - ext.(1) |] in
      if not (Float.equal a b) then
        Alcotest.failf "mismatch at (%d,%d): %g vs %g" y x a b
    done
  done

let test_extended_gate_ys404 () =
  let dims = [| 6; 6 |] and ext = [| 1; 1 |] in
  let expect_ys404 ~in_halo ~out_halo =
    let input = Grid.create ~halo:in_halo ~dims () in
    let output = Grid.create ~halo:out_halo ~dims () in
    match Sweep.run ~extend:ext heat2 ~inputs:[| input |] ~output with
    | _ -> Alcotest.fail "extended sweep should have been gated"
    | exception Lint.Gate_error msg ->
        Alcotest.(check bool) "YS404 in gate" true
          (Astring_contains.contains msg "YS404")
  in
  (* Input halo must reach radius + ext; output halo must hold ext. *)
  expect_ys404 ~in_halo:[| 1; 1 |] ~out_halo:[| 1; 1 |];
  expect_ys404 ~in_halo:[| 2; 2 |] ~out_halo:[| 0; 0 |]

let test_extended_sanitize_rejected () =
  let dims = [| 6; 6 |] and ext = [| 1; 1 |] in
  let input = Grid.create ~halo:[| 2; 2 |] ~dims () in
  let output = Grid.create ~halo:[| 1; 1 |] ~dims () in
  Alcotest.check_raises "sanitize + extend"
    (Invalid_argument "Sweep: sanitize is not supported on extended sweeps")
    (fun () ->
      ignore
        (Sweep.run
           ~sanitize:(Sanitizer.create ())
           ~extend:ext heat2 ~inputs:[| input |] ~output))

let test_extended_pool_bit_identity () =
  let dims = [| 8; 10 |] and ext = [| 2; 1 |] in
  let config = Config.v ~block:[| 0; 4 |] () in
  let mk () =
    let space = Grid.fresh_space () in
    let input = Grid.create ~space ~halo:[| 3; 2 |] ~dims () in
    let output = Grid.create ~space ~halo:ext ~dims () in
    fill_rng input;
    (input, output)
  in
  let in_s, out_s = mk () in
  let stats_s =
    Sweep.run ~config ~extend:ext heat2 ~inputs:[| in_s |] ~output:out_s
  in
  let in_p, out_p = mk () in
  let stats_p =
    Pool.with_pool ~domains:3 (fun pool ->
        Sweep.run ~pool ~config ~extend:ext heat2 ~inputs:[| in_p |]
          ~output:out_p)
  in
  Alcotest.(check bool) "same stats" true (stats_s = stats_p);
  Alcotest.(check (float 0.0)) "bit-identical output" 0.0
    (Grid.max_abs_diff out_s out_p)

(* ------------------------------------------------------------------ *)
(* Program structure and YS7xx lint                                    *)

let parse_ok src =
  match P.parse src with
  | Ok p -> p
  | Error (line, msg) -> Alcotest.failf "line %d: %s" line msg

let test_hdiff_structure () =
  let p = Suite.hdiff in
  Alcotest.(check int) "stages" 16 (Array.length p.P.stages);
  Alcotest.(check (list string)) "no issues" []
    (List.map (fun _ -> "issue") (P.issues p));
  (match P.topo p with
  | Error _ -> Alcotest.fail "hdiff is acyclic"
  | Ok order ->
      Alcotest.(check int) "topo covers all stages" 16 (List.length order);
      (* Every stage's stage-reads appear strictly earlier. *)
      List.iteri
        (fun i name ->
          match P.find_stage p name with
          | None -> Alcotest.fail "topo names a stage"
          | Some s ->
              Array.iter
                (fun r ->
                  match P.find_stage p r with
                  | None -> () (* program input *)
                  | Some _ ->
                      let j =
                        Option.get
                          (List.find_index (String.equal r) order)
                      in
                      if j >= i then
                        Alcotest.failf "%s read before computed" r)
                s.P.reads)
        order);
  Alcotest.(check int) "inlinable" 12 (List.length (P.inlinable p));
  let comps = P.components p in
  Alcotest.(check int) "components" 4 (List.length comps);
  List.iter
    (fun c -> Alcotest.(check int) "component size" 4 (List.length c))
    comps

let test_hdiff_halo_plan () =
  let hp = P.halo_plan Suite.hdiff in
  let ext name = List.assoc name hp.P.stage_ext in
  Alcotest.(check (array int)) "ulap ext" [| 2; 2 |] (ext "ulap");
  Alcotest.(check (array int)) "ufli ext" [| 0; 1 |] (ext "ufli");
  Alcotest.(check (array int)) "uflj ext" [| 1; 0 |] (ext "uflj");
  Alcotest.(check (array int)) "uout ext" [| 0; 0 |] (ext "uout");
  let halo name = List.assoc name hp.P.input_halo in
  Alcotest.(check (array int)) "uin halo" [| 3; 3 |] (halo "uin");
  Alcotest.(check (array int)) "mask halo" [| 0; 0 |] (halo "mask")

let test_issue_codes () =
  let stage name reads expr_src =
    let fields = List.mapi (fun i n -> (n, i)) reads in
    match Parser.parse_expr ~fields ~rank:1 expr_src with
    | Ok expr -> { P.name; reads = Array.of_list reads; expr }
    | Error m -> Alcotest.fail m
  in
  let check_codes what expected p =
    let ds = Lint.Program.program p in
    List.iter
      (fun c -> Alcotest.(check bool) (what ^ ": " ^ c) true (has_code c ds))
      expected
  in
  (* YS701: undefined field. *)
  check_codes "undefined" [ "YS701" ]
    (P.v ~name:"p" ~rank:1 ~inputs:[| "in" |] ~outputs:[| "s" |]
       [ stage "s" [ "nope" ] "nope(x)" ]);
  (* YS702: cycle (and halo_plan refuses). *)
  let cyclic =
    P.v ~name:"p" ~rank:1 ~inputs:[| "in" |] ~outputs:[| "out" |]
      [ stage "a" [ "b" ] "b(x)";
        stage "b" [ "a" ] "a(x)";
        stage "out" [ "a" ] "a(x)" ]
  in
  check_codes "cycle" [ "YS702" ] cyclic;
  (match P.topo cyclic with
  | Ok _ -> Alcotest.fail "cycle not detected"
  | Error names ->
      Alcotest.(check bool) "cycle names a" true (List.mem "a" names));
  (try
     ignore (P.halo_plan cyclic);
     Alcotest.fail "halo_plan on a cycle"
   with Invalid_argument _ -> ());
  (* YS703: duplicate and reserved names. *)
  check_codes "duplicate" [ "YS703" ]
    (P.v ~name:"p" ~rank:1 ~inputs:[| "in" |] ~outputs:[| "s" |]
       [ stage "s" [ "in" ] "in(x)"; stage "s" [ "in" ] "in(x)" ]);
  check_codes "reserved" [ "YS703" ]
    (P.v ~name:"p" ~rank:1 ~inputs:[| "in" |] ~outputs:[| "select" |]
       [ stage "select" [ "in" ] "in(x)" ]);
  (* YS705: output names no stage. *)
  check_codes "output unknown" [ "YS705" ]
    (P.v ~name:"p" ~rank:1 ~inputs:[| "in" |] ~outputs:[| "ghost" |]
       [ stage "s" [ "in" ] "in(x)" ]);
  (* YS706: dead stage is a warning, not an error. *)
  let dead =
    P.v ~name:"p" ~rank:1 ~inputs:[| "in" |] ~outputs:[| "out" |]
      [ stage "out" [ "in" ] "in(x)"; stage "unused" [ "in" ] "in(x)" ]
  in
  let ds = Lint.Program.program dead in
  Alcotest.(check bool) "YS706" true (has_code "YS706" ds);
  Alcotest.(check int) "dead stage is not an error" 0 (Lint.exit_code ds)

let test_parse_errors_located () =
  (* Stage-expression errors carry the 1-based line of the stage. *)
  let src = "program p\nrank 2\ninputs a\noutputs s\ns = min(a(y,x))\n" in
  (match P.parse src with
  | Ok _ -> Alcotest.fail "arity error should not parse"
  | Error (line, msg) ->
      Alcotest.(check int) "line" 5 line;
      Alcotest.(check bool) "stage prefix" true
        (Astring_contains.contains msg "stage s");
      Alcotest.(check bool) "arity" true
        (Astring_contains.contains msg "min expects 2 arguments"));
  (match Lint.Program.source src with
  | [ d ] ->
      Alcotest.(check string) "code" "YS700" d.D.code;
      Alcotest.(check bool) "line loc" true (d.D.loc = D.Line 5)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds));
  match P.parse "program p\nrank 2\nbogus directive\n" with
  | Ok _ -> Alcotest.fail "bad directive should not parse"
  | Error (line, _) -> Alcotest.(check int) "directive line" 3 line

let test_fuse_substitution () =
  let src =
    "program chain\nrank 1\ninputs in\noutputs out\n\
     a = in(x) + in(x+1)\nout = a(x-1) * a(x+1)\n"
  in
  let p = parse_ok src in
  let fused = P.fuse p ~inline:[ "a" ] in
  Alcotest.(check int) "one stage left" 1 (Array.length fused.P.stages);
  let out = fused.P.stages.(0) in
  let printed =
    Expr.to_c ~field_name:(fun i -> out.P.reads.(i)) out.P.expr
  in
  Alcotest.(check string) "offsets shifted"
    "(in(x-1) + in(x)) * (in(x+1) + in(x+2))" printed;
  (* Only inlinable stages may be fused. *)
  Alcotest.(check bool) "fuse rejects outputs" true
    (match P.fuse p ~inline:[ "out" ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_partitions_and_invariance () =
  let p = Suite.hdiff in
  let parts = P.partitions p in
  Alcotest.(check int) "default limit" 4096 (List.length parts);
  Alcotest.(check (list string)) "first is unfused" [] (List.hd parts);
  Alcotest.(check int) "explicit limit" 10
    (List.length (P.partitions ~limit:10 p));
  (* Fusion never increases the accumulated input-halo requirement
     (per-stage halo boxes over-approximate anisotropic chains, and
     inlining removes that rounding), so grids sized for the unfused
     plan are sufficient for every partition. *)
  let base = (P.halo_plan p).P.input_halo in
  List.iter
    (fun inline ->
      let hp = P.halo_plan (P.fuse p ~inline) in
      List.iter
        (fun (name, need) ->
          let b = List.assoc name base in
          Array.iteri
            (fun d r ->
              if r > b.(d) then
                Alcotest.failf
                  "fusing [%s] grew %s's halo need in dim %d: %d > %d"
                  (String.concat " " inline) name d r b.(d))
            need)
        hp.P.input_halo)
    [ [ "ulap" ]; [ "ufli"; "uflj" ]; P.inlinable p ];
  (* ...and it genuinely shrinks when inlining collapses an
     anisotropic pair: materialized, ulap's box must cover ufli's
     x-reach and uflj's y-reach at once. *)
  let hp = P.halo_plan (P.fuse p ~inline:[ "ufli"; "uflj" ]) in
  Alcotest.(check (array int)) "uin halo shrinks under ufli+uflj"
    [| 2; 2 |]
    (List.assoc "uin" hp.P.input_halo)

let test_text_round_trip () =
  let p = Suite.hdiff in
  let p' = parse_ok (P.to_text p) in
  Alcotest.(check string) "to_text fixpoint" (P.to_text p) (P.to_text p');
  (* The shipped example file is the same program. *)
  let src =
    In_channel.with_open_text "../examples/hdiff.prog" In_channel.input_all
  in
  let shipped = parse_ok src in
  Alcotest.(check string) "examples/hdiff.prog matches the suite"
    (P.to_text p) (P.to_text shipped);
  Alcotest.(check int) "shipped file lints clean" 0
    (Lint.exit_code (Lint.Program.source src))

let test_grids_gate_ys704 () =
  let p = Suite.hdiff in
  let dims = [| 8; 8 |] in
  let hp = P.halo_plan p in
  let full =
    List.map
      (fun (name, halo) -> (name, Grid.create ~halo ~dims ()))
      hp.P.input_halo
  in
  Alcotest.(check (list string)) "sufficient halos pass" []
    (codes (Lint.Program.grids p ~inputs:full));
  (* Thin uin halo. *)
  let thin =
    List.map
      (fun (name, g) ->
        if name = "uin" then (name, Grid.create ~halo:[| 2; 2 |] ~dims ())
        else (name, g))
      full
  in
  Alcotest.(check bool) "thin halo is YS704" true
    (has_code "YS704" (Lint.Program.grids p ~inputs:thin));
  (* Missing input. *)
  let missing = List.filter (fun (n, _) -> n <> "mask") full in
  Alcotest.(check bool) "missing input is YS704" true
    (has_code "YS704" (Lint.Program.grids p ~inputs:missing));
  (* Extent disagreement. *)
  let skewed =
    List.map
      (fun (name, g) ->
        if name = "vin" then
          (name, Grid.create ~halo:[| 3; 3 |] ~dims:[| 8; 9 |] ())
        else (name, g))
      full
  in
  Alcotest.(check bool) "dims mismatch is YS409" true
    (has_code "YS409" (Lint.Program.grids p ~inputs:skewed))

let test_rules_table_has_ys7xx () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " in Lint.rules") true
        (List.exists (fun (c, _, _) -> c = code) Lint.rules))
    [ "YS700"; "YS701"; "YS702"; "YS703"; "YS704"; "YS705"; "YS706" ]

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)

let hdiff_inputs ?(seed = 11) ~dims () =
  let hp = P.halo_plan Suite.hdiff in
  let space = Grid.fresh_space () in
  ( space,
    List.map
      (fun (name, halo) ->
        let rng = Prng.create ~seed:(seed + Hashtbl.hash name) in
        let g = Grid.create ~space ~halo ~dims () in
        Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
        Grid.halo_dirichlet g 0.0;
        (name, g))
      hp.P.input_halo )

let dump_outputs (r : Prog.result) =
  List.map
    (fun (name, g) ->
      let d = Grid.dims g in
      let vals = ref [] in
      for y = d.(0) - 1 downto 0 do
        for x = d.(1) - 1 downto 0 do
          vals := Grid.get g [| y; x |] :: !vals
        done
      done;
      (name, !vals))
    r.Prog.outputs

let run_partition ?pool ?config ~backend ~dims inline =
  let fused = P.fuse Suite.hdiff ~inline in
  let space, inputs = hdiff_inputs ~dims () in
  dump_outputs (Prog.run ?pool ?config ~backend ~space fused ~inputs)

let test_executor_stats () =
  let dims = [| 8; 9 |] in
  let space, inputs = hdiff_inputs ~dims () in
  let r = Prog.run ~space Suite.hdiff ~inputs in
  Alcotest.(check int) "stage runs" 16 (List.length r.Prog.stages);
  Alcotest.(check int) "outputs" 4 (List.length r.Prog.outputs);
  let points name =
    let sr = List.find (fun s -> s.Prog.stage = name) r.Prog.stages in
    sr.Prog.stats.Sweep.points
  in
  (* ulap runs extended by its accumulated (2,2) halo; uout is interior
     only. *)
  Alcotest.(check int) "ulap extended points" ((8 + 4) * (9 + 4))
    (points "ulap");
  Alcotest.(check int) "ufli extended points" (8 * (9 + 2)) (points "ufli");
  Alcotest.(check int) "uout interior points" (8 * 9) (points "uout")

let test_executor_gates () =
  (* Cyclic program: refused before any allocation. *)
  let mk_expr reads src =
    let fields = List.mapi (fun i n -> (n, i)) reads in
    match Parser.parse_expr ~fields ~rank:1 src with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  let cyclic =
    P.v ~name:"p" ~rank:1 ~inputs:[| "in" |] ~outputs:[| "out" |]
      [ { P.name = "a"; reads = [| "b" |]; expr = mk_expr [ "b" ] "b(x)" };
        { P.name = "b"; reads = [| "a" |]; expr = mk_expr [ "a" ] "a(x)" };
        { P.name = "out"; reads = [| "a" |]; expr = mk_expr [ "a" ] "a(x)" }
      ]
  in
  let input = Grid.create ~dims:[| 8 |] () in
  (match Prog.run cyclic ~inputs:[ ("in", input) ] with
  | _ -> Alcotest.fail "cyclic program executed"
  | exception Lint.Gate_error msg ->
      Alcotest.(check bool) "YS702" true
        (Astring_contains.contains msg "YS702"));
  (* Thin input halos: refused with the program-level YS704. *)
  let dims = [| 8; 8 |] in
  let thin =
    List.map
      (fun (name, _) -> (name, Grid.create ~dims ()))
      (P.halo_plan Suite.hdiff).P.input_halo
  in
  match Prog.run Suite.hdiff ~inputs:thin with
  | _ -> Alcotest.fail "thin halos executed"
  | exception Lint.Gate_error msg ->
      Alcotest.(check bool) "YS704" true
        (Astring_contains.contains msg "YS704")

let test_executor_backends_and_pool () =
  let dims = [| 10; 12 |] in
  let reference = run_partition ~backend:Sweep.Plan_backend ~dims [] in
  List.iter
    (fun backend ->
      Alcotest.(check bool) "backend bit-identical" true
        (run_partition ~backend ~dims [] = reference))
    [ Sweep.Closure_backend; Sweep.Codegen_backend ];
  let config = Config.v ~block:[| 0; 4 |] () in
  let pooled =
    Pool.with_pool ~domains:3 (fun pool ->
        run_partition ~pool ~config ~backend:Sweep.Plan_backend ~dims [])
  in
  Alcotest.(check bool) "pooled bit-identical" true (pooled = reference)

(* The tentpole property: every legal fusion partition of hdiff is
   bit-identical to the fully-materialized reference on every backend. *)
let fusion_bit_identity =
  QCheck.Test.make ~name:"fusion partitions bit-identical on all backends"
    ~count:12 QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let dims = [| 10; 12 |] in
      let inlinable = P.inlinable Suite.hdiff in
      let inline =
        List.filter (fun _ -> Prng.int rng ~bound:2 = 1) inlinable
      in
      let reference = run_partition ~backend:Sweep.Plan_backend ~dims [] in
      List.for_all
        (fun backend -> run_partition ~backend ~dims inline = reference)
        [ Sweep.Plan_backend; Sweep.Closure_backend; Sweep.Codegen_backend ])

(* ------------------------------------------------------------------ *)
(* ECM-ranked fusion                                                   *)

(* Reference scoring: fuse the whole program and price every stage
   directly — what the per-component composition must reproduce. *)
let direct_time m p ~dims ~config inline =
  let fp = P.fuse p ~inline in
  let hp = P.halo_plan fp in
  Array.to_list fp.P.stages
  |> List.map (fun (s : P.stage) ->
         let ext = List.assoc s.P.name hp.P.stage_ext in
         let edims = Array.mapi (fun d e -> dims.(d) + (2 * e)) ext in
         let a = Analysis.of_spec (P.stage_spec fp s) in
         let pred = Model.predict m a ~dims:edims ~config in
         let points =
           float_of_int (Array.fold_left (fun acc d -> acc * d) 1 edims)
         in
         points /. pred.Model.lups_chip)
  |> List.fold_left ( +. ) 0.0

let test_rank_partitions_exact () =
  (* Two-stage chain: the ranking must match hand-computed model times
     for both partitions. *)
  let p =
    parse_ok
      "program chain\nrank 1\ninputs in\noutputs out\n\
       a = in(x-1) + in(x+1)\nout = a(x-1) + a(x+1)\n"
  in
  let m = Machine.test_chip in
  let dims = [| 64 |] in
  let config = Config.default in
  let ranked = Advisor.rank_partitions m p ~dims ~config in
  Alcotest.(check int) "two partitions" 2 (List.length ranked);
  List.iter
    (fun (pt : Advisor.partition) ->
      let expect = direct_time m p ~dims ~config pt.Advisor.inline in
      Alcotest.(check bool)
        ("predicted time matches direct scoring for ["
        ^ String.concat " " pt.Advisor.inline
        ^ "]")
        true
        (Float.abs (pt.Advisor.time -. expect)
        <= 1e-12 *. Float.abs expect))
    ranked;
  (* Sorted fastest first, and best_partition is the head. *)
  let times = List.map (fun (pt : Advisor.partition) -> pt.Advisor.time) ranked in
  Alcotest.(check bool) "sorted" true (List.sort compare times = times);
  let bp = Advisor.best_partition m p ~dims ~config in
  Alcotest.(check bool) "best is head" true
    (bp.Advisor.inline = (List.hd ranked).Advisor.inline)

let test_rank_partitions_hdiff () =
  let p = Suite.hdiff in
  let m = Machine.test_chip in
  let dims = [| 32; 32 |] in
  let config = Config.default in
  let ranked = Advisor.rank_partitions m p ~dims ~config in
  Alcotest.(check int) "full product space" 4096 (List.length ranked);
  let times = List.map (fun (pt : Advisor.partition) -> pt.Advisor.time) ranked in
  Alcotest.(check bool) "sorted ascending" true
    (List.sort compare times = times);
  (* stage count bookkeeping and per-stage decomposition *)
  List.iteri
    (fun i (pt : Advisor.partition) ->
      if i < 16 then begin
        Alcotest.(check int) "stage count" pt.Advisor.stages
          (List.length pt.Advisor.stage_times);
        let sum =
          List.fold_left (fun a (_, t) -> a +. t) 0.0 pt.Advisor.stage_times
        in
        Alcotest.(check bool) "time = sum of stage times" true
          (Float.abs (sum -. pt.Advisor.time) <= 1e-12 *. sum)
      end)
    ranked;
  (* Per-component composition agrees with whole-program scoring on a
     mixed partition. *)
  let mixed = [ "ulap"; "ufli"; "vflj"; "pplap"; "ppfli"; "ppflj" ] in
  let entry =
    List.find
      (fun (pt : Advisor.partition) ->
        List.sort compare pt.Advisor.inline = List.sort compare mixed)
      ranked
  in
  let expect = direct_time m p ~dims ~config mixed in
  Alcotest.(check bool) "composition exact" true
    (Float.abs (entry.Advisor.time -. expect) <= 1e-12 *. expect);
  (* limit *)
  Alcotest.(check int) "limit" 7
    (List.length (Advisor.rank_partitions ~limit:7 m p ~dims ~config))

let suite =
  [ Alcotest.test_case "select/min/max semantics" `Quick
      test_select_semantics;
    Alcotest.test_case "builtin arity errors" `Quick
      test_builtin_arity_errors;
    Alcotest.test_case "builtin caret spans" `Quick test_builtin_caret_spans;
    Alcotest.test_case "extended sweep embedding" `Quick
      test_extended_sweep_embedding;
    Alcotest.test_case "extended gate YS404" `Quick test_extended_gate_ys404;
    Alcotest.test_case "extended sanitize rejected" `Quick
      test_extended_sanitize_rejected;
    Alcotest.test_case "extended pool bit-identity" `Quick
      test_extended_pool_bit_identity;
    Alcotest.test_case "hdiff structure" `Quick test_hdiff_structure;
    Alcotest.test_case "hdiff halo plan" `Quick test_hdiff_halo_plan;
    Alcotest.test_case "issue codes YS701-706" `Quick test_issue_codes;
    Alcotest.test_case "parse errors located (YS700)" `Quick
      test_parse_errors_located;
    Alcotest.test_case "fuse substitution" `Quick test_fuse_substitution;
    Alcotest.test_case "partitions and halo invariance" `Quick
      test_partitions_and_invariance;
    Alcotest.test_case "text round-trip and shipped example" `Quick
      test_text_round_trip;
    Alcotest.test_case "grids gate YS704/YS409" `Quick test_grids_gate_ys704;
    Alcotest.test_case "YS7xx in the rules table" `Quick
      test_rules_table_has_ys7xx;
    Alcotest.test_case "executor stats" `Quick test_executor_stats;
    Alcotest.test_case "executor gates" `Quick test_executor_gates;
    Alcotest.test_case "executor backends and pool" `Quick
      test_executor_backends_and_pool;
    qt fusion_bit_identity;
    Alcotest.test_case "rank_partitions exact (2-stage)" `Quick
      test_rank_partitions_exact;
    Alcotest.test_case "rank_partitions hdiff" `Quick
      test_rank_partitions_hdiff ]
