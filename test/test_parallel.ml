(* Domain-parallel execution: pool semantics, sweep partitioning,
   tuner pool-invariance, ECM memoization and the Welford statistics. *)
module Pool = Yasksite_util.Pool
module Prng = Yasksite_util.Prng
module Stats = Yasksite_util.Stats
module Machine = Yasksite_arch.Machine
module Grid = Yasksite_grid.Grid
module Suite = Yasksite_stencil.Suite
module Analysis = Yasksite_stencil.Analysis
module Config = Yasksite_ecm.Config
module Cache = Yasksite_ecm.Cache
module Model = Yasksite_ecm.Model
module Hierarchy = Yasksite_cachesim.Hierarchy
module Sweep = Yasksite_engine.Sweep
module Tuner = Yasksite_tuner.Tuner
module Plan = Yasksite_faults.Plan
module Policy = Yasksite_faults.Policy
module Clock = Yasksite_util.Clock

let machine = Machine.test_chip

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Pool *)

let prop_parallel_map =
  QCheck.Test.make ~name:"parallel_map equals List.map" ~count:50
    QCheck.(pair (int_range 1 6) (list small_int))
    (fun (domains, l) ->
      Pool.with_pool ~domains (fun pool ->
          let f x = (x * x) - (3 * x) + 7 in
          Pool.parallel_map pool l ~f = List.map f l))

let prop_parallel_for_covers =
  QCheck.Test.make ~name:"parallel_for covers each index once" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 0 500))
    (fun (domains, n) ->
      Pool.with_pool ~domains (fun pool ->
          let marks = Array.make (max n 1) 0 in
          Pool.parallel_for pool ~n (fun i -> marks.(i) <- marks.(i) + 1);
          Array.for_all (fun c -> c = 1) (Array.sub marks 0 n)))

let test_pool_exception () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  (match
     Pool.parallel_for pool ~n:64 (fun i ->
         if i = 17 then failwith "boom17")
   with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "first failure" "boom17" m);
  (* The pool survives the exception. *)
  let r = Pool.parallel_map pool [ 1; 2; 3 ] ~f:succ in
  Alcotest.(check (list int)) "pool usable after raise" [ 2; 3; 4 ] r

let test_nested_parallel () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let sums =
    Pool.parallel_map pool [ 10; 20; 30; 40 ] ~f:(fun n ->
        (* A nested parallel call from inside a job must not deadlock. *)
        let acc = Atomic.make 0 in
        Pool.parallel_for pool ~n (fun i -> ignore (Atomic.fetch_and_add acc i));
        Atomic.get acc)
  in
  Alcotest.(check (list int))
    "nested sums" [ 45; 190; 435; 780 ] sums

let test_nested_from_caller () =
  (* The submitting domain runs its own share of every job; nested
     parallel sections it reaches there must run inline exactly like on
     a worker. Repeating a small nested map many times makes the caller
     claim nested-section elements on essentially every iteration, so a
     regression (the caller re-entering the pool mid-job) corrupts the
     job state and fails fast. *)
  Pool.with_pool ~domains:2 @@ fun pool ->
  let l = List.init 8 Fun.id in
  let inner = List.init 12 Fun.id in
  let expect = List.map (fun x -> x * x) inner in
  for _ = 1 to 50 do
    let ok =
      Pool.parallel_map ~chunk:1 pool l ~f:(fun _ ->
          Pool.parallel_map pool inner ~f:(fun x -> x * x) = expect)
    in
    Alcotest.(check bool) "nested maps correct" true (List.for_all Fun.id ok)
  done

let test_concurrent_submitters () =
  (* Two distinct domains issuing jobs on the same pool: submissions are
     serialised, so both see correct results. *)
  Pool.with_pool ~domains:3 @@ fun pool ->
  let l = List.init 200 Fun.id in
  let expect = List.map succ l in
  let rounds = 20 in
  let submit () = List.init rounds (fun _ -> Pool.parallel_map pool l ~f:succ) in
  let other = Domain.spawn submit in
  let mine = submit () in
  let theirs = Domain.join other in
  Alcotest.(check bool) "caller's jobs correct" true
    (List.for_all (( = ) expect) mine);
  Alcotest.(check bool) "second submitter's jobs correct" true
    (List.for_all (( = ) expect) theirs)

(* ------------------------------------------------------------------ *)
(* Sweep partitioning *)

let sweep_setup config =
  let spec = Suite.resolve_defaults Suite.heat_2d_5pt in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = [| 48; 48 |] in
  let make () =
    let rng = Prng.create ~seed:11 in
    let space = Grid.fresh_space () in
    let fresh () =
      let g = Grid.create ~space ~halo ~dims () in
      Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
      Grid.halo_dirichlet g 0.0;
      g
    in
    let inputs = Array.init spec.Yasksite_stencil.Spec.n_fields (fun _ -> fresh ()) in
    (inputs, fresh ())
  in
  (spec, config, make)

let test_parallel_sweep_untraced () =
  let spec, config, make = sweep_setup (Config.v ~block:[| 0; 8 |] ()) in
  let inputs_s, out_s = make () in
  let stats_s = Sweep.run ~config spec ~inputs:inputs_s ~output:out_s in
  Pool.with_pool ~domains:4 @@ fun pool ->
  let inputs_p, out_p = make () in
  let stats_p = Sweep.run ~pool ~config spec ~inputs:inputs_p ~output:out_p in
  Alcotest.(check (float 0.0)) "outputs bit-identical" 0.0
    (Grid.max_abs_diff out_s out_p);
  Alcotest.(check int) "points" stats_s.Sweep.points stats_p.Sweep.points;
  Alcotest.(check int) "vec units" stats_s.Sweep.vec_units
    stats_p.Sweep.vec_units;
  Alcotest.(check int) "rows" stats_s.Sweep.rows stats_p.Sweep.rows;
  Alcotest.(check int) "blocks" stats_s.Sweep.blocks stats_p.Sweep.blocks

let test_parallel_sweep_traced () =
  let spec, config, make = sweep_setup (Config.v ~block:[| 0; 8 |] ()) in
  let inputs_s, out_s = make () in
  let trace_s = Hierarchy.create ~active_cores:1 machine in
  let stats_s =
    Sweep.run ~trace:trace_s ~config spec ~inputs:inputs_s ~output:out_s
  in
  let run_traced () =
    Pool.with_pool ~domains:4 @@ fun pool ->
    let inputs_p, out_p = make () in
    let trace = Hierarchy.create ~active_cores:1 machine in
    let stats =
      Sweep.run ~pool ~trace ~config spec ~inputs:inputs_p ~output:out_p
    in
    (out_p, stats, (Hierarchy.counters trace).Hierarchy.accesses)
  in
  let out_p, stats_p, accesses_p = run_traced () in
  let _, _, accesses_p2 = run_traced () in
  Alcotest.(check (float 0.0)) "traced outputs bit-identical" 0.0
    (Grid.max_abs_diff out_s out_p);
  Alcotest.(check int) "stats equal sequential" stats_s.Sweep.points
    stats_p.Sweep.points;
  Alcotest.(check int) "vec units equal sequential" stats_s.Sweep.vec_units
    stats_p.Sweep.vec_units;
  (* Merged event totals are conserved and deterministic per width. *)
  Alcotest.(check int) "every access merged"
    ((Hierarchy.counters trace_s).Hierarchy.accesses) accesses_p;
  Alcotest.(check int) "merged counts deterministic" accesses_p accesses_p2

let test_parallel_sweep_sanitized () =
  (* The shadow-memory sanitizer observes every read and write of the
     partitioned sweep without perturbing it: outputs stay bit-identical
     to the sequential run and a legal schedule records zero traps. *)
  let module Sanitizer = Yasksite_engine.Sanitizer in
  let spec, config, make = sweep_setup (Config.v ~block:[| 0; 8 |] ()) in
  let inputs_s, out_s = make () in
  let _ = Sweep.run ~config spec ~inputs:inputs_s ~output:out_s in
  Pool.with_pool ~domains:4 @@ fun pool ->
  let inputs_p, out_p = make () in
  let san = Sanitizer.create ~fail_fast:false () in
  let _ =
    Sweep.run ~pool ~sanitize:san ~config spec ~inputs:inputs_p ~output:out_p
  in
  Alcotest.(check (float 0.0)) "sanitized outputs bit-identical" 0.0
    (Grid.max_abs_diff out_s out_p);
  Alcotest.(check int) "zero traps" 0 (Sanitizer.trap_count san)

let test_unblocked_runs_sequentially () =
  (* One block column: the pool must not change anything at all. *)
  let spec, config, make = sweep_setup (Config.v ()) in
  let inputs_s, out_s = make () in
  let trace_s = Hierarchy.create ~active_cores:1 machine in
  let _ = Sweep.run ~trace:trace_s ~config spec ~inputs:inputs_s ~output:out_s in
  Pool.with_pool ~domains:4 @@ fun pool ->
  let inputs_p, out_p = make () in
  let trace_p = Hierarchy.create ~active_cores:1 machine in
  let _ =
    Sweep.run ~pool ~trace:trace_p ~config spec ~inputs:inputs_p ~output:out_p
  in
  Alcotest.(check (float 0.0)) "outputs" 0.0 (Grid.max_abs_diff out_s out_p);
  Alcotest.(check int) "identical trace"
    ((Hierarchy.counters trace_s).Hierarchy.accesses)
    ((Hierarchy.counters trace_p).Hierarchy.accesses)

(* ------------------------------------------------------------------ *)
(* Tuner pool-invariance *)

let spec2d = Suite.resolve_defaults Suite.heat_2d_5pt

let tuner_results ?(sanitize = false) ~domains () =
  let faults = Plan.v ~seed:97 ~fail_rate:0.2 ~noise_sigma:0.05 () in
  let policy = Policy.v ~max_attempts:3 ~repeats:2 () in
  let dims = [| 48; 48 |] in
  if domains = 1 then
    Tuner.tune_empirical ~faults ~policy ~sanitize machine spec2d ~dims
      ~threads:2
  else
    Pool.with_pool ~domains (fun pool ->
        Tuner.tune_empirical ~faults ~policy ~sanitize ~pool machine spec2d
          ~dims ~threads:2)

let test_tuner_pool_invariant () =
  let seq = tuner_results ~domains:1 () in
  let par = tuner_results ~domains:4 () in
  Alcotest.(check bool) "same chosen config" true
    (Config.equal seq.Tuner.chosen par.Tuner.chosen);
  Alcotest.(check (float 0.0)) "measured LUP/s bit-equal"
    seq.Tuner.measured_lups par.Tuner.measured_lups;
  Alcotest.(check int) "same attempts" seq.Tuner.attempts par.Tuner.attempts;
  Alcotest.(check int) "same kernel runs" seq.Tuner.kernel_runs
    par.Tuner.kernel_runs;
  Alcotest.(check int) "same skip list"
    (List.length seq.Tuner.skipped)
    (List.length par.Tuner.skipped);
  List.iter2
    (fun (a : Tuner.skipped) (b : Tuner.skipped) ->
      Alcotest.(check bool) "same skipped config" true
        (Config.equal a.Tuner.s_config b.Tuner.s_config);
      Alcotest.(check int) "same skip attempts" a.Tuner.s_attempts
        b.Tuner.s_attempts)
    seq.Tuner.skipped par.Tuner.skipped

let test_tuner_pool_invariant_sanitized () =
  (* Pool-invariance must survive the sanitizer: shadow bookkeeping is
     per-measurement state, so sanitized tuning picks the same config
     at the same measured rate as unsanitized tuning, pool or not. *)
  let plain = tuner_results ~domains:1 () in
  let seq = tuner_results ~sanitize:true ~domains:1 () in
  let par = tuner_results ~sanitize:true ~domains:4 () in
  Alcotest.(check bool) "same chosen config" true
    (Config.equal seq.Tuner.chosen par.Tuner.chosen);
  Alcotest.(check (float 0.0)) "measured LUP/s bit-equal"
    seq.Tuner.measured_lups par.Tuner.measured_lups;
  Alcotest.(check int) "same attempts" seq.Tuner.attempts par.Tuner.attempts;
  Alcotest.(check bool) "sanitizer does not change the choice" true
    (Config.equal plain.Tuner.chosen seq.Tuner.chosen)

let prop_tuner_pool_invariant_seeds =
  QCheck.Test.make ~name:"tune_empirical pool-invariant across seeds" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let faults = Plan.v ~seed ~fail_rate:0.3 ~noise_sigma:0.1 () in
      let policy = Policy.v ~max_attempts:2 ~repeats:1 () in
      let space =
        [ Config.v ~threads:2 ();
          Config.v ~threads:2 ~block:[| 0; 8 |] ();
          Config.v ~threads:2 ~block:[| 0; 16 |] ();
          Config.v ~threads:2 ~fold:[| 1; 4 |] () ]
      in
      let dims = [| 32; 32 |] in
      let seq =
        Tuner.tune_empirical ~space ~faults ~policy machine spec2d ~dims
          ~threads:2
      in
      let par =
        Pool.with_pool ~domains:3 (fun pool ->
            Tuner.tune_empirical ~space ~faults ~policy ~pool machine spec2d
              ~dims ~threads:2)
      in
      Config.equal seq.Tuner.chosen par.Tuner.chosen
      && seq.Tuner.measured_lups = par.Tuner.measured_lups
      && seq.Tuner.attempts = par.Tuner.attempts
      && List.length seq.Tuner.skipped = List.length par.Tuner.skipped)

let test_parallel_pass_budget () =
  (* Under a pool the pass budget is enforced at candidate granularity:
     candidates whose start time lies past the deadline are never
     measured and are reported as budget skips. A counting clock makes
     this deterministic in outline — the first candidate always starts
     (its check is among the first reads) and the last never does (the
     8 start checks alone outrun a 5-tick budget). *)
  let space =
    List.init 8 (fun i -> Config.v ~threads:2 ~block:[| 0; 4 * (i + 1) |] ())
  in
  let dims = [| 32; 32 |] in
  let ticks = Atomic.make 0 in
  let clock =
    Clock.of_fun (fun () -> float_of_int (Atomic.fetch_and_add ticks 1))
  in
  let r =
    Pool.with_pool ~domains:2 (fun pool ->
        Tuner.tune_empirical ~space
          ~policy:(Policy.v ~pass_budget_s:5.0 ())
          ~clock ~pool machine spec2d ~dims ~threads:2)
  in
  Alcotest.(check bool) "some candidate ran" true (r.Tuner.kernel_runs >= 1);
  Alcotest.(check bool) "sweep was cut short" true
    (r.Tuner.kernel_runs < List.length space);
  Alcotest.(check bool) "budget skips reported" true
    (List.exists
       (fun s -> s.Tuner.s_reason = "pass budget exhausted")
       r.Tuner.skipped);
  Alcotest.(check bool) "not degraded by truncation" false r.Tuner.degraded

(* ------------------------------------------------------------------ *)
(* Prng indexed splits *)

let prop_create_indexed =
  QCheck.Test.make ~name:"create_indexed equals sequential splits" ~count:100
    QCheck.(pair small_int (int_range 0 20))
    (fun (seed, index) ->
      let root = Prng.create ~seed in
      let nth = ref (Prng.split root) in
      for _ = 1 to index do
        nth := Prng.split root
      done;
      let direct = Prng.create_indexed ~seed ~index in
      Prng.int64 !nth = Prng.int64 direct)

(* ------------------------------------------------------------------ *)
(* ECM memo cache *)

let info2d = Analysis.of_spec spec2d

let test_cache_hit () =
  let cache = Cache.create () in
  let dims = [| 48; 48 |] in
  let config = Config.v ~threads:2 () in
  let p1 = Cache.predict cache machine info2d ~dims ~config in
  let p2 = Cache.predict cache machine info2d ~dims ~config in
  let direct = Model.predict machine info2d ~dims ~config in
  Alcotest.(check (float 0.0)) "cached equals direct" direct.Model.t_ecm
    p1.Model.t_ecm;
  Alcotest.(check (float 0.0)) "hit equals miss" p1.Model.t_ecm p2.Model.t_ecm;
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Cache.hit_rate cache)

let test_cache_distinguishes_configs () =
  let cache = Cache.create () in
  let dims = [| 48; 48 |] in
  let _ = Cache.predict cache machine info2d ~dims ~config:(Config.v ()) in
  let _ =
    Cache.predict cache machine info2d ~dims ~config:(Config.v ~threads:2 ())
  in
  let _ =
    Cache.predict cache machine info2d ~dims:[| 32; 32 |]
      ~config:(Config.v ())
  in
  let s = Cache.stats cache in
  Alcotest.(check int) "three distinct keys" 3 s.Cache.misses;
  Alcotest.(check int) "no spurious hits" 0 s.Cache.hits

let test_cache_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let config n = Config.v ~block:[| 0; n |] () in
  let dims = [| 64; 64 |] in
  List.iter
    (fun n -> ignore (Cache.predict cache machine info2d ~dims ~config:(config n)))
    [ 8; 16; 32 ];
  let s = Cache.stats cache in
  Alcotest.(check int) "bounded" 2 s.Cache.entries;
  (* The least-recently-used entry (block 8) was evicted. *)
  ignore (Cache.predict cache machine info2d ~dims ~config:(config 8));
  Alcotest.(check int) "evicted entry re-misses" 4 (Cache.stats cache).Cache.misses

let test_cache_shared_across_domains () =
  let cache = Cache.create () in
  let dims = [| 48; 48 |] in
  Pool.with_pool ~domains:4 @@ fun pool ->
  let configs = List.init 8 (fun i -> Config.v ~block:[| 0; 4 * (i + 1) |] ()) in
  let round () =
    Pool.parallel_map pool configs ~f:(fun config ->
        (Cache.predict cache machine info2d ~dims ~config).Model.t_ecm)
  in
  let r1 = round () in
  let r2 = round () in
  Alcotest.(check (list (float 0.0))) "parallel lookups agree" r1 r2;
  let s = Cache.stats cache in
  Alcotest.(check int) "all entries resident" 8 s.Cache.entries;
  Alcotest.(check bool) "second round hits" true (s.Cache.hits >= 8)

(* ------------------------------------------------------------------ *)
(* Welford statistics *)

let naive_mean_variance a =
  let n = Array.length a in
  let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let var =
    if n < 2 then 0.0
    else
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
      /. float_of_int (n - 1)
  in
  (mean, var)

let prop_welford =
  QCheck.Test.make ~name:"welford matches two-pass formula" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
    (fun l ->
      let a = Array.of_list l in
      let nm, nv = naive_mean_variance a in
      let wm, wv = Stats.mean_variance a in
      let close x y = abs_float (x -. y) <= 1e-6 *. (1.0 +. abs_float y) in
      close wm nm && close wv nv)

let test_welford_incremental () =
  let w = Stats.welford_create () in
  Alcotest.check_raises "empty mean raises"
    (Invalid_argument "Stats.welford_mean: empty accumulator") (fun () ->
      ignore (Stats.welford_mean w));
  List.iter (Stats.welford_add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.welford_count w);
  Alcotest.(check (float 1e-12)) "mean" 5.0 (Stats.welford_mean w);
  Alcotest.(check (float 1e-12)) "sample variance" (32.0 /. 7.0)
    (Stats.welford_variance w);
  Alcotest.(check (float 1e-12)) "stddev"
    (sqrt (32.0 /. 7.0))
    (Stats.welford_stddev w)

let suite =
  [ qt prop_parallel_map;
    qt prop_parallel_for_covers;
    Alcotest.test_case "pool exception safety" `Quick test_pool_exception;
    Alcotest.test_case "nested parallel runs inline" `Quick
      test_nested_parallel;
    Alcotest.test_case "nested parallel from the caller domain" `Quick
      test_nested_from_caller;
    Alcotest.test_case "concurrent submitters serialised" `Quick
      test_concurrent_submitters;
    Alcotest.test_case "parallel sweep honours pass budget" `Quick
      test_parallel_pass_budget;
    Alcotest.test_case "parallel sweep untraced" `Quick
      test_parallel_sweep_untraced;
    Alcotest.test_case "parallel sweep traced" `Quick
      test_parallel_sweep_traced;
    Alcotest.test_case "parallel sweep sanitized" `Quick
      test_parallel_sweep_sanitized;
    Alcotest.test_case "unblocked sweep ignores pool" `Quick
      test_unblocked_runs_sequentially;
    Alcotest.test_case "tune_empirical pool-invariant" `Quick
      test_tuner_pool_invariant;
    Alcotest.test_case "tune_empirical pool-invariant under sanitizer" `Quick
      test_tuner_pool_invariant_sanitized;
    qt prop_tuner_pool_invariant_seeds;
    qt prop_create_indexed;
    Alcotest.test_case "cache hit" `Quick test_cache_hit;
    Alcotest.test_case "cache keying" `Quick test_cache_distinguishes_configs;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache shared across domains" `Quick
      test_cache_shared_across_domains;
    qt prop_welford;
    Alcotest.test_case "welford incremental" `Quick test_welford_incremental ]
