open Yasksite_faults
module Prng = Yasksite_util.Prng

let check_float = Alcotest.(check (float 0.0))

(* ------------------------------------------------------------------ *)
(* Plan                                                               *)

let test_plan_validation () =
  Alcotest.check_raises "fail_rate range"
    (Invalid_argument "Faults.Plan.v: fail_rate must be in [0, 1]") (fun () ->
      ignore (Plan.v ~fail_rate:1.5 ()));
  Alcotest.check_raises "outlier_factor"
    (Invalid_argument "Faults.Plan.v: outlier_factor must be >= 1") (fun () ->
      ignore (Plan.v ~outlier_factor:0.5 ()));
  Alcotest.check_raises "noise_sigma"
    (Invalid_argument "Faults.Plan.v: noise_sigma must be >= 0") (fun () ->
      ignore (Plan.v ~noise_sigma:(-0.1) ()));
  Alcotest.(check bool) "none is benign" true (Plan.is_benign Plan.none);
  Alcotest.(check bool) "fail plan is not" false
    (Plan.is_benign (Plan.v ~fail_rate:0.1 ()));
  Alcotest.(check string) "benign describe" "no faults"
    (Plan.describe Plan.none)

let test_benign_passthrough () =
  (* A benign injector is a pure pass-through: always [Run 1.0] and it
     never consumes the underlying RNG stream. *)
  let rng = Prng.create ~seed:5 in
  let inj = Plan.injector ~rng Plan.none in
  for _ = 1 to 20 do
    match Plan.draw inj with
    | Plan.Run f -> check_float "clean factor" 1.0 f
    | _ -> Alcotest.fail "benign plan produced a fault"
  done;
  Alcotest.(check int) "draws counted" 20 (Plan.draws inj);
  Alcotest.(check int) "no faults" 0 (Plan.faults inj);
  (* The RNG was left untouched: it still matches a fresh seed-5 stream. *)
  Alcotest.(check int64) "rng untouched"
    (Prng.int64 (Prng.create ~seed:5))
    (Prng.int64 rng)

let test_draw_determinism () =
  let plan =
    Plan.v ~seed:7 ~fail_rate:0.2 ~timeout_rate:0.1 ~timeout_s:2.0
      ~noise_sigma:0.1 ~outlier_rate:0.05 ()
  in
  let a = Plan.injector plan and b = Plan.injector plan in
  for _ = 1 to 200 do
    let oa = Plan.draw a and ob = Plan.draw b in
    let same =
      match (oa, ob) with
      | Plan.Run x, Plan.Run y -> x = y
      | Plan.Transient_failure, Plan.Transient_failure -> true
      | Plan.Timeout x, Plan.Timeout y -> x = y
      | _ -> false
    in
    Alcotest.(check bool) "identical streams" true same
  done;
  Alcotest.(check int) "fault counters agree" (Plan.faults a) (Plan.faults b);
  Alcotest.(check bool) "some faults fired" true (Plan.faults a > 0)

let test_draw_rates () =
  (* With fail_rate 1 every draw is a transient failure. *)
  let inj = Plan.injector (Plan.v ~fail_rate:1.0 ()) in
  for _ = 1 to 10 do
    match Plan.draw inj with
    | Plan.Transient_failure -> ()
    | _ -> Alcotest.fail "expected Transient_failure"
  done;
  (* With timeout_rate 1 every draw hangs and charges timeout_s. *)
  let inj = Plan.injector (Plan.v ~timeout_rate:1.0 ~timeout_s:3.5 ()) in
  (match Plan.draw inj with
  | Plan.Timeout t -> check_float "timeout charge" 3.5 t
  | _ -> Alcotest.fail "expected Timeout");
  (* Outliers multiply by exactly the configured factor (no noise). *)
  let inj =
    Plan.injector (Plan.v ~outlier_rate:1.0 ~outlier_factor:4.0 ())
  in
  match Plan.draw inj with
  | Plan.Run f -> check_float "spike factor" 4.0 f
  | _ -> Alcotest.fail "expected Run"

(* ------------------------------------------------------------------ *)
(* Policy                                                             *)

let test_policy_validation () =
  Alcotest.check_raises "attempts"
    (Invalid_argument "Faults.Policy.v: max_attempts must be >= 1") (fun () ->
      ignore (Policy.v ~max_attempts:0 ()));
  Alcotest.check_raises "backoff order"
    (Invalid_argument "Faults.Policy.v: max_backoff_s must be >= base_backoff_s")
    (fun () -> ignore (Policy.v ~base_backoff_s:2.0 ~max_backoff_s:1.0 ()));
  Alcotest.check_raises "degrade range"
    (Invalid_argument "Faults.Policy.v: degrade_threshold must be in [0, 1]")
    (fun () -> ignore (Policy.v ~degrade_threshold:1.5 ()));
  Alcotest.check_raises "repeats"
    (Invalid_argument "Faults.Policy.v: repeats must be >= 1") (fun () ->
      ignore (Policy.v ~repeats:0 ()))

let test_backoff_bounds () =
  let p = Policy.v ~base_backoff_s:0.1 ~max_backoff_s:1.0 () in
  let rng = Prng.create ~seed:3 in
  let prev = ref p.Policy.base_backoff_s in
  for _ = 1 to 100 do
    let d = Policy.backoff p ~rng ~prev:!prev in
    Alcotest.(check bool) "at least base" true (d >= 0.1);
    Alcotest.(check bool) "capped" true (d <= 1.0);
    prev := d
  done

let test_robust_combine () =
  let p = Policy.default in
  check_float "singleton passes through" 7.0 (Policy.robust_combine p [| 7.0 |]);
  check_float "constant samples" 5.0
    (Policy.robust_combine p [| 5.0; 5.0; 5.0 |]);
  (* The contention spike is rejected; the median of the clean cluster
     survives. *)
  let combined =
    Policy.robust_combine p [| 100.0; 101.0; 99.0; 100.5; 30.0 |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "outlier rejected (got %.1f)" combined)
    true
    (combined >= 99.0 && combined <= 101.0);
  Alcotest.check_raises "empty"
    (Invalid_argument "Faults.Policy.robust_combine: no samples") (fun () ->
      ignore (Policy.robust_combine p [||]))

(* ------------------------------------------------------------------ *)
(* Retry                                                              *)

(* A deterministic harness: virtual time only moves when [sleep] charges
   a backoff, exactly like the tuner's accounting. *)
let harness () =
  let t = ref 0.0 in
  let slept = ref [] in
  let now () = !t in
  let sleep d =
    slept := d :: !slept;
    t := !t +. d
  in
  (now, sleep, slept)

let test_retry_success_after_failures () =
  let now, sleep, slept = harness () in
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls < 3 then Error "flaky" else Ok !calls
  in
  let p = Policy.v ~max_attempts:5 () in
  (match Retry.run ~policy:p ~rng:(Prng.create ~seed:1) ~now ~sleep f with
  | Retry.Success (v, attempts) ->
      Alcotest.(check int) "value" 3 v;
      Alcotest.(check int) "attempts" 3 attempts
  | Retry.Gave_up _ -> Alcotest.fail "should have succeeded");
  Alcotest.(check int) "two backoffs charged" 2 (List.length !slept)

let test_retry_attempt_cap () =
  let now, sleep, _ = harness () in
  let calls = ref 0 in
  let f () =
    incr calls;
    Error "always fails"
  in
  let p = Policy.v ~max_attempts:4 () in
  (match Retry.run ~policy:p ~rng:(Prng.create ~seed:1) ~now ~sleep f with
  | Retry.Gave_up { reason; attempts } ->
      Alcotest.(check string) "last error" "always fails" reason;
      Alcotest.(check int) "attempts reported" 4 attempts
  | Retry.Success _ -> Alcotest.fail "cannot succeed");
  Alcotest.(check int) "f called exactly max_attempts times" 4 !calls

let test_retry_deadline () =
  let now, sleep, _ = harness () in
  let p = Policy.v ~max_attempts:10 ~base_backoff_s:1.0 ~max_backoff_s:1.0 () in
  let calls = ref 0 in
  let f () =
    incr calls;
    Error "fail"
  in
  (* Deadline at t=2.5 with 1 s backoffs: attempts at t=0, 1, 2, then the
     next check sees t=3 > 2.5 and gives up. *)
  (match
     Retry.run ~policy:p ~rng:(Prng.create ~seed:1) ~now ~sleep ~deadline:2.5 f
   with
  | Retry.Gave_up { reason; attempts } ->
      Alcotest.(check string) "budget reason" "pass budget exhausted" reason;
      Alcotest.(check int) "attempts before deadline" 3 attempts
  | Retry.Success _ -> Alcotest.fail "cannot succeed");
  Alcotest.(check int) "stopped calling f" 3 !calls

let test_retry_candidate_budget () =
  let now, sleep, _ = harness () in
  let p =
    Policy.v ~max_attempts:10 ~base_backoff_s:1.0 ~max_backoff_s:1.0
      ~candidate_budget_s:1.5 ()
  in
  let f () = Error "fail" in
  match Retry.run ~policy:p ~rng:(Prng.create ~seed:1) ~now ~sleep f with
  | Retry.Gave_up { reason; _ } ->
      Alcotest.(check string) "candidate budget reason"
        "candidate budget exhausted" reason
  | Retry.Success _ -> Alcotest.fail "cannot succeed"

let test_retry_exhausted_deadline_zero_attempts () =
  let now, sleep, _ = harness () in
  let p = Policy.default in
  match
    Retry.run ~policy:p ~rng:(Prng.create ~seed:1) ~now ~sleep ~deadline:(-1.0)
      (fun () -> Ok ())
  with
  | Retry.Gave_up { attempts; _ } ->
      Alcotest.(check int) "zero attempts" 0 attempts
  | Retry.Success _ -> Alcotest.fail "deadline already passed"

let retry_never_exceeds_caps =
  QCheck.Test.make ~name:"retry respects attempt and backoff caps" ~count:200
    QCheck.(triple small_int (int_range 1 8) (int_range 0 10))
    (fun (seed, max_attempts, fail_count) ->
      let now, sleep, slept = harness () in
      let p = Policy.v ~max_attempts ~base_backoff_s:0.01 ~max_backoff_s:0.5 () in
      let calls = ref 0 in
      let f () =
        incr calls;
        if !calls <= fail_count then Error "injected" else Ok ()
      in
      let _ = Retry.run ~policy:p ~rng:(Prng.create ~seed) ~now ~sleep f in
      !calls <= max_attempts
      && List.for_all (fun d -> d >= 0.0 && d <= 0.5) !slept
      && List.length !slept <= max_attempts - 1)

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                         *)

let sample_entries =
  [ (0, Checkpoint.Done { lups = 1.23456789e9; runs = 3; attempts = 4 });
    (1, Checkpoint.Skipped { reason = "transient failure"; attempts = 3 });
    (2, Checkpoint.Done { lups = 0x1.fffp10; runs = 1; attempts = 1 }) ]

let entries_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (i, x) (j, y) ->
         i = j
         &&
         match (x, y) with
         | ( Checkpoint.Done { lups = l1; runs = r1; attempts = a1 },
             Checkpoint.Done { lups = l2; runs = r2; attempts = a2 } ) ->
             l1 = l2 && r1 = r2 && a1 = a2
         | ( Checkpoint.Skipped { reason = s1; attempts = a1 },
             Checkpoint.Skipped { reason = s2; attempts = a2 } ) ->
             s1 = s2 && a1 = a2
         | _ -> false)
       a b

let test_checkpoint_roundtrip () =
  let key = "deadbeef" in
  let s = Checkpoint.render ~key sample_entries in
  Alcotest.(check bool) "round trip exact" true
    (entries_equal sample_entries (Checkpoint.parse ~key s));
  Alcotest.(check bool) "key mismatch loads empty" true
    (Checkpoint.parse ~key:"otherkey" s = []);
  (* Malformed lines are dropped, surviving lines still parse. *)
  let mangled = s ^ "garbage line\ndone not-a-number\n" in
  Alcotest.(check bool) "lenient parse" true
    (entries_equal sample_entries (Checkpoint.parse ~key mangled))

let test_checkpoint_file () =
  let path = Filename.temp_file "yasksite" ".ckpt" in
  let key = "cafe01" in
  Checkpoint.save ~path ~key sample_entries;
  Alcotest.(check bool) "load back" true
    (entries_equal sample_entries (Checkpoint.load ~path ~key));
  Alcotest.(check bool) "wrong key empty" true
    (Checkpoint.load ~path ~key:"wrong" = []);
  Sys.remove path;
  Alcotest.(check bool) "missing file empty" true
    (Checkpoint.load ~path ~key = [])

let test_checkpoint_save_atomic_replace () =
  (* Regression: save must commit via a fresh fsynced temp file renamed
     over the destination — a stale temp from a crashed writer must not
     survive or leak into the checkpoint, and a shorter checkpoint must
     fully replace a longer one (no tail of the old file showing
     through). *)
  let path = Filename.temp_file "yasksite" ".ckpt" in
  let tmp = path ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; tmp ])
  @@ fun () ->
  let key = "cafe02" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc "stale garbage from a crashed writer");
  Checkpoint.save ~path ~key sample_entries;
  Alcotest.(check bool) "saved over stale temp" true
    (entries_equal sample_entries (Checkpoint.load ~path ~key));
  Alcotest.(check bool) "no temp file left behind" false
    (Sys.file_exists tmp);
  let shorter = [ List.hd sample_entries ] in
  Checkpoint.save ~path ~key shorter;
  Alcotest.(check bool) "shorter checkpoint fully replaces" true
    (entries_equal shorter (Checkpoint.load ~path ~key))

let qt = QCheck_alcotest.to_alcotest

let suite =
  [ Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "benign passthrough" `Quick test_benign_passthrough;
    Alcotest.test_case "draw determinism" `Quick test_draw_determinism;
    Alcotest.test_case "draw rates" `Quick test_draw_rates;
    Alcotest.test_case "policy validation" `Quick test_policy_validation;
    Alcotest.test_case "backoff bounds" `Quick test_backoff_bounds;
    Alcotest.test_case "robust combine" `Quick test_robust_combine;
    Alcotest.test_case "retry success after failures" `Quick
      test_retry_success_after_failures;
    Alcotest.test_case "retry attempt cap" `Quick test_retry_attempt_cap;
    Alcotest.test_case "retry deadline" `Quick test_retry_deadline;
    Alcotest.test_case "retry candidate budget" `Quick
      test_retry_candidate_budget;
    Alcotest.test_case "retry spent deadline" `Quick
      test_retry_exhausted_deadline_zero_attempts;
    qt retry_never_exceeds_caps;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint file" `Quick test_checkpoint_file ]
