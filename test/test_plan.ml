(* The kernel-plan IR and the plan execution backend.

   The contract under test: lowering a resolved stencil to a flat plan
   and sweeping it with the plan driver is *bit-identical* to the legacy
   closure-tree backend, across ranks, layouts, blocking, wavefronts and
   both body shapes (detected linear combination and postfix fallback).
   Plus the satellite coverage: the [Compile.check_inputs] /
   [Lower.check] error paths on both backends, and the fingerprint
   contract that keys the ECM cache and tuner checkpoints. *)

module Grid = Yasksite_grid.Grid
module Machine = Yasksite_arch.Machine
module Hierarchy = Yasksite_cachesim.Hierarchy
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Suite = Yasksite_stencil.Suite
module Gen = Yasksite_stencil.Gen
module Dsl = Yasksite_stencil.Dsl
module Compile = Yasksite_stencil.Compile
module Plan = Yasksite_stencil.Plan
module Lower = Yasksite_stencil.Lower
module Config = Yasksite_ecm.Config
module Sweep = Yasksite_engine.Sweep
module Wavefront = Yasksite_engine.Wavefront
module Sanitizer = Yasksite_engine.Sanitizer
module Prng = Yasksite_util.Prng

let qt = QCheck_alcotest.to_alcotest

let make_grid ?(layout = Grid.Linear) ~halo ~dims seed =
  let rng = Prng.create ~seed in
  let g = Grid.create ~halo ~layout ~dims () in
  Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
  Grid.halo_dirichlet g 0.25;
  g

(* Dividing by 1.0 is exact for every float and defeats the
   linear-combination detector, forcing the postfix-program body. *)
let force_program spec =
  Spec.v ~name:spec.Spec.name ~rank:spec.Spec.rank
    ~n_fields:spec.Spec.n_fields
    Dsl.(spec.Spec.expr /: c 1.0)

(* One sweep of a random stencil, same grids and config, both backends:
   outputs must be bit-identical and the stats equal. Exercised over
   ranks 1..3, both body shapes, folded layouts and spatial blocking. *)
let sweep_backends_agree ~seed =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:3 in
  let spec = Gen.spec rng ~rank () in
  let spec = if Prng.int rng ~bound:2 = 0 then force_program spec else spec in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:10) in
  let layout =
    if Prng.int rng ~bound:2 = 0 then Grid.Linear
    else begin
      let f = Array.make rank 1 in
      f.(rank - 1) <- 2;
      if rank > 1 then f.(rank - 2) <- 2;
      Grid.Folded f
    end
  in
  let cfg =
    let fold = match layout with Grid.Folded f -> Some f | _ -> None in
    let block =
      if Prng.int rng ~bound:2 = 0 then begin
        let b = Array.map (fun d -> 1 + Prng.int rng ~bound:d) dims in
        b.(0) <- 0;
        Some b
      end
      else None
    in
    Config.v ?fold ?block ()
  in
  let run backend =
    let a = make_grid ~layout ~halo ~dims (seed + 1000) in
    let o = Grid.create ~halo ~layout ~dims () in
    let s = Sweep.run ~backend ~config:cfg spec ~inputs:[| a |] ~output:o in
    (o, s)
  in
  let o_plan, s_plan = run Sweep.Plan_backend in
  let o_closure, s_closure = run Sweep.Closure_backend in
  Grid.max_abs_diff o_plan o_closure = 0.0 && s_plan = s_closure

let plan_backend_matches_closure =
  QCheck.Test.make ~name:"plan backend bit-reproduces closure backend"
    ~count:120 QCheck.small_int (fun seed -> sweep_backends_agree ~seed)

(* The same contract through the temporal-blocking path: random
   wavefront depth and (legal) stagger, per-direction plan reuse. *)
let wavefront_backends_agree ~seed =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:3 in
  let spec = Gen.spec rng ~rank () in
  let spec = if Prng.int rng ~bound:2 = 0 then force_program spec else spec in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:8) in
  let steps = 1 + Prng.int rng ~bound:4 in
  let wf = 2 + Prng.int rng ~bound:3 in
  let stagger = halo.(0) + 1 + Prng.int rng ~bound:2 in
  let cfg = Config.v ~wavefront:wf ~wavefront_stagger:stagger () in
  let run backend =
    let a = make_grid ~halo ~dims (seed + 1) in
    let b = make_grid ~halo ~dims (seed + 2) in
    let final, _ = Wavefront.steps ~backend ~config:cfg spec ~a ~b ~steps in
    final
  in
  Grid.max_abs_diff (run Sweep.Plan_backend) (run Sweep.Closure_backend) = 0.0

let wavefront_backend_parity =
  QCheck.Test.make ~name:"wavefront agrees across backends" ~count:60
    QCheck.small_int (fun seed -> wavefront_backends_agree ~seed)

(* Tracing must not perturb results on either backend (both route
   addresses through the plan's access table). *)
let traced_backends_agree ~seed =
  let rng = Prng.create ~seed in
  let rank = 1 + Prng.int rng ~bound:3 in
  let spec = Gen.spec rng ~rank () in
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let dims = Array.init rank (fun _ -> 6 + Prng.int rng ~bound:8) in
  let run backend =
    let a = make_grid ~halo ~dims (seed + 7) in
    let o = Grid.create ~halo ~dims () in
    let trace = Hierarchy.create Machine.test_chip in
    let _ = Sweep.run ~backend ~trace spec ~inputs:[| a |] ~output:o in
    o
  in
  Grid.max_abs_diff (run Sweep.Plan_backend) (run Sweep.Closure_backend) = 0.0

let traced_backend_parity =
  QCheck.Test.make ~name:"traced sweep agrees across backends" ~count:40
    QCheck.small_int (fun seed -> traced_backends_agree ~seed)

(* ------------------------------------------------------------------ *)
(* Plan structure and fingerprints.                                    *)

let heat2 = Suite.resolve_defaults Suite.heat_2d_5pt

let test_groups_detected () =
  let plan = Lower.lower heat2 in
  (match plan.Plan.body with
  | Plan.Groups _ -> ()
  | Plan.Program _ ->
      Alcotest.fail "heat 5pt should lower to an FMA-chain (Groups) body");
  Alcotest.(check bool) "resolved" true (Plan.resolved plan);
  let info = Analysis.of_spec heat2 in
  Alcotest.(check int) "one slot per distinct access"
    (List.length info.Analysis.accesses)
    (Plan.n_slots plan)

let test_program_fallback () =
  let spec =
    Spec.v ~name:"div" ~rank:1 Dsl.(fld [ 0 ] /: (c 2.0 +: fld [ 1 ]))
  in
  match (Lower.lower spec).Plan.body with
  | Plan.Program _ -> ()
  | Plan.Groups _ -> Alcotest.fail "division should fall back to Program"

let test_fingerprint_ignores_name () =
  let e = Dsl.(c 0.5 *: (fld [ -1 ] +: fld [ 1 ])) in
  let a = Spec.v ~name:"a" ~rank:1 e in
  let b = Spec.v ~name:"b" ~rank:1 e in
  Alcotest.(check string) "same kernel, same digest" (Lower.fingerprint a)
    (Lower.fingerprint b);
  let c' = Spec.v ~name:"a" ~rank:1 Dsl.(c 0.25 *: (fld [ -1 ] +: fld [ 1 ])) in
  Alcotest.(check bool) "coefficient changes the digest" false
    (Lower.fingerprint a = Lower.fingerprint c')

let test_fingerprint_matches_plan () =
  let spec = heat2 in
  let plan = Lower.lower spec in
  Alcotest.(check string) "Lower.fingerprint = plan.fingerprint"
    plan.Plan.fingerprint (Lower.fingerprint spec);
  Alcotest.(check bool) "digest is hex of fixed width" true
    (String.length plan.Plan.fingerprint = 32)

let test_unresolved_plan () =
  let spec = Spec.v ~name:"sym" ~rank:1 Dsl.(p "r" *: fld [ 0 ]) in
  let plan = Lower.lower spec in
  Alcotest.(check bool) "symbolic plan is unresolved" false
    (Plan.resolved plan);
  (* Still fingerprintable: the digest covers the symbol name. *)
  let other = Spec.v ~name:"sym" ~rank:1 Dsl.(p "q" *: fld [ 0 ]) in
  Alcotest.(check bool) "symbol name is part of the digest" false
    (Lower.fingerprint spec = Lower.fingerprint other);
  let g = make_grid ~halo:[| 1 |] ~dims:[| 8 |] 11 in
  let o = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  Alcotest.check_raises "bind refuses symbolic plans"
    (Compile.Unresolved_coefficient "r") (fun () ->
      ignore (Lower.bind plan ~inputs:[| g |] ~output:o))

(* ------------------------------------------------------------------ *)
(* Error paths: Compile.check_inputs and Lower.check, and the same
   violations pushed through Sweep.run on each backend (gates off, so
   the backend's own validation is what fires).                        *)

let contains = Astring_contains.contains

let raises_invalid ~substr f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument (%s)" substr
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" msg substr)
        true (contains msg substr)

let heat1 = Spec.v ~name:"heat1" ~rank:1
    Dsl.(c 0.25 *: fld [ -1 ] +: (c 0.5 *: fld [ 0 ]) +: (c 0.25 *: fld [ 1 ]))

let wide1 = Spec.v ~name:"wide1" ~rank:1 Dsl.(fld [ -2 ] +: fld [ 2 ])

let test_check_field_count () =
  let g = make_grid ~halo:[| 1 |] ~dims:[| 8 |] 1 in
  let o = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  raises_invalid ~substr:"field" (fun () ->
      Compile.check_inputs heat1 ~inputs:[| g; g |]);
  raises_invalid ~substr:"field" (fun () ->
      Lower.check (Lower.lower heat1) ~inputs:[| g; g |] ~output:o);
  raises_invalid ~substr:"field" (fun () ->
      Sweep.run ~backend:Sweep.Plan_backend ~check:false heat1
        ~inputs:[| g; g |] ~output:o);
  raises_invalid ~substr:"field" (fun () ->
      Sweep.run ~backend:Sweep.Closure_backend ~check:false heat1
        ~inputs:[| g; g |] ~output:o)

let test_check_rank () =
  let g1 = make_grid ~halo:[| 1 |] ~dims:[| 8 |] 2 in
  let heat2s = heat2 in
  let g2 = make_grid ~halo:[| 1; 1 |] ~dims:[| 8; 8 |] 3 in
  let o2 = Grid.create ~halo:[| 1; 1 |] ~dims:[| 8; 8 |] () in
  raises_invalid ~substr:"rank" (fun () ->
      Compile.check_inputs heat2s ~inputs:[| g1 |]);
  raises_invalid ~substr:"rank" (fun () ->
      Lower.check (Lower.lower heat2s) ~inputs:[| g1 |] ~output:o2);
  (* Output rank is checked too (Compile never sees the output). *)
  let o1 = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  raises_invalid ~substr:"rank" (fun () ->
      Lower.check (Lower.lower heat2s) ~inputs:[| g2 |] ~output:o1)

let test_check_halo () =
  let thin = make_grid ~halo:[| 1 |] ~dims:[| 8 |] 4 in
  let o = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  raises_invalid ~substr:"halo" (fun () ->
      Compile.check_inputs wide1 ~inputs:[| thin |]);
  raises_invalid ~substr:"halo" (fun () ->
      Lower.check (Lower.lower wide1) ~inputs:[| thin |] ~output:o);
  raises_invalid ~substr:"halo" (fun () ->
      Sweep.run ~backend:Sweep.Plan_backend ~check:false wide1
        ~inputs:[| thin |] ~output:o);
  raises_invalid ~substr:"halo" (fun () ->
      Sweep.run ~backend:Sweep.Closure_backend ~check:false wide1
        ~inputs:[| thin |] ~output:o)

let test_unresolved_both_backends () =
  let spec = Spec.v ~name:"sym" ~rank:1 Dsl.(p "r" *: fld [ 0 ]) in
  let g = make_grid ~halo:[| 1 |] ~dims:[| 8 |] 5 in
  let o = Grid.create ~halo:[| 1 |] ~dims:[| 8 |] () in
  List.iter
    (fun backend ->
      Alcotest.check_raises
        (Sweep.backend_name backend ^ " refuses unresolved coefficients")
        (Compile.Unresolved_coefficient "r") (fun () ->
          ignore
            (Sweep.run ~backend ~check:false spec ~inputs:[| g |] ~output:o)))
    [ Sweep.Plan_backend; Sweep.Closure_backend ]

(* The dynamic sanitizer reaches the same verdict on both backends:
   an aliased in-place sweep traps YS452 either way. *)
let test_sanitizer_verdict_parity () =
  List.iter
    (fun backend ->
      let g = make_grid ~halo:[| 1 |] ~dims:[| 12 |] 6 in
      let san = Sanitizer.create () in
      let code =
        try
          ignore
            (Sweep.run ~backend ~check:false ~sanitize:san heat1
               ~inputs:[| g |] ~output:g);
          None
        with Sanitizer.Trap t -> Some (Sanitizer.code_of_kind t.Sanitizer.kind)
      in
      Alcotest.(check (option string))
        (Sweep.backend_name backend ^ " traps the aliased sweep")
        (Some "YS452") code)
    [ Sweep.Plan_backend; Sweep.Closure_backend ]

(* ------------------------------------------------------------------ *)
(* Backend selection.                                                  *)

let test_backend_selection () =
  let original = Sweep.default_backend () in
  Sweep.set_default_backend Sweep.Closure_backend;
  Alcotest.(check string) "override to closure" "closure"
    (Sweep.backend_name (Sweep.default_backend ()));
  Sweep.set_default_backend Sweep.Plan_backend;
  Alcotest.(check string) "override to plan" "plan"
    (Sweep.backend_name (Sweep.default_backend ()));
  (* Restore whatever the environment selected for this test run. *)
  Sweep.set_default_backend original

let suite =
  [ qt plan_backend_matches_closure;
    qt wavefront_backend_parity;
    qt traced_backend_parity;
    Alcotest.test_case "heat 5pt lowers to Groups" `Quick test_groups_detected;
    Alcotest.test_case "division falls back to Program" `Quick
      test_program_fallback;
    Alcotest.test_case "fingerprint ignores the kernel name" `Quick
      test_fingerprint_ignores_name;
    Alcotest.test_case "Lower.fingerprint matches the plan" `Quick
      test_fingerprint_matches_plan;
    Alcotest.test_case "symbolic plans fingerprint but refuse to bind" `Quick
      test_unresolved_plan;
    Alcotest.test_case "field-count mismatch rejected everywhere" `Quick
      test_check_field_count;
    Alcotest.test_case "rank mismatch rejected everywhere" `Quick
      test_check_rank;
    Alcotest.test_case "insufficient halo rejected everywhere" `Quick
      test_check_halo;
    Alcotest.test_case "unresolved coefficient rejected on both backends"
      `Quick test_unresolved_both_backends;
    Alcotest.test_case "sanitizer verdict identical across backends" `Quick
      test_sanitizer_verdict_parity;
    Alcotest.test_case "backend override and restore" `Quick
      test_backend_selection ]
