(* On-disk, content-addressed artifact store for tuning results: ECM
   predictions, sweep checkpoints, Offsite per-kernel bounds and plan
   safety certificates all outlive the process through this module.

   Engineering invariants, in order of importance:

   1. The store must never make a working pipeline fail. Every public
      operation absorbs filesystem errors: an absent, read-only, torn or
      version-mismatched root degrades to in-memory behaviour (gets
      miss, puts drop) with a recorded diagnostic. The only exception
      allowed out is [Yasksite_faults.Io.Crashed], the simulated process
      death of the fault harness.

   2. Commits are atomic and durable: write a uniquely named temp file,
      fsync it, read it back and verify the checksum (catching torn
      writes at commit time, before they can shadow good data), rename
      it over the destination, fsync the directory. A crash between any
      two syscalls leaves the entry at its previous committed value or
      the new one, never torn — the property test in test_store
      enumerates every crash point.

   3. Corruption is contained, not fatal: an entry failing its header or
      checksum check on read is moved to [corrupt/] (quarantined) and
      the query returns a miss, so the caller recomputes and the next
      put repairs the slot.

   4. Roots are shared: entry filenames are content addresses (hex
      digest of the namespace key), so concurrent writers of the same
      key race only at the atomic rename (last writer wins, both values
      are valid), and advisory lock files with dead-pid takeover
      serialise the multi-file operations (gc) across processes.

   Layout under the root:

     VERSION                      schema gate ("yasksite-store v1")
     objects/<ns>/<aa>/<digest>   entries, bucketed by digest prefix
     corrupt/                     quarantined entries
     locks/<name>.lock            advisory locks (content: pid) *)

module Io = Yasksite_faults.Io

let schema_version = 1

let version_magic = Printf.sprintf "yasksite-store v%d" schema_version

let entry_magic = Printf.sprintf "yasksite-entry v%d" schema_version

type stats = {
  hits : int;
  misses : int;
  writes : int;
  write_errors : int;
  quarantined : int;
  locks_broken : int;
}

type verify_report = { scanned : int; ok : int; bad : int }

type gc_report = {
  scanned : int;
  removed : int;
  kept : int;
  bytes_removed : int;
  bytes_kept : int;
}

type usage = { entries : int; bytes : int; corrupt : int }

type t = {
  root : string;
  io : Io.t;
  disabled : bool;
  writable : bool;
  mutex : Mutex.t;
  mutable tmp_seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable write_errors : int;
  mutable quarantined : int;
  mutable locks_broken : int;
  mutable diags : string list;  (* newest first, bounded *)
}

let max_diags = 64

let locked t f = Mutex.protect t.mutex f

let diag t fmt =
  Printf.ksprintf
    (fun msg ->
      locked t (fun () ->
          t.diags <- msg :: (if List.length t.diags >= max_diags then
                               List.filteri (fun i _ -> i < max_diags - 1) t.diags
                             else t.diags)))
    fmt

let diagnostics t = locked t (fun () -> List.rev t.diags)

let root t = t.root

let active t = not t.disabled

let writable t = t.writable && not t.disabled

(* ------------------------------------------------------------------ *)
(* Guarded syscalls                                                    *)

(* Failures injected by the fault plan surface as Unix-flavoured
   exceptions so the degraded-mode handling treats real and injected
   faults through one path. *)
let inject_fail op = function
  | Io.Enospc ->
      raise (Unix.Unix_error (Unix.ENOSPC, Io.op_name op, "injected"))
  | Io.Eio -> raise (Unix.Unix_error (Unix.EIO, Io.op_name op, "injected"))

let guard t op =
  match Io.draw t.io op with
  | Io.Proceed | Io.Torn _ -> ()
  | Io.Fail f -> inject_fail op f
  | Io.Crash -> raise (Io.Crashed { op; at = Io.ops t.io })

let mkdir_p t path =
  let rec make p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      guard t Io.Mkdir;
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make path

let write_all fd s len =
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

(* Best-effort directory fsync: refusal (some filesystems return EINVAL
   on directory fds) loses durability of the rename, not atomicity. *)
let fsync_dir_real dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_file t path =
  guard t Io.Read;
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | raw -> Some raw
    | exception Sys_error _ -> None

(* ------------------------------------------------------------------ *)
(* Entry encoding                                                      *)

(* Header fields must stay single-line: tabs and newlines in namespace
   or key would corrupt the framing, so they are mapped to spaces (the
   same hygiene Checkpoint applies to skip reasons). *)
let sanitize s =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s

let checksum payload = Digest.to_hex (Digest.string payload)

let encode ~ns ~key payload =
  Printf.sprintf "%s\t%s\t%s\t%s\t%d\n%s" entry_magic (sanitize ns)
    (sanitize key) (checksum payload) (String.length payload) payload

(* Strict inverse of [encode]: any framing, length or checksum mismatch
   is corruption. *)
let decode raw =
  match String.index_opt raw '\n' with
  | None -> Error "missing header terminator"
  | Some nl -> (
      let header = String.sub raw 0 nl in
      let payload_start = nl + 1 in
      match String.split_on_char '\t' header with
      | [ magic; ns; key; sum; len_s ] -> (
          if magic <> entry_magic then Error "schema magic mismatch"
          else
            match int_of_string_opt len_s with
            | None -> Error "malformed length"
            | Some len ->
                if String.length raw - payload_start <> len then
                  Error "payload length mismatch"
                else
                  let payload = String.sub raw payload_start len in
                  if checksum payload <> sum then Error "checksum mismatch"
                  else Ok (ns, key, payload))
      | _ -> Error "malformed header")

let filename_of_key ~ns ~key = Digest.to_hex (Digest.string (ns ^ "\x00" ^ key))

let entry_dir t ~ns name =
  Filename.concat
    (Filename.concat (Filename.concat t.root "objects") (sanitize ns))
    (String.sub name 0 2)

let entry_path t ~ns ~key =
  let name = filename_of_key ~ns ~key in
  Filename.concat (entry_dir t ~ns name) name

let tmp_prefix = ".tmp-"

let is_tmp name = String.length name >= 1 && name.[0] = '.'

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)

let disabled_store ?(io = Io.real ()) root reason =
  let t =
    { root; io; disabled = true; writable = false; mutex = Mutex.create ();
      tmp_seq = 0; hits = 0; misses = 0; writes = 0; write_errors = 0;
      quarantined = 0; locks_broken = 0; diags = [] }
  in
  diag t "store disabled: %s" reason;
  t

let open_root ?(io = Io.real ()) root =
  let fresh ~disabled ~writable =
    { root; io; disabled; writable; mutex = Mutex.create ();
      tmp_seq = 0; hits = 0; misses = 0; writes = 0; write_errors = 0;
      quarantined = 0; locks_broken = 0; diags = [] }
  in
  let t = fresh ~disabled:false ~writable:true in
  let version_path = Filename.concat root "VERSION" in
  (* Layout + schema gate. Any failure here downgrades rather than
     raising: an unusable root means a disabled (or read-only) store,
     never a broken pipeline. *)
  let initialise () =
    let existing =
      if Sys.file_exists version_path then
        match In_channel.with_open_bin version_path In_channel.input_all with
        | raw -> Some (String.trim raw)
        | exception Sys_error _ -> None
      else None
    in
    match existing with
    | Some v when v = version_magic ->
        (* Adopted as-is; subdirectories are made lazily on write. *)
        `Ready
    | Some v -> `Version_mismatch v
    | None ->
        (* New or torn root: (re)initialise. *)
        mkdir_p t root;
        let fd =
          Unix.openfile version_path
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            write_all fd (version_magic ^ "\n")
              (String.length version_magic + 1);
            (try Unix.fsync fd with Unix.Unix_error _ -> ()));
        `Ready
  in
  match initialise () with
  | `Ready -> t
  | `Version_mismatch v ->
      (* An old (or future) layout must miss cleanly, not mix: refuse to
         read or write anything under it. *)
      disabled_store ~io root
        (Printf.sprintf
           "schema version mismatch at %s (found %S, need %S); clear the \
            root or point YASKSITE_STORE elsewhere"
           root v version_magic)
  | exception (Io.Crashed _ as e) -> raise e
  | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
      (* Root exists but is not writable: serve reads, drop writes.
         Root absent and uncreatable: fully disabled. *)
      if Sys.file_exists version_path then begin
        let t = fresh ~disabled:false ~writable:false in
        diag t "store read-only: cannot write under %s" root;
        t
      end
      else disabled_store ~io root (Printf.sprintf "cannot initialise %s" root)

let default_root () =
  match Sys.getenv_opt "YASKSITE_STORE" with
  | Some r when r <> "" -> r
  | _ ->
      let home =
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> h
        | _ -> Filename.get_temp_dir_name ()
      in
      Filename.concat (Filename.concat home ".cache") "yasksite"

let store_disabled_by_env () =
  match Sys.getenv_opt "YASKSITE_NO_STORE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let default_cell : t option option ref = ref None

let default_mutex = Mutex.create ()

let default () =
  Mutex.protect default_mutex (fun () ->
      match !default_cell with
      | Some d -> d
      | None ->
          let d =
            if store_disabled_by_env () then None
            else Some (open_root (default_root ()))
          in
          default_cell := Some d;
          d)

let reset_default_for_tests () =
  Mutex.protect default_mutex (fun () -> default_cell := None)

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)

let quarantine t path reason =
  let corrupt_dir = Filename.concat t.root "corrupt" in
  let moved =
    try
      mkdir_p t corrupt_dir;
      let seq = locked t (fun () -> t.tmp_seq <- t.tmp_seq + 1; t.tmp_seq) in
      let dest =
        Filename.concat corrupt_dir
          (Printf.sprintf "%s.%d.%d" (Filename.basename path)
             (Unix.getpid ()) seq)
      in
      guard t Io.Rename;
      Unix.rename path dest;
      true
    with
    | Io.Crashed _ as e -> raise e
    | Unix.Unix_error _ | Sys_error _ | Failure _ -> (
        (* Could not move it aside (read-only root, say): try to unlink,
           else leave it — reads will keep missing on it. *)
        try
          guard t Io.Unlink;
          Unix.unlink path;
          true
        with
        | Io.Crashed _ as e -> raise e
        | _ -> false)
  in
  locked t (fun () -> t.quarantined <- t.quarantined + 1);
  diag t "quarantined %s (%s)%s" path reason
    (if moved then "" else " [could not move]")

(* ------------------------------------------------------------------ *)
(* Get / put                                                           *)

let count_hit t = locked t (fun () -> t.hits <- t.hits + 1)

let count_miss t = locked t (fun () -> t.misses <- t.misses + 1)

let get t ~ns ~key =
  if t.disabled then begin
    count_miss t;
    None
  end
  else begin
    let path = entry_path t ~ns ~key in
    match read_file t path with
    | None ->
        count_miss t;
        None
    | Some raw -> (
        match decode raw with
        | Ok (ns', key', payload)
          when ns' = sanitize ns && key' = sanitize key ->
            count_hit t;
            Some payload
        | Ok _ ->
            (* Valid entry in the wrong slot: a digest collision or a
               mis-filed copy. Treat as corruption of the slot. *)
            quarantine t path "key mismatch";
            count_miss t;
            None
        | Error reason ->
            quarantine t path reason;
            count_miss t;
            None)
    | exception (Io.Crashed _ as e) -> raise e
    | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
        count_miss t;
        None
  end

let put t ~ns ~key payload =
  if t.disabled || not t.writable then begin
    if not t.disabled then
      locked t (fun () -> t.write_errors <- t.write_errors + 1)
  end
  else begin
    let name = filename_of_key ~ns ~key in
    let dir = entry_dir t ~ns name in
    let final = Filename.concat dir name in
    let seq = locked t (fun () -> t.tmp_seq <- t.tmp_seq + 1; t.tmp_seq) in
    let tmp =
      Filename.concat dir
        (Printf.sprintf "%s%s.%d.%d" tmp_prefix name (Unix.getpid ()) seq)
    in
    let cleanup () =
      try Unix.unlink tmp with Unix.Unix_error _ | Sys_error _ -> ()
    in
    try
      let data = encode ~ns ~key payload in
      let len = String.length data in
      mkdir_p t dir;
      guard t Io.Open_write;
      let fd =
        Unix.openfile tmp
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
          0o644
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* A torn write lands only a prefix but reports success — the
             read-back below is what catches it. *)
          let written =
            match Io.draw t.io Io.Write with
            | Io.Proceed -> len
            | Io.Torn f ->
                max 0 (min len (int_of_float (f *. float_of_int len)))
            | Io.Fail f -> inject_fail Io.Write f
            | Io.Crash ->
                raise (Io.Crashed { op = Io.Write; at = Io.ops t.io })
          in
          write_all fd data written;
          guard t Io.Fsync;
          Unix.fsync fd);
      (* Read-back verification: only a bit-exact temp file may be
         renamed over the previous committed value. This is the line of
         defence against torn writes that do NOT crash — without it a
         truncated temp would be published and shadow good data. *)
      (match read_file t tmp with
      | Some raw when raw = data -> ()
      | _ -> failwith "read-back verification failed");
      guard t Io.Rename;
      Unix.rename tmp final;
      guard t Io.Fsync_dir;
      fsync_dir_real dir;
      locked t (fun () -> t.writes <- t.writes + 1)
    with
    | Io.Crashed _ as e -> raise e
    | Unix.Unix_error _ | Sys_error _ | Failure _ as e ->
        cleanup ();
        locked t (fun () -> t.write_errors <- t.write_errors + 1);
        diag t "write of %s/%s failed: %s" (sanitize ns) name
          (Printexc.to_string e)
  end

let mem t ~ns ~key = get t ~ns ~key <> None

let delete t ~ns ~key =
  if t.disabled || not t.writable then false
  else begin
    let path = entry_path t ~ns ~key in
    try
      guard t Io.Unlink;
      Unix.unlink path;
      true
    with
    | Io.Crashed _ as e -> raise e
    | Unix.Unix_error _ | Sys_error _ | Failure _ -> false
  end

(* ------------------------------------------------------------------ *)
(* Advisory locks                                                      *)

let lock_path t name = Filename.concat (Filename.concat t.root "locks") name

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true  (* EPERM: alive, someone else's *)

let try_acquire t path =
  match
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL; Unix.O_CLOEXEC ]
      0o644
  with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let pid = string_of_int (Unix.getpid ()) ^ "\n" in
          write_all fd pid (String.length pid));
      true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> (
      (* Held — or leaked by a dead process. Stale-lock takeover: a lock
         naming a pid that no longer exists is broken and re-raced. *)
      let holder =
        match In_channel.with_open_bin path In_channel.input_all with
        | raw -> int_of_string_opt (String.trim raw)
        | exception Sys_error _ -> None
      in
      match holder with
      | Some pid when pid_alive pid -> false
      | _ ->
          (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
          locked t (fun () -> t.locks_broken <- t.locks_broken + 1);
          diag t "broke stale lock %s (holder %s)" path
            (match holder with
            | Some p -> string_of_int p
            | None -> "unreadable");
          false (* re-race on the next attempt *))
  | exception (Unix.Unix_error _ | Sys_error _) -> false

let with_lock ?(wait_s = 2.0) t ~name f =
  if t.disabled || not t.writable then f ()
  else begin
    let path = lock_path t (sanitize name ^ ".lock") in
    let acquired =
      try
        mkdir_p t (Filename.dirname path);
        let deadline = Unix.gettimeofday () +. wait_s in
        let rec loop () =
          if try_acquire t path then true
          else if Unix.gettimeofday () > deadline then false
          else begin
            Unix.sleepf 0.005;
            loop ()
          end
        in
        loop ()
      with
      | Io.Crashed _ as e -> raise e
      | Unix.Unix_error _ | Sys_error _ | Failure _ -> false
    in
    if not acquired then
      (* Advisory: liveness beats exclusion. Individual commits stay
         atomic regardless, so proceeding can duplicate work but never
         corrupt state. *)
      diag t "lock %s not acquired within %.1fs; proceeding" name wait_s;
    Fun.protect
      ~finally:(fun () ->
        if acquired then
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      f
  end

(* ------------------------------------------------------------------ *)
(* Maintenance: scans, verify, gc, usage                               *)

let list_dir path =
  match Sys.readdir path with
  | entries -> Array.to_list entries
  | exception Sys_error _ -> []

(* All committed entry files as (namespace-dir-name, path) pairs (temp
   files and other dotfiles skipped). [ns] restricts the scan to one
   namespace directory — schema-scoped maintenance never stats the
   others. The directory name is the {e sanitized} namespace, which is
   the namespace itself for every schema the code base uses. *)
let entry_files_ns ?ns t =
  let objects = Filename.concat t.root "objects" in
  let namespaces =
    match ns with Some n -> [ sanitize n ] | None -> list_dir objects
  in
  List.concat_map
    (fun ns ->
      let ns_dir = Filename.concat objects ns in
      List.concat_map
        (fun bucket ->
          let bucket_dir = Filename.concat ns_dir bucket in
          List.filter_map
            (fun name ->
              if is_tmp name then None
              else Some (ns, Filename.concat bucket_dir name))
            (list_dir bucket_dir))
        (list_dir ns_dir))
    namespaces

let entry_files t = List.map snd (entry_files_ns t)

let fold_ns t ~ns ~init f =
  if t.disabled then init
  else
    List.fold_left
      (fun acc (_, path) ->
        match read_file t path with
        | Some raw -> (
            match decode raw with
            | Ok (ns', key, payload) when ns' = sanitize ns ->
                f acc ~key ~payload
            | Ok _ | Error _ -> acc)
        | None -> acc
        | exception (Io.Crashed _ as e) -> raise e
        | exception (Unix.Unix_error _ | Sys_error _ | Failure _) -> acc)
      init
      (entry_files_ns ~ns t)

let verify t =
  if t.disabled then { scanned = 0; ok = 0; bad = 0 }
  else
    with_lock t ~name:"verify" @@ fun () ->
    let scanned = ref 0 and ok = ref 0 and bad = ref 0 in
    List.iter
      (fun path ->
        incr scanned;
        let healthy =
          match read_file t path with
          | Some raw -> (
              match decode raw with
              | Ok (ns, key, _) ->
                  (* The filename is the content address of (ns, key):
                     a mis-filed entry would shadow another slot. *)
                  Filename.basename path = filename_of_key ~ns ~key
              | Error _ -> false)
          | None -> false
          | exception (Io.Crashed _ as e) -> raise e
          | exception (Unix.Unix_error _ | Sys_error _ | Failure _) -> false
        in
        if healthy then incr ok
        else begin
          incr bad;
          quarantine t path "verify: invalid entry"
        end)
      (entry_files t);
    { scanned = !scanned; ok = !ok; bad = !bad }

let file_info path =
  match Unix.stat path with
  | st -> Some (st.Unix.st_mtime, st.Unix.st_size)
  | exception Unix.Unix_error _ -> None

let gc ?ns ?max_age_s ?max_size_bytes t =
  if t.disabled || not t.writable then
    { scanned = 0; removed = 0; kept = 0; bytes_removed = 0; bytes_kept = 0 }
  else
    with_lock t ~name:"gc" @@ fun () ->
    let now = Unix.gettimeofday () in
    let files =
      List.filter_map
        (fun (_, p) ->
          match file_info p with
          | Some (mtime, size) -> Some (p, mtime, size)
          | None -> None)
        (entry_files_ns ?ns t)
    in
    let removed = ref 0 and bytes_removed = ref 0 in
    let remove (p, _, size) =
      try
        guard t Io.Unlink;
        Unix.unlink p;
        incr removed;
        bytes_removed := !bytes_removed + size
      with
      | Io.Crashed _ as e -> raise e
      | Unix.Unix_error _ | Sys_error _ | Failure _ -> ()
    in
    let keep, expired =
      match max_age_s with
      | None -> (files, [])
      | Some age ->
          List.partition (fun (_, mtime, _) -> now -. mtime <= age) files
    in
    List.iter remove expired;
    let keep =
      match max_size_bytes with
      | None -> keep
      | Some budget ->
          (* Evict oldest-first until the surviving bytes fit. *)
          let by_age =
            List.sort (fun (_, a, _) (_, b, _) -> compare b a) keep
          in
          let _, survivors =
            List.fold_left
              (fun (bytes, acc) ((_, _, size) as f) ->
                if bytes + size <= budget then (bytes + size, f :: acc)
                else begin
                  remove f;
                  (bytes, acc)
                end)
              (0, []) by_age
          in
          survivors
    in
    (* Stale temp files from crashed writers age out too. *)
    let tmp_age = 600.0 in
    let objects = Filename.concat t.root "objects" in
    List.iter
      (fun scanned_ns ->
        let ns_dir = Filename.concat objects scanned_ns in
        List.iter
          (fun bucket ->
            let bucket_dir = Filename.concat ns_dir bucket in
            List.iter
              (fun name ->
                if is_tmp name then
                  let p = Filename.concat bucket_dir name in
                  match file_info p with
                  | Some (mtime, _) when now -. mtime > tmp_age -> (
                      try Unix.unlink p
                      with Unix.Unix_error _ | Sys_error _ -> ())
                  | _ -> ())
              (list_dir bucket_dir))
          (list_dir ns_dir))
      (match ns with Some n -> [ sanitize n ] | None -> list_dir objects);
    let bytes_kept =
      List.fold_left (fun acc (_, _, s) -> acc + s) 0 keep
    in
    { scanned = List.length files;
      removed = !removed;
      kept = List.length keep;
      bytes_removed = !bytes_removed;
      bytes_kept }

type ns_usage = { ns : string; ns_entries : int; ns_bytes : int }

let usage_by_ns t =
  if t.disabled then []
  else
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (ns, p) ->
        let sz = match file_info p with Some (_, s) -> s | None -> 0 in
        let entries, bytes =
          match Hashtbl.find_opt tbl ns with
          | Some (e, b) -> (e, b)
          | None -> (0, 0)
        in
        Hashtbl.replace tbl ns (entries + 1, bytes + sz))
      (entry_files_ns t);
    Hashtbl.fold
      (fun ns (ns_entries, ns_bytes) acc -> { ns; ns_entries; ns_bytes } :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.ns b.ns)

let usage t =
  if t.disabled then { entries = 0; bytes = 0; corrupt = 0 }
  else begin
    let files = entry_files t in
    let bytes =
      List.fold_left
        (fun acc p ->
          match file_info p with Some (_, s) -> acc + s | None -> acc)
        0 files
    in
    let corrupt =
      List.length
        (List.filter
           (fun n -> not (is_tmp n))
           (list_dir (Filename.concat t.root "corrupt")))
    in
    { entries = List.length files; bytes; corrupt }
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let stats t =
  locked t (fun () ->
      { hits = t.hits;
        misses = t.misses;
        writes = t.writes;
        write_errors = t.write_errors;
        quarantined = t.quarantined;
        locks_broken = t.locks_broken })

let stats_json t =
  let s = stats t in
  Printf.sprintf
    "{\"root\":%S,\"active\":%b,\"writable\":%b,\"hits\":%d,\"misses\":%d,\
     \"writes\":%d,\"write_errors\":%d,\"quarantined\":%d,\
     \"locks_broken\":%d}"
    t.root (active t) (writable t) s.hits s.misses s.writes s.write_errors
    s.quarantined s.locks_broken

