(** On-disk, content-addressed artifact store: tuning results — ECM
    predictions, sweep checkpoints, Offsite per-kernel bounds, plan
    safety certificates — outlive the process through this module.

    {1 Guarantees}

    - {b Never fails a working pipeline.} Every operation absorbs
      filesystem errors: an absent, read-only, torn or
      version-mismatched root degrades to in-memory behaviour (gets
      miss, puts drop) and records a diagnostic. The only exception let
      out is {!Yasksite_faults.Io.Crashed}, the simulated process death
      of the fault harness.
    - {b Crash-consistent commits.} {!put} writes a uniquely named temp
      file, fsyncs it, reads it back and verifies the checksum (catching
      torn writes before they can shadow good data), renames it over the
      destination, and fsyncs the directory. A crash between any two
      syscalls leaves the entry at its previous committed value or the
      new one, never torn.
    - {b Corruption contained.} An entry failing its header or checksum
      check on read is quarantined to [corrupt/] and the query misses,
      so the caller recomputes and the next {!put} repairs the slot.
    - {b Shared roots.} Entry filenames are content addresses (digest of
      namespace × key), concurrent same-key writers race only at the
      atomic rename, and advisory locks with dead-pid takeover serialise
      multi-file maintenance across processes.

    {1 Layout}

    {v
    $YASKSITE_STORE (default ~/.cache/yasksite)
    ├── VERSION                      schema gate ("yasksite-store v1")
    ├── objects/<ns>/<aa>/<digest>   checksummed entries
    ├── corrupt/                     quarantined entries
    └── locks/<name>.lock            advisory locks (content: pid)
    v} *)

type t
(** A handle on one store root (possibly degraded; see {!active} and
    {!writable}). Handles are domain-safe. *)

val schema_version : int
(** Version of the on-disk layout. A root whose [VERSION] names any
    other layout opens fully disabled — old layouts miss cleanly
    instead of mixing. *)

val open_root : ?io:Yasksite_faults.Io.t -> string -> t
(** [open_root dir] opens (creating if needed) a store rooted at [dir].
    Never raises: an uncreatable root yields a disabled handle, an
    unwritable-but-readable one a read-only handle. [io] routes every
    syscall through a fault injector (default: real I/O). *)

val default_root : unit -> string
(** [$YASKSITE_STORE] if set and non-empty, else
    [$HOME/.cache/yasksite] (temp dir if [HOME] is unset). *)

val default : unit -> t option
(** The process-wide store at {!default_root}, opened on first use.
    [None] when [YASKSITE_NO_STORE] is set to anything but [""]/["0"]
    — the kill switch that keeps every consumer purely in-memory. *)

val reset_default_for_tests : unit -> unit
(** Forget the memoized {!default} so a test can re-resolve it under a
    different environment. *)

val root : t -> string

val active : t -> bool
(** [false] iff the handle is fully disabled (uncreatable root or
    schema mismatch): gets miss and puts drop without touching disk. *)

val writable : t -> bool
(** Whether puts can commit (active and the root accepts writes). *)

(** {1 Entries} *)

val get : t -> ns:string -> key:string -> string option
(** The committed payload for [key] in namespace [ns], or [None] on any
    miss: absent, corrupt (quarantined as a side effect), unreadable,
    or disabled store. Verifies the entry checksum on every read. *)

val put : t -> ns:string -> key:string -> string -> unit
(** Commit [payload] under (ns, key), atomically and durably; on any
    failure (including injected ENOSPC/EIO/torn writes) the previous
    committed value is preserved and the error is only counted.
    Namespaces and keys must not contain tabs or newlines (they are
    mapped to spaces). *)

val mem : t -> ns:string -> key:string -> bool

val delete : t -> ns:string -> key:string -> bool
(** Remove the committed entry under (ns, key), if any. [true] iff an
    entry was actually unlinked. Absorbs filesystem errors like every
    other operation; a disabled or read-only store returns [false]. *)

val fold_ns :
  t ->
  ns:string ->
  init:'a ->
  ('a -> key:string -> payload:string -> 'a) ->
  'a
(** Fold over every healthy committed entry of one namespace — how
    schema-aware maintenance (e.g. flagging stale [kern-v1] payloads)
    enumerates entries without knowing the key set in advance.
    Entries that fail to read or decode are skipped, not quarantined
    (that is {!verify}'s job). Order is unspecified. *)

(** {1 Advisory locks} *)

val with_lock : ?wait_s:float -> t -> name:string -> (unit -> 'a) -> 'a
(** Run [f] holding the advisory lock [name]. A lock file naming a dead
    pid is broken and taken over. If the lock cannot be acquired within
    [wait_s] (default 2s) the function runs anyway — the lock is
    advisory, individual commits are atomic regardless, and liveness
    beats exclusion. On a disabled or read-only store, runs [f]
    directly. *)

(** {1 Maintenance} *)

type verify_report = {
  scanned : int;
  ok : int;
  bad : int;  (** invalid entries found (and quarantined) *)
}

val verify : t -> verify_report
(** Scan every committed entry: header, checksum, and that the filename
    is the content address of the entry's own (ns, key). Invalid
    entries are quarantined. *)

type gc_report = {
  scanned : int;
  removed : int;
  kept : int;
  bytes_removed : int;
  bytes_kept : int;
}

val gc : ?ns:string -> ?max_age_s:float -> ?max_size_bytes:int -> t -> gc_report
(** Expire entries older than [max_age_s], then evict oldest-first
    until at most [max_size_bytes] survive; also sweeps stale temp
    files left by crashed writers. Runs under the ["gc"] lock. [ns]
    scopes the whole collection to one schema namespace (e.g. evict
    compiled kernels without touching tuning results); entries and
    temp files of other namespaces are not even scanned. *)

type usage = { entries : int; bytes : int; corrupt : int }

val usage : t -> usage
(** Committed entries, their total size, and quarantined file count. *)

type ns_usage = {
  ns : string;  (** schema namespace, e.g. ["ecm-v1"], ["kern-v1"] *)
  ns_entries : int;
  ns_bytes : int;
}

val usage_by_ns : t -> ns_usage list
(** Per-schema breakdown of {!usage}'s committed entries, sorted by
    namespace — how [yasksite store stats] shows where the bytes
    (e.g. compiled kernels) live. *)

(** {1 Counters} *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  write_errors : int;  (** failed or dropped (read-only) commits *)
  quarantined : int;
  locks_broken : int;  (** stale locks taken over *)
}

val stats : t -> stats
(** This handle's counters (process-local, zero at open). *)

val stats_json : t -> string
(** One-line JSON object of {!stats} plus root/active/writable. *)

val diagnostics : t -> string list
(** Recorded degradation diagnostics, oldest first (bounded). The store
    never prints; callers decide what to surface. *)
