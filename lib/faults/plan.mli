(** Deterministic fault plan: what can go wrong during one kernel run,
    and with which probability. All randomness derives from the plan's
    seed through {!Yasksite_util.Prng}, never from the global [Random]
    state — equal seeds yield bit-identical fault sequences. *)

type t = {
  seed : int;  (** master seed of the fault stream *)
  fail_rate : float;  (** per-run transient-failure probability *)
  timeout_rate : float;  (** per-run probability of a simulated hang *)
  timeout_s : float;  (** wall cost charged for a timed-out run *)
  noise_sigma : float;
      (** sigma of the multiplicative lognormal measurement jitter *)
  outlier_rate : float;
      (** probability of a co-runner contention spike on a surviving run *)
  outlier_factor : float;  (** slowdown factor of such a spike (>= 1) *)
}

val v :
  ?seed:int ->
  ?fail_rate:float ->
  ?timeout_rate:float ->
  ?timeout_s:float ->
  ?noise_sigma:float ->
  ?outlier_rate:float ->
  ?outlier_factor:float ->
  unit ->
  t
(** Constructor with validation: rates in [0, 1], non-negative sigma and
    timeout, [outlier_factor >= 1]. Defaults are all-zero (no faults,
    seed 42). *)

val none : t
(** The all-zero plan: every run succeeds, noise-free. *)

val is_benign : t -> bool
(** No failure modes and no noise: the injector is a guaranteed
    pass-through ([Run 1.0] forever). *)

val describe : t -> string

(** Outcome of one injected kernel run. *)
type outcome =
  | Run of float
      (** run succeeds; measured time is multiplied by this slowdown
          factor (1.0 = clean) *)
  | Transient_failure  (** the run crashed; retryable *)
  | Timeout of float  (** the run hung; charge this many seconds *)

type injector
(** Mutable fault stream (seeded PRNG plus counters). *)

val injector : ?rng:Yasksite_util.Prng.t -> t -> injector
(** Fresh injector; the stream is derived from [plan.seed] unless an
    explicit [rng] is supplied. *)

val injector_at : t -> index:int -> injector
(** [injector_at plan ~index] is the injector for the [index]-th
    consumer (a tuning candidate, say): its stream is the [index]-th
    sequential split of the plan seed, computed in O(1) without shared
    state, so a given consumer draws identical outcomes whether
    consumers are processed in order or concurrently. *)

val draw : injector -> outcome
(** Next outcome of the fault stream. *)

val draws : injector -> int
(** Total outcomes drawn. *)

val faults : injector -> int
(** Drawn outcomes that were failures or timeouts. *)
