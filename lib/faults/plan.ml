module Prng = Yasksite_util.Prng

type t = {
  seed : int;
  fail_rate : float;
  timeout_rate : float;
  timeout_s : float;
  noise_sigma : float;
  outlier_rate : float;
  outlier_factor : float;
}

let check_rate name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faults.Plan.v: %s must be in [0, 1]" name)

let v ?(seed = 42) ?(fail_rate = 0.0) ?(timeout_rate = 0.0) ?(timeout_s = 1.0)
    ?(noise_sigma = 0.0) ?(outlier_rate = 0.0) ?(outlier_factor = 3.0) () =
  check_rate "fail_rate" fail_rate;
  check_rate "timeout_rate" timeout_rate;
  check_rate "outlier_rate" outlier_rate;
  if timeout_s < 0.0 then invalid_arg "Faults.Plan.v: timeout_s must be >= 0";
  if noise_sigma < 0.0 then
    invalid_arg "Faults.Plan.v: noise_sigma must be >= 0";
  if outlier_factor < 1.0 then
    invalid_arg "Faults.Plan.v: outlier_factor must be >= 1";
  { seed; fail_rate; timeout_rate; timeout_s; noise_sigma; outlier_rate;
    outlier_factor }

let none = v ()

let is_benign t =
  t.fail_rate = 0.0 && t.timeout_rate = 0.0 && t.noise_sigma = 0.0
  && t.outlier_rate = 0.0

let describe t =
  if is_benign t then "no faults"
  else
    Printf.sprintf
      "seed=%d fail=%.2f timeout=%.2f(%.1fs) noise=%.3f outlier=%.2f(x%.1f)"
      t.seed t.fail_rate t.timeout_rate t.timeout_s t.noise_sigma
      t.outlier_rate t.outlier_factor

type outcome =
  | Run of float
  | Transient_failure
  | Timeout of float

type injector = {
  plan : t;
  rng : Prng.t;
  mutable draws : int;
  mutable faults : int;
}

let injector ?rng plan =
  let rng =
    match rng with Some r -> r | None -> Prng.create ~seed:plan.seed
  in
  { plan; rng; draws = 0; faults = 0 }

(* The stream candidate [index] would receive from sequential splitting
   of the plan seed, derived in O(1): concurrent candidates draw their
   faults without sharing a generator, and a candidate's outcomes do
   not depend on how many draws earlier candidates made. *)
let injector_at plan ~index =
  injector ~rng:(Prng.create_indexed ~seed:plan.seed ~index) plan

let draw inj =
  let p = inj.plan in
  inj.draws <- inj.draws + 1;
  if is_benign p then Run 1.0
  else begin
    let u = Prng.float inj.rng in
    if u < p.fail_rate then begin
      inj.faults <- inj.faults + 1;
      Transient_failure
    end
    else if u < p.fail_rate +. p.timeout_rate then begin
      inj.faults <- inj.faults + 1;
      Timeout p.timeout_s
    end
    else begin
      let jitter =
        if p.noise_sigma = 0.0 then 1.0
        else exp (p.noise_sigma *. Prng.gaussian inj.rng)
      in
      let spike =
        if p.outlier_rate > 0.0 && Prng.float inj.rng < p.outlier_rate then
          p.outlier_factor
        else 1.0
      in
      Run (jitter *. spike)
    end
  end

let draws inj = inj.draws

let faults inj = inj.faults
