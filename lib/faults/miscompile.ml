(* Seeded miscompile injector: mutate emitted kernel source to prove
   the YS6xx translation validator actually fires.

   Every mutation is structural: the source is parsed into the checked
   kernel AST (Stencil.Kernel_ast), one node is rewritten,
   and the result is printed back — so a mutant is always
   well-formed OCaml in the generated shape, and the only thing wrong
   with it is the miscompile itself. Site selection is driven by the
   shared splitmix64 streams, so a (seed, class, source) triple always
   yields the same mutant. *)

module NL = Yasksite_stencil.Kernel_ast
module Prng = Yasksite_util.Prng

type cls =
  | Coeff_perturb  (* one-ulp flip of a coefficient literal *)
  | Swap_assoc  (* reassociate a left-leaning [+.] chain rightward *)
  | Offset_off_by_one  (* nudge one address shift by ±1 *)
  | Drop_term  (* drop the trailing term of a sum *)
  | Wrong_slot  (* read a different data handle or row base *)
  | Point_row_diverge  (* mutate kern_point only, leave kern_row intact *)
  | Rename_registration  (* register under a non-ABI name *)

let classes =
  [ Coeff_perturb;
    Swap_assoc;
    Offset_off_by_one;
    Drop_term;
    Wrong_slot;
    Point_row_diverge;
    Rename_registration ]

let class_name = function
  | Coeff_perturb -> "coeff-perturb"
  | Swap_assoc -> "swap-assoc"
  | Offset_off_by_one -> "offset-off-by-one"
  | Drop_term -> "drop-term"
  | Wrong_slot -> "wrong-slot"
  | Point_row_diverge -> "point-row-diverge"
  | Rename_registration -> "rename-registration"

let class_of_name s =
  List.find_opt (fun c -> String.equal (class_name c) s) classes

(* The YS6xx code the validator is required to report for a mutant of
   this class (further codes may fire alongside — an off-by-one shift
   on a boundary access also escapes the halo, say). *)
let expected_code = function
  | Coeff_perturb -> "YS601"
  | Swap_assoc -> "YS602"
  | Offset_off_by_one -> "YS604"
  | Drop_term -> "YS603"
  | Wrong_slot -> "YS605"
  | Point_row_diverge -> "YS609"
  | Rename_registration -> "YS610"

(* ------------------------------------------------------------------ *)
(* Site-indexed rewriting over the checked AST                         *)

let count_sites f e =
  let n = ref 0 in
  let rec go e =
    (match f e with Some _ -> incr n | None -> ());
    match e with
    | NL.Lit _ | NL.Get _ -> ()
    | NL.Neg x -> go x
    | NL.Bin (_, a, b) | NL.Fmin (a, b) | NL.Fmax (a, b) ->
        go a;
        go b
    | NL.Sel (c, a, b) ->
        go c;
        go a;
        go b
  in
  go e;
  !n

(* Replace the [site]-th node (preorder) [f] offers a rewrite for;
   other matching nodes are left alone. *)
let rewrite_site f ~site e =
  let n = ref (-1) in
  let rec go e =
    let hit =
      match f e with
      | Some e' ->
          incr n;
          if !n = site then Some e' else None
      | None -> None
    in
    match hit with
    | Some e' -> e'
    | None -> (
        match e with
        | NL.Lit _ | NL.Get _ -> e
        | NL.Neg x -> NL.Neg (go x)
        | NL.Bin (o, a, b) -> NL.Bin (o, go a, go b)
        | NL.Fmin (a, b) -> NL.Fmin (go a, go b)
        | NL.Fmax (a, b) -> NL.Fmax (go a, go b)
        | NL.Sel (c, a, b) -> NL.Sel (go c, go a, go b))
  in
  go e

let ulp_flip c =
  NL.Lit (Int64.float_of_bits (Int64.add (Int64.bits_of_float c) 1L))

let coeff_site = function
  | NL.Lit c when c = c && c <> infinity && c <> neg_infinity ->
      Some (ulp_flip c)
  | _ -> None

let assoc_site = function
  | NL.Bin (NL.Add, NL.Bin (NL.Add, a, b), c) ->
      Some (NL.Bin (NL.Add, a, NL.Bin (NL.Add, b, c)))
  | _ -> None

let offset_site delta = function
  | NL.Get (NL.Unit_addr a) ->
      Some (NL.Get (NL.Unit_addr { a with shift = a.shift + delta }))
  | NL.Get (NL.Tab_addr a) ->
      Some (NL.Get (NL.Tab_addr { a with shift = a.shift + delta }))
  | _ -> None

let drop_site = function NL.Bin (NL.Add, a, _) -> Some a | _ -> None

(* [flavor]: 0 rewires the data handle, 1 the row base — both are
   wrong-slot reads the validator must pin as YS605. *)
let slot_site flavor = function
  | NL.Get (NL.Unit_addr a) ->
      Some
        (if flavor = 0 then NL.Get (NL.Unit_addr { a with data = a.data + 1 })
         else NL.Get (NL.Unit_addr { a with row = a.row + 1 }))
  | NL.Get (NL.Tab_addr a) ->
      Some
        (if flavor = 0 then NL.Get (NL.Tab_addr { a with data = a.data + 1 })
         else NL.Get (NL.Tab_addr { a with row = a.row + 1 }))
  | _ -> None

(* ------------------------------------------------------------------ *)

let mutate_exprs rng f (ast : NL.unit_ast) ~both =
  let sites = count_sites f ast.NL.row_expr in
  if sites = 0 then None
  else
    let site = Prng.int rng ~bound:sites in
    if both then
      Some
        { ast with
          NL.row_expr = rewrite_site f ~site ast.NL.row_expr;
          NL.point_expr = rewrite_site f ~site ast.NL.point_expr }
    else
      Some { ast with NL.point_expr = rewrite_site f ~site ast.NL.point_expr }

let mutate_ast rng cls (ast : NL.unit_ast) =
  match cls with
  | Coeff_perturb -> mutate_exprs rng coeff_site ast ~both:true
  | Swap_assoc -> mutate_exprs rng assoc_site ast ~both:true
  | Offset_off_by_one ->
      let delta = if Prng.bool rng then 1 else -1 in
      mutate_exprs rng (offset_site delta) ast ~both:true
  | Drop_term -> mutate_exprs rng drop_site ast ~both:true
  | Wrong_slot ->
      let flavor = Prng.int rng ~bound:2 in
      mutate_exprs rng (slot_site flavor) ast ~both:true
  | Point_row_diverge ->
      (* a real divergence miscompile: the scalar entry point drifts
         while the row loop stays correct *)
      let f e =
        match coeff_site e with Some _ as r -> r | None -> offset_site 1 e
      in
      mutate_exprs rng f ast ~both:false
  | Rename_registration ->
      Some { ast with NL.reg_name = ast.NL.reg_name ^ "-stale" }

let mutate ~seed cls src =
  match NL.parse src with
  | Error (msg, line) ->
      Error (Printf.sprintf "source does not parse (line %d: %s)" line msg)
  | Ok ast -> (
      let rng = Prng.create ~seed in
      match mutate_ast rng cls ast with
      | None ->
          Error
            (Printf.sprintf "no %s mutation site in this kernel"
               (class_name cls))
      | Some ast' -> Ok (NL.print ast'))

let corpus ~seed ~per_class src =
  List.concat_map
    (fun cls ->
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun i ->
          match mutate ~seed:(seed + (1000 * i)) cls src with
          | Error _ -> None
          | Ok m ->
              if Hashtbl.mem seen m then None
              else begin
                Hashtbl.replace seen m ();
                Some (cls, m)
              end)
        (List.init per_class Fun.id))
    classes
