(** Sweep checkpoints: per-candidate progress of an empirical tuning
    pass, serialised after every candidate so an interrupted sweep can
    resume without re-running completed work.

    The file is line-oriented text. Its header carries an opaque [key]
    identifying the sweep (machine, kernel, grid, space, fault seed); a
    checkpoint whose key does not match loads as empty, so a stale file
    can never leak results into a different sweep. Measured values are
    stored as hex floats and round-trip exactly. *)

type entry =
  | Done of { lups : float; runs : int; attempts : int }
      (** candidate measured successfully *)
  | Skipped of { reason : string; attempts : int }
      (** candidate permanently exhausted its retries *)

val load : path:string -> key:string -> (int * entry) list
(** Entries recorded for this sweep, in file order; empty if the file is
    missing, unreadable, or belongs to a different sweep. Malformed
    lines are dropped. *)

val save : path:string -> key:string -> (int * entry) list -> unit
(** Crash-safely replace the checkpoint: write a temp file, fsync it,
    rename it over the old checkpoint, fsync the containing directory.
    A crash at any point leaves either the old or the new checkpoint,
    never a torn one. *)

val render : key:string -> (int * entry) list -> string
(** The serialised form (exposed for tests). *)

val parse : key:string -> string -> (int * entry) list
(** Inverse of {!render} (lenient; exposed for tests). *)
