module Stats = Yasksite_util.Stats
module Prng = Yasksite_util.Prng

type t = {
  max_attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
  candidate_budget_s : float;
  pass_budget_s : float;
  repeats : int;
  mad_threshold : float;
  degrade_threshold : float;
}

let v ?(max_attempts = 3) ?(base_backoff_s = 0.05) ?(max_backoff_s = 5.0)
    ?(candidate_budget_s = infinity) ?(pass_budget_s = infinity)
    ?(repeats = 1) ?(mad_threshold = 3.5) ?(degrade_threshold = 0.5) () =
  if max_attempts < 1 then
    invalid_arg "Faults.Policy.v: max_attempts must be >= 1";
  if base_backoff_s < 0.0 then
    invalid_arg "Faults.Policy.v: base_backoff_s must be >= 0";
  if max_backoff_s < base_backoff_s then
    invalid_arg "Faults.Policy.v: max_backoff_s must be >= base_backoff_s";
  if candidate_budget_s <= 0.0 then
    invalid_arg "Faults.Policy.v: candidate_budget_s must be positive";
  if pass_budget_s <= 0.0 then
    invalid_arg "Faults.Policy.v: pass_budget_s must be positive";
  if repeats < 1 then invalid_arg "Faults.Policy.v: repeats must be >= 1";
  if mad_threshold <= 0.0 then
    invalid_arg "Faults.Policy.v: mad_threshold must be positive";
  if degrade_threshold < 0.0 || degrade_threshold > 1.0 then
    invalid_arg "Faults.Policy.v: degrade_threshold must be in [0, 1]";
  { max_attempts; base_backoff_s; max_backoff_s; candidate_budget_s;
    pass_budget_s; repeats; mad_threshold; degrade_threshold }

let default = v ()

(* Decorrelated jitter (Brooker, "Exponential Backoff And Jitter"): each
   delay is uniform in [base, 3 * previous], capped. *)
let backoff t ~rng ~prev =
  let hi = Float.max t.base_backoff_s (3.0 *. prev) in
  Float.min t.max_backoff_s
    (Prng.float_range rng ~lo:t.base_backoff_s ~hi)

let robust_combine t samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Faults.Policy.robust_combine: no samples";
  if n = 1 then samples.(0)
  else begin
    let med = Stats.median samples in
    let mad = Stats.mad samples in
    if mad = 0.0 then med
    else begin
      (* 1.4826 rescales the raw MAD to a normal-consistent sigma. *)
      let cutoff = t.mad_threshold *. 1.4826 *. mad in
      let kept =
        Array.of_list
          (List.filter
             (fun x -> abs_float (x -. med) <= cutoff)
             (Array.to_list samples))
      in
      if Array.length kept = 0 then med else Stats.median kept
    end
  end
