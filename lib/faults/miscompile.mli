(** Seeded miscompile injector for the YS6xx translation validator.

    Mutates the OCaml source {!Yasksite_stencil.Codegen} emits in ways
    a real code-generation bug would — a coefficient off by one ulp, a
    reassociated sum, an off-by-one address shift, a dropped FMA term,
    a wrong-slot read — and hands the mutant back as source. Every
    mutation is structural (parse into the validator's checked AST,
    rewrite one node, print back), so the mutant is always well-formed
    OCaml in the generated shape and the {e only} defect is the
    injected miscompile; the adversarial corpus in the test suite and
    CI proves each {!Yasksite_lint.Native_lint} rule actually fires.

    Deterministic by construction: a [(seed, class, source)] triple
    always yields the same mutant, via the shared splitmix64 streams
    ({!Yasksite_util.Prng}). *)

(** One class of injected miscompile. *)
type cls =
  | Coeff_perturb  (** one-ulp flip of a coefficient literal (YS601) *)
  | Swap_assoc
      (** reassociate a left-leaning [+.] chain rightward (YS602) *)
  | Offset_off_by_one  (** nudge one address shift by ±1 (YS604) *)
  | Drop_term  (** drop the trailing term of a sum (YS603) *)
  | Wrong_slot  (** read a different data handle or row base (YS605) *)
  | Point_row_diverge
      (** mutate [kern_point] only, leave [kern_row] intact (YS609) *)
  | Rename_registration  (** register under a non-ABI name (YS610) *)

val classes : cls list
(** Every class, in declaration order. *)

val class_name : cls -> string
(** Stable kebab-case name (CLI [--miscompile] argument). *)

val class_of_name : string -> cls option

val expected_code : cls -> string
(** The YS6xx code the validator is required to report for a mutant of
    this class. Further codes may fire alongside (an off-by-one shift
    on a boundary access also escapes the halo, say). *)

val mutate : seed:int -> cls -> string -> (string, string) result
(** [mutate ~seed cls src] is one mutant of the emitted kernel [src],
    or [Error reason] when [src] offers no mutation site for [cls]
    (e.g. no coefficient literals in an all-[1.0] stencil) or does not
    parse as a generated kernel. *)

val corpus : seed:int -> per_class:int -> string -> (cls * string) list
(** Up to [per_class] {e distinct} mutants of every class, tagged with
    their class. Classes without a site in this kernel contribute
    nothing — build the corpus over several kernels to cover every
    class. *)
