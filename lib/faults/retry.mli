(** Bounded retry loop with backoff and budget enforcement.

    Time flows through the injected [now] / [sleep] pair, so the loop is
    deterministic under a manual clock: [sleep] is expected to {e charge}
    the delay (advance virtual time or an accounting counter), not to
    block the process. *)

type 'a outcome =
  | Success of 'a * int  (** value and the attempt number that succeeded *)
  | Gave_up of { reason : string; attempts : int }
      (** attempts actually made (0 if a budget was already exhausted) *)

val run :
  policy:Policy.t ->
  rng:Yasksite_util.Prng.t ->
  now:(unit -> float) ->
  sleep:(float -> unit) ->
  ?deadline:float ->
  (unit -> ('a, string) result) ->
  'a outcome
(** Attempt [f] up to [policy.max_attempts] times, sleeping a
    decorrelated-jitter backoff between attempts. Gives up early when
    [now () > deadline] (the sweep-wide budget) or when the elapsed time
    since the first attempt exceeds [policy.candidate_budget_s]. Never
    attempts more than [policy.max_attempts] times, and every backoff
    delay is at most [policy.max_backoff_s]. *)
