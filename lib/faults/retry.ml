module Prng = Yasksite_util.Prng

type 'a outcome =
  | Success of 'a * int
  | Gave_up of { reason : string; attempts : int }

let run ~(policy : Policy.t) ~rng ~now ~sleep ?(deadline = infinity) f =
  let t_start = now () in
  let prev = ref policy.Policy.base_backoff_s in
  let rec go attempt =
    let t = now () in
    if t > deadline then
      Gave_up { reason = "pass budget exhausted"; attempts = attempt - 1 }
    else if t -. t_start > policy.Policy.candidate_budget_s then
      Gave_up { reason = "candidate budget exhausted"; attempts = attempt - 1 }
    else begin
      match f () with
      | Ok v -> Success (v, attempt)
      | Error reason ->
          if attempt >= policy.Policy.max_attempts then
            Gave_up { reason; attempts = attempt }
          else begin
            let d = Policy.backoff policy ~rng ~prev:!prev in
            prev := d;
            sleep d;
            go (attempt + 1)
          end
    end
  in
  go 1
