type entry =
  | Done of { lups : float; runs : int; attempts : int }
  | Skipped of { reason : string; attempts : int }

let magic = "yasksite-checkpoint v1"

let sanitize s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let render ~key entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s\n" magic key);
  List.iter
    (fun (idx, e) ->
      match e with
      | Done { lups; runs; attempts } ->
          (* %h round-trips the float exactly. *)
          Buffer.add_string buf
            (Printf.sprintf "done %d %d %d %h\n" idx runs attempts lups)
      | Skipped { reason; attempts } ->
          Buffer.add_string buf
            (Printf.sprintf "skip %d %d %s\n" idx attempts (sanitize reason)))
    entries;
  Buffer.contents buf

let parse ~key src =
  match String.split_on_char '\n' src with
  | [] -> []
  | header :: rest ->
      if String.trim header <> magic ^ " " ^ key then []
      else
        List.filter_map
          (fun line ->
            let line = String.trim line in
            if line = "" then None
            else if String.length line > 5 && String.sub line 0 5 = "done " then
              try
                Scanf.sscanf (String.sub line 5 (String.length line - 5))
                  "%d %d %d %h" (fun idx runs attempts lups ->
                    Some (idx, Done { lups; runs; attempts }))
              with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
            else if String.length line > 5 && String.sub line 0 5 = "skip " then
              try
                Scanf.sscanf (String.sub line 5 (String.length line - 5))
                  "%d %d %[^\n]" (fun idx attempts reason ->
                    Some (idx, Skipped { reason; attempts }))
              with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
            else None)
          rest

let load ~path ~key =
  if not (Sys.file_exists path) then []
  else
    match In_channel.with_open_text path In_channel.input_all with
    | src -> parse ~key src
    | exception Sys_error _ -> []

let save ~path ~key entries =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc (render ~key entries));
  Sys.rename tmp path
