type entry =
  | Done of { lups : float; runs : int; attempts : int }
  | Skipped of { reason : string; attempts : int }

let magic = "yasksite-checkpoint v1"

let sanitize s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let render ~key entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s\n" magic key);
  List.iter
    (fun (idx, e) ->
      match e with
      | Done { lups; runs; attempts } ->
          (* %h round-trips the float exactly. *)
          Buffer.add_string buf
            (Printf.sprintf "done %d %d %d %h\n" idx runs attempts lups)
      | Skipped { reason; attempts } ->
          Buffer.add_string buf
            (Printf.sprintf "skip %d %d %s\n" idx attempts (sanitize reason)))
    entries;
  Buffer.contents buf

let parse ~key src =
  match String.split_on_char '\n' src with
  | [] -> []
  | header :: rest ->
      if String.trim header <> magic ^ " " ^ key then []
      else
        List.filter_map
          (fun line ->
            let line = String.trim line in
            if line = "" then None
            else if String.length line > 5 && String.sub line 0 5 = "done " then
              try
                Scanf.sscanf (String.sub line 5 (String.length line - 5))
                  "%d %d %d %h" (fun idx runs attempts lups ->
                    Some (idx, Done { lups; runs; attempts }))
              with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
            else if String.length line > 5 && String.sub line 0 5 = "skip " then
              try
                Scanf.sscanf (String.sub line 5 (String.length line - 5))
                  "%d %d %[^\n]" (fun idx attempts reason ->
                    Some (idx, Skipped { reason; attempts }))
              with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
            else None)
          rest

let load ~path ~key =
  if not (Sys.file_exists path) then []
  else
    match In_channel.with_open_text path In_channel.input_all with
    | src -> parse ~key src
    | exception Sys_error _ -> []

(* Directory fsync is best-effort: some filesystems refuse fsync on a
   directory fd (EINVAL/EBADF), and a failure there only loses the
   rename's durability, never its atomicity. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_string fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let save ~path ~key entries =
  (* Crash-safe replacement: write the temp file, fsync it, rename over
     the old checkpoint, then fsync the containing directory. Without
     the two fsyncs a crash shortly after [save] returns could leave the
     renamed file empty or torn, or lose the rename itself — the rename
     alone only protects against crashes *during* the write. *)
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_string fd (render ~key entries);
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)
