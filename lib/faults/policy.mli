(** Resilience policy: how hard the tuner fights back against the fault
    plan — retry caps, backoff shape, wall budgets, and the robust
    aggregation of noisy repeated measurements. *)

type t = {
  max_attempts : int;  (** per-sample retry cap (>= 1; 1 = no retry) *)
  base_backoff_s : float;  (** first backoff delay *)
  max_backoff_s : float;  (** backoff cap *)
  candidate_budget_s : float;
      (** wall budget for one candidate, including backoff and timeout
          charges ([infinity] = unbounded) *)
  pass_budget_s : float;  (** wall budget for the whole sweep *)
  repeats : int;  (** measurement repeats per candidate (median-of-k) *)
  mad_threshold : float;
      (** reject samples farther than this many (normal-consistent) MADs
          from the median *)
  degrade_threshold : float;
      (** fraction of exhausted candidates above which the tuner falls
          back to analytic ranking *)
}

val v :
  ?max_attempts:int ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?candidate_budget_s:float ->
  ?pass_budget_s:float ->
  ?repeats:int ->
  ?mad_threshold:float ->
  ?degrade_threshold:float ->
  unit ->
  t
(** Constructor with validation. Defaults: 3 attempts, 0.05 s base /
    5 s max backoff, unbounded budgets, 1 repeat, 3.5 MADs, degrade at
    50% exhausted. *)

val default : t

val backoff : t -> rng:Yasksite_util.Prng.t -> prev:float -> float
(** Next backoff delay with decorrelated jitter: uniform in
    [\[base, 3 * prev\]], capped at [max_backoff_s]. *)

val robust_combine : t -> float array -> float
(** Median of the samples that survive MAD-based outlier rejection
    (singletons pass through; a zero MAD short-circuits to the median).
    Raises [Invalid_argument] on an empty sample set. *)
