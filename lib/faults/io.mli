(** Seeded I/O fault plan: the filesystem counterpart of {!Plan}.

    The persistent store ({!Yasksite_store.Store}) routes every syscall
    of a commit through one {!draw}, so a deterministic plan can make an
    individual write run out of space ([ENOSPC]), fail with [EIO], land
    only a prefix of its buffer (a torn write that {e reports} success),
    or kill the simulated process between two syscalls — precisely the
    crash points a crash-consistency property has to enumerate.

    All randomness derives from the plan seed through
    {!Yasksite_util.Prng}: equal plans draw bit-identical fault
    sequences, and the uniforms consumed per operation are independent
    of earlier outcomes, so fault streams never shift under replay. *)

(** A guarded syscall class, in the order a store commit issues them. *)
type op =
  | Mkdir
  | Open_write
  | Write
  | Fsync
  | Read
  | Rename
  | Fsync_dir
  | Unlink

val op_name : op -> string

type failure = Enospc | Eio

val failure_name : failure -> string

(** What happens to one guarded syscall. *)
type outcome =
  | Proceed  (** the syscall executes normally *)
  | Torn of float
      (** a write lands only this fraction of its buffer but reports
          success (the classic torn-write hazard) *)
  | Fail of failure  (** the syscall fails with this error *)
  | Crash  (** the process dies here: {!guard} raises {!Crashed} *)

exception Crashed of { op : op; at : int }
(** Simulated process death. Deliberately NOT absorbed by the store's
    degraded-mode handling: the crash-consistency harness catches it in
    place of a real kill. *)

type plan = {
  seed : int;
  enospc_rate : float;  (** per-allocation probability of [ENOSPC] *)
  eio_rate : float;  (** per-access probability of [EIO] *)
  torn_rate : float;  (** per-write probability of a torn write *)
  crash_at : int option;
      (** deterministic crash at the n-th guarded syscall (1-based);
          the enumeration knob of the crash-consistency property *)
}

val plan :
  ?seed:int ->
  ?enospc_rate:float ->
  ?eio_rate:float ->
  ?torn_rate:float ->
  ?crash_at:int ->
  unit ->
  plan
(** Constructor with validation: rates in [0, 1], [crash_at >= 1].
    Defaults are all-zero (no faults, seed 42). *)

val none : plan
(** The all-zero plan: every syscall proceeds. *)

val is_benign : plan -> bool

val describe : plan -> string

type t
(** Mutable injector: plan, seeded stream, op counter. *)

val injector : plan -> t

val real : unit -> t
(** A pass-through injector (the {!none} plan): real I/O, no faults. *)

val draw : t -> op -> outcome
(** Outcome of the next guarded syscall of class [op]. *)

val guard : t -> op -> unit
(** [draw] specialised for callers that need no torn-write handling:
    [Proceed]/[Torn] return unit, [Fail] raises [Failure], [Crash]
    raises {!Crashed}. *)

val ops : t -> int
(** Guarded syscalls so far. *)

val faults : t -> int
(** Drawn outcomes that were faults (fail, torn or crash). *)
