(* Seeded I/O fault plan: the filesystem counterpart of [Plan]. The
   persistent store routes every syscall of a commit through one guarded
   draw, so a deterministic plan can make any individual write run out
   of space, return EIO, land only a prefix of its buffer ("torn"
   write), or kill the process between two syscalls — the exact crash
   points a crash-consistency proof has to enumerate. All randomness
   derives from the plan seed through {!Yasksite_util.Prng}; equal
   plans draw bit-identical fault sequences. *)

type op =
  | Mkdir
  | Open_write
  | Write
  | Fsync
  | Read
  | Rename
  | Fsync_dir
  | Unlink

let op_name = function
  | Mkdir -> "mkdir"
  | Open_write -> "open"
  | Write -> "write"
  | Fsync -> "fsync"
  | Read -> "read"
  | Rename -> "rename"
  | Fsync_dir -> "fsync-dir"
  | Unlink -> "unlink"

type failure = Enospc | Eio

let failure_name = function Enospc -> "ENOSPC" | Eio -> "EIO"

type outcome =
  | Proceed
  | Torn of float
  | Fail of failure
  | Crash

exception Crashed of { op : op; at : int }

let () =
  Printexc.register_printer (function
    | Crashed { op; at } ->
        Some
          (Printf.sprintf "Yasksite_faults.Io.Crashed(%s, op %d)" (op_name op)
             at)
    | _ -> None)

type plan = {
  seed : int;
  enospc_rate : float;
  eio_rate : float;
  torn_rate : float;
  crash_at : int option;
}

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Io.plan: %s must be in [0, 1]" name)

let plan ?(seed = 42) ?(enospc_rate = 0.0) ?(eio_rate = 0.0)
    ?(torn_rate = 0.0) ?crash_at () =
  check_rate "enospc_rate" enospc_rate;
  check_rate "eio_rate" eio_rate;
  check_rate "torn_rate" torn_rate;
  (match crash_at with
  | Some n when n < 1 -> invalid_arg "Io.plan: crash_at must be >= 1"
  | _ -> ());
  { seed; enospc_rate; eio_rate; torn_rate; crash_at }

let none = plan ()

let is_benign p =
  p.enospc_rate = 0.0 && p.eio_rate = 0.0 && p.torn_rate = 0.0
  && p.crash_at = None

let describe p =
  if is_benign p then "io: benign"
  else
    Printf.sprintf "io: seed=%d enospc=%.2f eio=%.2f torn=%.2f%s" p.seed
      p.enospc_rate p.eio_rate p.torn_rate
      (match p.crash_at with
      | None -> ""
      | Some n -> Printf.sprintf " crash@%d" n)

type t = {
  plan : plan;
  rng : Yasksite_util.Prng.t;
  mutable ops : int;
  mutable faults : int;
}

let injector p = { plan = p; rng = Yasksite_util.Prng.create ~seed:p.seed; ops = 0; faults = 0 }

let real () = injector none

let ops t = t.ops

let faults t = t.faults

(* Which failure modes apply to which syscalls: allocation-backed writes
   can hit ENOSPC; every medium access can hit EIO; only writes tear. *)
let can_enospc = function Open_write | Write | Mkdir -> true | _ -> false

let can_eio = function
  | Write | Fsync | Read | Rename | Fsync_dir -> true
  | _ -> false

let can_tear = function Write -> true | _ -> false

let draw t op =
  t.ops <- t.ops + 1;
  match t.plan.crash_at with
  | Some n when t.ops >= n ->
      t.faults <- t.faults + 1;
      Crash
  | _ ->
      if is_benign t.plan then Proceed
      else begin
        (* One uniform per applicable mode, drawn unconditionally so the
           stream consumed per op is independent of earlier outcomes. *)
        let u_enospc = Yasksite_util.Prng.float t.rng in
        let u_eio = Yasksite_util.Prng.float t.rng in
        let u_torn = Yasksite_util.Prng.float t.rng in
        let u_frac = Yasksite_util.Prng.float t.rng in
        if can_enospc op && u_enospc < t.plan.enospc_rate then begin
          t.faults <- t.faults + 1;
          Fail Enospc
        end
        else if can_eio op && u_eio < t.plan.eio_rate then begin
          t.faults <- t.faults + 1;
          Fail Eio
        end
        else if can_tear op && u_torn < t.plan.torn_rate then begin
          t.faults <- t.faults + 1;
          Torn u_frac
        end
        else Proceed
      end

let guard t op =
  match draw t op with
  | Proceed | Torn _ -> ()
  | Fail f -> failwith (Printf.sprintf "io fault: %s on %s" (failure_name f) (op_name op))
  | Crash -> raise (Crashed { op; at = t.ops })
