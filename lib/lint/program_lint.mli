(** Static checks on stencil programs — the [YS7xx] rule family.

    A program is a DAG of named stages ({!Yasksite_stencil.Program});
    these rules prove it executable before the engine materializes any
    intermediate:

    - [YS700] (error): the program source does not parse, or a stage is
      structurally malformed (e.g. reads no field);
    - [YS701] (error): a stage reads a field that is neither a program
      input nor a stage;
    - [YS702] (error): stage dependencies form a cycle;
    - [YS703] (error): duplicate input/stage name, or a name the
      expression language reserves (builtins, [f<digits>]);
    - [YS704] (error): a supplied input grid cannot hold the program's
      accumulated halo requirement (the {e halo overrun} of a
      consumer chain), or a program input was not supplied;
    - [YS705] (error): a declared output names no stage;
    - [YS706] (warning): a dead stage — no output transitively reads it.

    Each stage additionally runs the single-kernel [YS1xx] rules
    ({!Kernel_lint}), with findings prefixed by the stage name. *)

val program : Yasksite_stencil.Program.t -> Diagnostic.t list
(** Lint an already-constructed program: the DAG rules
    (YS701–YS706) plus the per-stage kernel rules. *)

val source : string -> Diagnostic.t list
(** Lint a program given in the textual format. Parse failures become a
    single [YS700] finding carrying the 1-based line; otherwise
    {!program} runs. Never raises. *)

val grids :
  Yasksite_stencil.Program.t ->
  inputs:(string * Yasksite_grid.Grid.t) list ->
  Diagnostic.t list
(** Judge concrete input grids against the program's halo plan: every
    program input supplied (YS704), extents agreeing across inputs
    (YS409), and each halo at least the accumulated requirement
    (YS704). The executor gates on this before allocating
    intermediates. *)
