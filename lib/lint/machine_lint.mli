(** Static checks on machine descriptions — the [YS2xx] rule family.

    The textual entry points work on the {e raw} key/value sections (via
    {!Yasksite_arch.Machine_file.parse_raw}) so that defects which
    {!Yasksite_arch.Machine.v} would reject outright — the very things
    worth diagnosing — still produce located findings instead of a bare
    exception:

    - [YS200] (error): the file does not parse, a required key is
      missing or malformed, or an enum value is unknown;
    - [YS201] (error): cache capacities shrink outward (L2 smaller than
      L1, ...) — the hierarchy is non-monotone;
    - [YS202] (error): a bandwidth is zero or negative;
    - [YS203] (error): a latency is zero or negative;
    - [YS204] (warning): cache line size and the SIMD vector fold are
      mutually misaligned (neither divides the other), so folded
      vectors straddle line boundaries;
    - [YS205] (error): no [\[cache\]] sections — an empty hierarchy;
    - [YS206] (warning): latencies do not increase outward;
    - [YS207] (error): non-positive or inconsistent geometry (core
      counts, set counts, per-level line sizes);
    - [YS208] (warning): a key is given twice in one section (the last
      value silently wins). *)

val source : string -> Diagnostic.t list
(** Lint the text of a [*.machine] file. Findings carry
    {!Diagnostic.Line} locations so {!Diagnostic.render} can underline
    the offending line. Never raises. *)

val file : string -> Diagnostic.t list
(** [file path] reads and lints a [*.machine] file; an unreadable path
    becomes a single [YS200] finding. Never raises. *)

val machine : Yasksite_arch.Machine.t -> Diagnostic.t list
(** Lint an already-constructed machine (presets, DSL-built values).
    Only the rules not already enforced by the validating constructors
    remain observable: [YS203], [YS204] and [YS206], with
    {!Diagnostic.Field} locations. *)
