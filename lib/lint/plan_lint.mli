(** Plan-IR dataflow verifier: the YS5xx rule family.

    Abstract interpretation over the flat kernel plan
    ({!Yasksite_stencil.Plan}) — the last IR before the engine's
    unchecked drivers run it — proving, per (plan × layout × halo)
    tuple:

    - YS500 slot/field references stay inside the access table and the
      declared field range;
    - YS501 every access stays inside its allocation across the full
      iteration space of the given grids (|offset| ≤ halo per
      dimension; extent-independent, so the verdict transfers across
      problem sizes);
    - YS502 postfix programs are stack-safe: no underflow, and the
      declared depth (which sizes the driver's unchecked stack) equals
      the measured maximum;
    - YS503 dead loads, YS504 duplicate access-table entries;
    - YS505 the program leaves exactly one result on the stack (dead
      or missing computation otherwise);
    - YS506 unresolved symbolic coefficients;
    - YS507 statically reachable division by a provably-zero operand,
      YS508 provably-zero dead arithmetic (constant propagation);
    - YS510 the plan's own FLOP/load/store counts agree with the
      expression-level {!Analysis} the ECM model is fed.

    A clean verdict is what {!Yasksite_engine}'s certification layer
    turns into a safety certificate, after additionally
    cross-validating the counts against a traced execution (YS511);
    the certificate selects the engine's unchecked fast path. The
    dynamic counterpart of a YS5xx error is a YS45x sanitizer trap (or
    a bind-time refusal) when the plan is forced through the engine. *)

module Plan := Yasksite_stencil.Plan
module Analysis := Yasksite_stencil.Analysis
module Grid := Yasksite_grid.Grid

type stack_report = {
  max_depth : int;
      (** highest stack occupancy reached before any fault *)
  final : int;
      (** values left after the last instruction; [-1] on underflow *)
  underflow_at : int option;
      (** first instruction index popping an empty stack *)
}

val simulate : Plan.instr array -> stack_report
(** Abstract stack interpretation of a postfix body. *)

val measured_depth : Plan.instr array -> int option
(** The interpreter-measured maximum stack depth, when the program is
    well-formed ([Some max_depth] iff there is no underflow and exactly
    one value remains); the reference {!Plan.Program} [depth] must
    equal. *)

val structure : Plan.t -> Diagnostic.t list
(** The grid-free rules: YS500 (dangling slots), YS502 (stack safety),
    YS503 (dead loads), YS504 (duplicate slots), YS505 (missing or
    unconsumed results), YS506 (unresolved [Sym]s), YS507 (division by
    provable zero), YS508 (provably-zero arithmetic). *)

val bounds :
  Plan.t -> inputs:Grid.t array -> output:Grid.t -> Diagnostic.t list
(** YS501: field-count/rank agreement with the concrete grids and the
    allocation-safety proof |offset| ≤ halo per dimension. *)

type counts = {
  adds : int;
  muls : int;
  divs : int;
  flops : int;
  loads : int;  (** access-table slots — distinct reads per update *)
  stores : int;  (** always 1 *)
}

val counts : Plan.t -> counts
(** The plan's own per-update work, counted from the body the engine
    actually executes (negations are free, as in {!Analysis}). *)

val counts_agree : Plan.t -> Analysis.t -> Diagnostic.t list
(** YS510: loads/stores and the access set must match {!Analysis}
    exactly; flops and divisions may be lower (constant folding) but
    never higher. *)

val check :
  ?info:Analysis.t -> Plan.t -> inputs:Grid.t array -> output:Grid.t ->
  Diagnostic.t list
(** The full static pass: {!structure} @ {!bounds} (@ {!counts_agree}
    when [info] is given), deduplicated. *)

val safe :
  ?info:Analysis.t -> Plan.t -> inputs:Grid.t array -> output:Grid.t ->
  bool
(** [true] iff {!check} reports no errors — the predicate certification
    starts from. *)

val dedup : Diagnostic.t list -> Diagnostic.t list
(** Drop findings whose (code, message) repeats an earlier one. *)
