(** Schedule-legality analysis: the YS4xx rule family.

    Dependence-distance reasoning over a kernel's {!Analysis.t} access
    set that statically proves or refutes, per (spec, config, grids,
    pool-width) candidate:

    - wavefront legality — stagger vs. the stencil's forward reach
      along the streamed dimension (YS400), single input field (YS401),
      static halos (YS402);
    - input/output aliasing under a non-pointwise schedule (YS403);
    - halo sufficiency of the caller's grids (YS404);
    - fold/layout agreement (YS405) and fold overflow (YS408);
    - parallel-slice disjointness and coverage (YS406);
    - rank/extent agreement between schedule and grids (YS409);
    - wasted pool width (YS407, hint).

    Every rule has a dynamic counterpart in the engine's shadow-memory
    sanitizer (YS45x traps): a schedule judged legal here must run
    trap-free, and a schedule rejected here traps when forced through
    the engine with gates disabled. *)

module Analysis := Yasksite_stencil.Analysis
module Config := Yasksite_ecm.Config
module Grid := Yasksite_grid.Grid

type boundary = [ `Static | `Periodic ]
(** How the caller maintains the halo between sweeps. *)

val effective_stagger : Analysis.t -> Config.t -> int
(** The per-step plane shift a wavefront schedule will execute with:
    the config's [wavefront_stagger], or the engine default
    (streamed-dimension radius + 1) when unset. *)

val schedule :
  ?pool_width:int -> ?boundary:boundary -> Analysis.t -> dims:int array ->
  Config.t -> Diagnostic.t list
(** Judge one candidate config against a kernel and grid extents —
    the grid-free rules (YS400/401/402/407/408/409). [boundary]
    defaults to [`Static]; [pool_width] enables the YS407 hint. *)

val wavefront_rules :
  Analysis.t -> dims:int array -> Config.t -> Diagnostic.t list
(** The subset gating an explicit [Wavefront.steps] call: stagger
    (YS400), single field required at any depth (YS401), rank (YS409). *)

val grids :
  ?extend:int array ->
  Analysis.t -> Config.t -> inputs:Grid.t array -> output:Grid.t ->
  Diagnostic.t list
(** Judge concrete grids for one sweep: extent agreement (YS409),
    aliasing (YS403), halo sufficiency (YS404), fold/layout agreement
    (YS405). Structural YS409 failures short-circuit the rest.

    [extend] widens the judged iteration space to [[-ext, dims+ext)]
    per dimension (an {e extended sweep}, used by the program executor
    to compute intermediate stages into their halos): inputs must then
    hold [radius + ext] halo cells and the output [ext] — both reported
    as YS404. *)

val partition :
  dims:int array -> (int array * int array) list -> Diagnostic.t list
(** Check that [[lo, hi)] boxes partition the iteration space [dims]:
    in bounds, pairwise disjoint, and jointly covering (YS406). *)

val legal :
  ?pool_width:int -> ?boundary:boundary -> Analysis.t -> dims:int array ->
  Config.t -> bool
(** [true] iff {!schedule} reports no errors — the predicate the tuner
    and advisor use to prune candidates before scoring or execution. *)

val space :
  ?pool_width:int -> ?boundary:boundary -> Analysis.t -> dims:int array ->
  Config.t list -> Diagnostic.t list
(** Lint a whole search space; findings deduplicated by (code,
    message). *)

val dedup : Diagnostic.t list -> Diagnostic.t list
(** Drop findings whose (code, message) repeats an earlier one. *)
