(* Program-level lint: the YS7xx DAG rules over Stencil.Program, plus
   the per-stage YS1xx kernel rules. Grid-free except [grids], which
   judges supplied input grids against the accumulated halo plan. *)

module P = Yasksite_stencil.Program
module Grid = Yasksite_grid.Grid
module D = Diagnostic

let dims_str a =
  String.concat "x" (Array.to_list (Array.map string_of_int a))

let of_issue = function
  | P.Bad_name { name; reason } ->
      D.errorf ~code:"YS703" "name %S is unusable: %s" name reason
  | P.Duplicate_name name ->
      D.errorf ~code:"YS703" "name %S is defined more than once" name
  | P.Undefined_field { stage; field } ->
      D.errorf ~code:"YS701"
        "stage %s reads %S, which is neither an input nor a stage" stage field
  | P.Cycle names ->
      D.errorf ~code:"YS702" "stage dependencies form a cycle: %s"
        (String.concat " -> " (names @ [ List.hd names ]))
  | P.Output_unknown name ->
      D.errorf ~code:"YS705" "output %S names no stage" name
  | P.Dead_stage name ->
      D.warningf ~code:"YS706" "stage %s contributes to no output" name

(* The per-stage kernel rules, findings prefixed with the stage name.
   A stage too malformed for a Spec (reads no field) is a YS700. *)
let stage_findings p (s : P.stage) =
  match P.stage_spec p s with
  | exception Invalid_argument msg ->
      [ D.errorf ~code:"YS700" "stage %s is malformed: %s" s.name msg ]
  | spec ->
      List.map
        (fun (d : D.t) ->
          { d with message = Printf.sprintf "stage %s: %s" s.name d.message })
        (Kernel_lint.spec spec)

let program p =
  let dag = List.map of_issue (P.issues p) in
  let stages =
    List.concat_map (stage_findings p) (Array.to_list p.P.stages)
  in
  dag @ stages

let source src =
  match P.parse src with
  | Error (line, msg) ->
      [ D.errorf ~loc:(D.Line line) ~code:"YS700" "%s" msg ]
  | Ok p -> program p

let grids p ~inputs =
  let no_plan =
    (* A cyclic or non-closed program has no halo plan; the YS701/702/705
       findings from [program] are the actionable ones. *)
    List.exists
      (function
        | P.Cycle _ | P.Undefined_field _ | P.Output_unknown _ -> true
        | _ -> false)
      (P.issues p)
  in
  if no_plan then []
  else
    let hp = P.halo_plan p in
      let ds = ref [] in
      let dims = ref None in
      List.iter
        (fun (name, need) ->
          match List.assoc_opt name inputs with
          | None ->
              ds :=
                D.errorf ~code:"YS704" "program input %S was not supplied"
                  name
                :: !ds
          | Some g ->
              (match !dims with
              | None -> dims := Some (Grid.dims g)
              | Some d ->
                  if Grid.dims g <> d then
                    ds :=
                      D.errorf ~code:"YS409"
                        "input %S is %s but other inputs are %s" name
                        (dims_str (Grid.dims g))
                        (dims_str d)
                      :: !ds);
              let have = Grid.halo g in
              if Array.length have <> Array.length need then
                ds :=
                  D.errorf ~code:"YS409"
                    "input %S has rank %d but the program has rank %d" name
                    (Array.length have) (Array.length need)
                  :: !ds
              else
                Array.iteri
                  (fun d r ->
                    if have.(d) < r then
                      ds :=
                        D.errorf ~code:"YS704"
                          "input %S has a halo of %d in dimension %d but \
                           the program's consumer chains reach %d cells out"
                          name have.(d) d r
                        :: !ds)
                  need)
        hp.P.input_halo;
      List.rev !ds
