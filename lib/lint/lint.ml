module Diagnostic = Diagnostic
module Kernel = Kernel_lint
module Machine = Machine_lint
module Config = Config_lint
module Schedule = Schedule_lint
module Plan = Plan_lint
module Native = Native_lint
module Program = Program_lint

let rules =
  [ ("YS100", Diagnostic.Error, "kernel source does not parse");
    ("YS101", Diagnostic.Error, "declared input field is never read");
    ("YS102", Diagnostic.Warning, "duplicate reference (CSE-merged load)");
    ("YS103", Diagnostic.Error, "division by literal zero");
    ("YS104", Diagnostic.Hint, "division by a symbolic coefficient");
    ("YS105", Diagnostic.Hint, "radius-0 kernel (point-wise map)");
    ("YS106", Diagnostic.Warning, "asymmetric footprint along the streamed \
                                   dimension");
    ("YS107", Diagnostic.Error, "expression reads no field");
    ("YS108", Diagnostic.Error, "reference outside the declared field range");
    ("YS200", Diagnostic.Error, "machine file does not parse / bad key");
    ("YS201", Diagnostic.Error, "cache capacities shrink outward");
    ("YS202", Diagnostic.Error, "non-positive bandwidth");
    ("YS203", Diagnostic.Error, "non-positive latency");
    ("YS204", Diagnostic.Warning, "cache line / vector fold misalignment");
    ("YS205", Diagnostic.Error, "no cache levels");
    ("YS206", Diagnostic.Warning, "latencies do not increase outward");
    ("YS207", Diagnostic.Error, "non-positive or inconsistent geometry");
    ("YS208", Diagnostic.Warning, "duplicate key in a section");
    ("YS301", Diagnostic.Error, "block working set exceeds every cache \
                                 level");
    ("YS302", Diagnostic.Warning, "fold extent does not divide the grid");
    ("YS303", Diagnostic.Error, "empty search space");
    ("YS304", Diagnostic.Warning, "singleton search space");
    ("YS305", Diagnostic.Error, "block/fold/grid rank mismatch");
    ("YS306", Diagnostic.Warning, "wavefront combined with streaming stores");
    ("YS307", Diagnostic.Warning, "more threads than cores");
    ("YS308", Diagnostic.Warning, "fold product differs from SIMD width");
    ("YS309", Diagnostic.Warning, "wavefront window exceeds the last-level \
                                   cache");
    ("YS400", Diagnostic.Error, "wavefront stagger below the dependence \
                                 distance (forward reach+1)");
    ("YS401", Diagnostic.Error, "temporal wavefront over a multi-field \
                                 kernel");
    ("YS402", Diagnostic.Error, "temporal wavefront over periodic \
                                 boundaries");
    ("YS403", Diagnostic.Error, "input aliases the output under a \
                                 non-pointwise schedule");
    ("YS404", Diagnostic.Error, "input halo thinner than the stencil \
                                 radius");
    ("YS405", Diagnostic.Error, "schedule fold does not match the grid \
                                 layout");
    ("YS406", Diagnostic.Error, "parallel slices do not partition the \
                                 iteration space");
    ("YS407", Diagnostic.Hint, "fewer block columns than pool domains");
    ("YS408", Diagnostic.Error, "fold extent exceeds the grid extent");
    ("YS409", Diagnostic.Error, "rank/extent mismatch between schedule and \
                                 grids");
    ("YS450", Diagnostic.Error, "sanitizer: overlapping writes to one cell");
    ("YS451", Diagnostic.Error, "sanitizer: read races a write of the same \
                                 pass");
    ("YS452", Diagnostic.Error, "sanitizer: read of a stale cell version");
    ("YS453", Diagnostic.Error, "sanitizer: access outside the allocation");
    ("YS454", Diagnostic.Error, "sanitizer: output cell left unwritten by \
                                 the sweep");
    ("YS455", Diagnostic.Error, "sanitizer: read of a stale or \
                                 uninitialised halo");
    ("YS456", Diagnostic.Error, "sanitizer: executed layout differs from \
                                 the scheduled fold");
    ("YS500", Diagnostic.Error, "plan references a slot or field outside \
                                 the access table");
    ("YS501", Diagnostic.Error, "plan access escapes the allocation \
                                 (offset exceeds the halo)");
    ("YS502", Diagnostic.Error, "plan program is not stack-safe \
                                 (underflow or wrong declared depth)");
    ("YS503", Diagnostic.Warning, "plan access-table slot is never read \
                                   (dead load)");
    ("YS504", Diagnostic.Warning, "duplicate plan access-table entries");
    ("YS505", Diagnostic.Error, "plan program leaves no result or dead \
                                 values on the stack");
    ("YS506", Diagnostic.Error, "plan references an unresolved symbolic \
                                 coefficient");
    ("YS507", Diagnostic.Error, "plan divides by a provably zero operand");
    ("YS508", Diagnostic.Warning, "provably-zero plan arithmetic (dead \
                                   term or group)");
    ("YS510", Diagnostic.Error, "plan FLOP/byte counts disagree with the \
                                 kernel analysis");
    ("YS511", Diagnostic.Error, "certification: traced traffic disagrees \
                                 with the certified counts");
    ("YS600", Diagnostic.Error, "emitted kernel unit does not parse / \
                                 deviates from the generated shape");
    ("YS601", Diagnostic.Error, "coefficient literal does not round-trip \
                                 the plan coefficient bit-exactly");
    ("YS602", Diagnostic.Error, "kernel expression structure diverges from \
                                 the plan (operation order/associativity)");
    ("YS603", Diagnostic.Error, "dropped or extra term in an emitted sum");
    ("YS604", Diagnostic.Error, "address shift disagrees with the \
                                 specialization variant");
    ("YS605", Diagnostic.Error, "load reads the wrong access-table slot");
    ("YS606", Diagnostic.Error, "addressing mode disagrees with the \
                                 variant's unit-stride flag");
    ("YS607", Diagnostic.Error, "emitted access escapes the certified halo \
                                 bounds");
    ("YS608", Diagnostic.Error, "output addressing disagrees with the \
                                 variant (pad or stride mode)");
    ("YS609", Diagnostic.Error, "kern_point and kern_row compute different \
                                 expressions");
    ("YS610", Diagnostic.Error, "kernel registration name/ABI mismatch");
    ("YS611", Diagnostic.Error, "prelude binds the wrong source slot");
    ("YS612", Diagnostic.Error, "plan cannot be symbolically evaluated for \
                                 validation");
    ("YS700", Diagnostic.Error, "program source does not parse / malformed \
                                 stage");
    ("YS701", Diagnostic.Error, "stage reads a field that is neither an \
                                 input nor a stage");
    ("YS702", Diagnostic.Error, "stage dependencies form a cycle");
    ("YS703", Diagnostic.Error, "duplicate or reserved input/stage name");
    ("YS704", Diagnostic.Error, "input grid halo thinner than the \
                                 program's accumulated requirement");
    ("YS705", Diagnostic.Error, "declared output names no stage");
    ("YS706", Diagnostic.Warning, "dead stage (no output reads it)") ]

let exit_code = Diagnostic.exit_code

exception Gate_error of string

let () =
  Printexc.register_printer (function
    | Gate_error msg -> Some ("Lint.Gate_error: " ^ msg)
    | _ -> None)

let gate ~context diagnostics =
  match Diagnostic.errors diagnostics with
  | [] -> ()
  | errs ->
      raise
        (Gate_error
           (Printf.sprintf "%s: %s\n%s" context
              (Diagnostic.summary diagnostics)
              (String.trim (Diagnostic.render_list errs))))
