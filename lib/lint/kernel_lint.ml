module Expr = Yasksite_stencil.Expr
module Spec = Yasksite_stencil.Spec
module Parser = Yasksite_stencil.Parser
module D = Diagnostic

(* A kernel under analysis: the expression plus whatever location
   information the input form could provide. DSL-built specs have no
   source text, so every location degrades to [No_loc]; parser-sourced
   kernels carry the spans collected by [Parser.parse_expr_located]. *)
type ctx = {
  rank : int;
  n_fields : int;
  declared : bool;  (* n_fields was given, not inferred from the refs *)
  expr : Expr.t;
  refs : (Expr.access * D.loc) list;  (* left-to-right source order *)
  divisors : (Expr.t * D.loc) list;
}

let span (pos, stop) = D.Span { pos; stop }

let rec is_literal_zero = function
  | Expr.Const c -> c = 0.0
  | Expr.Neg x -> is_literal_zero x
  | _ -> false

let rec collect_divisors acc = function
  | Expr.Const _ | Expr.Coeff _ | Expr.Ref _ -> acc
  | Expr.Neg x -> collect_divisors acc x
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Min (a, b)
  | Expr.Max (a, b) ->
      collect_divisors (collect_divisors acc a) b
  | Expr.Div (a, b) ->
      collect_divisors (collect_divisors ((b, D.No_loc) :: acc) a) b
  | Expr.Select (c, a, b) ->
      collect_divisors (collect_divisors (collect_divisors acc c) a) b

(* ------------------------------------------------------------------ *)
(* Rules *)

(* YS101: every declared input field must be read somewhere. *)
let rule_unused_fields ctx =
  let read =
    List.sort_uniq compare
      (List.map (fun ((a : Expr.access), _) -> a.field) ctx.refs)
  in
  List.concat_map
    (fun f ->
      if List.mem f read then []
      else begin
        (* When the field count was inferred, the declaration comes from
           some reference to a higher field — point the caret there. *)
        let loc =
          if ctx.declared then D.No_loc
          else
            match
              List.find_opt
                (fun ((a : Expr.access), _) -> a.field > f)
                ctx.refs
            with
            | Some (_, l) -> l
            | None -> D.No_loc
        in
        [ D.errorf ~loc ~code:"YS101"
            "input field f%d is declared but never read (dead input stream \
             inflates the code balance)"
            f ]
      end)
    (List.init ctx.n_fields (fun i -> i))

(* YS102: the same access appearing twice defeats the post-CSE load-set
   accounting (Analysis deduplicates accesses before counting loads). *)
let rule_duplicate_refs ctx =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun ((a : Expr.access), loc) ->
      if Hashtbl.mem seen a then
        [ D.warningf ~loc ~code:"YS102"
            "duplicate reference %s: repeated loads are merged by CSE, so \
             operation counts and load counts diverge"
            (Expr.access_to_c a) ]
      else begin
        Hashtbl.add seen a ();
        []
      end)
    ctx.refs

(* YS103/YS104: divisions that cannot be modeled. *)
let rule_divisions ctx =
  List.concat_map
    (fun (divisor, loc) ->
      if is_literal_zero divisor then
        [ D.errorf ~loc ~code:"YS103" "division by literal zero" ]
      else
        match Expr.coeff_names divisor with
        | [] -> []
        | names ->
            [ D.hintf ~loc ~code:"YS104"
                "division by symbolic coefficient %s: resolve coefficients \
                 before modeling so the divide can be strength-reduced"
                (String.concat ", " names) ])
    ctx.divisors

(* YS105: a radius-0 "stencil" is a point-wise map; blocking and
   wavefront options are meaningless for it. *)
let rule_degenerate ctx =
  match ctx.refs with
  | [] -> []
  | refs ->
      if
        List.for_all
          (fun ((a : Expr.access), _) ->
            Array.for_all (fun d -> d = 0) a.offsets)
          refs
      then
        [ D.hintf ~code:"YS105"
            "radius-0 kernel reads no neighbors: this is a point-wise map, \
             spatial/temporal blocking cannot help it" ]
      else []

(* YS106: wavefront scheduling shifts successive timesteps by a fixed
   [r0 + 1] along the streamed dimension, assuming a symmetric halo
   there; an asymmetric footprint makes temporal blocking illegal or
   wasteful (Engine.Wavefront uses the absolute radius). *)
let rule_asymmetric ctx =
  match ctx.refs with
  | [] -> []
  | refs ->
      let fwd = ref 0 and bwd = ref 0 in
      let fwd_loc = ref D.No_loc and bwd_loc = ref D.No_loc in
      List.iter
        (fun ((a : Expr.access), loc) ->
          let d = a.offsets.(0) in
          if d > !fwd then begin
            fwd := d;
            fwd_loc := loc
          end;
          if -d > !bwd then begin
            bwd := -d;
            bwd_loc := loc
          end)
        refs;
      if !fwd <> !bwd then
        [ D.warningf
            ~loc:(if !fwd > !bwd then !fwd_loc else !bwd_loc)
            ~code:"YS106"
            "asymmetric footprint along the streamed dimension (forward \
             radius %d, backward radius %d): wavefront/temporal blocking \
             assumes a symmetric halo and will over-shift"
            !fwd !bwd ]
      else []

(* YS108: references outside the declared field range. *)
let rule_field_range ctx =
  if not ctx.declared then []
  else
    List.concat_map
      (fun ((a : Expr.access), loc) ->
        if a.field < 0 || a.field >= ctx.n_fields then
          [ D.errorf ~loc ~code:"YS108"
              "reference %s is outside the declared field range (0..%d)"
              (Expr.access_to_c a) (ctx.n_fields - 1) ]
        else [])
      ctx.refs

let check ctx =
  if ctx.refs = [] then
    [ D.errorf ~code:"YS107"
        "expression reads no field: there is nothing to stream, so the \
         model has no data traffic to predict" ]
    @ rule_divisions ctx
  else
    rule_field_range ctx @ rule_unused_fields ctx @ rule_duplicate_refs ctx
    @ rule_divisions ctx @ rule_degenerate ctx @ rule_asymmetric ctx

(* ------------------------------------------------------------------ *)
(* Entry points *)

let spec (s : Spec.t) =
  let refs =
    List.rev
      (Expr.fold_accesses s.expr ~init:[] ~f:(fun acc a ->
           (a, D.No_loc) :: acc))
  in
  check
    { rank = s.rank;
      n_fields = s.n_fields;
      declared = true;
      expr = s.expr;
      refs;
      divisors = List.rev (collect_divisors [] s.expr) }

let source ?n_fields ~rank src =
  match Parser.parse_expr_located ~rank src with
  | Error (pos, msg) ->
      [ D.errorf ~loc:(span (pos, pos + 1)) ~code:"YS100" "%s" msg ]
  | Ok located ->
      let declared, n_fields =
        match n_fields with
        | Some n -> (true, n)
        | None ->
            ( false,
              1
              + List.fold_left
                  (fun m ((a : Expr.access), _) -> max m a.field)
                  0 located.Parser.refs )
      in
      check
        { rank;
          n_fields;
          declared;
          expr = located.Parser.expr;
          refs =
            List.map (fun (a, sp) -> (a, span sp)) located.Parser.refs;
          divisors =
            List.map (fun (e, sp) -> (e, span sp)) located.Parser.divisors }
