(* Native translation validator: the YS6xx rule family.

   Stencil.Codegen emits an OCaml compilation unit per specialization
   variant; Engine.Native compiles it out of process and the result is
   cached forever in the kern-v1 store -- so a miscompile there is a
   *permanent* wrong answer.  This pass closes that gap statically: it
   parses the emitted source back into the checked AST
   (Stencil.Kernel_ast -- a grammar covering exactly the shapes
   Codegen produces, nothing more), builds the expression the plan IR
   *requires* under the same specialization variant, and proves the
   two identical:

   - op-for-op IEEE-754 equivalence: the same left-associated [+.]
     chains, the same [1.0]/[-1.0] coefficient specializations, the
     same postfix reconstruction order, every hex-float literal
     round-tripping bit-exactly to the plan's coefficient
     (YS601/YS602/YS603);
   - address arithmetic: every load's base/table/shift matches the
     variant's per-slot last-dimension shift and unit-stride flag
     (YS604/YS605/YS606), and the shift implies an offset inside the
     YS5xx-certified halo of the grid it reads (YS607);
   - the surrounding unit: prelude bindings name the slots the body
     uses (YS611/YS600), the output loop matches the variant's
     out-pad/unit-stride mode (YS608), [kern_point] and [kern_row]
     compute the same expression (YS609), and the kernel registers
     under the ABI-versioned callback name of its own key (YS610).

   The validator is pure (no compiler, no execution); Engine.Native
   runs it on every resolution -- memo-cold, store-revived or freshly
   compiled -- and a passing verdict earns a native certificate so
   warm paths skip re-validation. *)

module D = Diagnostic
module Plan = Yasksite_stencil.Plan
module Expr = Yasksite_stencil.Expr
module Codegen = Yasksite_stencil.Codegen
module Ast = Yasksite_stencil.Kernel_ast
module Grid = Yasksite_grid.Grid

(* Bump whenever the rules or the accepted grammar change: the native
   certificate embeds this, so stale verdicts are re-proved.
   v2: compare-select ops (Float.min/Float.max/if-select) joined the
   accepted grammar. *)
let version = 2

let dedup = Schedule_lint.dedup

exception Refused of string

open Ast


let load_e (v : Codegen.variant) s =
  if s < 0 || s >= Array.length v.Codegen.slot_shift then
    raise (Refused (Printf.sprintf "load of slot %d outside the access table" s));
  let shift = v.Codegen.slot_shift.(s) in
  if v.Codegen.slot_unit.(s) then Get (Unit_addr { data = s; row = s; shift })
  else Get (Tab_addr { data = s; row = s; tab = s; shift })

let lit_e c =
  if c <> c then
    raise (Refused "NaN coefficient (payload bits not emittable)")
  else Lit c

let term_e v (t : Plan.term) =
  if t.Plan.slot < 0 then lit_e t.Plan.coeff
  else if t.Plan.coeff = 1.0 then load_e v t.Plan.slot
  else if t.Plan.coeff = -1.0 then Neg (load_e v t.Plan.slot)
  else Bin (Mul, lit_e t.Plan.coeff, load_e v t.Plan.slot)

let chain_add = function
  | [] -> raise (Refused "empty sum")
  | e :: tl -> List.fold_left (fun acc x -> Bin (Add, acc, x)) e tl

let group_e v (g : Plan.group) =
  if Array.length g.Plan.terms = 0 then raise (Refused "empty group");
  let sum = chain_add (Array.to_list (Array.map (term_e v) g.Plan.terms)) in
  match g.Plan.scale with
  | None -> sum
  | Some s -> Bin (Mul, lit_e s, sum)

let program_e v (code : Plan.instr array) =
  let stack = ref [] in
  let push e = stack := e :: !stack in
  let pop () =
    match !stack with
    | e :: tl ->
        stack := tl;
        e
    | [] -> raise (Refused "malformed postfix program (stack underflow)")
  in
  let binop op =
    let b = pop () in
    let a = pop () in
    push (Bin (op, a, b))
  in
  Array.iter
    (fun (i : Plan.instr) ->
      match i with
      | Plan.Push c -> push (lit_e c)
      | Plan.Load s -> push (load_e v s)
      | Plan.Sym n -> raise (Refused ("unresolved coefficient " ^ n))
      | Plan.Neg -> push (Neg (pop ()))
      | Plan.Add -> binop Add
      | Plan.Sub -> binop Sub
      | Plan.Mul -> binop Mul
      | Plan.Div -> binop Div
      | Plan.Min ->
          let b = pop () in
          let a = pop () in
          push (Fmin (a, b))
      | Plan.Max ->
          let b = pop () in
          let a = pop () in
          push (Fmax (a, b))
      | Plan.Sel ->
          let b = pop () in
          let a = pop () in
          let c = pop () in
          push (Sel (c, a, b)))
    code;
  match !stack with
  | [ e ] -> e
  | _ -> raise (Refused "malformed postfix program (leftover operands)")

let expected_expr (plan : Plan.t) v =
  match plan.Plan.body with
  | Plan.Groups gs ->
      if Array.length gs = 0 then raise (Refused "empty plan body");
      chain_add (Array.to_list (Array.map (group_e v) gs))
  | Plan.Program { code; _ } -> program_e v code

let expected_binds (plan : Plan.t) (v : Codegen.variant) =
  let used = Array.make (max 1 (Plan.n_slots plan)) false in
  let mark s = if s >= 0 && s < Array.length used then used.(s) <- true in
  (match plan.Plan.body with
  | Plan.Groups gs ->
      Array.iter
        (fun (g : Plan.group) ->
          Array.iter (fun (t : Plan.term) -> mark t.Plan.slot) g.Plan.terms)
        gs
  | Plan.Program { code; _ } ->
      Array.iter
        (fun (i : Plan.instr) ->
          match i with Plan.Load s -> mark s | _ -> ())
        code);
  let binds = ref [] in
  Array.iteri
    (fun s u ->
      if u then begin
        binds := Bind_data { name = s; src = s } :: !binds;
        if s < Array.length v.Codegen.slot_unit && not v.Codegen.slot_unit.(s)
        then binds := Bind_tab { name = s; src = s } :: !binds;
        binds := Bind_row { name = s; src = s } :: !binds
      end)
    used;
  List.rev !binds

let expected_out (v : Codegen.variant) =
  if v.Codegen.out_unit then Out_unit { lp = v.Codegen.out_lp }
  else Out_tab { lp = v.Codegen.out_lp }

(* ------------------------------------------------------------------ *)
(* Comparison: classify every divergence under a stable YS6xx code     *)

let bits = Int64.bits_of_float

let lit_eq a b = bits a = bits b

let rec eq_expr a b =
  match (a, b) with
  | Lit x, Lit y -> lit_eq x y
  | Get x, Get y -> x = y
  | Neg x, Neg y -> eq_expr x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
      o1 = o2 && eq_expr a1 a2 && eq_expr b1 b2
  | Fmin (a1, b1), Fmin (a2, b2) | Fmax (a1, b1), Fmax (a2, b2) ->
      eq_expr a1 a2 && eq_expr b1 b2
  | Sel (c1, a1, b1), Sel (c2, a2, b2) ->
      eq_expr c1 c2 && eq_expr a1 a2 && eq_expr b1 b2
  | _ -> false

(* the left [+.] spine — the associativity-sensitive view *)
let rec add_spine = function
  | Bin (Add, a, b) -> add_spine a @ [ b ]
  | e -> [ e ]

(* every [+.] flattened — the associativity-blind view, used to tell a
   reassociated chain (YS602) from a dropped/extra term (YS603) *)
let rec full_flat = function
  | Bin (Add, a, b) -> full_flat a @ full_flat b
  | e -> [ e ]

let short e =
  let s = expr_str e in
  if String.length s > 64 then String.sub s 0 61 ^ "..." else s

let err code fmt = Printf.ksprintf (fun m -> D.v D.Error ~code m) fmt

let diff_addr ~where exp act acc =
  match (exp, act) with
  | Unit_addr e, Unit_addr a ->
      if e.data <> a.data || e.row <> a.row then
        err "YS605"
          "%s: load reads slot d%d/r%d where the plan requires slot %d" where
          a.data a.row e.data
        :: acc
      else if e.shift <> a.shift then
        err "YS604"
          "%s: address shift %d does not match the variant's slot-%d shift %d"
          where a.shift e.data e.shift
        :: acc
      else acc
  | Tab_addr e, Tab_addr a ->
      if e.data <> a.data || e.row <> a.row || e.tab <> a.tab then
        err "YS605"
          "%s: load reads slot d%d/r%d/t%d where the plan requires slot %d"
          where a.data a.row a.tab e.data
        :: acc
      else if e.shift <> a.shift then
        err "YS604"
          "%s: address shift %d does not match the variant's slot-%d shift %d"
          where a.shift e.data e.shift
        :: acc
      else acc
  | Unit_addr e, Tab_addr _ ->
      err "YS606"
        "%s: slot %d uses table indirection where the variant marks the grid \
         unit-stride"
        where e.data
      :: acc
  | Tab_addr e, Unit_addr _ ->
      err "YS606"
        "%s: slot %d uses unit-stride addressing where the variant requires \
         the offset table"
        where e.data
      :: acc

let rec diff ~where exp act acc =
  if eq_expr exp act then acc
  else
    match (exp, act) with
    | Lit x, Lit y ->
        err "YS601"
          "%s: coefficient literal %h does not round-trip the plan's %h \
           (bits %Lx vs %Lx)"
          where y x (bits y) (bits x)
        :: acc
    | Get x, Get y -> diff_addr ~where x y acc
    | Neg x, Neg y -> diff ~where x y acc
    | (Bin (Add, _, _), _ | _, Bin (Add, _, _)) when spine_mismatch exp act ->
        let se = add_spine exp and sa = add_spine act in
        let fe = full_flat exp and fa = full_flat act in
        if
          List.length fe = List.length fa
          && List.for_all2 eq_expr fe fa
        then
          err "YS602"
            "%s: sum reassociated — the plan's left-associated %d-term chain \
             was emitted as a %d-element spine (IEEE-754 order differs)"
            where (List.length se) (List.length sa)
          :: acc
        else
          err "YS603"
            "%s: dropped or extra term — the plan sums %d terms, the kernel \
             sums %d"
            where (List.length se) (List.length sa)
          :: acc
    | Bin (Add, _, _), Bin (Add, _, _) ->
        let se = add_spine exp and sa = add_spine act in
        List.fold_left2 (fun acc e a -> diff ~where e a acc) acc se sa
    | Bin (o1, a1, b1), Bin (o2, a2, b2) when o1 = o2 ->
        diff ~where b1 b2 (diff ~where a1 a2 acc)
    | Fmin (a1, b1), Fmin (a2, b2) | Fmax (a1, b1), Fmax (a2, b2) ->
        diff ~where b1 b2 (diff ~where a1 a2 acc)
    | Sel (c1, a1, b1), Sel (c2, a2, b2) ->
        diff ~where b1 b2 (diff ~where a1 a2 (diff ~where c1 c2 acc))
    | _ ->
        err "YS602"
          "%s: expression structure diverges from the plan — expected %s, \
           found %s"
          where (short exp) (short act)
        :: acc

and spine_mismatch exp act =
  List.length (add_spine exp) <> List.length (add_spine act)

(* YS607: every load's implied last-dimension offset (shift − left pad)
   must stay inside the halo the YS5xx pass certified for that grid *)
let halo_bounds ~where (plan : Plan.t) ~inputs act acc =
  let r = plan.Plan.rank in
  let rec walk e acc =
    match e with
    | Lit _ -> acc
    | Neg x -> walk x acc
    | Bin (_, a, b) | Fmin (a, b) | Fmax (a, b) -> walk b (walk a acc)
    | Sel (c, a, b) -> walk b (walk a (walk c acc))
    | Get a ->
        let slot, shift =
          match a with
          | Unit_addr { data; shift; _ } -> (data, shift)
          | Tab_addr { data; shift; _ } -> (data, shift)
        in
        if slot < 0 || slot >= Array.length plan.Plan.accesses then
          err "YS605" "%s: load of slot %d outside the access table" where
            slot
          :: acc
        else
          let field = plan.Plan.accesses.(slot).Expr.field in
          if field < 0 || field >= Array.length inputs then acc
          else
            let g = inputs.(field) in
            let lp = (Grid.left_pad g).(r - 1) in
            let halo = (Grid.halo g).(r - 1) in
            let off = shift - lp in
            if abs off > halo then
              err "YS607"
                "%s: slot %d's shift %d implies last-dimension offset %d, \
                 outside the certified halo %d of field %d"
                where slot shift off halo field
              :: acc
            else acc
  in
  walk act acc

let diff_binds ~where exp act acc =
  if List.length exp <> List.length act then
    err "YS600" "%s: prelude has %d bindings where the plan requires %d"
      where (List.length act) (List.length exp)
    :: acc
  else
    List.fold_left2
      (fun acc e a ->
        if e = a then acc
        else
          let describe = function
            | Bind_data { name; src } -> Printf.sprintf "d%d <- slot_data %d" name src
            | Bind_tab { name; src } -> Printf.sprintf "t%d <- slot_tab %d" name src
            | Bind_row { name; src } -> Printf.sprintf "r%d <- row %d" name src
          in
          err "YS611" "%s: prelude binds %s where the plan requires %s" where
            (describe a) (describe e)
          :: acc)
      acc exp act

let diff_out ~where exp act acc =
  match (exp, act) with
  | Out_unit { lp = e }, Out_unit { lp = a } ->
      if e <> a then
        err "YS608" "%s: output left pad %d does not match the variant's %d"
          where a e
        :: acc
      else acc
  | Out_tab { lp = e }, Out_tab { lp = a } ->
      if e <> a then
        err "YS608" "%s: output left pad %d does not match the variant's %d"
          where a e
        :: acc
      else acc
  | Out_unit _, Out_tab _ ->
      err "YS608"
        "%s: output loop uses table indirection where the variant marks the \
         output unit-stride"
        where
      :: acc
  | Out_tab _, Out_unit _ ->
      err "YS608"
        "%s: output loop uses unit-stride addressing where the variant \
         requires the offset table"
        where
      :: acc

let check ~(plan : Plan.t) ~(variant : Codegen.variant) ~inputs src =
  if
    Array.length variant.Codegen.slot_shift <> Plan.n_slots plan
    || Array.length variant.Codegen.slot_unit <> Plan.n_slots plan
  then invalid_arg "Native_lint.check: variant arity does not match the plan";
  match parse src with
  | Error (msg, line) ->
      [ D.v ~loc:(D.Line line) D.Error ~code:"YS600"
          (Printf.sprintf
             "emitted kernel unit does not parse as a generated kernel: %s"
             msg) ]
  | Ok ast -> (
      match
        ( expected_expr plan variant,
          expected_binds plan variant,
          expected_out variant )
      with
      | exception Refused reason ->
          [ D.v D.Error ~code:"YS612"
              (Printf.sprintf
                 "plan cannot be symbolically evaluated for validation: %s"
                 reason) ]
      | exp_expr, exp_binds, exp_out ->
          let acc = [] in
          let acc = diff ~where:"kern_row body" exp_expr ast.row_expr acc in
          let acc =
            halo_bounds ~where:"kern_row body" plan ~inputs ast.row_expr acc
          in
          let acc = diff_binds ~where:"kern_row" exp_binds ast.row_binds acc in
          let acc = diff_out ~where:"kern_row" exp_out ast.row_out acc in
          let acc =
            diff_binds ~where:"kern_point" exp_binds ast.point_binds acc
          in
          let acc =
            if eq_expr ast.point_expr ast.row_expr then acc
            else
              err "YS609"
                "kern_point and kern_row compute different expressions (%s \
                 vs %s)"
                (short ast.point_expr) (short ast.row_expr)
              :: acc
          in
          let acc =
            (* when point and row diverge, row was validated above; give
               the point body its own verdict too *)
            if eq_expr ast.point_expr ast.row_expr then acc
            else
              halo_bounds ~where:"kern_point body" plan ~inputs ast.point_expr
                (diff ~where:"kern_point body" exp_expr ast.point_expr acc)
          in
          let expected_name =
            Codegen.callback_name (Codegen.key ~plan variant)
          in
          let acc =
            if String.equal ast.reg_name expected_name then acc
            else
              err "YS610"
                "kernel registers under %S, expected the ABI-versioned name \
                 %S"
                ast.reg_name expected_name
              :: acc
          in
          dedup (List.rev acc))

let validate ~plan ~variant ~inputs src =
  let ds = check ~plan ~variant ~inputs src in
  if D.has_errors ds then Error ds else Ok ()
