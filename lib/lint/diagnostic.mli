(** Diagnostics for the static-analysis passes: a finding with a stable
    rule code, a severity, and an optional location, plus a renderer
    that prints compiler-style caret spans when the linted source text
    is available.

    Rule codes are stable across releases so they can be grepped,
    suppressed, and referenced in documentation: [YS1xx] kernel rules,
    [YS2xx] machine-description rules, [YS3xx] tuning-configuration
    rules (see {!Lint.rules} for the full table). *)

type severity =
  | Error  (** the artifact is unusable; tools exit nonzero *)
  | Warning  (** modeling proceeds but results are likely skewed *)
  | Hint  (** stylistic or resolvable before modeling *)

(** Where a finding points. *)
type loc =
  | No_loc  (** no better location than the artifact as a whole *)
  | Span of { pos : int; stop : int }
      (** [start, stop) byte range in the linted source string *)
  | Line of int  (** 1-based line in a line-oriented file *)
  | Field of string  (** a named field of a structured config *)

type t = { code : string; severity : severity; message : string; loc : loc }

val v : ?loc:loc -> severity -> code:string -> string -> t
(** Build a diagnostic; [loc] defaults to {!No_loc}. *)

val errorf : ?loc:loc -> code:string -> ('a, unit, string, t) format4 -> 'a
(** [errorf ~code fmt ...] is [v Error ~code (sprintf fmt ...)]. *)

val warningf : ?loc:loc -> code:string -> ('a, unit, string, t) format4 -> 'a

val hintf : ?loc:loc -> code:string -> ('a, unit, string, t) format4 -> 'a

val severity_label : severity -> string
(** ["error"], ["warning"] or ["hint"]. *)

val is_error : t -> bool

val errors : t list -> t list
(** Only the [Error]-severity findings. *)

val has_errors : t list -> bool

val exit_code : t list -> int
(** [1] if any finding is an [Error], else [0] — the process exit
    policy of [yasksite lint]. *)

val by_severity : t list -> t list
(** Stable-sort errors first, then warnings, then hints. *)

val summary : t list -> string
(** E.g. ["1 error, 2 warnings, 0 hints"]. *)

val render : ?src:string -> ?origin:string -> t -> string
(** Render one finding as ["origin:line:col: severity[CODE]: message"].
    When [src] (the linted text) is given, {!Span} and {!Line} locations
    additionally print the offending line with a caret run under the
    span. [origin] defaults to ["input"]. *)

val render_list : ?src:string -> ?origin:string -> t list -> string
(** Render a batch, ordered {!by_severity}. *)

val to_json : ?src:string -> ?origin:string -> t -> string
(** One finding as a single-line JSON object with the stable schema
    [{"origin","code","severity","message","loc"}]. [loc] is a tagged
    object: [{"kind":"none"}], [{"kind":"field","field":...}],
    [{"kind":"line","line":...}] or [{"kind":"span","pos","stop"}] —
    span locations gain 1-based ["line"]/["col"] when [src] is given. *)

val rules_to_text : (string * severity * string) list -> string
(** Render a rule table (code, severity, summary — see {!Lint.rules})
    as aligned text, one rule per line. *)

val rules_to_json : (string * severity * string) list -> string
(** Render a rule table as one JSON document:
    [{"version":1,"rules":[{"code","severity","summary"},...]}]. The
    single renderer behind [yasksite lint --rules] in every format. *)

val report_to_json : (string * string option * t) list -> string
(** Render a whole lint run as one JSON document:
    [{"version":1,"findings":[...],"summary":{"errors","warnings",
    "hints"}}]. Each item is [(origin, src, diagnostic)] so findings
    from different inputs can share one report. *)
