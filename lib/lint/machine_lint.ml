module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Machine_file = Yasksite_arch.Machine_file
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Raw-field helpers. Fields are [(key, (value, line))] in file order;
   on duplicates the parser's accessors take the last occurrence, so we
   do the same here (and flag the duplicate separately). *)

let find fields key =
  List.fold_left
    (fun acc (k, v) -> if k = key then Some v else acc)
    None fields

type 'a lookup = Missing | Bad of int | Val of 'a * int

let lookup_float fields key =
  match find fields key with
  | None -> Missing
  | Some (v, ln) -> (
      match float_of_string_opt v with
      | Some f -> Val (f, ln)
      | None -> Bad ln)

let lookup_int fields key =
  match find fields key with
  | None -> Missing
  | Some (v, ln) -> (
      match int_of_string_opt v with
      | Some n -> Val (n, ln)
      | None -> Bad ln)

(* Run a numeric check, producing YS200 for malformed/missing keys and
   delegating the value check to [f] when the key parses. [required]
   distinguishes "must exist" keys from optional ones. *)
let checked ~what lookup fields key ~required f =
  match lookup fields key with
  | Missing ->
      if required then
        [ D.errorf ~code:"YS200" "%s: missing required key %S" what key ]
      else []
  | Bad ln ->
      [ D.errorf ~loc:(D.Line ln) ~code:"YS200" "%s: %S is not a number" what
          key ]
  | Val (v, ln) -> f v ln

let positive_int ~what ~code fields key ~required =
  checked ~what lookup_int fields key ~required (fun v ln ->
      if v <= 0 then
        [ D.errorf ~loc:(D.Line ln) ~code "%s: %s must be positive (got %d)"
            what key v ]
      else [])

let positive_float ~what ~code fields key ~required =
  checked ~what lookup_float fields key ~required (fun v ln ->
      if v <= 0.0 then
        [ D.errorf ~loc:(D.Line ln) ~code "%s: %s must be positive (got %g)"
            what key v ]
      else [])

(* YS208: duplicated keys within one section (the later value wins,
   which is rarely what the author intended). *)
let rule_duplicates ~what fields =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun (key, (_, ln)) ->
      match Hashtbl.find_opt seen key with
      | Some first ->
          Hashtbl.replace seen key ln;
          [ D.warningf ~loc:(D.Line ln) ~code:"YS208"
              "%s: duplicate key %S (overrides line %d; the last value wins)"
              what key first ]
      | None ->
          Hashtbl.add seen key ln;
          [])
    fields

let enum_value ~what fields key allowed =
  match find fields key with
  | None -> []
  | Some (v, ln) ->
      if List.mem v allowed then []
      else
        [ D.errorf ~loc:(D.Line ln) ~code:"YS200"
            "%s: unknown %s %S (expected %s)" what key v
            (String.concat " | " allowed) ]

(* ------------------------------------------------------------------ *)
(* Machine-level section *)

let lint_machine_section fields =
  let what = "machine" in
  List.concat
    [ rule_duplicates ~what fields;
      (match find fields "name" with
      | None -> [ D.errorf ~code:"YS200" "machine: missing required key \"name\"" ]
      | Some _ -> []);
      positive_float ~what ~code:"YS207" fields "freq_ghz" ~required:true;
      positive_int ~what ~code:"YS207" fields "cores" ~required:true;
      positive_int ~what ~code:"YS207" fields "dp_lanes" ~required:true;
      positive_int ~what ~code:"YS207" fields "fma_ports" ~required:true;
      positive_int ~what ~code:"YS207" fields "add_ports" ~required:false;
      positive_int ~what ~code:"YS207" fields "load_ports" ~required:false;
      positive_int ~what ~code:"YS207" fields "store_ports" ~required:false;
      positive_float ~what ~code:"YS202" fields "mem_bw_gbs" ~required:true;
      positive_float ~what ~code:"YS203" fields "mem_latency_cycles"
        ~required:false;
      enum_value ~what fields "vendor" [ "intel"; "amd"; "generic" ];
      enum_value ~what fields "overlap" [ "serial"; "overlapping" ] ]

(* ------------------------------------------------------------------ *)
(* Cache sections *)

type cache_info = {
  what : string;
  size_bytes : int option;
  size_line : int;
  latency : float option;
  latency_line : int;
  line_bytes : int option;
  line_line : int;
}

let lint_cache_section idx fields =
  let what =
    match find fields "name" with
    | Some (n, _) -> Printf.sprintf "cache %s" n
    | None -> Printf.sprintf "cache #%d" (idx + 1)
  in
  let diags =
    List.concat
      [ rule_duplicates ~what fields;
        (match find fields "name" with
        | None ->
            [ D.errorf ~code:"YS200" "%s: missing required key \"name\"" what ]
        | Some _ -> []);
        positive_int ~what ~code:"YS207" fields "size_kib" ~required:true;
        positive_int ~what ~code:"YS207" fields "assoc" ~required:true;
        positive_int ~what ~code:"YS207" fields "shared_by" ~required:false;
        positive_int ~what ~code:"YS207" fields "line_bytes" ~required:false;
        positive_float ~what ~code:"YS202" fields "bytes_per_cycle"
          ~required:true;
        positive_float ~what ~code:"YS203" fields "latency_cycles"
          ~required:true;
        enum_value ~what fields "fill" [ "inclusive"; "victim" ] ]
  in
  let geometry =
    match (lookup_int fields "size_kib", lookup_int fields "assoc") with
    | Val (size_kib, ln), Val (assoc, _) when size_kib > 0 && assoc > 0 ->
        let line =
          match lookup_int fields "line_bytes" with
          | Val (l, _) when l > 0 -> l
          | _ -> 64
        in
        if size_kib * 1024 mod (assoc * line) <> 0 then
          [ D.errorf ~loc:(D.Line ln) ~code:"YS207"
              "%s: size (%d KiB) is not divisible by assoc (%d) x line (%d \
               B); the set count would not be integral"
              what size_kib assoc line ]
        else []
    | _ -> []
  in
  let info =
    let opt_of = function Val (v, ln) -> (Some v, ln) | _ -> (None, 0) in
    let size, size_line = opt_of (lookup_int fields "size_kib") in
    let latency, latency_line = opt_of (lookup_float fields "latency_cycles") in
    let line, line_line = opt_of (lookup_int fields "line_bytes") in
    { what;
      size_bytes = Option.map (fun k -> k * 1024) size;
      size_line;
      latency;
      latency_line;
      line_bytes = (match line with Some l -> Some l | None -> Some 64);
      line_line }
  in
  (diags @ geometry, info)

(* Cross-level rules: capacities must grow outward (YS201), latencies
   should grow outward (YS206), and line sizes must agree (YS207). *)
let lint_hierarchy infos =
  let rec pairwise acc = function
    | a :: (b :: _ as rest) ->
        let acc =
          acc
          @ (match (a.size_bytes, b.size_bytes) with
            | Some sa, Some sb when sb < sa ->
                [ D.errorf ~loc:(D.Line b.size_line) ~code:"YS201"
                    "%s (%d KiB) is smaller than the inner %s (%d KiB): cache \
                     capacities must be non-decreasing outward"
                    b.what (sb / 1024) a.what (sa / 1024) ]
            | _ -> [])
          @ (match (a.latency, b.latency) with
            | Some la, Some lb when lb > 0.0 && la > 0.0 && lb <= la ->
                [ D.warningf
                    ~loc:
                      (if b.latency_line > 0 then D.Line b.latency_line
                       else D.No_loc)
                    ~code:"YS206"
                    "%s latency (%g cy) does not exceed the inner %s latency \
                     (%g cy): outer levels should be slower"
                    b.what lb a.what la ]
            | _ -> [])
          @
          match (a.line_bytes, b.line_bytes) with
          | Some la, Some lb when la <> lb ->
              [ D.errorf
                  ~loc:(if b.line_line > 0 then D.Line b.line_line else D.No_loc)
                  ~code:"YS207"
                  "%s line size (%d B) differs from %s (%d B): the hierarchy \
                   must use one uniform line size"
                  b.what lb a.what la ]
          | _ -> []
        in
        pairwise acc rest
    | _ -> acc
  in
  pairwise [] infos

(* YS204: a vector fold should pack into whole cache lines (or lines
   into whole folds); otherwise every folded vector straddles a line
   boundary and the per-line traffic accounting is off. *)
let lint_fold_alignment machine_fields infos =
  match lookup_int machine_fields "dp_lanes" with
  | Val (lanes, _) when lanes > 0 ->
      let vec_bytes = 8 * lanes in
      List.concat_map
        (fun info ->
          match info.line_bytes with
          | Some line
            when line > 0 && vec_bytes mod line <> 0 && line mod vec_bytes <> 0
            ->
              [ D.warningf
                  ~loc:(if info.line_line > 0 then D.Line info.line_line
                        else D.No_loc)
                  ~code:"YS204"
                  "%s line size (%d B) and the vector fold (%d lanes = %d B) \
                   are misaligned: folded vectors straddle cache lines"
                  info.what line lanes vec_bytes ]
          | _ -> [])
        infos
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Entry points *)

let source src =
  match Machine_file.parse_raw src with
  | Error (lineno, msg) ->
      [ D.errorf
          ~loc:(if lineno > 0 then D.Line lineno else D.No_loc)
          ~code:"YS200" "%s" msg ]
  | Ok raw ->
      let machine_diags = lint_machine_section raw.Machine_file.machine_fields in
      let cache_results =
        List.mapi lint_cache_section raw.Machine_file.cache_fields
      in
      let cache_diags = List.concat_map fst cache_results in
      let infos = List.map snd cache_results in
      let hierarchy =
        if infos = [] then
          [ D.errorf ~code:"YS205"
              "no [cache] sections: an empty hierarchy leaves the cache \
               simulator and the layer-condition analysis with zero levels \
               (division by zero downstream)" ]
        else
          lint_hierarchy infos
          @ lint_fold_alignment raw.Machine_file.machine_fields infos
      in
      machine_diags @ cache_diags @ hierarchy

let file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> source src
  | exception Sys_error msg -> [ D.errorf ~code:"YS200" "%s" msg ]

(* Post-construction checks for machines built in OCaml: Machine.v
   already enforces positivity and monotone capacities, so only the
   rules it does not cover remain observable here. *)
let machine (m : Machine.t) =
  let caches = Array.to_list m.caches in
  let latency_diags =
    List.concat_map
      (fun (c : Cache_level.t) ->
        if c.latency_cycles <= 0.0 then
          [ D.errorf
              ~loc:(D.Field (c.name ^ ".latency_cycles"))
              ~code:"YS203" "%s latency must be positive (got %g)" c.name
              c.latency_cycles ]
        else [])
      caches
    @
    if m.mem_latency_cycles <= 0.0 then
      [ D.errorf
          ~loc:(D.Field "mem_latency_cycles")
          ~code:"YS203" "memory latency must be positive (got %g)"
          m.mem_latency_cycles ]
    else []
  in
  let rec monotone_latency acc = function
    | (a : Cache_level.t) :: (b :: _ as rest) ->
        let acc =
          if b.latency_cycles <= a.latency_cycles then
            acc
            @ [ D.warningf
                  ~loc:(D.Field (b.name ^ ".latency_cycles"))
                  ~code:"YS206"
                  "%s latency (%g cy) does not exceed %s latency (%g cy)"
                  b.name b.latency_cycles a.name a.latency_cycles ]
          else acc
        in
        monotone_latency acc rest
    | _ -> acc
  in
  let vec_bytes = 8 * m.simd.Machine.dp_lanes in
  let fold_diags =
    List.concat_map
      (fun (c : Cache_level.t) ->
        if
          vec_bytes > 0
          && vec_bytes mod c.line_bytes <> 0
          && c.line_bytes mod vec_bytes <> 0
        then
          [ D.warningf
              ~loc:(D.Field (c.name ^ ".line_bytes"))
              ~code:"YS204"
              "%s line size (%d B) and the vector fold (%d lanes = %d B) are \
               misaligned"
              c.name c.line_bytes m.simd.Machine.dp_lanes vec_bytes ]
        else [])
      caches
  in
  latency_diags @ monotone_latency [] caches @ fold_diags
