(** Native translation validator: the YS6xx rule family.

    {!Yasksite_stencil.Codegen} emits one OCaml compilation unit per
    specialization variant, and the engine caches the compiled result
    {e forever} in the [kern-v1] store — a miscompile there would be a
    permanent wrong answer. This pass proves, statically and per
    resolution, that the emitted source is the plan:

    - it parses the source back into the checked AST
      ({!Yasksite_stencil.Kernel_ast}), whose grammar covers exactly
      the shapes the generator produces;
    - it rebuilds the expression the plan IR {e requires} under the
      same variant — the same [1.0]/[-1.0] coefficient
      specializations, left-associated [+.] chains, scale-after-sum,
      postfix reconstruction;
    - it compares the two op for op, every divergence classified under
      a stable [YS6xx] code.

    {2 Rules}

    - [YS600] — the unit does not parse / deviates from the generated
      shape (including wrong prelude arity);
    - [YS601] — a coefficient literal does not round-trip bit-exactly
      ([Int64.bits_of_float]) to the plan's coefficient;
    - [YS602] — expression structure diverges (operation order or
      associativity — a reassociated chain changes IEEE-754 results);
    - [YS603] — dropped or extra term (sum arity differs);
    - [YS604] — address shift differs from the variant's per-slot
      last-dimension shift;
    - [YS605] — a load reads the wrong access-table slot (or an
      inconsistent data/row/table triple);
    - [YS606] — addressing mode disagrees with the variant's
      unit-stride flag (table indirection vs direct [x + shift]);
    - [YS607] — an emitted access implies a last-dimension offset
      outside the YS5xx-certified halo of the grid it reads;
    - [YS608] — output addressing (left pad or unit-stride mode)
      disagrees with the variant;
    - [YS609] — [kern_point] and [kern_row] compute different
      expressions;
    - [YS610] — the unit registers under the wrong ABI-versioned
      callback name for its own key;
    - [YS611] — a prelude binding names the wrong source slot;
    - [YS612] — the plan itself cannot be symbolically evaluated
      (validator refusal — unresolved coefficients, malformed body).

    The validator is pure: no compiler, no execution, no allocation
    beyond the AST. {!Yasksite_engine.Native} runs it on every kernel
    resolution; a pass earns a native certificate ([cert-v1]) so warm
    paths skip re-validation. *)

module Plan := Yasksite_stencil.Plan
module Codegen := Yasksite_stencil.Codegen
module Grid := Yasksite_grid.Grid

val version : int
(** Version of the accepted grammar and rule set, embedded in native
    certificates so stale verdicts are re-proved after a validator
    change. *)

val check :
  plan:Plan.t ->
  variant:Codegen.variant ->
  inputs:Grid.t array ->
  string ->
  Diagnostic.t list
(** [check ~plan ~variant ~inputs src] validates the emitted source
    [src] against the plan under [variant]; [inputs] supply the halo
    bounds for YS607. Empty iff the translation is proved equivalent.
    Raises [Invalid_argument] if the variant's arrays do not match the
    plan's access-table arity. *)

val validate :
  plan:Plan.t ->
  variant:Codegen.variant ->
  inputs:Grid.t array ->
  string ->
  (unit, Diagnostic.t list) result
(** {!check} as a result: [Error] carries the findings when any is an
    error. *)
