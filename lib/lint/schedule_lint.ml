(* Schedule-legality analysis: the YS4xx rule family.

   The tuner and advisor generate thousands of candidate (config, grid)
   schedules; this pass decides statically — by dependence-distance
   reasoning over the kernel's access set — which of them are legal to
   execute, before the ECM model scores them or the domain pool runs
   them. Every rule here has a dynamic counterpart in the engine's
   shadow-memory sanitizer (YS45x traps), so a "legal" verdict is
   falsifiable by execution and an "illegal" verdict can be demonstrated
   by a concrete trap when the gates are bypassed. *)

module D = Diagnostic
module Analysis = Yasksite_stencil.Analysis
module Spec = Yasksite_stencil.Spec
module Config = Yasksite_ecm.Config
module Grid = Yasksite_grid.Grid

type boundary = [ `Static | `Periodic ]

let dims_str a =
  String.concat "x" (Array.to_list (Array.map string_of_int a))

let effective_stagger (info : Analysis.t) (config : Config.t) =
  match config.Config.wavefront_stagger with
  | Some s -> s
  | None -> info.Analysis.radius.(0) + 1

(* Max |offset| per dimension over the reads of one field. *)
let field_radius (info : Analysis.t) ~rank field =
  let r = Array.make rank 0 in
  List.iter
    (fun off ->
      Array.iteri (fun d o -> r.(d) <- max r.(d) (abs o)) off)
    (Analysis.accesses_of_field info field);
  r

(* Max forward (positive) and backward (negative) offsets along the
   streamed dimension over all reads. These — not the radius — are the
   dependence distances the wavefront stagger must clear, and they
   constrain it differently (see [rule_stagger]): an asymmetric stencil
   has a different legal minimum than the radius suggests. *)
let forward_reach (info : Analysis.t) =
  List.fold_left
    (fun acc (a : Yasksite_stencil.Expr.access) ->
      max acc a.Yasksite_stencil.Expr.offsets.(0))
    0 info.Analysis.accesses

let backward_reach (info : Analysis.t) =
  List.fold_left
    (fun acc (a : Yasksite_stencil.Expr.access) ->
      max acc (-a.Yasksite_stencil.Expr.offsets.(0)))
    0 info.Analysis.accesses

(* ------------------------------------------------------------------ *)
(* Rules over (spec, dims, config): the candidate as the tuner sees it. *)

(* YS400 — wavefront stagger vs. dependence distance. A depth-d
   wavefront executes time steps t and t+1 in the same front, with step
   t trailing step t-1 by [stagger] planes along the streamed
   dimension, and the two time levels ping-ponging between two buffers.
   Two dependences constrain the stagger s:

   - flow: step t at plane z reads version t of plane z+o, produced by
     step t-1 at front (z+o) + (t-1)*s; the read happens at front
     z + t*s. Produced strictly earlier iff s >= o + 1 for every read
     offset o — the binding one is the forward reach fwd. s <= fwd - 1
     reads planes a later front will produce (version skew); s = fwd
     reads planes step t-1 wrote in this very front (order dependence).

   - anti: version t of plane p lives in the buffer step t+1 overwrites
     (with version t+2) at front p + (t+1)*s; the last read of it is by
     the most backward offset at front p + t*s + back. The read
     precedes the overwrite iff s >= back — equality is safe because
     within a front the reading step t runs before the overwriting
     step t+1.

   Legal minimum: max(fwd + 1, back). For a symmetric radius-r stencil
   this is the classic r + 1; asymmetric (upwind/downwind) stencils get
   a tighter or looser bound than the radius suggests. *)
let rule_stagger info ~dims:_ (config : Config.t) =
  if config.Config.wavefront <= 1 then []
  else
    let fwd = forward_reach info in
    let back = backward_reach info in
    let min_legal = max (fwd + 1) back in
    let s = effective_stagger info config in
    if s >= min_legal then []
    else
      [ D.errorf ~loc:(D.Field "wavefront_stagger") ~code:"YS400"
          "wavefront stagger %d is below the legal minimum %d (forward \
           reach %d, backward reach %d): step t would %s"
          s min_legal fwd back
          (if s < fwd then "read planes step t-1 has not yet produced"
           else if s = fwd then
             "read planes step t-1 is writing in the same front"
           else
             "re-read planes step t+1 already overwrote (ping-pong \
              buffer reuse)") ]

(* YS401 — the temporal engine ping-pongs exactly two versions of one
   field; a multi-input kernel has no second buffer for its other
   fields' time levels. *)
let rule_single_field info (config : Config.t) =
  let n = info.Analysis.spec.Spec.n_fields in
  if config.Config.wavefront > 1 && n <> 1 then
    [ D.errorf ~loc:(D.Field "wavefront") ~code:"YS401"
        "temporal wavefront requires a single input field, kernel reads %d"
        n ]
  else []

(* YS402 — a periodic halo is a copy of the opposite boundary at one
   time level; inside a wavefront the interior advances several levels
   between halo refreshes, so periodic images go stale mid-front. Only
   boundary conditions that are constant in time (Dirichlet) are legal
   under temporal blocking. *)
let rule_boundary ~(boundary : boundary) (config : Config.t) =
  match boundary with
  | `Static -> []
  | `Periodic ->
      if config.Config.wavefront > 1 then
        [ D.errorf ~loc:(D.Field "wavefront") ~code:"YS402"
            "temporal wavefront over periodic boundaries reads stale halo \
             images; only static (Dirichlet) halos are legal" ]
      else []

(* YS408 — a fold wider than the grid folds ghost cells into every
   vector: the schedule's unit of work does not fit the iteration
   space. *)
let rule_fold_overflow ~dims (config : Config.t) =
  match config.Config.fold with
  | None -> []
  | Some f when Array.length f <> Array.length dims -> []
      (* rank mismatch is YS305 (config lint) *)
  | Some f ->
      let bad = ref [] in
      Array.iteri
        (fun d fd ->
          if fd > dims.(d) then
            bad :=
              D.errorf ~loc:(D.Field "fold") ~code:"YS408"
                "fold extent %d exceeds the grid extent %d in dimension %d"
                fd dims.(d) d
              :: !bad)
        f;
      List.rev !bad

(* YS407 — the pool slices the blocked dimension at block boundaries;
   fewer block columns than domains leaves domains idle. A hint, not a
   legality problem. *)
let rule_pool_width ?pool_width ~dims (config : Config.t) =
  match pool_width with
  | None -> []
  | Some w when w <= 1 -> []
  | Some w ->
      let rank = Array.length dims in
      let pd = if rank = 1 then 0 else 1 in
      let bsize = (Config.block_extents config ~dims).(pd) in
      let nblocks = (dims.(pd) + bsize - 1) / bsize in
      if nblocks < w then
        [ D.hintf ~loc:(D.Field "block") ~code:"YS407"
            "only %d block column%s along dimension %d for %d pool domains; \
             parallel width is wasted"
            nblocks
            (if nblocks = 1 then "" else "s")
            pd w ]
      else []

let rule_rank info ~dims =
  let rank = info.Analysis.spec.Spec.rank in
  if Array.length dims <> rank then
    [ D.errorf ~code:"YS409"
        "schedule is for a rank-%d kernel but the grid is %s (rank %d)" rank
        (dims_str dims) (Array.length dims) ]
  else []

let schedule ?pool_width ?(boundary = `Static) info ~dims config =
  rule_rank info ~dims
  @ rule_stagger info ~dims config
  @ rule_single_field info config
  @ rule_boundary ~boundary config
  @ rule_fold_overflow ~dims config
  @ rule_pool_width ?pool_width ~dims config

(* Rules for an explicit [Wavefront.steps] invocation: the temporal
   engine structurally needs a single field even at depth 1 (there is
   only one ping-pong buffer pair), and the stagger rule as above. *)
let wavefront_rules info ~dims config =
  let n = info.Analysis.spec.Spec.n_fields in
  rule_rank info ~dims
  @ rule_stagger info ~dims config
  @ (if n <> 1 then
       [ D.errorf ~loc:(D.Field "wavefront") ~code:"YS401"
           "temporal wavefront requires a single input field, kernel reads \
            %d" n ]
     else [])

(* ------------------------------------------------------------------ *)
(* Rules over concrete grids: halo sufficiency and aliasing. *)

let ranges_overlap (a_lo, a_hi) (b_lo, b_hi) = a_lo < b_hi && b_lo < a_hi

let grid_range g =
  let base = Grid.base_address g in
  (base, base + Grid.footprint_bytes g)

(* YS403 — flow through memory: if an input shares storage with the
   output and the stencil reads any neighbour of the write point, the
   sweep reads cells it has already updated (or, across pool slices,
   cells another slice is updating). A pointwise (radius-0) read of the
   aliased field is the one legal in-place pattern: each point reads
   its own cell before writing it. *)
let rule_alias info ~inputs ~output =
  let rank = info.Analysis.spec.Spec.rank in
  let out_range = grid_range output in
  let seen = ref [] in
  Array.iteri
    (fun i g ->
      if
        ranges_overlap (grid_range g) out_range
        && (not (List.mem i !seen))
        && Array.exists (fun r -> r > 0) (field_radius info ~rank i)
      then begin
        seen := i :: !seen;
        ()
      end)
    inputs;
  List.rev_map
    (fun i ->
      D.errorf ~code:"YS403"
        "input field %d aliases the output grid while the stencil reads \
         its neighbourhood (radius > 0): the sweep would read cells it \
         already updated"
        i)
    !seen

(* YS404 — the sweep reads up to radius cells beyond the interior (plus
   any region extension on extended sweeps); a thinner halo sends those
   reads out of the allocation. *)
let rule_halo ?extend info ~inputs =
  let rank = info.Analysis.spec.Spec.rank in
  let ext d =
    match extend with
    | Some e when Array.length e = rank -> e.(d)
    | _ -> 0
  in
  let ds = ref [] in
  Array.iteri
    (fun i g ->
      if Array.length (Grid.dims g) = rank then begin
        let need = field_radius info ~rank i in
        let have = Grid.halo g in
        Array.iteri
          (fun d r ->
            if have.(d) < r + ext d then
              ds :=
                D.errorf ~code:"YS404"
                  "input field %d has a halo of %d in dimension %d but the \
                   %ssweep reads up to %d cells out"
                  i have.(d) d
                  (if ext d > 0 then "extended " else "")
                  (r + ext d)
                :: !ds)
          need
      end)
    inputs;
  List.rev !ds

(* YS404 (extended sweeps) — the output is written up to the extension
   beyond the interior; the allocation must hold those cells. *)
let rule_extend_output ?extend ~output () =
  match extend with
  | None -> []
  | Some e ->
      let have = Grid.halo output in
      let ds = ref [] in
      if Array.length have = Array.length e then
        Array.iteri
          (fun d x ->
            if x > have.(d) then
              ds :=
                D.errorf ~code:"YS404"
                  "the extended sweep writes %d cell(s) past the interior \
                   in dimension %d but the output halo is only %d wide"
                  x d have.(d)
                :: !ds)
          e;
      List.rev !ds

(* YS405 — the candidate claims a vector-folded layout; executing it
   over grids laid out differently measures a different schedule than
   the model scored, and the vec-unit accounting is wrong. *)
let rule_layout (config : Config.t) ~inputs ~output =
  match config.Config.fold with
  | None -> []
  | Some f ->
      let ok g =
        match Grid.layout g with
        | Grid.Folded lf -> lf = f
        | Grid.Linear -> Array.for_all (fun x -> x = 1) f
      in
      let oks =
        Array.to_list (Array.map (fun g -> ok g) inputs) @ [ ok output ]
      in
      if List.for_all Fun.id oks then []
      else
        [ D.errorf ~loc:(D.Field "fold") ~code:"YS405"
            "schedule claims vector fold %s but the grids are not laid out \
             that way"
            (dims_str f) ]

let rule_grid_dims info ~inputs ~output =
  let rank = info.Analysis.spec.Spec.rank in
  let odims = Grid.dims output in
  let ds = ref [] in
  if Array.length inputs < info.Analysis.spec.Spec.n_fields then
    ds :=
      D.errorf ~code:"YS409" "kernel reads %d field%s but only %d grid%s given"
        info.Analysis.spec.Spec.n_fields
        (if info.Analysis.spec.Spec.n_fields = 1 then "" else "s")
        (Array.length inputs)
        (if Array.length inputs = 1 then " is" else "s are")
      :: !ds;
  if Array.length odims <> rank then
    ds :=
      D.errorf ~code:"YS409"
        "output grid is %s (rank %d) but the kernel is rank %d"
        (dims_str odims) (Array.length odims) rank
      :: !ds;
  Array.iteri
    (fun i g ->
      if Grid.dims g <> odims then
        ds :=
          D.errorf ~code:"YS409"
            "input field %d is %s but the output is %s" i
            (dims_str (Grid.dims g)) (dims_str odims)
          :: !ds)
    inputs;
  List.rev !ds

let grids ?extend info config ~inputs ~output =
  let structural = rule_grid_dims info ~inputs ~output in
  if structural <> [] then structural
  else
    rule_alias info ~inputs ~output
    @ rule_halo ?extend info ~inputs
    @ rule_extend_output ?extend ~output ()
    @ rule_layout config ~inputs ~output

(* ------------------------------------------------------------------ *)
(* YS406 — parallel-slice disjointness: the boxes assigned to pool
   slices must partition the iteration space. Disjoint in-bounds boxes
   whose volumes sum to the whole space are a partition. *)

let volume (lo, hi) =
  Array.fold_left ( * ) 1 (Array.mapi (fun d l -> max 0 (hi.(d) - l)) lo)

let box_str (lo, hi) = Printf.sprintf "[%s..%s)" (dims_str lo) (dims_str hi)

let boxes_overlap (a_lo, a_hi) (b_lo, b_hi) =
  let rank = Array.length a_lo in
  let sep = ref false in
  for d = 0 to rank - 1 do
    if a_hi.(d) <= b_lo.(d) || b_hi.(d) <= a_lo.(d) then sep := true
  done;
  (not !sep) && volume (a_lo, a_hi) > 0 && volume (b_lo, b_hi) > 0

let partition ~dims slices =
  let rank = Array.length dims in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iteri
    (fun i (lo, hi) ->
      if Array.length lo <> rank || Array.length hi <> rank then
        add
          (D.errorf ~code:"YS406" "slice %d has rank %d, iteration space %s"
             i (Array.length lo) (dims_str dims))
      else
        Array.iteri
          (fun d l ->
            if l < 0 || hi.(d) > dims.(d) then
              add
                (D.errorf ~code:"YS406"
                   "slice %d %s leaves the iteration space %s in dimension \
                    %d"
                   i (box_str (lo, hi)) (dims_str dims) d))
          lo)
    slices;
  if !ds = [] then begin
    let arr = Array.of_list slices in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if boxes_overlap arr.(i) arr.(j) then
          add
            (D.errorf ~code:"YS406"
               "slices %d %s and %d %s overlap: the same output cells would \
                be written twice"
               i (box_str arr.(i)) j (box_str arr.(j)))
      done
    done;
    if !ds = [] then begin
      let covered = List.fold_left (fun acc b -> acc + volume b) 0 slices in
      let total = Array.fold_left ( * ) 1 dims in
      if covered <> total then
        add
          (D.errorf ~code:"YS406"
             "slices cover %d of %d cells: the partition leaves output \
              cells unwritten"
             covered total)
    end
  end;
  List.rev !ds

(* ------------------------------------------------------------------ *)

let legal ?pool_width ?boundary info ~dims config =
  not (D.has_errors (schedule ?pool_width ?boundary info ~dims config))

let dedup ds =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : D.t) ->
      let key = (d.D.code, d.D.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ds

let space ?pool_width ?boundary info ~dims configs =
  dedup
    (List.concat_map
       (fun c -> schedule ?pool_width ?boundary info ~dims c)
       configs)
