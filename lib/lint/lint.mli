(** Umbrella for the static-analysis passes: one namespace for the
    diagnostic type, the three analyzer families, and the gating helper
    the modeling entry points use to refuse unusable inputs.

    The linters verify kernels, machine descriptions and tuning
    configurations {e before} any model run — every rule evaluates over
    already-built IR (expression trees, raw machine sections, config
    records) without compiling or executing anything. *)

module Diagnostic = Diagnostic
module Kernel = Kernel_lint
module Machine = Machine_lint
module Config = Config_lint
module Schedule = Schedule_lint
module Plan = Plan_lint
module Native = Native_lint
module Program = Program_lint

val rules : (string * Diagnostic.severity * string) list
(** The full rule table (code, default severity, one-line summary) —
    the source of the README table and [yasksite lint --rules]. *)

val exit_code : Diagnostic.t list -> int
(** [1] if any finding is an error, else [0]. *)

exception Gate_error of string
(** A gate refused its input. Distinct from [Invalid_argument] so the
    CLI can map lint-gate failures to exit code 1 while other input
    errors get their own code. *)

val gate : context:string -> Diagnostic.t list -> unit
(** [gate ~context ds] raises {!Gate_error} with the rendered error
    findings if [ds] contains any {!Diagnostic.Error}; warnings and
    hints pass silently. Used by the tuner and the offsite executor to
    refuse inputs the model cannot represent. *)
