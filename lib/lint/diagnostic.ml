type severity = Error | Warning | Hint

type loc =
  | No_loc
  | Span of { pos : int; stop : int }
  | Line of int
  | Field of string

type t = { code : string; severity : severity; message : string; loc : loc }

let v ?(loc = No_loc) severity ~code message = { code; severity; message; loc }

let errorf ?loc ~code fmt = Printf.ksprintf (v ?loc Error ~code) fmt

let warningf ?loc ~code fmt = Printf.ksprintf (v ?loc Warning ~code) fmt

let hintf ?loc ~code fmt = Printf.ksprintf (v ?loc Hint ~code) fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let is_error d = d.severity = Error

let errors ds = List.filter is_error ds

let has_errors ds = List.exists is_error ds

let exit_code ds = if has_errors ds then 1 else 0

let by_severity ds =
  List.stable_sort
    (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
    ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let summary ds =
  let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  String.concat ", "
    [ part (count Error ds) "error";
      part (count Warning ds) "warning";
      part (count Hint ds) "hint" ]

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Split [src] and locate the line containing byte offset [pos].
   Returns (1-based line number, 0-based column, the line's text). *)
let line_of_pos src pos =
  let pos = max 0 (min pos (String.length src)) in
  let rec start i = if i > 0 && src.[i - 1] <> '\n' then start (i - 1) else i in
  let rec stop i =
    if i < String.length src && src.[i] <> '\n' then stop (i + 1) else i
  in
  let a = start pos and b = stop pos in
  let lineno =
    1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0
          (String.sub src 0 a)
  in
  (lineno, pos - a, String.sub src a (b - a))

let nth_line src n =
  match List.nth_opt (String.split_on_char '\n' src) (n - 1) with
  | Some l -> l
  | None -> ""

let caret_line ~col ~len =
  String.make col ' ' ^ String.make (max 1 len) '^'

let render ?src ?(origin = "input") d =
  let buf = Buffer.create 128 in
  let head loc_str =
    Buffer.add_string buf
      (Printf.sprintf "%s%s: %s[%s]: %s\n" origin loc_str
         (severity_label d.severity) d.code d.message)
  in
  (match (d.loc, src) with
  | Span { pos; stop }, Some src ->
      let lineno, col, line = line_of_pos src pos in
      head (Printf.sprintf ":%d:%d" lineno (col + 1));
      Buffer.add_string buf ("    " ^ line ^ "\n");
      (* Clamp the caret run to the end of its first line. *)
      let len = min (stop - pos) (String.length line - col) in
      Buffer.add_string buf ("    " ^ caret_line ~col ~len ^ "\n")
  | Span { pos; _ }, None -> head (Printf.sprintf ":%d" pos)
  | Line n, Some src ->
      head (Printf.sprintf ":%d" n);
      let line = nth_line src n in
      if String.trim line <> "" then begin
        Buffer.add_string buf ("    " ^ line ^ "\n");
        let leading =
          let i = ref 0 in
          while
            !i < String.length line && (line.[!i] = ' ' || line.[!i] = '\t')
          do
            incr i
          done;
          !i
        in
        Buffer.add_string buf
          ("    "
          ^ caret_line ~col:leading
              ~len:(String.length (String.trim line))
          ^ "\n")
      end
  | Line n, None -> head (Printf.sprintf ":%d" n)
  | Field name, _ -> head (Printf.sprintf " (%s)" name)
  | No_loc, _ -> head "");
  Buffer.contents buf

let render_list ?src ?origin ds =
  String.concat "" (List.map (render ?src ?origin) (by_severity ds))

(* ------------------------------------------------------------------ *)
(* JSON rendering: a stable machine-readable schema so CI can diff
   findings across runs. Hand-rolled (no JSON dependency); the escaping
   covers everything our messages can contain. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let loc_to_json ?src loc =
  match loc with
  | No_loc -> {|{"kind":"none"}|}
  | Field name -> Printf.sprintf {|{"kind":"field","field":"%s"}|} (json_escape name)
  | Line n -> Printf.sprintf {|{"kind":"line","line":%d}|} n
  | Span { pos; stop } -> (
      match src with
      | None -> Printf.sprintf {|{"kind":"span","pos":%d,"stop":%d}|} pos stop
      | Some src ->
          let lineno, col, _ = line_of_pos src pos in
          Printf.sprintf
            {|{"kind":"span","pos":%d,"stop":%d,"line":%d,"col":%d}|} pos stop
            lineno (col + 1))

let to_json ?src ?(origin = "input") d =
  Printf.sprintf
    {|{"origin":"%s","code":"%s","severity":"%s","message":"%s","loc":%s}|}
    (json_escape origin) (json_escape d.code)
    (severity_label d.severity)
    (json_escape d.message) (loc_to_json ?src d.loc)

(* The rule table, rendered once for every subcommand: [yasksite lint
   --rules] in both text and JSON uses this, so the families can never
   drift apart across entry points. *)

let rules_to_text rules =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (code, sev, what) ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-8s %s\n" code (severity_label sev) what))
    rules;
  Buffer.contents buf

let rules_to_json rules =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf {|{"version":1,"rules":[|};
  List.iteri
    (fun i (code, sev, what) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n  {\"code\":\"%s\",\"severity\":\"%s\",\"summary\":\"%s\"}"
           (json_escape code) (severity_label sev) (json_escape what)))
    rules;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let report_to_json items =
  let buf = Buffer.create 512 in
  Buffer.add_string buf {|{"version":1,"findings":[|};
  List.iteri
    (fun i (origin, src, d) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf ("\n  " ^ to_json ?src ~origin d))
    items;
  let ds = List.map (fun (_, _, d) -> d) items in
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\"summary\":{\"errors\":%d,\"warnings\":%d,\"hints\":%d}}\n"
       (count Error ds) (count Warning ds) (count Hint ds));
  Buffer.contents buf
