(** Static checks on stencil kernels — the [YS1xx] rule family.

    The rules run over the expression tree (and, for parser-sourced
    kernels, the source spans reported by
    {!Yasksite_stencil.Parser.parse_expr_located}) without compiling or
    executing anything:

    - [YS100] (error): the source does not parse (syntax, axis or rank
      misuse; the caret points at the reported position);
    - [YS101] (error): an input field is declared but never read;
    - [YS102] (warning): the same access appears more than once, so the
      post-CSE load-set accounting diverges from the operation count;
    - [YS103] (error): division by literal zero;
    - [YS104] (hint): division by a symbolic coefficient — resolve it
      before modeling;
    - [YS105] (hint): radius-0 kernel (a point-wise map, not a stencil);
    - [YS106] (warning): asymmetric footprint along the streamed
      dimension, which breaks the symmetric-halo assumption of
      wavefront/temporal blocking;
    - [YS107] (error): the expression reads no field at all;
    - [YS108] (error): a reference lies outside the declared field
      range. *)

val spec : Yasksite_stencil.Spec.t -> Diagnostic.t list
(** Lint an already-constructed (DSL-built) kernel. Locations are
    {!Diagnostic.No_loc} since there is no source text. *)

val source : ?n_fields:int -> rank:int -> string -> Diagnostic.t list
(** Lint a kernel given in the textual syntax. Parse failures become a
    single [YS100] finding; otherwise the semantic rules run with
    caret-span locations. [n_fields] defaults to being inferred from
    the highest referenced field, exactly as
    {!Yasksite_stencil.Parser.parse_spec} does. Never raises. *)
