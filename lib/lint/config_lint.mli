(** Static checks on tuning configurations and search spaces — the
    [YS3xx] rule family. All rules evaluate the analytic machinery
    (layer conditions, capacities) without executing a sweep:

    - [YS301] (error): an explicit spatial block restricts the sweep
      but its layer-condition working set exceeds the safety-scaled
      share of {e every} cache level — blocking overhead with no reuse;
    - [YS302] (warning): a vector-fold extent does not divide the grid
      extent (scalar peel remainder the model ignores);
    - [YS303] (error): the search space is empty;
    - [YS304] (warning): the search space is a singleton;
    - [YS305] (error): block/fold/grid rank mismatch or non-positive
      grid extents (reported alone — later rules index by dimension);
    - [YS306] (warning): wavefront combined with streaming stores
      (stores bypass the cache the wavefront tries to reuse);
    - [YS307] (warning): more threads than cores;
    - [YS308] (warning): fold product differs from the SIMD width;
    - [YS309] (warning): the wavefront window does not fit the
      last-level cache share, so temporal blocking is ineffective. *)

val config :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  Yasksite_ecm.Config.t ->
  Diagnostic.t list
(** Lint one configuration against a kernel on a machine. Locations are
    {!Diagnostic.Field} names ([block], [fold], ...). Never raises. *)

val space :
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  Yasksite_ecm.Config.t list ->
  Diagnostic.t list
(** Lint a whole search space: cardinality rules ([YS303]/[YS304]) plus
    the per-configuration findings of {!config}, deduplicated by code
    and message. Never raises. *)
