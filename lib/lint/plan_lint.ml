(* Plan-IR dataflow verifier: the YS5xx rule family.

   The flat kernel plan is the last IR before execution, and the engine
   runs it with *unchecked* table indexing and an *unchecked* stack
   (Lower's drivers use unsafe accesses throughout) — so every safety
   property the driver assumes is proved here, by abstract
   interpretation over the plan body, before a certificate lets the
   engine skip its per-point shadow checks:

   - every slot the body references exists in the access table, and
     every access-table entry names a declared field at the plan's rank
     (YS500);
   - bound to concrete grids, every table index [x + slot_shift] stays
     inside the allocation across the full iteration space — which
     reduces to per-dimension |offset| <= halo, because the left pad
     covers exactly the halo (YS501);
   - postfix programs are stack-safe: no pop of an empty stack, the
     declared [depth] (which sizes the driver's unchecked scratch
     stack) is exactly the measured maximum (YS502), and exactly one
     value remains as the result (YS505);
   - dead loads (YS503), duplicate access-table entries (YS504),
     unresolved symbolic coefficients (YS506), statically reachable
     division by a provably-zero operand (YS507) and provably-zero
     dead arithmetic (YS508) are reported;
   - the plan's own FLOP/byte counts agree with the expression-level
     {!Analysis} the ECM model is fed, so certified counts are an
     independent check on the model inputs rather than a restatement
     of them (YS510).

   The dynamic counterparts are the engine's YS45x sanitizer traps
   (bounds escapes surface as YS453 when an uncertified plan is forced
   through) and the YS511 traced-traffic cross-validation performed at
   certification time. *)

module D = Diagnostic
module Plan = Yasksite_stencil.Plan
module Expr = Yasksite_stencil.Expr
module Analysis = Yasksite_stencil.Analysis
module Grid = Yasksite_grid.Grid

let dedup = Schedule_lint.dedup

(* ------------------------------------------------------------------ *)
(* Abstract stack interpretation of postfix programs                   *)

type stack_report = {
  max_depth : int;  (* highest stack occupancy reached before any fault *)
  final : int;  (* values left after the last instruction; -1 on underflow *)
  underflow_at : int option;  (* first instruction popping an empty stack *)
}

let simulate code =
  let sp = ref 0 and mx = ref 0 and under = ref None in
  (try
     Array.iteri
       (fun i (ins : Plan.instr) ->
         let need n = if !sp < n then begin under := Some i; raise Exit end in
         match ins with
         | Push _ | Load _ | Sym _ ->
             incr sp;
             if !sp > !mx then mx := !sp
         | Neg -> need 1
         | Add | Sub | Mul | Div | Min | Max ->
             need 2;
             decr sp
         | Sel ->
             need 3;
             sp := !sp - 2)
       code
   with Exit -> ());
  { max_depth = !mx;
    final = (match !under with None -> !sp | Some _ -> -1);
    underflow_at = !under }

let measured_depth code =
  let r = simulate code in
  if r.underflow_at = None && r.final = 1 then Some r.max_depth else None

(* Constant propagation over the same stack discipline: only sound once
   [simulate] proved there is no underflow. *)
type avalue = Known of float | Unknown

let const_rules code =
  let ds = ref [] in
  let stack = ref [] in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> Unknown
  in
  Array.iteri
    (fun i (ins : Plan.instr) ->
      match ins with
      | Push c -> stack := Known c :: !stack
      | Load _ | Sym _ -> stack := Unknown :: !stack
      | Neg ->
          let v = pop () in
          stack :=
            (match v with Known c -> Known (-.c) | Unknown -> Unknown)
            :: !stack
      | (Add | Sub | Mul | Div) as op ->
          let b = pop () in
          let a = pop () in
          (match op with
          | Div ->
              (match b with
              | Known c when c = 0.0 ->
                  ds :=
                    D.errorf ~code:"YS507"
                      "instruction %d divides by a provably zero operand" i
                    :: !ds
              | _ -> ())
          | Mul ->
              let zero = function Known c -> c = 0.0 | Unknown -> false in
              if zero a || zero b then
                ds :=
                  D.warningf ~code:"YS508"
                    "instruction %d multiplies by a provably zero operand \
                     (dead arithmetic)"
                    i
                  :: !ds
          | _ -> ());
          let r =
            match (op, a, b) with
            | Plan.Add, Known x, Known y -> Known (x +. y)
            | Plan.Sub, Known x, Known y -> Known (x -. y)
            | Plan.Mul, Known x, Known y -> Known (x *. y)
            | Plan.Div, Known x, Known y -> Known (x /. y)
            | _ -> Unknown
          in
          stack := r :: !stack
      | (Min | Max) as op ->
          let b = pop () in
          let a = pop () in
          let r =
            match (op, a, b) with
            | Plan.Min, Known x, Known y -> Known (Float.min x y)
            | Plan.Max, Known x, Known y -> Known (Float.max x y)
            | _ -> Unknown
          in
          stack := r :: !stack
      | Sel ->
          let b = pop () in
          let a = pop () in
          let c = pop () in
          let r =
            match (c, a, b) with
            | Known vc, Known va, Known vb ->
                Known (if vc > 0.0 then va else vb)
            | _ -> Unknown
          in
          stack := r :: !stack)
    code;
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Structure: every rule decidable from the plan alone                 *)

let structure (plan : Plan.t) =
  let n = Plan.n_slots plan in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* The access table itself: declared fields, rank-shaped offsets,
     duplicate entries. *)
  Array.iteri
    (fun s (a : Expr.access) ->
      if a.field < 0 || a.field >= plan.Plan.n_fields then
        add
          (D.errorf ~code:"YS500"
             "access-table slot %d reads field %d outside the declared \
              range [0, %d)"
             s a.field plan.Plan.n_fields);
      if Array.length a.offsets <> plan.Plan.rank then
        add
          (D.errorf ~code:"YS500"
             "access-table slot %d has %d offsets but the plan has rank %d"
             s (Array.length a.offsets) plan.Plan.rank))
    plan.Plan.accesses;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if plan.Plan.accesses.(i) = plan.Plan.accesses.(j) then
        add
          (D.warningf ~code:"YS504"
             "access-table slots %d and %d are duplicates (%s): the table \
              is not the canonical CSE-merged read set"
             i j
             (Expr.access_to_c plan.Plan.accesses.(i)))
    done
  done;
  let used = Array.make (max 1 n) false in
  (match plan.Plan.body with
  | Plan.Groups gs ->
      if Array.length gs = 0 then
        add
          (D.errorf ~code:"YS505"
             "the body has no groups: it computes no value");
      Array.iteri
        (fun g (grp : Plan.group) ->
          if Array.length grp.terms = 0 then
            add
              (D.errorf ~code:"YS505"
                 "group %d has no terms: evaluating it would read an \
                  empty chain"
                 g);
          (match grp.scale with
          | Some s when s = 0.0 ->
              add
                (D.warningf ~code:"YS508"
                   "group %d is scaled by zero: the whole group is dead \
                    arithmetic"
                   g)
          | _ -> ());
          Array.iteri
            (fun t (tm : Plan.term) ->
              if tm.slot < -1 || tm.slot >= n then
                add
                  (D.errorf ~code:"YS500"
                     "group %d term %d references slot %d outside the \
                      access table (size %d)"
                     g t tm.slot n)
              else if tm.slot >= 0 then begin
                used.(tm.slot) <- true;
                if tm.coeff = 0.0 then
                  add
                    (D.warningf ~code:"YS508"
                       "group %d term %d multiplies slot %d by zero \
                        (dead arithmetic)"
                       g t tm.slot)
              end)
            grp.terms)
        gs
  | Plan.Program { code; depth } ->
      Array.iteri
        (fun i (ins : Plan.instr) ->
          match ins with
          | Plan.Sym name ->
              add
                (D.errorf ~code:"YS506"
                   "instruction %d references unresolved coefficient %S: \
                    the plan cannot be bound for execution"
                   i name)
          | Plan.Load s ->
              if s < 0 || s >= n then
                add
                  (D.errorf ~code:"YS500"
                     "instruction %d loads slot %d outside the access \
                      table (size %d)"
                     i s n)
              else used.(s) <- true
          | _ -> ())
        code;
      let r = simulate code in
      (match r.underflow_at with
      | Some i ->
          add
            (D.errorf ~code:"YS502"
               "instruction %d pops an empty stack (underflow): the \
                driver's unchecked stack would read garbage"
               i)
      | None ->
          if r.final = 0 then
            add
              (D.errorf ~code:"YS505"
                 "the program leaves no value on the stack: there is no \
                  result to store")
          else if r.final > 1 then
            add
              (D.errorf ~code:"YS505"
                 "%d values are left on the stack after the final \
                  instruction: all but the result are dead computation"
                 r.final);
          if r.max_depth <> depth then
            add
              (D.errorf ~code:"YS502"
                 "declared stack depth %d but the program's measured \
                  maximum is %d: the driver sizes its unchecked stack \
                  from the declaration"
                 depth r.max_depth);
          ds := List.rev_append (const_rules code) !ds));
  for s = 0 to n - 1 do
    if not used.(s) then
      add
        (D.warningf ~code:"YS503"
           "access-table slot %d (%s) is never read by the body (dead \
            load): traffic counts overbill the kernel"
           s
           (Expr.access_to_c plan.Plan.accesses.(s)))
  done;
  dedup (List.rev !ds)

(* ------------------------------------------------------------------ *)
(* Bounds: the plan against concrete grids                             *)

let bounds (plan : Plan.t) ~inputs ~output =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  if Array.length inputs <> plan.Plan.n_fields then
    add
      (D.errorf ~code:"YS501"
         "the plan reads %d field(s) but %d input grid(s) were given"
         plan.Plan.n_fields (Array.length inputs));
  let rank_ok = ref (Array.length inputs = plan.Plan.n_fields) in
  Array.iteri
    (fun i g ->
      if Grid.rank g <> plan.Plan.rank then begin
        rank_ok := false;
        add
          (D.errorf ~code:"YS501"
             "input grid %d has rank %d but the plan has rank %d" i
             (Grid.rank g) plan.Plan.rank)
      end)
    inputs;
  if Grid.rank output <> plan.Plan.rank then
    add
      (D.errorf ~code:"YS501"
         "the output grid has rank %d but the plan has rank %d"
         (Grid.rank output) plan.Plan.rank);
  (* The driver's table index for slot s at interior x is
     [x + offset + left_pad], and the left pad covers exactly the halo:
     the access stays inside the allocation for every interior point
     iff |offset| <= halo in every dimension — independent of the grid
     extents, which is what makes the certificate transferable across
     problem sizes. *)
  if !rank_ok then
    Array.iteri
      (fun s (a : Expr.access) ->
        if a.field >= 0 && a.field < Array.length inputs
           && Array.length a.offsets = plan.Plan.rank
        then begin
          let h = Grid.halo inputs.(a.field) in
          Array.iteri
            (fun d off ->
              if abs off > h.(d) then
                add
                  (D.errorf ~code:"YS501"
                     "slot %d (%s) reaches %d cell(s) past the interior \
                      in dimension %d but field %d's halo is only %d \
                      wide: the access escapes the allocation"
                     s
                     (Expr.access_to_c a)
                     (abs off) d a.field h.(d)))
            a.offsets
        end)
      plan.Plan.accesses;
  dedup (List.rev !ds)

(* ------------------------------------------------------------------ *)
(* Counts: the plan's own work, cross-validated against Analysis       *)

type counts = {
  adds : int;
  muls : int;
  divs : int;
  flops : int;
  loads : int;
  stores : int;
}

let counts (plan : Plan.t) =
  let adds, muls, divs =
    match plan.Plan.body with
    | Plan.Groups gs ->
        let adds = ref (max 0 (Array.length gs - 1)) and muls = ref 0 in
        Array.iter
          (fun (g : Plan.group) ->
            adds := !adds + max 0 (Array.length g.terms - 1);
            if g.scale <> None then incr muls;
            Array.iter
              (fun (tm : Plan.term) ->
                if tm.slot >= 0 && tm.coeff <> 1.0 && tm.coeff <> -1.0 then
                  incr muls)
              g.terms)
          gs;
        (!adds, !muls, 0)
    | Plan.Program { code; _ } ->
        let a = ref 0 and m = ref 0 and d = ref 0 in
        Array.iter
          (fun (ins : Plan.instr) ->
            match ins with
            (* Min/Max/Sel are billed as additive work, matching
               Analysis.count_ops. *)
            | Plan.Add | Plan.Sub | Plan.Min | Plan.Max | Plan.Sel -> incr a
            | Plan.Mul -> incr m
            | Plan.Div -> incr d
            | _ -> ())
          code;
        (!a, !m, !d)
  in
  { adds;
    muls;
    divs;
    flops = adds + muls + divs;
    loads = Plan.n_slots plan;
    stores = 1 }

let counts_agree (plan : Plan.t) (info : Analysis.t) =
  let c = counts plan in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  if c.loads <> info.Analysis.loads then
    add
      (D.errorf ~code:"YS510"
         "the plan's access table has %d slots but the analysis counts \
          %d distinct loads per update"
         c.loads info.Analysis.loads);
  let plan_acc = List.sort compare (Array.to_list plan.Plan.accesses) in
  let ana_acc = List.sort compare info.Analysis.accesses in
  if plan_acc <> ana_acc then
    add
      (D.errorf ~code:"YS510"
         "the plan's access table is not the analysis read set: traced \
          traffic and modeled traffic would diverge");
  if c.stores <> info.Analysis.stores then
    add
      (D.errorf ~code:"YS510"
         "the plan stores %d value(s) per update but the analysis bills %d"
         c.stores info.Analysis.stores);
  (* Constant folding may legitimately *remove* arithmetic relative to
     the expression tree, so the plan may execute fewer flops than the
     analysis bills — never more. *)
  if c.flops > info.Analysis.flops then
    add
      (D.errorf ~code:"YS510"
         "the plan executes %d flops per update but the analysis bills \
          only %d: the ECM in-core input undercounts the kernel"
         c.flops info.Analysis.flops);
  if c.divs > info.Analysis.divs then
    add
      (D.errorf ~code:"YS510"
         "the plan executes %d division(s) per update but the analysis \
          bills only %d"
         c.divs info.Analysis.divs);
  dedup (List.rev !ds)

(* ------------------------------------------------------------------ *)

let check ?info (plan : Plan.t) ~inputs ~output =
  let ds = structure plan @ bounds plan ~inputs ~output in
  let ds =
    match info with
    | None -> ds
    | Some info -> ds @ counts_agree plan info
  in
  dedup ds

let safe ?info plan ~inputs ~output =
  not (D.has_errors (check ?info plan ~inputs ~output))
