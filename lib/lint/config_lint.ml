module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Analysis = Yasksite_stencil.Analysis
module Config = Yasksite_ecm.Config
module Lc = Yasksite_ecm.Lc
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* YS305: structural rank mismatches. Anything downstream indexes the
   block/fold arrays by dimension, so nothing else is worth reporting
   until these hold. *)
let rule_rank (a : Analysis.t) ~dims (c : Config.t) =
  let rank = a.spec.rank in
  let arr_rule name arr =
    match arr with
    | Some v when Array.length v <> rank ->
        [ D.errorf ~loc:(D.Field name) ~code:"YS305"
            "%s has %d extents but the kernel is rank-%d" name
            (Array.length v) rank ]
    | Some v when Array.exists (fun e -> e < 0) v ->
        [ D.errorf ~loc:(D.Field name) ~code:"YS305"
            "%s has a negative extent" name ]
    | _ -> []
  in
  let dims_rule =
    if Array.length dims <> rank then
      [ D.errorf ~loc:(D.Field "dims") ~code:"YS305"
          "grid has %d dimensions but the kernel is rank-%d"
          (Array.length dims) rank ]
    else if Array.exists (fun d -> d <= 0) dims then
      [ D.errorf ~loc:(D.Field "dims") ~code:"YS305"
          "grid extents must be positive" ]
    else []
  in
  dims_rule @ arr_rule "block" c.block @ arr_rule "fold" c.fold

(* ------------------------------------------------------------------ *)
(* YS302: a fold extent that does not divide the grid extent leaves a
   remainder handled by scalar peel loops — legal, but the model (and
   YASK itself) assumes whole fold blocks. *)
let rule_fold_divides (a : Analysis.t) ~dims (c : Config.t) =
  match c.fold with
  | None -> []
  | Some fold ->
      List.concat
        (List.init a.spec.rank (fun d ->
             if fold.(d) > 1 && dims.(d) mod fold.(d) <> 0 then
               [ D.warningf ~loc:(D.Field "fold") ~code:"YS302"
                   "fold extent %d does not divide grid extent %d in \
                    dimension %d: the remainder runs as a scalar peel loop \
                    the model does not account for"
                   fold.(d) dims.(d) d ]
             else []))

(* YS308: the whole point of a multi-dimensional fold is to fill one
   SIMD register; any other product wastes lanes or spills. *)
let rule_fold_lanes (m : Machine.t) (c : Config.t) =
  match c.fold with
  | None -> []
  | Some fold ->
      let product = Array.fold_left ( * ) 1 fold in
      let lanes = m.simd.Machine.dp_lanes in
      if product <> 1 && product <> lanes then
        [ D.warningf ~loc:(D.Field "fold") ~code:"YS308"
            "fold product %d does not match the machine's SIMD width (%d \
             doubles): vector registers are %s"
            product lanes
            (if product < lanes then "partially filled" else "over-packed") ]
      else []

(* ------------------------------------------------------------------ *)
(* YS301: an explicit spatial block whose layer-condition working set
   exceeds even the largest per-thread cache share. Such a block
   restricts the sweep (costing loop overhead and halo traffic) without
   establishing reuse in any level — strictly worse than not blocking.
   The working-set formula mirrors Lc.field_multiplicities. *)

let span offsets ~dim =
  match List.map (fun o -> o.(dim)) offsets with
  | [] -> 0
  | d :: rest ->
      let lo = List.fold_left min d rest and hi = List.fold_left max d rest in
      hi - lo + 1

let block_working_set (a : Analysis.t) ~dims (c : Config.t) =
  let block = Config.block_extents c ~dims in
  let fold = Config.fold_extents c ~rank:a.spec.rank in
  let offs f = Analysis.accesses_of_field a f in
  match a.spec.rank with
  | 1 -> 0.0
  | 2 ->
      let bx = block.(1) and fy = fold.(0) in
      List.fold_left
        (fun acc f ->
          acc
          +. float_of_int (max (span (offs f) ~dim:0) fy)
             *. float_of_int bx *. 8.0)
        0.0 a.read_fields
  | _ ->
      let by = block.(1) and bx = block.(2) in
      let fz = fold.(0) in
      let plane_bytes = float_of_int (by * bx * 8) in
      List.fold_left
        (fun acc f ->
          acc +. (float_of_int (max (span (offs f) ~dim:0) fz) *. plane_bytes))
        0.0 a.read_fields

let largest_share (m : Machine.t) ~threads =
  Array.fold_left
    (fun acc (lvl : Cache_level.t) ->
      max acc (lvl.size_bytes / min threads lvl.shared_by))
    0 m.caches

(* Only explicit blocks that genuinely restrict the sweep are gated:
   model-generated candidates legitimately include oversized blocks
   (the model ranks them down on its own). *)
let restricting_block ~dims (c : Config.t) =
  match c.block with
  | None -> []
  | Some block ->
      List.filter_map
        (fun d ->
          if block.(d) > 0 && block.(d) < dims.(d) then Some d else None)
        (List.init (Array.length dims) (fun d -> d))

let rule_block_cache (m : Machine.t) (a : Analysis.t) ~dims (c : Config.t) =
  if a.spec.rank < 2 || restricting_block ~dims c = [] then []
  else begin
    let ws = block_working_set a ~dims c in
    let share = largest_share m ~threads:c.threads in
    let budget = Lc.safety *. float_of_int share in
    if ws > budget then
      [ D.errorf ~loc:(D.Field "block") ~code:"YS301"
          "block working set (%.0f KiB) exceeds the layer-condition budget \
           of every cache level (largest per-thread share %d KiB x safety \
           %.1f = %.0f KiB): the block restricts the sweep without \
           establishing reuse anywhere"
          (ws /. 1024.0) (share / 1024) Lc.safety (budget /. 1024.0) ]
    else []
  end

(* ------------------------------------------------------------------ *)
(* Smaller consistency rules *)

let rule_threads (m : Machine.t) (c : Config.t) =
  if c.threads > m.cores then
    [ D.warningf ~loc:(D.Field "threads") ~code:"YS307"
        "%d threads exceed the machine's %d cores: the model assumes one \
         thread per core, so predictions for oversubscribed runs are \
         unreliable"
        c.threads m.cores ]
  else []

let rule_wavefront_stores (c : Config.t) =
  if c.wavefront > 1 && c.streaming_stores then
    [ D.warningf ~loc:(D.Field "streaming_stores") ~code:"YS306"
        "streaming stores bypass the cache hierarchy, so the wavefront's \
         temporal reuse only applies to the load side; the combination \
         rarely pays off" ]
  else []

let rule_wavefront_fits (m : Machine.t) (a : Analysis.t) ~dims (c : Config.t) =
  if c.wavefront > 1 && not (Lc.wavefront_fits m a ~dims ~config:c) then
    [ D.warningf ~loc:(D.Field "wavefront") ~code:"YS309"
        "wavefront depth %d has a moving window larger than the last-level \
         cache share: temporal blocking brings no traffic reduction at this \
         depth"
        c.wavefront ]
  else []

(* ------------------------------------------------------------------ *)
(* Entry points *)

let config m a ~dims c =
  match rule_rank a ~dims c with
  | _ :: _ as structural -> structural
  | [] ->
      rule_block_cache m a ~dims c
      @ rule_fold_divides a ~dims c
      @ rule_fold_lanes m c @ rule_threads m c @ rule_wavefront_stores c
      @ rule_wavefront_fits m a ~dims c

let space m a ~dims configs =
  let cardinality =
    match configs with
    | [] ->
        [ D.errorf ~loc:(D.Field "space") ~code:"YS303"
            "the search space is empty: no configuration to evaluate" ]
    | [ only ] ->
        [ D.warningf ~loc:(D.Field "space") ~code:"YS304"
            "the search space holds a single configuration (%s): there is \
             nothing to tune"
            (Config.describe only) ]
    | _ -> []
  in
  (* Per-config findings, deduplicated: a space of hundreds of candidates
     sharing one defective fold should report it once. *)
  let seen = Hashtbl.create 16 in
  let per_config =
    List.concat_map
      (fun c ->
        List.filter
          (fun (d : D.t) ->
            let key = (d.code, d.message) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          (config m a ~dims c))
      configs
  in
  cardinality @ per_config
