module Cache_level = Yasksite_arch.Cache_level

type t = {
  n_sets : int;
  assoc : int;
  (* Per-way state, indexed [set * assoc + way]. tag = -1 means invalid. *)
  tags : int array;
  dirty : Bytes.t;
  stamp : int array; (* LRU age stamps; higher = more recent *)
  mutable clock : int;
}

let create (spec : Cache_level.t) ~effective_size =
  let set_bytes = spec.assoc * spec.line_bytes in
  let n_sets = max 1 (effective_size / set_bytes) in
  { n_sets;
    assoc = spec.assoc;
    tags = Array.make (n_sets * spec.assoc) (-1);
    dirty = Bytes.make (n_sets * spec.assoc) '\000';
    stamp = Array.make (n_sets * spec.assoc) 0;
    clock = 0 }

let copy t =
  { t with
    tags = Array.copy t.tags;
    dirty = Bytes.copy t.dirty;
    stamp = Array.copy t.stamp }

let set_of t line = line mod t.n_sets

let find_way t line =
  let s = set_of t line in
  let base = s * t.assoc in
  let rec go w =
    if w = t.assoc then -1
    else if t.tags.(base + w) = line then base + w
    else go (w + 1)
  in
  go 0

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let probe t ~line =
  let i = find_way t line in
  if i < 0 then false
  else begin
    t.stamp.(i) <- tick t;
    true
  end

let is_present t ~line = find_way t line >= 0

let mark_dirty t ~line =
  let i = find_way t line in
  if i >= 0 then Bytes.set t.dirty i '\001'

let insert t ~line ~dirty =
  let i = find_way t line in
  if i >= 0 then begin
    t.stamp.(i) <- tick t;
    if dirty then Bytes.set t.dirty i '\001';
    None
  end
  else begin
    let s = set_of t line in
    let base = s * t.assoc in
    (* Pick an invalid way, else the LRU way. *)
    let victim = ref (base) in
    let found_invalid = ref false in
    for w = 0 to t.assoc - 1 do
      let i = base + w in
      if (not !found_invalid) && t.tags.(i) = -1 then begin
        victim := i;
        found_invalid := true
      end
      else if (not !found_invalid) && t.stamp.(i) < t.stamp.(!victim) then
        victim := i
    done;
    let i = !victim in
    let evicted =
      if t.tags.(i) = -1 then None
      else Some (t.tags.(i), Bytes.get t.dirty i = '\001')
    in
    t.tags.(i) <- line;
    Bytes.set t.dirty i (if dirty then '\001' else '\000');
    t.stamp.(i) <- tick t;
    evicted
  end

let extract t ~line =
  let i = find_way t line in
  if i < 0 then None
  else begin
    let d = Bytes.get t.dirty i = '\001' in
    t.tags.(i) <- -1;
    Bytes.set t.dirty i '\000';
    t.stamp.(i) <- 0;
    Some d
  end

let resident_lines t =
  Array.fold_left (fun n tag -> if tag >= 0 then n + 1 else n) 0 t.tags

let capacity_lines t = t.n_sets * t.assoc
