(** A core's view of the full cache hierarchy, composing {!Level}s
    according to their fill policies:

    - [Inclusive] levels are filled on every miss path through them and
      receive write-backs from the level above;
    - [Victim] levels (AMD-Rome-style L3) are filled only by evictions
      from the level above; a hit in a victim level moves the line back
      up and removes it there.

    All writes are write-allocate / write-back. Shared levels are
    modelled with their per-active-core share of the capacity, which is
    how the ECM layer-condition analysis treats them too, so simulator
    and model see the same effective sizes. *)

type t

type counters = {
  accesses : int;  (** loads + stores issued by the core *)
  loads : int;
  stores : int;
  hits : int array;  (** per level *)
  misses : int array;  (** per level, counted only when probed *)
  writebacks : int array;
      (** dirty evictions leaving each level (towards the next) *)
  mem_loads : int;  (** lines fetched from memory *)
  mem_writebacks : int;  (** dirty lines written back to memory *)
  nt_stores : int;  (** streaming stores issued *)
  nt_lines : int;  (** lines' worth of streaming data sent to memory *)
}

val create : ?active_cores:int -> Yasksite_arch.Machine.t -> t
(** [create m] builds the hierarchy of machine [m] as seen by one core
    when [active_cores] (default 1) cores are running: each shared
    level's capacity is divided by [min active_cores shared_by]. *)

val clone : t -> t
(** Independent deep copy: cache contents (every level's tags, dirty
    bits and LRU state) and all counters are duplicated, so a clone can
    be driven from another domain without sharing mutable state. *)

val merge_counters : into:t -> t -> unit
(** [merge_counters ~into src] adds every event count of [src]
    (accesses, per-level hits/misses/write-backs, boundary traffic,
    memory traffic, streaming-store accounting) into [into]. Cache
    {e contents} of [into] are left untouched. Raises
    [Invalid_argument] if the hierarchies have different depths. *)

val adopt_contents : into:t -> t -> unit
(** [adopt_contents ~into src] replaces [into]'s cache {e contents} with
    a deep copy of [src]'s, leaving [into]'s counters unchanged — the
    complement of {!merge_counters}. Raises [Invalid_argument] on depth
    mismatch. *)

val read : t -> addr:int -> unit
(** Issue a load of the byte at [addr]. *)

val write : t -> addr:int -> unit
(** Issue a store to the byte at [addr] (write-allocate: may fetch). *)

val write_nt : t -> addr:int -> unit
(** Non-temporal (streaming) store: the line bypasses the hierarchy and
    goes straight to memory, without write-allocate. If the line happens
    to be resident it is updated in place instead (hardware behaviour of
    MOVNT on a cached line is implementation-defined; updating in place
    keeps the simulator's data consistent). Each bypassed line's bytes
    are accumulated and charged to the memory boundary once per line's
    worth of stores. *)

val counters : t -> counters

val reset_counters : t -> unit
(** Zero the counters, keeping cache contents (to skip warm-up sweeps). *)

val traffic_lines : t -> level:int -> int
(** Lines moved between level [level] (0-based, 0 = L1) and the next
    level out — misses of [level] plus write-backs from [level]. For the
    last level this is memory traffic. *)

val traffic_bytes : t -> level:int -> int

val line_bytes : t -> int

val levels : t -> int

val flush : t -> unit
(** Invalidate all contents and reset counters. *)
