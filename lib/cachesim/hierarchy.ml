module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level

type counters = {
  accesses : int;
  loads : int;
  stores : int;
  hits : int array;
  misses : int array;
  writebacks : int array;
  mem_loads : int;
  mem_writebacks : int;
  nt_stores : int;
  nt_lines : int;
}

type t = {
  specs : Cache_level.t array;
  active_cores : int;
  mutable levels : Level.t array;
  line_bytes : int;
  n : int;
  mutable accesses : int;
  mutable loads : int;
  mutable stores : int;
  hits : int array;
  misses : int array;
  writebacks : int array;
  boundary : int array; (* line transfers across boundary k <-> k+1/mem *)
  mutable mem_loads : int;
  mutable mem_writebacks : int;
  mutable nt_stores : int;
  mutable nt_bytes : int;
}

let effective_size (spec : Cache_level.t) ~active_cores =
  spec.size_bytes / min active_cores spec.shared_by

let build_levels specs ~active_cores =
  Array.map
    (fun spec ->
      Level.create spec ~effective_size:(effective_size spec ~active_cores))
    specs

let create ?(active_cores = 1) (m : Machine.t) =
  if active_cores <= 0 then
    invalid_arg "Hierarchy.create: active_cores must be positive";
  let specs = m.caches in
  let n = Array.length specs in
  { specs;
    active_cores;
    levels = build_levels specs ~active_cores;
    line_bytes = Machine.line_bytes m;
    n;
    accesses = 0;
    loads = 0;
    stores = 0;
    hits = Array.make n 0;
    misses = Array.make n 0;
    writebacks = Array.make n 0;
    boundary = Array.make n 0;
    mem_loads = 0;
    mem_writebacks = 0;
    nt_stores = 0;
    nt_bytes = 0 }

(* Deep copy for domain-parallel traced sweeps: each domain simulates
   its slice against a private clone seeded with the shared state, and
   the clones' counters are merged back at the barrier. *)
let clone t =
  { t with
    levels = Array.map Level.copy t.levels;
    hits = Array.copy t.hits;
    misses = Array.copy t.misses;
    writebacks = Array.copy t.writebacks;
    boundary = Array.copy t.boundary }

(* Add [src]'s event counts into [into]. Cache contents of [into] are
   untouched — merging is about accounting, not coherence. *)
let merge_counters ~into src =
  if into.n <> src.n then invalid_arg "Hierarchy.merge_counters: level mismatch";
  into.accesses <- into.accesses + src.accesses;
  into.loads <- into.loads + src.loads;
  into.stores <- into.stores + src.stores;
  for k = 0 to into.n - 1 do
    into.hits.(k) <- into.hits.(k) + src.hits.(k);
    into.misses.(k) <- into.misses.(k) + src.misses.(k);
    into.writebacks.(k) <- into.writebacks.(k) + src.writebacks.(k);
    into.boundary.(k) <- into.boundary.(k) + src.boundary.(k)
  done;
  into.mem_loads <- into.mem_loads + src.mem_loads;
  into.mem_writebacks <- into.mem_writebacks + src.mem_writebacks;
  into.nt_stores <- into.nt_stores + src.nt_stores;
  into.nt_bytes <- into.nt_bytes + src.nt_bytes

(* Replace [into]'s cache contents with a deep copy of [src]'s, leaving
   [into]'s counters alone. The parallel sweep uses this to leave the
   shared hierarchy in the final state of its last slice, the best
   stand-in for the sequential end state. *)
let adopt_contents ~into src =
  if into.n <> src.n then invalid_arg "Hierarchy.adopt_contents: level mismatch";
  into.levels <- Array.map Level.copy src.levels

(* Handle a line evicted from level [k], cascading outwards. *)
let rec evicted_from t k line dirty =
  if k = t.n - 1 then begin
    (* Last level: dirty lines go to memory, clean lines vanish. *)
    if dirty then begin
      t.writebacks.(k) <- t.writebacks.(k) + 1;
      t.boundary.(k) <- t.boundary.(k) + 1;
      t.mem_writebacks <- t.mem_writebacks + 1
    end
  end
  else begin
    let next = k + 1 in
    match t.specs.(next).fill with
    | Cache_level.Victim ->
        (* Victim caches absorb every eviction, clean or dirty. *)
        t.boundary.(k) <- t.boundary.(k) + 1;
        if dirty then t.writebacks.(k) <- t.writebacks.(k) + 1;
        (match Level.insert t.levels.(next) ~line ~dirty with
        | None -> ()
        | Some (el, ed) -> evicted_from t next el ed)
    | Cache_level.Inclusive ->
        if dirty then begin
          (* Write-back: the line is normally still present outside. *)
          t.boundary.(k) <- t.boundary.(k) + 1;
          t.writebacks.(k) <- t.writebacks.(k) + 1;
          match Level.insert t.levels.(next) ~line ~dirty:true with
          | None -> ()
          | Some (el, ed) -> evicted_from t next el ed
        end
  end

let access t ~addr ~is_write =
  t.accesses <- t.accesses + 1;
  if is_write then t.stores <- t.stores + 1 else t.loads <- t.loads + 1;
  let line = addr / t.line_bytes in
  if Level.probe t.levels.(0) ~line then begin
    t.hits.(0) <- t.hits.(0) + 1;
    if is_write then Level.mark_dirty t.levels.(0) ~line
  end
  else begin
    t.misses.(0) <- t.misses.(0) + 1;
    (* Find the source of the line: first outer level holding it, else
       memory ([source = t.n]). [carried] is the dirty bit travelling with
       the line when a victim cache surrenders it. *)
    let rec locate k =
      if k = t.n then (t.n, false)
      else begin
        match t.specs.(k).fill with
        | Cache_level.Victim ->
            (match Level.extract t.levels.(k) ~line with
            | Some d ->
                t.hits.(k) <- t.hits.(k) + 1;
                (k, d)
            | None ->
                t.misses.(k) <- t.misses.(k) + 1;
                locate (k + 1))
        | Cache_level.Inclusive ->
            if Level.probe t.levels.(k) ~line then begin
              t.hits.(k) <- t.hits.(k) + 1;
              (k, false)
            end
            else begin
              t.misses.(k) <- t.misses.(k) + 1;
              locate (k + 1)
            end
      end
    in
    let source, carried = locate 1 in
    if source = t.n then t.mem_loads <- t.mem_loads + 1;
    (* The line crosses every boundary between its source and the core. *)
    for k = 0 to source - 1 do
      t.boundary.(k) <- t.boundary.(k) + 1
    done;
    (* Fill inner levels on the way in; victim levels are bypassed. *)
    for k = source - 1 downto 0 do
      let fill_here = k = 0 || t.specs.(k).fill = Cache_level.Inclusive in
      if fill_here then begin
        let dirty = k = 0 && carried in
        match Level.insert t.levels.(k) ~line ~dirty with
        | None -> ()
        | Some (el, ed) -> evicted_from t k el ed
      end
    done;
    if is_write then Level.mark_dirty t.levels.(0) ~line
  end

let read t ~addr = access t ~addr ~is_write:false

let write t ~addr = access t ~addr ~is_write:true

(* Streaming store: no allocation, no fetch; data flows core -> memory.
   We charge the memory boundary one line per line's worth of bytes
   (write-combining buffers merge consecutive element stores). Following
   Intel MOVNT semantics, resident copies of the line are invalidated
   (after writing back a dirty copy), so repeated streaming passes really
   do stream. *)
let write_nt t ~addr =
  t.accesses <- t.accesses + 1;
  t.stores <- t.stores + 1;
  t.nt_stores <- t.nt_stores + 1;
  let line = addr / t.line_bytes in
  for k = 0 to t.n - 1 do
    match Level.extract t.levels.(k) ~line with
    | Some true ->
        (* Dirty victim: its data reaches memory before the NT write. *)
        t.boundary.(t.n - 1) <- t.boundary.(t.n - 1) + 1;
        t.mem_writebacks <- t.mem_writebacks + 1
    | Some false | None -> ()
  done;
  t.nt_bytes <- t.nt_bytes + 8;
  if t.nt_bytes >= t.line_bytes then begin
    t.nt_bytes <- t.nt_bytes - t.line_bytes;
    t.boundary.(t.n - 1) <- t.boundary.(t.n - 1) + 1;
    t.mem_writebacks <- t.mem_writebacks + 1
  end

let counters t =
  { accesses = t.accesses;
    loads = t.loads;
    stores = t.stores;
    hits = Array.copy t.hits;
    misses = Array.copy t.misses;
    writebacks = Array.copy t.writebacks;
    mem_loads = t.mem_loads;
    mem_writebacks = t.mem_writebacks;
    nt_stores = t.nt_stores;
    nt_lines = t.nt_stores * 8 / t.line_bytes }

let reset_counters t =
  t.accesses <- 0;
  t.loads <- 0;
  t.stores <- 0;
  Array.fill t.hits 0 t.n 0;
  Array.fill t.misses 0 t.n 0;
  Array.fill t.writebacks 0 t.n 0;
  Array.fill t.boundary 0 t.n 0;
  t.mem_loads <- 0;
  t.mem_writebacks <- 0;
  t.nt_stores <- 0;
  t.nt_bytes <- 0

let traffic_lines t ~level =
  if level < 0 || level >= t.n then invalid_arg "Hierarchy.traffic_lines";
  t.boundary.(level)

let traffic_bytes t ~level = traffic_lines t ~level * t.line_bytes

let line_bytes t = t.line_bytes

let levels t = t.n

let flush t =
  t.levels <- build_levels t.specs ~active_cores:t.active_cores;
  reset_counters t
