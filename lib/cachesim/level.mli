(** One set-associative cache level with true-LRU replacement.

    Lines are identified by their line address (byte address divided by
    the line size). The level does not know about the rest of the
    hierarchy; {!Hierarchy} composes levels according to each level's
    fill policy. *)

type t

val create : Yasksite_arch.Cache_level.t -> effective_size:int -> t
(** [create spec ~effective_size] builds a level with [spec]'s
    associativity and line size but [effective_size] bytes of capacity
    (the per-core share of a shared level). [effective_size] must be at
    least one set's worth of lines. *)

val copy : t -> t
(** Independent deep copy: contents, dirty bits and LRU state are
    duplicated; mutating either copy never affects the other. *)

val probe : t -> line:int -> bool
(** Lookup; refreshes LRU on hit. Does not fill. *)

val is_present : t -> line:int -> bool
(** Lookup without touching LRU state (for invariant checks). *)

val insert : t -> line:int -> dirty:bool -> (int * bool) option
(** Insert (or refresh) a line. If the line was already present its dirty
    bit is OR-ed and LRU refreshed, returning [None]. Otherwise the LRU
    victim of the target set, if any, is returned as
    [Some (line, was_dirty)]. *)

val mark_dirty : t -> line:int -> unit
(** Set the dirty bit of a resident line; no-op if absent. *)

val extract : t -> line:int -> bool option
(** Remove a line (victim-cache hit path); returns its dirty bit, or
    [None] if absent. *)

val resident_lines : t -> int
(** Number of currently valid lines (for tests). *)

val capacity_lines : t -> int
