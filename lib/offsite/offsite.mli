(** The Offsite pipeline: enumerate implementation variants of an
    explicit ODE method over a stencil-RHS PDE, obtain a per-kernel
    performance prediction from YaskSite's ECM model (optionally with
    analytically tuned kernel configurations), rank the variants, and
    validate the ranking against measurements — the paper's integration
    experiment. *)

type candidate = {
  variant : Variant.t;
  tuned : bool;  (** kernel configs chosen by the analytic advisor *)
  configs : (string * Yasksite_ecm.Config.t) list;  (** per kernel label *)
  predicted_step_seconds : float;
  measured_step_seconds : float;
}

val score :
  ?cache:Yasksite_ecm.Cache.t ->
  ?store:Yasksite_store.Store.t ->
  ?pool:Yasksite_util.Pool.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_ode.Pde.t ->
  Variant.t ->
  threads:int ->
  tuned:bool ->
  candidate
(** Predict and measure one variant's per-step time: the sum over its
    kernels of grid points divided by (predicted resp. measured) chip
    LUP/s. When [tuned], each kernel's configuration is the best
    wavefront-free configuration of the analytic advisor; otherwise the
    default (unblocked, linear) configuration. *)

val evaluate :
  ?cache:Yasksite_ecm.Cache.t ->
  ?store:Yasksite_store.Store.t ->
  ?pool:Yasksite_util.Pool.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_ode.Pde.t ->
  Yasksite_ode.Tableau.t ->
  h:float ->
  threads:int ->
  candidate list
(** All four candidates ({unfused, fused} x {naive, tuned}), sorted by
    predicted time, fastest first. ECM model evaluations are memoized
    in [cache] (default {!Yasksite_ecm.Cache.shared}) — variants share
    kernels, so repeated rankings hit; candidates are scored on
    [pool]'s domains when given; [store] additionally persists
    per-kernel tuning memos (see {!best_static_config}). None of the
    three changes the result. *)

val evaluate_mixed :
  ?cache:Yasksite_ecm.Cache.t ->
  ?store:Yasksite_store.Store.t ->
  ?pool:Yasksite_util.Pool.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_ode.Pde.t ->
  Yasksite_ode.Tableau.t ->
  h:float ->
  threads:int ->
  candidate list
(** Like {!evaluate} but over the full per-stage fusion-mask space
    ({!Variant.all_mixed}) x {naive, tuned} — the richer variant set the
    real Offsite enumerates (2^s x 2 candidates for an s-stage
    method). *)

type quality = {
  kendall : float;  (** rank correlation predicted vs measured times *)
  top1 : bool;  (** did the prediction select the measured-fastest? *)
  speedup_selected : float;
      (** measured time of the baseline (unfused naive) over measured
          time of the predicted-best candidate *)
  selected_gap : float;
      (** how much slower the predicted-best runs than the true measured
          optimum (0 = the prediction found the optimum) *)
  mean_abs_error : float;  (** mean |pred - meas| / meas over candidates *)
}

val quality : candidate list -> quality
(** Ranking quality of an {!evaluate} result (>= 2 candidates). *)

type method_choice = {
  tableau : Yasksite_ode.Tableau.t;
  candidate : candidate;  (** the method's best implementation variant *)
  h_stable : float;  (** stability-limited step size on this problem *)
  predicted_time_per_unit : float;
      (** predicted seconds of compute per simulated second *)
  measured_time_per_unit : float;
}

val spectral_radius : Yasksite_ode.Pde.t -> float
(** Dominant |eigenvalue| of the (linearised) right-hand side, estimated
    by power iteration on the flat-vector view — for heat-type problems
    this approaches [4 d alpha / dx^2]. *)

val rank_methods :
  Yasksite_arch.Machine.t ->
  Yasksite_ode.Pde.t ->
  Yasksite_ode.Tableau.t list ->
  threads:int ->
  method_choice list
(** Offsite's cross-method selection for a parabolic problem: for each
    explicit method, take its stability-limited step size (real-axis
    stability interval over the discrete Laplacian's spectral radius),
    pick its best implementation variant by prediction, and rank the
    methods by predicted compute time per simulated second. Sorted by
    prediction, best first. *)

type accuracy_choice = {
  tableau_a : Yasksite_ode.Tableau.t;
  candidate_a : candidate;  (** best implementation variant *)
  steps : int;  (** steps needed to meet the tolerance *)
  h_used : float;
  achieved_error : float;
      (** max-norm time-integration error vs a fine reference *)
  predicted_seconds : float;  (** predicted compute time for the run *)
  measured_seconds : float;
}

val rank_methods_at_accuracy :
  Yasksite_arch.Machine.t ->
  Yasksite_ode.Pde.t ->
  Yasksite_ode.Tableau.t list ->
  t_end:float ->
  tol:float ->
  threads:int ->
  accuracy_choice list
(** The full Offsite question: cheapest way to integrate the problem to
    [t_end] within time-integration error [tol]. For each method the
    step count starts at the stability limit and doubles until the error
    against a fine DOPRI5 reference (on the same spatial grid, so spatial
    error cancels) meets the tolerance; the cost is steps times the best
    variant's per-step time. Sorted by predicted cost, best first.
    Intended for moderate grids (the calibration integrates the real
    problem). *)

val best_static_config :
  ?cache:Yasksite_ecm.Cache.t ->
  ?store:Yasksite_store.Store.t ->
  ?pool:Yasksite_util.Pool.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  threads:int ->
  Yasksite_ecm.Config.t
(** Best advisor configuration with temporal blocking disabled —
    RK data flow re-reads stages, so wavefronts across steps do not
    apply to ODE kernels. The ranking is deterministic in (machine,
    kernel, dims, threads), so [store] memoizes the winner (namespace
    ["offsite-v1"]): a warm start skips the whole ranking pass. A memo
    that fails to decode or that the schedule analyzer refutes is
    ignored and recomputed — a degraded store can cost time, never
    change the configuration. *)
