module Machine = Yasksite_arch.Machine
module Analysis = Yasksite_stencil.Analysis
module Lower = Yasksite_stencil.Lower
module Config = Yasksite_ecm.Config
module Store = Yasksite_store.Store
module Model = Yasksite_ecm.Model
module Advisor = Yasksite_ecm.Advisor
module Cache = Yasksite_ecm.Cache
module Measure = Yasksite_engine.Measure
module Pool = Yasksite_util.Pool
module Pde = Yasksite_ode.Pde
module Tableau = Yasksite_ode.Tableau
module Lint = Yasksite_lint.Lint

type candidate = {
  variant : Variant.t;
  tuned : bool;
  configs : (string * Config.t) list;
  predicted_step_seconds : float;
  measured_step_seconds : float;
}

(* Persistent memo of [best_static_config] outcomes: the ranking is a
   deterministic function of (machine, kernel, dims, threads), so its
   winner can be replayed from disk, skipping the whole rank_all pass
   on warm starts. A memo that fails to decode — or decodes to a
   config the schedule analyzer would refute — is ignored and the
   ranking recomputed, so a corrupted store can cost time, never
   change the choice. *)
let memo_ns = "offsite-v1"

let memo_key m (info : Analysis.t) ~dims ~threads =
  Printf.sprintf "%s|%s|%s|t=%d"
    (Cache.machine_fingerprint m)
    (Lower.fingerprint info.Analysis.spec)
    (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
    threads

let best_static_config ?(cache = Cache.shared) ?store ?pool m info ~dims
    ~threads =
  let warm =
    match store with
    | None -> None
    | Some s -> (
        match Store.get s ~ns:memo_ns ~key:(memo_key m info ~dims ~threads) with
        | None -> None
        | Some payload -> (
            match Config.of_string payload with
            | Some c
              when c.Config.wavefront = 1 && Lint.Schedule.legal info ~dims c
              ->
                Some c
            | _ -> None))
  in
  match warm with
  | Some c -> c
  | None ->
      (* Prune statically illegal schedules before any model evaluation;
         the lint layer sits above ecm, so the predicate is injected
         here. *)
      let ranked =
        Advisor.rank_all ~cache ?pool
          ~filter:(Lint.Schedule.legal info ~dims)
          m info ~dims ~threads
      in
      let static =
        List.filter (fun (c, _) -> c.Config.wavefront = 1) ranked
      in
      let best =
        match static with (c, _) :: _ -> c | [] -> Config.v ~threads ()
      in
      (match store with
      | None -> ()
      | Some s ->
          Store.put s ~ns:memo_ns
            ~key:(memo_key m info ~dims ~threads)
            (Config.to_string best));
      best

let score ?(cache = Cache.shared) ?store ?pool m (pde : Pde.t)
    (variant : Variant.t) ~threads ~tuned =
  let dims = pde.Pde.dims in
  let points = float_of_int (Array.fold_left ( * ) 1 dims) in
  let per_kernel =
    List.map
      (fun (k : Variant.kernel) ->
        let info = Analysis.of_spec k.Variant.spec in
        let config =
          if tuned then
            best_static_config ~cache ?store ?pool m info ~dims ~threads
          else Config.v ~threads ()
        in
        let prediction = Cache.predict cache m info ~dims ~config in
        let measured = Measure.stencil_sweep m k.Variant.spec ~dims ~config in
        ( k.Variant.label,
          config,
          points /. prediction.Model.lups_chip,
          points /. measured.Measure.lups_chip ))
      variant.Variant.kernels
  in
  { variant;
    tuned;
    configs = List.map (fun (l, c, _, _) -> (l, c)) per_kernel;
    predicted_step_seconds =
      List.fold_left (fun acc (_, _, p, _) -> acc +. p) 0.0 per_kernel;
    measured_step_seconds =
      List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0.0 per_kernel }

let evaluate_variants ?(cache = Cache.shared) ?store ?pool m pde variants
    ~threads =
  let jobs =
    List.concat_map (fun v -> [ (v, false); (v, true) ]) variants
  in
  let score_one (v, tuned) =
    score ~cache ?store ?pool m pde v ~threads ~tuned
  in
  let candidates =
    (* Scoring is deterministic per candidate (each measurement owns its
       address space), so the parallel map equals the sequential one. *)
    match pool with
    | Some pool when Pool.size pool > 1 ->
        Pool.parallel_map ~chunk:1 pool jobs ~f:score_one
    | _ -> List.map score_one jobs
  in
  List.sort
    (fun a b -> compare a.predicted_step_seconds b.predicted_step_seconds)
    candidates

let evaluate_mixed ?cache ?store ?pool m pde tab ~h ~threads =
  evaluate_variants ?cache ?store ?pool m pde
    (Variant.all_mixed tab pde ~h)
    ~threads

let evaluate ?cache ?store ?pool m pde tab ~h ~threads =
  evaluate_variants ?cache ?store ?pool m pde (Variant.all tab pde ~h) ~threads

type quality = {
  kendall : float;
  top1 : bool;
  speedup_selected : float;
  selected_gap : float;
  mean_abs_error : float;
}

let quality candidates =
  if List.length candidates < 2 then
    invalid_arg "Offsite.quality: need at least two candidates";
  let predicted =
    Array.of_list (List.map (fun c -> c.predicted_step_seconds) candidates)
  in
  let measured =
    Array.of_list (List.map (fun c -> c.measured_step_seconds) candidates)
  in
  let baseline =
    match
      List.find_opt
        (fun c -> c.variant.Variant.scheme = `Unfused && not c.tuned)
        candidates
    with
    | Some c -> c.measured_step_seconds
    | None -> measured.(0)
  in
  let selected =
    (* Candidates arrive sorted by prediction; the selected one is the
       first. If unsorted, pick the predicted minimum. *)
    List.fold_left
      (fun acc c ->
        if c.predicted_step_seconds < acc.predicted_step_seconds then c
        else acc)
      (List.hd candidates) candidates
  in
  let errors =
    Array.init (Array.length predicted) (fun i ->
        Yasksite_util.Stats.abs_rel_error ~predicted:predicted.(i)
          ~measured:measured.(i))
  in
  let best_measured = Yasksite_util.Stats.minimum measured in
  { kendall = Yasksite_util.Stats.kendall_tau predicted measured;
    top1 =
      Yasksite_util.Stats.top1_agrees ~better_is_lower:true predicted measured;
    speedup_selected = baseline /. selected.measured_step_seconds;
    selected_gap = (selected.measured_step_seconds /. best_measured) -. 1.0;
    mean_abs_error = Yasksite_util.Stats.mean errors }

type method_choice = {
  tableau : Tableau.t;
  candidate : candidate;
  h_stable : float;
  predicted_time_per_unit : float;
  measured_time_per_unit : float;
}

(* Dominant |eigenvalue| of the (linearised) RHS by power iteration on
   the flat-vector view — for parabolic problems this is the spectral
   radius of the discrete Laplacian that limits explicit step sizes. *)
let spectral_radius (pde : Pde.t) =
  let ivp = Yasksite_ode.Pde.to_ivp pde ~t_end:1.0 in
  let dim = ivp.Yasksite_ode.Ivp.dim in
  let rng = Yasksite_util.Prng.create ~seed:271828 in
  let v =
    Array.init dim (fun _ ->
        Yasksite_util.Prng.float_range rng ~lo:(-1.0) ~hi:1.0)
  in
  let w = Array.make dim 0.0 in
  let norm a = sqrt (Array.fold_left (fun s x -> s +. (x *. x)) 0.0 a) in
  let lambda = ref 1.0 in
  for _ = 1 to 30 do
    ivp.Yasksite_ode.Ivp.rhs ~tm:0.0 ~y:v ~dydt:w;
    let n = norm w in
    if n > 0.0 then begin
      lambda := n /. max 1e-300 (norm v);
      Array.iteri (fun i x -> v.(i) <- x /. n) w
    end
  done;
  !lambda

let rank_methods m (pde : Pde.t) tableaux ~threads =
  let rho = spectral_radius pde in
  let choices =
    List.map
      (fun (tab : Tableau.t) ->
        (* Step just inside the stability boundary. *)
        let h_stable = 0.9 *. Tableau.real_stability_interval tab /. rho in
        let candidates =
          evaluate_variants m pde (Variant.all tab pde ~h:h_stable) ~threads
        in
        let candidate = List.hd candidates in
        let steps_per_unit = 1.0 /. h_stable in
        { tableau = tab;
          candidate;
          h_stable;
          predicted_time_per_unit =
            candidate.predicted_step_seconds *. steps_per_unit;
          measured_time_per_unit =
            candidate.measured_step_seconds *. steps_per_unit })
      tableaux
  in
  List.sort
    (fun a b -> compare a.predicted_time_per_unit b.predicted_time_per_unit)
    choices

type accuracy_choice = {
  tableau_a : Tableau.t;
  candidate_a : candidate;
  steps : int;
  h_used : float;
  achieved_error : float;
  predicted_seconds : float;
  measured_seconds : float;
}

let max_norm_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := max !m (abs_float (v -. b.(i)))) a;
  !m

let rank_methods_at_accuracy m (pde : Pde.t) tableaux ~t_end ~tol ~threads =
  if tol <= 0.0 then
    invalid_arg "Offsite.rank_methods_at_accuracy: tol must be positive";
  let ivp = Yasksite_ode.Pde.to_ivp pde ~t_end in
  let rho = spectral_radius pde in
  (* One fine reference for all methods: DOPRI5 at 4x the steps the most
     stability-constrained candidate needs. *)
  let min_interval =
    List.fold_left
      (fun acc tab -> min acc (Tableau.real_stability_interval tab))
      infinity tableaux
  in
  let max_stability_steps =
    int_of_float (ceil (t_end *. rho /. (0.9 *. min_interval)))
  in
  let reference =
    Yasksite_ode.Rk.integrate Tableau.dopri5 ivp
      ~steps:(4 * max (max_stability_steps) 16)
  in
  let choices =
    List.map
      (fun (tab : Tableau.t) ->
        let h_stable = 0.9 *. Tableau.real_stability_interval tab /. rho in
        let stability_steps =
          max 1 (int_of_float (ceil (t_end /. h_stable)))
        in
        (* Double the step count until the tolerance is met. *)
        let rec search steps attempts =
          let y = Yasksite_ode.Rk.integrate tab ivp ~steps in
          let e = max_norm_diff y reference in
          if e <= tol || attempts = 0 then (steps, e)
          else search (steps * 2) (attempts - 1)
        in
        let steps, achieved_error = search stability_steps 10 in
        let h_used = t_end /. float_of_int steps in
        let candidates =
          evaluate_variants m pde (Variant.all tab pde ~h:h_used) ~threads
        in
        let candidate_a = List.hd candidates in
        { tableau_a = tab;
          candidate_a;
          steps;
          h_used;
          achieved_error;
          predicted_seconds =
            float_of_int steps *. candidate_a.predicted_step_seconds;
          measured_seconds =
            float_of_int steps *. candidate_a.measured_step_seconds })
      tableaux
  in
  List.sort (fun a b -> compare a.predicted_seconds b.predicted_seconds) choices
