module Grid = Yasksite_grid.Grid
module Analysis = Yasksite_stencil.Analysis
module Expr = Yasksite_stencil.Expr
module Kplan = Yasksite_stencil.Plan
module Lower = Yasksite_stencil.Lower
module Pde = Yasksite_ode.Pde
module Sweep = Yasksite_engine.Sweep
module Lint = Yasksite_lint.Lint
module Config = Yasksite_ecm.Config

type compiled = {
  kernel : Variant.kernel;
  (* Input buffers that are read at non-zero offsets and therefore need a
     halo refresh before the kernel runs (periodic problems only). *)
  halo_inputs : Variant.buffer list;
  (* The kernel's lowered plan (computed once at creation) and its
     bindings, memoized per physical grid combination: the state/next
     ping-pong means each kernel only ever sees a couple of
     combinations, so every step after the first two reuses a bound. *)
  plan : Kplan.t;
  mutable bounds : (int list * Lower.bound) list;
}

type t = {
  pde : Pde.t;
  variant : Variant.t;
  mutable state : Grid.t;
  mutable next_state : Grid.t;
  others : (Variant.buffer * Grid.t) list; (* stages and scratch *)
  kernels : compiled list;
  mutable steps_done : int;
}

let stage_boundary_value = function
  | Pde.Dirichlet _ -> Some 0.0
  | Pde.Periodic -> None

let grid_of t = function
  | Variant.State -> t.state
  | Variant.Next_state -> t.next_state
  | b -> List.assoc b t.others

let create (pde : Pde.t) (variant : Variant.t) =
  (* Refuse variants whose stage kernels the model cannot represent
     (unused inputs, zero divides, ...): catching them here keeps every
     downstream sweep and prediction on well-formed kernels. *)
  List.iter
    (fun (k : Variant.kernel) ->
      Lint.gate
        ~context:
          (Printf.sprintf "Offsite.Executor.create: kernel %s"
             k.Variant.spec.Yasksite_stencil.Spec.name)
        (Lint.Kernel.spec k.Variant.spec))
    variant.Variant.kernels;
  let halo = Pde.halo pde in
  let dims = pde.Pde.dims in
  let fresh_with value =
    let g = Grid.create ~halo ~dims () in
    (match value with
    | Some v -> Grid.halo_dirichlet g v
    | None -> ());
    g
  in
  let state = Pde.init_grid pde in
  let boundary_value =
    match pde.Pde.boundary with
    | Pde.Dirichlet v -> Some v
    | Pde.Periodic -> None
  in
  let next_state = fresh_with boundary_value in
  let others =
    List.filter_map
      (fun b ->
        match b with
        | Variant.State | Variant.Next_state -> None
        | Variant.Stage _ -> Some (b, fresh_with (stage_boundary_value pde.Pde.boundary))
        | Variant.Stage_input -> Some (b, fresh_with boundary_value))
      (Variant.buffers variant)
  in
  let kernels =
    List.map
      (fun (k : Variant.kernel) ->
        let info = Analysis.of_spec k.Variant.spec in
        let fields_at_offsets =
          List.filter_map
            (fun (a : Expr.access) ->
              if Array.exists (fun d -> d <> 0) a.Expr.offsets then
                Some a.Expr.field
              else None)
            info.Analysis.accesses
          |> List.sort_uniq compare
        in
        { kernel = k;
          halo_inputs =
            List.map (fun f -> k.Variant.inputs.(f)) fields_at_offsets;
          plan = Lower.lower k.Variant.spec;
          bounds = [] })
      variant.Variant.kernels
  in
  let t = { pde; variant; state; next_state; others; kernels; steps_done = 0 } in
  (* With the buffers materialised, prove every kernel's sweep legal
     once up front — extents, aliasing, halo width, layout (YS4xx) —
     so the per-step sweeps can skip re-checking. *)
  List.iter
    (fun c ->
      let info = Analysis.of_spec c.kernel.Variant.spec in
      let inputs = Array.map (grid_of t) c.kernel.Variant.inputs in
      let output = grid_of t c.kernel.Variant.output in
      Lint.gate
        ~context:
          (Printf.sprintf "Offsite.Executor.create: kernel %s"
             c.kernel.Variant.spec.Yasksite_stencil.Spec.name)
        (Lint.Schedule.grids info Config.default ~inputs ~output);
      (* And the lowered plan itself: the YS5xx dataflow verifier proves
         the per-step sweeps' access tables in-bounds and the kernel
         bodies stack-safe, since [step] runs them with [~check:false]. *)
      Lint.gate
        ~context:
          (Printf.sprintf "Offsite.Executor.create: kernel %s (plan)"
             c.kernel.Variant.spec.Yasksite_stencil.Spec.name)
        (Lint.Plan.check ~info c.plan ~inputs ~output))
    kernels;
  t

let refresh_halo t buffer =
  (* Dirichlet halos are static (set at creation); only periodic halos
     track the interior. *)
  match t.pde.Pde.boundary with
  | Pde.Dirichlet _ -> ()
  | Pde.Periodic -> Grid.halo_periodic (grid_of t buffer)

let step t =
  let backend = Sweep.default_backend () in
  List.iter
    (fun c ->
      List.iter (refresh_halo t) c.halo_inputs;
      let inputs = Array.map (grid_of t) c.kernel.Variant.inputs in
      let output = grid_of t c.kernel.Variant.output in
      (* [create] proved these grids legal once; skip the per-step gate. *)
      let bound =
        match backend with
        | Sweep.Closure_backend -> None
        | Sweep.Plan_backend | Sweep.Codegen_backend ->
            (* Physical identity of the grid combination: the ping-pong
               swap changes which grids the buffers resolve to, not the
               buffers themselves. *)
            let key =
              Grid.base_address output
              :: Array.to_list (Array.map Grid.base_address inputs)
            in
            Some
              (match List.assoc_opt key c.bounds with
              | Some b -> b
              | None ->
                  let b = Lower.bind c.plan ~inputs ~output in
                  c.bounds <- (key, b) :: c.bounds;
                  b)
      in
      ignore
        (Sweep.run ~backend ?bound ~check:false c.kernel.Variant.spec
           ~inputs ~output
          : Sweep.stats))
    t.kernels;
  (* The variant writes the advanced state into Next_state; swap. *)
  let s = t.state in
  t.state <- t.next_state;
  t.next_state <- s;
  t.steps_done <- t.steps_done + 1

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

type run_report = {
  steps_requested : int;
  steps_completed : int;
  step_attempts : int;
  retries : int;
  gave_up : bool;
  charged_seconds : float;
}

let run_resilient ?(faults = Yasksite_faults.Plan.none)
    ?(policy = Yasksite_faults.Policy.default)
    ?(clock = Yasksite_util.Clock.system) t ~steps =
  let module Plan = Yasksite_faults.Plan in
  let module Policy = Yasksite_faults.Policy in
  let module Retry = Yasksite_faults.Retry in
  let t0 = Yasksite_util.Clock.now clock in
  let charged = ref 0.0 in
  let vnow () = Yasksite_util.Clock.now clock +. !charged in
  let sleep d = charged := !charged +. d in
  let deadline = t0 +. policy.Policy.pass_budget_s in
  let inj = Plan.injector faults in
  let jitter_rng =
    Yasksite_util.Prng.create ~seed:(faults.Plan.seed lxor 0x5DEECE66)
  in
  let attempts = ref 0 in
  let completed = ref 0 in
  let gave_up = ref false in
  (* A step is only retried if the fault fired *before* the kernels ran,
     so a retry never double-applies the variant's state update. *)
  let attempt_step () =
    incr attempts;
    match Plan.draw inj with
    | Plan.Transient_failure -> Error "transient failure"
    | Plan.Timeout d ->
        sleep d;
        Error "timeout"
    | Plan.Run _ ->
        step t;
        Ok ()
  in
  (try
     for _ = 1 to steps do
       match
         Retry.run ~policy ~rng:jitter_rng ~now:vnow ~sleep ~deadline
           attempt_step
       with
       | Retry.Success ((), _) -> incr completed
       | Retry.Gave_up _ ->
           gave_up := true;
           raise Exit
     done
   with Exit -> ());
  { steps_requested = steps;
    steps_completed = !completed;
    step_attempts = !attempts;
    retries = !attempts - !completed;
    gave_up = !gave_up;
    charged_seconds = !charged }

let state t = t.state

let steps_done t = t.steps_done
