(** Grid-native execution of an implementation variant — the semantic
    reference: advancing the PDE with a variant's kernel sequence must
    produce exactly what the flat-vector RK integrator produces (the
    integration tests check this to machine precision).

    Buffers are materialised as grids with the stencil's halo; halos are
    refreshed according to the problem's boundary condition before every
    kernel that reads a buffer at non-zero offsets (for Dirichlet
    problems the stage derivative is pinned to 0 on the boundary, since
    the boundary values are constant in time). *)

type t

val create : Yasksite_ode.Pde.t -> Variant.t -> t
(** Allocate buffers and compile the kernel sequence. The PDE's initial
    condition is loaded into the state buffer. *)

val step : t -> unit
(** Advance one time step (the variant's [h]). *)

val run : t -> steps:int -> unit

type run_report = {
  steps_requested : int;
  steps_completed : int;
  step_attempts : int;  (** including failed and timed-out attempts *)
  retries : int;  (** attempts that did not advance the state *)
  gave_up : bool;
      (** a step exhausted its retries or a budget; the state is left at
          the last completed step *)
  charged_seconds : float;
      (** simulated backoff and timeout time charged to the run *)
}

val run_resilient :
  ?faults:Yasksite_faults.Plan.t ->
  ?policy:Yasksite_faults.Policy.t ->
  ?clock:Yasksite_util.Clock.t ->
  t ->
  steps:int ->
  run_report
(** Like {!run}, but each step survives the injected fault plan: a
    transient failure or simulated timeout fires {e before} the step's
    kernels execute, so retrying is always safe (the state advances
    exactly once per completed step). Retries, backoff and budgets follow
    [policy]; with the default fault-free plan this is exactly {!run}.
    Deterministic for a fixed [faults.seed]. *)

val state : t -> Yasksite_grid.Grid.t
(** The current state grid (valid between steps). *)

val steps_done : t -> int
