(** YaskSite — stencil optimization with the Execution–Cache–Memory
    model, applied to explicit ODE methods (OCaml reproduction of the
    CGO 2021 system).

    This module is the public facade. The typical flow is:

    {[
      open Yasksite

      (* 1. Describe machine and kernel. *)
      let machine = Machine.scaled ~factor:8 Machine.cascade_lake
      let spec = Stencil.Suite.resolve_defaults Stencil.Suite.heat_3d_7pt
      let k = kernel ~machine ~dims:[| 96; 96; 96 |] spec

      (* 2. Ask the analytic model, without running anything. *)
      let p = predict k ~config:(Config.v ~threads:8 ())

      (* 3. Let the advisor pick tuning parameters analytically. *)
      let best, _ = autotune k ~threads:8

      (* 4. Validate on the simulated machine. *)
      let m = measure k ~config:best
    ]}

    Submodules re-export the full API of each subsystem library. *)

(** {1 Subsystem re-exports} *)

module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Machine_file = Yasksite_arch.Machine_file
module Grid = Yasksite_grid.Grid

module Stencil : sig
  module Expr = Yasksite_stencil.Expr
  module Spec = Yasksite_stencil.Spec
  module Analysis = Yasksite_stencil.Analysis
  module Dsl = Yasksite_stencil.Dsl
  module Suite = Yasksite_stencil.Suite
  module Compile = Yasksite_stencil.Compile

  module Plan = Yasksite_stencil.Plan
  (** The flat kernel-plan IR every stencil lowers to; its fingerprint
      keys the {!Model_cache} and tuner checkpoints. *)

  module Lower = Yasksite_stencil.Lower
  (** Lowering to {!Plan} and binding plans to concrete grids (the
      default execution backend of {!Engine.Sweep}). *)

  module Codegen = Yasksite_stencil.Codegen
  (** Plan→native source emission: the pure front half of
      {!Engine.Sweep}'s codegen backend ({!Engine.Native} builds,
      loads and caches what this emits). *)

  module Kernel_ast = Yasksite_stencil.Kernel_ast
  (** Checked AST of the units {!Codegen} emits — the shared grammar
      of the YS6xx translation validator ({!Lint.Native}) and the
      seeded miscompile injector ({!Faults.Miscompile}). *)

  module Gen = Yasksite_stencil.Gen
  module Parser = Yasksite_stencil.Parser

  module Program = Yasksite_stencil.Program
  (** Multi-stage stencil programs: named stages over named fields
      forming a DAG, with halo-plan accumulation and stage fusion
      ({!Engine.Prog} executes them; {!Advisor.rank_partitions} ranks
      their fuse/materialize partitions with the ECM model). *)
end

module Config = Yasksite_ecm.Config
module Model = Yasksite_ecm.Model
module Incore = Yasksite_ecm.Incore
module Lc = Yasksite_ecm.Lc
module Advisor = Yasksite_ecm.Advisor

module Model_cache = Yasksite_ecm.Cache
(** Memoization of ECM model evaluations (bounded, domain-safe LRU). *)

module Cachesim = Yasksite_cachesim.Hierarchy

module Pool = Yasksite_util.Pool
(** Reusable domain pool backing every [?pool] parameter in the API. *)

module Engine : sig
  module Sweep = Yasksite_engine.Sweep
  module Wavefront = Yasksite_engine.Wavefront
  module Measure = Yasksite_engine.Measure

  module Sanitizer = Yasksite_engine.Sanitizer
  (** Shadow-memory sweep sanitizer (YS45x traps): the dynamic
      counterpart of the {!Lint.Schedule} analyzer. *)

  module Cert = Yasksite_engine.Cert
  (** Safety-certificate store: (plan × layout × halo × blocking)
      tuples proven safe by the YS5xx verifier select the sanitizer's
      unchecked fast path. *)

  module Certify = Yasksite_engine.Certify
  (** Certification pipeline: static YS5xx proof plus YS511 traced
      cross-validation, producing {!Cert} entries. *)

  module Native = Yasksite_engine.Native
  (** Compile/load/cache machinery behind [Sweep.Codegen_backend]:
      kernels compiled once per machine into the store's [kern-v1]
      schema, with graceful fallback to the plan interpreter. *)

  module Prog = Yasksite_engine.Prog
  (** Topological executor for {!Stencil.Program}: one extended sweep
      per stage, intermediates materialized with exactly the halo the
      program's consumer chains require. *)
end

module Tuner = Yasksite_tuner.Tuner
module Lint = Yasksite_lint.Lint

module Faults : sig
  module Plan = Yasksite_faults.Plan
  module Policy = Yasksite_faults.Policy
  module Retry = Yasksite_faults.Retry
  module Checkpoint = Yasksite_faults.Checkpoint

  module Io = Yasksite_faults.Io
  (** Seeded filesystem-fault injection (ENOSPC/EIO/torn writes/crash
      points) — the harness the {!Store} crash-consistency property is
      proven under. *)

  module Miscompile = Yasksite_faults.Miscompile
  (** Seeded miscompile injector: structural mutations of emitted
      kernel source, each of which the YS6xx translation validator
      ({!Lint.Native}) must reject with its expected code. *)
end

module Store = Yasksite_store.Store
(** Crash-safe persistent artifact store: ECM predictions, tuner
    checkpoints, Offsite tuning memos and safety certificates survive
    the process through it. Degrades, never fails: an absent,
    read-only or corrupted store root leaves every pipeline's results
    bit-identical to a store-less run. *)

module Ode : sig
  module Tableau = Yasksite_ode.Tableau
  module Ivp = Yasksite_ode.Ivp
  module Rk = Yasksite_ode.Rk
  module Pde = Yasksite_ode.Pde
end

module Offsite : sig
  module Variant = Yasksite_offsite.Variant
  module Executor = Yasksite_offsite.Executor
  include module type of Yasksite_offsite.Offsite
end

(** {1 High-level kernel API} *)

type kernel = private {
  machine : Machine.t;
  spec : Yasksite_stencil.Spec.t;
  info : Yasksite_stencil.Analysis.t;
  dims : int array;
}

val kernel :
  machine:Machine.t -> dims:int array -> Yasksite_stencil.Spec.t -> kernel
(** Bind a (fully resolved) stencil to a machine and grid size. Raises
    [Invalid_argument] on rank mismatch or unresolved coefficients. *)

val predict : kernel -> config:Config.t -> Model.prediction
(** Evaluate the ECM model: no code runs. *)

val measure :
  ?sanitize:bool -> kernel -> config:Config.t -> Yasksite_engine.Measure.t
(** Execute on the simulated machine and report observed performance.
    [sanitize] (default [false]) runs every access through the
    shadow-memory {!Engine.Sanitizer}; an illegal schedule raises
    {!Engine.Sanitizer.Trap} instead of measuring garbage. *)

val autotune : kernel -> threads:int -> Config.t * Model.prediction
(** Analytically select the best configuration (the YaskSite pitch:
    model-driven, zero kernel runs). Candidates the schedule-legality
    analyzer ({!Lint.Schedule}) rejects are pruned before ranking. *)

val report : ?sanitize:bool -> kernel -> config:Config.t -> string
(** Human-readable comparison of prediction and measurement for one
    configuration, including the ECM decomposition and traffic.
    [sanitize] as in {!measure}. *)

val version : string
