module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Machine_file = Yasksite_arch.Machine_file
module Grid = Yasksite_grid.Grid

module Stencil = struct
  module Expr = Yasksite_stencil.Expr
  module Spec = Yasksite_stencil.Spec
  module Analysis = Yasksite_stencil.Analysis
  module Dsl = Yasksite_stencil.Dsl
  module Suite = Yasksite_stencil.Suite
  module Compile = Yasksite_stencil.Compile
  module Plan = Yasksite_stencil.Plan
  module Lower = Yasksite_stencil.Lower
  module Codegen = Yasksite_stencil.Codegen
  module Kernel_ast = Yasksite_stencil.Kernel_ast
  module Gen = Yasksite_stencil.Gen
  module Parser = Yasksite_stencil.Parser
  module Program = Yasksite_stencil.Program
end

module Config = Yasksite_ecm.Config
module Model = Yasksite_ecm.Model
module Incore = Yasksite_ecm.Incore
module Lc = Yasksite_ecm.Lc
module Advisor = Yasksite_ecm.Advisor
module Model_cache = Yasksite_ecm.Cache
module Cachesim = Yasksite_cachesim.Hierarchy
module Pool = Yasksite_util.Pool

module Engine = struct
  module Sweep = Yasksite_engine.Sweep
  module Wavefront = Yasksite_engine.Wavefront
  module Measure = Yasksite_engine.Measure
  module Sanitizer = Yasksite_engine.Sanitizer
  module Cert = Yasksite_engine.Cert
  module Certify = Yasksite_engine.Certify
  module Native = Yasksite_engine.Native
  module Prog = Yasksite_engine.Prog
end

module Tuner = Yasksite_tuner.Tuner
module Lint = Yasksite_lint.Lint

module Faults = struct
  module Plan = Yasksite_faults.Plan
  module Policy = Yasksite_faults.Policy
  module Retry = Yasksite_faults.Retry
  module Checkpoint = Yasksite_faults.Checkpoint
  module Io = Yasksite_faults.Io
  module Miscompile = Yasksite_faults.Miscompile
end

module Store = Yasksite_store.Store

module Ode = struct
  module Tableau = Yasksite_ode.Tableau
  module Ivp = Yasksite_ode.Ivp
  module Rk = Yasksite_ode.Rk
  module Pde = Yasksite_ode.Pde
end

module Offsite = struct
  module Variant = Yasksite_offsite.Variant
  module Executor = Yasksite_offsite.Executor
  include Yasksite_offsite.Offsite
end

type kernel = {
  machine : Machine.t;
  spec : Yasksite_stencil.Spec.t;
  info : Yasksite_stencil.Analysis.t;
  dims : int array;
}

let kernel ~machine ~dims spec =
  if Array.length dims <> spec.Yasksite_stencil.Spec.rank then
    invalid_arg "Yasksite.kernel: dims rank mismatch";
  (match Yasksite_stencil.Expr.coeff_names spec.Yasksite_stencil.Spec.expr with
  | [] -> ()
  | n :: _ ->
      invalid_arg
        (Printf.sprintf "Yasksite.kernel: unresolved coefficient %S" n));
  { machine;
    spec;
    info = Yasksite_stencil.Analysis.of_spec spec;
    dims = Array.copy dims }

let predict k ~config = Model.predict k.machine k.info ~dims:k.dims ~config

let measure ?(sanitize = false) k ~config =
  Yasksite_engine.Measure.stencil_sweep ~sanitize k.machine k.spec ~dims:k.dims
    ~config

let autotune k ~threads =
  Advisor.best
    ~filter:(Lint.Schedule.legal k.info ~dims:k.dims)
    k.machine k.info ~dims:k.dims ~threads

let report ?(sanitize = false) k ~config =
  let p = predict k ~config in
  let m = measure ~sanitize k ~config in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "kernel %s on %s, grid %s, %s\n"
       k.spec.Yasksite_stencil.Spec.name k.machine.Machine.name
       (String.concat "x" (Array.to_list (Array.map string_of_int k.dims)))
       (Config.describe config));
  Buffer.add_string buf (Printf.sprintf "  predicted: %s\n" (Model.summary p));
  Buffer.add_string buf
    (Printf.sprintf
       "  measured:  T=%.1f cy/CL (%.2f GLUP/s core, %.2f GLUP/s chip, %.1f \
        B/LUP mem)\n"
       m.Yasksite_engine.Measure.cycles_per_cl
       (m.Yasksite_engine.Measure.lups_core /. 1e9)
       (m.Yasksite_engine.Measure.lups_chip /. 1e9)
       m.Yasksite_engine.Measure.mem_bytes_per_lup);
  Buffer.add_string buf
    (Printf.sprintf "  error:     %+.1f%% (cycles, predicted vs measured)\n"
       (100.0
       *. Yasksite_util.Stats.rel_error ~predicted:p.Model.t_ecm
            ~measured:m.Yasksite_engine.Measure.cycles_per_cl));
  Buffer.contents buf

let version = "1.0.0"
