type layout = Linear | Folded of int array

type t = {
  dims : int array;
  halo : int array;
  left_pad : int array; (* halo rounded up to a fold boundary *)
  layout : layout;
  fold : int array; (* all ones when Linear *)
  total : int array; (* dims + 2*halo *)
  padded : int array; (* total rounded up to a fold multiple *)
  blocks : int array; (* padded / fold *)
  lanes : int; (* product of fold *)
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  base : int;
}

(* Address spaces are allocated with atomics so grids created from
   several domains at once (a parallel tuning sweep building its
   candidates' grids) can never be handed overlapping simulated
   address ranges. *)
type space = { next_base : int Atomic.t; alloc_count : int Atomic.t }

let first_base = 0x100000

let fresh_space () =
  { next_base = Atomic.make first_base; alloc_count = Atomic.make 0 }

let global_space = fresh_space ()

let reset_address_space () =
  Atomic.set global_space.next_base first_base;
  Atomic.set global_space.alloc_count 0

let page = 4096

(* Page-aligned consecutive allocations plus a per-allocation stagger of
   an odd number of cache lines, mimicking YASK's deliberate padding
   that keeps equally-indexed streams of different grids out of the same
   cache sets. *)
let stagger_lines = 9

let allocate_base space nbytes =
  let count = Atomic.fetch_and_add space.alloc_count 1 in
  let stagger = count mod 64 * stagger_lines * 64 in
  let reserved = (nbytes + stagger + page - 1) / page * page in
  Atomic.fetch_and_add space.next_base reserved + stagger

let product = Array.fold_left ( * ) 1

let round_up n m = (n + m - 1) / m * m

let create ?(space = global_space) ?halo ?(layout = Linear) ~dims () =
  let rank = Array.length dims in
  if rank < 1 || rank > 3 then invalid_arg "Grid.create: rank must be 1..3";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Grid.create: non-positive extent")
    dims;
  let halo = match halo with None -> Array.make rank 0 | Some h -> Array.copy h in
  if Array.length halo <> rank then invalid_arg "Grid.create: halo rank mismatch";
  Array.iter
    (fun h -> if h < 0 then invalid_arg "Grid.create: negative halo")
    halo;
  let fold =
    match layout with
    | Linear -> Array.make rank 1
    | Folded f ->
        if Array.length f <> rank then
          invalid_arg "Grid.create: fold rank mismatch";
        Array.iter
          (fun x -> if x <= 0 then invalid_arg "Grid.create: non-positive fold")
          f;
        Array.copy f
  in
  let dims = Array.copy dims in
  (* Align the interior start to a fold boundary (YASK's halo padding),
     so folded layouts keep the interior block-aligned. *)
  let left_pad = Array.mapi (fun i h -> round_up h fold.(i)) halo in
  let total = Array.mapi (fun i d -> d + left_pad.(i) + halo.(i)) dims in
  let padded = Array.mapi (fun i tdim -> round_up tdim fold.(i)) total in
  let blocks = Array.mapi (fun i p -> p / fold.(i)) padded in
  let lanes = product fold in
  let len = product padded in
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
  Bigarray.Array1.fill data 0.0;
  let base = allocate_base space (8 * len) in
  { dims; halo; left_pad; layout; fold; total; padded; blocks; lanes; data;
    base }

let rank t = Array.length t.dims

let dims t = Array.copy t.dims

let halo t = Array.copy t.halo

let layout t = t.layout

let length t = Bigarray.Array1.dim t.data

let base_address t = t.base

let row_major extents coords =
  let acc = ref 0 in
  for i = 0 to Array.length extents - 1 do
    acc := (!acc * extents.(i)) + coords.(i)
  done;
  !acc

let offset_of t idx =
  if Array.length idx <> rank t then invalid_arg "Grid.offset_of: rank mismatch";
  let r = rank t in
  let c = Array.make r 0 in
  for i = 0 to r - 1 do
    if idx.(i) < -t.halo.(i) || idx.(i) >= t.dims.(i) + t.halo.(i) then
      invalid_arg
        (Printf.sprintf "Grid.offset_of: coordinate %d out of range in dim %d"
           idx.(i) i);
    c.(i) <- idx.(i) + t.left_pad.(i)
  done;
  match t.layout with
  | Linear -> row_major t.padded c
  | Folded _ ->
      let b = Array.mapi (fun i ci -> ci / t.fold.(i)) c in
      let o = Array.mapi (fun i ci -> ci mod t.fold.(i)) c in
      (row_major t.blocks b * t.lanes) + row_major t.fold o

let byte_address t idx = t.base + (8 * offset_of t idx)

let get t idx = Bigarray.Array1.get t.data (offset_of t idx)

let set t idx v = Bigarray.Array1.set t.data (offset_of t idx) v

let raw t = t.data

let unsafe_get_flat t off = Bigarray.Array1.unsafe_get t.data off

let unsafe_set_flat t off v = Bigarray.Array1.unsafe_set t.data off v

let indexer1 t =
  let h0 = t.left_pad.(0) in
  match t.layout with
  | Linear -> fun x -> x + h0
  | Folded _ ->
      let f0 = t.fold.(0) in
      fun x ->
        let c = x + h0 in
        ((c / f0) * t.lanes) + (c mod f0)

let indexer2 t =
  let h0 = t.left_pad.(0) and h1 = t.left_pad.(1) in
  match t.layout with
  | Linear ->
      let p1 = t.padded.(1) in
      fun y x -> ((y + h0) * p1) + x + h1
  | Folded _ ->
      let f0 = t.fold.(0) and f1 = t.fold.(1) in
      let b1 = t.blocks.(1) and lanes = t.lanes in
      fun y x ->
        let c0 = y + h0 and c1 = x + h1 in
        let blk = ((c0 / f0) * b1) + (c1 / f1) in
        (blk * lanes) + ((c0 mod f0) * f1) + (c1 mod f1)

let indexer3 t =
  let h0 = t.left_pad.(0) and h1 = t.left_pad.(1) and h2 = t.left_pad.(2) in
  match t.layout with
  | Linear ->
      let p1 = t.padded.(1) and p2 = t.padded.(2) in
      fun z y x -> ((((z + h0) * p1) + y + h1) * p2) + x + h2
  | Folded _ ->
      let f0 = t.fold.(0) and f1 = t.fold.(1) and f2 = t.fold.(2) in
      let b1 = t.blocks.(1) and b2 = t.blocks.(2) and lanes = t.lanes in
      fun z y x ->
        let c0 = z + h0 and c1 = y + h1 and c2 = x + h2 in
        let blk = ((((c0 / f0) * b1) + (c1 / f1)) * b2) + (c2 / f2) in
        (blk * lanes) + ((((c0 mod f0) * f1) + (c1 mod f1)) * f2)
        + (c2 mod f2)

let left_pad t = Array.copy t.left_pad

(* The flat offset of any point decomposes as
   [row_base (outer coords) + last_dim_offsets.(last padded coord)]:
   the innermost dimension's contribution is separable in both layouts
   because folding treats dimensions independently. This is what lets a
   kernel plan hoist per-row bases out of the inner loop and walk the
   row through one precomputed table. *)

let unit_stride t =
  match t.layout with
  | Linear -> true
  | Folded _ -> t.fold.(rank t - 1) = t.lanes

let last_dim_offsets t =
  let last = rank t - 1 in
  let n = t.padded.(last) in
  match t.layout with
  | Linear -> Array.init n (fun c -> c)
  | Folded _ ->
      let f = t.fold.(last) in
      Array.init n (fun c -> (c / f * t.lanes) + (c mod f))

let row_base t idx =
  let r = rank t in
  if Array.length idx <> r - 1 then
    invalid_arg "Grid.row_base: expected rank-1 outer coordinates";
  match t.layout with
  | Linear ->
      let acc = ref 0 in
      for i = 0 to r - 2 do
        acc := (!acc * t.padded.(i)) + idx.(i) + t.left_pad.(i)
      done;
      !acc * t.padded.(r - 1)
  | Folded _ ->
      let b = ref 0 and o = ref 0 in
      for i = 0 to r - 2 do
        let c = idx.(i) + t.left_pad.(i) in
        b := (!b * t.blocks.(i)) + (c / t.fold.(i));
        o := (!o * t.fold.(i)) + (c mod t.fold.(i))
      done;
      (!b * t.blocks.(r - 1) * t.lanes) + (!o * t.fold.(r - 1))

(* Row-major iteration over the box [0, extents). *)
let iter_box extents ~f =
  let r = Array.length extents in
  let idx = Array.make r 0 in
  let rec go d =
    if d = r then f idx
    else
      for i = 0 to extents.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  go 0

let iter_interior t ~f = iter_box t.dims ~f

let fill t ~f =
  iter_interior t ~f:(fun idx -> set t idx (f idx))

let fill_all t v = Bigarray.Array1.fill t.data v

let copy_interior ~src ~dst =
  if src.dims <> dst.dims then invalid_arg "Grid.copy_interior: dims mismatch";
  iter_interior src ~f:(fun idx -> set dst idx (get src idx))

(* Iterate over all points of the total box (interior + halo) in interior
   coordinates, i.e. each coordinate ranges over [-halo, dim + halo). *)
let iter_total t ~f =
  let idx = Array.make (rank t) 0 in
  let rec go d =
    if d = rank t then f idx
    else
      for i = -t.halo.(d) to t.dims.(d) + t.halo.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  go 0

let is_interior t idx =
  let ok = ref true in
  Array.iteri (fun i x -> if x < 0 || x >= t.dims.(i) then ok := false) idx;
  !ok

let halo_dirichlet t v =
  iter_total t ~f:(fun idx -> if not (is_interior t idx) then set t idx v)

let halo_periodic t =
  Array.iteri
    (fun i h ->
      if h > t.dims.(i) then
        invalid_arg "Grid.halo_periodic: halo wider than interior")
    t.halo;
  let wrapped = Array.make (rank t) 0 in
  iter_total t ~f:(fun idx ->
      if not (is_interior t idx) then begin
        Array.iteri
          (fun i x ->
            let d = t.dims.(i) in
            wrapped.(i) <- ((x mod d) + d) mod d)
          idx;
        set t idx (get t wrapped)
      end)

let max_abs_diff a b =
  if a.dims <> b.dims then invalid_arg "Grid.max_abs_diff: dims mismatch";
  let worst = ref 0.0 in
  iter_interior a ~f:(fun idx ->
      worst := max !worst (abs_float (get a idx -. get b idx)));
  !worst

let l2_norm t =
  let acc = ref 0.0 in
  iter_interior t ~f:(fun idx ->
      let v = get t idx in
      acc := !acc +. (v *. v));
  sqrt !acc

let footprint_bytes t = 8 * length t
