(** N-dimensional float64 grids with halos and YASK-style folded layouts.

    A grid owns an interior of [dims.(i)] points per dimension plus a halo
    of [halo.(i)] ghost points on each side. Storage is a flat [Bigarray]
    in one of two layouts:

    - {e linear}: row-major with the last dimension contiguous (the layout
      plain C code uses);
    - {e folded}: YASK vector folding — the array is a row-major grid of
      small SIMD blocks ("folds", e.g. 2x2x2 doubles), each stored
      contiguously. Folding changes which cache lines a stencil access
      touches and is one of the tuning dimensions the paper exposes.

    Every grid is assigned a unique range of {e virtual byte addresses} so
    the trace-driven cache simulator sees a realistic, non-aliasing heap
    layout (page-aligned consecutive allocations). *)

type layout =
  | Linear
  | Folded of int array
      (** fold extent per dimension; the product is the SIMD block size *)

type t

type space
(** An independent virtual-address allocator. Grids created in the same
    space get disjoint, deterministically staggered address ranges;
    grids in different spaces may alias (they model separate simulated
    heaps). Allocation within a space is atomic, so one space may be
    shared by concurrent domains. *)

val fresh_space : unit -> space
(** A new allocator starting at the canonical first base address. Two
    fresh spaces hand out identical address sequences, which is what
    per-measurement determinism under domain parallelism relies on. *)

val global_space : space
(** The process-wide default space used when {!create} is not given an
    explicit one. *)

val create :
  ?space:space -> ?halo:int array -> ?layout:layout -> dims:int array ->
  unit -> t
(** [create ~dims ()] allocates a zero-filled grid. [dims] must have rank
    1..3 with positive extents; [halo] defaults to all zeros and must
    match the rank; a [Folded] layout must match the rank with positive
    fold extents. Virtual addresses come from [space] (default
    {!global_space}). *)

val rank : t -> int

val dims : t -> int array
(** Interior extents (copy). *)

val halo : t -> int array

val layout : t -> layout

val length : t -> int
(** Number of allocated elements including halo and fold padding. *)

val base_address : t -> int
(** First virtual byte address of the storage (8 bytes per element). *)

val offset_of : t -> int array -> int
(** [offset_of g idx] maps interior coordinates (each in
    [\[-halo, dim+halo)]) to the flat element offset. Raises
    [Invalid_argument] out of range. *)

val byte_address : t -> int array -> int
(** [base_address + 8 * offset_of]. *)

val get : t -> int array -> float

val set : t -> int array -> float -> unit

val raw : t -> (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The underlying flat storage. Exposed so plan-driven kernels can keep
    their inner loops on direct (inlineable) bigarray accesses; indexing
    it is the caller's responsibility. *)

val unsafe_get_flat : t -> int -> float
(** Direct flat access by element offset; no bounds check. *)

val unsafe_set_flat : t -> int -> float -> unit

val indexer1 : t -> int -> int
(** Flat offset of a rank-1 interior coordinate (halo range allowed); the
    partially applied form is a closure specialised to the grid's layout,
    suitable for hot loops. No bounds checks. *)

val indexer2 : t -> int -> int -> int
(** Rank-2 analogue of {!indexer1}; arguments ordered slowest-first. *)

val indexer3 : t -> int -> int -> int -> int
(** Rank-3 analogue of {!indexer1}; arguments ordered slowest-first. *)

val left_pad : t -> int array
(** Per-dimension left padding (the halo rounded up to a fold boundary):
    the padded coordinate of interior point [x] in dimension [i] is
    [x + (left_pad t).(i)]. *)

val unit_stride : t -> bool
(** Whether consecutive last-dimension coordinates are adjacent in
    storage (true for linear layouts, and for folded layouts whose fold
    is confined to the last dimension). *)

val last_dim_offsets : t -> int array
(** The separable last-dimension contribution to the flat offset: entry
    [c] (a {e padded} last-dimension coordinate, [0 <= c < padded last
    extent]) is the offset added to {!row_base} for that column. The
    identity table for unit-stride layouts. *)

val row_base : t -> int array -> int
(** [row_base g outer] is the flat offset of the row selected by the
    [rank-1] outer interior coordinates (halo range allowed, no bounds
    check beyond rank): for any in-range last coordinate [x],
    [offset_of g [|outer...; x|] =
     row_base g outer + (last_dim_offsets g).(x + (left_pad g).(rank-1))].
    For rank-1 grids [outer] is empty and the result is [0]. *)

val fill : t -> f:(int array -> float) -> unit
(** Set every interior point from its coordinates. *)

val fill_all : t -> float -> unit
(** Set every allocated element (interior, halo and padding). *)

val iter_interior : t -> f:(int array -> unit) -> unit
(** Row-major iteration over interior coordinates. *)

val copy_interior : src:t -> dst:t -> unit
(** Copy interior values; grids must have equal dims (layouts may
    differ). *)

val halo_dirichlet : t -> float -> unit
(** Set all halo points to a constant. *)

val halo_periodic : t -> unit
(** Fill the halo by periodic wrap-around of the interior. Requires
    [halo.(i) <= dims.(i)]. *)

val max_abs_diff : t -> t -> float
(** Max absolute interior difference; dims must match. *)

val l2_norm : t -> float
(** Euclidean norm over the interior. *)

val footprint_bytes : t -> int
(** Allocated bytes (8 * {!length}). *)

val reset_address_space : unit -> unit
(** Restart {!global_space} (for test isolation). Prefer passing a
    {!fresh_space} to {!create}: resetting the shared allocator while
    another domain allocates is atomically safe but can still interleave
    address sequences. *)
