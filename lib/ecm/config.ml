type t = {
  block : int array option;
  fold : int array option;
  wavefront : int;
  wavefront_stagger : int option;
  threads : int;
  streaming_stores : bool;
}

let default =
  { block = None; fold = None; wavefront = 1; wavefront_stagger = None;
    threads = 1; streaming_stores = false }

let v ?block ?fold ?(wavefront = 1) ?wavefront_stagger ?(threads = 1)
    ?(streaming_stores = false) () =
  (match block with
  | None -> ()
  | Some b ->
      Array.iter
        (fun x -> if x < 0 then invalid_arg "Config.v: negative block extent")
        b);
  (match fold with
  | None -> ()
  | Some f ->
      Array.iter
        (fun x -> if x <= 0 then invalid_arg "Config.v: non-positive fold")
        f);
  if wavefront < 1 then invalid_arg "Config.v: wavefront must be >= 1";
  (match wavefront_stagger with
  | Some s when s < 1 -> invalid_arg "Config.v: wavefront stagger must be >= 1"
  | _ -> ());
  if threads < 1 then invalid_arg "Config.v: threads must be >= 1";
  { block; fold; wavefront; wavefront_stagger; threads; streaming_stores }

let fold_extents t ~rank =
  match t.fold with
  | None -> Array.make rank 1
  | Some f ->
      if Array.length f <> rank then
        invalid_arg "Config.fold_extents: rank mismatch";
      Array.copy f

let block_extents t ~dims =
  match t.block with
  | None -> Array.copy dims
  | Some b ->
      if Array.length b <> Array.length dims then
        invalid_arg "Config.block_extents: rank mismatch";
      let fold = fold_extents t ~rank:(Array.length dims) in
      Array.mapi
        (fun i d ->
          if b.(i) <= 0 || b.(i) >= d then d
          else begin
            (* Blocks are aligned to vector-fold boundaries (YASK
               measures block sizes in fold units); a block cutting fold
               blocks in half would re-fetch every straddled line. *)
            let f = fold.(i) in
            min d ((b.(i) + f - 1) / f * f)
          end)
        dims

let dims_str a =
  String.concat "x" (Array.to_list (Array.map string_of_int a))

let describe t =
  let block = match t.block with None -> "none" | Some b -> dims_str b in
  let fold = match t.fold with None -> "linear" | Some f -> dims_str f in
  let stagger =
    match t.wavefront_stagger with
    | None -> ""
    | Some s -> Printf.sprintf " st=%d" s
  in
  Printf.sprintf "b=%s f=%s wf=%d%s t=%d%s" block fold t.wavefront stagger
    t.threads
    (if t.streaming_stores then " nt" else "")

let equal a b =
  a.block = b.block && a.fold = b.fold && a.wavefront = b.wavefront
  && a.wavefront_stagger = b.wavefront_stagger && a.threads = b.threads
  && a.streaming_stores = b.streaming_stores

(* Exact round-trip codec (persistent-store serialisation). Unlike
   [describe] this is built to parse back: six space-separated fields,
   "-" for None. *)
let to_string t =
  Printf.sprintf "%s %s %d %s %d %b"
    (match t.block with None -> "-" | Some b -> dims_str b)
    (match t.fold with None -> "-" | Some f -> dims_str f)
    t.wavefront
    (match t.wavefront_stagger with None -> "-" | Some s -> string_of_int s)
    t.threads t.streaming_stores

let of_string s =
  let dims_of s =
    let parts = String.split_on_char 'x' s in
    Some (Array.of_list (List.map int_of_string parts))
  in
  match String.split_on_char ' ' (String.trim s) with
  | [ block; fold; wf; stagger; threads; nt ] -> (
      try
        let block = if block = "-" then None else dims_of block in
        let fold = if fold = "-" then None else dims_of fold in
        let wavefront_stagger =
          if stagger = "-" then None else Some (int_of_string stagger)
        in
        Some
          (v ?block ?fold ~wavefront:(int_of_string wf) ?wavefront_stagger
             ~threads:(int_of_string threads)
             ~streaming_stores:(bool_of_string nt) ())
      with Failure _ | Invalid_argument _ -> None)
  | _ -> None
