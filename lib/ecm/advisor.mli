(** Analytic parameter selection: the heart of YaskSite's pitch.

    Enumerates the tuning space (spatial blocks x vector folds x
    wavefront depths) and ranks every configuration with the ECM model
    alone — no kernel is ever executed. An external tuner (Offsite) can
    call {!best} per kernel and trust the ranking. *)

val candidate_blocks : dims:int array -> int array option list
(** Spatial block candidates for a grid: [None] (unblocked) plus
    power-of-two blockings of the non-streamed dimensions, clamped to the
    grid and de-duplicated. *)

val candidate_folds :
  Yasksite_arch.Machine.t -> rank:int -> int array option list
(** [None] (linear layout) plus every factorization of the machine's
    SIMD width over the grid dimensions (YASK's fold candidates). *)

val candidate_wavefronts : int list
(** Temporal block depths explored: [[1; 2; 4; 8]]. *)

val space :
  Yasksite_arch.Machine.t -> dims:int array -> threads:int -> rank:int ->
  Config.t list
(** Full cross product of the candidates at a fixed thread count. *)

val best :
  ?cache:Cache.t ->
  ?pool:Yasksite_util.Pool.t ->
  ?filter:(Config.t -> bool) ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  threads:int ->
  Config.t * Model.prediction
(** Configuration with the highest predicted chip performance, with its
    prediction. Ties break towards simpler configurations (earlier in
    the enumeration). *)

val rank_all :
  ?cache:Cache.t ->
  ?pool:Yasksite_util.Pool.t ->
  ?filter:(Config.t -> bool) ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  threads:int ->
  (Config.t * Model.prediction) list
(** Every configuration with its prediction, best first. Model
    evaluations go through [cache] when given (memoized across calls)
    and are spread over [pool]'s domains when given; both leave the
    result exactly equal to the sequential, uncached ranking.

    [filter] is applied to the enumerated space {e before} any model
    evaluation — the schedule-legality hook. The lint layer sits above
    this library, so callers inject the predicate (typically
    [Lint.Schedule.legal]); candidates it rejects are never scored. *)

val rank_space :
  ?cache:Cache.t ->
  ?pool:Yasksite_util.Pool.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  Config.t list ->
  (Config.t * Model.prediction) list
(** {!rank_all} over an explicit candidate list (e.g. one already pruned
    by the schedule analyzer). *)
