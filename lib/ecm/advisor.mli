(** Analytic parameter selection: the heart of YaskSite's pitch.

    Enumerates the tuning space (spatial blocks x vector folds x
    wavefront depths) and ranks every configuration with the ECM model
    alone — no kernel is ever executed. An external tuner (Offsite) can
    call {!best} per kernel and trust the ranking. *)

val candidate_blocks : dims:int array -> int array option list
(** Spatial block candidates for a grid: [None] (unblocked) plus
    power-of-two blockings of the non-streamed dimensions, clamped to the
    grid and de-duplicated. *)

val candidate_folds :
  Yasksite_arch.Machine.t -> rank:int -> int array option list
(** [None] (linear layout) plus every factorization of the machine's
    SIMD width over the grid dimensions (YASK's fold candidates). *)

val candidate_wavefronts : int list
(** Temporal block depths explored: [[1; 2; 4; 8]]. *)

val space :
  Yasksite_arch.Machine.t -> dims:int array -> threads:int -> rank:int ->
  Config.t list
(** Full cross product of the candidates at a fixed thread count. *)

val best :
  ?cache:Cache.t ->
  ?pool:Yasksite_util.Pool.t ->
  ?filter:(Config.t -> bool) ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  threads:int ->
  Config.t * Model.prediction
(** Configuration with the highest predicted chip performance, with its
    prediction. Ties break towards simpler configurations (earlier in
    the enumeration). *)

val rank_all :
  ?cache:Cache.t ->
  ?pool:Yasksite_util.Pool.t ->
  ?filter:(Config.t -> bool) ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  threads:int ->
  (Config.t * Model.prediction) list
(** Every configuration with its prediction, best first. Model
    evaluations go through [cache] when given (memoized across calls)
    and are spread over [pool]'s domains when given; both leave the
    result exactly equal to the sequential, uncached ranking.

    [filter] is applied to the enumerated space {e before} any model
    evaluation — the schedule-legality hook. The lint layer sits above
    this library, so callers inject the predicate (typically
    [Lint.Schedule.legal]); candidates it rejects are never scored. *)

type partition = {
  inline : string list;
      (** stages substituted into their consumers (not materialized) *)
  stages : int;  (** stage count after fusion *)
  time : float;  (** predicted seconds per program execution *)
  stage_times : (string * float) list;
      (** per-stage predicted seconds, one entry per surviving stage *)
}

val rank_partitions :
  ?cache:Cache.t ->
  ?limit:int ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Program.t ->
  dims:int array ->
  config:Config.t ->
  partition list
(** ECM ranking of a program's fuse/materialize partitions, fastest
    first. Each stage of each candidate is priced as its extended sweep
    — [prod (dims + 2*ext)] lattice updates at the model's predicted
    chip LUP/s for the (possibly fused) stage expression — capturing
    both sides of the trade-off: materializing pays extra sweeps over
    extended extents, fusing pays recomputation and denser reads per
    point. Every partition is semantically legal: fusion preserves
    outputs bit-for-bit, and it never {e increases} the accumulated
    input-halo requirement (per-stage halo boxes over-approximate
    anisotropic consumer chains, and inlining removes that rounding),
    so grids sized for the fully-materialized plan satisfy every
    partition and ranking is purely a performance question.

    Fusion choices cannot interact across connected components, so
    costs are scored per component subset (2^k model evaluations per
    component, memoized across identical stage expressions) and the
    full product space is composed arithmetically — the ranking over
    all [2^n] partitions is exact while evaluating the model only
    [sum 2^k_i] times. At most [limit] (default 4096) entries are
    returned. Raises [Invalid_argument] on a cyclic or non-closed
    program, or when [dims] does not match the program rank. *)

val best_partition :
  ?cache:Cache.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Program.t ->
  dims:int array ->
  config:Config.t ->
  partition
(** Head of {!rank_partitions}: the predicted-fastest partition. *)

val rank_space :
  ?cache:Cache.t ->
  ?pool:Yasksite_util.Pool.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  Config.t list ->
  (Config.t * Model.prediction) list
(** {!rank_all} over an explicit candidate list (e.g. one already pruned
    by the schedule analyzer). *)
