(** A kernel configuration: the tuning-parameter vector YaskSite explores
    for one stencil on one machine. Shared by the analytic model, the
    execution engine and the tuner so that predictions and measurements
    refer to the same point of the search space. *)

type t = {
  block : int array option;
      (** spatial block extents per dimension ([None] = unblocked); a
          block extent of 0 or >= the grid extent means "unblocked in
          that dimension" *)
  fold : int array option;
      (** vector-fold extents per dimension ([None] = linear layout);
          the product should equal the SIMD width in doubles *)
  wavefront : int;  (** temporal block depth; 1 = no temporal blocking *)
  wavefront_stagger : int option;
      (** per-step plane shift of the temporal wavefront ([None] = the
          engine's safe default, radius+1 along the streamed dimension).
          Any other value is a *candidate* the schedule-legality analyzer
          must prove or refute: a stagger below radius+1 lets a step read
          planes already overwritten (or still being written) by the
          previous time level *)
  threads : int;  (** active cores *)
  streaming_stores : bool;
      (** write the output with non-temporal stores, bypassing the cache
          hierarchy and avoiding write-allocate traffic (YASK's
          streaming-store option) *)
}

val default : t
(** Unblocked, linear layout, no temporal blocking, one thread. *)

val v :
  ?block:int array -> ?fold:int array -> ?wavefront:int ->
  ?wavefront_stagger:int -> ?threads:int -> ?streaming_stores:bool -> unit ->
  t
(** Constructor with validation: positive extents, [wavefront >= 1],
    [wavefront_stagger >= 1] when given, [threads >= 1]. Streaming stores
    default to off. *)

val block_extents : t -> dims:int array -> int array
(** Effective block extents clamped to the grid: unblocked dimensions get
    the full extent. *)

val fold_extents : t -> rank:int -> int array
(** Fold extents, all ones if linear. *)

val describe : t -> string
(** Compact one-line rendering, e.g. ["b=64x16x512 f=1x2x4 wf=4 t=8"]. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Exact round-trip rendering (persistent-store serialisation); unlike
    {!describe}, built to parse back via {!of_string}. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on any malformed or invalid input. *)
