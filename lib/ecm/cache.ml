module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Analysis = Yasksite_stencil.Analysis
module Lower = Yasksite_stencil.Lower

(* Memoization of [Model.predict]. The model is pure — its output is a
   function of the machine, the kernel, the grid size and the config —
   so repeated rankings (Offsite scoring many variants on one machine,
   a tuner re-ranking after a resume) can reuse earlier evaluations.

   Keys are content fingerprints, not physical identities: two
   structurally equal machines hit the same entries, and a machine
   edited between calls misses as it must. *)

type entry = { prediction : Model.prediction; mutable last_use : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int; capacity : int }

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity;
    table = Hashtbl.create (min capacity 1024);
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0 }

let shared = create ()

(* Canonical machine rendering for fingerprinting. Floats use %h so the
   fingerprint distinguishes every representable value. *)
let machine_fingerprint (m : Machine.t) =
  let b = Buffer.create 256 in
  let vendor =
    match m.vendor with
    | Machine.Intel -> "intel"
    | Machine.Amd -> "amd"
    | Machine.Generic -> "generic"
  in
  Buffer.add_string b
    (Printf.sprintf "%s|%s|%h|%d|%d,%d,%d,%d,%d|" m.name vendor m.freq_ghz
       m.cores m.simd.dp_lanes m.simd.fma_ports m.simd.add_ports
       m.simd.load_ports m.simd.store_ports);
  Array.iter
    (fun (c : Cache_level.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%d,%d,%d,%h,%h,%s;" c.name c.size_bytes c.assoc
           c.line_bytes c.shared_by c.bytes_per_cycle c.latency_cycles
           (match c.fill with
           | Cache_level.Inclusive -> "incl"
           | Cache_level.Victim -> "victim")))
    m.caches;
  Buffer.add_string b
    (Printf.sprintf "|%h|%h|%s" m.mem_bw_chip_gbs m.mem_latency_cycles
       (match m.overlap with
       | Machine.Serial -> "serial"
       | Machine.Overlapping -> "overlap"));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The kernel's behaviourally relevant content is exactly what its
   lowered plan contains — rank, field count, canonical access table and
   the constant-folded body — so the plan fingerprint is the signature.
   Unlike the old [Spec.to_c] digest it is content-addressed: renaming a
   kernel or rewriting its expression into a bit-identical plan shares
   cache entries. *)
let kernel_signature (a : Analysis.t) = Lower.fingerprint a.Analysis.spec

let dims_str dims =
  String.concat "x" (Array.to_list (Array.map string_of_int dims))

let key m a ~dims ~config =
  (* [Config.describe] covers block, fold, wavefront, threads and
     streaming stores — the full config. *)
  Printf.sprintf "%s|%s|%s|%s" (machine_fingerprint m) (kernel_signature a)
    (dims_str dims) (Config.describe config)

(* Evict the least-recently-used entry. Linear scan: eviction only runs
   once the cache is full, and capacity is sized so that is rare. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with None -> () | Some (k, _) -> Hashtbl.remove t.table k

let predict t m a ~dims ~config =
  let k = key m a ~dims ~config in
  Mutex.lock t.mutex;
  t.tick <- t.tick + 1;
  let tick = t.tick in
  let cached =
    match Hashtbl.find_opt t.table k with
    | Some e ->
        t.hits <- t.hits + 1;
        e.last_use <- tick;
        Some e.prediction
    | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.mutex;
  match cached with
  | Some p -> p
  | None ->
      (* Compute outside the lock so concurrent misses don't serialise
         on one model evaluation. Two domains missing on the same key
         both compute — harmless, the model is pure and the second
         insert just refreshes the entry. *)
      let p = Model.predict m a ~dims ~config in
      Mutex.lock t.mutex;
      if not (Hashtbl.mem t.table k) && Hashtbl.length t.table >= t.capacity
      then evict_lru t;
      Hashtbl.replace t.table k { prediction = p; last_use = tick };
      Mutex.unlock t.mutex;
      p

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits;
      misses = t.misses;
      entries = Hashtbl.length t.table;
      capacity = t.capacity }
  in
  Mutex.unlock t.mutex;
  s

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.mutex
