module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Analysis = Yasksite_stencil.Analysis
module Lower = Yasksite_stencil.Lower
module Store = Yasksite_store.Store

(* Memoization of [Model.predict]. The model is pure — its output is a
   function of the machine, the kernel, the grid size and the config —
   so repeated rankings (Offsite scoring many variants on one machine,
   a tuner re-ranking after a resume) can reuse earlier evaluations.

   Keys are content fingerprints, not physical identities: two
   structurally equal machines hit the same entries, and a machine
   edited between calls misses as it must. *)

type entry = { prediction : Model.prediction; mutable last_use : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable store : Store.t option;
  mutable store_hits : int;
  mutable store_misses : int;
}

type stats = {
  hits : int;
  misses : int;
  entries : int;
  capacity : int;
  store_hits : int;
  store_misses : int;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity;
    table = Hashtbl.create (min capacity 1024);
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    store = None;
    store_hits = 0;
    store_misses = 0 }

let shared = create ()

(* Canonical machine rendering for fingerprinting. Floats use %h so the
   fingerprint distinguishes every representable value. *)
let machine_fingerprint (m : Machine.t) =
  let b = Buffer.create 256 in
  let vendor =
    match m.vendor with
    | Machine.Intel -> "intel"
    | Machine.Amd -> "amd"
    | Machine.Generic -> "generic"
  in
  Buffer.add_string b
    (Printf.sprintf "%s|%s|%h|%d|%d,%d,%d,%d,%d|" m.name vendor m.freq_ghz
       m.cores m.simd.dp_lanes m.simd.fma_ports m.simd.add_ports
       m.simd.load_ports m.simd.store_ports);
  Array.iter
    (fun (c : Cache_level.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%d,%d,%d,%h,%h,%s;" c.name c.size_bytes c.assoc
           c.line_bytes c.shared_by c.bytes_per_cycle c.latency_cycles
           (match c.fill with
           | Cache_level.Inclusive -> "incl"
           | Cache_level.Victim -> "victim")))
    m.caches;
  Buffer.add_string b
    (Printf.sprintf "|%h|%h|%s" m.mem_bw_chip_gbs m.mem_latency_cycles
       (match m.overlap with
       | Machine.Serial -> "serial"
       | Machine.Overlapping -> "overlap"));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The kernel's behaviourally relevant content is exactly what its
   lowered plan contains — rank, field count, canonical access table and
   the constant-folded body — so the plan fingerprint is the signature.
   Unlike the old [Spec.to_c] digest it is content-addressed: renaming a
   kernel or rewriting its expression into a bit-identical plan shares
   cache entries. *)
let kernel_signature (a : Analysis.t) = Lower.fingerprint a.Analysis.spec

let dims_str dims =
  String.concat "x" (Array.to_list (Array.map string_of_int dims))

let key m a ~dims ~config =
  (* [Config.describe] covers block, fold, wavefront, threads and
     streaming stores — the full config. *)
  Printf.sprintf "%s|%s|%s|%s" (machine_fingerprint m) (kernel_signature a)
    (dims_str dims) (Config.describe config)

(* Exact text codec for predictions, so spilled entries survive the
   process. Line-oriented; floats render as %h hex (lossless, and
   [float_of_string] reads the "inf" that [lups_saturated] can be).
   The "ecm-pred v1" magic versions the codec independently of the
   store layout: a future field change bumps it and old spills miss
   cleanly instead of misparsing. *)

let condition_str = function
  | Lc.All_fits -> "allfits"
  | Lc.Outer_reuse -> "outer"
  | Lc.Row_reuse -> "row"
  | Lc.No_reuse -> "none"

let condition_of = function
  | "allfits" -> Lc.All_fits
  | "outer" -> Lc.Outer_reuse
  | "row" -> Lc.Row_reuse
  | "none" -> Lc.No_reuse
  | _ -> raise Exit

let prediction_to_string (p : Model.prediction) =
  let b = Buffer.create 512 in
  let f x = Printf.sprintf "%h" x in
  Buffer.add_string b "ecm-pred v1\n";
  Buffer.add_string b ("config " ^ Config.to_string p.config ^ "\n");
  let i = p.incore in
  Buffer.add_string b
    (Printf.sprintf "incore %s %s %s %s %s %d %d %d\n" (f i.Incore.t_ol)
       (f i.Incore.t_nol) (f i.Incore.vector_loads) (f i.Incore.vector_stores)
       (f i.Incore.shuffles) i.Incore.fma i.Incore.adds i.Incore.muls);
  Array.iter
    (fun (bd : Lc.boundary) ->
      (* Level name last: it is the only free-form field, so the fixed
         fields parse by position and the tail re-joins into the name. *)
      Buffer.add_string b
        (Printf.sprintf "boundary %s %s %s %s\n" (condition_str bd.condition)
           (f bd.lines_per_cl) (f bd.bytes_per_lup) bd.level_name))
    p.boundaries;
  Buffer.add_string b
    ("tdata"
    ^ String.concat ""
        (List.map (fun x -> " " ^ f x) (Array.to_list p.t_data))
    ^ "\n");
  Buffer.add_string b
    (Printf.sprintf "scalars %s %s %s %s %s %d %s %s\n" (f p.t_ecm)
       (f p.cy_per_lup) (f p.lups_single) (f p.mem_bytes_per_lup)
       (f p.lups_saturated) p.saturation_cores (f p.lups_chip)
       (f p.flops_chip));
  Buffer.contents b

let prediction_of_string s =
  match String.split_on_char '\n' s |> List.filter (fun l -> l <> "") with
  | magic :: body when magic = "ecm-pred v1" -> (
      try
        let config = ref None
        and incore = ref None
        and boundaries = ref []
        and t_data = ref None
        and scalars = ref None in
        List.iter
          (fun line ->
            match String.index_opt line ' ' with
            | None -> raise Exit
            | Some i -> (
                let tag = String.sub line 0 i in
                let rest =
                  String.sub line (i + 1) (String.length line - i - 1)
                in
                match tag with
                | "config" -> (
                    match Config.of_string rest with
                    | Some c -> config := Some c
                    | None -> raise Exit)
                | "incore" -> (
                    match String.split_on_char ' ' rest with
                    | [ a; b; c; d; e; fma; adds; muls ] ->
                        incore :=
                          Some
                            { Incore.t_ol = float_of_string a;
                              t_nol = float_of_string b;
                              vector_loads = float_of_string c;
                              vector_stores = float_of_string d;
                              shuffles = float_of_string e;
                              fma = int_of_string fma;
                              adds = int_of_string adds;
                              muls = int_of_string muls }
                    | _ -> raise Exit)
                | "boundary" -> (
                    match String.split_on_char ' ' rest with
                    | cond :: lines_cl :: bytes :: (_ :: _ as name) ->
                        boundaries :=
                          { Lc.level_name = String.concat " " name;
                            condition = condition_of cond;
                            lines_per_cl = float_of_string lines_cl;
                            bytes_per_lup = float_of_string bytes }
                          :: !boundaries
                    | _ -> raise Exit)
                | "tdata" ->
                    t_data :=
                      Some
                        (Array.of_list
                           (List.map float_of_string
                              (String.split_on_char ' ' rest)))
                | "scalars" -> (
                    match String.split_on_char ' ' rest with
                    | [ a; b; c; d; e; cores; g; h ] ->
                        scalars :=
                          Some
                            ( float_of_string a, float_of_string b,
                              float_of_string c, float_of_string d,
                              float_of_string e, int_of_string cores,
                              float_of_string g, float_of_string h )
                    | _ -> raise Exit)
                | _ -> raise Exit))
          body;
        match (!config, !incore, !t_data, !scalars) with
        | ( Some config, Some incore, Some t_data,
            Some
              ( t_ecm, cy_per_lup, lups_single, mem_bytes_per_lup,
                lups_saturated, saturation_cores, lups_chip, flops_chip ) ) ->
            Some
              { Model.config;
                incore;
                boundaries = Array.of_list (List.rev !boundaries);
                t_data;
                t_ecm;
                cy_per_lup;
                lups_single;
                mem_bytes_per_lup;
                lups_saturated;
                saturation_cores;
                lups_chip;
                flops_chip }
        | _ -> None
      with Exit | Failure _ -> None)
  | _ -> None

(* Persistent spill: on attach, a memory miss consults the store before
   evaluating the model, and computed predictions are written through.
   Store failures are absorbed by the store itself, so the cache's own
   behaviour (and results) cannot change — only its speed. *)

let store_ns = "ecm-v1"

let attach_store t s =
  Mutex.lock t.mutex;
  t.store <- Some s;
  Mutex.unlock t.mutex

let detach_store t =
  Mutex.lock t.mutex;
  t.store <- None;
  Mutex.unlock t.mutex

(* Evict the least-recently-used entry. Linear scan: eviction only runs
   once the cache is full, and capacity is sized so that is rare. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with None -> () | Some (k, _) -> Hashtbl.remove t.table k

let insert t k p tick =
  Mutex.lock t.mutex;
  if not (Hashtbl.mem t.table k) && Hashtbl.length t.table >= t.capacity then
    evict_lru t;
  Hashtbl.replace t.table k { prediction = p; last_use = tick };
  Mutex.unlock t.mutex

let predict t m a ~dims ~config =
  let k = key m a ~dims ~config in
  Mutex.lock t.mutex;
  t.tick <- t.tick + 1;
  let tick = t.tick in
  let store = t.store in
  let cached =
    match Hashtbl.find_opt t.table k with
    | Some e ->
        t.hits <- t.hits + 1;
        e.last_use <- tick;
        Some e.prediction
    | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.mutex;
  match cached with
  | Some p -> p
  | None -> (
      (* Store lookup and model evaluation both happen outside the lock
         so concurrent misses don't serialise. Two domains missing on
         the same key both compute — harmless, the model is pure and
         the second insert just refreshes the entry. *)
      let warm =
        match store with
        | None -> None
        | Some s -> (
            match Store.get s ~ns:store_ns ~key:k with
            | None -> None
            | Some payload -> prediction_of_string payload)
      in
      match warm with
      | Some p ->
          Mutex.lock t.mutex;
          t.store_hits <- t.store_hits + 1;
          Mutex.unlock t.mutex;
          insert t k p tick;
          p
      | None ->
          (match store with
          | None -> ()
          | Some _ ->
              Mutex.lock t.mutex;
              t.store_misses <- t.store_misses + 1;
              Mutex.unlock t.mutex);
          let p = Model.predict m a ~dims ~config in
          insert t k p tick;
          (* Write-through spill: an undecodable or absent slot is
             repaired by the fresh value. *)
          (match store with
          | None -> ()
          | Some s -> Store.put s ~ns:store_ns ~key:k (prediction_to_string p));
          p)

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits;
      misses = t.misses;
      entries = Hashtbl.length t.table;
      capacity = t.capacity;
      store_hits = t.store_hits;
      store_misses = t.store_misses }
  in
  Mutex.unlock t.mutex;
  s

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.store_hits <- 0;
  t.store_misses <- 0;
  Mutex.unlock t.mutex
