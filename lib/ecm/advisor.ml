module Machine = Yasksite_arch.Machine
module Analysis = Yasksite_stencil.Analysis
module Pool = Yasksite_util.Pool

let dedup_options l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun o ->
      if Hashtbl.mem seen o then false
      else begin
        Hashtbl.add seen o ();
        true
      end)
    l

let candidate_blocks ~dims =
  let rank = Array.length dims in
  let clamp v d = min v d in
  let blocks =
    match rank with
    | 1 -> []
    | 2 ->
        (* Stream y (dim 0), block x. *)
        List.map
          (fun bx -> [| 0; clamp bx dims.(1) |])
          [ 64; 128; 256; 512; 1024 ]
    | _ ->
        (* Stream z (dim 0), block y and x. *)
        List.concat_map
          (fun by ->
            List.map
              (fun bx -> [| 0; clamp by dims.(1); clamp bx dims.(2) |])
              [ 32; 64; 128; 256; 512 ])
          [ 4; 8; 16; 32; 64 ]
  in
  None :: List.map (fun b -> Some b) (dedup_options blocks)

(* All [rank]-tuples of positive ints whose product is [lanes]. *)
let factorizations lanes rank =
  let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1)) in
  let rec go rank lanes =
    if rank = 1 then [ [ lanes ] ]
    else
      List.concat_map
        (fun d -> List.map (fun rest -> d :: rest) (go (rank - 1) (lanes / d)))
        (divisors lanes)
  in
  List.map Array.of_list (go rank lanes)

let candidate_folds (m : Machine.t) ~rank =
  let lanes = m.simd.dp_lanes in
  let folds =
    factorizations lanes rank
    (* The trivial all-in-x fold is the linear layout in disguise. Folds
       along the streamed dimension stay in the space: the model bills
       their lane waste under wavefront schedules, so they lose fairly. *)
    |> List.filter (fun f -> f.(rank - 1) <> lanes)
  in
  None :: List.map (fun f -> Some f) folds

let candidate_wavefronts = [ 1; 2; 4; 8 ]

(* Streaming stores combine with every spatial option but not with
   wavefronts (intermediate steps must stay cached for temporal reuse). *)
let candidate_temporal =
  [ (1, false); (1, true); (2, false); (4, false); (8, false) ]

let space m ~dims ~threads ~rank =
  let blocks = candidate_blocks ~dims in
  let folds = candidate_folds m ~rank in
  List.concat_map
    (fun block ->
      List.concat_map
        (fun fold ->
          List.map
            (fun (wavefront, streaming_stores) ->
              Config.v ?block ?fold ~wavefront ~threads ~streaming_stores ())
            candidate_temporal)
        folds)
    blocks

let rank_space ?cache ?pool m (a : Analysis.t) ~dims configs =
  let predict c =
    match cache with
    | Some cache -> Cache.predict cache m a ~dims ~config:c
    | None -> Model.predict m a ~dims ~config:c
  in
  let score c = (c, predict c) in
  let scored =
    (* The model is pure, so the parallel map returns exactly the
       sequential scores in the same order. *)
    match pool with
    | Some pool -> Pool.parallel_map pool configs ~f:score
    | None -> List.map score configs
  in
  (* Stable sort keeps enumeration order among ties: simpler first. *)
  List.stable_sort
    (fun (_, p1) (_, p2) ->
      compare p2.Model.lups_chip p1.Model.lups_chip)
    scored

(* [filter] is the schedule-legality hook: the lint library sits above
   this one, so callers (tuner, CLI, Offsite) inject the predicate —
   typically [Schedule_lint.legal] — and illegal candidates are pruned
   before any model evaluation is spent on them. *)
let rank_all ?cache ?pool ?filter m (a : Analysis.t) ~dims ~threads =
  let configs = space m ~dims ~threads ~rank:a.spec.rank in
  let configs =
    match filter with None -> configs | Some f -> List.filter f configs
  in
  rank_space ?cache ?pool m a ~dims configs

let best ?cache ?pool ?filter m a ~dims ~threads =
  match rank_all ?cache ?pool ?filter m a ~dims ~threads with
  | [] -> invalid_arg "Advisor.best: empty space"
  | (c, p) :: _ -> (c, p)
