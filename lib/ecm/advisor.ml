module Machine = Yasksite_arch.Machine
module Analysis = Yasksite_stencil.Analysis
module Program = Yasksite_stencil.Program
module Expr = Yasksite_stencil.Expr
module Pool = Yasksite_util.Pool

let dedup_options l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun o ->
      if Hashtbl.mem seen o then false
      else begin
        Hashtbl.add seen o ();
        true
      end)
    l

let candidate_blocks ~dims =
  let rank = Array.length dims in
  let clamp v d = min v d in
  let blocks =
    match rank with
    | 1 -> []
    | 2 ->
        (* Stream y (dim 0), block x. *)
        List.map
          (fun bx -> [| 0; clamp bx dims.(1) |])
          [ 64; 128; 256; 512; 1024 ]
    | _ ->
        (* Stream z (dim 0), block y and x. *)
        List.concat_map
          (fun by ->
            List.map
              (fun bx -> [| 0; clamp by dims.(1); clamp bx dims.(2) |])
              [ 32; 64; 128; 256; 512 ])
          [ 4; 8; 16; 32; 64 ]
  in
  None :: List.map (fun b -> Some b) (dedup_options blocks)

(* All [rank]-tuples of positive ints whose product is [lanes]. *)
let factorizations lanes rank =
  let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1)) in
  let rec go rank lanes =
    if rank = 1 then [ [ lanes ] ]
    else
      List.concat_map
        (fun d -> List.map (fun rest -> d :: rest) (go (rank - 1) (lanes / d)))
        (divisors lanes)
  in
  List.map Array.of_list (go rank lanes)

let candidate_folds (m : Machine.t) ~rank =
  let lanes = m.simd.dp_lanes in
  let folds =
    factorizations lanes rank
    (* The trivial all-in-x fold is the linear layout in disguise. Folds
       along the streamed dimension stay in the space: the model bills
       their lane waste under wavefront schedules, so they lose fairly. *)
    |> List.filter (fun f -> f.(rank - 1) <> lanes)
  in
  None :: List.map (fun f -> Some f) folds

let candidate_wavefronts = [ 1; 2; 4; 8 ]

(* Streaming stores combine with every spatial option but not with
   wavefronts (intermediate steps must stay cached for temporal reuse). *)
let candidate_temporal =
  [ (1, false); (1, true); (2, false); (4, false); (8, false) ]

let space m ~dims ~threads ~rank =
  let blocks = candidate_blocks ~dims in
  let folds = candidate_folds m ~rank in
  List.concat_map
    (fun block ->
      List.concat_map
        (fun fold ->
          List.map
            (fun (wavefront, streaming_stores) ->
              Config.v ?block ?fold ~wavefront ~threads ~streaming_stores ())
            candidate_temporal)
        folds)
    blocks

let rank_space ?cache ?pool m (a : Analysis.t) ~dims configs =
  let predict c =
    match cache with
    | Some cache -> Cache.predict cache m a ~dims ~config:c
    | None -> Model.predict m a ~dims ~config:c
  in
  let score c = (c, predict c) in
  let scored =
    (* The model is pure, so the parallel map returns exactly the
       sequential scores in the same order. *)
    match pool with
    | Some pool -> Pool.parallel_map pool configs ~f:score
    | None -> List.map score configs
  in
  (* Stable sort keeps enumeration order among ties: simpler first. *)
  List.stable_sort
    (fun (_, p1) (_, p2) ->
      compare p2.Model.lups_chip p1.Model.lups_chip)
    scored

(* [filter] is the schedule-legality hook: the lint library sits above
   this one, so callers (tuner, CLI, Offsite) inject the predicate —
   typically [Schedule_lint.legal] — and illegal candidates are pruned
   before any model evaluation is spent on them. *)
let rank_all ?cache ?pool ?filter m (a : Analysis.t) ~dims ~threads =
  let configs = space m ~dims ~threads ~rank:a.spec.rank in
  let configs =
    match filter with None -> configs | Some f -> List.filter f configs
  in
  rank_space ?cache ?pool m a ~dims configs

let best ?cache ?pool ?filter m a ~dims ~threads =
  match rank_all ?cache ?pool ?filter m a ~dims ~threads with
  | [] -> invalid_arg "Advisor.best: empty space"
  | (c, p) :: _ -> (c, p)

(* ---- Fusion-partition ranking ------------------------------------- *)

type partition = {
  inline : string list;
  stages : int;
  time : float;
  stage_times : (string * float) list;
}

(* Predicted wall time of one stage: the extended sweep covers
   [dims + 2*ext] points per dimension, and the model's chip LUP/s for
   the stage's analysis at those extents prices each of them. *)
let stage_time ?cache ~memo m ~dims ~config fp (s : Program.stage) ext =
  let key =
    Expr.to_c ~field_name:(fun i -> s.Program.reads.(i)) s.Program.expr
    ^ "|"
    ^ String.concat "," (List.map string_of_int (Array.to_list ext))
  in
  match Hashtbl.find_opt memo key with
  | Some t -> t
  | None ->
      let edims = Array.mapi (fun d e -> dims.(d) + (2 * e)) ext in
      let a = Analysis.of_spec (Program.stage_spec fp s) in
      let pred =
        match cache with
        | Some cache -> Cache.predict cache m a ~dims:edims ~config
        | None -> Model.predict m a ~dims:edims ~config
      in
      let points =
        float_of_int (Array.fold_left (fun acc d -> acc * d) 1 edims)
      in
      let t = points /. pred.Model.lups_chip in
      Hashtbl.add memo key t;
      t

let rank_partitions ?cache ?(limit = 4096) m (p : Program.t) ~dims ~config =
  if Array.length dims <> p.Program.rank then
    invalid_arg "Advisor.rank_partitions: dims rank mismatch";
  let memo = Hashtbl.create 64 in
  let inlinable = Program.inlinable p in
  (* Fusion choices never interact across connected components, so the
     per-partition cost is additive over components: score every subset
     of each component's inlinable stages once (2^k model sweeps per
     component), then compose the full product space arithmetically.
     For the 16-stage hdiff that is 4 components x 8 subsets = 32
     scored programs standing for all 4096 partitions. *)
  let per_component =
    List.map
      (fun comp ->
        let in_comp n = List.mem n comp in
        let cand = List.filter in_comp inlinable in
        let n = List.length cand in
        List.init (1 lsl n) (fun mask ->
            let inline = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) cand in
            let fp = Program.fuse p ~inline in
            let hp = Program.halo_plan fp in
            let times =
              Array.to_list fp.Program.stages
              |> List.filter_map (fun (s : Program.stage) ->
                     if in_comp s.name then
                       let ext = List.assoc s.name hp.Program.stage_ext in
                       Some
                         ( s.name,
                           stage_time ?cache ~memo m ~dims ~config fp s ext )
                     else None)
            in
            (inline, times)))
      (Program.components p)
  in
  let combos =
    List.fold_left
      (fun acc opts ->
        List.concat_map
          (fun (inl, ts) ->
            List.map (fun (inl0, ts0) -> (inl0 @ inl, ts0 @ ts)) acc)
          opts)
      [ ([], []) ] per_component
  in
  let scored =
    List.map
      (fun (inline, stage_times) ->
        {
          inline;
          stages = Array.length p.Program.stages - List.length inline;
          time = List.fold_left (fun a (_, t) -> a +. t) 0.0 stage_times;
          stage_times;
        })
      combos
  in
  let sorted =
    List.stable_sort (fun a b -> compare a.time b.time) scored
  in
  List.filteri (fun i _ -> i < limit) sorted

let best_partition ?cache m p ~dims ~config =
  match rank_partitions ?cache ~limit:1 m p ~dims ~config with
  | [ best ] -> best
  | _ -> invalid_arg "Advisor.best_partition: program has no stages"
