(** Memoization of ECM model evaluations.

    [Model.predict] is pure, so its results can be cached across the
    repeated rankings the stack performs: Offsite scores many ODE
    variants against one machine, tuners re-rank on resume, and a
    parallel sweep's domains evaluate overlapping spaces. Entries are
    keyed by {e content} — machine fingerprint x kernel signature x
    grid dims x full configuration (threads included) — so structurally
    equal inputs hit regardless of physical identity.

    The cache is a bounded LRU and is safe to share between domains
    (lookups and inserts are mutex-protected; model evaluation happens
    outside the lock).

    With a persistent store attached ({!attach_store}), a memory miss
    consults the store before evaluating the model, and computed
    predictions are written through — so a later process warm-starts
    from disk. The store absorbs its own failures; attaching one can
    change only the cache's speed, never its results. *)

type t

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** current resident entries *)
  capacity : int;
  store_hits : int;  (** memory misses served by the attached store *)
  store_misses : int;  (** memory misses the store could not serve *)
}

val create : ?capacity:int -> unit -> t
(** [create ()] builds an empty cache evicting least-recently-used
    entries beyond [capacity] (default 65536). [capacity] must be
    >= 1. *)

val shared : t
(** A process-wide cache at the default capacity, used by the tuner and
    Offsite paths unless told otherwise. *)

val predict :
  t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  config:Config.t ->
  Model.prediction
(** Memoized [Model.predict]: returns the cached prediction when the
    (machine, kernel, dims, config) content key was seen before, else
    evaluates the model and caches the result. *)

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val clear : t -> unit
(** Drop all entries and zero the counters (the attached store, if any,
    stays attached and keeps its on-disk entries). *)

(** {1 Persistent spill} *)

val attach_store : t -> Yasksite_store.Store.t -> unit
(** Route memory misses through [store] (namespace ["ecm-v1"]) and
    write computed predictions through to it. *)

val detach_store : t -> unit

val machine_fingerprint : Yasksite_arch.Machine.t -> string
(** Content digest of a machine description — the machine component of
    cache and store keys, exposed so other persistent consumers
    (Offsite memos) key by the same identity. *)

val prediction_to_string : Model.prediction -> string
(** Exact, versioned text rendering of a prediction (the store payload
    format; exposed for tests). *)

val prediction_of_string : string -> Model.prediction option
(** Inverse of {!prediction_to_string}; [None] on malformed input. *)
