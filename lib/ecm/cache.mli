(** Memoization of ECM model evaluations.

    [Model.predict] is pure, so its results can be cached across the
    repeated rankings the stack performs: Offsite scores many ODE
    variants against one machine, tuners re-rank on resume, and a
    parallel sweep's domains evaluate overlapping spaces. Entries are
    keyed by {e content} — machine fingerprint x kernel signature x
    grid dims x full configuration (threads included) — so structurally
    equal inputs hit regardless of physical identity.

    The cache is a bounded LRU and is safe to share between domains
    (lookups and inserts are mutex-protected; model evaluation happens
    outside the lock). *)

type t

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** current resident entries *)
  capacity : int;
}

val create : ?capacity:int -> unit -> t
(** [create ()] builds an empty cache evicting least-recently-used
    entries beyond [capacity] (default 65536). [capacity] must be
    >= 1. *)

val shared : t
(** A process-wide cache at the default capacity, used by the tuner and
    Offsite paths unless told otherwise. *)

val predict :
  t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Analysis.t ->
  dims:int array ->
  config:Config.t ->
  Model.prediction
(** Memoized [Model.predict]: returns the cached prediction when the
    (machine, kernel, dims, config) content key was seen before, else
    evaluates the model and caches the result. *)

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val clear : t -> unit
(** Drop all entries and zero the counters. *)
