(** Stencil programs: multi-stage pipelines as DAGs of named stages
    over named fields.

    A program generalises a single {!Spec} kernel to the multi-stage
    pipelines real applications sweep (the absinthe horizontal
    diffusion: Laplacian, two limited fluxes, output — per advected
    field). Each {!stage} computes one field from named fields at
    constant offsets; fields are either {e program inputs} (grids the
    caller supplies) or {e earlier stages} (intermediates the executor
    materializes). Dependencies are explicit in each stage's [reads],
    and the program must form a DAG — {!issues} reports violations with
    typed values the lint layer maps to stable YS7xx codes.

    {2 Halo accumulation}

    A consumer reading a producer at offset [k] needs the producer
    computed [k] cells past its own extent. {!halo_plan} propagates
    this requirement backwards along every path: each stage's
    {e extension} [ext(s)] is the maximum over its consumers [c] of
    [ext(c) + radius(c reads s)], with output stages at extension 0.
    The executor materializes stage [s] with halo [ext(s)] and sweeps
    it as an {e extended sweep} over [[-ext, dims+ext)]; program inputs
    must arrive with halo [ext + radius] (gated as YS404/YS704).

    {2 Fusion}

    {!fuse} inlines producer stages into their consumers — the
    substitution widens halos and replays the producer's arithmetic
    once per consuming offset, trading redundant FLOPs for the skipped
    round trip of an intermediate through the memory hierarchy (the
    classic stencil-fusion trade-off the ECM model can price).
    {!partitions} enumerates the legal fuse/materialize choices;
    every partition computes bit-identical outputs (property-tested:
    inlining substitutes the producer's expression verbatim, and each
    backend evaluates the same real-arithmetic tree). *)

type stage = {
  name : string;  (** the field this stage computes *)
  reads : string array;
      (** stage-local field table: [reads.(i)] names the field behind
          {!Expr.access} index [i] in [expr] *)
  expr : Expr.t;  (** the stencil body, fields indexed into [reads] *)
}

type t = {
  name : string;
  rank : int;
  inputs : string array;  (** grids the caller supplies *)
  stages : stage array;  (** definition order (not necessarily topological) *)
  outputs : string array;  (** stages whose grids the caller receives *)
}

val v :
  name:string ->
  rank:int ->
  inputs:string array ->
  outputs:string array ->
  stage list ->
  t
(** Construct a program. Raises [Invalid_argument] only for structural
    impossibilities (rank outside 1..3, no stages, an access whose field
    index falls outside its stage's [reads], offset rank mismatches);
    semantic DAG problems — cycles, undefined fields, duplicates — are
    left to {!issues} so the lint layer can report them with codes. *)

(** A semantic defect {!issues} found; the lint layer maps each
    constructor to a stable YS7xx code. *)
type issue =
  | Bad_name of { name : string; reason : string }
      (** not an identifier, a reserved builtin, or [f<digits>]-shaped *)
  | Duplicate_name of string  (** two inputs/stages share a name *)
  | Undefined_field of { stage : string; field : string }
      (** a stage reads a field that is neither an input nor a stage *)
  | Cycle of string list  (** stages forming a dependency cycle *)
  | Output_unknown of string  (** an output names no stage *)
  | Dead_stage of string  (** a stage no output (transitively) reads *)

val issues : t -> issue list
(** All semantic defects, deterministically ordered. A program with no
    issues is executable: it is acyclic, closed, and every stage
    contributes to an output. *)

val topo : t -> (string list, string list) result
(** Stage names in a topological order of the dependency DAG
    ([Error names] on a cycle, listing the stages of one cycle). The
    order is deterministic: depth-first from the stages in definition
    order. *)

type halo = {
  stage_ext : (string * int array) list;
      (** per-dimension extension each stage must be computed out to,
          in topological order *)
  input_halo : (string * int array) list;
      (** per-dimension halo each program input must arrive with
          (accumulated extension + read radius), in declaration order *)
}

val halo_plan : t -> halo
(** Accumulate halo requirements backwards along every dependency path
    (outputs at extension 0). Raises [Invalid_argument] on a cyclic or
    non-closed program — gate on {!issues} first. *)

val stage_spec : t -> stage -> Spec.t
(** The single-kernel view of one stage (named
    ["<program>.<stage>"]), suitable for analysis, lowering and
    sweeping. Raises [Invalid_argument] for a stage reading no field. *)

val find_stage : t -> string -> stage option

val consumers : t -> string -> string list
(** Names of stages reading the given field, in definition order. *)

val inlinable : t -> string list
(** Stages that {!fuse} may inline: non-output stages with at least one
    consuming stage, in definition order. *)

val fuse : t -> inline:string list -> t
(** Inline each named stage into all of its consumers and drop it from
    the program. Substitution shifts the producer's accesses by the
    consuming offset and re-indexes fields into the consumer's widened
    read table, so the fused stage computes the identical real-valued
    function. Raises [Invalid_argument] if a name is not {!inlinable}
    (unknown, an output, or dead) or the program is cyclic. *)

val partitions : ?limit:int -> t -> string list list
(** All fuse/materialize partitions — subsets of {!inlinable} — in a
    canonical order starting with [[]] (fully materialized), capped at
    [limit] (default 4096). Every returned value is a legal [~inline]
    argument to {!fuse}. *)

val components : t -> string list list
(** Connected components of the stage dependency graph (stages only;
    shared program inputs do not connect stages), each in definition
    order. Fusion decisions in different components are independent,
    which lets a ranker score [2^a + 2^b] sub-partitions instead of
    [2^(a+b)] whole-program ones. *)

val parse : string -> (t, int * string) result
(** Parse the textual program format; errors carry a 1-based line.

    {v
    # comment
    program <name>
    rank <1|2|3>
    inputs <field> <field> ...
    outputs <stage> <stage> ...
    <stage> = <expr>
    v}

    Directives may appear in any order and [inputs]/[outputs] lines may
    repeat (accumulating). Stage expressions use the {!Parser} syntax
    with every input and stage name available as a named field;
    [min]/[max]/[select] are the builtins. Stage definition order is
    preserved and need not be topological. *)

val to_text : t -> string
(** Render back to the textual format ({!parse} round-trips it):
    header, inputs, outputs, then stages in definition order with named
    accesses. *)
