(* The flat kernel-plan IR: what a resolved stencil expression lowers
   to before execution. Layout-independent — binding a plan to concrete
   grids (Lower.bind) is what produces runnable offsets.

   Two body forms:

   - [Groups]: the linear-combination (FMA-chain) form detected for
     sums/differences of constant-scaled sub-sums of accesses — every
     suite stencil and every generated random stencil lands here. The
     grouping mirrors the expression tree exactly (left-leaning chains,
     scale factors applied where the tree applies them), so evaluating
     a group plan is bit-identical to walking the closure tree: the
     only rewrites used are the exact IEEE-754 identities
     [a -. b = a +. (-.b)], [-.(a *. b) = (-.a) *. b], [1.0 *. v = v]
     and [c *. v = v *. c].

   - [Program]: the general fallback — the expression flattened to
     postfix (reverse Polish) code over a small stack. Postfix emission
     preserves the tree's exact operand evaluation order, so this too is
     bit-identical to the closure tree, for any expression including
     divisions.

   Terms reference accesses by {e slot}: an index into the plan's access
   table, which holds the distinct accesses in the canonical order of
   [Analysis.accesses] (sorted, deduplicated). The traced path and the
   sanitizer consume the same table, so every layer that touches grid
   data agrees on what the kernel reads. *)

type term = { coeff : float; slot : int }

type group = { scale : float option; terms : term array }

type instr =
  | Push of float
  | Load of int
  | Sym of string  (* unresolved coefficient: fingerprintable, not runnable *)
  | Neg
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Sel  (* pops b, a, c; pushes [if c > 0.0 then a else b] *)

type body =
  | Groups of group array
  | Program of { code : instr array; depth : int }

type t = {
  name : string;
  rank : int;
  n_fields : int;
  accesses : Expr.access array;
  body : body;
  fingerprint : string;
  resolved : bool;
}

let n_slots t = Array.length t.accesses

(* Memoized at construction ([v]); [resolved] sits on hot paths (every
   sweep gate, every ECM lookup), so it must not rescan the body. *)
let resolved_of body =
  match body with
  | Groups _ -> true
  | Program { code; _ } ->
      not (Array.exists (function Sym _ -> true | _ -> false) code)

let resolved t = t.resolved

(* Canonical rendering for fingerprinting. Floats use %h so every
   representable coefficient value is distinguished; the spec's name is
   deliberately excluded — the fingerprint is content-addressed, so two
   identically-shaped kernels share ECM-cache entries. *)
let render b t =
  Buffer.add_string b (Printf.sprintf "r%d|f%d|" t.rank t.n_fields);
  Array.iter
    (fun (a : Expr.access) ->
      Buffer.add_string b (Printf.sprintf "a%d:" a.field);
      Array.iter (fun d -> Buffer.add_string b (Printf.sprintf "%d," d))
        a.offsets;
      Buffer.add_char b ';')
    t.accesses;
  match t.body with
  | Groups gs ->
      Buffer.add_string b "|G";
      Array.iter
        (fun g ->
          Buffer.add_char b '(';
          (match g.scale with
          | None -> Buffer.add_char b '_'
          | Some s -> Buffer.add_string b (Printf.sprintf "%h" s));
          Array.iter
            (fun tm ->
              Buffer.add_string b
                (Printf.sprintf "|%h@%d" tm.coeff tm.slot))
            g.terms;
          Buffer.add_char b ')')
        gs
  | Program { code; _ } ->
      Buffer.add_string b "|P";
      Array.iter
        (fun i ->
          Buffer.add_string b
            (match i with
            | Push c -> Printf.sprintf "c%h;" c
            | Load s -> Printf.sprintf "l%d;" s
            | Sym n -> Printf.sprintf "y%s;" n
            | Neg -> "~;"
            | Add -> "+;"
            | Sub -> "-;"
            | Mul -> "*;"
            | Div -> "/;"
            | Min -> "m;"
            | Max -> "M;"
            | Sel -> "?;"))
        code

let fingerprint_of ~name ~rank ~n_fields ~accesses ~body =
  let t =
    { name; rank; n_fields; accesses; body; fingerprint = "";
      resolved = false }
  in
  let b = Buffer.create 256 in
  render b t;
  Digest.to_hex (Digest.string (Buffer.contents b))

let v ~name ~rank ~n_fields ~accesses ~body =
  { name;
    rank;
    n_fields;
    accesses;
    body;
    fingerprint = fingerprint_of ~name ~rank ~n_fields ~accesses ~body;
    resolved = resolved_of body }

let describe t =
  match t.body with
  | Groups gs ->
      let terms =
        Array.fold_left (fun n g -> n + Array.length g.terms) 0 gs
      in
      Printf.sprintf "%s: groups=%d terms=%d slots=%d fp=%s" t.name
        (Array.length gs) terms (n_slots t)
        (String.sub t.fingerprint 0 8)
  | Program { code; depth } ->
      Printf.sprintf "%s: program=%d depth=%d slots=%d fp=%s" t.name
        (Array.length code) depth (n_slots t)
        (String.sub t.fingerprint 0 8)
