(* Hand-written lexer and recursive-descent parser for the stencil
   expression language. Kept dependency-free (no menhir) since the
   grammar is small and errors should carry friendly positions.

   Besides the plain AST, the parser can report *located* results: the
   source span of every field reference and of every divisor
   subexpression. The lint layer uses those spans to attach caret
   diagnostics to semantic findings (duplicate loads, division by zero)
   without Expr.t having to carry positions itself. *)

type token =
  | Num of float
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Plus
  | Minus
  | Star
  | Slash

exception Parse_error of int * string (* position, message *)

let fail pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (pos, m))) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

(* Tokens carry their [start, stop) byte range in the source. *)
let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let push tok pos stop = tokens := (tok, pos, stop) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || c = '.' then begin
      let j = ref !i in
      (* digits, optional fraction, optional exponent *)
      while !j < n && (is_digit src.[!j] || src.[!j] = '.') do
        incr j
      done;
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        incr j;
        if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done
      end;
      let text = String.sub src !i (!j - !i) in
      (match float_of_string_opt text with
      | Some v -> push (Num v) pos !j
      | None -> fail pos "malformed number %S" text);
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do
        incr j
      done;
      push (Ident (String.sub src !i (!j - !i))) pos !j;
      i := !j
    end
    else begin
      (match c with
      | '(' -> push Lparen pos (pos + 1)
      | ')' -> push Rparen pos (pos + 1)
      | ',' -> push Comma pos (pos + 1)
      | '+' -> push Plus pos (pos + 1)
      | '-' -> push Minus pos (pos + 1)
      | '*' -> push Star pos (pos + 1)
      | '/' -> push Slash pos (pos + 1)
      | _ -> fail pos "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser *)

type located = {
  expr : Expr.t;
  refs : (Expr.access * (int * int)) list;
  divisors : (Expr.t * (int * int)) list;
}

type state = {
  mutable toks : (token * int * int) list;
  len : int;
  fields : (string * int) list; (* named input fields (programs) *)
  mutable refs : (Expr.access * (int * int)) list; (* reverse parse order *)
  mutable divs : (Expr.t * (int * int)) list;
}

(* Builtin functions and their arities. The names are reserved: they
   can never be coefficients or field names. *)
let builtin_arity = function
  | "min" | "max" -> Some 2
  | "select" -> Some 3
  | _ -> None

let builtin_names = [ "min"; "max"; "select" ]

let peek st =
  match st.toks with [] -> None | (t, p, _) :: _ -> Some (t, p)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* Consume [tok], returning its stop offset (for span tracking). *)
let expect st tok what =
  match st.toks with
  | (t, _, stop) :: _ when t = tok ->
      advance st;
      stop
  | (_, p, _) :: _ -> fail p "expected %s" what
  | [] -> fail st.len "expected %s at end of input" what

let axes_for rank =
  match rank with
  | 1 -> [ ("x", 0) ]
  | 2 -> [ ("y", 0); ("x", 1) ]
  | _ -> [ ("z", 0); ("y", 1); ("x", 2) ]

(* A coordinate: axis, axis+k, axis-k, or a bare (possibly negative)
   integer that must belong to the axis at this position. *)
let parse_coord st ~axes ~dim_index =
  match peek st with
  | Some (Ident name, p) -> (
      advance st;
      let dim =
        match List.assoc_opt name axes with
        | Some d -> d
        | None -> fail p "unknown axis %S" name
      in
      if dim <> dim_index then
        fail p "axis %S in position %d (expected position %d)" name dim_index
          dim;
      match peek st with
      | Some (Plus, _) -> (
          advance st;
          match peek st with
          | Some (Num v, _) ->
              advance st;
              int_of_float v
          | Some (_, q) -> fail q "expected offset after '+'"
          | None -> fail st.len "expected offset after '+'")
      | Some (Minus, _) -> (
          advance st;
          match peek st with
          | Some (Num v, _) ->
              advance st;
              -int_of_float v
          | Some (_, q) -> fail q "expected offset after '-'"
          | None -> fail st.len "expected offset after '-'")
      | _ -> 0)
  | Some (Num v, _) ->
      advance st;
      int_of_float v
  | Some (Minus, _) -> (
      advance st;
      match peek st with
      | Some (Num v, _) ->
          advance st;
          -int_of_float v
      | Some (_, p) -> fail p "expected number after '-'"
      | None -> fail st.len "expected number after '-'")
  | Some (_, p) -> fail p "expected coordinate"
  | None -> fail st.len "expected coordinate"

let field_of_ident name =
  if String.length name >= 2 && name.[0] = 'f' then
    int_of_string_opt (String.sub name 1 (String.length name - 1))
  else None

(* Every parse function returns the expression with its [start, stop)
   span so enclosing nodes can extend it. *)
let rec parse_sum st ~rank =
  let lhs = ref (parse_term st ~rank) in
  let rec loop () =
    match peek st with
    | Some (Plus, _) ->
        advance st;
        let e, (a, _) = !lhs and r, (_, stop) = parse_term st ~rank in
        lhs := (Expr.Add (e, r), (a, stop));
        loop ()
    | Some (Minus, _) ->
        advance st;
        let e, (a, _) = !lhs and r, (_, stop) = parse_term st ~rank in
        lhs := (Expr.Sub (e, r), (a, stop));
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_term st ~rank =
  let lhs = ref (parse_unary st ~rank) in
  let rec loop () =
    match peek st with
    | Some (Star, _) ->
        advance st;
        let e, (a, _) = !lhs and r, (_, stop) = parse_unary st ~rank in
        lhs := (Expr.Mul (e, r), (a, stop));
        loop ()
    | Some (Slash, _) ->
        advance st;
        let e, (a, _) = !lhs and r, rspan = parse_unary st ~rank in
        st.divs <- (r, rspan) :: st.divs;
        lhs := (Expr.Div (e, r), (a, snd rspan));
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st ~rank =
  match peek st with
  | Some (Minus, p) ->
      advance st;
      let e, (_, stop) = parse_unary st ~rank in
      (Expr.Neg e, (p, stop))
  | _ -> parse_atom st ~rank

and parse_atom st ~rank =
  match st.toks with
  | (Num v, p, stop) :: _ ->
      advance st;
      (Expr.Const v, (p, stop))
  | (Lparen, p, _) :: _ ->
      advance st;
      let e, _ = parse_sum st ~rank in
      let stop = expect st Rparen "')'" in
      (e, (p, stop))
  | (Ident name, p, pstop) :: _ -> (
      advance st;
      let access_of field =
        let axes = axes_for rank in
        let offsets = Array.make rank 0 in
        for dim = 0 to rank - 1 do
          if dim > 0 then ignore (expect st Comma "','" : int);
          offsets.(dim) <- parse_coord st ~axes ~dim_index:dim
        done;
        let stop = expect st Rparen "')'" in
        let access = { Expr.field; offsets } in
        st.refs <- (access, (p, stop)) :: st.refs;
        (Expr.Ref access, (p, stop))
      in
      match (builtin_arity name, peek st) with
      | Some arity, Some (Lparen, _) ->
          advance st;
          let args, stop = parse_args st ~rank in
          if List.length args <> arity then
            fail p "%s expects %d arguments, found %d" name arity
              (List.length args);
          let e =
            match (name, args) with
            | "min", [ a; b ] -> Expr.Min (a, b)
            | "max", [ a; b ] -> Expr.Max (a, b)
            | "select", [ c; a; b ] -> Expr.Select (c, a, b)
            | _ -> assert false
          in
          (e, (p, stop))
      | Some arity, _ ->
          fail p "%s is a builtin function and needs %d argument(s)" name
            arity
      | None, _ -> (
          match (field_of_ident name, peek st) with
          | Some field, Some (Lparen, _) ->
              advance st;
              access_of field
          | _, Some (Lparen, _) -> (
              match List.assoc_opt name st.fields with
              | Some field ->
                  advance st;
                  access_of field
              | None ->
                  fail p "unknown function %S (builtins are %s)" name
                    (String.concat ", " builtin_names))
          | _, _ -> (
              match List.assoc_opt name st.fields with
              | Some _ ->
                  fail p "field %S requires coordinates, e.g. %s(...)" name
                    name
              | None -> (Expr.Coeff name, (p, pstop)))))
  | (_, p, _) :: _ -> fail p "expected expression"
  | [] -> fail st.len "expected expression"

(* After the call's '(' : comma-separated argument expressions up to
   the matching ')'. Returns the arguments with the ')' stop offset. *)
and parse_args st ~rank =
  let rec go acc =
    let e, _ = parse_sum st ~rank in
    match peek st with
    | Some (Comma, _) ->
        advance st;
        go (e :: acc)
    | _ ->
        let stop = expect st Rparen "')'" in
        (List.rev (e :: acc), stop)
  in
  go []

let parse_expr_located ?(fields = []) ~rank src =
  if rank < 1 || rank > 3 then Error (0, "rank must be 1..3")
  else begin
    try
      let st =
        { toks = lex src;
          len = String.length src;
          fields;
          refs = [];
          divs = [] }
      in
      let e, _ = parse_sum st ~rank in
      match peek st with
      | Some (_, p) -> Error (p, "trailing input")
      | None ->
          Ok { expr = e; refs = List.rev st.refs; divisors = List.rev st.divs }
    with Parse_error (pos, msg) -> Error (pos, msg)
  end

let parse_expr ?fields ~rank src =
  if rank < 1 || rank > 3 then Error "rank must be 1..3"
  else
    match parse_expr_located ?fields ~rank src with
    | Ok l -> Ok l.expr
    | Error (pos, msg) -> Error (Printf.sprintf "at %d: %s" pos msg)

let parse_spec ~name ~rank ?n_fields src =
  match parse_expr ~rank src with
  | Error _ as e -> e
  | Ok expr -> (
      let n_fields =
        match n_fields with
        | Some n -> n
        | None ->
            (* Infer from the highest referenced field. *)
            1
            + Expr.fold_accesses expr ~init:0 ~f:(fun m (a : Expr.access) ->
                  max m a.Expr.field)
      in
      try Ok (Spec.v ~name ~rank ~n_fields expr)
      with Invalid_argument m -> Error m)
