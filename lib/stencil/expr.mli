(** Stencil expression AST.

    An expression computes the value written to the output grid at the
    "center" point from input-field values at constant relative offsets —
    the language YASK's stencil compiler accepts, minus its temporal
    conditionals. Coefficients may be literal constants or named symbols
    resolved when the kernel is compiled. *)

type access = {
  field : int;  (** input field index *)
  offsets : int array;  (** relative offsets, slowest dimension first *)
}

type t =
  | Const of float
  | Coeff of string  (** named scalar parameter *)
  | Ref of access
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Min of t * t  (** IEEE-754 minimum, [Float.min] semantics *)
  | Max of t * t  (** IEEE-754 maximum, [Float.max] semantics *)
  | Select of t * t * t
      (** [Select (c, a, b)] is the branchless compare-select
          [if c > 0.0 then a else b]: all three operands are evaluated
          unconditionally, so it lowers to a predicated blend rather
          than control flow. *)

val equal : t -> t -> bool

val fold_accesses : t -> init:'a -> f:('a -> access -> 'a) -> 'a
(** Left fold over every [Ref] node (with repetitions, in evaluation
    order). *)

val coeff_names : t -> string list
(** Sorted, de-duplicated names of [Coeff] nodes. *)

val subst_coeffs : (string -> float option) -> t -> t
(** Replace named coefficients that the environment resolves by
    constants. *)

val map_accesses : (access -> access) -> t -> t
(** Rewrite every [Ref] node (used by fusion and shifting passes). *)

val subst_accesses : (access -> t) -> t -> t
(** Replace every [Ref] node by an arbitrary expression — the stage-fusion
    primitive: substituting "y + h * sum a_ij k_j" for each input access
    folds a Runge–Kutta stage's linear combination into the stencil. *)

val access_to_c : ?field_name:(int -> string) -> access -> string
(** Render one field access in the textual syntax, e.g. ["f0(z,y-1,x)"]
    (used by diagnostics as well as {!to_c}). [field_name] overrides the
    default ["f<index>"] naming — programs render stage-local field
    names through it. *)

val to_c : ?field_name:(int -> string) -> t -> string
(** Render as a C-like expression, with accesses shown as
    [f0(z-1,y,x)]-style calls — the shape of YASK-generated scalar code.
    [field_name] as in {!access_to_c}. *)

val pp : Format.formatter -> t -> unit
