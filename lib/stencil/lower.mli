(** Lowering stencils to kernel plans and binding plans to grids.

    [lower] turns a [Spec.t] into a layout-independent {!Plan.t}
    (constant folding, FMA-chain detection, postfix fallback — all
    value-preserving down to the bit for the engine's finite data).
    [bind] specialises a plan to concrete grids: per-access row-base
    tables and last-dimension offset tables, so the engine's inner loop
    runs without per-point closure dispatch. A [bound] is immutable and
    can be shared across pool slices; each slice allocates its own
    {!driver} for mutable scratch. *)

val lower : Spec.t -> Plan.t
(** Lower a spec (resolved or not — unresolved coefficients become
    {!Plan.Sym} instructions, refused only at {!bind} time). Never
    raises on a validated spec. *)

val fingerprint : Spec.t -> string
(** [(lower spec).fingerprint] — the stable content-addressed kernel
    digest (spec name excluded) used by the ECM cache, tuner
    checkpoints and Offsite memoization. *)

val check :
  Plan.t -> inputs:Yasksite_grid.Grid.t array ->
  output:Yasksite_grid.Grid.t -> unit
(** Structural validation mirroring [Compile.check_inputs]: input count
    equals [n_fields], every grid (and the output) has the plan's rank,
    and each input's halo covers the accesses to it. Raises
    [Invalid_argument] with a ["Lower: ..."] message. *)

type bound
(** A plan specialised to concrete grids: precomputed flat row bases,
    last-dimension offset tables and raw storage handles. Immutable. *)

val bind :
  Plan.t -> inputs:Yasksite_grid.Grid.t array ->
  output:Yasksite_grid.Grid.t -> bound
(** {!check}, refuse unresolved plans ([Compile.Unresolved_coefficient]),
    then precompute the addressing tables. *)

val plan_of : bound -> Plan.t

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type raw = {
  r_slot_data : farr array;  (** per-slot raw storage *)
  r_slot_tab : int array array;  (** per-slot last-dimension tables *)
  r_out_data : farr;
  r_out_tab : int array;
}
(** The bound's addressing handles, exposed so a generated kernel
    ({!Codegen}) can be driven with the same storage and tables the
    interpreter uses — which is what makes the two bit-identical. *)

val raw_of : bound -> raw

type driver
(** Per-region mutable scratch over a shared {!bound} (slot row bases,
    coordinate scratch, the postfix stack). Not thread-safe; allocate
    one per concurrent region. *)

val driver : bound -> driver

val set_row : driver -> int array -> unit
(** [set_row drv outer] positions the driver on the row selected by the
    [rank - 1] leading interior coordinates (empty for rank 1):
    computes every slot's and the output's flat row base. *)

val driver_row : driver -> int array
(** The driver's per-slot flat row bases (the array {!set_row} fills;
    stable across calls — read, never mutate). *)

val driver_out_row : driver -> int
(** The output row base of the row selected by the last {!set_row}. *)

val eval : driver -> int -> float
(** Value at last-dimension coordinate [x] of the current row. No
    bounds checks — see {!store_row}. *)

val out_offset : driver -> int -> int
(** Flat element offset of the output point at [x]. *)

val out_addr : driver -> int -> int
(** Virtual byte address of the output point at [x] (for tracing). *)

val read_addr : driver -> int -> int -> int
(** [read_addr drv slot x]: virtual byte address of access-table entry
    [slot] at [x], in the plan's canonical access order. *)

val store_row : driver -> int -> int -> unit
(** [store_row drv xb xe]: evaluate and store every point of the
    current row with [xb <= x < xe] — the untraced hot path: one
    monomorphic loop, row bases hoisted, the output index advanced
    incrementally on unit-stride layouts. No bounds checks: the caller
    must have gated the region (legal interior regions are always safe
    because grid left padding covers the halo). *)
