type access = { field : int; offsets : int array }

type t =
  | Const of float
  | Coeff of string
  | Ref of access
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Min of t * t
  | Max of t * t
  | Select of t * t * t

let equal = ( = )

let rec fold_accesses e ~init ~f =
  match e with
  | Const _ | Coeff _ -> init
  | Ref a -> f init a
  | Neg x -> fold_accesses x ~init ~f
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      fold_accesses b ~init:(fold_accesses a ~init ~f) ~f
  | Select (c, a, b) ->
      fold_accesses b
        ~init:(fold_accesses a ~init:(fold_accesses c ~init ~f) ~f)
        ~f

let coeff_names e =
  let rec go acc = function
    | Const _ | Ref _ -> acc
    | Coeff n -> n :: acc
    | Neg x -> go acc x
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b)
    | Max (a, b) ->
        go (go acc a) b
    | Select (c, a, b) -> go (go (go acc c) a) b
  in
  List.sort_uniq compare (go [] e)

let rec subst_coeffs env = function
  | Const c -> Const c
  | Coeff n -> (match env n with Some v -> Const v | None -> Coeff n)
  | Ref a -> Ref a
  | Neg x -> Neg (subst_coeffs env x)
  | Add (a, b) -> Add (subst_coeffs env a, subst_coeffs env b)
  | Sub (a, b) -> Sub (subst_coeffs env a, subst_coeffs env b)
  | Mul (a, b) -> Mul (subst_coeffs env a, subst_coeffs env b)
  | Div (a, b) -> Div (subst_coeffs env a, subst_coeffs env b)
  | Min (a, b) -> Min (subst_coeffs env a, subst_coeffs env b)
  | Max (a, b) -> Max (subst_coeffs env a, subst_coeffs env b)
  | Select (c, a, b) ->
      Select (subst_coeffs env c, subst_coeffs env a, subst_coeffs env b)

let rec map_accesses f = function
  | Const c -> Const c
  | Coeff n -> Coeff n
  | Ref a -> Ref (f a)
  | Neg x -> Neg (map_accesses f x)
  | Add (a, b) -> Add (map_accesses f a, map_accesses f b)
  | Sub (a, b) -> Sub (map_accesses f a, map_accesses f b)
  | Mul (a, b) -> Mul (map_accesses f a, map_accesses f b)
  | Div (a, b) -> Div (map_accesses f a, map_accesses f b)
  | Min (a, b) -> Min (map_accesses f a, map_accesses f b)
  | Max (a, b) -> Max (map_accesses f a, map_accesses f b)
  | Select (c, a, b) ->
      Select (map_accesses f c, map_accesses f a, map_accesses f b)

let rec subst_accesses f = function
  | Const c -> Const c
  | Coeff n -> Coeff n
  | Ref a -> f a
  | Neg x -> Neg (subst_accesses f x)
  | Add (a, b) -> Add (subst_accesses f a, subst_accesses f b)
  | Sub (a, b) -> Sub (subst_accesses f a, subst_accesses f b)
  | Mul (a, b) -> Mul (subst_accesses f a, subst_accesses f b)
  | Div (a, b) -> Div (subst_accesses f a, subst_accesses f b)
  | Min (a, b) -> Min (subst_accesses f a, subst_accesses f b)
  | Max (a, b) -> Max (subst_accesses f a, subst_accesses f b)
  | Select (c, a, b) ->
      Select (subst_accesses f c, subst_accesses f a, subst_accesses f b)

let axis_names = [| "z"; "y"; "x" |]

let default_field_name = Printf.sprintf "f%d"

let access_to_c ?(field_name = default_field_name) a =
  let rank = Array.length a.offsets in
  let coords =
    Array.to_list
      (Array.mapi
         (fun i d ->
           (* Name dimensions x (fastest) backwards from the end. *)
           let name = axis_names.(3 - rank + i) in
           if d = 0 then name
           else if d > 0 then Printf.sprintf "%s+%d" name d
           else Printf.sprintf "%s-%d" name (-d))
         a.offsets)
  in
  Printf.sprintf "%s(%s)" (field_name a.field) (String.concat "," coords)

(* Precedence levels: 0 additive, 1 multiplicative, 2 unary/atom. *)
let rec render fn prec e =
  let paren p s = if p < prec then "(" ^ s ^ ")" else s in
  match e with
  | Const c -> Printf.sprintf "%.17g" c
  | Coeff n -> n
  | Ref a -> access_to_c ~field_name:fn a
  | Neg x -> paren 1 ("-" ^ render fn 2 x)
  | Add (a, b) -> paren 0 (render fn 0 a ^ " + " ^ render fn 0 b)
  | Sub (a, b) -> paren 0 (render fn 0 a ^ " - " ^ render fn 1 b)
  | Mul (a, b) -> paren 1 (render fn 1 a ^ " * " ^ render fn 2 b)
  | Div (a, b) -> paren 1 (render fn 1 a ^ " / " ^ render fn 2 b)
  | Min (a, b) ->
      Printf.sprintf "min(%s, %s)" (render fn 0 a) (render fn 0 b)
  | Max (a, b) ->
      Printf.sprintf "max(%s, %s)" (render fn 0 a) (render fn 0 b)
  | Select (c, a, b) ->
      Printf.sprintf "select(%s, %s, %s)" (render fn 0 c) (render fn 0 a)
        (render fn 0 b)

let to_c ?(field_name = default_field_name) e = render field_name 0 e

let pp fmt e = Format.pp_print_string fmt (to_c e)
