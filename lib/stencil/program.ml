(* Stencil programs: DAGs of named stages over named fields.

   The module is deliberately lenient at construction: [v] enforces
   only the invariants without which a program cannot even be
   inspected (field indices inside each stage's read table, offset
   ranks). Everything semantic — cycles, undefined fields, duplicate
   or reserved names, dead stages — is reported by [issues] as typed
   values, so the lint layer can attach stable YS7xx codes and the
   tests can assert on structure rather than message text. *)

type stage = { name : string; reads : string array; expr : Expr.t }

type t = {
  name : string;
  rank : int;
  inputs : string array;
  stages : stage array;
  outputs : string array;
}

let v ~name ~rank ~inputs ~outputs stages =
  if rank < 1 || rank > 3 then invalid_arg "Program: rank must be 1..3";
  if stages = [] then invalid_arg "Program: no stages";
  List.iter
    (fun (s : stage) ->
      Expr.fold_accesses s.expr ~init:() ~f:(fun () (a : Expr.access) ->
          if Array.length a.offsets <> rank then
            invalid_arg
              (Printf.sprintf "Program: stage %s: access rank mismatch" s.name);
          if a.field < 0 || a.field >= Array.length s.reads then
            invalid_arg
              (Printf.sprintf
                 "Program: stage %s: field index %d outside the read table"
                 s.name a.field)))
    stages;
  { name; rank; inputs; stages = Array.of_list stages; outputs }

(* ------------------------------------------------------------------ *)
(* Naming and lookup *)

let is_ident name =
  String.length name > 0
  && (let c = name.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       name

(* Names the expression parser claims for itself: the builtins and the
   positional f<digits> field convention. *)
let reserved_reason name =
  match name with
  | "min" | "max" | "select" -> Some "a builtin function name"
  | _ ->
      if
        String.length name >= 2
        && name.[0] = 'f'
        && String.for_all (fun c -> c >= '0' && c <= '9')
             (String.sub name 1 (String.length name - 1))
      then Some "the positional f<digits> field convention"
      else None

let find_stage t name =
  Array.find_opt (fun (s : stage) -> s.name = name) t.stages

let stage_index t =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i (s : stage) -> Hashtbl.replace tbl s.name i) t.stages;
  tbl

let consumers t field =
  Array.to_list t.stages
  |> List.filter_map (fun (s : stage) ->
         if Array.exists (( = ) field) s.reads then Some s.name else None)

(* ------------------------------------------------------------------ *)
(* Topological order *)

exception Cycle_found of string list

let topo t =
  let idx = stage_index t in
  let n = Array.length t.stages in
  (* 0 = unvisited, 1 = on the current path, 2 = done *)
  let color = Array.make n 0 in
  let order = ref [] in
  let rec visit path i =
    match color.(i) with
    | 2 -> ()
    | 1 ->
        let name = t.stages.(i).name in
        let rec take acc = function
          | [] -> acc
          | p :: _ when p = name -> acc
          | p :: rest -> take (p :: acc) rest
        in
        raise (Cycle_found (name :: take [] path))
    | _ ->
        color.(i) <- 1;
        let path = t.stages.(i).name :: path in
        Array.iter
          (fun r ->
            match Hashtbl.find_opt idx r with
            | Some j -> visit path j
            | None -> ())
          t.stages.(i).reads;
        color.(i) <- 2;
        order := t.stages.(i).name :: !order
  in
  try
    for i = 0 to n - 1 do
      visit [] i
    done;
    Ok (List.rev !order)
  with Cycle_found names -> Error names

(* ------------------------------------------------------------------ *)
(* Semantic issues *)

type issue =
  | Bad_name of { name : string; reason : string }
  | Duplicate_name of string
  | Undefined_field of { stage : string; field : string }
  | Cycle of string list
  | Output_unknown of string
  | Dead_stage of string

let issues t =
  let acc = ref [] in
  let add i = acc := i :: !acc in
  let defined =
    Array.append t.inputs (Array.map (fun (s : stage) -> s.name) t.stages)
  in
  Array.iter
    (fun name ->
      if not (is_ident name) then
        add (Bad_name { name; reason = "not an identifier" })
      else
        match reserved_reason name with
        | Some reason ->
            add (Bad_name { name; reason = "reserved: " ^ reason })
        | None -> ())
    defined;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun name ->
      if Hashtbl.mem seen name then add (Duplicate_name name)
      else Hashtbl.replace seen name ())
    defined;
  Array.iter
    (fun (s : stage) ->
      let reported = Hashtbl.create 4 in
      Array.iter
        (fun r ->
          if
            (not (Hashtbl.mem seen r))
            && not (Hashtbl.mem reported r)
          then begin
            Hashtbl.replace reported r ();
            add (Undefined_field { stage = s.name; field = r })
          end)
        s.reads)
    t.stages;
  (match topo t with Error names -> add (Cycle names) | Ok _ -> ());
  let idx = stage_index t in
  Array.iter
    (fun o -> if not (Hashtbl.mem idx o) then add (Output_unknown o))
    t.outputs;
  (* Dead stages: walk backwards from the outputs; anything the walk
     never reaches contributes to no output. Skipped on cyclic programs
     (the cycle is the finding). *)
  (match topo t with
  | Error _ -> ()
  | Ok _ ->
      let live = Hashtbl.create 16 in
      let rec mark name =
        if not (Hashtbl.mem live name) then begin
          Hashtbl.replace live name ();
          match Hashtbl.find_opt idx name with
          | Some i -> Array.iter mark t.stages.(i).reads
          | None -> ()
        end
      in
      Array.iter mark t.outputs;
      Array.iter
        (fun (s : stage) ->
          if not (Hashtbl.mem live s.name) then add (Dead_stage s.name))
        t.stages);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Halo accumulation *)

type halo = {
  stage_ext : (string * int array) list;
  input_halo : (string * int array) list;
}

(* Per-dimension reach of [s]'s accesses into each read field. *)
let stage_radii rank (s : stage) =
  let r = Array.map (fun _ -> Array.make rank 0) s.reads in
  Expr.fold_accesses s.expr ~init:() ~f:(fun () (a : Expr.access) ->
      Array.iteri
        (fun d off -> r.(a.field).(d) <- max r.(a.field).(d) (abs off))
        a.offsets);
  r

let halo_plan t =
  let order =
    match topo t with
    | Ok o -> o
    | Error _ -> invalid_arg "Program.halo_plan: cyclic program"
  in
  let idx = stage_index t in
  let need = Hashtbl.create 16 in
  let need_of name =
    match Hashtbl.find_opt need name with
    | Some a -> a
    | None ->
        let a = Array.make t.rank 0 in
        Hashtbl.replace need name a;
        a
  in
  (* Consumers before producers: reverse topological order, so each
     stage's extension is final before it is propagated to its reads. *)
  List.iter
    (fun sname ->
      let i =
        match Hashtbl.find_opt idx sname with
        | Some i -> i
        | None -> invalid_arg "Program.halo_plan: non-closed program"
      in
      let s = t.stages.(i) in
      let ext = need_of sname in
      let radii = stage_radii t.rank s in
      Array.iteri
        (fun j rad ->
          let dst = need_of s.reads.(j) in
          Array.iteri (fun d v -> dst.(d) <- max dst.(d) (ext.(d) + v)) rad)
        radii)
    (List.rev order);
  { stage_ext = List.map (fun n -> (n, Array.copy (need_of n))) order;
    input_halo =
      Array.to_list t.inputs
      |> List.map (fun n -> (n, Array.copy (need_of n))) }

let stage_spec t (s : stage) =
  Spec.v
    ~name:(t.name ^ "." ^ s.name)
    ~rank:t.rank
    ~n_fields:(max 1 (Array.length s.reads))
    s.expr

(* ------------------------------------------------------------------ *)
(* Fusion *)

let inlinable t =
  let idx = stage_index t in
  Array.to_list t.stages
  |> List.filter_map (fun (s : stage) ->
         if
           (not (Array.exists (( = ) s.name) t.outputs))
           && List.exists (fun c -> Hashtbl.mem idx c) (consumers t s.name)
         then Some s.name
         else None)

let fuse t ~inline =
  let inline = List.sort_uniq compare inline in
  let legal = inlinable t in
  List.iter
    (fun n ->
      if not (List.mem n legal) then
        invalid_arg (Printf.sprintf "Program.fuse: %S is not inlinable" n))
    inline;
  let order =
    match topo t with
    | Ok o -> o
    | Error _ -> invalid_arg "Program.fuse: cyclic program"
  in
  let idx = stage_index t in
  let inlined = Hashtbl.create 8 in
  let resolved = Hashtbl.create 16 in
  (* Resolve a stage against the already-fully-resolved inlined
     producers (topological order guarantees single-level lookup). The
     new read table is built in first-use order. *)
  let resolve (s : stage) =
    let rev_reads = ref [] and nslots = ref 0 in
    let slots = Hashtbl.create 8 in
    let slot name =
      match Hashtbl.find_opt slots name with
      | Some i -> i
      | None ->
          let i = !nslots in
          incr nslots;
          rev_reads := name :: !rev_reads;
          Hashtbl.replace slots name i;
          i
    in
    let expr =
      Expr.subst_accesses
        (fun (a : Expr.access) ->
          let fname = s.reads.(a.field) in
          match Hashtbl.find_opt inlined fname with
          | None ->
              Expr.Ref { field = slot fname; offsets = Array.copy a.offsets }
          | Some (p_reads, p_expr) ->
              Expr.map_accesses
                (fun (pa : Expr.access) ->
                  { Expr.field = slot p_reads.(pa.field);
                    offsets =
                      Array.mapi (fun d o -> o + a.offsets.(d)) pa.offsets })
                p_expr)
        s.expr
    in
    { s with reads = Array.of_list (List.rev !rev_reads); expr }
  in
  List.iter
    (fun sname ->
      let s = t.stages.(Hashtbl.find idx sname) in
      let s' = resolve s in
      if List.mem sname inline then
        Hashtbl.replace inlined sname (s'.reads, s'.expr)
      else Hashtbl.replace resolved sname s')
    order;
  let stages =
    Array.to_list t.stages
    |> List.filter_map (fun (s : stage) -> Hashtbl.find_opt resolved s.name)
  in
  { t with stages = Array.of_list stages }

let partitions ?(limit = 4096) t =
  let names = Array.of_list (inlinable t) in
  let n = Array.length names in
  let total = if n >= 30 then max_int else 1 lsl n in
  let count = min limit total in
  List.init count (fun mask ->
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list names))

let components t =
  let idx = stage_index t in
  let n = Array.length t.stages in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  Array.iteri
    (fun i (s : stage) ->
      Array.iter
        (fun r ->
          match Hashtbl.find_opt idx r with
          | Some j -> union i j
          | None -> ())
        s.reads)
    t.stages;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i (s : stage) ->
      let r = find i in
      Hashtbl.replace groups r
        (s.name :: (try Hashtbl.find groups r with Not_found -> [])))
    t.stages;
  (* Components ordered by their first stage; members in definition
     order. *)
  Hashtbl.fold (fun r members acc -> (r, List.rev members) :: acc) groups []
  |> List.sort compare
  |> List.map snd

(* ------------------------------------------------------------------ *)
(* Textual format *)

let parse src =
  let lines = String.split_on_char '\n' src in
  let err line fmt = Printf.ksprintf (fun m -> Error (line, m)) fmt in
  let strip l =
    let l = match String.index_opt l '#' with
      | Some i -> String.sub l 0 i
      | None -> l
    in
    String.trim l
  in
  let words l =
    String.split_on_char ' ' l
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (( <> ) "")
  in
  (* Pass 1: collect the header and the stage (name, body, line)
     triples; expressions wait for pass 2 when every name is known. *)
  let name = ref None and rank = ref None in
  let inputs = ref [] and outputs = ref [] and stage_lines = ref [] in
  let error = ref None in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      if !error = None then
        let l = strip raw in
        if l <> "" then
          match String.index_opt l '=' with
          | Some eq ->
              let sname = String.trim (String.sub l 0 eq) in
              let body =
                String.trim
                  (String.sub l (eq + 1) (String.length l - eq - 1))
              in
              if sname = "" then
                error := Some (ln, "missing stage name before '='")
              else stage_lines := (sname, body, ln) :: !stage_lines
          | None -> (
              match words l with
              | "program" :: rest -> (
                  match (rest, !name) with
                  | [ n ], None -> name := Some n
                  | [ _ ], Some _ ->
                      error := Some (ln, "duplicate 'program' line")
                  | _ ->
                      error := Some (ln, "expected 'program <name>'"))
              | "rank" :: rest -> (
                  match (rest, !rank) with
                  | [ r ], None -> (
                      match int_of_string_opt r with
                      | Some r when r >= 1 && r <= 3 -> rank := Some r
                      | _ -> error := Some (ln, "rank must be 1, 2 or 3"))
                  | [ _ ], Some _ ->
                      error := Some (ln, "duplicate 'rank' line")
                  | _ -> error := Some (ln, "expected 'rank <1|2|3>'"))
              | "inputs" :: rest ->
                  if rest = [] then
                    error := Some (ln, "expected 'inputs <name> ...'")
                  else inputs := !inputs @ rest
              | "outputs" :: rest ->
                  if rest = [] then
                    error := Some (ln, "expected 'outputs <name> ...'")
                  else outputs := !outputs @ rest
              | w :: _ ->
                  error :=
                    Some
                      ( ln,
                        Printf.sprintf
                          "unknown directive %S (expected program, rank, \
                           inputs, outputs, or '<stage> = <expr>')"
                          w )
              | [] -> ()))
    lines;
  match !error with
  | Some (ln, msg) -> Error (ln, msg)
  | None -> (
      match (!name, !rank, List.rev !stage_lines) with
      | None, _, _ -> err 1 "missing 'program <name>' header"
      | _, None, _ -> err 1 "missing 'rank <1|2|3>' header"
      | _, _, [] -> err 1 "program has no stages"
      | Some name, Some rank, stage_lines -> (
          (* Pass 2: every input and stage name is a named field; each
             stage body is then parsed and its global field indices
             compacted into a first-use read table. *)
          let all_names =
            !inputs @ List.map (fun (n, _, _) -> n) stage_lines
          in
          let fields = List.mapi (fun i n -> (n, i)) all_names in
          let global = Array.of_list (List.map fst fields) in
          let parse_stage (sname, body, ln) =
            match Parser.parse_expr ~fields ~rank body with
            | Error msg -> Error (ln, Printf.sprintf "stage %s: %s" sname msg)
            | Ok expr ->
                let rev_reads = ref [] and nslots = ref 0 in
                let slots = Hashtbl.create 8 in
                let slot g =
                  match Hashtbl.find_opt slots g with
                  | Some i -> i
                  | None ->
                      let i = !nslots in
                      incr nslots;
                      rev_reads := global.(g) :: !rev_reads;
                      Hashtbl.replace slots g i;
                      i
                in
                let expr =
                  Expr.map_accesses
                    (fun (a : Expr.access) -> { a with field = slot a.field })
                    expr
                in
                Ok
                  { name = sname;
                    reads = Array.of_list (List.rev !rev_reads);
                    expr }
          in
          let rec all acc = function
            | [] -> Ok (List.rev acc)
            | sl :: rest -> (
                match parse_stage sl with
                | Error _ as e -> e
                | Ok s -> all (s :: acc) rest)
          in
          match all [] stage_lines with
          | Error _ as e -> e
          | Ok stages -> (
              try
                Ok
                  (v ~name ~rank
                     ~inputs:(Array.of_list !inputs)
                     ~outputs:(Array.of_list !outputs)
                     stages)
              with Invalid_argument m -> err 1 "%s" m)))

let to_text t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" t.name);
  Buffer.add_string buf (Printf.sprintf "rank %d\n" t.rank);
  if t.inputs <> [||] then
    Buffer.add_string buf
      (Printf.sprintf "inputs %s\n"
         (String.concat " " (Array.to_list t.inputs)));
  if t.outputs <> [||] then
    Buffer.add_string buf
      (Printf.sprintf "outputs %s\n"
         (String.concat " " (Array.to_list t.outputs)));
  Array.iter
    (fun (s : stage) ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s\n" s.name
           (Expr.to_c ~field_name:(fun i -> s.reads.(i)) s.expr)))
    t.stages;
  Buffer.contents buf
