module Grid = Yasksite_grid.Grid

(* Source-level specialization of a kernel plan: emit a self-contained
   OCaml compilation unit whose inner loop is the plan's FMA chain fully
   unrolled, with every coefficient, last-dimension shift and pad folded
   into literals — no per-point dispatch, no table indirection on
   unit-stride grids. The unit depends on nothing but the stdlib, so a
   host can [Dynlink] it without sharing any cmi; the kernel pair is
   published through [Callback.register] under an ABI-versioned name.

   Bit-identity contract: every expression below replays the exact
   IEEE-754 operation sequence of the plan interpreter (Lower):

   - a term is [v], [(-. v)] or [(c *. v)] by the same [1.0]/[-1.0]
     coefficient tests [Lower.term_val] applies;
   - group sums and the group chain are emitted as left-associated
     [+.] chains, the order [Lower.point_groups] folds them in;
   - a group's scale multiplies {e after} its sum, as the interpreter
     does;
   - a postfix [Program] body is reconstructed into the nested
     expression whose evaluation replays the program verbatim (the
     operands are pure loads and literals, so operand evaluation order
     cannot matter);
   - coefficients render as hex-float literals ([%h]), which
     round-trip every finite double exactly; [nan] coefficients are
     refused (an emitted [nan] literal could lose the payload).

   Addressing matches [Lower.bind]'s decomposition: a per-row base
   (passed in through [row]/[out_row], computed by the caller's
   driver) plus a last-dimension offset — the precomputed table on
   folded layouts, or [x + shift] directly when the grid is
   unit-stride ({!Grid.unit_stride} holds exactly when the table is
   the identity). *)

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type kern_row =
  farr array ->
  int array array ->
  farr ->
  int array ->
  int array ->
  int ->
  int ->
  int ->
  unit

type kern_point = farr array -> int array array -> int array -> int -> float

type kern = { row : kern_row; point : kern_point }

let abi = 1

type variant = {
  slot_shift : int array;
  slot_unit : bool array;
  out_lp : int;
  out_unit : bool;
}

let variant_of ~(plan : Plan.t) ~inputs ~output =
  let r = plan.Plan.rank in
  let lp = Array.map (fun g -> (Grid.left_pad g).(r - 1)) inputs in
  let unit = Array.map Grid.unit_stride inputs in
  { slot_shift =
      Array.map
        (fun (a : Expr.access) -> a.Expr.offsets.(r - 1) + lp.(a.Expr.field))
        plan.Plan.accesses;
    slot_unit =
      Array.map (fun (a : Expr.access) -> unit.(a.Expr.field)) plan.Plan.accesses;
    out_lp = (Grid.left_pad output).(r - 1);
    out_unit = Grid.unit_stride output }

let key ~(plan : Plan.t) v =
  let b = Buffer.create 160 in
  Printf.bprintf b "yasksite-kern-abi%d|%s|sh:" abi plan.Plan.fingerprint;
  Array.iter (fun s -> Printf.bprintf b "%d," s) v.slot_shift;
  Buffer.add_string b "|su:";
  Array.iter (fun u -> Buffer.add_char b (if u then '1' else '0')) v.slot_unit;
  Printf.bprintf b "|olp:%d|ou:%b" v.out_lp v.out_unit;
  Digest.to_hex (Digest.string (Buffer.contents b))

let callback_name k = "yasksite-kern-v" ^ string_of_int abi ^ ":" ^ k

let unit_basename k = "yk_" ^ k

(* ---- emission ---- *)

exception Unsupported of string

let float_lit c =
  if c <> c then raise (Unsupported "NaN coefficient (payload bits not emittable)")
  else if c = infinity then "infinity"
  else if c = neg_infinity then "neg_infinity"
  else Printf.sprintf "(%h)" c

let int_lit n = if n < 0 then Printf.sprintf "(%d)" n else string_of_int n

(* The value of access-table slot [s] at the current point [x]. *)
let load v s =
  if s < 0 || s >= Array.length v.slot_shift then
    raise (Unsupported (Printf.sprintf "load of slot %d outside the access table" s));
  if v.slot_unit.(s) then
    Printf.sprintf "(Bigarray.Array1.unsafe_get d%d (r%d + x + %s))" s s
      (int_lit v.slot_shift.(s))
  else
    Printf.sprintf
      "(Bigarray.Array1.unsafe_get d%d (r%d + Array.unsafe_get t%d (x + %s)))"
      s s s
      (int_lit v.slot_shift.(s))

let term_expr v (t : Plan.term) =
  if t.Plan.slot < 0 then float_lit t.Plan.coeff
  else if t.Plan.coeff = 1.0 then load v t.Plan.slot
  else if t.Plan.coeff = -1.0 then Printf.sprintf "(-. %s)" (load v t.Plan.slot)
  else Printf.sprintf "(%s *. %s)" (float_lit t.Plan.coeff) (load v t.Plan.slot)

let group_expr v (g : Plan.group) =
  if Array.length g.Plan.terms = 0 then raise (Unsupported "empty group");
  let sum =
    "("
    ^ String.concat " +. "
        (Array.to_list (Array.map (term_expr v) g.Plan.terms))
    ^ ")"
  in
  match g.Plan.scale with
  | None -> sum
  | Some s -> Printf.sprintf "(%s *. %s)" (float_lit s) sum

let program_expr v (code : Plan.instr array) =
  let stack = ref [] in
  let push e = stack := e :: !stack in
  let pop () =
    match !stack with
    | e :: tl ->
        stack := tl;
        e
    | [] -> raise (Unsupported "malformed postfix program (stack underflow)")
  in
  let binop op =
    let b = pop () in
    let a = pop () in
    push (Printf.sprintf "(%s %s %s)" a op b)
  in
  Array.iter
    (fun (i : Plan.instr) ->
      match i with
      | Plan.Push c -> push (float_lit c)
      | Plan.Load s -> push (load v s)
      | Plan.Sym n -> raise (Unsupported ("unresolved coefficient " ^ n))
      | Plan.Neg -> push (Printf.sprintf "(-. %s)" (pop ()))
      | Plan.Add -> binop "+."
      | Plan.Sub -> binop "-."
      | Plan.Mul -> binop "*."
      | Plan.Div -> binop "/."
      | Plan.Min ->
          let b = pop () in
          let a = pop () in
          push (Printf.sprintf "(Float.min %s %s)" a b)
      | Plan.Max ->
          let b = pop () in
          let a = pop () in
          push (Printf.sprintf "(Float.max %s %s)" a b)
      | Plan.Sel ->
          (* operands are pure (loads/literals), so materializing all
             three and blending is the interpreter's exact semantics *)
          let b = pop () in
          let a = pop () in
          let c = pop () in
          push (Printf.sprintf "(if %s > 0.0 then %s else %s)" c a b))
    code;
  match !stack with
  | [ e ] -> e
  | _ -> raise (Unsupported "malformed postfix program (leftover operands)")

let body_expr (plan : Plan.t) v =
  match plan.Plan.body with
  | Plan.Groups gs ->
      if Array.length gs = 0 then raise (Unsupported "empty plan body");
      (* parenthesized groups joined by +. parse left-associated — the
         interpreter's accumulation order *)
      String.concat " +. " (Array.to_list (Array.map (group_expr v) gs))
  | Plan.Program { code; _ } -> program_expr v code

let used_slots (plan : Plan.t) =
  let used = Array.make (max 1 (Plan.n_slots plan)) false in
  let mark s = if s >= 0 && s < Array.length used then used.(s) <- true in
  (match plan.Plan.body with
  | Plan.Groups gs ->
      Array.iter
        (fun (g : Plan.group) ->
          Array.iter (fun (t : Plan.term) -> mark t.Plan.slot) g.Plan.terms)
        gs
  | Plan.Program { code; _ } ->
      Array.iter
        (fun (i : Plan.instr) ->
          match i with Plan.Load s -> mark s | _ -> ())
        code);
  used

(* Per-slot hoisted bindings: data handle, row base, and (only on
   non-unit-stride grids) the offset table. *)
let prelude b used v =
  Array.iteri
    (fun s u ->
      if u then begin
        Printf.bprintf b "  let d%d = Array.unsafe_get slot_data %d in\n" s s;
        if not v.slot_unit.(s) then
          Printf.bprintf b "  let t%d = Array.unsafe_get slot_tab %d in\n" s s;
        Printf.bprintf b "  let r%d = Array.unsafe_get row %d in\n" s s
      end)
    used

let source ~(plan : Plan.t) v =
  if Array.length v.slot_shift <> Plan.n_slots plan
     || Array.length v.slot_unit <> Plan.n_slots plan
  then invalid_arg "Codegen.source: variant arity does not match the plan";
  match
    let k = key ~plan v in
    let used = used_slots plan in
    let expr = body_expr plan v in
    let b = Buffer.create 2048 in
    Printf.bprintf b
      "(* yasksite generated kernel (abi v%d) -- machine-written, do not \
       edit.\n\
      \   plan: %s\n\
      \   fingerprint: %s\n\
      \   key: %s *)\n\n"
      abi plan.Plan.name plan.Plan.fingerprint k;
    Buffer.add_string b
      "type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) \
       Bigarray.Array1.t\n\n";
    Buffer.add_string b
      "let kern_point (slot_data : farr array) (slot_tab : int array array)\n\
      \    (row : int array) (x : int) : float =\n";
    prelude b used v;
    Printf.bprintf b "  ignore slot_data; ignore slot_tab; ignore row; ignore x;\n";
    Printf.bprintf b "  (%s)\n\n" expr;
    Buffer.add_string b
      "let kern_row (slot_data : farr array) (slot_tab : int array array)\n\
      \    (out : farr) (out_tab : int array) (row : int array) (out_row : \
       int)\n\
      \    (xb : int) (xe : int) : unit =\n";
    Buffer.add_string b
      "  ignore slot_data; ignore slot_tab; ignore out_tab; ignore row;\n";
    prelude b used v;
    if v.out_unit then begin
      Printf.bprintf b "  let off = ref (out_row + %s + xb) in\n"
        (int_lit v.out_lp);
      Buffer.add_string b "  for x = xb to xe - 1 do\n";
      Printf.bprintf b "    Bigarray.Array1.unsafe_set out !off (%s);\n" expr;
      Buffer.add_string b "    incr off\n  done\n\n"
    end
    else begin
      Buffer.add_string b "  for x = xb to xe - 1 do\n";
      Printf.bprintf b
        "    Bigarray.Array1.unsafe_set out (out_row + Array.unsafe_get \
         out_tab (x + %s)) (%s)\n"
        (int_lit v.out_lp) expr;
      Buffer.add_string b "  done\n\n"
    end;
    Printf.bprintf b "let () = Callback.register %S (kern_row, kern_point)\n"
      (callback_name k);
    Buffer.contents b
  with
  | src -> Ok src
  | exception Unsupported reason -> Error reason

let supported plan =
  match
    body_expr plan
      { slot_shift = Array.make (Plan.n_slots plan) 0;
        slot_unit = Array.make (Plan.n_slots plan) true;
        out_lp = 0;
        out_unit = true }
  with
  | (_ : string) -> Ok ()
  | exception Unsupported reason -> Error reason
