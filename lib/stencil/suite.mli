(** The standard stencil suite used across the evaluation — the analogue
    of the kernel set a YaskSite-style paper benchmarks (short- and
    long-range stars, boxes, variable coefficients, plus streaming
    kernels for model calibration). Coefficients are symbolic; use
    {!resolve_defaults} (or [Spec.resolve]) before compiling. *)

val copy_1d : Spec.t
(** [out(x) = f0(x)] — pure stream, calibrates bandwidth terms. *)

val scale_1d : Spec.t
(** [out(x) = s * f0(x)]. *)

val heat_1d_3pt : Spec.t

val heat_2d_5pt : Spec.t

val box_2d_9pt : Spec.t

val heat_3d_7pt : Spec.t
(** The paper's workhorse kernel (3D 7-point constant-coefficient). *)

val box_3d_27pt : Spec.t

val star_3d_r2 : Spec.t
(** 13-point long-range star (radius 2). *)

val varcoef_3d_7pt : Spec.t
(** 7-point star with a variable-coefficient field (2 read streams). *)

val all : Spec.t list
(** Every suite stencil, in presentation order. *)

val eval_suite : Spec.t list
(** The subset used for the prediction-accuracy experiments (excludes the
    trivial streaming kernels). *)

val find : string -> Spec.t
(** Lookup by name; raises [Not_found]. *)

val resolve_defaults : Spec.t -> Spec.t
(** Bind every symbolic coefficient to a documented default (e.g.
    [r = 0.1]), leaving the kernel ready to compile. *)

val hdiff_text : string
(** The textual source of {!hdiff} (also shipped as
    [examples/hdiff.prog]). *)

val hdiff : Program.t
(** The absinthe-style horizontal-diffusion program: per advected field
    ([u], [v], [w], [pp]) a Laplacian stage, two flux stages whose
    limiter is the branchless [select], and a masked output update —
    16 stages over 5 inputs, 4 independent components. The multi-stage
    pipeline of the fusion experiments. *)

val programs : Program.t list
(** Every suite program, in presentation order. *)

val find_program : string -> Program.t
(** Lookup by name; raises [Not_found]. *)
