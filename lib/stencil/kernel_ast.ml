(* The checked kernel AST: the concrete syntax of what Codegen emits.

   Codegen's output grammar is tiny -- one type declaration, two
   functions whose bodies are prelude bindings plus a fully
   parenthesized float expression over unsafe loads, and one
   Callback.register -- and this module is its parser and printer: a
   hand-written lexer (dotted paths lex as single idents, hex-float
   literals round-trip [%h] exactly, [-] glued to a digit starts a
   negative numeral) and a recursive-descent parser accepting exactly
   the emitted shapes, nothing more. The YS6xx translation validator
   (Lint.Native) compares parsed ASTs against the plan IR; the seeded
   miscompile injector (Faults.Miscompile) mutates them and prints
   them back. Keeping syntax here and judgment in the lint layer is
   what lets both ends share one grammar without a dependency cycle. *)

(* ------------------------------------------------------------------ *)
(* The checked AST                                                     *)

type binop = Add | Sub | Mul | Div

type addr =
  | Unit_addr of { data : int; row : int; shift : int }
  | Tab_addr of { data : int; row : int; tab : int; shift : int }

type expr =
  | Lit of float
  | Get of addr
  | Neg of expr
  | Bin of binop * expr * expr
  | Fmin of expr * expr  (* (Float.min a b) *)
  | Fmax of expr * expr  (* (Float.max a b) *)
  | Sel of expr * expr * expr  (* (if c > 0.0 then a else b) *)

type bind =
  | Bind_data of { name : int; src : int }
  | Bind_tab of { name : int; src : int }
  | Bind_row of { name : int; src : int }

type out_addr = Out_unit of { lp : int } | Out_tab of { lp : int }

type unit_ast = {
  point_binds : bind list;
  point_expr : expr;
  row_binds : bind list;
  row_out : out_addr;
  row_expr : expr;
  reg_name : string;
}

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | EQUAL
  | BANG
  | INT of int
  | FLOAT of float
  | IDENT of string
  | STRING of string
  | OP of string  (* "+." "-." "*." "/." "+" "-" *)
  | EOF

exception Reject of string * int  (* message, 1-based line *)

let fail line fmt = Printf.ksprintf (fun m -> raise (Reject (m, line))) fmt

let is_digit c = c >= '0' && c <= '9'

let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '\''

(* Tokenize the whole unit. Dotted paths ([Bigarray.Array1.unsafe_get])
   lex as single idents; [-] immediately followed by a digit starts a
   negative numeral (Codegen only emits that inside parentheses, and
   spaces the binary minus of [xe - 1]); hex-float literals lex through
   [float_of_string], which round-trips [%h] exactly. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] and line = ref 1 and i = ref 0 in
  let emit t = toks := (t, !line) :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let skip_comment () =
    (* enter with !i at the '(' of "(*" *)
    let rec go depth =
      if !i >= n then fail !line "unterminated comment";
      match src.[!i] with
      | '\n' ->
          incr line;
          incr i;
          go depth
      | '(' when peek 1 = Some '*' ->
          i := !i + 2;
          go (depth + 1)
      | '*' when peek 1 = Some ')' ->
          i := !i + 2;
          if depth > 1 then go (depth - 1)
      | _ ->
          incr i;
          go depth
    in
    i := !i + 2;
    go 1
  in
  let lex_number ~neg =
    let start = !i in
    if neg then incr i;
    let is_hexfloat = ref false in
    if !i + 1 < n && src.[!i] = '0' && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
    then begin
      i := !i + 2;
      while !i < n && is_hex src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' then begin
        is_hexfloat := true;
        incr i;
        while !i < n && is_hex src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'p' || src.[!i] = 'P') then begin
        is_hexfloat := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end
    end
    else begin
      while !i < n && is_digit src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' && peek 1 <> Some ' ' then begin
        is_hexfloat := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end
    end;
    let lexeme = String.sub src start (!i - start) in
    if !is_hexfloat then
      match float_of_string_opt lexeme with
      | Some f -> emit (FLOAT f)
      | None -> fail !line "bad float literal %S" lexeme
    else
      match int_of_string_opt lexeme with
      | Some v -> emit (INT v)
      | None -> fail !line "bad integer literal %S" lexeme
  in
  let lex_string () =
    incr i;
    let b = Buffer.create 32 in
    let rec go () =
      if !i >= n then fail !line "unterminated string literal";
      match src.[!i] with
      | '"' -> incr i
      | '\\' ->
          if !i + 1 >= n then fail !line "unterminated escape";
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | ('\\' | '"' | '\'') as c -> Buffer.add_char b c
          | c when is_digit c ->
              if !i + 3 >= n then fail !line "unterminated escape";
              let d = String.sub src (!i + 1) 3 in
              (match int_of_string_opt d with
              | Some v when v < 256 ->
                  Buffer.add_char b (Char.chr v);
                  i := !i + 2
              | _ -> fail !line "bad escape \\%s" d)
          | c -> fail !line "unsupported escape \\%c" c);
          i := !i + 2;
          go ()
      | c ->
          if c = '\n' then incr line;
          Buffer.add_char b c;
          incr i;
          go ()
    in
    go ();
    emit (STRING (Buffer.contents b))
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && peek 1 = Some '*' then skip_comment ()
    else if c = '(' then begin
      emit LPAREN;
      incr i
    end
    else if c = ')' then begin
      emit RPAREN;
      incr i
    end
    else if c = ',' then begin
      emit COMMA;
      incr i
    end
    else if c = ';' then begin
      emit SEMI;
      incr i
    end
    else if c = ':' then begin
      emit COLON;
      incr i
    end
    else if c = '=' then begin
      emit EQUAL;
      incr i
    end
    else if c = '!' then begin
      emit BANG;
      incr i
    end
    else if c = '>' then begin
      emit (OP ">");
      incr i
    end
    else if c = '"' then lex_string ()
    else if is_digit c then lex_number ~neg:false
    else if c = '-' then
      match peek 1 with
      | Some '.' ->
          emit (OP "-.");
          i := !i + 2
      | Some d when is_digit d -> lex_number ~neg:true
      | _ ->
          emit (OP "-");
          incr i
    else if c = '+' then
      match peek 1 with
      | Some '.' ->
          emit (OP "+.");
          i := !i + 2
      | _ ->
          emit (OP "+");
          incr i
    else if c = '*' && peek 1 = Some '.' then begin
      emit (OP "*.");
      i := !i + 2
    end
    else if c = '/' && peek 1 = Some '.' then begin
      emit (OP "/.");
      i := !i + 2
    end
    else if is_ident_start c then begin
      let start = !i in
      let continue = ref true in
      while !continue do
        incr i;
        while !i < n && is_ident_char src.[!i] do incr i done;
        (* a dot glued to a further ident extends the path *)
        if !i + 1 < n && src.[!i] = '.' && is_ident_start src.[!i + 1] then
          incr i
        else continue := false
      done;
      emit (IDENT (String.sub src start (!i - start)))
    end
    else fail !line "unexpected character %C" c
  done;
  emit EOF;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over exactly the emitted unit shape       *)

type parser_state = { toks : (token * int) array; mutable pos : int }

let peek p = fst p.toks.(p.pos)

let peek2 p =
  if p.pos + 1 < Array.length p.toks then fst p.toks.(p.pos + 1) else EOF

let line_at p = snd p.toks.(p.pos)

let next p =
  let t = p.toks.(p.pos) in
  if p.pos + 1 < Array.length p.toks then p.pos <- p.pos + 1;
  t

let tok_str = function
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | EQUAL -> "="
  | BANG -> "!"
  | INT v -> string_of_int v
  | FLOAT f -> Printf.sprintf "%h" f
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | OP s -> s
  | EOF -> "<eof>"

let expect p want =
  let t, l = next p in
  if t <> want then fail l "expected %s, found %s" (tok_str want) (tok_str t)

let expect_ident p name =
  let t, l = next p in
  match t with
  | IDENT s when s = name -> ()
  | t -> fail l "expected %s, found %s" name (tok_str t)

let expect_idents p names = List.iter (expect_ident p) names

(* [dN]/[tN]/[rN] slot names *)
let slot_of ~prefix ident line =
  let len = String.length ident in
  if len < 2 || ident.[0] <> prefix then
    fail line "expected a %c<slot> name, found %s" prefix ident
  else
    match int_of_string_opt (String.sub ident 1 (len - 1)) with
    | Some s when s >= 0 -> s
    | _ -> fail line "expected a %c<slot> name, found %s" prefix ident

let parse_int_lit p =
  match next p with
  | INT v, _ -> v
  | LPAREN, _ -> (
      match next p with
      | INT v, _ ->
          expect p RPAREN;
          v
      | t, l -> fail l "expected an integer literal, found %s" (tok_str t))
  | t, l -> fail l "expected an integer literal, found %s" (tok_str t)

(* one load: the tokens after "(Bigarray.Array1.unsafe_get" *)
let parse_load p =
  let data =
    match next p with
    | IDENT s, l -> slot_of ~prefix:'d' s l
    | t, l -> fail l "expected a data handle, found %s" (tok_str t)
  in
  expect p LPAREN;
  let row =
    match next p with
    | IDENT s, l -> slot_of ~prefix:'r' s l
    | t, l -> fail l "expected a row base, found %s" (tok_str t)
  in
  expect p (OP "+");
  match peek p with
  | IDENT "x" ->
      ignore (next p);
      expect p (OP "+");
      let shift = parse_int_lit p in
      expect p RPAREN;
      Unit_addr { data; row; shift }
  | IDENT "Array.unsafe_get" ->
      ignore (next p);
      let tab =
        match next p with
        | IDENT s, l -> slot_of ~prefix:'t' s l
        | t, l -> fail l "expected an offset table, found %s" (tok_str t)
      in
      expect p LPAREN;
      expect_ident p "x";
      expect p (OP "+");
      let shift = parse_int_lit p in
      expect p RPAREN;
      expect p RPAREN;
      Tab_addr { data; row; tab; shift }
  | t -> fail (line_at p) "expected x or a table access, found %s" (tok_str t)

(* expressions, with OCaml's float-operator precedence: [*.]/[/.] bind
   tighter than [+.]/[-.], all left-associated *)
let rec parse_expr p = parse_add p

and parse_add p =
  let lhs = ref (parse_mul p) in
  let continue = ref true in
  while !continue do
    match peek p with
    | OP "+." ->
        ignore (next p);
        lhs := Bin (Add, !lhs, parse_mul p)
    | OP "-." ->
        ignore (next p);
        lhs := Bin (Sub, !lhs, parse_mul p)
    | _ -> continue := false
  done;
  !lhs

and parse_mul p =
  let lhs = ref (parse_primary p) in
  let continue = ref true in
  while !continue do
    match peek p with
    | OP "*." ->
        ignore (next p);
        lhs := Bin (Mul, !lhs, parse_primary p)
    | OP "/." ->
        ignore (next p);
        lhs := Bin (Div, !lhs, parse_primary p)
    | _ -> continue := false
  done;
  !lhs

and parse_primary p =
  match next p with
  | FLOAT f, _ -> Lit f
  | IDENT "infinity", _ -> Lit infinity
  | IDENT "neg_infinity", _ -> Lit neg_infinity
  | IDENT "nan", _ -> Lit nan
  | INT v, l ->
      fail l "integer literal %d in a float expression" v
  | LPAREN, _ -> (
      match peek p with
      | OP "-." ->
          ignore (next p);
          let e = parse_expr p in
          expect p RPAREN;
          Neg e
      | IDENT "Bigarray.Array1.unsafe_get" ->
          ignore (next p);
          let a = parse_load p in
          expect p RPAREN;
          Get a
      | IDENT "Float.min" ->
          ignore (next p);
          let a = parse_primary p in
          let b = parse_primary p in
          expect p RPAREN;
          Fmin (a, b)
      | IDENT "Float.max" ->
          ignore (next p);
          let a = parse_primary p in
          let b = parse_primary p in
          expect p RPAREN;
          Fmax (a, b)
      | IDENT "if" ->
          (* the branchless compare-select: (if c > 0.0 then a else b) *)
          ignore (next p);
          let c = parse_primary p in
          expect p (OP ">");
          (match next p with
          | FLOAT f, _ when Int64.bits_of_float f = 0L -> ()
          | t, l ->
              fail l "select compares against %s, expected literal 0.0"
                (tok_str t));
          expect_ident p "then";
          let a = parse_primary p in
          expect_ident p "else";
          let b = parse_primary p in
          expect p RPAREN;
          Sel (c, a, b)
      | FLOAT f when peek2 p = RPAREN ->
          ignore (next p);
          ignore (next p);
          Lit f
      | _ ->
          let e = parse_expr p in
          expect p RPAREN;
          e)
  | t, l -> fail l "expected an expression, found %s" (tok_str t)

(* prelude bindings: [let dN = Array.unsafe_get slot_data N in] etc. *)
let parse_binds p =
  let binds = ref [] in
  let is_slot_name s =
    String.length s >= 2
    && (s.[0] = 'd' || s.[0] = 't' || s.[0] = 'r')
    && int_of_string_opt (String.sub s 1 (String.length s - 1)) <> None
  in
  let continue = ref true in
  while !continue do
    match (peek p, peek2 p) with
    | IDENT "let", IDENT name when is_slot_name name ->
        ignore (next p);
        let _, l = next p in
        expect p EQUAL;
        expect_ident p "Array.unsafe_get";
        let src_arr =
          match next p with
          | IDENT s, _ -> s
          | t, l -> fail l "expected a source array, found %s" (tok_str t)
        in
        let src = parse_int_lit p in
        expect_ident p "in";
        let b =
          match (name.[0], src_arr) with
          | 'd', "slot_data" ->
              Bind_data { name = slot_of ~prefix:'d' name l; src }
          | 't', "slot_tab" -> Bind_tab { name = slot_of ~prefix:'t' name l; src }
          | 'r', "row" -> Bind_row { name = slot_of ~prefix:'r' name l; src }
          | _ ->
              fail l "binding %s reads %s (wrong source array)" name src_arr
        in
        binds := b :: !binds
    | _ -> continue := false
  done;
  List.rev !binds

let parse_ignores p names =
  List.iter
    (fun n ->
      expect_ident p "ignore";
      expect_ident p n;
      expect p SEMI)
    names

let parse_unit_toks p =
  (* type farr = (float, Bigarray.float64_elt, Bigarray.c_layout)
     Bigarray.Array1.t *)
  expect_idents p [ "type"; "farr" ];
  expect p EQUAL;
  expect p LPAREN;
  expect_ident p "float";
  expect p COMMA;
  expect_ident p "Bigarray.float64_elt";
  expect p COMMA;
  expect_ident p "Bigarray.c_layout";
  expect p RPAREN;
  expect_ident p "Bigarray.Array1.t";
  (* kern_point *)
  expect_idents p [ "let"; "kern_point" ];
  let param p name tys =
    expect p LPAREN;
    expect_ident p name;
    expect p COLON;
    expect_idents p tys;
    expect p RPAREN
  in
  param p "slot_data" [ "farr"; "array" ];
  param p "slot_tab" [ "int"; "array"; "array" ];
  param p "row" [ "int"; "array" ];
  param p "x" [ "int" ];
  expect p COLON;
  expect_ident p "float";
  expect p EQUAL;
  let point_binds = parse_binds p in
  parse_ignores p [ "slot_data"; "slot_tab"; "row"; "x" ];
  let point_expr = parse_primary p in
  (* kern_row *)
  expect_idents p [ "let"; "kern_row" ];
  param p "slot_data" [ "farr"; "array" ];
  param p "slot_tab" [ "int"; "array"; "array" ];
  param p "out" [ "farr" ];
  param p "out_tab" [ "int"; "array" ];
  param p "row" [ "int"; "array" ];
  param p "out_row" [ "int" ];
  param p "xb" [ "int" ];
  param p "xe" [ "int" ];
  expect p COLON;
  expect_ident p "unit";
  expect p EQUAL;
  parse_ignores p [ "slot_data"; "slot_tab"; "out_tab"; "row" ];
  let row_binds = parse_binds p in
  let row_out, row_expr =
    match peek p with
    | IDENT "let" ->
        (* unit-stride output: a running flat offset *)
        expect_idents p [ "let"; "off" ];
        expect p EQUAL;
        expect_ident p "ref";
        expect p LPAREN;
        expect_ident p "out_row";
        expect p (OP "+");
        let lp = parse_int_lit p in
        expect p (OP "+");
        expect_ident p "xb";
        expect p RPAREN;
        expect_ident p "in";
        expect_idents p [ "for"; "x" ];
        expect p EQUAL;
        expect_idents p [ "xb"; "to"; "xe" ];
        expect p (OP "-");
        expect p (INT 1);
        expect_ident p "do";
        expect_ident p "Bigarray.Array1.unsafe_set";
        expect_ident p "out";
        expect p BANG;
        expect_ident p "off";
        let e = parse_primary p in
        expect p SEMI;
        expect_idents p [ "incr"; "off"; "done" ];
        (Out_unit { lp }, e)
    | IDENT "for" ->
        (* table-indexed output *)
        expect_idents p [ "for"; "x" ];
        expect p EQUAL;
        expect_idents p [ "xb"; "to"; "xe" ];
        expect p (OP "-");
        expect p (INT 1);
        expect_ident p "do";
        expect_ident p "Bigarray.Array1.unsafe_set";
        expect_ident p "out";
        expect p LPAREN;
        expect_ident p "out_row";
        expect p (OP "+");
        expect_ident p "Array.unsafe_get";
        expect_ident p "out_tab";
        expect p LPAREN;
        expect_ident p "x";
        expect p (OP "+");
        let lp = parse_int_lit p in
        expect p RPAREN;
        expect p RPAREN;
        let e = parse_primary p in
        expect_ident p "done";
        (Out_tab { lp }, e)
    | t -> fail (line_at p) "expected the output loop, found %s" (tok_str t)
  in
  (* let () = Callback.register "name" (kern_row, kern_point) *)
  expect_ident p "let";
  expect p LPAREN;
  expect p RPAREN;
  expect p EQUAL;
  expect_ident p "Callback.register";
  let reg_name =
    match next p with
    | STRING s, _ -> s
    | t, l -> fail l "expected the registration name, found %s" (tok_str t)
  in
  expect p LPAREN;
  expect_ident p "kern_row";
  expect p COMMA;
  expect_ident p "kern_point";
  expect p RPAREN;
  (match next p with
  | EOF, _ -> ()
  | t, l -> fail l "trailing tokens after the registration: %s" (tok_str t));
  { point_binds; point_expr; row_binds; row_out; row_expr; reg_name }

let parse src =
  match parse_unit_toks { toks = tokenize src; pos = 0 } with
  | ast -> Ok ast
  | exception Reject (msg, line) -> Error (msg, line)

(* ------------------------------------------------------------------ *)
(* Printer: re-emit an AST in Codegen's source shape (the miscompile
   injector mutates ASTs and prints them back through this)            *)

let float_lit c =
  if c <> c then "nan"
  else if c = infinity then "infinity"
  else if c = neg_infinity then "neg_infinity"
  else Printf.sprintf "(%h)" c

let int_lit n = if n < 0 then Printf.sprintf "(%d)" n else string_of_int n

let rec expr_str = function
  | Lit c -> float_lit c
  | Get (Unit_addr { data; row; shift }) ->
      Printf.sprintf "(Bigarray.Array1.unsafe_get d%d (r%d + x + %s))" data
        row (int_lit shift)
  | Get (Tab_addr { data; row; tab; shift }) ->
      Printf.sprintf
        "(Bigarray.Array1.unsafe_get d%d (r%d + Array.unsafe_get t%d (x + \
         %s)))"
        data row tab (int_lit shift)
  | Neg e -> Printf.sprintf "(-. %s)" (expr_str e)
  | Bin (op, a, b) ->
      let o =
        match op with Add -> "+." | Sub -> "-." | Mul -> "*." | Div -> "/."
      in
      Printf.sprintf "(%s %s %s)" (expr_str a) o (expr_str b)
  | Fmin (a, b) -> Printf.sprintf "(Float.min %s %s)" (expr_str a) (expr_str b)
  | Fmax (a, b) -> Printf.sprintf "(Float.max %s %s)" (expr_str a) (expr_str b)
  | Sel (c, a, b) ->
      Printf.sprintf "(if %s > 0.0 then %s else %s)" (expr_str c) (expr_str a)
        (expr_str b)

let bind_str = function
  | Bind_data { name; src } ->
      Printf.sprintf "  let d%d = Array.unsafe_get slot_data %d in\n" name src
  | Bind_tab { name; src } ->
      Printf.sprintf "  let t%d = Array.unsafe_get slot_tab %d in\n" name src
  | Bind_row { name; src } ->
      Printf.sprintf "  let r%d = Array.unsafe_get row %d in\n" name src

let print ast =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "(* yasksite kernel unit reprinted from the checked AST *)\n\n";
  Buffer.add_string b
    "type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) \
     Bigarray.Array1.t\n\n";
  Buffer.add_string b
    "let kern_point (slot_data : farr array) (slot_tab : int array array)\n\
    \    (row : int array) (x : int) : float =\n";
  List.iter (fun bd -> Buffer.add_string b (bind_str bd)) ast.point_binds;
  Buffer.add_string b
    "  ignore slot_data; ignore slot_tab; ignore row; ignore x;\n";
  Printf.bprintf b "  (%s)\n\n" (expr_str ast.point_expr);
  Buffer.add_string b
    "let kern_row (slot_data : farr array) (slot_tab : int array array)\n\
    \    (out : farr) (out_tab : int array) (row : int array) (out_row : \
     int)\n\
    \    (xb : int) (xe : int) : unit =\n";
  Buffer.add_string b
    "  ignore slot_data; ignore slot_tab; ignore out_tab; ignore row;\n";
  List.iter (fun bd -> Buffer.add_string b (bind_str bd)) ast.row_binds;
  (match ast.row_out with
  | Out_unit { lp } ->
      Printf.bprintf b "  let off = ref (out_row + %s + xb) in\n" (int_lit lp);
      Buffer.add_string b "  for x = xb to xe - 1 do\n";
      Printf.bprintf b "    Bigarray.Array1.unsafe_set out !off (%s);\n"
        (expr_str ast.row_expr);
      Buffer.add_string b "    incr off\n  done\n\n"
  | Out_tab { lp } ->
      Buffer.add_string b "  for x = xb to xe - 1 do\n";
      Printf.bprintf b
        "    Bigarray.Array1.unsafe_set out (out_row + Array.unsafe_get \
         out_tab (x + %s)) (%s)\n"
        (int_lit lp) (expr_str ast.row_expr);
      Buffer.add_string b "  done\n\n");
  Printf.bprintf b "let () = Callback.register %S (kern_row, kern_point)\n"
    ast.reg_name;
  Buffer.contents b

