(** The flat kernel-plan IR.

    A plan is the layout-independent compiled form of a resolved stencil
    expression: constant-folded coefficients, a canonical access table
    (the distinct reads, in {!Analysis.accesses} order) and a body that
    is either a detected linear combination ({!Groups}) or a flattened
    postfix program ({!Program}). Both forms evaluate bit-identically to
    the original closure tree; {!Lower} produces plans and binds them to
    concrete grids. The {!field-fingerprint} is a stable content-addressed
    digest (kernel name excluded) used as the memoization key by the ECM
    cache, the tuner's checkpoints and the Offsite executor. *)

type term = { coeff : float; slot : int }
(** One FMA-chain element: [coeff *. load slot], or the literal [coeff]
    when [slot = -1]. [slot] indexes the plan's access table. A coeff of
    exactly [1.0] or [-1.0] marks an unscaled (or negated) load. *)

type group = { scale : float option; terms : term array }
(** A left-to-right [+.] chain of terms, optionally multiplied by a
    constant [scale] (e.g. [r *. (sum of neighbours)] in heat stencils). *)

type instr =
  | Push of float
  | Load of int  (** push the value at access-table slot [i] *)
  | Sym of string
      (** unresolved coefficient: keeps the plan fingerprintable;
          binding such a plan for execution is refused *)
  | Neg
  | Add
  | Sub
  | Mul
  | Div
  | Min  (** pops b, a; pushes [Float.min a b] *)
  | Max  (** pops b, a; pushes [Float.max a b] *)
  | Sel
      (** pops b, a, c; pushes [if c > 0.0 then a else b] — the
          branchless compare-select, all operands already evaluated *)

type body =
  | Groups of group array
      (** evaluated as the left-to-right [+.] chain of group values *)
  | Program of { code : instr array; depth : int }
      (** postfix code; [depth] is the maximum stack depth needed *)

type t = {
  name : string;
  rank : int;
  n_fields : int;
  accesses : Expr.access array;
      (** canonical read set: sorted, deduplicated ({!Analysis.accesses}
          order) — shared by evaluation, tracing and the sanitizer *)
  body : body;
  fingerprint : string;
  resolved : bool;
      (** memoized at construction: false iff the body contains a
          {!Sym}. Use the {!val-resolved} accessor. *)
}

val v :
  name:string -> rank:int -> n_fields:int -> accesses:Expr.access array ->
  body:body -> t
(** Assemble a plan, computing its fingerprint. *)

val n_slots : t -> int
(** Number of access-table entries. *)

val resolved : t -> bool
(** False iff the body still contains a {!Sym} (unresolved coefficient).
    Memoized at construction — O(1), safe on hot paths. *)

val fingerprint_of :
  name:string -> rank:int -> n_fields:int -> accesses:Expr.access array ->
  body:body -> string
(** The digest {!v} would assign. Hex floats ([%h]) render coefficients,
    so distinct representable values never collide; [name] is ignored. *)

val describe : t -> string
(** One-line human summary (body shape, sizes, fingerprint prefix). *)
