(** Combinators for writing stencil expressions concisely.

    [open Yasksite_stencil.Dsl] locally to write kernels like
    {[
      let heat_3d =
        p "r" *: sum [ fld [-1;0;0]; fld [1;0;0]; fld [0;-1;0];
                       fld [0;1;0]; fld [0;0;-1]; fld [0;0;1] ]
        +: (p "c" *: fld [0;0;0])
    ]} *)

val fld : ?field:int -> int list -> Expr.t
(** Field access at a relative offset (slowest dimension first); [field]
    defaults to 0. *)

val c : float -> Expr.t
(** Literal constant. *)

val p : string -> Expr.t
(** Named coefficient, resolved at kernel-compile time. *)

val ( +: ) : Expr.t -> Expr.t -> Expr.t

val ( -: ) : Expr.t -> Expr.t -> Expr.t

val ( *: ) : Expr.t -> Expr.t -> Expr.t

val ( /: ) : Expr.t -> Expr.t -> Expr.t

val neg : Expr.t -> Expr.t

val fmin : Expr.t -> Expr.t -> Expr.t
(** [Expr.Min]; named to avoid shadowing [Stdlib.min]. *)

val fmax : Expr.t -> Expr.t -> Expr.t
(** [Expr.Max]; named to avoid shadowing [Stdlib.max]. *)

val select : Expr.t -> Expr.t -> Expr.t -> Expr.t
(** [select cond a b] evaluates all three operands and yields [a] when
    [cond > 0.0], else [b] — a branchless compare-select. *)

val sum : Expr.t list -> Expr.t
(** Left-associated sum; the list must be non-empty. *)
