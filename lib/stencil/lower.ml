module Grid = Yasksite_grid.Grid

(* Lowering: Spec.t -> Plan.t, and binding a plan to concrete grids.

   Every rewrite used below is exact in IEEE-754 double arithmetic for
   the finite data the engine operates on, so plan execution is
   bit-identical to walking the closure tree Compile builds:

   - constant subtrees are folded with the very operation the tree would
     have applied at run time;
   - [a -. b] is emitted as the chain element [+ (negated b)] — IEEE
     defines subtraction as addition of the negated operand;
   - negation distributes exactly over addition and over multiplication
     by a constant (rounding is sign-symmetric);
   - [1.0 *. v = v], [-1.0 *. v = -.v] and [c *. v = v *. c] hold
     exactly.

   Only left-spine additive chains are linearised (the shape [Dsl.sum]
   and the random generator produce); right-nested sums keep their
   grouping by falling back to the postfix [Program] body, which
   replays the tree's own operation order verbatim. *)

(* ---- constant folding (exact: same ops the tree would execute) ---- *)

let rec cfold (e : Expr.t) : Expr.t =
  match e with
  | Const _ | Coeff _ | Ref _ -> e
  | Neg a -> ( match cfold a with Const x -> Const (-.x) | a' -> Neg a')
  | Add (a, b) -> (
      match (cfold a, cfold b) with
      | Const x, Const y -> Const (x +. y)
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (cfold a, cfold b) with
      | Const x, Const y -> Const (x -. y)
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (cfold a, cfold b) with
      | Const x, Const y -> Const (x *. y)
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (cfold a, cfold b) with
      | Const x, Const y -> Const (x /. y)
      | a', b' -> Div (a', b'))
  | Min (a, b) -> (
      match (cfold a, cfold b) with
      | Const x, Const y -> Const (Float.min x y)
      | a', b' -> Min (a', b'))
  | Max (a, b) -> (
      match (cfold a, cfold b) with
      | Const x, Const y -> Const (Float.max x y)
      | a', b' -> Max (a', b'))
  | Select (c, a, b) -> (
      (* Folded only when ALL operands are constant: folding just the
         condition would drop the untaken branch's loads from the access
         table and change the kernel's read set. *)
      match (cfold c, cfold a, cfold b) with
      | Const vc, Const va, Const vb -> Const (if vc > 0.0 then va else vb)
      | c', a', b' -> Select (c', a', b'))

(* ---- linear-combination (Groups) detection ---- *)

exception Not_linear

(* The left-spine additive chain of [e], in evaluation order: the right
   operand of each Add/Sub is NOT recursed into, so a right-nested sum
   stays a single (non-linear) element and forces the Program fallback —
   flattening it would change the rounding order. *)
let spine e =
  let rec go acc (e : Expr.t) =
    match e with
    | Add (a, b) -> go ((1, b) :: acc) a
    | Sub (a, b) -> go ((-1, b) :: acc) a
    | _ -> (1, e) :: acc
  in
  go [] e

let rec term_of slot_of sign (e : Expr.t) : Plan.term =
  match e with
  | Const c -> { Plan.coeff = (if sign < 0 then -.c else c); slot = -1 }
  | Ref a -> { Plan.coeff = (if sign < 0 then -1.0 else 1.0); slot = slot_of a }
  | Mul (Const c, Ref a) | Mul (Ref a, Const c) ->
      { Plan.coeff = (if sign < 0 then -.c else c); slot = slot_of a }
  | Neg t -> term_of slot_of (-sign) t
  | _ -> raise Not_linear

let terms_of slot_of sign e =
  List.map (fun (s, t) -> term_of slot_of (sign * s) t) (spine e)

let rec group_of slot_of sign (e : Expr.t) : Plan.group =
  match e with
  | Neg inner -> group_of slot_of (-sign) inner
  | Mul (Const c, inner) | Mul (inner, Const c) ->
      { Plan.scale = Some (if sign < 0 then -.c else c);
        terms = Array.of_list (terms_of slot_of 1 inner) }
  | _ -> { Plan.scale = None; terms = Array.of_list (terms_of slot_of sign e) }

let groups_of slot_of e =
  match List.map (fun (s, g) -> group_of slot_of s g) (spine e) with
  | gs -> Some (Array.of_list gs)
  | exception Not_linear -> None

(* ---- postfix fallback ---- *)

let program slot_of e =
  let buf = ref [] in
  let push i = buf := i :: !buf in
  let rec go (e : Expr.t) =
    match e with
    | Const c -> push (Plan.Push c)
    | Coeff n -> push (Plan.Sym n)
    | Ref a -> push (Plan.Load (slot_of a))
    | Neg a ->
        go a;
        push Plan.Neg
    | Add (a, b) ->
        go a;
        go b;
        push Plan.Add
    | Sub (a, b) ->
        go a;
        go b;
        push Plan.Sub
    | Mul (a, b) ->
        go a;
        go b;
        push Plan.Mul
    | Div (a, b) ->
        go a;
        go b;
        push Plan.Div
    | Min (a, b) ->
        go a;
        go b;
        push Plan.Min
    | Max (a, b) ->
        go a;
        go b;
        push Plan.Max
    | Select (c, a, b) ->
        go c;
        go a;
        go b;
        push Plan.Sel
  in
  go e;
  let code = Array.of_list (List.rev !buf) in
  let d = ref 0 and depth = ref 0 in
  Array.iter
    (fun (i : Plan.instr) ->
      match i with
      | Push _ | Load _ | Sym _ ->
          incr d;
          if !d > !depth then depth := !d
      | Neg -> ()
      | Add | Sub | Mul | Div | Min | Max -> decr d
      | Sel -> d := !d - 2)
    code;
  Plan.Program { code; depth = !depth }

let make_slot_of accesses =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i a -> Hashtbl.replace tbl a i) accesses;
  fun a -> Hashtbl.find tbl a

let lower (spec : Spec.t) : Plan.t =
  let info = Analysis.of_spec spec in
  let accesses = Array.of_list info.Analysis.accesses in
  let slot_of = make_slot_of accesses in
  let e = cfold spec.Spec.expr in
  let body =
    match groups_of slot_of e with
    | Some gs -> Plan.Groups gs
    | None -> program slot_of e
  in
  Plan.v ~name:spec.Spec.name ~rank:spec.Spec.rank
    ~n_fields:spec.Spec.n_fields ~accesses ~body

let fingerprint spec = (lower spec).Plan.fingerprint

(* ---- binding to concrete grids ---- *)

let check (plan : Plan.t) ~inputs ~output =
  if Array.length inputs <> plan.Plan.n_fields then
    invalid_arg "Lower: input count does not match n_fields";
  Array.iter
    (fun g ->
      if Grid.rank g <> plan.Plan.rank then
        invalid_arg "Lower: input grid rank mismatch")
    inputs;
  if Grid.rank output <> plan.Plan.rank then
    invalid_arg "Lower: output grid rank mismatch";
  Array.iter
    (fun (a : Expr.access) ->
      let h = Grid.halo inputs.(a.field) in
      Array.iteri
        (fun i d ->
          if abs d > h.(i) then
            invalid_arg
              (Printf.sprintf
                 "Lower: field %d halo %d too small for offset %d" a.field
                 h.(i) d))
        a.offsets)
    plan.Plan.accesses

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type bbody =
  | BGroups of {
      goff : int array;  (* group g owns terms [goff.(g), goff.(g+1)) *)
      scaled : bool array;
      gscale : float array;
      t_coeff : float array;
      t_slot : int array;
    }
  | BProgram of { code : Plan.instr array; depth : int }

type bound = {
  plan : Plan.t;
  output : Grid.t;
  slot_grid : Grid.t array;
  slot_data : farr array;
  slot_tab : int array array;  (* shared per input field *)
  slot_shift : int array;  (* last offset + the field grid's last left pad *)
  slot_outer : int array array;  (* the rank-1 leading offsets *)
  slot_base : int array;  (* byte base address per slot's grid *)
  out_data : farr;
  out_tab : int array;
  out_lp : int;
  out_unit : bool;
  out_base : int;
  bbody : bbody;
}

let flatten gs =
  let ng = Array.length gs in
  let goff = Array.make (ng + 1) 0 in
  Array.iteri
    (fun i (g : Plan.group) -> goff.(i + 1) <- goff.(i) + Array.length g.terms)
    gs;
  let nt = goff.(ng) in
  let t_coeff = Array.make (max 1 nt) 0.0
  and t_slot = Array.make (max 1 nt) 0 in
  Array.iteri
    (fun i (g : Plan.group) ->
      Array.iteri
        (fun j (tm : Plan.term) ->
          t_coeff.(goff.(i) + j) <- tm.coeff;
          t_slot.(goff.(i) + j) <- tm.slot)
        g.terms)
    gs;
  let scaled = Array.map (fun (g : Plan.group) -> g.scale <> None) gs in
  let gscale =
    Array.map
      (fun (g : Plan.group) -> match g.scale with Some s -> s | None -> 0.0)
      gs
  in
  BGroups { goff; scaled; gscale; t_coeff; t_slot }

let bind (plan : Plan.t) ~inputs ~output =
  check plan ~inputs ~output;
  (match plan.Plan.body with
  | Plan.Program { code; _ } ->
      Array.iter
        (function
          | Plan.Sym n -> raise (Compile.Unresolved_coefficient n)
          | _ -> ())
        code
  | Plan.Groups _ -> ());
  let r = plan.Plan.rank in
  let field_tab = Array.map Grid.last_dim_offsets inputs in
  let field_lp = Array.map (fun g -> (Grid.left_pad g).(r - 1)) inputs in
  let acc = plan.Plan.accesses in
  let slot_grid = Array.map (fun (a : Expr.access) -> inputs.(a.field)) acc in
  { plan;
    output;
    slot_grid;
    slot_data = Array.map Grid.raw slot_grid;
    slot_tab = Array.map (fun (a : Expr.access) -> field_tab.(a.field)) acc;
    slot_shift =
      Array.map
        (fun (a : Expr.access) -> a.offsets.(r - 1) + field_lp.(a.field))
        acc;
    slot_outer =
      Array.map (fun (a : Expr.access) -> Array.sub a.offsets 0 (r - 1)) acc;
    slot_base = Array.map Grid.base_address slot_grid;
    out_data = Grid.raw output;
    out_tab = Grid.last_dim_offsets output;
    out_lp = (Grid.left_pad output).(r - 1);
    out_unit = Grid.unit_stride output;
    out_base = Grid.base_address output;
    bbody =
      (match plan.Plan.body with
      | Plan.Groups gs -> flatten gs
      | Plan.Program { code; depth } -> BProgram { code; depth }) }

let plan_of b = b.plan

(* Raw addressing handles for generated kernels (Codegen): the bound's
   storage and tables, without the interpreter in between. *)
type raw = {
  r_slot_data : farr array;
  r_slot_tab : int array array;
  r_out_data : farr;
  r_out_tab : int array;
}

let raw_of b =
  { r_slot_data = b.slot_data;
    r_slot_tab = b.slot_tab;
    r_out_data = b.out_data;
    r_out_tab = b.out_tab }

(* Per-region mutable scratch. A bound is immutable and may be shared by
   concurrent pool slices; each slice drives its own driver. *)
type driver = {
  b : bound;
  row : int array;  (* per-slot row base, set by {!set_row} *)
  mutable out_row : int;
  oc : int array;  (* rank-1 coordinate scratch *)
  stack : float array;
}

let driver b =
  let depth =
    match b.bbody with BProgram { depth; _ } -> depth | BGroups _ -> 0
  in
  { b;
    row = Array.make (max 1 (Array.length b.slot_grid)) 0;
    out_row = 0;
    oc = Array.make (max 0 (b.plan.Plan.rank - 1)) 0;
    stack = Array.make (max 1 depth) 0.0 }

let set_row drv outer =
  let b = drv.b in
  let r1 = Array.length drv.oc in
  for s = 0 to Array.length b.slot_grid - 1 do
    let off = b.slot_outer.(s) in
    for i = 0 to r1 - 1 do
      drv.oc.(i) <- outer.(i) + off.(i)
    done;
    drv.row.(s) <- Grid.row_base b.slot_grid.(s) drv.oc
  done;
  drv.out_row <- Grid.row_base b.output outer

let driver_row drv = drv.row

let driver_out_row drv = drv.out_row

(* No bounds checks below: for regions inside the iteration space every
   table index [x + shift] lies in [0, padded last extent) because the
   left pad covers the halo — callers gate illegal regions via [check]
   or trap them via the sanitizer before evaluation. *)

let term_val b row t_coeff t_slot t x =
  let s = Array.unsafe_get t_slot t in
  if s < 0 then Array.unsafe_get t_coeff t
  else
    let v =
      Bigarray.Array1.unsafe_get
        (Array.unsafe_get b.slot_data s)
        (Array.unsafe_get row s
        + Array.unsafe_get
            (Array.unsafe_get b.slot_tab s)
            (x + Array.unsafe_get b.slot_shift s))
    in
    let c = Array.unsafe_get t_coeff t in
    if c = 1.0 then v else if c = -1.0 then -.v else c *. v
  [@@inline]

let point_groups b row goff scaled gscale t_coeff t_slot x =
  let group g =
    let t0 = Array.unsafe_get goff g
    and t1 = Array.unsafe_get goff (g + 1) in
    let s = ref (term_val b row t_coeff t_slot t0 x) in
    for t = t0 + 1 to t1 - 1 do
      s := !s +. term_val b row t_coeff t_slot t x
    done;
    if Array.unsafe_get scaled g then Array.unsafe_get gscale g *. !s
    else !s
  in
  let acc = ref (group 0) in
  for g = 1 to Array.length scaled - 1 do
    acc := !acc +. group g
  done;
  !acc

let point_program b row stack code x =
  let sp = ref 0 in
  for i = 0 to Array.length code - 1 do
    match Array.unsafe_get code i with
    | Plan.Push c ->
        Array.unsafe_set stack !sp c;
        incr sp
    | Plan.Load s ->
        Array.unsafe_set stack !sp
          (Bigarray.Array1.unsafe_get
             (Array.unsafe_get b.slot_data s)
             (Array.unsafe_get row s
             + Array.unsafe_get
                 (Array.unsafe_get b.slot_tab s)
                 (x + Array.unsafe_get b.slot_shift s)));
        incr sp
    | Plan.Sym _ -> assert false (* refused at bind time *)
    | Plan.Neg ->
        Array.unsafe_set stack (!sp - 1)
          (-.Array.unsafe_get stack (!sp - 1))
    | Plan.Add ->
        decr sp;
        Array.unsafe_set stack (!sp - 1)
          (Array.unsafe_get stack (!sp - 1) +. Array.unsafe_get stack !sp)
    | Plan.Sub ->
        decr sp;
        Array.unsafe_set stack (!sp - 1)
          (Array.unsafe_get stack (!sp - 1) -. Array.unsafe_get stack !sp)
    | Plan.Mul ->
        decr sp;
        Array.unsafe_set stack (!sp - 1)
          (Array.unsafe_get stack (!sp - 1) *. Array.unsafe_get stack !sp)
    | Plan.Div ->
        decr sp;
        Array.unsafe_set stack (!sp - 1)
          (Array.unsafe_get stack (!sp - 1) /. Array.unsafe_get stack !sp)
    | Plan.Min ->
        decr sp;
        Array.unsafe_set stack (!sp - 1)
          (Float.min
             (Array.unsafe_get stack (!sp - 1))
             (Array.unsafe_get stack !sp))
    | Plan.Max ->
        decr sp;
        Array.unsafe_set stack (!sp - 1)
          (Float.max
             (Array.unsafe_get stack (!sp - 1))
             (Array.unsafe_get stack !sp))
    | Plan.Sel ->
        sp := !sp - 2;
        Array.unsafe_set stack (!sp - 1)
          (if Array.unsafe_get stack (!sp - 1) > 0.0 then
             Array.unsafe_get stack !sp
           else Array.unsafe_get stack (!sp + 1))
  done;
  Array.unsafe_get stack 0

let eval drv x =
  let b = drv.b in
  match b.bbody with
  | BGroups { goff; scaled; gscale; t_coeff; t_slot } ->
      point_groups b drv.row goff scaled gscale t_coeff t_slot x
  | BProgram { code; _ } -> point_program b drv.row drv.stack code x

let out_offset drv x =
  drv.out_row + Array.unsafe_get drv.b.out_tab (x + drv.b.out_lp)

let out_addr drv x = drv.b.out_base + (8 * out_offset drv x)

let read_addr drv s x =
  let b = drv.b in
  b.slot_base.(s)
  + 8
    * (drv.row.(s)
      + Array.unsafe_get (Array.unsafe_get b.slot_tab s)
          (x + Array.unsafe_get b.slot_shift s))

let store_row drv xb xe =
  let b = drv.b in
  let row = drv.row in
  match b.bbody with
  | BGroups { goff; scaled; gscale; t_coeff; t_slot } ->
      if b.out_unit then begin
        let off = ref (drv.out_row + b.out_lp + xb) in
        for x = xb to xe - 1 do
          Bigarray.Array1.unsafe_set b.out_data !off
            (point_groups b row goff scaled gscale t_coeff t_slot x);
          incr off
        done
      end
      else
        for x = xb to xe - 1 do
          Bigarray.Array1.unsafe_set b.out_data
            (drv.out_row + Array.unsafe_get b.out_tab (x + b.out_lp))
            (point_groups b row goff scaled gscale t_coeff t_slot x)
        done
  | BProgram { code; _ } ->
      let stack = drv.stack in
      if b.out_unit then begin
        let off = ref (drv.out_row + b.out_lp + xb) in
        for x = xb to xe - 1 do
          Bigarray.Array1.unsafe_set b.out_data !off
            (point_program b row stack code x);
          incr off
        done
      end
      else
        for x = xb to xe - 1 do
          Bigarray.Array1.unsafe_set b.out_data
            (drv.out_row + Array.unsafe_get b.out_tab (x + b.out_lp))
            (point_program b row stack code x)
        done
