open Dsl

let copy_1d = Spec.v ~name:"copy-1d" ~rank:1 (fld [ 0 ])

let scale_1d = Spec.v ~name:"scale-1d" ~rank:1 (p "s" *: fld [ 0 ])

let heat_1d_3pt =
  Spec.v ~name:"heat-1d-3pt" ~rank:1
    ((p "r" *: (fld [ -1 ] +: fld [ 1 ])) +: (p "c" *: fld [ 0 ]))

let heat_2d_5pt =
  Spec.v ~name:"heat-2d-5pt" ~rank:2
    ((p "r" *: sum [ fld [ -1; 0 ]; fld [ 1; 0 ]; fld [ 0; -1 ]; fld [ 0; 1 ] ])
    +: (p "c" *: fld [ 0; 0 ]))

let box_2d_9pt =
  let cells =
    List.concat_map
      (fun dy -> List.map (fun dx -> fld [ dy; dx ]) [ -1; 0; 1 ])
      [ -1; 0; 1 ]
  in
  Spec.v ~name:"box-2d-9pt" ~rank:2 (p "w" *: sum cells)

let heat_3d_7pt =
  Spec.v ~name:"heat-3d-7pt" ~rank:3
    ((p "r"
     *: sum
          [ fld [ -1; 0; 0 ]; fld [ 1; 0; 0 ]; fld [ 0; -1; 0 ];
            fld [ 0; 1; 0 ]; fld [ 0; 0; -1 ]; fld [ 0; 0; 1 ] ])
    +: (p "c" *: fld [ 0; 0; 0 ]))

let box_3d_27pt =
  let cells =
    List.concat_map
      (fun dz ->
        List.concat_map
          (fun dy -> List.map (fun dx -> fld [ dz; dy; dx ]) [ -1; 0; 1 ])
          [ -1; 0; 1 ])
      [ -1; 0; 1 ]
  in
  Spec.v ~name:"box-3d-27pt" ~rank:3 (p "w" *: sum cells)

let star_3d_r2 =
  let axis d =
    match d with
    | 0 -> [ fld [ -2; 0; 0 ]; fld [ -1; 0; 0 ]; fld [ 1; 0; 0 ]; fld [ 2; 0; 0 ] ]
    | 1 -> [ fld [ 0; -2; 0 ]; fld [ 0; -1; 0 ]; fld [ 0; 1; 0 ]; fld [ 0; 2; 0 ] ]
    | _ -> [ fld [ 0; 0; -2 ]; fld [ 0; 0; -1 ]; fld [ 0; 0; 1 ]; fld [ 0; 0; 2 ] ]
  in
  Spec.v ~name:"star-3d-r2" ~rank:3
    ((p "r" *: sum (axis 0 @ axis 1 @ axis 2)) +: (p "c" *: fld [ 0; 0; 0 ]))

let varcoef_3d_7pt =
  Spec.v ~name:"varcoef-3d-7pt" ~rank:3 ~n_fields:2
    (fld [ 0; 0; 0 ]
    +: (p "r" *: fld ~field:1 [ 0; 0; 0 ]
       *: sum
            [ fld [ -1; 0; 0 ]; fld [ 1; 0; 0 ]; fld [ 0; -1; 0 ];
              fld [ 0; 1; 0 ]; fld [ 0; 0; -1 ]; fld [ 0; 0; 1 ];
              neg (c 6.0 *: fld [ 0; 0; 0 ]) ]))

let all =
  [ copy_1d; scale_1d; heat_1d_3pt; heat_2d_5pt; box_2d_9pt; heat_3d_7pt;
    box_3d_27pt; star_3d_r2; varcoef_3d_7pt ]

(* The absinthe-style horizontal diffusion pipeline: per advected field
   a Laplacian, two flux-limited differences (the limiter is the
   branchless [select]), and the masked update — 16 stages over 5
   inputs. The same text ships as examples/hdiff.prog. *)
let hdiff_text =
  (* Each advected field F instantiates the same four-stage chain. *)
  let template =
    "Flap = -4*Fin(y,x) + Fin(y,x-1) + Fin(y,x+1) + Fin(y-1,x) + Fin(y+1,x)\n\
     Ffli = select((Flap(y,x+1) - Flap(y,x)) * (Fin(y,x+1) - Fin(y,x)), 0, \
     Flap(y,x+1) - Flap(y,x))\n\
     Fflj = select((Flap(y+1,x) - Flap(y,x)) * (Fin(y+1,x) - Fin(y,x)), 0, \
     Flap(y+1,x) - Flap(y,x))\n\
     Fout = Fin(y,x) + mask(y,x) * (Ffli(y,x-1) - Ffli(y,x) + Fflj(y-1,x) - \
     Fflj(y,x))\n"
  in
  let component f = String.concat f (String.split_on_char 'F' template) in
  "program hdiff\n" ^ "rank 2\n" ^ "inputs uin vin win ppin mask\n"
  ^ "outputs uout vout wout ppout\n"
  ^ String.concat "" (List.map component [ "u"; "v"; "w"; "pp" ])

let hdiff =
  match Program.parse hdiff_text with
  | Ok p -> p
  | Error (line, msg) ->
      failwith (Printf.sprintf "Suite.hdiff: line %d: %s" line msg)

let programs = [ hdiff ]

let find_program name =
  List.find (fun (p : Program.t) -> p.name = name) programs

let eval_suite =
  [ heat_2d_5pt; box_2d_9pt; heat_3d_7pt; box_3d_27pt; star_3d_r2;
    varcoef_3d_7pt ]

let find name = List.find (fun (s : Spec.t) -> s.name = name) all

let default_values =
  [ ("r", 0.1); ("c", 0.4); ("w", 1.0 /. 27.0); ("s", 2.0) ]

let resolve_defaults spec =
  let names = Expr.coeff_names spec.Spec.expr in
  let bindings =
    List.map
      (fun n ->
        match List.assoc_opt n default_values with
        | Some v -> (n, v)
        | None -> (n, 0.5))
      names
  in
  Spec.resolve spec bindings
