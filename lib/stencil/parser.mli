(** Parser for the textual stencil language — the inverse of
    {!Expr.to_c}, so kernels can be given to the CLI as strings.

    Grammar (precedence climbing, left-associative):

    {v
      expr   ::= term (('+' | '-') term)*
      term   ::= unary (('*' | '/') unary)*
      unary  ::= '-' unary | atom
      atom   ::= number | name | access | call | '(' expr ')'
      access ::= field '(' coord (',' coord)* ')'
      call   ::= ('min' | 'max') '(' expr ',' expr ')'
               | 'select' '(' expr ',' expr ',' expr ')'
      coord  ::= axis (('+' | '-') digits)? | '-'? digits
    v}

    Axis names map to dimensions by rank: rank 3 uses [z,y,x], rank 2
    [y,x], rank 1 [x] (the convention {!Expr.to_c} prints). A field is
    either the [f<digits>] convention or a name from [?fields]. A bare
    name that is neither is a symbolic coefficient. [min]/[max]/[select]
    are reserved builtins ([select cond a b] = [if cond > 0 then a else
    b], all operands evaluated); calling one with the wrong number of
    arguments is a parse error located at the call. *)

val parse_expr :
  ?fields:(string * int) list -> rank:int -> string -> (Expr.t, string) result
(** Parse an expression; errors carry a position and a description
    (formatted ["at <pos>: <message>"]). *)

type located = {
  expr : Expr.t;
  refs : (Expr.access * (int * int)) list;
      (** every field reference with its [start, stop) source span, in
          left-to-right source order (the same order
          {!Expr.fold_accesses} visits them) *)
  divisors : (Expr.t * (int * int)) list;
      (** the right-hand side of every division with its span *)
}

val parse_expr_located :
  ?fields:(string * int) list ->
  rank:int ->
  string ->
  (located, int * string) result
(** Like {!parse_expr} but additionally reports the source spans of
    field references and divisor subexpressions, and returns errors as a
    structured [(position, message)] pair. Every failure path carries a
    usable position: errors at end of input report [String.length src].
    The lint layer builds caret diagnostics from these spans. *)

val parse_spec :
  name:string -> rank:int -> ?n_fields:int -> string -> (Spec.t, string) result
(** Parse and validate a whole kernel ([Spec.v] errors are reported as
    [Error]). *)
