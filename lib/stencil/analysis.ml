type shape = Point | Star | Box

type t = {
  spec : Spec.t;
  accesses : Expr.access list;
  radius : int array;
  shape : shape;
  adds : int;
  muls : int;
  divs : int;
  flops : int;
  loads : int;
  stores : int;
  read_fields : int list;
}

let rec count_ops (adds, muls, divs) (e : Expr.t) =
  match e with
  | Const _ | Coeff _ | Ref _ -> (adds, muls, divs)
  | Neg x -> count_ops (adds, muls, divs) x
  | Add (a, b) | Sub (a, b) ->
      count_ops (count_ops (adds + 1, muls, divs) a) b
  | Mul (a, b) -> count_ops (count_ops (adds, muls + 1, divs) a) b
  | Div (a, b) -> count_ops (count_ops (adds, muls, divs + 1) a) b
  (* Compare-select ops retire on the FP add ports on every modern
     core (vminpd/vmaxpd/vcmppd+vblendvpd), so they are billed as
     additive work for throughput purposes. *)
  | Min (a, b) | Max (a, b) -> count_ops (count_ops (adds + 1, muls, divs) a) b
  | Select (c, a, b) ->
      count_ops (count_ops (count_ops (adds + 1, muls, divs) c) a) b

let classify accesses =
  let nonzero_axes (a : Expr.access) =
    Array.fold_left (fun n d -> if d <> 0 then n + 1 else n) 0 a.offsets
  in
  let max_axes =
    List.fold_left (fun m a -> max m (nonzero_axes a)) 0 accesses
  in
  if max_axes = 0 then Point else if max_axes <= 1 then Star else Box

let of_spec (spec : Spec.t) =
  let all =
    Expr.fold_accesses spec.expr ~init:[] ~f:(fun acc a -> a :: acc)
  in
  let accesses = List.sort_uniq compare all in
  let radius = Array.make spec.rank 0 in
  List.iter
    (fun (a : Expr.access) ->
      Array.iteri (fun i d -> radius.(i) <- max radius.(i) (abs d)) a.offsets)
    accesses;
  let adds, muls, divs = count_ops (0, 0, 0) spec.expr in
  let read_fields =
    List.sort_uniq compare (List.map (fun (a : Expr.access) -> a.field) all)
  in
  { spec; accesses; radius; shape = classify accesses; adds; muls; divs;
    flops = adds + muls + divs; loads = List.length accesses; stores = 1;
    read_fields }

let halo t = Array.copy t.radius

let accesses_of_field t field =
  List.filter_map
    (fun (a : Expr.access) -> if a.field = field then Some a.offsets else None)
    t.accesses

let min_code_balance t =
  (* One 8-byte read stream per distinct input field, plus the output:
     write-allocate (read) + write-back (write) = 16 bytes. *)
  let reads = List.length t.read_fields in
  float_of_int ((8 * reads) + 16)

let arithmetic_intensity t = float_of_int t.flops /. min_code_balance t

let shape_name = function Point -> "point" | Star -> "star" | Box -> "box"

let describe t =
  let radius_str =
    String.concat "x" (Array.to_list (Array.map string_of_int t.radius))
  in
  [ t.spec.name;
    string_of_int t.spec.rank;
    shape_name t.shape;
    radius_str;
    string_of_int t.flops;
    string_of_int t.loads;
    Printf.sprintf "%.0f" (min_code_balance t);
    Printf.sprintf "%.3f" (arithmetic_intensity t) ]
