(** Plan→native code generation: specialize a kernel plan to OCaml
    source.

    Where {!Lower} {e interprets} a plan row by row, this module emits a
    self-contained OCaml compilation unit whose inner loop is the plan
    fully unrolled — every coefficient a literal, every last-dimension
    shift and pad constant-folded into the address arithmetic, table
    indirection dropped entirely on unit-stride grids — so the native
    compiler sees one straight-line FMA chain per point with no
    dispatch of any kind. The engine's [Codegen_backend]
    ({!Yasksite_engine.Sweep}) compiles the emitted source out of
    process with [ocamlfind ocamlopt -shared], loads the resulting
    [.cmxs] via [Dynlink], and caches it in the content-addressed store
    under the [kern-v1] schema; this module is the pure front half — it
    only builds strings and keys, and is usable without any toolchain.

    {2 Specialization point}

    A generated kernel is specific to one {e variant}: the plan
    fingerprint × the per-slot last-dimension shifts (access offset +
    grid left pad, which fold the halo geometry into literals) × the
    per-slot and output unit-stride flags (layout/fold) × the output
    pad. Two grid sets sharing a variant share the kernel; extents are
    {e not} part of the variant (row bases arrive at run time), so one
    kernel covers every problem size of a given layout.

    {2 Bit-identity}

    The emitted expression replays the plan interpreter's exact
    IEEE-754 operation sequence: the same [1.0]/[-1.0] coefficient
    specializations, the same left-associated [+.] chains, scales
    applied after group sums, postfix programs reconstructed into the
    nested expression whose evaluation order is the program's own.
    Coefficients render as hex-float literals (round-trip exact for
    every finite double); plans with [NaN] coefficients or unresolved
    {!Plan.Sym}s are refused ({!source} returns [Error]) and the caller
    falls back to the interpreter.

    {2 ABI}

    The generated unit depends only on the stdlib — no cmi of this
    code base is shared with it — and publishes [(kern_row, kern_point)]
    through [Callback.register] under {!callback_name}, which embeds
    {!abi}. The host retrieves the pair through [caml_named_value] and
    casts to {!kern}; bumping {!abi} whenever {!type-kern_row} or
    {!type-kern_point} changes is what keeps that cast sound. *)

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type kern_row =
  farr array ->
  int array array ->
  farr ->
  int array ->
  int array ->
  int ->
  int ->
  int ->
  unit
(** [kern_row slot_data slot_tab out out_tab row out_row xb xe]
    evaluates and stores every point [xb <= x < xe] of the current row
    — the generated counterpart of {!Lower.store_row}. [row] holds the
    per-slot flat row bases and [out_row] the output's (both computed
    by the caller's {!Lower.driver}); the tables are only read for
    slots the variant marks non-unit-stride. No bounds checks — the
    caller gates regions exactly as for the interpreter. *)

type kern_point = farr array -> int array array -> int array -> int -> float
(** [kern_point slot_data slot_tab row x]: one point's value — the
    generated counterpart of {!Lower.eval}, used on traced and
    sanitized paths where addressing and checks stay with the driver. *)

type kern = { row : kern_row; point : kern_point }

val abi : int
(** ABI version of the kernel signatures above, embedded in
    {!callback_name}. Bump on any signature change. *)

type variant = {
  slot_shift : int array;
      (** per access-table slot: last-dim offset + input grid left pad *)
  slot_unit : bool array;
      (** per slot: the input grid is unit-stride (identity table) *)
  out_lp : int;  (** output grid's last-dimension left pad *)
  out_unit : bool;  (** the output grid is unit-stride *)
}
(** Everything besides the plan itself that the emitted source folds
    into literals. *)

val variant_of :
  plan:Plan.t -> inputs:Yasksite_grid.Grid.t array ->
  output:Yasksite_grid.Grid.t -> variant
(** The variant these grids induce for [plan]. The grids' extents do
    not matter, only halo/pad and layout. *)

val key : plan:Plan.t -> variant -> string
(** Content-addressed digest of (ABI × plan fingerprint × variant) —
    the specialization key. The store key additionally hashes in the
    compiler version and flags (see {!Yasksite_engine.Native}). *)

val callback_name : string -> string
(** [callback_name key]: the ABI-versioned [Callback.register] name the
    generated unit publishes its kernel pair under. *)

val unit_basename : string -> string
(** [unit_basename key]: the source/compilation-unit basename
    (extension-less) to emit the unit as — stable per key so reloads
    re-use one unit name ([Dynlink.loadfile_private] allows that). *)

val source : plan:Plan.t -> variant -> (string, string) result
(** The complete OCaml source of the specialized unit, or
    [Error reason] when the plan cannot be generated (unresolved
    {!Plan.Sym} coefficients, [NaN] coefficients, malformed body).
    Raises [Invalid_argument] if the variant's arrays do not match the
    plan's access-table arity. *)

val supported : Plan.t -> (unit, string) result
(** Whether {!source} can succeed for this plan (variant-independent:
    checks the body only). *)
