(** The checked kernel AST: concrete syntax of the units {!Codegen}
    emits, with a parser and printer over exactly that grammar.

    {!Codegen.source} produces one small shape — a [farr] type alias,
    [kern_point]/[kern_row] whose bodies are prelude bindings plus a
    fully parenthesized float expression over unsafe loads, and a
    [Callback.register] — and this module round-trips it: {!parse}
    accepts precisely the emitted forms (hex-float literals, dotted
    stdlib paths, both output-loop modes) and nothing more, {!print}
    re-emits an AST in the generator's shape such that
    [parse (print ast) = Ok ast].

    Syntax lives here; judgment lives elsewhere: the YS6xx translation
    validator ({!Yasksite_lint.Native_lint}) compares parsed ASTs
    against the plan IR, and the seeded miscompile injector
    ({!Yasksite_faults.Miscompile}) mutates them structurally — both
    share this one grammar without a dependency cycle. *)

type binop = Add | Sub | Mul | Div

type addr =
  | Unit_addr of { data : int; row : int; shift : int }
      (** [d<data>.(r<row> + x + shift)] — unit-stride grid *)
  | Tab_addr of { data : int; row : int; tab : int; shift : int }
      (** [d<data>.(r<row> + t<tab>.(x + shift))] — folded layout *)

type expr =
  | Lit of float
  | Get of addr
  | Neg of expr
  | Bin of binop * expr * expr
  | Fmin of expr * expr  (** [(Float.min a b)] *)
  | Fmax of expr * expr  (** [(Float.max a b)] *)
  | Sel of expr * expr * expr
      (** [(if c > 0.0 then a else b)] — the emitted compare-select;
          the comparison literal is always exactly [+0.0] *)

type bind =
  | Bind_data of { name : int; src : int }
      (** [let d<name> = slot_data.(src)] *)
  | Bind_tab of { name : int; src : int }
      (** [let t<name> = slot_tab.(src)] *)
  | Bind_row of { name : int; src : int }  (** [let r<name> = row.(src)] *)

type out_addr =
  | Out_unit of { lp : int }  (** running flat offset, unit-stride output *)
  | Out_tab of { lp : int }  (** per-point [out_tab] lookup *)

type unit_ast = {
  point_binds : bind list;
  point_expr : expr;
  row_binds : bind list;
  row_out : out_addr;
  row_expr : expr;
  reg_name : string;  (** the [Callback.register] name *)
}

val parse : string -> (unit_ast, string * int) result
(** Parse an emitted kernel unit. [Error (reason, line)] when the
    source deviates from the generated grammar in any way. *)

val print : unit_ast -> string
(** Re-emit an AST in the generator's source shape.
    [parse (print ast) = Ok ast] for every AST {!parse} returns. *)

val expr_str : expr -> string
(** One expression in emitted syntax (diagnostic rendering). *)
