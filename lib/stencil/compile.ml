module Grid = Yasksite_grid.Grid

exception Unresolved_coefficient of string

let check_inputs (spec : Spec.t) ~inputs =
  if Array.length inputs <> spec.n_fields then
    invalid_arg "Compile: input count does not match n_fields";
  Array.iter
    (fun g ->
      if Grid.rank g <> spec.rank then
        invalid_arg "Compile: input grid rank mismatch")
    inputs;
  let info = Analysis.of_spec spec in
  List.iter
    (fun (a : Expr.access) ->
      let h = Grid.halo inputs.(a.field) in
      Array.iteri
        (fun i d ->
          if abs d > h.(i) then
            invalid_arg
              (Printf.sprintf
                 "Compile: field %d halo %d too small for offset %d" a.field
                 h.(i) d))
        a.offsets)
    info.accesses

let fail_coeff n = raise (Unresolved_coefficient n)

(* Each rank gets its own compiler so the hot closure takes unboxed int
   arguments instead of an allocated coordinate array. *)

let rec comp1 inputs (e : Expr.t) : int -> float =
  match e with
  | Const c -> fun _ -> c
  | Coeff n -> fail_coeff n
  | Ref { field; offsets } ->
      let g = inputs.(field) in
      let ix = Grid.indexer1 g in
      let d0 = offsets.(0) in
      fun x -> Grid.unsafe_get_flat g (ix (x + d0))
  | Neg a ->
      let fa = comp1 inputs a in
      fun x -> -.fa x
  | Add (a, b) ->
      let fa = comp1 inputs a and fb = comp1 inputs b in
      fun x -> fa x +. fb x
  | Sub (a, b) ->
      let fa = comp1 inputs a and fb = comp1 inputs b in
      fun x -> fa x -. fb x
  | Mul (a, b) ->
      let fa = comp1 inputs a and fb = comp1 inputs b in
      fun x -> fa x *. fb x
  | Div (a, b) ->
      let fa = comp1 inputs a and fb = comp1 inputs b in
      fun x -> fa x /. fb x
  | Min (a, b) ->
      let fa = comp1 inputs a and fb = comp1 inputs b in
      fun x -> Float.min (fa x) (fb x)
  | Max (a, b) ->
      let fa = comp1 inputs a and fb = comp1 inputs b in
      fun x -> Float.max (fa x) (fb x)
  | Select (c, a, b) ->
      let fc = comp1 inputs c and fa = comp1 inputs a and fb = comp1 inputs b in
      fun x ->
        (* all operands evaluated: Select is branchless, not lazy *)
        let va = fa x and vb = fb x in
        if fc x > 0.0 then va else vb

let rec comp2 inputs (e : Expr.t) : int -> int -> float =
  match e with
  | Const c -> fun _ _ -> c
  | Coeff n -> fail_coeff n
  | Ref { field; offsets } ->
      let g = inputs.(field) in
      let ix = Grid.indexer2 g in
      let d0 = offsets.(0) and d1 = offsets.(1) in
      fun y x -> Grid.unsafe_get_flat g (ix (y + d0) (x + d1))
  | Neg a ->
      let fa = comp2 inputs a in
      fun y x -> -.fa y x
  | Add (a, b) ->
      let fa = comp2 inputs a and fb = comp2 inputs b in
      fun y x -> fa y x +. fb y x
  | Sub (a, b) ->
      let fa = comp2 inputs a and fb = comp2 inputs b in
      fun y x -> fa y x -. fb y x
  | Mul (a, b) ->
      let fa = comp2 inputs a and fb = comp2 inputs b in
      fun y x -> fa y x *. fb y x
  | Div (a, b) ->
      let fa = comp2 inputs a and fb = comp2 inputs b in
      fun y x -> fa y x /. fb y x
  | Min (a, b) ->
      let fa = comp2 inputs a and fb = comp2 inputs b in
      fun y x -> Float.min (fa y x) (fb y x)
  | Max (a, b) ->
      let fa = comp2 inputs a and fb = comp2 inputs b in
      fun y x -> Float.max (fa y x) (fb y x)
  | Select (c, a, b) ->
      let fc = comp2 inputs c and fa = comp2 inputs a and fb = comp2 inputs b in
      fun y x ->
        let va = fa y x and vb = fb y x in
        if fc y x > 0.0 then va else vb

let rec comp3 inputs (e : Expr.t) : int -> int -> int -> float =
  match e with
  | Const c -> fun _ _ _ -> c
  | Coeff n -> fail_coeff n
  | Ref { field; offsets } ->
      let g = inputs.(field) in
      let ix = Grid.indexer3 g in
      let d0 = offsets.(0) and d1 = offsets.(1) and d2 = offsets.(2) in
      fun z y x -> Grid.unsafe_get_flat g (ix (z + d0) (y + d1) (x + d2))
  | Neg a ->
      let fa = comp3 inputs a in
      fun z y x -> -.fa z y x
  | Add (a, b) ->
      let fa = comp3 inputs a and fb = comp3 inputs b in
      fun z y x -> fa z y x +. fb z y x
  | Sub (a, b) ->
      let fa = comp3 inputs a and fb = comp3 inputs b in
      fun z y x -> fa z y x -. fb z y x
  | Mul (a, b) ->
      let fa = comp3 inputs a and fb = comp3 inputs b in
      fun z y x -> fa z y x *. fb z y x
  | Div (a, b) ->
      let fa = comp3 inputs a and fb = comp3 inputs b in
      fun z y x -> fa z y x /. fb z y x
  | Min (a, b) ->
      let fa = comp3 inputs a and fb = comp3 inputs b in
      fun z y x -> Float.min (fa z y x) (fb z y x)
  | Max (a, b) ->
      let fa = comp3 inputs a and fb = comp3 inputs b in
      fun z y x -> Float.max (fa z y x) (fb z y x)
  | Select (c, a, b) ->
      let fc = comp3 inputs c and fa = comp3 inputs a and fb = comp3 inputs b in
      fun z y x ->
        let va = fa z y x and vb = fb z y x in
        if fc z y x > 0.0 then va else vb

let compile1 (spec : Spec.t) ~inputs =
  if spec.rank <> 1 then invalid_arg "Compile.compile1: rank must be 1";
  check_inputs spec ~inputs;
  comp1 inputs spec.expr

let compile2 (spec : Spec.t) ~inputs =
  if spec.rank <> 2 then invalid_arg "Compile.compile2: rank must be 2";
  check_inputs spec ~inputs;
  comp2 inputs spec.expr

let compile3 (spec : Spec.t) ~inputs =
  if spec.rank <> 3 then invalid_arg "Compile.compile3: rank must be 3";
  check_inputs spec ~inputs;
  comp3 inputs spec.expr
