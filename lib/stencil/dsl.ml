let fld ?(field = 0) offsets =
  Expr.Ref { field; offsets = Array.of_list offsets }

let c x = Expr.Const x

let p name = Expr.Coeff name

let ( +: ) a b = Expr.Add (a, b)

let ( -: ) a b = Expr.Sub (a, b)

let ( *: ) a b = Expr.Mul (a, b)

let ( /: ) a b = Expr.Div (a, b)

let neg a = Expr.Neg a

let fmin a b = Expr.Min (a, b)

let fmax a b = Expr.Max (a, b)

let select cond a b = Expr.Select (cond, a, b)

let sum = function
  | [] -> invalid_arg "Dsl.sum: empty list"
  | x :: rest -> List.fold_left ( +: ) x rest
