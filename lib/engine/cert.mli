(** Safety-certificate store: content-addressed records that a
    (plan × layout × halo × blocking) tuple passed full certification
    (the YS5xx static verifier plus the YS511 traced cross-validation;
    see {!Certify}).

    {!Sweep.run} and {!Wavefront.steps} consult the store when a
    sanitized, gate-checked run starts: a hit selects the unchecked
    fast path (per-point shadow checks skipped, shadow state
    bulk-committed via {!Sanitizer.commit_pass}); a miss keeps the
    fully checked path. Keys deliberately exclude grid extents — the
    bounds proof is per-dimension |offset| ≤ halo, so one certificate
    covers every problem size with the same layout and halo.

    The store is process-wide and thread-safe. Setting the
    [YASKSITE_NO_CERT] environment variable to anything but [""] or
    ["0"] force-disables it (lookups miss, inserts drop), keeping the
    checked path exercised end to end. *)

module Grid := Yasksite_grid.Grid
module Plan := Yasksite_stencil.Plan
module Config := Yasksite_ecm.Config

type entry = {
  key : string;
  fingerprint : string;  (** the certified plan's content digest *)
  loads_per_point : int;  (** certified traffic: reads per update *)
  stores_per_point : int;  (** certified traffic: writes per update *)
  flops_per_point : int;
}

val enabled : unit -> bool
(** [false] iff [YASKSITE_NO_CERT] is set to anything but [""]/["0"]. *)

val key :
  plan:Plan.t -> inputs:Grid.t array -> output:Grid.t ->
  config:Config.t -> string
(** The certificate key of one tuple: digest over the plan fingerprint,
    each grid's (layout, halo) signature, and the config's block/fold —
    grid extents excluded. *)

val set_store : Yasksite_store.Store.t option -> unit
(** Back the process-local table with a persistent store (namespace
    ["cert-v1"]): lookups missing in memory consult it, inserts write
    through. [None] detaches. A degraded store only costs re-running
    the checked path — certificates are re-derivable. *)

val lookup : string -> entry option
(** [None] when absent or when the store is disabled. *)

val mem : string -> bool

val insert : entry -> unit
(** No-op when the store is disabled. *)

val size : unit -> int

(** {1 Native translation certificates}

    Records that one emitted kernel source passed the YS6xx translation
    validator ({!Yasksite_lint.Native_lint}). The payload is the digest
    of the exact validated source, so a certificate can only bless the
    bytes it was computed from. Shares the ["cert-v1"] persistent
    namespace and the [YASKSITE_NO_CERT] kill switch. *)

val native_key : ckey:string -> version:int -> string
(** Certificate key for one codegen cache key under one validator
    version — bumping the validator version re-proves everything. *)

val native_lookup : string -> string option
(** The recorded source digest, or [None] when absent or disabled. *)

val native_insert : string -> digest:string -> unit
(** Record a passing verdict (write-through when backed). No-op when
    disabled. *)

val native_size : unit -> int
(** In-memory native certificates (test observability). *)

val clear : unit -> unit
(** Drop every certificate and reset the fast-path counter (test
    isolation). *)

val record_fast_path : unit -> unit
(** Called by the engine each time a certificate engages the unchecked
    fast path. *)

val fast_path_hits : unit -> int
(** How many sweeps/wavefronts ran on the certified fast path since the
    last {!clear}. *)
