(* Topological program executor: one extended sweep per stage, one
   intermediate grid per non-input field. The halo plan decides how far
   into its halo each intermediate is computed, so consumers never see a
   stale ghost cell. *)

module Grid = Yasksite_grid.Grid
module Program = Yasksite_stencil.Program
module Config = Yasksite_ecm.Config
module Lint = Yasksite_lint.Lint

type stage_run = { stage : string; stats : Sweep.stats }

type result = {
  outputs : (string * Grid.t) list;
  stages : stage_run list;
}

let run ?pool ?backend ?(check = true) ?(config = Config.default) ?space
    (p : Program.t) ~inputs =
  if check then
    Lint.gate ~context:"Prog.run"
      (Lint.Program.program p @ Lint.Program.grids p ~inputs);
  let order =
    match Program.topo p with
    | Ok o -> o
    | Error _ -> invalid_arg "Prog.run: cyclic program"
  in
  let hp = Program.halo_plan p in
  let dims =
    match inputs with
    | (_, g) :: _ -> Grid.dims g
    | [] -> invalid_arg "Prog.run: a program needs at least one input grid"
  in
  let layout =
    match config.Config.fold with
    | None -> Grid.Linear
    | Some f -> Grid.Folded (Array.copy f)
  in
  let env = Hashtbl.create 16 in
  List.iter (fun (name, g) -> Hashtbl.replace env name g) inputs;
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some g -> g
    | None -> invalid_arg (Printf.sprintf "Prog.run: unbound field %S" name)
  in
  let runs =
    List.map
      (fun sname ->
        let s =
          match Program.find_stage p sname with
          | Some s -> s
          | None -> assert false (* topo only yields stage names *)
        in
        let ext = List.assoc sname hp.Program.stage_ext in
        (* halo = ext: the extended sweep writes the whole allocation
           ([-ext, dims+ext)), and every consumer reads at most ext cells
           out, so no ghost cell is ever read unwritten. *)
        let output = Grid.create ?space ~halo:ext ~layout ~dims () in
        let spec = Program.stage_spec p s in
        let grids = Array.map lookup s.Program.reads in
        let stats =
          Sweep.run ?pool ?backend ~check ~config ~extend:ext spec
            ~inputs:grids ~output
        in
        Hashtbl.replace env sname output;
        { stage = sname; stats })
      order
  in
  let outputs =
    Array.to_list (Array.map (fun o -> (o, lookup o)) p.Program.outputs)
  in
  { outputs; stages = runs }
