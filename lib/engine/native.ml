module Grid = Yasksite_grid.Grid
module Plan = Yasksite_stencil.Plan
module Codegen = Yasksite_stencil.Codegen
module Lint = Yasksite_lint.Lint
module D = Yasksite_lint.Diagnostic
module Store = Yasksite_store.Store

(* The build-and-load half of the codegen backend: turn the source
   Stencil.Codegen emits into a running kernel, once per
   (specialization key × compiler) per machine.

   Resolution order for a key: process-local memo table; then the
   persistent store (namespace "kern-v1", compiled bytes keyed by
   specialization key × compiler version × flags); then an
   out-of-process [ocamlfind ocamlopt -shared] compile whose result is
   written through to the store. Every failure mode — no toolchain, no
   native Dynlink, plan rejected by the YS5xx verifier, unsupported
   body, compile or load error, read-only store — degrades to [None]
   (the caller falls back to the plan interpreter) with a single
   warning line per process, mirroring the store's own
   never-fail-a-pipeline contract. Failures are memoized too, so a
   missing toolchain costs one probe, not one probe per region. *)

external named_value : string -> Obj.t option = "yasksite_named_value"

(* Force the stdlib units a generated plugin imports into every
   executable that links the engine: [Dynlink] refuses a unit whose
   imports the host never linked ([Unavailable_unit]), and [Callback]
   in particular has no other engine reference. [Bigarray] and [Array]
   are referenced throughout the engine, but a typed reference here
   keeps the guarantee local instead of incidental. *)
let _force_callback : string -> int -> unit = Callback.register

let _force_bigarray : Codegen.farr -> int -> float = Bigarray.Array1.unsafe_get

let _force_array : int array array -> int -> int array = Array.unsafe_get

type stats = {
  compiles : int;  (** out-of-process compiler invocations *)
  compile_errors : int;
  store_hits : int;  (** kernels revived from the persistent store *)
  loads : int;  (** successful Dynlink loads *)
  load_errors : int;  (** failed loads (corrupt payloads recompile) *)
  fallbacks : int;  (** resolutions that fell back to the interpreter *)
  gate_rejections : int;  (** plans the YS5xx verifier refused *)
}

let store_ns = "kern-v1"

let mutex = Mutex.create ()

let memo : (string, Codegen.kern option) Hashtbl.t = Hashtbl.create 16

let compiles = ref 0
and compile_errors = ref 0
and store_hits = ref 0
and loads = ref 0
and load_errors = ref 0
and fallbacks = ref 0
and gate_rejections = ref 0

let warned = ref false

(* Persistent backing, mirroring Cert: [None] until the CLI (or a
   bench/test) attaches one — library use stays hermetic by default. *)
let persistent : Store.t option ref = ref None

let set_store s = Mutex.protect mutex (fun () -> persistent := s)

(* ---- toolchain probe (memoized) ---- *)

let compile_flags = [ "-shared"; "-w"; "-a" ]

(* [Some (compiler_version, flags)] when kernels can be built and
   loaded here; probed once per process (reset by [reset_for_tests]). *)
let toolchain : (string * string list) option option ref = ref None

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Run [argv] with stdout+stderr captured to [out_path]. Uses
   [Unix.create_process] (execvp), so an in-process [PATH] change is
   honored — which is also what lets tests and the no-toolchain CI leg
   simulate a missing compiler. *)
let run_tool argv ~out_path =
  match
    let dev_null = Unix.openfile Filename.null [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close dev_null)
      (fun () ->
        let out =
          Unix.openfile out_path
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o600
        in
        Fun.protect
          ~finally:(fun () -> Unix.close out)
          (fun () ->
            let pid = Unix.create_process argv.(0) argv dev_null out out in
            waitpid_retry pid))
  with
  | Unix.WEXITED 0 -> Ok ()
  | Unix.WEXITED n -> Error (Printf.sprintf "%s exited %d" argv.(0) n)
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
      Error (Printf.sprintf "%s killed by signal %d" argv.(0) n)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" argv.(0) (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let probe () =
  match !toolchain with
  | Some r -> r
  | None ->
      let r =
        if not Dynlink.is_native then None
        else
          match Filename.temp_file "yasksite-probe" ".out" with
          | exception Sys_error _ -> None
          | out -> (
              let res =
                run_tool
                  [| "ocamlfind"; "ocamlopt"; "-version" |]
                  ~out_path:out
              in
              let version =
                match res with
                | Error _ -> None
                | Ok () -> (
                    match read_file out with
                    | None -> None
                    | Some s -> (
                        match String.trim s with "" -> None | v -> Some v))
              in
              (try Sys.remove out with Sys_error _ -> ());
              match version with
              | None -> None
              | Some v -> Some (v, compile_flags))
      in
      toolchain := Some r;
      r

let available () = Mutex.protect mutex (fun () -> probe () <> None)

(* ---- scratch directory for sources and freshly built cmxs ---- *)

let workdir = ref None

let get_workdir () =
  match !workdir with
  | Some d -> d
  | None ->
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "yasksite-kern-%d" (Unix.getpid ()))
      in
      (try Unix.mkdir d 0o700
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      workdir := Some d;
      d

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

(* A successfully (or even partially) dlopened .cmxs stays mapped for
   the life of the process; overwriting it in place would rewrite the
   mapped code pages under any previously loaded kernel. Every load or
   compile attempt therefore writes to a fresh path. *)
let attempt_seq = ref 0

let fresh_base ckey =
  incr attempt_seq;
  Filename.concat (get_workdir ())
    (Printf.sprintf "%s_%d" (Codegen.unit_basename ckey) !attempt_seq)

(* ---- resolution ---- *)

let store_key ~ckey ~version ~flags =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" (ckey :: version :: flags)))

let warn_once reason =
  if not !warned then begin
    warned := true;
    Printf.eprintf
      "yasksite: codegen backend: %s; falling back to the plan interpreter\n%!"
      reason
  end

let load_kern ~path ~name =
  match Dynlink.loadfile_private path with
  | exception Dynlink.Error e -> Error (Dynlink.error_message e)
  | exception Sys_error msg -> Error msg
  | () -> (
      match named_value name with
      | None -> Error "loaded unit registered no kernel"
      | Some o ->
          let (row, point) : Codegen.kern_row * Codegen.kern_point =
            Obj.magic o
          in
          Ok { Codegen.row; point })

let compile_fresh ~src ~ckey ~name ~store ~skey =
  let base = fresh_base ckey in
  let cmxs = base ^ ".cmxs" in
  let ml = base ^ ".ml" in
  write_file ml src;
  incr compiles;
  let argv =
    Array.of_list
      (("ocamlfind" :: "ocamlopt" :: compile_flags) @ [ "-o"; cmxs; ml ])
  in
  match run_tool argv ~out_path:(base ^ ".log") with
  | Error msg ->
      incr compile_errors;
      let detail =
        match read_file (base ^ ".log") with
        | Some log when String.trim log <> "" ->
            let log = String.trim log in
            let log =
              if String.length log > 300 then String.sub log 0 300 else log
            in
            Printf.sprintf " (%s: %s)" msg log
        | _ -> Printf.sprintf " (%s)" msg
      in
      Error ("compilation failed" ^ detail)
  | Ok () -> (
      match load_kern ~path:cmxs ~name with
      | Error e ->
          incr load_errors;
          Error ("load of freshly built kernel failed: " ^ e)
      | Ok k ->
          incr loads;
          (match store with
          | Some s when Store.writable s -> (
              match read_file cmxs with
              | Some bytes -> Store.put s ~ns:store_ns ~key:skey bytes
              | None -> ())
          | _ -> ());
          Ok k)

let resolve ~(plan : Plan.t) ~inputs ~output ~v ~ckey =
  if not (Plan.resolved plan) then Error "plan has unresolved coefficients"
  else
    match probe () with
    | None -> Error "ocamlfind or native Dynlink unavailable"
    | Some (version, flags) -> (
        (* The YS5xx dataflow verifier gates emission: no source is
           generated, let alone run, for a plan whose accesses the
           verifier cannot prove in bounds for these grids. *)
        let ds = Lint.Plan.check plan ~inputs ~output in
        if D.has_errors ds then begin
          incr gate_rejections;
          let first =
            match D.errors ds with
            | d :: _ -> Printf.sprintf "%s: %s" d.D.code d.D.message
            | [] -> "unknown"
          in
          Error ("plan verifier rejected the plan (" ^ first ^ ")")
        end
        else
          match Codegen.source ~plan v with
          | Error reason -> Error ("unsupported plan: " ^ reason)
          | Ok src -> (
              let name = Codegen.callback_name ckey in
              let store = !persistent in
              let skey = store_key ~ckey ~version ~flags in
              let cached =
                match store with
                | None -> None
                | Some s -> Store.get s ~ns:store_ns ~key:skey
              in
              match cached with
              | Some bytes -> (
                  let cmxs = fresh_base ckey ^ ".cmxs" in
                  write_file cmxs bytes;
                  match load_kern ~path:cmxs ~name with
                  | Ok k ->
                      incr store_hits;
                      incr loads;
                      Ok k
                  | Error _ ->
                      (* A stored payload that no longer loads (corrupt,
                         stale compiler) is recompiled; the write-through
                         repairs the slot. *)
                      incr load_errors;
                      compile_fresh ~src ~ckey ~name ~store ~skey)
              | None -> compile_fresh ~src ~ckey ~name ~store ~skey))

let resolve_safe ~plan ~inputs ~output ~v ~ckey =
  match resolve ~plan ~inputs ~output ~v ~ckey with
  | r -> r
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let kern_for ~(plan : Plan.t) ~inputs ~output =
  let v = Codegen.variant_of ~plan ~inputs ~output in
  let ckey = Codegen.key ~plan v in
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt memo ckey with
      | Some (Some _ as hit) -> hit
      | Some None ->
          incr fallbacks;
          None
      | None ->
          let r =
            match resolve_safe ~plan ~inputs ~output ~v ~ckey with
            | Ok k -> Some k
            | Error reason ->
                warn_once reason;
                None
          in
          Hashtbl.replace memo ckey r;
          if r = None then incr fallbacks;
          r)

let stats () =
  Mutex.protect mutex (fun () ->
      { compiles = !compiles;
        compile_errors = !compile_errors;
        store_hits = !store_hits;
        loads = !loads;
        load_errors = !load_errors;
        fallbacks = !fallbacks;
        gate_rejections = !gate_rejections })

let stats_json () =
  let s = stats () in
  Printf.sprintf
    "{\"compiles\":%d,\"compile_errors\":%d,\"store_hits\":%d,\"loads\":%d,\
     \"load_errors\":%d,\"fallbacks\":%d,\"gate_rejections\":%d}"
    s.compiles s.compile_errors s.store_hits s.loads s.load_errors s.fallbacks
    s.gate_rejections

let reset_for_tests () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset memo;
      compiles := 0;
      compile_errors := 0;
      store_hits := 0;
      loads := 0;
      load_errors := 0;
      fallbacks := 0;
      gate_rejections := 0;
      warned := false;
      toolchain := None;
      persistent := None)
