module Grid = Yasksite_grid.Grid
module Plan = Yasksite_stencil.Plan
module Codegen = Yasksite_stencil.Codegen
module Lint = Yasksite_lint.Lint
module D = Yasksite_lint.Diagnostic
module Store = Yasksite_store.Store

(* The build-and-load half of the codegen backend: turn the source
   Stencil.Codegen emits into a running kernel, once per
   (specialization key × compiler) per machine.

   Resolution order for a key: process-local memo table; then the
   persistent store (namespace "kern-v1", compiled bytes keyed by
   specialization key × compiler version × flags); then an
   out-of-process [ocamlfind ocamlopt -shared] compile whose result is
   written through to the store. Every failure mode — no toolchain, no
   native Dynlink, plan rejected by the YS5xx verifier, unsupported
   body, compile or load error, read-only store — degrades to [None]
   (the caller falls back to the plan interpreter) with a single
   warning line per process, mirroring the store's own
   never-fail-a-pipeline contract. Failures are memoized too, so a
   missing toolchain costs one probe, not one probe per region. *)

external named_value : string -> Obj.t option = "yasksite_named_value"

(* Force the stdlib units a generated plugin imports into every
   executable that links the engine: [Dynlink] refuses a unit whose
   imports the host never linked ([Unavailable_unit]), and [Callback]
   in particular has no other engine reference. [Bigarray] and [Array]
   are referenced throughout the engine, but a typed reference here
   keeps the guarantee local instead of incidental. *)
let _force_callback : string -> int -> unit = Callback.register

let _force_bigarray : Codegen.farr -> int -> float = Bigarray.Array1.unsafe_get

let _force_array : int array array -> int -> int array = Array.unsafe_get

type stats = {
  compiles : int;  (** out-of-process compiler invocations *)
  compile_errors : int;
  store_hits : int;  (** kernels revived from the persistent store *)
  loads : int;  (** successful Dynlink loads *)
  load_errors : int;  (** failed loads (corrupt payloads recompile) *)
  fallbacks : int;  (** resolutions that fell back to the interpreter *)
  gate_rejections : int;  (** plans the YS5xx verifier refused *)
  validations : int;  (** YS6xx translation-validator runs *)
  validator_rejections : int;  (** sources the YS6xx validator refused *)
}

let store_ns = "kern-v1"

let mutex = Mutex.create ()

let memo : (string, Codegen.kern option) Hashtbl.t = Hashtbl.create 16

let compiles = ref 0
and compile_errors = ref 0
and store_hits = ref 0
and loads = ref 0
and load_errors = ref 0
and fallbacks = ref 0
and gate_rejections = ref 0
and validations = ref 0
and validator_rejections = ref 0

let warned = ref false

(* Test hook: rewrite the emitted source between Codegen.source and the
   translation validator — how the suite injects miscompiles into the
   real resolution path without teaching Codegen to lie. *)
let source_transform : (string -> string) option ref = ref None

let set_source_transform f = Mutex.protect mutex (fun () -> source_transform := f)

(* Persistent backing, mirroring Cert: [None] until the CLI (or a
   bench/test) attaches one — library use stays hermetic by default. *)
let persistent : Store.t option ref = ref None

let set_store s = Mutex.protect mutex (fun () -> persistent := s)

(* ---- toolchain probe (memoized) ---- *)

let compile_flags = [ "-shared"; "-w"; "-a" ]

(* [Some (compiler_version, flags)] when kernels can be built and
   loaded here; probed once per process (reset by [reset_for_tests]). *)
let toolchain : (string * string list) option option ref = ref None

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Run [argv] with stdout+stderr captured to [out_path]. Uses
   [Unix.create_process] (execvp), so an in-process [PATH] change is
   honored — which is also what lets tests and the no-toolchain CI leg
   simulate a missing compiler. *)
let run_tool argv ~out_path =
  match
    let dev_null = Unix.openfile Filename.null [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close dev_null)
      (fun () ->
        let out =
          Unix.openfile out_path
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o600
        in
        Fun.protect
          ~finally:(fun () -> Unix.close out)
          (fun () ->
            let pid = Unix.create_process argv.(0) argv dev_null out out in
            waitpid_retry pid))
  with
  | Unix.WEXITED 0 -> Ok ()
  | Unix.WEXITED n -> Error (Printf.sprintf "%s exited %d" argv.(0) n)
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
      Error (Printf.sprintf "%s killed by signal %d" argv.(0) n)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" argv.(0) (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let probe () =
  match !toolchain with
  | Some r -> r
  | None ->
      let r =
        if not Dynlink.is_native then None
        else
          match Filename.temp_file "yasksite-probe" ".out" with
          | exception Sys_error _ -> None
          | out -> (
              let res =
                run_tool
                  [| "ocamlfind"; "ocamlopt"; "-version" |]
                  ~out_path:out
              in
              let version =
                match res with
                | Error _ -> None
                | Ok () -> (
                    match read_file out with
                    | None -> None
                    | Some s -> (
                        match String.trim s with "" -> None | v -> Some v))
              in
              (try Sys.remove out with Sys_error _ -> ());
              match version with
              | None -> None
              | Some v -> Some (v, compile_flags))
      in
      toolchain := Some r;
      r

let available () = Mutex.protect mutex (fun () -> probe () <> None)

(* ---- scratch directory for sources and freshly built cmxs ---- *)

let workdir = ref None

let get_workdir () =
  match !workdir with
  | Some d -> d
  | None ->
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "yasksite-kern-%d" (Unix.getpid ()))
      in
      (try Unix.mkdir d 0o700
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      workdir := Some d;
      d

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

(* A successfully (or even partially) dlopened .cmxs stays mapped for
   the life of the process; overwriting it in place would rewrite the
   mapped code pages under any previously loaded kernel. Every load or
   compile attempt therefore writes to a fresh path. *)
let attempt_seq = ref 0

let fresh_base ckey =
  incr attempt_seq;
  Filename.concat (get_workdir ())
    (Printf.sprintf "%s_%d" (Codegen.unit_basename ckey) !attempt_seq)

(* ---- resolution ---- *)

let store_key ~ckey ~version ~flags =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" (ckey :: version :: flags)))

(* ---- kern-v1 payload metadata ----

   Compiled bytes are committed with a four-line header (magic, codegen
   ABI, compiler version, compile flags). The store key already binds
   compiler version and flags, so a stale entry can never shadow a
   current one — the header exists so store-side tooling ([store
   verify], [store gc --stale]) can recognize payloads no toolchain on
   this machine will ever ask for again, without re-deriving every
   specialization key. Headerless payloads from before the header
   existed are legacy: loaded as-is and upgraded in place on success,
   but reported stale by the scan. *)

let payload_magic = "yasksite-kern-payload v1"

let encode_payload ~version ~flags bytes =
  Printf.sprintf "%s\n%d\n%s\n%s\n%s" payload_magic Codegen.abi version
    (String.concat " " flags) bytes

(* [Some (abi, compiler_version, flags_line, bytes)] when [raw] carries
   the header; [None] for legacy raw cmxs bytes. *)
let decode_payload raw =
  let line i =
    match String.index_from_opt raw i '\n' with
    | None -> None
    | Some j -> Some (String.sub raw i (j - i), j + 1)
  in
  match line 0 with
  | Some (m, i) when m = payload_magic -> (
      match line i with
      | None -> None
      | Some (abi, i) -> (
          match line i with
          | None -> None
          | Some (ver, i) -> (
              match line i with
              | None -> None
              | Some (fl, i) ->
                  Some (abi, ver, fl, String.sub raw i (String.length raw - i)))))
  | _ -> None

let payload_stale ~toolchain raw =
  match decode_payload raw with
  | None -> true  (* legacy, headerless *)
  | Some (abi, ver, fl, _) ->
      abi <> string_of_int Codegen.abi
      || (match toolchain with
         | None -> false  (* no compiler here: cannot judge the version *)
         | Some (v, flags) -> ver <> v || fl <> String.concat " " flags)

let toolchain_id () = Mutex.protect mutex (fun () -> probe ())

let stale_kernels s =
  let tc = toolchain_id () in
  List.rev
    (Store.fold_ns s ~ns:store_ns ~init:[] (fun acc ~key ~payload ->
         if payload_stale ~toolchain:tc payload then key :: acc else acc))

let gc_stale s =
  List.fold_left
    (fun n key -> if Store.delete s ~ns:store_ns ~key then n + 1 else n)
    0 (stale_kernels s)

let warn_once reason =
  if not !warned then begin
    warned := true;
    Printf.eprintf
      "yasksite: codegen backend: %s; falling back to the plan interpreter\n%!"
      reason
  end

let load_kern ~path ~name =
  match Dynlink.loadfile_private path with
  | exception Dynlink.Error e -> Error (Dynlink.error_message e)
  | exception Sys_error msg -> Error msg
  | () -> (
      match named_value name with
      | None -> Error "loaded unit registered no kernel"
      | Some o ->
          let (row, point) : Codegen.kern_row * Codegen.kern_point =
            Obj.magic o
          in
          Ok { Codegen.row; point })

let compile_fresh ~src ~ckey ~name ~store ~skey ~version ~flags =
  let base = fresh_base ckey in
  let cmxs = base ^ ".cmxs" in
  let ml = base ^ ".ml" in
  write_file ml src;
  incr compiles;
  let argv =
    Array.of_list
      (("ocamlfind" :: "ocamlopt" :: compile_flags) @ [ "-o"; cmxs; ml ])
  in
  match run_tool argv ~out_path:(base ^ ".log") with
  | Error msg ->
      incr compile_errors;
      let detail =
        match read_file (base ^ ".log") with
        | Some log when String.trim log <> "" ->
            let log = String.trim log in
            let log =
              if String.length log > 300 then String.sub log 0 300 else log
            in
            Printf.sprintf " (%s: %s)" msg log
        | _ -> Printf.sprintf " (%s)" msg
      in
      Error ("compilation failed" ^ detail)
  | Ok () -> (
      match load_kern ~path:cmxs ~name with
      | Error e ->
          incr load_errors;
          Error ("load of freshly built kernel failed: " ^ e)
      | Ok k ->
          incr loads;
          (match store with
          | Some s when Store.writable s -> (
              match read_file cmxs with
              | Some bytes ->
                  Store.put s ~ns:store_ns ~key:skey
                    (encode_payload ~version ~flags bytes)
              | None -> ())
          | _ -> ());
          Ok k)

let resolve ~(plan : Plan.t) ~inputs ~output ~v ~ckey =
  if not (Plan.resolved plan) then Error "plan has unresolved coefficients"
  else
    match probe () with
    | None -> Error "ocamlfind or native Dynlink unavailable"
    | Some (version, flags) -> (
        (* The YS5xx dataflow verifier gates emission: no source is
           generated, let alone run, for a plan whose accesses the
           verifier cannot prove in bounds for these grids. *)
        let ds = Lint.Plan.check plan ~inputs ~output in
        if D.has_errors ds then begin
          incr gate_rejections;
          let first =
            match D.errors ds with
            | d :: _ -> Printf.sprintf "%s: %s" d.D.code d.D.message
            | [] -> "unknown"
          in
          Error ("plan verifier rejected the plan (" ^ first ^ ")")
        end
        else
          match Codegen.source ~plan v with
          | Error reason -> Error ("unsupported plan: " ^ reason)
          | Ok src -> (
              let src =
                match !source_transform with None -> src | Some f -> f src
              in
              (* Translation validation (YS6xx): prove the emitted
                 source IS the plan before anything is compiled,
                 revived or loaded. A passing verdict earns a native
                 certificate (cache key × validator version, payload
                 the digest of the validated bytes), so warm paths —
                 memo misses re-resolving a store-revived kernel in a
                 later process — skip the proof. *)
              let src_digest = Digest.to_hex (Digest.string src) in
              let nkey =
                Cert.native_key ~ckey ~version:Lint.Native.version
              in
              let verdict =
                match Cert.native_lookup nkey with
                | Some d when d = src_digest -> Ok ()
                | _ -> (
                    incr validations;
                    match Lint.Native.validate ~plan ~variant:v ~inputs src with
                    | Ok () ->
                        Cert.native_insert nkey ~digest:src_digest;
                        Ok ()
                    | Error ds ->
                        incr validator_rejections;
                        let first =
                          match ds with
                          | d :: _ ->
                              Printf.sprintf "%s: %s" d.D.code d.D.message
                          | [] -> "unknown"
                        in
                        Error
                          ("translation validator rejected the emitted \
                            kernel (" ^ first ^ ")"))
              in
              match verdict with
              | Error msg -> Error msg
              | Ok () -> (
                  let name = Codegen.callback_name ckey in
                  let store = !persistent in
                  let skey = store_key ~ckey ~version ~flags in
                  let cached =
                    match store with
                    | None -> None
                    | Some s -> Store.get s ~ns:store_ns ~key:skey
                  in
                  match cached with
                  | Some raw -> (
                      (* Strip the payload header; a header naming a
                         different ABI or toolchain in this slot means
                         the entry is stale or mis-filed — recompile
                         and let the write-through repair it. *)
                      let revived =
                        match decode_payload raw with
                        | None -> Some (true, raw)  (* legacy payload *)
                        | Some (abi, ver, fl, bytes) ->
                            if
                              abi = string_of_int Codegen.abi
                              && ver = version
                              && fl = String.concat " " flags
                            then Some (false, bytes)
                            else None
                      in
                      match revived with
                      | None ->
                          incr load_errors;
                          compile_fresh ~src ~ckey ~name ~store ~skey
                            ~version ~flags
                      | Some (legacy, bytes) -> (
                          let cmxs = fresh_base ckey ^ ".cmxs" in
                          write_file cmxs bytes;
                          match load_kern ~path:cmxs ~name with
                          | Ok k ->
                              incr store_hits;
                              incr loads;
                              (* A legacy payload that still loads is
                                 upgraded in place with the header. *)
                              (if legacy then
                                 match store with
                                 | Some s when Store.writable s ->
                                     Store.put s ~ns:store_ns ~key:skey
                                       (encode_payload ~version ~flags bytes)
                                 | _ -> ());
                              Ok k
                          | Error _ ->
                              (* A stored payload that no longer loads
                                 (corrupt, stale compiler) is recompiled;
                                 the write-through repairs the slot. *)
                              incr load_errors;
                              compile_fresh ~src ~ckey ~name ~store ~skey
                                ~version ~flags))
                  | None ->
                      compile_fresh ~src ~ckey ~name ~store ~skey ~version
                        ~flags)))

let resolve_safe ~plan ~inputs ~output ~v ~ckey =
  match resolve ~plan ~inputs ~output ~v ~ckey with
  | r -> r
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let kern_for ~(plan : Plan.t) ~inputs ~output =
  let v = Codegen.variant_of ~plan ~inputs ~output in
  let ckey = Codegen.key ~plan v in
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt memo ckey with
      | Some (Some _ as hit) -> hit
      | Some None ->
          incr fallbacks;
          None
      | None ->
          let r =
            match resolve_safe ~plan ~inputs ~output ~v ~ckey with
            | Ok k -> Some k
            | Error reason ->
                warn_once reason;
                None
          in
          Hashtbl.replace memo ckey r;
          if r = None then incr fallbacks;
          r)

let stats () =
  Mutex.protect mutex (fun () ->
      { compiles = !compiles;
        compile_errors = !compile_errors;
        store_hits = !store_hits;
        loads = !loads;
        load_errors = !load_errors;
        fallbacks = !fallbacks;
        gate_rejections = !gate_rejections;
        validations = !validations;
        validator_rejections = !validator_rejections })

let stats_json () =
  let s = stats () in
  Printf.sprintf
    "{\"compiles\":%d,\"compile_errors\":%d,\"store_hits\":%d,\"loads\":%d,\
     \"load_errors\":%d,\"fallbacks\":%d,\"gate_rejections\":%d,\
     \"validations\":%d,\"validator_rejections\":%d}"
    s.compiles s.compile_errors s.store_hits s.loads s.load_errors s.fallbacks
    s.gate_rejections s.validations s.validator_rejections

let reset_for_tests () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset memo;
      compiles := 0;
      compile_errors := 0;
      store_hits := 0;
      loads := 0;
      load_errors := 0;
      fallbacks := 0;
      gate_rejections := 0;
      validations := 0;
      validator_rejections := 0;
      warned := false;
      toolchain := None;
      source_transform := None;
      persistent := None)
