(** Shadow-memory sweep sanitizer: the dynamic cross-check of the
    YS4xx schedule-legality analyzer (TSan-style shadow state).

    Each registered grid gets a per-cell shadow record (value version,
    last writer's pool-slice id, wavefront front id). A pass declares
    which version each input holds and which version it produces; every
    engine access is checked against that contract and violations trap
    with the YS45x code mirroring the static rule that should have
    rejected the schedule:

    - YS450 overlapping writes to one cell within a pass;
    - YS451 read racing a write of the same pass (cross-slice), or an
      order dependence within one wavefront front;
    - YS452 read of a stale version (wavefront skew, aliased in-place
      sweeps);
    - YS453 access outside the allocation (always raises, whatever the
      mode, before the engine's unchecked access runs);
    - YS454 output cells left unwritten by a non-covering partition;
    - YS455 read of a stale or uninitialised halo;
    - YS456 executed layout differs from the scheduled fold.

    One sanitizer instance covers one virtual address space: grids are
    keyed by base address, so grids from different {!Grid.space}s must
    use different sanitizers. *)

module Grid := Yasksite_grid.Grid

type kind =
  | Overlapping_write
  | Racing_read
  | Stale_read
  | Out_of_bounds
  | Unwritten_cell
  | Halo_read
  | Fold_mismatch

val code_of_kind : kind -> string
(** The stable YS45x rule code of a trap kind. *)

type trap = {
  kind : kind;
  grid_base : int;  (** base address of the offending grid *)
  coord : int array;  (** grid-relative coordinates, empty if whole-grid *)
  detail : string;
}

val describe_trap : trap -> string

exception Trap of trap
(** Raised on the first trap in fail-fast mode, and on any
    out-of-bounds access in every mode. *)

type t

val create : ?fail_fast:bool -> ?limit:int -> unit -> t
(** A fresh sanitizer. [fail_fast] (default [true]) raises {!Trap} on
    the first violation; otherwise traps are collected (up to [limit],
    default 64 — the count keeps growing past it) and execution
    continues, except for out-of-bounds accesses which always raise. *)

val register : ?halo:[ `Static | `Snapshot | `Uninit ] -> t -> Grid.t -> unit
(** Start tracking a grid (idempotent — the first registration wins).
    [halo] declares how its ghost cells are maintained: [`Static]
    (default) means time-invariant (Dirichlet) values that any pass may
    read; [`Snapshot] means copied images valid only for the version at
    the last {!refresh_halo}; [`Uninit] means never filled — any halo
    read traps. *)

val registered : t -> Grid.t -> bool

val grid_version : t -> Grid.t -> int
(** The version the grid currently holds (0 until first written). *)

val refresh_halo : t -> Grid.t -> unit
(** Mark a [`Snapshot] halo as refreshed against the grid's current
    version. No-op for [`Static] halos. *)

val fresh_front : t -> int
(** A process-unique wavefront-front id (for {!begin_wavefront_step}). *)

type pass
(** One write phase over one output grid. *)

type slice
(** A pass viewed from one pool slice. *)

val begin_sweep : t -> inputs:Grid.t array -> output:Grid.t -> pass
(** Declare a plain sweep: each input is expected at its current
    version; the output will be produced at its version + 1. *)

val begin_wavefront_step :
  t -> src:Grid.t -> dst:Grid.t -> read_version:int -> front:int -> pass
(** Declare one wavefront step: [src] is expected at exactly
    [read_version]; [dst] is produced at [read_version + 1]. [front]
    tags the writes so later steps of the same front can detect order
    dependences. *)

val slice : pass -> int -> slice

val reader : slice -> Grid.t -> int array -> unit
(** [reader sl g] is a checker closure for reads of [g]; call it with
    the grid-relative coordinates of each read. (Partial application
    resolves the shadow once per region, not per access.) *)

val writer : slice -> int array -> unit
(** Checker for writes of the pass's output grid. *)

val check_fold : t -> fold:int array option -> Grid.t -> unit
(** Trap (YS456) if the schedule's claimed fold does not match the
    grid's layout. *)

val commit_pass : pass -> lo:int array -> hi:int array -> unit
(** Certified fast path: bulk-commit the shadow state a fully checked
    pass would have produced over the interior box [\[lo, hi)] — every
    cell set to the pass's write version, writer slice 0, the pass's
    front id. Called by the engine in place of per-point {!writer}
    updates when a safety certificate proves the plan cannot trap;
    keeps version bookkeeping composing with later checked passes
    ({!end_sweep} coverage included). *)

val end_sweep : pass -> unit
(** Verify every interior output cell was written exactly once (YS454
    for gaps; overlaps already trapped at write time) and commit the
    output's new version. *)

val end_wavefront : t -> final:Grid.t -> other:Grid.t -> final_version:int -> unit
(** Commit the versions the ping-pong pair holds after a wavefront:
    [final] at [final_version], [other] one step behind. *)

val trap_count : t -> int

val traps : t -> trap list
(** Collected traps, oldest first (at most the [limit] given to
    {!create}). *)

val diagnostics : t -> Yasksite_lint.Diagnostic.t list
(** The collected traps as YS45x error diagnostics. *)
