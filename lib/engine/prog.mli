(** Topological executor for stencil programs.

    Runs a {!Yasksite_stencil.Program} — a DAG of named stages — as a
    sequence of {!Sweep}s in dependency order, materializing one
    intermediate grid per stage. Each intermediate is allocated with a
    halo equal to the stage's accumulated {e extension}
    ({!Yasksite_stencil.Program.halo_plan}) and computed as an extended
    sweep over [[-ext, dims+ext)], so every consumer finds the
    off-centre cells it reads already valid — no halo exchange runs
    between stages.

    All three sweep backends execute programs, and (like single
    sweeps) produce bit-identical outputs; fusing stages with
    {!Yasksite_stencil.Program.fuse} before running preserves outputs
    bit-for-bit as well, because the inlined expression replays the
    producer's arithmetic tree in the same IEEE evaluation order the
    materialized stage used. *)

type stage_run = {
  stage : string;
  stats : Sweep.stats;
      (** work counters for this stage's (possibly extended) sweep *)
}

type result = {
  outputs : (string * Yasksite_grid.Grid.t) list;
      (** the program's declared outputs, in declaration order *)
  stages : stage_run list;  (** per-stage stats, in execution order *)
}

val run :
  ?pool:Yasksite_util.Pool.t ->
  ?backend:Sweep.backend ->
  ?check:bool ->
  ?config:Yasksite_ecm.Config.t ->
  ?space:Yasksite_grid.Grid.space ->
  Yasksite_stencil.Program.t ->
  inputs:(string * Yasksite_grid.Grid.t) list ->
  result
(** [run p ~inputs] executes every stage of [p] in topological order.
    [inputs] supplies one grid per program input (halos set by the
    caller); all grids must share one [dims] and use the layout the
    [config]'s fold describes (default {!Yasksite_ecm.Config.default},
    linear). Intermediates are allocated in [space] (default the global
    space) with that same layout — pass the space the input grids live
    in when it is not the global one, since virtual addresses from
    different spaces may overlap and the aliasing gate (YS403) would
    then reject a perfectly disjoint run.

    [check] (default [true]) gates on the full program lint
    ({!Yasksite_lint.Lint.Program}: the YS7xx DAG rules, per-stage
    kernel rules, and the YS704 halo-sufficiency judgement of the
    supplied grids) and leaves each stage's own schedule gate on;
    [~check:false] skips both. Raises [Lint.Gate_error] on lint
    errors, [Invalid_argument] on structurally unusable input (cyclic
    or non-closed program with [~check:false], empty [inputs]).

    [pool], [backend] and [config] are passed through to every stage's
    {!Sweep.run}; pooled execution keeps the sequential bit-identity
    guarantee stage by stage. *)
