(** Certification pipeline: prove one (plan × layout × halo × blocking)
    tuple safe and record it in the {!Cert} store.

    Certification has two halves. The {e static} half runs the YS5xx
    plan verifier ({!Yasksite_lint.Plan_lint.check}) against the
    caller's concrete grids — bounds, stack safety, dead code,
    count agreement with {!Yasksite_stencil.Analysis}. The {e dynamic}
    half (YS511) cross-validates the certified traffic counts against a
    trace-driven execution: a tiny proxy sweep with the same layout,
    halo and blocking runs against a cache hierarchy and the issued
    loads/stores must equal [points × loads_per_point] /
    [points × stores_per_point]. Only a plan passing both halves earns
    a certificate; certified plans select the unchecked sanitizer fast
    path in {!Sweep.run} and {!Wavefront.steps}. *)

module Grid := Yasksite_grid.Grid
module Machine := Yasksite_arch.Machine
module Spec := Yasksite_stencil.Spec
module Plan := Yasksite_stencil.Plan
module Config := Yasksite_ecm.Config
module Diagnostic := Yasksite_lint.Diagnostic

val validate_traffic :
  ?machine:Machine.t ->
  Spec.t ->
  plan:Plan.t ->
  config:Config.t ->
  Diagnostic.t list
(** The dynamic half alone: run the proxy traced sweep and return YS511
    errors where the observed traffic disagrees with the certified
    per-point counts (empty list = agreement). [machine] defaults to
    the scaled test chip — the simulator counts issued accesses
    regardless of hits, so the model only affects proxy cost. *)

val certify :
  ?machine:Machine.t ->
  ?plan:Plan.t ->
  Spec.t ->
  inputs:Grid.t array ->
  output:Grid.t ->
  config:Config.t ->
  (Cert.entry, Diagnostic.t list) result
(** Run both halves for [spec]'s plan ([plan] overrides the lowering,
    for callers that already hold it) against the given grids' layouts
    and halos and [config]'s blocking. [Ok entry] means the certificate
    was inserted into the store; [Error ds] carries every static and
    dynamic diagnostic that blocked it. Inserts are dropped when the
    store is disabled ([YASKSITE_NO_CERT]), but the verdict is still
    computed and returned. *)

val ensure :
  ?machine:Machine.t ->
  ?plan:Plan.t ->
  Spec.t ->
  inputs:Grid.t array ->
  output:Grid.t ->
  config:Config.t ->
  bool
(** [true] iff the tuple's certificate is already in the store or
    {!certify} just earned one. Returns [false] without any work when
    the store is disabled. *)
