module Grid = Yasksite_grid.Grid
module Hierarchy = Yasksite_cachesim.Hierarchy
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Compile = Yasksite_stencil.Compile
module Expr = Yasksite_stencil.Expr
module Config = Yasksite_ecm.Config
module Pool = Yasksite_util.Pool
module Lint = Yasksite_lint.Lint
module Schedule_lint = Yasksite_lint.Schedule_lint
module D = Yasksite_lint.Diagnostic

type stats = { points : int; vec_units : int; rows : int; blocks : int }

let zero_stats = { points = 0; vec_units = 0; rows = 0; blocks = 0 }

let add_stats a b =
  { points = a.points + b.points;
    vec_units = a.vec_units + b.vec_units;
    rows = a.rows + b.rows;
    blocks = a.blocks + b.blocks }

let ceil_div a b = (a + b - 1) / b

(* Work units of a box of given extents under a fold shape. *)
let units_of_box extents fold =
  let acc = ref 1 in
  Array.iteri (fun i e -> acc := !acc * ceil_div e fold.(i)) extents;
  !acc

let dims_str a =
  String.concat "x" (Array.to_list (Array.map string_of_int a))

(* Precondition failures surface as lint diagnostics through
   [Lint.Gate_error] (not bare [Invalid_argument]) so the CLI maps them
   to exit 1 consistently with every other gate. *)
let check_region ~dims ~lo ~hi =
  let rank = Array.length dims in
  let ds =
    if Array.length lo <> rank || Array.length hi <> rank then
      [ D.errorf ~code:"YS409"
          "region rank %d does not match the iteration space %s"
          (Array.length lo) (dims_str dims) ]
    else begin
      let bad = ref [] in
      Array.iteri
        (fun i d ->
          if lo.(i) < 0 || hi.(i) > d || lo.(i) > hi.(i) then
            bad :=
              D.errorf ~code:"YS406"
                "region [%s..%s) leaves the iteration space %s in \
                 dimension %d"
                (dims_str lo) (dims_str hi) (dims_str dims) i
              :: !bad)
        dims;
      List.rev !bad
    end
  in
  Lint.gate ~context:"Sweep.run_region" ds

(* The per-point update closure: trace reads, evaluate, trace + perform
   the write. Building it once keeps the hot loops free of dispatch. *)

let make_update1 spec ~inputs ~(output : Grid.t) ~trace ~nt =
  let eval = Compile.compile1 spec ~inputs in
  let oix = Grid.indexer1 output in
  match trace with
  | None -> fun x -> Grid.unsafe_set_flat output (oix x) (eval x)
  | Some h ->
      let info = Analysis.of_spec spec in
      let readers =
        Array.of_list
          (List.map
             (fun (a : Expr.access) ->
               let g = inputs.(a.field) in
               let ix = Grid.indexer1 g in
               let base = Grid.base_address g in
               let d0 = a.offsets.(0) in
               fun x -> base + (8 * ix (x + d0)))
             info.accesses)
      in
      let obase = Grid.base_address output in
      let store = if nt then Hierarchy.write_nt h else Hierarchy.write h in
      fun x ->
        Array.iter (fun addr -> Hierarchy.read h ~addr:(addr x)) readers;
        let v = eval x in
        let o = oix x in
        store ~addr:(obase + (8 * o));
        Grid.unsafe_set_flat output o v

let make_update2 spec ~inputs ~(output : Grid.t) ~trace ~nt =
  let eval = Compile.compile2 spec ~inputs in
  let oix = Grid.indexer2 output in
  match trace with
  | None -> fun y x -> Grid.unsafe_set_flat output (oix y x) (eval y x)
  | Some h ->
      let info = Analysis.of_spec spec in
      let readers =
        Array.of_list
          (List.map
             (fun (a : Expr.access) ->
               let g = inputs.(a.field) in
               let ix = Grid.indexer2 g in
               let base = Grid.base_address g in
               let d0 = a.offsets.(0) and d1 = a.offsets.(1) in
               fun y x -> base + (8 * ix (y + d0) (x + d1)))
             info.accesses)
      in
      let obase = Grid.base_address output in
      let store = if nt then Hierarchy.write_nt h else Hierarchy.write h in
      fun y x ->
        Array.iter (fun addr -> Hierarchy.read h ~addr:(addr y x)) readers;
        let v = eval y x in
        let o = oix y x in
        store ~addr:(obase + (8 * o));
        Grid.unsafe_set_flat output o v

let make_update3 spec ~inputs ~(output : Grid.t) ~trace ~nt =
  let eval = Compile.compile3 spec ~inputs in
  let oix = Grid.indexer3 output in
  match trace with
  | None ->
      fun z y x -> Grid.unsafe_set_flat output (oix z y x) (eval z y x)
  | Some h ->
      let info = Analysis.of_spec spec in
      let readers =
        Array.of_list
          (List.map
             (fun (a : Expr.access) ->
               let g = inputs.(a.field) in
               let ix = Grid.indexer3 g in
               let base = Grid.base_address g in
               let d0 = a.offsets.(0)
               and d1 = a.offsets.(1)
               and d2 = a.offsets.(2) in
               fun z y x -> base + (8 * ix (z + d0) (y + d1) (x + d2)))
             info.accesses)
      in
      let obase = Grid.base_address output in
      let store = if nt then Hierarchy.write_nt h else Hierarchy.write h in
      fun z y x ->
        Array.iter (fun addr -> Hierarchy.read h ~addr:(addr z y x)) readers;
        let v = eval z y x in
        let o = oix z y x in
        store ~addr:(obase + (8 * o));
        Grid.unsafe_set_flat output o v

(* Shadow-check wrappers around the per-point closures: every read of
   the stencil's access set and the output write are validated against
   the sanitizer pass before the real update executes (an out-of-bounds
   trap therefore fires before the engine's unchecked access would). *)

let sanitize_update1 sl spec ~inputs update =
  let info = Analysis.of_spec spec in
  let readers =
    Array.of_list
      (List.map
         (fun (a : Expr.access) ->
           let chk = Sanitizer.reader sl inputs.(a.field) in
           let d0 = a.offsets.(0) in
           fun x -> chk [| x + d0 |])
         info.accesses)
  in
  let write = Sanitizer.writer sl in
  fun x ->
    Array.iter (fun r -> r x) readers;
    write [| x |];
    update x

let sanitize_update2 sl spec ~inputs update =
  let info = Analysis.of_spec spec in
  let readers =
    Array.of_list
      (List.map
         (fun (a : Expr.access) ->
           let chk = Sanitizer.reader sl inputs.(a.field) in
           let d0 = a.offsets.(0) and d1 = a.offsets.(1) in
           fun y x -> chk [| y + d0; x + d1 |])
         info.accesses)
  in
  let write = Sanitizer.writer sl in
  fun y x ->
    Array.iter (fun r -> r y x) readers;
    write [| y; x |];
    update y x

let sanitize_update3 sl spec ~inputs update =
  let info = Analysis.of_spec spec in
  let readers =
    Array.of_list
      (List.map
         (fun (a : Expr.access) ->
           let chk = Sanitizer.reader sl inputs.(a.field) in
           let d0 = a.offsets.(0)
           and d1 = a.offsets.(1)
           and d2 = a.offsets.(2) in
           fun z y x -> chk [| z + d0; y + d1; x + d2 |])
         info.accesses)
  in
  let write = Sanitizer.writer sl in
  fun z y x ->
    Array.iter (fun r -> r z y x) readers;
    write [| z; y; x |];
    update z y x

let run_region ?trace ?sanitize ?(check = true) ?(config = Config.default)
    ?vec_unit spec ~inputs ~output ~lo ~hi =
  let dims = Grid.dims output in
  if check then begin
    let ds = ref [] in
    Array.iteri
      (fun i g ->
        if Grid.dims g <> dims then
          ds :=
            D.errorf ~code:"YS409" "input field %d is %s but the output is %s"
              i
              (dims_str (Grid.dims g))
              (dims_str dims)
            :: !ds)
      inputs;
    Lint.gate ~context:"Sweep.run_region" (List.rev !ds);
    check_region ~dims ~lo ~hi
  end;
  let rank = Array.length dims in
  let fold =
    match vec_unit with
    | Some u ->
        if Array.length u <> rank then invalid_arg "Sweep: vec_unit rank";
        u
    | None -> Config.fold_extents config ~rank
  in
  let block = Config.block_extents config ~dims in
  let nt = config.Config.streaming_stores in
  let points = ref 0 and vec_units = ref 0 and rows = ref 0 and blocks = ref 0 in
  (match rank with
  | 1 ->
      let update = make_update1 spec ~inputs ~output ~trace ~nt in
      let update =
        match sanitize with
        | None -> update
        | Some sl -> sanitize_update1 sl spec ~inputs update
      in
      let bx = block.(0) in
      let xb = ref lo.(0) in
      while !xb < hi.(0) do
        let xe = min hi.(0) (!xb + bx) in
        incr blocks;
        incr rows;
        for x = !xb to xe - 1 do
          update x
        done;
        points := !points + (xe - !xb);
        vec_units := !vec_units + units_of_box [| xe - !xb |] fold;
        xb := xe
      done
  | 2 ->
      (* Block x (dim 1), stream y (dim 0) inside each block. *)
      let update = make_update2 spec ~inputs ~output ~trace ~nt in
      let update =
        match sanitize with
        | None -> update
        | Some sl -> sanitize_update2 sl spec ~inputs update
      in
      let bx = block.(1) in
      let xb = ref lo.(1) in
      while !xb < hi.(1) do
        let xe = min hi.(1) (!xb + bx) in
        incr blocks;
        for y = lo.(0) to hi.(0) - 1 do
          incr rows;
          for x = !xb to xe - 1 do
            update y x
          done
        done;
        let ny = hi.(0) - lo.(0) and nx = xe - !xb in
        points := !points + (ny * nx);
        vec_units := !vec_units + units_of_box [| ny; nx |] fold;
        xb := xe
      done
  | _ ->
      (* Block y and x (dims 1, 2), stream z (dim 0) inside each block
         column. *)
      let update = make_update3 spec ~inputs ~output ~trace ~nt in
      let update =
        match sanitize with
        | None -> update
        | Some sl -> sanitize_update3 sl spec ~inputs update
      in
      let by = block.(1) and bx = block.(2) in
      let yb = ref lo.(1) in
      while !yb < hi.(1) do
        let ye = min hi.(1) (!yb + by) in
        let xb = ref lo.(2) in
        while !xb < hi.(2) do
          let xe = min hi.(2) (!xb + bx) in
          incr blocks;
          for z = lo.(0) to hi.(0) - 1 do
            for y = !yb to ye - 1 do
              incr rows;
              for x = !xb to xe - 1 do
                update z y x
              done
            done
          done;
          let nz = hi.(0) - lo.(0) and ny = ye - !yb and nx = xe - !xb in
          points := !points + (nz * ny * nx);
          vec_units := !vec_units + units_of_box [| nz; ny; nx |] fold;
          xb := xe
        done;
        yb := ye
      done);
  { points = !points; vec_units = !vec_units; rows = !rows; blocks = !blocks }

let run_sequential ?trace ?sanitize ?check ?config ?vec_unit spec ~inputs
    ~output =
  let dims = Grid.dims output in
  let lo = Array.map (fun _ -> 0) dims in
  run_region ?trace ?sanitize ?check ?config ?vec_unit spec ~inputs ~output
    ~lo ~hi:dims

(* Domain-parallel sweep. The interior is split along the blocked
   dimension (dim 0 for rank 1, dim 1 — x or y — otherwise) at block
   boundaries, so every slice is a whole number of block columns:
   the union of the slices' loop structures is exactly the sequential
   one, making the returned stats bit-identical to [run_sequential]
   and the written output regions disjoint. Unblocked configs have a
   single block column and run sequentially — spatial blocking is what
   creates the parallelism, exactly as it creates the per-thread
   partition on the modelled machine. *)
let run ?pool ?trace ?sanitize ?(check = true) ?config ?vec_unit spec ~inputs
    ~output =
  let cfg = match config with Some c -> c | None -> Config.default in
  (* The schedule-legality gate: halo sufficiency, aliasing, layout and
     extent agreement are decided *before* the sweep touches memory.
     [check:false] bypasses it (the sanitizer's adversarial mode). *)
  if check then
    Lint.gate ~context:"Sweep.run"
      (Schedule_lint.grids (Analysis.of_spec spec) cfg ~inputs ~output);
  let pass =
    match sanitize with
    | None -> None
    | Some san ->
        Array.iter (fun g -> Sanitizer.register san g) inputs;
        Sanitizer.register san output;
        Sanitizer.check_fold san ~fold:cfg.Config.fold output;
        Array.iter (Sanitizer.check_fold san ~fold:cfg.Config.fold) inputs;
        Some (Sanitizer.begin_sweep san ~inputs ~output)
  in
  let slice_of s = Option.map (fun p -> Sanitizer.slice p s) pass in
  let stats =
    match pool with
    | None ->
        run_sequential ?trace ?sanitize:(slice_of 0) ~check:false ?config
          ?vec_unit spec ~inputs ~output
    | Some pool ->
      let dims = Grid.dims output in
      let rank = Array.length dims in
      let block = Config.block_extents cfg ~dims in
      let pd = if rank = 1 then 0 else 1 in
      let bsize = block.(pd) in
      let nblocks = ceil_div dims.(pd) bsize in
      let nslices = min (Pool.size pool) nblocks in
      if nslices < 2 then
        run_sequential ?trace ?sanitize:(slice_of 0) ~check:false ?config
          ?vec_unit spec ~inputs ~output
      else begin
        let bounds s =
          (* Slice [s] owns block columns [nblocks*s/nslices,
             nblocks*(s+1)/nslices) along the partition dimension. *)
          let b0 = nblocks * s / nslices and b1 = nblocks * (s + 1) / nslices in
          let lo = Array.make rank 0 and hi = Array.copy dims in
          lo.(pd) <- b0 * bsize;
          hi.(pd) <- min dims.(pd) (b1 * bsize);
          (lo, hi)
        in
        let out = Array.make nslices zero_stats in
        (match trace with
        | None ->
            Pool.parallel_for ~chunk:1 pool ~n:nslices (fun s ->
                let lo, hi = bounds s in
                out.(s) <-
                  run_region ?sanitize:(slice_of s) ~check:false ?config
                    ?vec_unit spec ~inputs ~output ~lo ~hi)
        | Some h ->
            (* Each slice simulates against a private clone of the shared
               hierarchy's current state, counting only its own events;
               the clones' counters are merged at the barrier and the last
               slice's contents adopted (the nearest sequential-end
               state). Slice boundaries depend only on the pool width, so
               the merged counts are deterministic for a given width. *)
            let clones =
              Array.init nslices (fun _ ->
                  let c = Hierarchy.clone h in
                  Hierarchy.reset_counters c;
                  c)
            in
            Pool.parallel_for ~chunk:1 pool ~n:nslices (fun s ->
                let lo, hi = bounds s in
                out.(s) <-
                  run_region ~trace:clones.(s) ?sanitize:(slice_of s)
                    ~check:false ?config ?vec_unit spec ~inputs ~output ~lo
                    ~hi);
            Array.iter (fun c -> Hierarchy.merge_counters ~into:h c) clones;
            Hierarchy.adopt_contents ~into:h clones.(nslices - 1));
        Array.fold_left add_stats zero_stats out
      end
  in
  (match pass with Some p -> Sanitizer.end_sweep p | None -> ());
  stats
