module Grid = Yasksite_grid.Grid
module Hierarchy = Yasksite_cachesim.Hierarchy
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Compile = Yasksite_stencil.Compile
module Plan = Yasksite_stencil.Plan
module Lower = Yasksite_stencil.Lower
module Codegen = Yasksite_stencil.Codegen
module Expr = Yasksite_stencil.Expr
module Config = Yasksite_ecm.Config
module Pool = Yasksite_util.Pool
module Lint = Yasksite_lint.Lint
module Schedule_lint = Yasksite_lint.Schedule_lint
module D = Yasksite_lint.Diagnostic

type stats = { points : int; vec_units : int; rows : int; blocks : int }

let zero_stats = { points = 0; vec_units = 0; rows = 0; blocks = 0 }

let add_stats a b =
  { points = a.points + b.points;
    vec_units = a.vec_units + b.vec_units;
    rows = a.rows + b.rows;
    blocks = a.blocks + b.blocks }

(* ---- execution backends ---- *)

type backend = Plan_backend | Closure_backend | Codegen_backend

let backend_override = ref None

let set_default_backend b = backend_override := Some b

let clear_default_backend () = backend_override := None

let legal_backends =
  [ ("plan", Plan_backend);
    ("closure", Closure_backend);
    ("codegen", Codegen_backend) ]

let backend_of_string s =
  match List.assoc_opt (String.lowercase_ascii (String.trim s)) legal_backends with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown backend %S: legal backends are %s" s
           (String.concat ", "
              (List.map (fun (n, _) -> Printf.sprintf "%S" n) legal_backends)))

(* Precedence: a [set_default_backend] override (the CLI applies
   --backend through it) beats the YASKSITE_BACKEND environment
   variable, which beats the built-in plan default. An unrecognised
   environment value fails eagerly here — the first sweep (or the
   CLI's startup validation) reports the one-line error instead of a
   late, unhelpful failure mid-run. *)
let default_backend () =
  match !backend_override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "YASKSITE_BACKEND" with
      | None | Some "" -> Plan_backend
      | Some s -> (
          match backend_of_string s with
          | Ok b -> b
          | Error msg -> invalid_arg ("Sweep: YASKSITE_BACKEND: " ^ msg)))

let backend_name = function
  | Plan_backend -> "plan"
  | Closure_backend -> "closure"
  | Codegen_backend -> "codegen"

let ceil_div a b = (a + b - 1) / b

(* Work units of a box of given extents under a fold shape. *)
let units_of_box extents fold =
  let acc = ref 1 in
  Array.iteri (fun i e -> acc := !acc * ceil_div e fold.(i)) extents;
  !acc

let dims_str a =
  String.concat "x" (Array.to_list (Array.map string_of_int a))

(* Structural validation of an [?extend] argument — a programmer error,
   like a bad [vec_unit], not a schedule-legality finding. *)
let check_extend ~rank = function
  | None -> ()
  | Some e ->
      if Array.length e <> rank then invalid_arg "Sweep: extend rank";
      if Array.exists (fun x -> x < 0) e then
        invalid_arg "Sweep: negative extend"

let is_extended = function
  | None -> false
  | Some e -> Array.exists (fun x -> x > 0) e

(* Precondition failures surface as lint diagnostics through
   [Lint.Gate_error] (not bare [Invalid_argument]) so the CLI maps them
   to exit 1 consistently with every other gate. With [?extend] the
   legal space widens to [[-ext, dims+ext)] — the extension lives in
   the grids' halos (gated separately). *)
let check_region ~extend ~dims ~lo ~hi =
  let rank = Array.length dims in
  let ext i = match extend with Some e -> e.(i) | None -> 0 in
  let ds =
    if Array.length lo <> rank || Array.length hi <> rank then
      [ D.errorf ~code:"YS409"
          "region rank %d does not match the iteration space %s"
          (Array.length lo) (dims_str dims) ]
    else begin
      let bad = ref [] in
      Array.iteri
        (fun i d ->
          if lo.(i) < -ext i || hi.(i) > d + ext i || lo.(i) > hi.(i) then
            bad :=
              D.errorf ~code:"YS406"
                "region [%s..%s) leaves the %siteration space %s in \
                 dimension %d"
                (dims_str lo) (dims_str hi)
                (if is_extended extend then "extended " else "")
                (dims_str dims) i
              :: !bad)
        dims;
      List.rev !bad
    end
  in
  Lint.gate ~context:"Sweep.run_region" ds

(* All ranks route through the plan driver for addressing: row bases are
   set once per row ([Lower.set_row]) and the inner x-loop walks the
   row through the bound's precomputed last-dimension tables. The
   closure backend only swaps the evaluator — tracing, sanitizing and
   output addressing are shared, which is what keeps the two backends'
   traces and traps identical by construction. *)

let run_region ?backend ?bound ?trace ?sanitize ?(check = true)
    ?(config = Config.default) ?vec_unit ?extend spec ~inputs ~output ~lo ~hi =
  let dims = Grid.dims output in
  check_extend ~rank:(Array.length dims) extend;
  if check then begin
    let ds = ref [] in
    Array.iteri
      (fun i g ->
        if Grid.dims g <> dims then
          ds :=
            D.errorf ~code:"YS409" "input field %d is %s but the output is %s"
              i
              (dims_str (Grid.dims g))
              (dims_str dims)
            :: !ds)
      inputs;
    Lint.gate ~context:"Sweep.run_region" (List.rev !ds);
    check_region ~extend ~dims ~lo ~hi;
    (* An extended region reads and writes into the halos; the full
       grids gate proves they are wide enough before any unchecked
       table access. *)
    if is_extended extend then
      Lint.gate ~context:"Sweep.run_region"
        (Schedule_lint.grids ?extend (Analysis.of_spec spec) config ~inputs
           ~output)
  end;
  let rank = Array.length dims in
  let fold =
    match vec_unit with
    | Some u ->
        if Array.length u <> rank then invalid_arg "Sweep: vec_unit rank";
        u
    | None -> Config.fold_extents config ~rank
  in
  let block = Config.block_extents config ~dims in
  let nt = config.Config.streaming_stores in
  let backend = match backend with Some b -> b | None -> default_backend () in
  (* On the closure backend the staged compiler runs first, so its
     diagnostics ([Compile: ...], Unresolved_coefficient) keep surfacing
     exactly as before the plan driver existed. *)
  let closure_eval =
    match backend with
    | Plan_backend | Codegen_backend -> None
    | Closure_backend ->
        Some
          (match rank with
          | 1 ->
              let f = Compile.compile1 spec ~inputs in
              fun (_ : int array) x -> f x
          | 2 ->
              let f = Compile.compile2 spec ~inputs in
              fun (outer : int array) x -> f outer.(0) x
          | _ ->
              let f = Compile.compile3 spec ~inputs in
              fun (outer : int array) x -> f outer.(0) outer.(1) x)
  in
  let bound =
    match bound with
    | Some b -> b
    | None -> Lower.bind (Lower.lower spec) ~inputs ~output
  in
  let drv = Lower.driver bound in
  let accesses = (Lower.plan_of bound).Plan.accesses in
  let nslots = Array.length accesses in
  (* The codegen backend resolves a compiled kernel for this plan's
     specialization (memoized; compiled and store-cached on first
     sight). [None] — unavailable toolchain, rejected or unsupported
     plan — falls back to the plan interpreter below, so the sweep
     never fails for codegen-specific reasons. *)
  let kern =
    match backend with
    | Codegen_backend ->
        Native.kern_for ~plan:(Lower.plan_of bound) ~inputs ~output
    | Plan_backend | Closure_backend -> None
  in
  (* Shadow checks run per point *before* any evaluation or address
     computation, so an out-of-bounds trap fires ahead of the driver's
     unchecked table access. Scratch coordinate arrays are safe to
     reuse: the sanitizer copies on record. *)
  let sanitize_point =
    match sanitize with
    | None -> None
    | Some sl ->
        let checkers =
          Array.map
            (fun (a : Expr.access) -> Sanitizer.reader sl inputs.(a.field))
            accesses
        in
        let write = Sanitizer.writer sl in
        let rc = Array.make rank 0 and wc = Array.make rank 0 in
        Some
          (fun (outer : int array) x ->
            for s = 0 to nslots - 1 do
              let off = accesses.(s).Expr.offsets in
              for i = 0 to rank - 2 do
                rc.(i) <- outer.(i) + off.(i)
              done;
              rc.(rank - 1) <- x + off.(rank - 1);
              checkers.(s) rc
            done;
            for i = 0 to rank - 2 do
              wc.(i) <- outer.(i)
            done;
            wc.(rank - 1) <- x;
            write wc)
  in
  let row_body =
    match (closure_eval, trace, sanitize_point, kern) with
    | None, None, None, Some k ->
        (* the generated hot path: the compiled unit's own row loop,
           driven by the same bound storage and row bases as the
           interpreter's *)
        let rw = Lower.raw_of bound in
        let row = Lower.driver_row drv in
        fun (_ : int array) xb xe ->
          k.Codegen.row rw.Lower.r_slot_data rw.Lower.r_slot_tab
            rw.Lower.r_out_data rw.Lower.r_out_tab row
            (Lower.driver_out_row drv) xb xe
    | None, None, None, None ->
        (* the hot path: one monomorphic loop inside the driver *)
        fun (_ : int array) xb xe -> Lower.store_row drv xb xe
    | _ ->
        let eval =
          match (closure_eval, kern) with
          | Some f, _ -> f
          | None, Some k ->
              (* instrumented codegen runs: the generated point
                 evaluator under the driver's addressing, so traces,
                 traps and output placement stay shared with the
                 other backends *)
              let rw = Lower.raw_of bound in
              let row = Lower.driver_row drv in
              fun (_ : int array) x ->
                k.Codegen.point rw.Lower.r_slot_data rw.Lower.r_slot_tab row x
          | None, None -> fun (_ : int array) x -> Lower.eval drv x
        in
        let traced =
          match trace with
          | None -> None
          | Some h ->
              let store =
                if nt then Hierarchy.write_nt h else Hierarchy.write h
              in
              Some (h, store)
        in
        fun outer xb xe ->
          for x = xb to xe - 1 do
            (match sanitize_point with Some f -> f outer x | None -> ());
            match traced with
            | Some (h, store) ->
                for s = 0 to nslots - 1 do
                  Hierarchy.read h ~addr:(Lower.read_addr drv s x)
                done;
                let v = eval outer x in
                let o = Lower.out_offset drv x in
                store ~addr:(Lower.out_addr drv x);
                Grid.unsafe_set_flat output o v
            | None ->
                let v = eval outer x in
                Grid.unsafe_set_flat output (Lower.out_offset drv x) v
          done
  in
  let points = ref 0 and vec_units = ref 0 and rows = ref 0 and blocks = ref 0 in
  (match rank with
  | 1 ->
      let outer = [||] in
      Lower.set_row drv outer;
      let bx = block.(0) in
      let xb = ref lo.(0) in
      while !xb < hi.(0) do
        let xe = min hi.(0) (!xb + bx) in
        incr blocks;
        incr rows;
        row_body outer !xb xe;
        points := !points + (xe - !xb);
        vec_units := !vec_units + units_of_box [| xe - !xb |] fold;
        xb := xe
      done
  | 2 ->
      (* Block x (dim 1), stream y (dim 0) inside each block. *)
      let outer = Array.make 1 0 in
      let bx = block.(1) in
      let xb = ref lo.(1) in
      while !xb < hi.(1) do
        let xe = min hi.(1) (!xb + bx) in
        incr blocks;
        for y = lo.(0) to hi.(0) - 1 do
          incr rows;
          outer.(0) <- y;
          Lower.set_row drv outer;
          row_body outer !xb xe
        done;
        let ny = hi.(0) - lo.(0) and nx = xe - !xb in
        points := !points + (ny * nx);
        vec_units := !vec_units + units_of_box [| ny; nx |] fold;
        xb := xe
      done
  | _ ->
      (* Block y and x (dims 1, 2), stream z (dim 0) inside each block
         column. *)
      let outer = Array.make 2 0 in
      let by = block.(1) and bx = block.(2) in
      let yb = ref lo.(1) in
      while !yb < hi.(1) do
        let ye = min hi.(1) (!yb + by) in
        let xb = ref lo.(2) in
        while !xb < hi.(2) do
          let xe = min hi.(2) (!xb + bx) in
          incr blocks;
          for z = lo.(0) to hi.(0) - 1 do
            outer.(0) <- z;
            for y = !yb to ye - 1 do
              incr rows;
              outer.(1) <- y;
              Lower.set_row drv outer;
              row_body outer !xb xe
            done
          done;
          let nz = hi.(0) - lo.(0) and ny = ye - !yb and nx = xe - !xb in
          points := !points + (nz * ny * nx);
          vec_units := !vec_units + units_of_box [| nz; ny; nx |] fold;
          xb := xe
        done;
        yb := ye
      done);
  { points = !points; vec_units = !vec_units; rows = !rows; blocks = !blocks }

let run_sequential ?backend ?bound ?trace ?sanitize ?check ?config ?vec_unit
    ?extend spec ~inputs ~output =
  let dims = Grid.dims output in
  let lo, hi =
    match extend with
    | None -> (Array.map (fun _ -> 0) dims, dims)
    | Some e ->
        ( Array.map (fun x -> -x) e,
          Array.mapi (fun i d -> d + e.(i)) dims )
  in
  run_region ?backend ?bound ?trace ?sanitize ?check ?config ?vec_unit ?extend
    spec ~inputs ~output ~lo ~hi

(* Domain-parallel sweep. The interior is split along the blocked
   dimension (dim 0 for rank 1, dim 1 — x or y — otherwise) at block
   boundaries, so every slice is a whole number of block columns:
   the union of the slices' loop structures is exactly the sequential
   one, making the returned stats bit-identical to [run_sequential]
   and the written output regions disjoint. Unblocked configs have a
   single block column and run sequentially — spatial blocking is what
   creates the parallelism, exactly as it creates the per-thread
   partition on the modelled machine. *)
let run ?pool ?backend ?plan ?bound ?trace ?sanitize ?(check = true) ?config
    ?vec_unit ?extend spec ~inputs ~output =
  let cfg = match config with Some c -> c | None -> Config.default in
  check_extend ~rank:(Grid.rank output) extend;
  (* The sanitizer's shadow memory models the interior write set; an
     extended sweep deliberately writes into the halos, which the shadow
     pass would (correctly, for a plain sweep) trap. The combination is
     a caller error, not a schedule finding. *)
  if is_extended extend && sanitize <> None then
    invalid_arg "Sweep: sanitize is not supported on extended sweeps";
  (* The schedule-legality gate: halo sufficiency, aliasing, layout and
     extent agreement are decided *before* the sweep touches memory.
     [check:false] bypasses it (the sanitizer's adversarial mode). *)
  if check then
    Lint.gate ~context:"Sweep.run"
      (Schedule_lint.grids ?extend (Analysis.of_spec spec) cfg ~inputs ~output);
  let backend = match backend with Some b -> b | None -> default_backend () in
  (* Lower once when the plan backend needs a bound or a certificate
     lookup needs the fingerprint. *)
  let plan =
    match plan with
    | Some _ -> plan
    | None ->
        if backend <> Closure_backend
           || (sanitize <> None && check && Cert.enabled ())
        then Some (Lower.lower spec)
        else None
  in
  (* Certified fast path: a sanitized, gate-checked sweep whose
     (plan x layout x halo x blocking) tuple holds a safety certificate
     skips the per-point shadow checks — the certificate proves no
     access can escape and the partition covers by construction. The
     pass is still opened and bulk-committed so version bookkeeping
     composes with later checked passes. [check:false] (the
     adversarial mode) never takes the fast path. *)
  let certified =
    match (sanitize, plan) with
    | Some _, Some p when check && Cert.enabled () ->
        let hit = Cert.mem (Cert.key ~plan:p ~inputs ~output ~config:cfg) in
        if hit then Cert.record_fast_path ();
        hit
    | _ -> false
  in
  let pass =
    match sanitize with
    | None -> None
    | Some san ->
        Array.iter (fun g -> Sanitizer.register san g) inputs;
        Sanitizer.register san output;
        Sanitizer.check_fold san ~fold:cfg.Config.fold output;
        Array.iter (Sanitizer.check_fold san ~fold:cfg.Config.fold) inputs;
        Some (Sanitizer.begin_sweep san ~inputs ~output)
  in
  (* Bind once; the bound is immutable and shared by every pool slice
     (each slice allocates its own driver). The closure backend binds
     inside [run_region], after the staged compiler's own checks. *)
  let bound =
    match (backend, bound) with
    | _, Some b -> Some b
    | Closure_backend, None -> None
    | (Plan_backend | Codegen_backend), None ->
        let p = match plan with Some p -> p | None -> Lower.lower spec in
        Some (Lower.bind p ~inputs ~output)
  in
  let slice_of s =
    if certified then None
    else Option.map (fun p -> Sanitizer.slice p s) pass
  in
  let stats =
    match pool with
    | None ->
        run_sequential ~backend ?bound ?trace ?sanitize:(slice_of 0)
          ~check:false ?config ?vec_unit ?extend spec ~inputs ~output
    | Some pool ->
      let dims = Grid.dims output in
      let rank = Array.length dims in
      let ext =
        match extend with Some e -> e | None -> Array.make rank 0
      in
      let block = Config.block_extents cfg ~dims in
      let pd = if rank = 1 then 0 else 1 in
      let bsize = block.(pd) in
      let nblocks = ceil_div (dims.(pd) + (2 * ext.(pd))) bsize in
      let nslices = min (Pool.size pool) nblocks in
      if nslices < 2 then
        run_sequential ~backend ?bound ?trace ?sanitize:(slice_of 0)
          ~check:false ?config ?vec_unit ?extend spec ~inputs ~output
      else begin
        let bounds s =
          (* Slice [s] owns block columns [nblocks*s/nslices,
             nblocks*(s+1)/nslices) along the partition dimension.
             Blocks start at the (possibly extended) low edge, exactly
             where the sequential sweep starts them, so the union of
             the slices' loop structures stays the sequential one. *)
          let b0 = nblocks * s / nslices and b1 = nblocks * (s + 1) / nslices in
          let lo = Array.map (fun x -> -x) ext
          and hi = Array.mapi (fun i d -> d + ext.(i)) dims in
          lo.(pd) <- -ext.(pd) + (b0 * bsize);
          hi.(pd) <- min (dims.(pd) + ext.(pd)) (-ext.(pd) + (b1 * bsize));
          (lo, hi)
        in
        let out = Array.make nslices zero_stats in
        (match trace with
        | None ->
            Pool.parallel_for ~chunk:1 pool ~n:nslices (fun s ->
                let lo, hi = bounds s in
                out.(s) <-
                  run_region ~backend ?bound ?sanitize:(slice_of s)
                    ~check:false ?config ?vec_unit spec ~inputs ~output ~lo
                    ~hi)
        | Some h ->
            (* Each slice simulates against a private clone of the shared
               hierarchy's current state, counting only its own events;
               the clones' counters are merged at the barrier and the last
               slice's contents adopted (the nearest sequential-end
               state). Slice boundaries depend only on the pool width, so
               the merged counts are deterministic for a given width. *)
            let clones =
              Array.init nslices (fun _ ->
                  let c = Hierarchy.clone h in
                  Hierarchy.reset_counters c;
                  c)
            in
            Pool.parallel_for ~chunk:1 pool ~n:nslices (fun s ->
                let lo, hi = bounds s in
                out.(s) <-
                  run_region ~backend ?bound ~trace:clones.(s)
                    ?sanitize:(slice_of s) ~check:false ?config ?vec_unit
                    spec ~inputs ~output ~lo ~hi);
            Array.iter (fun c -> Hierarchy.merge_counters ~into:h c) clones;
            Hierarchy.adopt_contents ~into:h clones.(nslices - 1));
        Array.fold_left add_stats zero_stats out
      end
  in
  (match pass with
  | Some p ->
      if certified then begin
        let dims = Grid.dims output in
        Sanitizer.commit_pass p ~lo:(Array.map (fun _ -> 0) dims) ~hi:dims
      end;
      Sanitizer.end_sweep p
  | None -> ());
  stats
