(* Safety-certificate store: the bridge between the static plan
   verifier (Lint.Plan_lint, YS5xx) and the engine's execution paths.

   A certificate records that one (plan × layout × halo × blocking)
   tuple passed the full certification pipeline — the YS5xx abstract
   interpretation plus the YS511 traced-traffic cross-validation (see
   Certify). Keys are content-addressed off the plan's existing
   fingerprint plus the grid signatures (layout and halo — NOT the
   extents: the bounds proof is |offset| <= halo per dimension, which
   is extent-independent, so one certificate covers every problem
   size) and the config's block/fold. Sweep and Wavefront consult the
   store when a sanitized, gate-checked run starts: a hit selects the
   unchecked fast path (per-point shadow checks skipped, shadow state
   bulk-committed); a miss keeps today's fully checked path.

   YASKSITE_NO_CERT=1 force-disables the store (lookups miss, inserts
   drop) so CI can keep the checked path exercised end to end. *)

module Grid = Yasksite_grid.Grid
module Plan = Yasksite_stencil.Plan
module Config = Yasksite_ecm.Config

type entry = {
  key : string;
  fingerprint : string;  (* the certified plan's content digest *)
  loads_per_point : int;  (* certified traffic: reads per update *)
  stores_per_point : int;  (* certified traffic: writes per update *)
  flops_per_point : int;
}

let enabled () =
  match Sys.getenv_opt "YASKSITE_NO_CERT" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let dims_str a =
  String.concat "x" (Array.to_list (Array.map string_of_int a))

let grid_sig g =
  let layout =
    match Grid.layout g with
    | Grid.Linear -> "lin"
    | Grid.Folded f -> "fold" ^ dims_str f
  in
  Printf.sprintf "%s,h%s" layout (dims_str (Grid.halo g))

let key ~(plan : Plan.t) ~inputs ~output ~(config : Config.t) =
  let b = Buffer.create 128 in
  Buffer.add_string b plan.Plan.fingerprint;
  Array.iter
    (fun g ->
      Buffer.add_string b "|i:";
      Buffer.add_string b (grid_sig g))
    inputs;
  Buffer.add_string b "|o:";
  Buffer.add_string b (grid_sig output);
  Buffer.add_string b
    (match config.Config.block with
    | None -> "|b:_"
    | Some bl -> "|b:" ^ dims_str bl);
  Buffer.add_string b
    (match config.Config.fold with
    | None -> "|f:_"
    | Some f -> "|f:" ^ dims_str f);
  Digest.to_hex (Digest.string (Buffer.contents b))

let store : (string, entry) Hashtbl.t = Hashtbl.create 32

let mutex = Mutex.create ()

let fast_hits = Atomic.make 0

(* Optional persistent backing (namespace "cert-v1"): lookups that miss
   the process-local table consult it, inserts write through, so a later
   process starts certified. Certification is re-derivable, so a store
   that degrades (or was corrupted and quarantined) only costs a re-run
   of the checked path — never correctness. *)

let persistent : Yasksite_store.Store.t option ref = ref None

let set_store s = Mutex.protect mutex (fun () -> persistent := s)

let store_ns = "cert-v1"

let encode e =
  Printf.sprintf "%s %d %d %d" e.fingerprint e.loads_per_point
    e.stores_per_point e.flops_per_point

let decode ~key s =
  match String.split_on_char ' ' s with
  | [ fingerprint; l; st; f ] -> (
      try
        Some
          { key;
            fingerprint;
            loads_per_point = int_of_string l;
            stores_per_point = int_of_string st;
            flops_per_point = int_of_string f }
      with Failure _ -> None)
  | _ -> None

let lookup k =
  if not (enabled ()) then None
  else
    match Mutex.protect mutex (fun () -> Hashtbl.find_opt store k) with
    | Some _ as hit -> hit
    | None -> (
        match Mutex.protect mutex (fun () -> !persistent) with
        | None -> None
        | Some s -> (
            match Yasksite_store.Store.get s ~ns:store_ns ~key:k with
            | None -> None
            | Some payload -> (
                match decode ~key:k payload with
                | None -> None
                | Some e ->
                    Mutex.protect mutex (fun () ->
                        Hashtbl.replace store k e);
                    Some e)))

let mem k = lookup k <> None

let insert e =
  if enabled () then begin
    Mutex.protect mutex (fun () -> Hashtbl.replace store e.key e);
    match Mutex.protect mutex (fun () -> !persistent) with
    | None -> ()
    | Some s -> Yasksite_store.Store.put s ~ns:store_ns ~key:e.key (encode e)
  end

let size () = Mutex.protect mutex (fun () -> Hashtbl.length store)

(* ------------------------------------------------------------------ *)
(* Native translation certificates (YS6xx).

   A native certificate records that one emitted kernel source passed
   the YS6xx translation validator (Lint.Native) under one validator
   version. The key is derived from the codegen cache key plus the
   validator version (so a rule change re-proves everything); the
   payload is the digest of the exact source that was validated, so a
   certificate can never bless a source it was not computed from.
   Shares the "cert-v1" namespace of the persistent backing: one
   store schema carries both safety and translation proofs. *)

let native_store : (string, string) Hashtbl.t = Hashtbl.create 32

let native_key ~ckey ~version = Printf.sprintf "native:%s:v%d" ckey version

let native_lookup k =
  if not (enabled ()) then None
  else
    match Mutex.protect mutex (fun () -> Hashtbl.find_opt native_store k) with
    | Some _ as hit -> hit
    | None -> (
        match Mutex.protect mutex (fun () -> !persistent) with
        | None -> None
        | Some s -> (
            match Yasksite_store.Store.get s ~ns:store_ns ~key:k with
            | None -> None
            | Some digest ->
                Mutex.protect mutex (fun () ->
                    Hashtbl.replace native_store k digest);
                Some digest))

let native_insert k ~digest =
  if enabled () then begin
    Mutex.protect mutex (fun () -> Hashtbl.replace native_store k digest);
    match Mutex.protect mutex (fun () -> !persistent) with
    | None -> ()
    | Some s -> Yasksite_store.Store.put s ~ns:store_ns ~key:k digest
  end

let native_size () = Mutex.protect mutex (fun () -> Hashtbl.length native_store)

let clear () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset store;
      Hashtbl.reset native_store);
  Atomic.set fast_hits 0

let record_fast_path () = Atomic.incr fast_hits

let fast_path_hits () = Atomic.get fast_hits
