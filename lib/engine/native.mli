(** Build, load and cache the kernels {!Yasksite_stencil.Codegen}
    emits — the machine half of the [Codegen_backend].

    A kernel is resolved per specialization key (plan fingerprint ×
    layout/pad variant): first from a process-local memo, then from the
    persistent store (namespace ["kern-v1"], compiled [.cmxs] bytes
    keyed by specialization key × compiler version × flags — so a
    kernel is compiled once per machine, ever), and only then by an
    out-of-process [ocamlfind ocamlopt -shared] build whose result is
    written through to the store and loaded with
    [Dynlink.loadfile_private].

    {b Degraded mode.} Resolution never fails a pipeline: a missing
    toolchain, bytecode host, YS5xx verifier rejection, unsupported
    plan body, compile/load error or read-only store all yield [None]
    (callers fall back to the plan interpreter) after a single
    [stderr] warning line per process. Failures are memoized per key;
    a corrupt or stale store payload is detected by the failing load
    and repaired by recompilation.

    Like {!Cert}, the persistent backing is opt-in ([{!set_store}]):
    library use stays hermetic until the CLI attaches the default
    store. *)

type stats = {
  compiles : int;  (** out-of-process compiler invocations *)
  compile_errors : int;
  store_hits : int;  (** kernels revived from the persistent store *)
  loads : int;  (** successful Dynlink loads *)
  load_errors : int;  (** failed loads (corrupt payloads recompile) *)
  fallbacks : int;  (** resolutions that fell back to the interpreter *)
  gate_rejections : int;  (** plans the YS5xx verifier refused *)
  validations : int;  (** YS6xx translation-validator runs *)
  validator_rejections : int;
      (** emitted sources the YS6xx validator refused (each also falls
          back to the interpreter) *)
}

val store_ns : string
(** ["kern-v1"] — the store schema holding compiled kernel bytes. *)

val kern_for :
  plan:Yasksite_stencil.Plan.t ->
  inputs:Yasksite_grid.Grid.t array ->
  output:Yasksite_grid.Grid.t ->
  Yasksite_stencil.Codegen.kern option
(** The compiled kernel for [plan] specialized to these grids' variant,
    or [None] when the codegen path is unavailable for any reason (see
    the degraded-mode contract above). Safe to call from pool slices;
    resolution is serialized, memo hits are a table lookup. *)

val available : unit -> bool
(** Whether kernels can be built and loaded here (native Dynlink and a
    working [ocamlfind ocamlopt]). Probed once per process. *)

val set_store : Yasksite_store.Store.t option -> unit
(** Attach ([Some s]) or detach ([None], the initial state) the
    persistent backing for compiled kernels. *)

(** {1 Translation validation (YS6xx)}

    Every resolution — memo miss, store revival, fresh compile — runs
    the emitted source through {!Yasksite_lint.Native_lint} before any
    compiler or [Dynlink] sees it; a rejection degrades to the
    interpreter like every other failure. A passing verdict earns a
    native certificate ({!Cert.native_insert}) keyed off the cache key
    and validator version with the source digest as payload, so warm
    paths skip re-proving an unchanged kernel. *)

val set_source_transform : (string -> string) option -> unit
(** Test hook: rewrite the emitted source before validation (and
    compilation). How the suite injects
    {!Yasksite_faults.Miscompile} mutants into the real resolution
    path. [None] (the initial state) disables. Cleared by
    {!reset_for_tests}. *)

(** {1 Stale-payload maintenance}

    [kern-v1] payloads carry a metadata header (codegen ABI, compiler
    version, compile flags). The store key already binds the
    toolchain, so stale entries are unreachable — these helpers let
    store tooling find and drop them. *)

val toolchain_id : unit -> (string * string list) option
(** The probed [(compiler_version, compile_flags)], or [None] when no
    kernel can be built here. *)

val payload_stale : toolchain:(string * string list) option -> string -> bool
(** Whether a raw [kern-v1] payload is stale: headerless (legacy), a
    different codegen ABI, or — when [toolchain] is known — a
    different compiler version or flag set. *)

val stale_kernels : Yasksite_store.Store.t -> string list
(** Store keys of stale [kern-v1] entries under the probed
    toolchain. *)

val gc_stale : Yasksite_store.Store.t -> int
(** Delete every stale [kern-v1] entry; returns how many were
    removed. *)

val stats : unit -> stats
(** Process-wide kernel-cache counters. *)

val stats_json : unit -> string
(** One-line JSON object of {!stats}. *)

val reset_for_tests : unit -> unit
(** Forget everything: memo, counters, the warning latch, the toolchain
    probe and the attached store — so a test can exercise resolution
    under a changed environment ([PATH], private store roots). *)
