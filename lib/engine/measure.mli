(** Measurement harness: the stand-in for running a kernel on real
    silicon and reading hardware counters.

    One representative core's partition of the sweep is executed through
    the trace-driven cache simulator (with shared levels scaled to their
    per-core share), giving {e observed} per-boundary traffic, and the
    executed work stats (vector units including remainders, loop starts,
    block entries) are billed with the machine's port model plus loop
    overheads, giving {e observed} in-core cycles. The two are composed
    like on the real machine (serial or overlapping), and chip-level
    performance applies a bandwidth-contention throttle at the memory
    interface.

    The analytic ECM model ({!Yasksite_ecm.Model}) never sees any of
    these observations — prediction error in the experiments is earned:
    conflict misses, remainder loops, block overheads, halo effects and
    gradual saturation all diverge from the model's idealisations. *)

type t = {
  config : Yasksite_ecm.Config.t;
  dims : int array;
  cycles_per_cl : float;  (** measured single-core cy/CL *)
  t_incore_ol : float;  (** billed arithmetic cycles per CL *)
  t_incore_nol : float;  (** billed L1 load/store cycles per CL *)
  t_data : float array;  (** observed transfer cycles per CL, per boundary *)
  lines_per_cl : float array;  (** observed traffic per CL, per boundary *)
  mem_bytes_per_lup : float;
  lups_core : float;  (** single-core LUP/s *)
  lups_chip : float;  (** LUP/s at [config.threads] with contention *)
  flops_chip : float;
  sim_points : int;  (** lattice updates actually simulated *)
  wall_seconds : float;  (** harness CPU cost (tuning-cost accounting) *)
}

val stencil_sweep :
  ?clock:Yasksite_util.Clock.t ->
  ?backend:Sweep.backend ->
  ?sanitize:bool ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  config:Yasksite_ecm.Config.t ->
  t
(** Measure the steady-state sweep performance of [spec] (coefficients
    must be resolved) at the given grid size and configuration: builds
    the grids in the configured layout, runs a warm-up pass, then
    measures one ping-pong pass (or one wavefront pass of the configured
    depth). Only the representative core's slice is simulated, so the
    cost is independent of the thread count.

    [sanitize] threads every access of the run through a fresh
    fail-fast shadow-memory {!Sanitizer}: a legal schedule measures
    identically (the shadow pass never changes values), an illegal one
    raises {!Sanitizer.Trap} instead of silently measuring garbage.
    When omitted, the default is taken from the [YASKSITE_SANITIZE]
    environment variable (unset, [""] or ["0"] mean off), so CI can run
    an entire suite shadow-checked. *)

val lups_at_threads :
  ?clock:Yasksite_util.Clock.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  config:Yasksite_ecm.Config.t ->
  threads:int ->
  float
(** Convenience: measured chip LUP/s with the config's thread count
    overridden. *)
