(** One stencil sweep over a grid: the execution substrate standing in
    for a YASK-generated kernel.

    The sweep applies the configured schedule — spatial blocking of the
    non-streamed dimensions with the outermost dimension streamed inside
    each block column — and can feed every memory access it performs into
    a {!Yasksite_cachesim.Hierarchy}, which is how "measurements" are
    taken. Results are bit-identical across schedules (verified by the
    property tests): blocking, folding and tracing change only the order
    and observation of operations, never values.

    Three execution {!type-backend}s share this schedule. The default
    [Plan_backend] binds the stencil's kernel plan
    ({!Yasksite_stencil.Lower}) to the grids once and drives row-hoisted,
    table-addressed inner loops with no per-point closure dispatch; the
    legacy [Closure_backend] evaluates the staged closure tree
    ({!Yasksite_stencil.Compile}) per point; [Codegen_backend] runs a
    natively compiled specialization of the plan
    ({!Yasksite_stencil.Codegen} emitted, {!Native} built and cached),
    falling back to the plan interpreter with a one-line warning
    whenever a kernel cannot be resolved (no toolchain, rejected or
    unsupported plan, failed compile). All backends produce
    bit-identical output grids, traces and sanitizer verdicts (the plan
    driver supplies addressing throughout; property-tested) — including
    when driven stage-by-stage by the {!Prog} executor over a
    multi-stage stencil program, under every fusion partition. *)

type stats = {
  points : int;  (** lattice updates performed *)
  vec_units : int;
      (** SIMD work units executed, counting fold-padding waste and
          remainder blocks (what the in-core cycle accounting bills) *)
  rows : int;  (** innermost-loop entries (loop start overhead) *)
  blocks : int;  (** block-column entries *)
}

val zero_stats : stats

val add_stats : stats -> stats -> stats

type backend = Plan_backend | Closure_backend | Codegen_backend

val backend_of_string : string -> (backend, string) result
(** Parse a backend name (case-insensitive, whitespace-trimmed). The
    error is a one-line message listing the legal backends — used for
    eager validation of [YASKSITE_BACKEND] and the CLI's [--backend]. *)

val default_backend : unit -> backend
(** The backend used when none is passed explicitly. Precedence:
    the {!set_default_backend} override (the CLI applies [--backend]
    through it) beats the [YASKSITE_BACKEND] environment variable,
    which beats the built-in plan default. Raises [Invalid_argument]
    with the {!backend_of_string} message on an unrecognised
    environment value — eagerly, at the first consultation. *)

val set_default_backend : backend -> unit
(** Process-wide override of the environment default (the CLI's
    [--backend] flag). *)

val clear_default_backend : unit -> unit
(** Drop the {!set_default_backend} override, restoring environment
    precedence — for tests exercising the precedence chain. *)

val backend_name : backend -> string

val run :
  ?pool:Yasksite_util.Pool.t ->
  ?backend:backend ->
  ?plan:Yasksite_stencil.Plan.t ->
  ?bound:Yasksite_stencil.Lower.bound ->
  ?trace:Yasksite_cachesim.Hierarchy.t ->
  ?sanitize:Sanitizer.t ->
  ?check:bool ->
  ?config:Yasksite_ecm.Config.t ->
  ?vec_unit:int array ->
  ?extend:int array ->
  Yasksite_stencil.Spec.t ->
  inputs:Yasksite_grid.Grid.t array ->
  output:Yasksite_grid.Grid.t ->
  stats
(** [run spec ~inputs ~output] computes one sweep over the interior of
    [output] (whose dims must equal every input's dims). Halos of the
    inputs must have been set by the caller. The output grid may use a
    different layout than the inputs. When [trace] is given, every read
    and the write of each update is issued to the hierarchy in program
    order. The config's [fold] describes the layout the {e caller} gave
    the grids; it does not relayout them. [vec_unit] is the SIMD
    work-unit shape used for [vec_units] accounting (default: the
    config's fold extents; a linear-layout kernel on an 8-lane machine
    would pass [\[|1;1;8|\]]).

    [backend] selects the execution backend (default
    {!default_backend}). On the plan backend, [plan] supplies an
    already-lowered kernel plan (callers that sweep repeatedly lower
    once) and [bound] an already-bound plan for these exact grids —
    both are computed on demand when absent.

    With [pool], the sweep is split along the blocked dimension at
    block boundaries and slices run on the pool's domains. Output
    values and the returned stats are bit-identical to the sequential
    sweep (slices write disjoint regions and cover the same loop
    structure; a shared bound is reused across slices). A traced
    parallel sweep drives one {e clone} of the hierarchy per slice and
    merges their event counts back at the barrier (the hierarchy then
    holds the last slice's contents) — counts are deterministic for a
    given pool width but, unlike the output, can differ from the
    sequential trace because slices don't see each other's cache state.
    Unblocked configs have one block column and run sequentially:
    spatial blocking is what creates the parallelism.

    [check] (default [true]) runs the schedule-legality gate
    ({!Yasksite_lint.Schedule_lint.grids}: halo sufficiency, aliasing,
    layout and extent agreement) before touching memory, raising
    [Lint.Gate_error] on violations. [sanitize] threads every access
    through a shadow-memory {!Sanitizer} pass — pass [~check:false]
    with a sanitizer to demonstrate dynamically why a gated schedule is
    illegal.

    A sanitized, gate-checked sweep whose (plan × layout × halo ×
    blocking) tuple holds a safety certificate (see {!Cert} and
    {!Certify}) runs the {e certified fast path}: per-point shadow
    checks are skipped and the pass's shadow state is bulk-committed
    ({!Sanitizer.commit_pass}), recovering the sanitizer's overhead at
    zero traps while keeping version bookkeeping composable.
    Uncertified plans, [~check:false] runs, and runs under
    [YASKSITE_NO_CERT] keep the fully checked path.

    [extend] runs an {e extended sweep}: the iteration space widens to
    [[-ext.(i), dims.(i)+ext.(i))] per dimension, with the extension
    living in the grids' halos. The program executor uses this to
    compute intermediate stages into their halos so consumer stages
    can read them off-centre without a separate halo exchange. The
    gate then requires input halos of [radius + ext] and an output
    halo of at least [ext] (YS404). Extended sweeps keep the pool
    bit-identity guarantee (slices partition the extended extent at
    the same block boundaries the sequential sweep uses) but do not
    combine with [sanitize] — that combination raises
    [Invalid_argument], since the shadow pass models interior writes
    only. *)

val run_region :
  ?backend:backend ->
  ?bound:Yasksite_stencil.Lower.bound ->
  ?trace:Yasksite_cachesim.Hierarchy.t ->
  ?sanitize:Sanitizer.slice ->
  ?check:bool ->
  ?config:Yasksite_ecm.Config.t ->
  ?vec_unit:int array ->
  ?extend:int array ->
  Yasksite_stencil.Spec.t ->
  inputs:Yasksite_grid.Grid.t array ->
  output:Yasksite_grid.Grid.t ->
  lo:int array ->
  hi:int array ->
  stats
(** Like {!run} but restricted to the half-open interior box
    [\[lo, hi)] — the building block for thread partitions and
    wavefronts. [check] (default [true]) verifies the region stays
    inside the iteration space and the extents agree, raising
    [Lint.Gate_error] (YS406/YS409) otherwise; [sanitize] is one
    slice's view of an enclosing sanitizer pass. [extend] widens the
    legal region to [[-ext, dims+ext)] (see {!run}); a checked
    extended region additionally passes the full grids gate, proving
    the halos can hold the extension. *)
