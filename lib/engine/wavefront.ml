module Grid = Yasksite_grid.Grid
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Lower = Yasksite_stencil.Lower
module Config = Yasksite_ecm.Config
module Lint = Yasksite_lint.Lint
module Schedule_lint = Yasksite_lint.Schedule_lint
module D = Yasksite_lint.Diagnostic

let steps ?backend ?plan ?trace ?sanitize ?(check = true)
    ?(config = Config.default) ?vec_unit ?lo ?hi (spec : Spec.t) ~a ~b ~steps
    =
  let dims = Grid.dims a in
  let info = Analysis.of_spec spec in
  (* Precondition failures surface as YS4xx diagnostics through
     [Lint.Gate_error]; [check:false] forces the schedule through so the
     sanitizer can demonstrate the violation dynamically. *)
  if check then begin
    let ds =
      Schedule_lint.wavefront_rules info ~dims config
      @ Schedule_lint.grids info config ~inputs:[| a |] ~output:b
      @ Schedule_lint.grids info config ~inputs:[| b |] ~output:a
    in
    Lint.gate ~context:"Wavefront.steps" (Schedule_lint.dedup ds)
  end;
  let rank = Array.length dims in
  let lo = match lo with None -> Array.make rank 0 | Some l -> Array.copy l in
  let hi = match hi with None -> Array.copy dims | Some h -> Array.copy h in
  if check && (lo.(0) <> 0 || hi.(0) <> dims.(0)) then
    Lint.gate ~context:"Wavefront.steps"
      [ D.errorf ~code:"YS406"
          "the streamed dimension must stay full: fronts travel through \
           planes [0..%d), got [%d..%d)"
          dims.(0) lo.(0) hi.(0) ];
  let shift = Schedule_lint.effective_stagger info config in
  let n0 = dims.(0) in
  let grids = [| a; b |] in
  let backend =
    match backend with Some bk -> bk | None -> Sweep.default_backend ()
  in
  (* Lower once; a ping-pong pass only ever sees two (src, dst) pairs,
     so the two bounds are built lazily and reused for every plane. *)
  let plan = lazy (match plan with Some p -> p | None -> Lower.lower spec) in
  let bound_ab =
    lazy (Lower.bind (Lazy.force plan) ~inputs:[| a |] ~output:b)
  and bound_ba =
    lazy (Lower.bind (Lazy.force plan) ~inputs:[| b |] ~output:a)
  in
  (* Certified fast path: a ping-pong pass alternates (a->b) and (b->a)
     tuples, so both directions must hold a certificate before any
     per-point shadow checks may be skipped. [check] is required — the
     certificate only proves the plan's accesses safe; aliasing, halo
     and fold legality come from the YS4xx gate above. *)
  let certified =
    match sanitize with
    | Some _ when check && Cert.enabled () ->
        let p = Lazy.force plan in
        let hit =
          Cert.mem (Cert.key ~plan:p ~inputs:[| a |] ~output:b ~config)
          && Cert.mem (Cert.key ~plan:p ~inputs:[| b |] ~output:a ~config)
        in
        if hit then Cert.record_fast_path ();
        hit
    | _ -> false
  in
  let stats = ref Sweep.zero_stats in
  let total = ref 0 in
  (* The sanitizer's view: the state in [a] is whatever version it
     currently holds (so repeated wavefront calls compose); step [abs_t]
     reads version [base + abs_t] and produces [base + abs_t + 1]. *)
  let base_version =
    match sanitize with
    | None -> 0
    | Some san ->
        Sanitizer.register san a;
        Sanitizer.register san b;
        Sanitizer.check_fold san ~fold:config.Config.fold a;
        Sanitizer.check_fold san ~fold:config.Config.fold b;
        Sanitizer.grid_version san a
  in
  (* Update plane [z] of timestep [t] -> [t+1] (absolute step index
     [base + t]), ping-ponging between the two grids. [front] is the
     process-unique id of the current front iteration, tagging writes so
     later steps of the same front can detect order dependences (an
     under-staggered schedule reading a plane an earlier step of this
     very front produced). *)
  let update_plane ~abs_t ~front z =
    let src = grids.(abs_t mod 2) and dst = grids.((abs_t + 1) mod 2) in
    let plo = Array.copy lo and phi = Array.copy hi in
    plo.(0) <- z;
    phi.(0) <- z + 1;
    let sanitize =
      Option.bind sanitize (fun san ->
          let pass =
            Sanitizer.begin_wavefront_step san ~src ~dst
              ~read_version:(base_version + abs_t) ~front
          in
          if certified then begin
            (* Skip per-point checks; bulk-commit this plane's shadow
               state so later steps still see exact versions/fronts. *)
            Sanitizer.commit_pass pass ~lo:plo ~hi:phi;
            None
          end
          else Some (Sanitizer.slice pass 0))
    in
    let bound =
      match backend with
      | Sweep.Closure_backend -> None
      | Sweep.Plan_backend | Sweep.Codegen_backend ->
          Some (Lazy.force (if abs_t mod 2 = 0 then bound_ab else bound_ba))
    in
    let s =
      Sweep.run_region ~backend ?bound ?trace ?sanitize ~check ~config
        ?vec_unit spec ~inputs:[| src |] ~output:dst ~lo:plo ~hi:phi
    in
    stats := Sweep.add_stats !stats s
  in
  while !total < steps do
    let depth = min config.Config.wavefront (steps - !total) in
    for front = 0 to n0 - 1 + ((depth - 1) * shift) do
      let fid =
        match sanitize with Some san -> Sanitizer.fresh_front san | None -> 0
      in
      for t = 0 to depth - 1 do
        let z = front - (t * shift) in
        if z >= 0 && z < n0 then update_plane ~abs_t:(!total + t) ~front:fid z
      done
    done;
    total := !total + depth
  done;
  (match sanitize with
  | Some san ->
      Sanitizer.end_wavefront san
        ~final:grids.(steps mod 2)
        ~other:grids.((steps + 1) mod 2)
        ~final_version:(base_version + steps)
  | None -> ());
  (grids.(steps mod 2), !stats)
