(** Temporal (wavefront) blocking: executing several timesteps in one
    pass over memory.

    Two grids are used in ping-pong fashion; [wavefront] timestep fronts
    travel along the outermost dimension, staggered by [radius + 1]
    planes so that a plane being overwritten for step [t+1] is never
    still needed by the trailing front of step [t] (the classic two-grid
    wavefront of Wellein et al., which is also what YASK's temporal
    tiling implements). When the moving window of active planes fits in
    the last-level cache, memory traffic drops by about the wavefront
    depth — the effect the ECM temporal model predicts.

    Restrictions: single-input-field stencils, and halos must be static
    over the blocked steps (Dirichlet boundaries); these are the same
    conditions under which YASK applies temporal tiling without MPI halo
    re-exchange. *)

val steps :
  ?backend:Sweep.backend ->
  ?plan:Yasksite_stencil.Plan.t ->
  ?trace:Yasksite_cachesim.Hierarchy.t ->
  ?sanitize:Sanitizer.t ->
  ?check:bool ->
  ?config:Yasksite_ecm.Config.t ->
  ?vec_unit:int array ->
  ?lo:int array ->
  ?hi:int array ->
  Yasksite_stencil.Spec.t ->
  a:Yasksite_grid.Grid.t ->
  b:Yasksite_grid.Grid.t ->
  steps:int ->
  Yasksite_grid.Grid.t * Sweep.stats
(** [steps spec ~a ~b ~steps] advances the state in [a] by [steps]
    timesteps using wavefront depth [config.wavefront] (1 = plane-by-
    plane, equivalent to consecutive sweeps) and returns the grid holding
    the final state ([a] if [steps] is even, [b] otherwise) along with
    accumulated work stats. [lo]/[hi] restrict the non-streamed
    dimensions (thread partition); the streamed dimension's range must
    stay full. Both grids must share dims and have halos covering the
    stencil radius; halos of {e both} grids must be pre-filled and are
    kept static.

    The per-step plane shift is the config's [wavefront_stagger] when
    set (the engine-safe default is radius+1). [check] (default [true])
    gates the schedule through {!Yasksite_lint.Schedule_lint} — stagger
    legality (YS400), single input field (YS401), halo/alias/extent
    agreement of both grids — raising [Lint.Gate_error] on violations;
    [sanitize] shadow-checks every access, so an illegal stagger forced
    through with [~check:false] traps on its first stale or same-front
    read. *)
