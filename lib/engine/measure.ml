module Grid = Yasksite_grid.Grid
module Hierarchy = Yasksite_cachesim.Hierarchy
module Machine = Yasksite_arch.Machine
module Cache_level = Yasksite_arch.Cache_level
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Lower = Yasksite_stencil.Lower
module Config = Yasksite_ecm.Config
module Incore = Yasksite_ecm.Incore
module Prng = Yasksite_util.Prng
module Clock = Yasksite_util.Clock

type t = {
  config : Config.t;
  dims : int array;
  cycles_per_cl : float;
  t_incore_ol : float;
  t_incore_nol : float;
  t_data : float array;
  lines_per_cl : float array;
  mem_bytes_per_lup : float;
  lups_core : float;
  lups_chip : float;
  flops_chip : float;
  sim_points : int;
  wall_seconds : float;
}

(* Loop-management overheads billed per loop structure event. *)
let row_overhead_cycles = 2.0

let block_overhead_cycles = 25.0

(* Representative-core slice of the static partition, plus the load-
   balance factor: with T threads over an extent of n, the slowest core
   owns ceil(n/T) and determines the chip's finishing time. *)
let slice_dims ~dims ~rank ~wavefront ~threads =
  let part_dim = if wavefront > 1 && rank >= 2 then 1 else 0 in
  let n = dims.(part_dim) in
  let sliced = Array.copy dims in
  sliced.(part_dim) <- max 1 (n / threads);
  let ceil_share = (n + threads - 1) / threads in
  let balance =
    float_of_int n /. float_of_int (threads * ceil_share)
  in
  (sliced, min 1.0 balance)

let make_grids spec ~space ~dims ~config ~rng =
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let layout =
    match config.Config.fold with
    | None -> Grid.Linear
    | Some f -> Grid.Folded (Array.copy f)
  in
  let fresh () =
    let g = Grid.create ~space ~halo ~layout ~dims () in
    Grid.fill g ~f:(fun _ -> Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
    Grid.halo_dirichlet g 0.0;
    g
  in
  let n = spec.Spec.n_fields in
  let inputs = Array.init n (fun _ -> fresh ()) in
  let output = fresh () in
  (info, inputs, output)

(* Execute warm-up plus a measured pass; return work stats and the number
   of measured lattice updates. The kernel plan is lowered once by the
   caller and reused for every pass. *)
let execute ?backend ?plan spec ~inputs ~output ~config ~vec_unit ~trace
    ~sanitize =
  let wf = config.Config.wavefront in
  if wf > 1 then begin
    let a = inputs.(0) and b = output in
    (* Warm-up pass. *)
    let final, _ =
      Wavefront.steps ?backend ?plan ~trace ?sanitize ~config ~vec_unit spec
        ~a ~b ~steps:wf
    in
    Hierarchy.reset_counters trace;
    let a', b' = if final == a then (a, b) else (b, a) in
    let _, stats =
      Wavefront.steps ?backend ?plan ~trace ?sanitize ~config ~vec_unit spec
        ~a:a' ~b:b' ~steps:wf
    in
    stats
  end
  else begin
    (* Warm-up sweep, then a measured ping-pong pass (two sweeps). *)
    let swap_input = Array.copy inputs in
    let _ =
      Sweep.run ?backend ?plan ~trace ?sanitize ~config ~vec_unit spec
        ~inputs ~output
    in
    Hierarchy.reset_counters trace;
    swap_input.(0) <- output;
    let s1 =
      Sweep.run ?backend ?plan ~trace ?sanitize ~config ~vec_unit spec
        ~inputs:swap_input ~output:inputs.(0)
    in
    let s2 =
      Sweep.run ?backend ?plan ~trace ?sanitize ~config ~vec_unit spec
        ~inputs ~output
    in
    Sweep.add_stats s1 s2
  end

(* CI hook, mirroring Pool's YASKSITE_DOMAINS: setting YASKSITE_SANITIZE
   to anything but "" or "0" turns the sanitizer on for every
   measurement that does not choose explicitly, so the whole test suite
   can run shadow-checked without threading a flag through. *)
let sanitize_default () =
  match Sys.getenv_opt "YASKSITE_SANITIZE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let stencil_sweep ?(clock = Clock.system) ?backend ?sanitize (m : Machine.t)
    spec ~dims ~config =
  let sanitize =
    match sanitize with Some s -> s | None -> sanitize_default ()
  in
  let t0 = Clock.now clock in
  let rank = spec.Spec.rank in
  if Array.length dims <> rank then
    invalid_arg "Measure.stencil_sweep: dims rank mismatch";
  let threads = config.Config.threads in
  let sliced, balance =
    slice_dims ~dims ~rank ~wavefront:config.Config.wavefront ~threads
  in
  (* A private address space per measurement: the same address sequence
     a freshly reset global allocator would produce, without mutating
     shared state — concurrent measurements (a parallel tuning sweep)
     stay bit-identical to sequential ones. *)
  let space = Grid.fresh_space () in
  let rng = Prng.create ~seed:42 in
  let info, inputs, output = make_grids spec ~space ~dims:sliced ~config ~rng in
  let trace = Hierarchy.create ~active_cores:threads m in
  let lanes = m.simd.dp_lanes in
  let vec_unit =
    match config.Config.fold with
    | Some f -> Array.copy f
    | None ->
        let u = Array.make rank 1 in
        u.(rank - 1) <- lanes;
        u
  in
  (* One sanitizer per measurement: each call's private address space
     reuses the same virtual base addresses, so shadow state must not
     outlive the grids it describes. Fail-fast — a trap is a legality
     bug and aborts the measurement loudly. *)
  let sanitizer = if sanitize then Some (Sanitizer.create ()) else None in
  let plan = Lower.lower spec in
  (* Sanitized measurements try to earn a safety certificate up front:
     a hit lets every sweep below run the unchecked fast path, so the
     sanitizer's per-point overhead is paid once (on the tiny proxy
     grids) instead of per measurement. An uncertifiable tuple simply
     keeps the checked path — certification never rejects work here. *)
  if sanitize && Cert.enabled () then
    ignore (Certify.ensure ~machine:m ~plan spec ~inputs ~output ~config);
  let stats =
    execute ?backend ~plan spec ~inputs ~output ~config ~vec_unit ~trace
      ~sanitize:sanitizer
  in
  let points = stats.Sweep.points in
  let lups_per_cl = float_of_int (Incore.lups_per_cl m) in
  let cls = float_of_int points /. lups_per_cl in
  (* Observed traffic per cache line of output. *)
  let n_levels = Hierarchy.levels trace in
  let lines_per_cl =
    Array.init n_levels (fun level ->
        float_of_int (Hierarchy.traffic_lines trace ~level) /. cls)
  in
  let line_bytes = float_of_int (Hierarchy.line_bytes trace) in
  (* Billed in-core cycles: the port model applied to the work actually
     executed (including fold padding and remainders), plus loop
     overheads. *)
  let fold = Config.fold_extents config ~rank in
  let model_incore = Incore.analyze m info ~fold in
  let ideal_units = float_of_int points /. float_of_int lanes in
  let work_ratio = float_of_int stats.Sweep.vec_units /. ideal_units in
  let overhead_per_cl =
    ((float_of_int stats.Sweep.rows *. row_overhead_cycles)
    +. (float_of_int stats.Sweep.blocks *. block_overhead_cycles))
    /. cls
  in
  let t_incore_ol = (model_incore.Incore.t_ol *. work_ratio) +. overhead_per_cl in
  let t_incore_nol = model_incore.Incore.t_nol *. work_ratio in
  (* Observed transfer cycles per boundary; the memory boundary includes
     chip-level bandwidth contention among the active cores. *)
  let chip_bpc = Machine.mem_bytes_per_cycle_chip m in
  let t_data =
    Array.init n_levels (fun k ->
        let bytes = lines_per_cl.(k) *. line_bytes in
        let link = bytes /. m.caches.(k).Cache_level.bytes_per_cycle in
        if k = n_levels - 1 then
          max link (float_of_int threads *. bytes /. chip_bpc)
        else link)
  in
  let compose t_mem_override =
    let data = Array.copy t_data in
    data.(n_levels - 1) <- t_mem_override;
    match m.overlap with
    | Machine.Serial ->
        max t_incore_ol (t_incore_nol +. Array.fold_left ( +. ) 0.0 data)
    | Machine.Overlapping ->
        Array.fold_left max (max t_incore_ol t_incore_nol) data
  in
  (* Single-core view: no contention at the memory link. *)
  let mem_bytes_per_cl = lines_per_cl.(n_levels - 1) *. line_bytes in
  let t_mem_single =
    mem_bytes_per_cl /. m.caches.(n_levels - 1).Cache_level.bytes_per_cycle
  in
  let cycles_single = compose t_mem_single in
  let cycles_contended = compose t_data.(n_levels - 1) in
  let hz = Machine.cycles_per_second m in
  let lups_core = hz *. lups_per_cl /. cycles_single in
  let lups_chip =
    float_of_int threads *. hz *. lups_per_cl /. cycles_contended *. balance
  in
  { config;
    dims = Array.copy dims;
    cycles_per_cl = cycles_single;
    t_incore_ol;
    t_incore_nol;
    t_data;
    lines_per_cl;
    mem_bytes_per_lup = mem_bytes_per_cl /. lups_per_cl;
    lups_core;
    lups_chip;
    flops_chip = lups_chip *. float_of_int info.Analysis.flops;
    sim_points = points;
    wall_seconds = Clock.now clock -. t0 }

let lups_at_threads ?clock m spec ~dims ~config ~threads =
  let c = { config with Config.threads } in
  (stencil_sweep ?clock m spec ~dims ~config:c).lups_chip
