(* Shadow-memory sweep sanitizer: the dynamic cross-check of the YS4xx
   schedule-legality analyzer.

   Every registered grid gets a shadow table with, per cell, the value
   version (how many times the schedule has produced this cell), the
   pool-slice id of the last writer, and the id of the wavefront front
   that wrote it. A sweep pass declares, up front, which version each
   input grid is expected to hold and which version it produces; every
   access the engine executes is then checked against that contract:

   - a second write of the same version to one cell is an overlapping
     write (YS450) — two slices, or a revisiting schedule;
   - a read that sees the version currently being produced is a race:
     across slices a parallel read/write race, within one slice an
     in-place (aliased) read-after-write (YS451);
   - any other version mismatch is a stale read (YS452) — e.g. the
     plane skew of an under-staggered wavefront;
   - a read matching the expected version but of a cell written earlier
     in the *same* wavefront front is an order dependence the schedule
     does not license (YS451): stagger = radius is only accidentally
     correct under the sequential front order;
   - coordinates outside the allocation trap as YS453 and always raise
     (the check runs before the engine's unchecked access would);
   - after the pass, output cells not at the produced version were
     skipped by the partition (YS454);
   - halo reads are checked against the halo's validity state (YS455);
   - a fold/layout mismatch between schedule and grids traps at sweep
     entry (YS456).

   Shadow state is plain int arrays: concurrent slice accesses are
   memory-safe under OCaml 5 without locks, and the races the schedule
   itself introduces are exactly what the checks detect. *)

module Grid = Yasksite_grid.Grid
module D = Yasksite_lint.Diagnostic

type kind =
  | Overlapping_write
  | Racing_read
  | Stale_read
  | Out_of_bounds
  | Unwritten_cell
  | Halo_read
  | Fold_mismatch

let code_of_kind = function
  | Overlapping_write -> "YS450"
  | Racing_read -> "YS451"
  | Stale_read -> "YS452"
  | Out_of_bounds -> "YS453"
  | Unwritten_cell -> "YS454"
  | Halo_read -> "YS455"
  | Fold_mismatch -> "YS456"

type trap = {
  kind : kind;
  grid_base : int;
  coord : int array;
  detail : string;
}

let describe_trap t =
  Printf.sprintf "%s at grid@%d[%s]: %s" (code_of_kind t.kind) t.grid_base
    (String.concat "," (Array.to_list (Array.map string_of_int t.coord)))
    t.detail

exception Trap of trap

let () =
  Printexc.register_printer (function
    | Trap t -> Some ("Sanitizer.Trap: " ^ describe_trap t)
    | _ -> None)

type halo_state = Halo_static | Halo_snapshot of int | Halo_uninit

type shadow = {
  sg : Grid.t;
  version : int array;
  writer : int array;
  front : int array;
  mutable gver : int;
  mutable halo : halo_state;
}

type t = {
  registry : (int, shadow) Hashtbl.t;
  mutex : Mutex.t;
  mutable trap_list : trap list; (* newest first *)
  mutable n_traps : int;
  fail_fast : bool;
  limit : int;
  front_counter : int Atomic.t;
}

let create ?(fail_fast = true) ?(limit = 64) () =
  { registry = Hashtbl.create 8;
    mutex = Mutex.create ();
    trap_list = [];
    n_traps = 0;
    fail_fast;
    limit;
    front_counter = Atomic.make 0 }

let record t kind ~grid ~coord detail =
  let trap =
    { kind; grid_base = Grid.base_address grid; coord = Array.copy coord;
      detail }
  in
  Mutex.protect t.mutex (fun () ->
      t.n_traps <- t.n_traps + 1;
      if t.n_traps <= t.limit then t.trap_list <- trap :: t.trap_list);
  (* Out-of-bounds must stop the engine before its unchecked access
     touches memory outside the allocation, whatever the mode. *)
  if t.fail_fast || kind = Out_of_bounds then raise (Trap trap)

let register ?(halo = `Static) t g =
  let base = Grid.base_address g in
  if not (Hashtbl.mem t.registry base) then begin
    let len = Grid.length g in
    Hashtbl.replace t.registry base
      { sg = g;
        version = Array.make len 0;
        writer = Array.make len (-1);
        front = Array.make len (-1);
        gver = 0;
        halo =
          (match halo with
          | `Static -> Halo_static
          | `Snapshot -> Halo_snapshot 0
          | `Uninit -> Halo_uninit) }
  end

let find t g =
  match Hashtbl.find_opt t.registry (Grid.base_address g) with
  | Some s -> s
  | None ->
      register t g;
      Hashtbl.find t.registry (Grid.base_address g)

let registered t g = Hashtbl.mem t.registry (Grid.base_address g)

let grid_version t g = (find t g).gver

let refresh_halo t g =
  let s = find t g in
  match s.halo with
  | Halo_static -> ()
  | Halo_snapshot _ | Halo_uninit -> s.halo <- Halo_snapshot s.gver

let fresh_front t = Atomic.fetch_and_add t.front_counter 1

(* ------------------------------------------------------------------ *)
(* Passes *)

type pass = {
  t : t;
  out_shadow : shadow;
  write_version : int;
  expected : (int * shadow * int) list; (* (base, shadow, version) *)
  front_id : int; (* -1 outside a wavefront *)
}

type slice = { pass : pass; id : int }

let begin_sweep t ~inputs ~output =
  Array.iter (fun g -> register t g) inputs;
  register t output;
  let out = find t output in
  { t;
    out_shadow = out;
    write_version = out.gver + 1;
    expected =
      Array.to_list
        (Array.map
           (fun g ->
             let s = find t g in
             (Grid.base_address g, s, s.gver))
           inputs);
    front_id = -1 }

let begin_wavefront_step t ~src ~dst ~read_version ~front =
  register t src;
  register t dst;
  { t;
    out_shadow = find t dst;
    write_version = read_version + 1;
    expected = [ (Grid.base_address src, find t src, read_version) ];
    front_id = front }

let slice pass id = { pass; id }

let check_fold t ~fold g =
  match fold with
  | None -> ()
  | Some f ->
      let ok =
        match Grid.layout g with
        | Grid.Folded lf -> lf = f
        | Grid.Linear -> Array.for_all (fun x -> x = 1) f
      in
      if not ok then
        record t Fold_mismatch ~grid:g ~coord:[||]
          (Printf.sprintf
             "schedule folds %s but the grid is laid out %s"
             (String.concat "x" (Array.to_list (Array.map string_of_int f)))
             (match Grid.layout g with
             | Grid.Linear -> "linear"
             | Grid.Folded lf ->
                 String.concat "x"
                   (Array.to_list (Array.map string_of_int lf))))

(* Classify coordinates: 0 = interior, 1 = halo, 2 = out of bounds. *)
let classify ~dims ~halo coord =
  let rank = Array.length dims in
  let cls = ref 0 in
  for d = 0 to rank - 1 do
    let c = coord.(d) in
    if c < -halo.(d) || c >= dims.(d) + halo.(d) then cls := 2
    else if (c < 0 || c >= dims.(d)) && !cls < 2 then cls := 1
  done;
  !cls

let reader sl g =
  let pass = sl.pass in
  let base = Grid.base_address g in
  let s, expect =
    match
      List.find_opt (fun (b, _, _) -> b = base) pass.expected
    with
    | Some (_, s, v) -> (s, v)
    | None ->
        let s = find pass.t g in
        (s, s.gver)
  in
  let dims = Grid.dims g and halo = Grid.halo g in
  fun coord ->
    match classify ~dims ~halo coord with
    | 2 ->
        record pass.t Out_of_bounds ~grid:g ~coord
          "read outside the allocation (halo too thin for the stencil \
           radius?)"
    | 1 -> (
        match s.halo with
        | Halo_static -> ()
        | Halo_snapshot v ->
            if v <> expect then
              record pass.t Halo_read ~grid:g ~coord
                (Printf.sprintf
                   "halo snapshot is of version %d but the pass reads \
                    version %d"
                   v expect)
        | Halo_uninit ->
            record pass.t Halo_read ~grid:g ~coord
              "halo cells were never initialised")
    | _ ->
        let off = Grid.offset_of g coord in
        let v = s.version.(off) in
        if v = expect then begin
          if pass.front_id >= 0 && s.front.(off) = pass.front_id then
            record pass.t Racing_read ~grid:g ~coord
              (Printf.sprintf
                 "cell was written by an earlier step of the same \
                  wavefront front (stagger too small: order dependence)")
        end
        else if v = pass.write_version && s == pass.out_shadow then begin
          if s.writer.(off) <> sl.id then
            record pass.t Racing_read ~grid:g ~coord
              (Printf.sprintf
                 "slice %d read a cell slice %d is writing this pass" sl.id
                 s.writer.(off))
          else
            record pass.t Stale_read ~grid:g ~coord
              "in-place read of a cell this sweep already updated (aliased \
               input/output)"
        end
        else
          record pass.t Stale_read ~grid:g ~coord
            (Printf.sprintf "expected version %d, found version %d" expect v)

let writer sl =
  let pass = sl.pass in
  let s = pass.out_shadow in
  let g = s.sg in
  let dims = Grid.dims g in
  let interior coord =
    let ok = ref true in
    Array.iteri
      (fun d c -> if c < 0 || c >= dims.(d) then ok := false)
      coord;
    !ok
  in
  fun coord ->
    if not (interior coord) then
      record pass.t Out_of_bounds ~grid:g ~coord
        "write outside the output interior"
    else begin
      let off = Grid.offset_of g coord in
      if s.version.(off) = pass.write_version then
        record pass.t Overlapping_write ~grid:g ~coord
          (Printf.sprintf
             "cell already written this pass by slice %d (slice %d \
              rewrites it)"
             s.writer.(off) sl.id)
      else begin
        s.version.(off) <- pass.write_version;
        s.writer.(off) <- sl.id;
        s.front.(off) <- pass.front_id
      end
    end

(* Certified fast path: bulk-commit the shadow state a fully checked
   pass would have produced over the interior box [lo, hi). The engine
   calls this instead of per-point [writer] updates when a safety
   certificate proves the plan cannot trap, so version bookkeeping
   still composes: a later *checked* pass over the same grids sees
   exactly the versions and fronts a checked execution would have
   left. Writer ids collapse to slice 0 — overlap detection is the
   per-point check the certificate licensed skipping. *)
let commit_pass pass ~lo ~hi =
  let s = pass.out_shadow in
  let g = s.sg in
  let rank = Array.length lo in
  let coord = Array.make rank 0 in
  let rec go d =
    if d = rank then begin
      let off = Grid.offset_of g coord in
      s.version.(off) <- pass.write_version;
      s.writer.(off) <- 0;
      s.front.(off) <- pass.front_id
    end
    else
      for c = lo.(d) to hi.(d) - 1 do
        coord.(d) <- c;
        go (d + 1)
      done
  in
  go 0

let end_sweep pass =
  let s = pass.out_shadow in
  let missing = ref 0 in
  let first = ref None in
  Grid.iter_interior s.sg ~f:(fun coord ->
      let off = Grid.offset_of s.sg coord in
      if s.version.(off) <> pass.write_version then begin
        incr missing;
        if !first = None then first := Some (Array.copy coord)
      end);
  (match !first with
  | Some coord ->
      record pass.t Unwritten_cell ~grid:s.sg ~coord
        (Printf.sprintf
           "%d output cell%s left unwritten: the slices do not cover the \
            iteration space"
           !missing
           (if !missing = 1 then " was" else "s were"))
  | None -> ());
  s.gver <- pass.write_version

let end_wavefront t ~final ~other ~final_version =
  (find t final).gver <- final_version;
  if Grid.base_address other <> Grid.base_address final then
    (find t other).gver <- max 0 (final_version - 1)

(* ------------------------------------------------------------------ *)

let trap_count t = Mutex.protect t.mutex (fun () -> t.n_traps)

let traps t = Mutex.protect t.mutex (fun () -> List.rev t.trap_list)

let diagnostics t =
  List.map
    (fun trap ->
      D.errorf ~code:(code_of_kind trap.kind) "%s" (describe_trap trap))
    (traps t)
