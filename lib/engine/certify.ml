(* Full certification pipeline: static YS5xx proof + dynamic YS511
   cross-validation -> a Cert entry.

   The static half is Lint.Plan_lint over the lowered plan and the
   caller's concrete grids (bounds transfer across extents, so the
   certificate covers every problem size with the same layout/halo).
   The dynamic half re-derives the certified traffic counts from an
   actually traced execution: a small proxy sweep — same layout, same
   halo, same blocking config, tiny extents — runs against a cache
   hierarchy, and the issued loads/stores must equal points x
   loads_per_point / points x stores_per_point. The simulator counts
   issued accesses regardless of hits, so any machine model works;
   the scaled test chip keeps the proxy cheap. This breaks the
   circularity the ECM inputs had: the static counts feeding the model
   are checked against the trace-driven simulator instead of being
   trusted by construction. *)

module Grid = Yasksite_grid.Grid
module Machine = Yasksite_arch.Machine
module Hierarchy = Yasksite_cachesim.Hierarchy
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Plan = Yasksite_stencil.Plan
module Lower = Yasksite_stencil.Lower
module Config = Yasksite_ecm.Config
module Plan_lint = Yasksite_lint.Plan_lint
module D = Yasksite_lint.Diagnostic

(* Proxy extents: the smallest grid that exercises every blocking
   remainder path is unnecessary here — traffic counts are shape-exact
   for any extents, so keep it tiny but larger than the halo and wide
   enough for the fold (YS408 rejects folds exceeding the extents). *)
let proxy_dims ~rank ~halo ~(config : Config.t) =
  let fold = Config.fold_extents config ~rank in
  Array.init rank (fun i -> max fold.(i) (max 4 ((2 * halo.(i)) + 2)))

let validate_traffic ?(machine = Machine.test_chip) spec ~plan
    ~(config : Config.t) =
  let info = Analysis.of_spec spec in
  let halo = Analysis.halo info in
  let rank = spec.Spec.rank in
  let dims = proxy_dims ~rank ~halo ~config in
  let layout =
    match config.Config.fold with
    | None -> Grid.Linear
    | Some f -> Grid.Folded (Array.copy f)
  in
  let space = Grid.fresh_space () in
  let mk () =
    let g = Grid.create ~space ~halo ~layout ~dims () in
    Grid.fill_all g 1.0;
    g
  in
  let inputs = Array.init spec.Spec.n_fields (fun _ -> mk ()) in
  let output = mk () in
  let trace = Hierarchy.create machine in
  match Sweep.run ~plan ~trace ~config spec ~inputs ~output with
  | exception Yasksite_lint.Lint.Gate_error msg ->
      (* A config the proxy cannot represent (e.g. fold wider than any
         legal proxy extent) is uncertifiable, not a crash. *)
      [ D.errorf ~code:"YS511"
          "the proxy validation sweep was refused by the schedule gate: %s"
          msg ]
  | stats ->
  let c = Plan_lint.counts plan in
  let ctr = Hierarchy.counters trace in
  let observed_stores = ctr.Hierarchy.stores + ctr.Hierarchy.nt_stores in
  let ds = ref [] in
  if ctr.Hierarchy.loads <> stats.Sweep.points * c.Plan_lint.loads then
    ds :=
      D.errorf ~code:"YS511"
        "the traced proxy sweep issued %d loads but the certified counts \
         predict %d (%d points x %d loads/point)"
        ctr.Hierarchy.loads
        (stats.Sweep.points * c.Plan_lint.loads)
        stats.Sweep.points c.Plan_lint.loads
      :: !ds;
  if observed_stores <> stats.Sweep.points * c.Plan_lint.stores then
    ds :=
      D.errorf ~code:"YS511"
        "the traced proxy sweep issued %d stores but the certified counts \
         predict %d (%d points x %d stores/point)"
        observed_stores
        (stats.Sweep.points * c.Plan_lint.stores)
        stats.Sweep.points c.Plan_lint.stores
      :: !ds;
  List.rev !ds

let certify ?machine ?plan spec ~inputs ~output ~config =
  let plan = match plan with Some p -> p | None -> Lower.lower spec in
  let info = Analysis.of_spec spec in
  let static = Plan_lint.check ~info plan ~inputs ~output in
  if D.has_errors static then Error static
  else begin
    let dynamic = validate_traffic ?machine spec ~plan ~config in
    if D.has_errors dynamic then Error (static @ dynamic)
    else begin
      let c = Plan_lint.counts plan in
      let entry =
        { Cert.key = Cert.key ~plan ~inputs ~output ~config;
          fingerprint = plan.Plan.fingerprint;
          loads_per_point = c.Plan_lint.loads;
          stores_per_point = c.Plan_lint.stores;
          flops_per_point = c.Plan_lint.flops }
      in
      Cert.insert entry;
      Ok entry
    end
  end

let ensure ?machine ?plan spec ~inputs ~output ~config =
  if not (Cert.enabled ()) then false
  else begin
    let plan = match plan with Some p -> p | None -> Lower.lower spec in
    let k = Cert.key ~plan ~inputs ~output ~config in
    Cert.mem k
    ||
    match certify ?machine ~plan spec ~inputs ~output ~config with
    | Ok _ -> true
    | Error _ -> false
  end
