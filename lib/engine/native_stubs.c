/* Bridge to the runtime's named-value table.
 *
 * A generated kernel unit (Stencil.Codegen) publishes its entry points
 * with [Callback.register] under an ABI-versioned name; the host
 * retrieves them here through [caml_named_value] without sharing any
 * cmi with the plugin. Returns [None] when nothing was registered
 * under [name]. */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/callback.h>

CAMLprim value yasksite_named_value(value vname)
{
  CAMLparam1(vname);
  CAMLlocal1(res);
  const value *p = caml_named_value(String_val(vname));
  if (p == NULL)
    CAMLreturn(Val_int(0)); /* None */
  res = caml_alloc_small(1, 0);
  /* [p] addresses a global root slot, so reading it after the
     allocation observes the up-to-date (possibly moved) value. */
  Field(res, 0) = *p;
  CAMLreturn(res);
}
