(** Textual machine-description files, so users can model their own CPU
    without writing OCaml (the role kerncraft's YAML machine files play
    for the ECM tool chain).

    Format: line-oriented [key = value] with [#] comments. Machine-level
    keys first, then one [\[cache\]] section per level, innermost first:

    {v
      # my-chip.machine
      name      = MyChip
      vendor    = intel          # intel | amd | generic
      freq_ghz  = 3.0
      cores     = 16
      dp_lanes  = 8
      fma_ports = 2
      add_ports = 2
      load_ports = 2
      store_ports = 1
      mem_bw_gbs = 120
      mem_latency_cycles = 200
      overlap   = serial         # serial | overlapping

      [cache]
      name = L1
      size_kib = 32
      assoc = 8
      bytes_per_cycle = 64
      latency_cycles = 4
      # optional: shared_by = 1, fill = inclusive | victim, line_bytes = 64
    v} *)

val parse : string -> (Machine.t, string) result
(** Parse a machine description from a string; errors carry the line
    number. *)

type raw = {
  machine_fields : (string * (string * int)) list;
      (** machine-level [(key, (value, line))] bindings in file order *)
  cache_fields : (string * (string * int)) list list;
      (** one binding list per [\[cache\]] section, innermost first *)
}

val parse_raw : string -> (raw, int * string) result
(** Parse only the key/value structure, without interpreting or
    validating any value ([parse] rejects inconsistent machines
    outright; the lint layer wants to inspect the raw bindings and
    report {e all} problems with their line numbers). Errors are
    [(line, message)]. *)

val load : string -> (Machine.t, string) result
(** Read and parse a file. *)

val render : Machine.t -> string
(** Render a machine back to the file format ([parse (render m)]
    reconstructs an equal machine). *)
