(* Line-oriented key=value parser for machine descriptions. *)

type section = { mutable fields : (string * (string * int)) list }

type raw = {
  machine_fields : (string * (string * int)) list;
  cache_fields : (string * (string * int)) list list;
}

let parse_lines src =
  (* Returns (machine_section, cache_sections in order). Field lists are
     in reverse file order, so [List.assoc] sees the last occurrence of
     a duplicated key first (last one wins). *)
  let machine = { fields = [] } in
  let caches = ref [] in
  let current = ref machine in
  let err = ref None in
  String.split_on_char '\n' src
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         if !err = None then begin
           let line =
             match String.index_opt line '#' with
             | Some j -> String.sub line 0 j
             | None -> line
           in
           let line = String.trim line in
           if line = "" then ()
           else if line = "[cache]" then begin
             let s = { fields = [] } in
             caches := s :: !caches;
             current := s
           end
           else begin
             match String.index_opt line '=' with
             | None -> err := Some (lineno, "expected key = value")
             | Some j ->
                 let key = String.trim (String.sub line 0 j) in
                 let value =
                   String.trim
                     (String.sub line (j + 1) (String.length line - j - 1))
                 in
                 if key = "" || value = "" then
                   err := Some (lineno, "empty key or value")
                 else
                   !current.fields <- (key, (value, lineno)) :: !current.fields
           end
         end);
  match !err with
  | Some (lineno, msg) -> Error (lineno, msg)
  | None -> Ok (machine, List.rev !caches)

let parse_raw src =
  match parse_lines src with
  | Error _ as e -> e
  | Ok (machine, caches) ->
      Ok
        { machine_fields = List.rev machine.fields;
          cache_fields = List.map (fun s -> List.rev s.fields) caches }

let find section key = List.assoc_opt key section.fields

let get_string section key =
  match find section key with
  | Some (v, _) -> Ok v
  | None -> Error (Printf.sprintf "missing key %S" key)

let get_float section key =
  match find section key with
  | Some (v, ln) -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "line %d: %S is not a number" ln key))
  | None -> Error (Printf.sprintf "missing key %S" key)

let get_int section key =
  match find section key with
  | Some (v, ln) -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "line %d: %S is not an integer" ln key))
  | None -> Error (Printf.sprintf "missing key %S" key)

let get_int_default section key default =
  match find section key with
  | None -> Ok default
  | Some _ -> get_int section key

let ( let* ) = Result.bind

let parse_cache section =
  let* name = get_string section "name" in
  let* size_kib = get_int section "size_kib" in
  let* assoc = get_int section "assoc" in
  let* bytes_per_cycle = get_float section "bytes_per_cycle" in
  let* latency_cycles = get_float section "latency_cycles" in
  let* shared_by = get_int_default section "shared_by" 1 in
  let* line_bytes = get_int_default section "line_bytes" 64 in
  let* fill =
    match find section "fill" with
    | None -> Ok Cache_level.Inclusive
    | Some ("inclusive", _) -> Ok Cache_level.Inclusive
    | Some ("victim", _) -> Ok Cache_level.Victim
    | Some (v, ln) ->
        Error (Printf.sprintf "line %d: unknown fill policy %S" ln v)
  in
  try
    Ok
      (Cache_level.v ~name ~size_bytes:(size_kib * 1024) ~assoc ~line_bytes
         ~shared_by ~bytes_per_cycle ~latency_cycles ~fill ())
  with Invalid_argument m -> Error m

let parse src =
  let* machine_section, cache_sections =
    Result.map_error
      (fun (lineno, msg) -> Printf.sprintf "line %d: %s" lineno msg)
      (parse_lines src)
  in
  if cache_sections = [] then Error "no [cache] sections"
  else begin
    let* name = get_string machine_section "name" in
    let* vendor =
      match find machine_section "vendor" with
      | None -> Ok Machine.Generic
      | Some ("intel", _) -> Ok Machine.Intel
      | Some ("amd", _) -> Ok Machine.Amd
      | Some ("generic", _) -> Ok Machine.Generic
      | Some (v, ln) -> Error (Printf.sprintf "line %d: unknown vendor %S" ln v)
    in
    let* freq_ghz = get_float machine_section "freq_ghz" in
    let* cores = get_int machine_section "cores" in
    let* dp_lanes = get_int machine_section "dp_lanes" in
    let* fma_ports = get_int machine_section "fma_ports" in
    let* add_ports = get_int_default machine_section "add_ports" fma_ports in
    let* load_ports = get_int_default machine_section "load_ports" 2 in
    let* store_ports = get_int_default machine_section "store_ports" 1 in
    let* mem_bw_chip_gbs = get_float machine_section "mem_bw_gbs" in
    let* mem_latency_cycles =
      match find machine_section "mem_latency_cycles" with
      | None -> Ok 200.0
      | Some _ -> get_float machine_section "mem_latency_cycles"
    in
    let* overlap =
      match find machine_section "overlap" with
      | None -> Ok Machine.Serial
      | Some ("serial", _) -> Ok Machine.Serial
      | Some ("overlapping", _) -> Ok Machine.Overlapping
      | Some (v, ln) ->
          Error (Printf.sprintf "line %d: unknown overlap policy %S" ln v)
    in
    let* caches =
      List.fold_left
        (fun acc section ->
          let* acc = acc in
          let* c = parse_cache section in
          Ok (c :: acc))
        (Ok []) cache_sections
    in
    try
      Ok
        (Machine.v ~name ~vendor ~freq_ghz ~cores
           ~simd:{ Machine.dp_lanes; fma_ports; add_ports; load_ports;
                   store_ports }
           ~caches:(List.rev caches) ~mem_bw_chip_gbs ~mem_latency_cycles
           ~overlap)
    with Invalid_argument m -> Error m
  end

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> parse src
  | exception Sys_error m -> Error m

let render (m : Machine.t) =
  let buf = Buffer.create 512 in
  let kv fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  kv "name = %s" m.name;
  kv "vendor = %s"
    (match m.vendor with
    | Machine.Intel -> "intel"
    | Machine.Amd -> "amd"
    | Machine.Generic -> "generic");
  kv "freq_ghz = %g" m.freq_ghz;
  kv "cores = %d" m.cores;
  kv "dp_lanes = %d" m.simd.Machine.dp_lanes;
  kv "fma_ports = %d" m.simd.Machine.fma_ports;
  kv "add_ports = %d" m.simd.Machine.add_ports;
  kv "load_ports = %d" m.simd.Machine.load_ports;
  kv "store_ports = %d" m.simd.Machine.store_ports;
  kv "mem_bw_gbs = %g" m.mem_bw_chip_gbs;
  kv "mem_latency_cycles = %g" m.mem_latency_cycles;
  kv "overlap = %s"
    (match m.overlap with
    | Machine.Serial -> "serial"
    | Machine.Overlapping -> "overlapping");
  Array.iter
    (fun (c : Cache_level.t) ->
      kv "";
      kv "[cache]";
      kv "name = %s" c.name;
      kv "size_kib = %d" (c.size_bytes / 1024);
      kv "assoc = %d" c.assoc;
      kv "line_bytes = %d" c.line_bytes;
      kv "shared_by = %d" c.shared_by;
      kv "bytes_per_cycle = %g" c.bytes_per_cycle;
      kv "latency_cycles = %g" c.latency_cycles;
      kv "fill = %s"
        (match c.fill with
        | Cache_level.Inclusive -> "inclusive"
        | Cache_level.Victim -> "victim"))
    m.caches;
  Buffer.contents buf
