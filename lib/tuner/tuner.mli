(** Kernel autotuning: analytic (model-ranked, the YaskSite approach)
    versus empirical (run every candidate, the baseline it replaces),
    with cost accounting for the paper's tuning-cost comparison.

    The analytic tuner never executes a kernel: it ranks the whole
    parameter space with the ECM model and returns the top
    configuration. The empirical tuner executes every candidate on the
    simulated machine and picks the best measured one. Their cost ratio
    and the quality gap of the analytic choice are the subject of
    experiment E9.

    The empirical tuner additionally survives an injected fault plan
    ({!Yasksite_faults.Plan}): failed candidate runs are retried with
    decorrelated-jitter backoff under per-candidate and per-pass wall
    budgets, noisy measurements are aggregated by median-of-k with
    MAD-based outlier rejection, candidates that exhaust their retries
    are skipped (and recorded), the sweep degrades to analytic ranking
    when too many candidates die, and per-candidate progress can be
    checkpointed so an interrupted sweep resumes without re-running
    completed work (experiment E14). With the default (fault-free) plan
    and policy it is behaviourally identical to the pre-resilience
    tuner: same chosen configuration, same kernel-run count, bit-equal
    measured performance. *)

type skipped = {
  s_config : Yasksite_ecm.Config.t;
  s_reason : string;  (** why the candidate was abandoned *)
  s_attempts : int;  (** attempts spent before giving up *)
}

type result = {
  chosen : Yasksite_ecm.Config.t;
  predicted_lups : float option;
      (** the model's score for [chosen] (None for a successful
          empirical tune; Some for analytic and degraded results) *)
  measured_lups : float;
      (** validation measurement of [chosen] at full thread count (the
          model's prediction if [chosen] was never measured on a
          degraded sweep) *)
  model_evaluations : int;  (** analytic work performed *)
  kernel_runs : int;  (** kernels executed (incl. the validation run) *)
  attempts : int;
      (** measurement attempts including retried failures and timeouts *)
  skipped : skipped list;
      (** candidates abandoned after exhausting retries or budgets *)
  pruned : int;
      (** candidates removed by the schedule-legality analyzer
          ({!Yasksite_lint.Lint.Schedule}) before any model evaluation or
          kernel execution was spent on them *)
  degraded : bool;
      (** the empirical sweep fell back to analytic ranking because the
          failure rate exceeded the policy's threshold *)
  wall_seconds : float;
      (** CPU cost of the whole tuning pass, including charged backoff
          and timeout time *)
}

val tune_analytic :
  ?cache:Yasksite_ecm.Cache.t ->
  ?pool:Yasksite_util.Pool.t ->
  ?clock:Yasksite_util.Clock.t ->
  ?sanitize:bool ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  threads:int ->
  result
(** Rank the full advisor space with the ECM model, then run one
    validation measurement of the winner. Model evaluations are
    memoized in [cache] (default {!Yasksite_ecm.Cache.shared}) and
    spread over [pool]'s domains when given; neither changes the
    result.

    Candidates the schedule-legality analyzer rejects are pruned before
    ranking (reported in [result.pruned]); if the whole space is
    illegal, the analyzer's diagnostics are raised as
    {!Yasksite_lint.Lint.Gate_error}. [sanitize] (default [false]) runs
    the validation measurement under the shadow-memory
    {!Yasksite_engine.Sanitizer}. *)

val tune_empirical :
  ?space:Yasksite_ecm.Config.t list ->
  ?faults:Yasksite_faults.Plan.t ->
  ?policy:Yasksite_faults.Policy.t ->
  ?clock:Yasksite_util.Clock.t ->
  ?checkpoint:string ->
  ?store:Yasksite_store.Store.t ->
  ?pool:Yasksite_util.Pool.t ->
  ?cache:Yasksite_ecm.Cache.t ->
  ?sanitize:bool ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  threads:int ->
  result
(** Execute every configuration of [space] (default: the same advisor
    space the analytic tuner ranks) and keep the best measured one.
    Statically illegal candidates are pruned by the schedule-legality
    analyzer before any kernel runs (counted in [result.pruned]; an
    all-illegal space raises {!Yasksite_lint.Lint.Gate_error}), and
    [sanitize] (default [false]) executes every surviving candidate
    under the shadow-memory {!Yasksite_engine.Sanitizer}.

    [faults] (default {!Yasksite_faults.Plan.none}) injects seeded
    transient failures, timeouts, lognormal measurement noise and
    contention outliers into each run; [policy] (default
    {!Yasksite_faults.Policy.default}) bounds retries, backoff and
    budgets and configures robust aggregation. [checkpoint] names a file
    that is rewritten after every candidate and, when present and
    matching this sweep's identity, resumed from — completed candidates
    are not re-run. Without an explicit [checkpoint], [store] persists
    the same checkpoint (same text format, same sweep-identity key)
    into a {!Yasksite_store.Store} under namespace ["ckpt-v1"], so an
    interrupted `yasksite tune` resumes from the machine-wide store; a
    degraded store silently yields a non-resumable (but otherwise
    identical) sweep. All behaviour is a deterministic function of the
    inputs and [faults.seed]; the [clock] only feeds wall-time
    accounting and budget enforcement.

    Every candidate draws its faults and backoff jitter from streams
    derived from [faults.seed] by candidate {e index}, so with [pool]
    the candidates are evaluated concurrently and still select the
    same configuration, measured LUP/s, attempts and skip list as the
    sequential sweep (property-tested; [wall_seconds] naturally
    differs). One caveat: the pass budget is enforced at candidate
    granularity under a pool — each candidate's start time is checked
    against the deadline on the real clock, candidates that start run
    to completion (where a sequential sweep would truncate one
    mid-flight), and once one candidate misses the deadline it and all
    later candidates are reported as budget skips. With non-binding
    budgets the two paths are bit-identical. A [pool]ed sweep requires a domain-safe [clock]
    (the default system clock is). [cache] (default
    {!Yasksite_ecm.Cache.shared}) memoizes the analytic fallback's
    model evaluations. *)

type comparison = {
  analytic : result;
  empirical : result;
  cost_ratio : float;
      (** empirical kernel-runs per analytic kernel-run (>= 1 when the
          model pays off) *)
  wall_ratio : float;  (** empirical wall time / analytic wall time *)
  quality : float;
      (** measured performance of the analytic choice relative to the
          empirical optimum (1.0 = found the same optimum) *)
}

val compare_strategies :
  ?space:Yasksite_ecm.Config.t list ->
  ?faults:Yasksite_faults.Plan.t ->
  ?policy:Yasksite_faults.Policy.t ->
  ?pool:Yasksite_util.Pool.t ->
  Yasksite_arch.Machine.t ->
  Yasksite_stencil.Spec.t ->
  dims:int array ->
  threads:int ->
  comparison
(** Run both tuners on the same kernel and summarise the trade-off; the
    fault plan and policy apply to the empirical side only (the analytic
    tuner's single validation run is taken as trusted). *)
