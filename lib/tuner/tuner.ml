module Machine = Yasksite_arch.Machine
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Config = Yasksite_ecm.Config
module Model = Yasksite_ecm.Model
module Advisor = Yasksite_ecm.Advisor
module Measure = Yasksite_engine.Measure
module Lint = Yasksite_lint.Lint

type result = {
  chosen : Config.t;
  predicted_lups : float option;
  measured_lups : float;
  model_evaluations : int;
  kernel_runs : int;
  wall_seconds : float;
}

let tune_analytic m spec ~dims ~threads =
  let t0 = Sys.time () in
  Lint.gate ~context:"Tuner.tune_analytic" (Lint.Kernel.spec spec);
  let info = Analysis.of_spec spec in
  let ranked = Advisor.rank_all m info ~dims ~threads in
  let chosen, prediction =
    match ranked with
    | [] -> invalid_arg "Tuner.tune_analytic: empty space"
    | (c, p) :: _ -> (c, p)
  in
  let meas = Measure.stencil_sweep m spec ~dims ~config:chosen in
  { chosen;
    predicted_lups = Some prediction.Model.lups_chip;
    measured_lups = meas.Measure.lups_chip;
    model_evaluations = List.length ranked;
    kernel_runs = 1;
    wall_seconds = Sys.time () -. t0 }

let tune_empirical ?space m spec ~dims ~threads =
  let t0 = Sys.time () in
  Lint.gate ~context:"Tuner.tune_empirical" (Lint.Kernel.spec spec);
  (* User-supplied spaces are gated; advisor-generated candidates are the
     model's own business (it ranks bad ones down rather than refusing). *)
  (match space with
  | Some s ->
      Lint.gate ~context:"Tuner.tune_empirical"
        (Lint.Config.space m (Analysis.of_spec spec) ~dims s)
  | None -> ());
  let space =
    match space with
    | Some s -> s
    | None ->
        let rank = spec.Spec.rank in
        Advisor.space m ~dims ~threads ~rank
  in
  if space = [] then invalid_arg "Tuner.tune_empirical: empty space";
  let best = ref None in
  let runs = ref 0 in
  List.iter
    (fun config ->
      let meas = Measure.stencil_sweep m spec ~dims ~config in
      incr runs;
      let lups = meas.Measure.lups_chip in
      match !best with
      | Some (_, best_lups) when best_lups >= lups -> ()
      | _ -> best := Some (config, lups))
    space;
  let chosen, measured_lups =
    match !best with Some cl -> cl | None -> assert false
  in
  { chosen;
    predicted_lups = None;
    measured_lups;
    model_evaluations = 0;
    kernel_runs = !runs;
    wall_seconds = Sys.time () -. t0 }

type comparison = {
  analytic : result;
  empirical : result;
  cost_ratio : float;
  wall_ratio : float;
  quality : float;
}

let compare_strategies ?space m spec ~dims ~threads =
  let analytic = tune_analytic m spec ~dims ~threads in
  let empirical = tune_empirical ?space m spec ~dims ~threads in
  { analytic;
    empirical;
    cost_ratio =
      float_of_int empirical.kernel_runs /. float_of_int analytic.kernel_runs;
    wall_ratio = empirical.wall_seconds /. max 1e-9 analytic.wall_seconds;
    quality = analytic.measured_lups /. empirical.measured_lups }
