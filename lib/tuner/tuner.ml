module Machine = Yasksite_arch.Machine
module Spec = Yasksite_stencil.Spec
module Analysis = Yasksite_stencil.Analysis
module Lower = Yasksite_stencil.Lower
module Config = Yasksite_ecm.Config
module Model = Yasksite_ecm.Model
module Advisor = Yasksite_ecm.Advisor
module Cache = Yasksite_ecm.Cache
module Measure = Yasksite_engine.Measure
module Lint = Yasksite_lint.Lint
module Clock = Yasksite_util.Clock
module Prng = Yasksite_util.Prng
module Pool = Yasksite_util.Pool
module Plan = Yasksite_faults.Plan
module Policy = Yasksite_faults.Policy
module Retry = Yasksite_faults.Retry
module Checkpoint = Yasksite_faults.Checkpoint
module Store = Yasksite_store.Store

type skipped = {
  s_config : Config.t;
  s_reason : string;
  s_attempts : int;
}

type result = {
  chosen : Config.t;
  predicted_lups : float option;
  measured_lups : float;
  model_evaluations : int;
  kernel_runs : int;
  attempts : int;
  skipped : skipped list;
  pruned : int;
  degraded : bool;
  wall_seconds : float;
}

let tune_analytic ?(cache = Cache.shared) ?pool ?(clock = Clock.system)
    ?(sanitize = false) m spec ~dims ~threads =
  let t0 = Clock.now clock in
  Lint.gate ~context:"Tuner.tune_analytic" (Lint.Kernel.spec spec);
  let info = Analysis.of_spec spec in
  (* The lowered plan is what every measurement below executes; a plan
     failing the YS5xx dataflow verifier (malformed body, counts
     disagreeing with the analysis the model is fed) would poison every
     prediction, so it is refused before any evaluation. Bounds (YS501)
     need concrete grids and are checked by Measure's sweeps. *)
  let plan = Lower.lower spec in
  Lint.gate ~context:"Tuner.tune_analytic"
    (Lint.Plan.structure plan @ Lint.Plan.counts_agree plan info);
  (* Schedule-legality pruning happens before any model evaluation:
     illegal candidates are never scored, and their count is reported. *)
  let full = Advisor.space m ~dims ~threads ~rank:spec.Spec.rank in
  let ranked =
    Advisor.rank_all ~cache ?pool
      ~filter:(Lint.Schedule.legal info ~dims)
      m info ~dims ~threads
  in
  let pruned = List.length full - List.length ranked in
  if ranked = [] && full <> [] then
    Lint.gate ~context:"Tuner.tune_analytic"
      (Lint.Schedule.space info ~dims full);
  let chosen, prediction =
    match ranked with
    | [] -> invalid_arg "Tuner.tune_analytic: empty space"
    | (c, p) :: _ -> (c, p)
  in
  let meas =
    Measure.stencil_sweep ~clock ~sanitize m spec ~dims ~config:chosen
  in
  { chosen;
    predicted_lups = Some prediction.Model.lups_chip;
    measured_lups = meas.Measure.lups_chip;
    model_evaluations = List.length ranked;
    kernel_runs = 1;
    attempts = 1;
    skipped = [];
    pruned;
    degraded = false;
    wall_seconds = Clock.now clock -. t0 }

(* Checkpoints bind to the full identity of a sweep: a file written for a
   different machine, kernel, grid, space or fault seed loads as empty.
   The kernel is identified by its plan fingerprint (content-addressed:
   resumes survive renames but miss on any behavioural change to the
   expression). [checkpoint_scheme] names the fault/jitter-stream and
   key derivation; it is bumped whenever either changes (scheme 2:
   per-candidate indexed streams; scheme 3: plan-fingerprint kernel
   identity) so checkpoints written under an older regime miss instead
   of silently mixing. *)
let checkpoint_scheme = 3

let checkpoint_key m spec ~dims ~threads ~space ~(faults : Plan.t) =
  let dims_s =
    String.concat "x" (Array.to_list (Array.map string_of_int dims))
  in
  let space_s = String.concat ";" (List.map Config.describe space) in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "scheme=%d|%s|%s|%s|t=%d|seed=%d|%s" checkpoint_scheme
          m.Machine.name (Lower.fingerprint spec) dims_s threads
          faults.Plan.seed space_s))

(* Jitter streams are derived from a seed decorrelated from the fault
   seed so backoff-delay sampling never perturbs fault outcomes. *)
let jitter_seed_salt = 0x5DEECE66

(* Checkpoints persisted through the store reuse the file format
   verbatim (render/parse) under this namespace; the entry key is the
   same scheme-3 sweep identity a checkpoint file carries in its
   header, so the store path inherits every stale-key guarantee. *)
let checkpoint_ns = "ckpt-v1"

let tune_empirical ?space ?(faults = Plan.none) ?(policy = Policy.default)
    ?(clock = Clock.system) ?checkpoint ?store ?pool ?(cache = Cache.shared)
    ?(sanitize = false) m spec ~dims ~threads =
  let t0 = Clock.now clock in
  Lint.gate ~context:"Tuner.tune_empirical" (Lint.Kernel.spec spec);
  let info = Analysis.of_spec spec in
  (* Same YS5xx plan gate as [tune_analytic]: refuse a malformed or
     miscounted kernel plan before any candidate is measured. *)
  let plan_gate = Lower.lower spec in
  Lint.gate ~context:"Tuner.tune_empirical"
    (Lint.Plan.structure plan_gate @ Lint.Plan.counts_agree plan_gate info);
  (* User-supplied spaces are gated; advisor-generated candidates are the
     model's own business (it ranks bad ones down rather than refusing). *)
  (match space with
  | Some s ->
      Lint.gate ~context:"Tuner.tune_empirical" (Lint.Config.space m info ~dims s)
  | None -> ());
  let space =
    match space with
    | Some s -> s
    | None ->
        let rank = spec.Spec.rank in
        Advisor.space m ~dims ~threads ~rank
  in
  (* Schedule-legality pruning before any pool execution: candidates the
     analyzer refutes are never measured. A space with no legal candidate
     at all gates with the offending YS4xx findings. *)
  let full_space = space in
  let space = List.filter (Lint.Schedule.legal info ~dims) full_space in
  let pruned = List.length full_space - List.length space in
  if space = [] && full_space <> [] then
    Lint.gate ~context:"Tuner.tune_empirical"
      (Lint.Schedule.space info ~dims full_space);
  if space = [] then invalid_arg "Tuner.tune_empirical: empty space";
  (* Virtual time: the injected clock plus every charged backoff delay
     and simulated timeout — budgets see what a real sweep would pay
     without the harness actually sleeping. *)
  let charged = ref 0.0 in
  let vnow () = Clock.now clock +. !charged in
  let sleep d = charged := !charged +. d in
  let deadline = t0 +. policy.Policy.pass_budget_s in
  (* Per-candidate fault and jitter streams, derived in O(1) from the
     seeds by candidate index: candidate [i] draws the same outcomes
     whether the sweep runs candidates in order or spread over domains,
     which is what makes parallel tuning bit-identical to sequential. *)
  let injector_at idx = Plan.injector_at faults ~index:idx in
  let jitter_at idx =
    Prng.create_indexed ~seed:(faults.Plan.seed lxor jitter_seed_salt)
      ~index:idx
  in
  let key =
    lazy (checkpoint_key m spec ~dims ~threads ~space ~faults)
  in
  (* Persistence backend: an explicit [checkpoint] file wins; otherwise
     a [store] keeps the sweep resumable under the same scheme-3 key.
     Both speak the Checkpoint text format, so a resumed sweep cannot
     tell them apart. *)
  let ckpt_load, ckpt_save =
    match (checkpoint, store) with
    | Some path, _ ->
        ( (fun k -> Checkpoint.load ~path ~key:k),
          Some (fun k es -> Checkpoint.save ~path ~key:k es) )
    | None, Some s ->
        ( (fun k ->
            match Store.get s ~ns:checkpoint_ns ~key:k with
            | None -> []
            | Some payload -> Checkpoint.parse ~key:k payload),
          Some
            (fun k es ->
              Store.put s ~ns:checkpoint_ns ~key:k (Checkpoint.render ~key:k es))
        )
    | None, None -> ((fun _ -> []), None)
  in
  let entries = ref (ckpt_load (Lazy.force key)) in
  let record idx e =
    match ckpt_save with
    | None -> ()
    | Some save ->
        entries := !entries @ [ (idx, e) ];
        save (Lazy.force key) !entries
  in
  let best = ref None in
  let measured_at = Hashtbl.create 16 in
  let runs = ref 0 in
  let attempts_total = ref 0 in
  let skipped = ref [] in
  let visited = ref 0 in
  let exhausted = ref 0 in
  let out_of_budget = ref false in
  let consider idx config lups =
    Hashtbl.replace measured_at idx lups;
    match !best with
    | Some (_, best_lups) when best_lups >= lups -> ()
    | _ -> best := Some (config, lups)
  in
  (* Evaluate one candidate under the given virtual-time regime: run
     [policy.repeats] retried measurements drawing faults and backoff
     jitter from the candidate's own streams. Returns the surviving
     samples (oldest first), attempts spent, successful runs, and the
     give-up reason if the candidate died. *)
  let run_candidate ~vnow ~sleep ~deadline idx config =
    let inj = injector_at idx in
    let jitter_rng = jitter_at idx in
    let measure_once () =
      match Plan.draw inj with
      | Plan.Transient_failure -> Error "transient failure"
      | Plan.Timeout t ->
          sleep t;
          Error "timeout"
      | Plan.Run factor ->
          let meas =
            Measure.stencil_sweep ~clock ~sanitize m spec ~dims ~config
          in
          Ok (meas.Measure.lups_chip /. factor)
    in
    let samples = ref [] in
    let cand_attempts = ref 0 in
    let cand_runs = ref 0 in
    let gave_up = ref None in
    (try
       for _ = 1 to policy.Policy.repeats do
         match
           Retry.run ~policy ~rng:jitter_rng ~now:vnow ~sleep ~deadline
             measure_once
         with
         | Retry.Success (lups, a) ->
             cand_attempts := !cand_attempts + a;
             incr cand_runs;
             samples := lups :: !samples
         | Retry.Gave_up { reason; attempts = a } ->
             cand_attempts := !cand_attempts + a;
             gave_up := Some reason;
             raise Exit
       done
     with Exit -> ());
    (Array.of_list (List.rev !samples), !cand_attempts, !cand_runs, !gave_up)
  in
  (* Account one evaluated candidate into the sweep's global state, in
     candidate order (both the sequential loop and the parallel replay
     call this with increasing [idx]). *)
  let account idx config (samples, cand_attempts, cand_runs, gave_up) =
    runs := !runs + cand_runs;
    attempts_total := !attempts_total + cand_attempts;
    match (samples, gave_up) with
    | [||], reason ->
        let reason = Option.value reason ~default:"no samples" in
        if reason = "pass budget exhausted" then begin
          (* The sweep ran out of wall budget mid-candidate: the
             candidate is truncated, not dead. Keep it out of the
             checkpoint (a resumed sweep retries it) and out of the
             failure fraction. *)
          out_of_budget := true;
          decr visited;
          skipped :=
            { s_config = config; s_reason = reason;
              s_attempts = cand_attempts }
            :: !skipped
        end
        else begin
          incr exhausted;
          skipped :=
            { s_config = config; s_reason = reason;
              s_attempts = cand_attempts }
            :: !skipped;
          record idx (Checkpoint.Skipped { reason; attempts = cand_attempts })
        end
    | samples, _ ->
        let lups = Policy.robust_combine policy samples in
        consider idx config lups;
        record idx
          (Checkpoint.Done
             { lups; runs = Array.length samples; attempts = cand_attempts })
  in
  let parallel_width =
    match pool with Some p -> Pool.size p | None -> 1
  in
  (* Candidate evaluations computed ahead of the accounting replay by
     the parallel phase; [None] where the sequential path (or the
     checkpoint) makes evaluation unnecessary. *)
  let precomputed =
    match pool with
    | Some pool when parallel_width > 1 ->
        (* Phase A: evaluate every not-yet-checkpointed candidate on the
           pool. The pass deadline is enforced at candidate granularity:
           before starting a candidate, the real clock is checked
           against the deadline (charged virtual time is only summed in
           the replay below, so the parallel check sees wall time only)
           and expired candidates are left unevaluated; the replay turns
           the first unevaluated candidate and everything after it into
           budget skips. A candidate that has already started runs to
           completion with its own candidate-local virtual clock — a
           sweep whose budget expires mid-candidate truncates that
           candidate sequentially but completes it in parallel, the one
           divergence from a budget-bound sequential sweep. With
           non-binding budgets the two paths are bit-identical. *)
        let cands = Array.of_list space in
        let results = Array.make (Array.length cands) None in
        let todo =
          List.filter
            (fun idx -> List.assoc_opt idx !entries = None)
            (List.init (Array.length cands) Fun.id)
        in
        let todo = Array.of_list todo in
        Pool.parallel_for ~chunk:1 pool ~n:(Array.length todo) (fun i ->
            let idx = todo.(i) in
            if Clock.now clock <= deadline then begin
              let local = ref 0.0 in
              let vnow () = Clock.now clock +. !local in
              let sleep d = local := !local +. d in
              let r =
                run_candidate ~vnow ~sleep ~deadline:infinity idx cands.(idx)
              in
              results.(idx) <- Some (r, !local)
            end);
        Some results
    | _ -> None
  in
  (* Phase B (or the whole sweep when sequential): walk candidates in
     order, applying checkpoint reuse, the pass deadline, and global
     accounting deterministically. *)
  List.iteri
    (fun idx config ->
      match List.assoc_opt idx !entries with
      | Some (Checkpoint.Done { lups; _ }) ->
          (* Completed by a previous pass: reuse without re-running. *)
          incr visited;
          consider idx config lups
      | Some (Checkpoint.Skipped { reason; attempts }) ->
          incr visited;
          incr exhausted;
          skipped :=
            { s_config = config; s_reason = reason; s_attempts = attempts }
            :: !skipped
      | None ->
          (* Sequentially the deadline is checked (in virtual time)
             before each candidate runs. In parallel the check already
             happened at the candidate's Phase A start — a candidate
             left unevaluated there means the deadline expired before
             it could begin, so it and every later candidate become
             budget skips; re-checking the clock here would discard
             results whose measurement cost was already paid. *)
          let budget_hit =
            !out_of_budget
            ||
            match precomputed with
            | Some results -> Option.is_none results.(idx)
            | None -> vnow () > deadline
          in
          if budget_hit then begin
            out_of_budget := true;
            skipped :=
              { s_config = config; s_reason = "pass budget exhausted";
                s_attempts = 0 }
              :: !skipped
          end
          else begin
            incr visited;
            match precomputed with
            | Some results ->
                let r, local_charged =
                  match results.(idx) with
                  | Some r -> r
                  | None -> assert false
                in
                charged := !charged +. local_charged;
                account idx config r
            | None ->
                account idx config
                  (run_candidate ~vnow ~sleep ~deadline idx config)
          end)
    space;
  let fail_fraction =
    if !visited = 0 then 1.0
    else float_of_int !exhausted /. float_of_int !visited
  in
  let degraded =
    !best = None || fail_fraction > policy.Policy.degrade_threshold
  in
  if not degraded then begin
    let chosen, measured_lups =
      match !best with Some cl -> cl | None -> assert false
    in
    { chosen;
      predicted_lups = None;
      measured_lups;
      model_evaluations = 0;
      kernel_runs = !runs;
      attempts = !attempts_total;
      skipped = List.rev !skipped;
      pruned;
      degraded = false;
      wall_seconds = vnow () -. t0 }
  end
  else begin
    (* Graceful degradation: too many candidates died empirically, so
       fall back to the analytic ranking of the same space (the paper's
       point — the model needs no runs at all). *)
    let predict c = (Cache.predict cache m info ~dims ~config:c).Model.lups_chip in
    let lups =
      (* Pure model, so the parallel map equals the sequential one. *)
      match pool with
      | Some pool when Pool.size pool > 1 ->
          Pool.parallel_map pool space ~f:predict
      | _ -> List.map predict space
    in
    let scored = List.mapi (fun idx (c, p) -> (idx, c, p)) (List.combine space lups) in
    let best_idx, chosen, predicted =
      List.fold_left
        (fun (bi, bc, bp) (i, c, p) ->
          if p > bp then (i, c, p) else (bi, bc, bp))
        (List.hd scored) (List.tl scored)
    in
    let measured_lups =
      match Hashtbl.find_opt measured_at best_idx with
      | Some l -> l
      | None -> predicted
    in
    { chosen;
      predicted_lups = Some predicted;
      measured_lups;
      model_evaluations = List.length space;
      kernel_runs = !runs;
      attempts = !attempts_total;
      skipped = List.rev !skipped;
      pruned;
      degraded = true;
      wall_seconds = vnow () -. t0 }
  end

type comparison = {
  analytic : result;
  empirical : result;
  cost_ratio : float;
  wall_ratio : float;
  quality : float;
}

let compare_strategies ?space ?faults ?policy ?pool m spec ~dims ~threads =
  let analytic = tune_analytic ?pool m spec ~dims ~threads in
  let empirical =
    tune_empirical ?space ?faults ?policy ?pool m spec ~dims ~threads
  in
  { analytic;
    empirical;
    cost_ratio =
      float_of_int empirical.kernel_runs /. float_of_int analytic.kernel_runs;
    wall_ratio = empirical.wall_seconds /. max 1e-9 analytic.wall_seconds;
    quality = analytic.measured_lups /. empirical.measured_lups }
