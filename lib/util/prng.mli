(** Deterministic pseudo-random number generation.

    All randomized components of the library (workload generators, noise
    models, property-test helpers) draw from this splittable generator so
    that every experiment is bit-reproducible across runs and platforms,
    independent of the [Random] module's global state. *)

type t
(** Mutable generator state (splitmix64). *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val create_indexed : seed:int -> index:int -> t
(** [create_indexed ~seed ~index] is the generator the [(index+1)]-th
    call to [split] on [create ~seed] would return, computed in O(1)
    without shared state. Lets concurrent consumers (one per candidate,
    say) draw the exact streams sequential splitting would have handed
    out. [index] must be non-negative. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller); consumes two uniform draws. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
