(** Descriptive statistics and comparison metrics used throughout the
    experiment harness. All functions raise [Invalid_argument] on empty
    input unless stated otherwise. *)

val mean : float array -> float

val geomean : float array -> float
(** Geometric mean; requires strictly positive entries. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

type welford
(** One-pass (Welford) accumulator for streaming mean and variance.
    Numerically stable: no catastrophic cancellation for samples with a
    large common offset, unlike the naive sum-of-squares formula. *)

val welford_create : unit -> welford

val welford_add : welford -> float -> unit

val welford_count : welford -> int

val welford_mean : welford -> float
(** Raises [Invalid_argument] on an empty accumulator. *)

val welford_variance : welford -> float
(** Sample variance (n-1 denominator); 0 for singletons. Raises
    [Invalid_argument] on an empty accumulator. *)

val welford_stddev : welford -> float

val mean_variance : float array -> float * float
(** One-pass [(mean, sample variance)] of a non-empty array; agrees with
    [(mean a, stddev a ** 2)] up to rounding while reading the data
    once. *)

val median : float array -> float

val mad : float array -> float
(** Median absolute deviation (raw, unscaled): the median of
    [|x - median|]. Multiply by 1.4826 for a normal-consistent scale
    estimate. *)

val trimmed_mean : float array -> frac:float -> float
(** Mean after discarding [floor (frac * n)] entries from each end of
    the sorted sample; [frac] in [\[0, 0.5)]. *)

val percentile : float array -> p:float -> float
(** Linear-interpolation percentile, [p] in [\[0, 100\]]. *)

val minimum : float array -> float

val maximum : float array -> float

val rel_error : predicted:float -> measured:float -> float
(** [(predicted - measured) / measured]; signed. [measured] must be
    non-zero. *)

val abs_rel_error : predicted:float -> measured:float -> float
(** Absolute value of {!rel_error}. *)

val kendall_tau : float array -> float array -> float
(** Kendall rank-correlation coefficient (tau-a) between two equal-length
    score vectors; 1.0 means identical ranking, -1.0 reversed. Arrays must
    have equal length >= 2. *)

val top1_agrees : better_is_lower:bool -> float array -> float array -> bool
(** Whether both score vectors select the same best index. *)

val linspace : lo:float -> hi:float -> n:int -> float array
(** [n] evenly spaced points from [lo] to [hi] inclusive; [n >= 2]. *)
