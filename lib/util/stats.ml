let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty input")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let geomean a =
  check_nonempty "Stats.geomean" a;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive entry";
        acc +. log x)
      0.0 a
  in
  exp (sum_logs /. float_of_int (Array.length a))

let stddev a =
  check_nonempty "Stats.stddev" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))
  end

(* One-pass mean/variance (Welford 1962): numerically stable streaming
   moments, so benchmark loops can fold samples without a second pass. *)
type welford = { mutable w_n : int; mutable w_mean : float; mutable w_m2 : float }

let welford_create () = { w_n = 0; w_mean = 0.0; w_m2 = 0.0 }

let welford_add w x =
  w.w_n <- w.w_n + 1;
  let delta = x -. w.w_mean in
  w.w_mean <- w.w_mean +. (delta /. float_of_int w.w_n);
  w.w_m2 <- w.w_m2 +. (delta *. (x -. w.w_mean))

let welford_count w = w.w_n

let welford_mean w =
  if w.w_n = 0 then invalid_arg "Stats.welford_mean: empty accumulator";
  w.w_mean

let welford_variance w =
  if w.w_n = 0 then invalid_arg "Stats.welford_variance: empty accumulator";
  if w.w_n = 1 then 0.0 else w.w_m2 /. float_of_int (w.w_n - 1)

let welford_stddev w = sqrt (welford_variance w)

let mean_variance a =
  check_nonempty "Stats.mean_variance" a;
  let w = welford_create () in
  Array.iter (welford_add w) a;
  (welford_mean w, welford_variance w)

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a ~p =
  check_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let median a = percentile a ~p:50.0

let mad a =
  check_nonempty "Stats.mad" a;
  let m = median a in
  median (Array.map (fun x -> abs_float (x -. m)) a)

let trimmed_mean a ~frac =
  check_nonempty "Stats.trimmed_mean" a;
  if frac < 0.0 || frac >= 0.5 then
    invalid_arg "Stats.trimmed_mean: frac must be in [0, 0.5)";
  let b = sorted_copy a in
  let n = Array.length b in
  let k = int_of_float (floor (frac *. float_of_int n)) in
  mean (Array.sub b k (n - (2 * k)))

let minimum a =
  check_nonempty "Stats.minimum" a;
  Array.fold_left min a.(0) a

let maximum a =
  check_nonempty "Stats.maximum" a;
  Array.fold_left max a.(0) a

let rel_error ~predicted ~measured =
  if measured = 0.0 then invalid_arg "Stats.rel_error: zero measurement";
  (predicted -. measured) /. measured

let abs_rel_error ~predicted ~measured =
  abs_float (rel_error ~predicted ~measured)

let kendall_tau a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Stats.kendall_tau: length mismatch";
  if n < 2 then invalid_arg "Stats.kendall_tau: need at least two points";
  let concordant = ref 0 and discordant = ref 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let da = compare a.(i) a.(j) and db = compare b.(i) b.(j) in
      if da * db > 0 then incr concordant
      else if da * db < 0 then incr discordant
    done
  done;
  let pairs = n * (n - 1) / 2 in
  float_of_int (!concordant - !discordant) /. float_of_int pairs

let argbest ~better_is_lower a =
  check_nonempty "Stats.argbest" a;
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    let improves =
      if better_is_lower then a.(i) < a.(!best) else a.(i) > a.(!best)
    in
    if improves then best := i
  done;
  !best

let top1_agrees ~better_is_lower a b =
  argbest ~better_is_lower a = argbest ~better_is_lower b

let linspace ~lo ~hi ~n =
  if n < 2 then invalid_arg "Stats.linspace: need n >= 2";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))
