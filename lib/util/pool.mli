(** A reusable pool of worker domains for data-parallel sections.

    The pool owns [size - 1] worker domains (spawned lazily on the first
    parallel call, parked between jobs) and the calling domain
    participates in every job, so a pool of size [n] runs work on [n]
    domains. Scheduling is chunked self-service over the index space,
    which load-balances uneven work without per-index synchronisation.

    Determinism: {!parallel_map} and {!parallel_map_array} preserve
    order — element [i] of the result is [f] of element [i] of the
    input, whatever domain computed it — so for pure [f] they equal
    their sequential counterparts exactly.

    Exception safety: if [f] raises, the first exception (with its
    backtrace) is re-raised in the caller once every participant has
    quiesced; remaining chunks are abandoned and the pool stays
    usable. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] builds a pool that runs jobs on [domains]
    domains in total (the caller plus [domains - 1] lazily spawned
    workers). [domains] must be >= 1; a pool of 1 runs everything
    inline with no synchronisation. Default: {!default_domains}. *)

val size : t -> int
(** Total participating domains, including the caller. *)

val default_domains : unit -> int
(** The [YASKSITE_DOMAINS] environment variable if set (must be a
    positive integer), else [Domain.recommended_domain_count ()]. *)

val shared : unit -> t
(** A process-wide pool of {!default_domains} width, created on first
    use and never shut down. Intended for entry points that do not
    manage pool lifetime themselves. *)

val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f i] for every [i] in [[0, n)], in
    chunks of [chunk] consecutive indices (default: [n / (4 * size)],
    at least 1) claimed dynamically by the participating domains.
    [f] must be safe to call concurrently with itself. Nested calls
    from inside a job — whether on a worker domain or on the calling
    domain while it runs its share of the job — run inline
    (sequentially) rather than deadlock. Jobs submitted concurrently
    by distinct domains are serialised: the second submitter blocks
    until the first job completes. *)

val parallel_map : ?chunk:int -> t -> 'a list -> f:('a -> 'b) -> 'b list
(** Order-preserving parallel map: for pure [f],
    [parallel_map t l ~f = List.map f l]. *)

val parallel_map_array : ?chunk:int -> t -> 'a array -> f:('a -> 'b) -> 'b array
(** Array analogue of {!parallel_map}. *)

val shutdown : t -> unit
(** Join the pool's workers. Idempotent; later parallel calls on the
    pool raise [Invalid_argument]. The shared pool need not be shut
    down. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on the
    way out (exceptions included). *)
