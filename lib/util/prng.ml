type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

(* The state of the (index+1)-th split of [create ~seed], computed
   directly: the parent's k-th raw output is mix(seed + k*gamma), so
   indexed generators can be derived in O(1) from any position — the
   key to giving each parallel tuning candidate the same stream it
   would have received from sequential splitting. *)
let create_indexed ~seed ~index =
  if index < 0 then invalid_arg "Prng.create_indexed: negative index";
  { state =
      mix
        (Int64.add (Int64.of_int seed)
           (Int64.mul golden_gamma (Int64.of_int (index + 1)))) }

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod bound

let float t =
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let float_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  (* Box–Muller; [1 - float] keeps the log argument in (0, 1]. *)
  let u1 = 1.0 -. float t in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t ~bound:(Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
