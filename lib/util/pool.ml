(* A reusable pool of worker domains. Workers are spawned lazily on the
   first parallel call and then parked in [Condition.wait] between jobs,
   so repeated parallel sections (a tuning sweep's thousands of model
   evaluations, every block row of a sweep) pay the spawn cost once.

   Scheduling is chunked self-service: a job publishes an atomic cursor
   over its index space and every participant — the caller's domain
   included — repeatedly claims the next chunk until the space is
   exhausted. Exceptions raised by the work function are captured
   (first one wins), the remaining chunks are abandoned, and the
   exception is re-raised in the caller with its backtrace once all
   participants have quiesced, leaving the pool reusable. *)

type t = {
  domains : int; (* total participants, including the calling domain *)
  submit : Mutex.t; (* held for a whole job; serialises submitters *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable epoch : int; (* bumped once per job; wakes the workers *)
  mutable unfinished : int; (* workers still inside the current job *)
  mutable shutdown : bool;
  mutable workers : unit Domain.t list; (* spawned lazily, length domains-1 *)
}

(* Work functions may themselves call into pool operations (a parallel
   tuner measuring candidates whose sweeps are pool-aware). A nested
   parallel section executed by any domain that is already inside a
   job — a worker, or the caller while it runs its own share of the
   job — must not wait for the pool (the workers are all busy running
   the outer job), so it runs its chunks inline instead. Workers set
   this flag once at spawn; the submitting domain sets it around the
   job body in [run_job]. *)
let in_job : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_domains () =
  match Sys.getenv_opt "YASKSITE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "YASKSITE_DOMAINS=%S: expected a positive integer"
               s))
  | None -> Domain.recommended_domain_count ()

let create ?domains () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  { domains;
    submit = Mutex.create ();
    mutex = Mutex.create ();
    cond = Condition.create ();
    job = None;
    epoch = 0;
    unfinished = 0;
    shutdown = false;
    workers = [] }

let size t = t.domains

let rec worker_loop t seen_epoch =
  Mutex.lock t.mutex;
  while (not t.shutdown) && t.epoch = seen_epoch do
    Condition.wait t.cond t.mutex
  done;
  if t.shutdown then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = match t.job with Some j -> j | None -> fun () -> () in
    Mutex.unlock t.mutex;
    (* Jobs are wrapped by [run_job] and never raise. *)
    job ();
    Mutex.lock t.mutex;
    t.unfinished <- t.unfinished - 1;
    if t.unfinished = 0 then Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    worker_loop t epoch
  end

let ensure_spawned t =
  if t.workers = [] && t.domains > 1 then
    t.workers <-
      List.init (t.domains - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_job true;
              worker_loop t 0))

(* Run [body] on every participant and wait for all of them. [body] must
   be safe to run concurrently with itself and must not raise (the
   parallel drivers below guarantee both). *)
let run_job t body =
  if t.domains = 1 || Domain.DLS.get in_job then body ()
  else begin
    (* [t.submit] is held for the whole job so that a second domain
       submitting concurrently waits for this job to finish instead of
       overwriting [job]/[unfinished]/[epoch] mid-flight. Nested
       sections never reach this lock: every participant, the caller
       included, has [in_job] set and runs them inline above. *)
    Mutex.lock t.submit;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.submit)
      (fun () ->
        Mutex.lock t.mutex;
        if t.shutdown then begin
          Mutex.unlock t.mutex;
          invalid_arg "Pool: used after shutdown"
        end;
        ensure_spawned t;
        t.job <- Some body;
        t.unfinished <- t.domains - 1;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        Domain.DLS.set in_job true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_job false)
          body;
        Mutex.lock t.mutex;
        while t.unfinished > 0 do
          Condition.wait t.cond t.mutex
        done;
        t.job <- None;
        Mutex.unlock t.mutex)
  end

let parallel_for ?chunk t ~n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative count";
  if n > 0 then begin
    if t.domains = 1 || n = 1 || Domain.DLS.get in_job then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let chunk =
        match chunk with
        | Some c ->
            if c < 1 then invalid_arg "Pool.parallel_for: chunk must be >= 1";
            c
        | None ->
            (* Small enough for load balance, large enough that the
               atomic claim is amortised. *)
            max 1 (n / (t.domains * 4))
      in
      let next = Atomic.make 0 in
      let failed = Atomic.make None in
      let body () =
        let continue = ref true in
        while !continue do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= n || Atomic.get failed <> None then continue := false
          else begin
            let hi = min n (lo + chunk) in
            try
              for i = lo to hi - 1 do
                f i
              done
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failed None (Some (e, bt)))
          end
        done
      in
      run_job t body;
      match Atomic.get failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let parallel_map_array ?chunk t a ~f =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?chunk t ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map (function Some x -> x | None -> assert false) out
  end

let parallel_map ?chunk t l ~f =
  Array.to_list (parallel_map_array ?chunk t (Array.of_list l) ~f)

let shutdown t =
  Mutex.lock t.mutex;
  if not t.shutdown then begin
    t.shutdown <- true;
    Condition.broadcast t.cond
  end;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One shared pool for callers that do not manage their own (CLI paths,
   tests). Created on first use at the environment-selected width; never
   shut down — parked workers cost nothing and die with the process. *)
let shared_pool = ref None

let shared_mutex = Mutex.create ()

let shared () =
  Mutex.lock shared_mutex;
  let t =
    match !shared_pool with
    | Some t -> t
    | None ->
        let t = create () in
        shared_pool := Some t;
        t
  in
  Mutex.unlock shared_mutex;
  t
