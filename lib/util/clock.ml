type t =
  | System
  | Fun of (unit -> float)
  | Manual of float ref

let system = System

let of_fun f = Fun f

let manual ?(start = 0.0) () = Manual (ref start)

let now = function
  | System -> Sys.time ()
  | Fun f -> f ()
  | Manual r -> !r

let advance t dt =
  match t with
  | Manual r ->
      if dt < 0.0 then invalid_arg "Clock.advance: negative delta";
      r := !r +. dt
  | System | Fun _ -> invalid_arg "Clock.advance: not a manual clock"
