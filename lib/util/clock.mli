(** Injectable monotonic clock.

    Every component that accounts wall time (the measurement harness,
    the tuner's budget and backoff logic) reads time through a [Clock.t]
    instead of calling [Sys.time] directly, so deadline and budget
    behaviour is testable with a deterministic clock. *)

type t

val system : t
(** CPU-time clock backed by [Sys.time] — the default everywhere. *)

val of_fun : (unit -> float) -> t
(** Arbitrary time source (e.g. a counter that advances on every read). *)

val manual : ?start:float -> unit -> t
(** A clock that only moves when {!advance} is called; starts at
    [start] (default 0). *)

val now : t -> float
(** Current reading, in seconds. *)

val advance : t -> float -> unit
(** Advance a {!manual} clock by a non-negative delta. Raises
    [Invalid_argument] on other clocks or negative deltas. *)
