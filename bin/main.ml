(* yasksite command-line interface: describe machines and kernels, run
   the analytic model, measure on the simulated machine, autotune, and
   rank ODE implementation variants. *)
open Cmdliner
open Yasksite

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                             *)

let machine_of_string ~scale name =
  let base =
    if Filename.check_suffix name ".machine" then
      match Machine_file.load name with
      | Ok m -> Ok m
      | Error e -> Error (`Msg (name ^ ": " ^ e))
    else begin
      match String.lowercase_ascii name with
      | "clx" | "cascadelake" | "cascade-lake" -> Ok Machine.cascade_lake
      | "rome" -> Ok Machine.rome
      | "test" | "testchip" -> Ok Machine.test_chip
      | _ ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown machine %S (clx|rome|test, or a *.machine file)"
                 name))
    end
  in
  Result.map
    (fun m -> if scale > 1 then Machine.scaled ~factor:scale m else m)
    base

let dims_of_string s =
  try
    let parts = String.split_on_char 'x' s in
    let dims = Array.of_list (List.map int_of_string parts) in
    if Array.length dims < 1 || Array.length dims > 3 then
      Error (`Msg "dims must have rank 1..3")
    else Ok dims
  with _ -> Error (`Msg (Printf.sprintf "cannot parse dims %S (e.g. 96x96x96)" s))

let machine_arg =
  let doc =
    "Target machine: clx (Cascade Lake), rome (AMD Rome), test, or a path \
     to a *.machine description file."
  in
  Arg.(value & opt string "clx" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let scale_arg =
  let doc =
    "Shrink the machine's caches by this factor (simulation scale); use 1 \
     for the full-size machine (model-only commands)."
  in
  Arg.(value & opt int 8 & info [ "scale" ] ~docv:"N" ~doc)

let stencil_arg =
  let doc = "Stencil name from the suite (see the stencils command)." in
  Arg.(value & opt string "heat-3d-7pt" & info [ "s"; "stencil" ] ~docv:"NAME" ~doc)

let expr_arg =
  let doc =
    "Custom stencil expression instead of a suite stencil, e.g. \
     \"0.25*(f0(x-1)+f0(x+1))+0.5*f0(x)\" (rank inferred from --dims)."
  in
  Arg.(value & opt (some string) None & info [ "expr" ] ~docv:"EXPR" ~doc)

let dims_arg =
  let doc = "Grid dimensions, e.g. 96x96x96 (slowest dimension first)." in
  Arg.(value & opt string "64x64x64" & info [ "d"; "dims" ] ~docv:"DIMS" ~doc)

let threads_arg =
  let doc = "Active cores." in
  Arg.(value & opt int 1 & info [ "t"; "threads" ] ~docv:"N" ~doc)

let block_arg =
  let doc = "Spatial block extents, e.g. 0x16x128 (0 = unblocked dim)." in
  Arg.(value & opt (some string) None & info [ "block" ] ~docv:"DIMS" ~doc)

let fold_arg =
  let doc = "Vector fold extents, e.g. 1x2x4 (product = SIMD lanes)." in
  Arg.(value & opt (some string) None & info [ "fold" ] ~docv:"DIMS" ~doc)

let wavefront_arg =
  let doc = "Temporal (wavefront) blocking depth." in
  Arg.(value & opt int 1 & info [ "wavefront"; "wf" ] ~docv:"N" ~doc)

let nt_arg =
  let doc = "Use non-temporal (streaming) stores for the output." in
  Arg.(value & flag & info [ "nt"; "streaming-stores" ] ~doc)

let stagger_arg =
  let doc =
    "Wavefront plane shift per time step (default: streamed-dimension \
     radius + 1, the smallest provably legal stagger). The \
     schedule-legality analyzer rejects staggers below that bound."
  in
  Arg.(value & opt (some int) None & info [ "stagger" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Worker domains for parallel ranking, tuning and sweeping (default: \
     the YASKSITE_DOMAINS environment variable, else the runtime's \
     recommended domain count). Results are independent of this setting."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let sanitize_arg =
  let doc =
    "Run every measured sweep through the shadow-memory sanitizer: a \
     legal schedule measures identically, an illegal one aborts with a \
     YS45x trap instead of silently producing garbage."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let backend_arg =
  let backend =
    Arg.enum
      [ ("plan", Engine.Sweep.Plan_backend);
        ("closure", Engine.Sweep.Closure_backend);
        ("codegen", Engine.Sweep.Codegen_backend) ]
  in
  let doc =
    "Execution backend for sweeps and program stages: $(b,plan) (the \
     kernel-plan driver — row-hoisted table-addressed loops, the \
     default), $(b,closure) (the legacy per-point closure tree), or \
     $(b,codegen) (kernels specialized per plan fingerprint, compiled \
     out of process and cached; falls back to plan when no OCaml \
     toolchain is available). All produce bit-identical results — \
     including multi-stage program runs. Default: the \
     YASKSITE_BACKEND environment variable, else plan."
  in
  Arg.(
    value
    & opt (some backend) None
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

(* Explicit --domains gets a private pool (shut down on the way out);
   otherwise the environment-sized shared pool is used. *)
let with_domains domains f =
  match domains with
  | None -> f (Pool.shared ())
  | Some d -> Pool.with_pool ~domains:d f

(* Tuning commands persist by default: the shared model cache spills
   through the default store and safety certificates are written
   through, so a second invocation warm-starts from disk. [None] when
   YASKSITE_NO_STORE disables persistence — everything then runs
   purely in memory, with identical results. *)
let attach_default_store cache =
  match Store.default () with
  | None -> None
  | Some s ->
      Model_cache.attach_store cache s;
      Engine.Cert.set_store (Some s);
      Engine.Native.set_store (Some s);
      Some s

let stats_json_arg =
  let doc =
    "Emit one machine-readable JSON line of cache and store counters at \
     the end (suppresses the human-readable cache summary)."
  in
  Arg.(value & flag & info [ "stats-json" ] ~doc)

let stats_json_line ~cache ~store =
  let cs = Model_cache.stats cache in
  let store_part =
    match store with
    | None -> "null"
    | Some s ->
        let ss = Store.stats s in
        let u = Store.usage s in
        Printf.sprintf
          "{\"root\":%S,\"active\":%b,\"writable\":%b,\"hits\":%d,\
           \"misses\":%d,\"writes\":%d,\"write_errors\":%d,\
           \"quarantined\":%d,\"locks_broken\":%d,\"entries\":%d,\
           \"bytes\":%d,\"corrupt\":%d}"
          (Store.root s) (Store.active s) (Store.writable s) ss.Store.hits
          ss.Store.misses ss.Store.writes ss.Store.write_errors
          ss.Store.quarantined ss.Store.locks_broken u.Store.entries
          u.Store.bytes u.Store.corrupt
  in
  Printf.sprintf
    "{\"cache\":{\"hits\":%d,\"misses\":%d,\"entries\":%d,\
     \"store_hits\":%d,\"store_misses\":%d},\"store\":%s,\"kernels\":%s}"
    cs.Model_cache.hits cs.Model_cache.misses cs.Model_cache.entries
    cs.Model_cache.store_hits cs.Model_cache.store_misses store_part
    (Engine.Native.stats_json ())

(* The shared end-of-command summary of tune/ode: one JSON line under
   --stats-json, the familiar human cache line otherwise. *)
let print_run_stats ~stats_json ~cache ~store =
  if stats_json then print_endline (stats_json_line ~cache ~store)
  else begin
    let cs = Model_cache.stats cache in
    Printf.printf
      "\nmodel cache: %d hits / %d misses (%.0f%% hit rate, %d entries)\n"
      cs.Model_cache.hits cs.Model_cache.misses
      (100.0 *. Model_cache.hit_rate cache)
      cs.Model_cache.entries;
    (match store with
    | Some s when Store.active s ->
        let ss = Store.stats s in
        Printf.printf
          "store: %d hits / %d misses, %d writes (%d errors, %d \
           quarantined) at %s\n"
          ss.Store.hits ss.Store.misses ss.Store.writes ss.Store.write_errors
          ss.Store.quarantined (Store.root s)
    | _ -> ());
    let ks = Engine.Native.stats () in
    if
      ks.Engine.Native.compiles + ks.Engine.Native.store_hits
      + ks.Engine.Native.loads + ks.Engine.Native.fallbacks
      > 0
    then
      Printf.printf
        "kernel cache: %d compiled, %d from store, %d fallbacks\n"
        ks.Engine.Native.compiles ks.Engine.Native.store_hits
        ks.Engine.Native.fallbacks
  end

let ( let* ) = Result.bind

let build_config ?stagger ~block ~fold ~wavefront ~threads ~streaming_stores
    () =
  let parse_opt = function
    | None -> Ok None
    | Some s -> Result.map (fun d -> Some d) (dims_of_string s)
  in
  let* block = parse_opt block in
  let* fold = parse_opt fold in
  try
    Ok
      (Config.v ?block ?fold ?wavefront_stagger:stagger ~wavefront ~threads
         ~streaming_stores ())
  with Invalid_argument m -> Error (`Msg m)

let build_kernel ?expr ~machine ~scale ~stencil ~dims () =
  let* m = machine_of_string ~scale machine in
  let* dims = dims_of_string dims in
  let* spec =
    match expr with
    | Some src -> (
        match
          Stencil.Parser.parse_spec ~name:"custom" ~rank:(Array.length dims)
            src
        with
        | Ok s -> Ok s
        | Error msg -> Error (`Msg ("cannot parse --expr: " ^ msg)))
    | None -> (
        match Stencil.Suite.find stencil with
        | s -> Ok (Stencil.Suite.resolve_defaults s)
        | exception Not_found ->
            Error (`Msg (Printf.sprintf "unknown stencil %S" stencil)))
  in
  try Ok (kernel ~machine:m ~dims spec)
  with Invalid_argument m -> Error (`Msg m)

let or_die = function
  | Ok x -> x
  | Error (`Msg m) ->
      prerr_endline ("yasksite: " ^ m);
      exit 2

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Command boundary: parser and model errors must not escape as raw
   backtraces. Lint-gate refusals keep the lint exit code (1); other
   input errors get their own code (3; 2 is argument parsing). *)
let protect f =
  try f () with
  | Lint.Gate_error msg ->
      prerr_endline ("yasksite: lint: " ^ first_line msg);
      exit 1
  | Engine.Sanitizer.Trap _ as e ->
      prerr_endline ("yasksite: sanitizer: " ^ first_line (Printexc.to_string e));
      exit 1
  | Failure msg ->
      prerr_endline ("yasksite: error: " ^ first_line msg);
      exit 3
  | Invalid_argument msg ->
      prerr_endline ("yasksite: error: " ^ first_line msg);
      exit 3

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)

let machines_cmd =
  let run () =
    List.iter
      (fun m ->
        Yasksite_util.Table.print (Machine.describe m);
        print_newline ())
      [ Machine.cascade_lake; Machine.rome; Machine.test_chip ]
  in
  Cmd.v (Cmd.info "machines" ~doc:"Describe the built-in machine models")
    Term.(const run $ const ())

let stencils_cmd =
  let show =
    let doc = "Also print the generated C-like kernel of this stencil." in
    Arg.(value & opt (some string) None & info [ "show" ] ~docv:"NAME" ~doc)
  in
  let run show =
    protect @@ fun () ->
    let tbl =
      Yasksite_util.Table.create ~title:"Stencil suite"
        ~columns:
          (List.map
             (fun c -> (c, Yasksite_util.Table.Left))
             [ "name"; "rank"; "shape"; "radius"; "flops"; "loads";
               "B_c [B/LUP]"; "intensity" ])
        ()
    in
    List.iter
      (fun s ->
        Yasksite_util.Table.add_row tbl
          (Stencil.Analysis.describe (Stencil.Analysis.of_spec s)))
      Stencil.Suite.all;
    Yasksite_util.Table.print tbl;
    match show with
    | None -> ()
    | Some name ->
        let s =
          or_die (build_kernel ~machine:"test" ~scale:1 ~stencil:name
                    ~dims:"8x8x8" ())
        in
        ignore s;
        print_newline ();
        print_string
          (Stencil.Spec.to_c
             (Stencil.Suite.resolve_defaults (Stencil.Suite.find name)))
  in
  Cmd.v (Cmd.info "stencils" ~doc:"List the stencil suite and its analysis")
    Term.(const run $ show)

let predict_cmd =
  let verbose =
    let doc = "Show the full model derivation (kerncraft-style report)." in
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc)
  in
  let run machine scale stencil expr dims threads block fold wavefront nt
      verbose =
    protect @@ fun () ->
    let k = or_die (build_kernel ?expr ~machine ~scale ~stencil ~dims ()) in
    let config =
      or_die
        (build_config ~block ~fold ~wavefront ~threads ~streaming_stores:nt ())
    in
    let p = predict k ~config in
    if verbose then begin
      print_string (Model.explain k.machine k.info p);
      exit 0
    end;
    print_endline (Model.summary p);
    let tbl =
      Yasksite_util.Table.create ~title:"Layer conditions / traffic"
        ~columns:
          [ ("boundary", Yasksite_util.Table.Left);
            ("condition", Yasksite_util.Table.Left);
            ("lines/CL", Yasksite_util.Table.Right);
            ("B/LUP", Yasksite_util.Table.Right);
            ("T_data [cy/CL]", Yasksite_util.Table.Right) ]
        ()
    in
    Array.iteri
      (fun i (b : Lc.boundary) ->
        let cond =
          match b.Lc.condition with
          | Lc.All_fits -> "fits"
          | Lc.Outer_reuse -> "3D-LC holds"
          | Lc.Row_reuse -> "2D-LC holds"
          | Lc.No_reuse -> "broken"
        in
        Yasksite_util.Table.add_row tbl
          [ b.Lc.level_name ^ "<->next"; cond;
            Yasksite_util.Table.cell_f b.Lc.lines_per_cl;
            Yasksite_util.Table.cell_f b.Lc.bytes_per_lup;
            Yasksite_util.Table.cell_f p.Model.t_data.(i) ])
      p.Model.boundaries;
    Yasksite_util.Table.print tbl
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Evaluate the ECM model for a kernel configuration (no execution)")
    Term.(
      const run $ machine_arg $ scale_arg $ stencil_arg $ expr_arg $ dims_arg
      $ threads_arg $ block_arg $ fold_arg $ wavefront_arg $ nt_arg $ verbose)

(* Untraced wall-clock sweep, sequential and on the pool: exercises the
   domain partitioning end to end and checks the outputs are
   bit-identical. *)
let parallel_sweep_demo ?(sanitize = false) k ~config pool =
  (* One sanitizer per run: each [make] call's private address space
     reuses the same virtual bases, so shadow state must not be shared. *)
  let san () = if sanitize then Some (Engine.Sanitizer.create ()) else None in
  let halo = Stencil.Analysis.halo k.info in
  let layout =
    match config.Config.fold with
    | None -> Grid.Linear
    | Some f -> Grid.Folded (Array.copy f)
  in
  let make () =
    let rng = Yasksite_util.Prng.create ~seed:7 in
    let space = Grid.fresh_space () in
    let fresh () =
      let g = Grid.create ~space ~halo ~layout ~dims:k.dims () in
      Grid.fill g ~f:(fun _ ->
          Yasksite_util.Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
      Grid.halo_dirichlet g 0.0;
      g
    in
    let inputs =
      Array.init k.spec.Stencil.Spec.n_fields (fun _ -> fresh ())
    in
    let output = fresh () in
    (inputs, output)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let inputs_s, output_s = make () in
  let _, seq_s =
    time (fun () ->
        Engine.Sweep.run ?sanitize:(san ()) ~config k.spec ~inputs:inputs_s
          ~output:output_s)
  in
  let inputs_p, output_p = make () in
  let _, par_s =
    time (fun () ->
        Engine.Sweep.run ~pool ?sanitize:(san ()) ~config k.spec
          ~inputs:inputs_p ~output:output_p)
  in
  let diff = Grid.max_abs_diff output_s output_p in
  Printf.printf
    "parallel sweep (%d domains): sequential %.4f s, parallel %.4f s \
     (%.2fx), max |diff| %g\n"
    (Pool.size pool) seq_s par_s
    (if par_s > 0.0 then seq_s /. par_s else 0.0)
    diff

let run_cmd =
  let run machine scale stencil expr dims threads block fold wavefront nt
      stagger domains sanitize backend stats_json =
    protect @@ fun () ->
    Option.iter Engine.Sweep.set_default_backend backend;
    (* Eager backend validation: a bad YASKSITE_BACKEND fails here with
       the one-line legal-backends message instead of mid-measurement.
       (--backend, validated by the parser, overrides the variable.) *)
    ignore (Engine.Sweep.default_backend () : Engine.Sweep.backend);
    (* The codegen backend warm-starts from the persistent store: a
       second run of the same kernel loads the compiled .cmxs instead
       of invoking the compiler (YASKSITE_NO_STORE opts out). *)
    let cache = Model_cache.shared in
    let store = attach_default_store cache in
    let k = or_die (build_kernel ?expr ~machine ~scale ~stencil ~dims ()) in
    let config =
      or_die
        (build_config ?stagger ~block ~fold ~wavefront ~threads
           ~streaming_stores:nt ())
    in
    print_string (report ~sanitize k ~config);
    if domains <> None then
      with_domains domains (fun pool ->
          parallel_sweep_demo ~sanitize k ~config pool);
    if stats_json then print_endline (stats_json_line ~cache ~store)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Measure a kernel configuration on the simulated machine and \
             compare with the prediction")
    Term.(
      const run $ machine_arg $ scale_arg $ stencil_arg $ expr_arg $ dims_arg
      $ threads_arg $ block_arg $ fold_arg $ wavefront_arg $ nt_arg
      $ stagger_arg $ domains_arg $ sanitize_arg $ backend_arg
      $ stats_json_arg)

let tune_cmd =
  let top =
    let doc = "How many top-ranked configurations to list." in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)
  in
  let empirical_arg =
    let doc =
      "Also run the resilient empirical sweep over the advisor space \
       (every candidate is executed, surviving the injected fault plan)."
    in
    Arg.(value & flag & info [ "empirical" ] ~doc)
  in
  let fault_seed_arg =
    let doc = "Seed of the deterministic fault plan." in
    Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"N" ~doc)
  in
  let fault_rate_arg =
    let doc = "Per-run transient-failure probability injected into the \
               empirical sweep." in
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)
  in
  let noise_arg =
    let doc = "Sigma of the multiplicative lognormal measurement noise \
               (enables median-of-5 robust repeats)." in
    Arg.(value & opt float 0.0 & info [ "noise" ] ~docv:"SIGMA" ~doc)
  in
  let retries_arg =
    let doc = "Maximum attempts per candidate measurement." in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc = "Wall budget for the whole empirical sweep, in seconds \
               (backoff and timeout charges included)." in
    Arg.(value & opt (some float) None & info [ "budget-s" ] ~docv:"S" ~doc)
  in
  let resume_arg =
    let doc =
      "Checkpoint file: progress is saved after every candidate and a \
       matching file resumes the sweep without re-running completed \
       candidates."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let run machine scale stencil expr dims threads top empirical fault_seed
      fault_rate noise retries budget resume domains sanitize backend
      stats_json =
    protect @@ fun () ->
    Option.iter Engine.Sweep.set_default_backend backend;
    (* Eager backend validation: a bad YASKSITE_BACKEND fails here with
       the one-line legal-backends message instead of mid-measurement.
       (--backend, validated by the parser, overrides the variable.) *)
    ignore (Engine.Sweep.default_backend () : Engine.Sweep.backend);
    let k = or_die (build_kernel ?expr ~machine ~scale ~stencil ~dims ()) in
    with_domains domains @@ fun pool ->
    let cache = Model_cache.shared in
    let store = attach_default_store cache in
    let legal = Lint.Schedule.legal k.info ~dims:k.dims in
    let ranked =
      Advisor.rank_all ~cache ~pool ~filter:legal k.machine k.info ~dims:k.dims
        ~threads
    in
    let full_size =
      List.length
        (Advisor.space k.machine ~dims:k.dims ~threads
           ~rank:k.spec.Stencil.Spec.rank)
    in
    let pruned = full_size - List.length ranked in
    let tbl =
      Yasksite_util.Table.create
        ~title:(Printf.sprintf "Analytic ranking (top %d of %d)" top
                  (List.length ranked))
        ~columns:
          [ ("#", Yasksite_util.Table.Right);
            ("config", Yasksite_util.Table.Left);
            ("pred GLUP/s", Yasksite_util.Table.Right) ]
        ()
    in
    List.iteri
      (fun i (c, p) ->
        if i < top then
          Yasksite_util.Table.add_row tbl
            [ string_of_int (i + 1); Config.describe c;
              Yasksite_util.Table.cell_f (p.Model.lups_chip /. 1e9) ])
      ranked;
    Yasksite_util.Table.print tbl;
    if pruned > 0 then
      Printf.printf
        "schedule analyzer: pruned %d of %d candidates before ranking\n"
        pruned full_size;
    (match ranked with
    | (best, _) :: _ ->
        print_newline ();
        print_string (report ~sanitize k ~config:best)
    | [] -> ());
    if empirical || fault_rate > 0.0 || noise > 0.0 || resume <> None then begin
      let faults =
        Faults.Plan.v ~seed:fault_seed ~fail_rate:fault_rate
          ~noise_sigma:noise ()
      in
      let policy =
        Faults.Policy.v ~max_attempts:retries ?pass_budget_s:budget
          ~repeats:(if noise > 0.0 then 5 else 1)
          ()
      in
      let r =
        Tuner.tune_empirical ~faults ~policy ?checkpoint:resume ?store ~pool
          ~cache ~sanitize k.machine k.spec ~dims:k.dims ~threads
      in
      Printf.printf "\nresilient empirical sweep (%s, %d domains):\n"
        (Faults.Plan.describe faults) (Pool.size pool);
      if r.Tuner.pruned > 0 then
        Printf.printf "  pruned      %d statically illegal candidate(s)\n"
          r.Tuner.pruned;
      Printf.printf "  chosen      %s%s\n"
        (Config.describe r.Tuner.chosen)
        (if r.Tuner.degraded then "  [degraded: analytic fallback]" else "");
      Printf.printf "  measured    %.2f GLUP/s\n"
        (r.Tuner.measured_lups /. 1e9);
      Printf.printf "  kernel runs %d (attempts %d), skipped %d, wall %.2f s\n"
        r.Tuner.kernel_runs r.Tuner.attempts
        (List.length r.Tuner.skipped)
        r.Tuner.wall_seconds;
      List.iteri
        (fun i (s : Tuner.skipped) ->
          if i < 5 then
            Printf.printf "  skipped     %s after %d attempts: %s\n"
              (Config.describe s.Tuner.s_config)
              s.Tuner.s_attempts s.Tuner.s_reason)
        r.Tuner.skipped;
      match resume with
      | Some path -> Printf.printf "  checkpoint  %s\n" path
      | None -> ()
    end;
    print_run_stats ~stats_json ~cache ~store
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Rank the tuning space analytically and validate the winner \
             (optionally against a fault-injected empirical sweep)")
    Term.(
      const run $ machine_arg $ scale_arg $ stencil_arg $ expr_arg $ dims_arg
      $ threads_arg $ top $ empirical_arg $ fault_seed_arg $ fault_rate_arg
      $ noise_arg $ retries_arg $ budget_arg $ resume_arg $ domains_arg
      $ sanitize_arg $ backend_arg $ stats_json_arg)

let scheme_name = function
  | `Unfused -> "unfused"
  | `Fused -> "fused"
  | `Mixed mask ->
      "mixed:"
      ^ String.concat ""
          (Array.to_list (Array.map (fun b -> if b then "f" else "u") mask))

let ode_cmd =
  let method_arg =
    let doc = "Explicit method name (euler, heun2, rk4, kutta38, dopri5...)." in
    Arg.(value & opt string "rk4" & info [ "method" ] ~docv:"NAME" ~doc)
  in
  let pde_arg =
    let doc = "PDE problem: heat1d, heat2d, heat3d or advection1d." in
    Arg.(value & opt string "heat2d" & info [ "pde" ] ~docv:"NAME" ~doc)
  in
  let n_arg =
    let doc = "Interior grid points per dimension." in
    Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run machine scale mname pname n threads domains stats_json =
    protect @@ fun () ->
    let m = or_die (machine_of_string ~scale machine) in
    let tab =
      match Ode.Tableau.find mname with
      | t -> t
      | exception Not_found -> or_die (Error (`Msg ("unknown method " ^ mname)))
    in
    let pde =
      match pname with
      | "heat1d" -> Ode.Pde.heat ~rank:1 ~n ~alpha:1.0
      | "heat2d" -> Ode.Pde.heat ~rank:2 ~n ~alpha:1.0
      | "heat3d" -> Ode.Pde.heat ~rank:3 ~n ~alpha:1.0
      | "advection1d" -> Ode.Pde.advection_1d ~n ~velocity:1.0
      | _ -> or_die (Error (`Msg ("unknown pde " ^ pname)))
    in
    let h = 1e-5 in
    with_domains domains @@ fun pool ->
    let cache = Model_cache.shared in
    let store = attach_default_store cache in
    let candidates =
      Offsite.evaluate ~cache ?store ~pool m pde tab ~h ~threads
    in
    let tbl =
      Yasksite_util.Table.create
        ~title:
          (Printf.sprintf "Offsite variants: %s on %s, %s, %d threads" mname
             pde.Ode.Pde.name m.Machine.name threads)
        ~columns:
          [ ("variant", Yasksite_util.Table.Left);
            ("tuned", Yasksite_util.Table.Left);
            ("sweeps", Yasksite_util.Table.Right);
            ("pred ms/step", Yasksite_util.Table.Right);
            ("meas ms/step", Yasksite_util.Table.Right);
            ("err", Yasksite_util.Table.Right) ]
        ()
    in
    List.iter
      (fun (c : Offsite.candidate) ->
        Yasksite_util.Table.add_row tbl
          [ scheme_name c.variant.Offsite.Variant.scheme;
            (if c.tuned then "yes" else "no");
            string_of_int (Offsite.Variant.sweeps_per_step c.variant);
            Yasksite_util.Table.cell_f (1e3 *. c.predicted_step_seconds);
            Yasksite_util.Table.cell_f (1e3 *. c.measured_step_seconds);
            Yasksite_util.Table.cell_pct
              (Yasksite_util.Stats.rel_error
                 ~predicted:c.predicted_step_seconds
                 ~measured:c.measured_step_seconds) ])
      candidates;
    Yasksite_util.Table.print tbl;
    let q = Offsite.quality candidates in
    Printf.printf
      "ranking: kendall tau %.2f, top-1 %s, speedup of selected vs naive \
       %.2fx, mean |err| %.1f%%\n"
      q.Offsite.kendall
      (if q.Offsite.top1 then "correct" else "WRONG")
      q.Offsite.speedup_selected
      (100.0 *. q.Offsite.mean_abs_error);
    print_run_stats ~stats_json ~cache ~store
  in
  Cmd.v
    (Cmd.info "ode"
       ~doc:"Rank ODE implementation variants (the Offsite integration)")
    Term.(
      const run $ machine_arg $ scale_arg $ method_arg $ pde_arg $ n_arg
      $ threads_arg $ domains_arg $ stats_json_arg)

let lint_cmd =
  let inputs_arg =
    let doc =
      "Artifacts to lint: *.machine files, files holding a kernel \
       expression, suite stencil names, or literal kernel expressions."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"INPUT" ~doc)
  in
  let rank_arg =
    let doc =
      "Kernel rank for expression inputs (default: the rank of --dims)."
    in
    Arg.(value & opt (some int) None & info [ "rank" ] ~docv:"N" ~doc)
  in
  let rules_arg =
    let doc = "Print the rule table (code, severity, summary) and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let quiet_arg =
    let doc = "Only set the exit status; print nothing." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let schedule_arg =
    let doc =
      "Also run the schedule-legality analyzer (YS4xx) on each kernel \
       input: the configuration built from the tuning flags is judged \
       against the kernel's dependence distances at --dims."
    in
    Arg.(value & flag & info [ "schedule" ] ~doc)
  in
  let plan_arg =
    let doc =
      "Also run the plan-IR dataflow verifier (YS5xx) on each kernel \
       input: the lowered kernel plan is checked for access-table bounds \
       safety, stack safety, dead loads and agreement of its static \
       FLOP/byte counts with the kernel analysis. Bounds are judged \
       against grids allocated with the kernel's own halo at --dims \
       (proxy extents when the ranks differ)."
    in
    Arg.(value & flag & info [ "plan" ] ~doc)
  in
  let native_arg =
    let doc =
      "Also run the YS6xx translation validator on each kernel input: \
       the source the codegen backend would emit for the lowered plan \
       is parsed back and statically proved equivalent to the plan \
       (op-for-op IEEE-754 arithmetic and address arithmetic). Pure \
       static analysis — no compiler is invoked."
    in
    Arg.(value & flag & info [ "native" ] ~doc)
  in
  let miscompile_arg =
    let doc =
      "With --native: inject a seeded miscompile of this class into the \
       emitted source before validation, to demonstrate (or CI-check) \
       that the validator rejects it. Classes: coeff-perturb, \
       swap-assoc, offset-off-by-one, drop-term, wrong-slot, \
       point-row-diverge, rename-registration."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "miscompile" ] ~docv:"CLASS" ~doc)
  in
  let fault_seed_arg =
    let doc = "Seed for --miscompile site selection." in
    Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,text) (compiler-style, default) or $(b,json) \
       (one stable machine-readable report for the whole run)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let run machine dims rank rules quiet schedule plan native miscompile
      fault_seed format threads block fold wavefront nt stagger inputs =
    protect @@ fun () ->
    if rules then begin
      (match format with
      | `Json -> print_string (Lint.Diagnostic.rules_to_json Lint.rules)
      | `Text -> print_string (Lint.Diagnostic.rules_to_text Lint.rules));
      exit 0
    end;
    let miscompile_cls =
      match miscompile with
      | None -> None
      | Some name -> (
          match Faults.Miscompile.class_of_name name with
          | Some _ as c -> c
          | None ->
              or_die
                (Error
                   (`Msg
                     (Printf.sprintf
                        "unknown miscompile class %S (one of: %s)" name
                        (String.concat ", "
                           (List.map Faults.Miscompile.class_name
                              Faults.Miscompile.classes))))))
    in
    let dims = or_die (dims_of_string dims) in
    let rank = match rank with Some r -> r | None -> Array.length dims in
    let worst = ref 0 in
    (* JSON mode accumulates every finding and emits one report at the
       end; text mode prints per input as before. *)
    let collected = ref [] in
    let report ?src ~origin diagnostics =
      worst := max !worst (Lint.exit_code diagnostics);
      match format with
      | `Json ->
          List.iter
            (fun d -> collected := (origin, src, d) :: !collected)
            diagnostics
      | `Text ->
          if not quiet then
            if diagnostics = [] then Printf.printf "%s: clean\n" origin
            else begin
              print_string
                (Lint.Diagnostic.render_list ?src ~origin diagnostics);
              Printf.printf "%s: %s\n" origin
                (Lint.Diagnostic.summary diagnostics)
            end
    in
    (* When tuning flags are given, also lint the resulting configuration
       against each kernel input; the machine is only resolved then. *)
    let config_given =
      block <> None || fold <> None || wavefront <> 1 || threads <> 1 || nt
      || stagger <> None
    in
    let lint_config spec ~origin =
      if config_given then begin
        let m = or_die (machine_of_string ~scale:1 machine) in
        let config =
          or_die
            (build_config ?stagger ~block ~fold ~wavefront ~threads
               ~streaming_stores:nt ())
        in
        report
          ~origin:(origin ^ " (config)")
          (Lint.Config.config m (Stencil.Analysis.of_spec spec) ~dims config)
      end;
      if schedule then begin
        let config =
          or_die
            (build_config ?stagger ~block ~fold ~wavefront ~threads
               ~streaming_stores:nt ())
        in
        report
          ~origin:(origin ^ " (schedule)")
          (Lint.Schedule.schedule (Stencil.Analysis.of_spec spec) ~dims
             config)
      end;
      if plan then begin
        let info = Stencil.Analysis.of_spec spec in
        let p = Stencil.Lower.lower spec in
        let halo = Stencil.Analysis.halo info in
        let krank = spec.Stencil.Spec.rank in
        (* Bounds are extent-independent (|offset| <= halo per dim), so
           proxy extents are as good as --dims when the ranks differ. *)
        let gdims =
          if Array.length dims = krank then dims
          else Array.init krank (fun i -> max 8 ((2 * halo.(i)) + 1))
        in
        let space = Grid.fresh_space () in
        let mk () = Grid.create ~space ~halo ~dims:gdims () in
        let inputs =
          Array.init spec.Stencil.Spec.n_fields (fun _ -> mk ())
        in
        report
          ~origin:(origin ^ " (plan)")
          (Lint.Plan.check ~info p ~inputs ~output:(mk ()))
      end;
      if native then begin
        let info = Stencil.Analysis.of_spec spec in
        let p = Stencil.Lower.lower spec in
        let halo = Stencil.Analysis.halo info in
        let krank = spec.Stencil.Spec.rank in
        (* Same proxy-extent rule as --plan: the proof is
           extent-independent. *)
        let gdims =
          if Array.length dims = krank then dims
          else Array.init krank (fun i -> max 8 ((2 * halo.(i)) + 1))
        in
        let space = Grid.fresh_space () in
        let mk () = Grid.create ~space ~halo ~dims:gdims () in
        let inputs =
          Array.init spec.Stencil.Spec.n_fields (fun _ -> mk ())
        in
        let output = mk () in
        let v = Stencil.Codegen.variant_of ~plan:p ~inputs ~output in
        match Stencil.Codegen.source ~plan:p v with
        | Error reason ->
            Printf.eprintf
              "yasksite: lint: %s: codegen emits no kernel for this plan \
               (%s); nothing to validate\n"
              origin reason
        | Ok src ->
            let src =
              match miscompile_cls with
              | None -> src
              | Some cls ->
                  or_die
                    (Result.map_error
                       (fun e -> `Msg (origin ^ ": miscompile: " ^ e))
                       (Faults.Miscompile.mutate ~seed:fault_seed cls src))
            in
            report ~src
              ~origin:(origin ^ " (native)")
              (Lint.Native.check ~plan:p ~variant:v ~inputs src)
      end
    in
    let lint_kernel_source ?src_origin ~origin src =
      report ~src ~origin (Lint.Kernel.source ~rank src);
      match
        Stencil.Parser.parse_spec
          ~name:(Option.value src_origin ~default:"expr")
          ~rank src
      with
      | Ok spec -> lint_config spec ~origin
      | Error _ -> ()
    in
    let lint_one input =
      if Filename.check_suffix input ".machine" then
        report ~origin:input
          ?src:
            (match In_channel.with_open_text input In_channel.input_all with
            | src -> Some src
            | exception Sys_error _ -> None)
          (Lint.Machine.file input)
      else if Sys.file_exists input then
        let src =
          String.trim
            (In_channel.with_open_text input In_channel.input_all)
        in
        lint_kernel_source ~src_origin:input ~origin:input src
      else begin
        match Stencil.Suite.find input with
        | s ->
            let spec = Stencil.Suite.resolve_defaults s in
            report ~origin:input (Lint.Kernel.spec spec);
            lint_config spec ~origin:input
        | exception Not_found -> lint_kernel_source ~origin:"expr" input
      end
    in
    if inputs = [] then
      or_die
        (Error
           (`Msg
             "nothing to lint (pass expressions, files or stencil names, or \
              --rules)"));
    List.iter lint_one inputs;
    (match format with
    | `Json when not quiet ->
        print_endline (Lint.Diagnostic.report_to_json (List.rev !collected))
    | _ -> ());
    exit !worst
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically check kernels, machine files and configurations \
             before any model run (exit 1 on errors)")
    Term.(
      const run $ machine_arg $ dims_arg $ rank_arg $ rules_arg $ quiet_arg
      $ schedule_arg $ plan_arg $ native_arg $ miscompile_arg
      $ fault_seed_arg $ format_arg $ threads_arg $ block_arg $ fold_arg
      $ wavefront_arg $ nt_arg $ stagger_arg $ inputs_arg)

(* ------------------------------------------------------------------ *)
(* Stencil programs: multi-stage DAG pipelines                         *)

let program_pos_arg =
  let doc =
    "Program to operate on: a suite program name (see $(b,hdiff)) or a \
     path to a textual .prog file."
  in
  Arg.(value & pos 0 string "hdiff" & info [] ~docv:"PROGRAM" ~doc)

let prog_dims_arg =
  let doc =
    "Grid dimensions for the program's fields, e.g. 256x256 (slowest \
     dimension first; the rank must match the program's)."
  in
  Arg.(value & opt string "256x256" & info [ "d"; "dims" ] ~docv:"DIMS" ~doc)

let load_program input =
  if Sys.file_exists input then
    let src = In_channel.with_open_text input In_channel.input_all in
    match Stencil.Program.parse src with
    | Ok p -> Ok (p, Some src)
    | Error (line, msg) ->
        Error (`Msg (Printf.sprintf "%s: line %d: %s" input line msg))
  else
    match Stencil.Suite.find_program input with
    | p -> Ok (p, None)
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown program %S (a .prog file, or one of: %s)"
               input
               (String.concat ", "
                  (List.map
                     (fun (p : Stencil.Program.t) -> p.Stencil.Program.name)
                     Stencil.Suite.programs))))

(* Deterministic input grids for a program: per-field PRNG streams seeded
   by the field name, halos zeroed — identical values regardless of the
   fusion partition being run, so output checksums are comparable. *)
let program_inputs (p : Stencil.Program.t) ~dims ~config =
  let hp = Stencil.Program.halo_plan p in
  let layout =
    match config.Config.fold with
    | None -> Grid.Linear
    | Some f -> Grid.Folded (Array.copy f)
  in
  let space = Grid.fresh_space () in
  ( space,
    List.map
      (fun (name, halo) ->
        let rng = Yasksite_util.Prng.create ~seed:(7 + Hashtbl.hash name) in
        let g = Grid.create ~space ~halo ~layout ~dims () in
        Grid.fill g ~f:(fun _ ->
            Yasksite_util.Prng.float_range rng ~lo:(-1.0) ~hi:1.0);
        Grid.halo_dirichlet g 0.0;
        (name, g))
      hp.Stencil.Program.input_halo )

let grid_checksum g =
  let dims = Grid.dims g in
  let rank = Array.length dims in
  let idx = Array.make rank 0 in
  let rec go d acc =
    if d = rank then acc +. Grid.get g idx
    else begin
      let acc = ref acc in
      for i = 0 to dims.(d) - 1 do
        idx.(d) <- i;
        acc := go (d + 1) !acc
      done;
      !acc
    end
  in
  go 0 0.0

let program_lint_cmd =
  let inputs_arg =
    let doc = "Programs to lint: .prog files or suite program names." in
    Arg.(value & pos_all string [] & info [] ~docv:"PROGRAM" ~doc)
  in
  let quiet_arg =
    let doc = "Only set the exit status; print nothing." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,text) (compiler-style, default) or $(b,json) \
       (one stable machine-readable report for the whole run)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let run quiet format inputs =
    protect @@ fun () ->
    if inputs = [] then
      or_die
        (Error (`Msg "nothing to lint (pass .prog files or program names)"));
    let worst = ref 0 in
    let collected = ref [] in
    let report ?src ~origin diagnostics =
      worst := max !worst (Lint.exit_code diagnostics);
      match format with
      | `Json ->
          List.iter
            (fun d -> collected := (origin, src, d) :: !collected)
            diagnostics
      | `Text ->
          if not quiet then
            if diagnostics = [] then Printf.printf "%s: clean\n" origin
            else begin
              print_string
                (Lint.Diagnostic.render_list ?src ~origin diagnostics);
              Printf.printf "%s: %s\n" origin
                (Lint.Diagnostic.summary diagnostics)
            end
    in
    List.iter
      (fun input ->
        if Sys.file_exists input then
          let src = In_channel.with_open_text input In_channel.input_all in
          report ~src ~origin:input (Lint.Program.source src)
        else
          match Stencil.Suite.find_program input with
          | p -> report ~origin:input (Lint.Program.program p)
          | exception Not_found ->
              report ~origin:input
                [ Lint.Diagnostic.errorf ~code:"YS700"
                    "no such file or suite program: %s" input ])
      inputs;
    (match format with
    | `Json when not quiet ->
        print_endline (Lint.Diagnostic.report_to_json (List.rev !collected))
    | _ -> ());
    exit !worst
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Check program DAGs statically: the YS7xx rules (undefined \
             fields, cycles, dead stages...) plus the per-stage kernel \
             rules (exit 1 on errors)")
    Term.(const run $ quiet_arg $ format_arg $ inputs_arg)

let program_rank_cmd =
  let top =
    let doc = "How many top-ranked partitions to list." in
    Arg.(value & opt int 8 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run machine scale input dims threads block fold wavefront nt top
      stats_json =
    protect @@ fun () ->
    let m = or_die (machine_of_string ~scale machine) in
    let p, _ = or_die (load_program input) in
    let dims = or_die (dims_of_string dims) in
    let config =
      or_die
        (build_config ~block ~fold ~wavefront ~threads ~streaming_stores:nt ())
    in
    Lint.gate ~context:"program rank" (Lint.Program.program p);
    let cache = Model_cache.shared in
    let store = attach_default_store cache in
    let ranked = Advisor.rank_partitions ~cache m p ~dims ~config in
    let unfused =
      List.find
        (fun (pt : Advisor.partition) -> pt.Advisor.inline = [])
        ranked
    in
    let tbl =
      Yasksite_util.Table.create
        ~title:
          (Printf.sprintf
             "Fusion partitions of %s on %s (%d ranked, ECM-predicted)"
             p.Stencil.Program.name m.Machine.name (List.length ranked))
        ~columns:
          [ ("#", Yasksite_util.Table.Right);
            ("stages", Yasksite_util.Table.Right);
            ("pred ms", Yasksite_util.Table.Right);
            ("vs unfused", Yasksite_util.Table.Right);
            ("inlined", Yasksite_util.Table.Left) ]
        ()
    in
    List.iteri
      (fun i (pt : Advisor.partition) ->
        if i < top then
          Yasksite_util.Table.add_row tbl
            [ string_of_int (i + 1);
              string_of_int pt.Advisor.stages;
              Yasksite_util.Table.cell_f (1e3 *. pt.Advisor.time);
              Printf.sprintf "%.2fx" (unfused.Advisor.time /. pt.Advisor.time);
              (match pt.Advisor.inline with
              | [] -> "(none: fully materialized)"
              | l -> String.concat " " l) ])
      ranked;
    Yasksite_util.Table.print tbl;
    Printf.printf
      "unfused baseline: %d stages, %.3f ms predicted; best partition \
       %.2fx faster\n"
      unfused.Advisor.stages
      (1e3 *. unfused.Advisor.time)
      (match ranked with
      | best :: _ -> unfused.Advisor.time /. best.Advisor.time
      | [] -> 1.0);
    if stats_json then print_endline (stats_json_line ~cache ~store)
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:"Rank a program's fuse/materialize partitions with the ECM \
             model (no execution)")
    Term.(
      const run $ machine_arg $ scale_arg $ program_pos_arg $ prog_dims_arg
      $ threads_arg $ block_arg $ fold_arg $ wavefront_arg $ nt_arg $ top
      $ stats_json_arg)

let program_run_cmd =
  let fuse_arg =
    let doc =
      "Fusion partition to execute: $(b,none) (fully materialized, the \
       default), $(b,all) (every inlinable stage fused), $(b,auto) (the \
       ECM-ranked best partition for this machine and dims), or a \
       comma-separated list of stage names to inline."
    in
    Arg.(value & opt string "none" & info [ "fuse" ] ~docv:"PART" ~doc)
  in
  let run machine scale input dims threads block fold nt fuse domains backend
      stats_json =
    protect @@ fun () ->
    Option.iter Engine.Sweep.set_default_backend backend;
    ignore (Engine.Sweep.default_backend () : Engine.Sweep.backend);
    let p, _ = or_die (load_program input) in
    let dims = or_die (dims_of_string dims) in
    let config =
      or_die
        (build_config ~block ~fold ~wavefront:1 ~threads ~streaming_stores:nt
           ())
    in
    let cache = Model_cache.shared in
    let store = attach_default_store cache in
    Lint.gate ~context:"program run" (Lint.Program.program p);
    let inline =
      match fuse with
      | "none" -> []
      | "all" -> Stencil.Program.inlinable p
      | "auto" ->
          let m = or_die (machine_of_string ~scale machine) in
          (Advisor.best_partition ~cache m p ~dims ~config).Advisor.inline
      | names ->
          String.split_on_char ',' names
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
    in
    let fused = Stencil.Program.fuse p ~inline in
    Printf.printf "%s: %d stages (%s)\n" p.Stencil.Program.name
      (Array.length fused.Stencil.Program.stages)
      (match inline with
      | [] -> "fully materialized"
      | l -> "fused: " ^ String.concat " " l);
    let space, inputs = program_inputs fused ~dims ~config in
    let exec pool =
      let t0 = Unix.gettimeofday () in
      let r = Engine.Prog.run ?pool ?backend ~config ~space fused ~inputs in
      (r, Unix.gettimeofday () -. t0)
    in
    let result, wall =
      match domains with
      | None -> exec None
      | Some _ -> with_domains domains (fun pool -> exec (Some pool))
    in
    let tbl =
      Yasksite_util.Table.create ~title:"Stage sweeps (execution order)"
        ~columns:
          [ ("stage", Yasksite_util.Table.Left);
            ("points", Yasksite_util.Table.Right);
            ("vec units", Yasksite_util.Table.Right);
            ("rows", Yasksite_util.Table.Right);
            ("blocks", Yasksite_util.Table.Right) ]
        ()
    in
    let total = ref Engine.Sweep.zero_stats in
    List.iter
      (fun (sr : Engine.Prog.stage_run) ->
        total := Engine.Sweep.add_stats !total sr.Engine.Prog.stats;
        let s = sr.Engine.Prog.stats in
        Yasksite_util.Table.add_row tbl
          [ sr.Engine.Prog.stage;
            string_of_int s.Engine.Sweep.points;
            string_of_int s.Engine.Sweep.vec_units;
            string_of_int s.Engine.Sweep.rows;
            string_of_int s.Engine.Sweep.blocks ])
      result.Engine.Prog.stages;
    Yasksite_util.Table.print tbl;
    Printf.printf "total: %d lattice updates in %.4f s (%.2f MLUP/s)\n"
      !total.Engine.Sweep.points wall
      (float_of_int !total.Engine.Sweep.points /. wall /. 1e6);
    List.iter
      (fun (name, g) ->
        Printf.printf "output %-8s checksum % .12e\n" name (grid_checksum g))
      result.Engine.Prog.outputs;
    if stats_json then print_endline (stats_json_line ~cache ~store)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a program on the simulated machine: one extended \
             sweep per stage in dependency order, under any fusion \
             partition (outputs are bit-identical across partitions and \
             backends)")
    Term.(
      const run $ machine_arg $ scale_arg $ program_pos_arg $ prog_dims_arg
      $ threads_arg $ block_arg $ fold_arg $ nt_arg $ fuse_arg $ domains_arg
      $ backend_arg $ stats_json_arg)

let program_cmd =
  Cmd.group
    (Cmd.info "program"
       ~doc:"Multi-stage stencil programs: lint the DAG, rank fusion \
             partitions with the ECM model, and execute")
    [ program_lint_cmd; program_rank_cmd; program_run_cmd ]

let methods_cmd =
  let pde_arg =
    let doc = "PDE problem: heat1d, heat2d or heat3d." in
    Arg.(value & opt string "heat2d" & info [ "pde" ] ~docv:"NAME" ~doc)
  in
  let n_arg =
    let doc = "Interior grid points per dimension." in
    Arg.(value & opt int 128 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run machine scale pname n threads =
    protect @@ fun () ->
    let m = or_die (machine_of_string ~scale machine) in
    let pde =
      match pname with
      | "heat1d" -> Ode.Pde.heat ~rank:1 ~n ~alpha:1.0
      | "heat2d" -> Ode.Pde.heat ~rank:2 ~n ~alpha:1.0
      | "heat3d" -> Ode.Pde.heat ~rank:3 ~n ~alpha:1.0
      | _ -> or_die (Error (`Msg ("unknown pde " ^ pname)))
    in
    let methods =
      [ Ode.Tableau.euler; Ode.Tableau.heun2; Ode.Tableau.kutta3;
        Ode.Tableau.rk4; Ode.Tableau.dopri5 ]
    in
    let choices = Offsite.rank_methods m pde methods ~threads in
    let tbl =
      Yasksite_util.Table.create
        ~title:
          (Printf.sprintf
             "Method ranking (stability-limited) on %s, %d threads"
             m.Machine.name threads)
        ~columns:
          [ ("method", Yasksite_util.Table.Left);
            ("order", Yasksite_util.Table.Right);
            ("h_stable", Yasksite_util.Table.Right);
            ("variant", Yasksite_util.Table.Left);
            ("pred s/unit", Yasksite_util.Table.Right);
            ("meas s/unit", Yasksite_util.Table.Right) ]
        ()
    in
    List.iter
      (fun (c : Offsite.method_choice) ->
        Yasksite_util.Table.add_row tbl
          [ c.Offsite.tableau.Ode.Tableau.name;
            string_of_int c.Offsite.tableau.Ode.Tableau.order;
            Printf.sprintf "%.2e" c.Offsite.h_stable;
            scheme_name
              c.Offsite.candidate.Offsite.variant.Offsite.Variant.scheme;
            Yasksite_util.Table.cell_f c.Offsite.predicted_time_per_unit;
            Yasksite_util.Table.cell_f c.Offsite.measured_time_per_unit ])
      choices;
    Yasksite_util.Table.print tbl
  in
  Cmd.v
    (Cmd.info "methods"
       ~doc:"Rank explicit methods by stability-limited cost per simulated \
             second (Offsite's cross-method selection)")
    Term.(const run $ machine_arg $ scale_arg $ pde_arg $ n_arg $ threads_arg)

let store_cmd =
  let root_arg =
    let doc =
      "Store root to operate on (default: $(b,YASKSITE_STORE), else \
       ~/.cache/yasksite)."
    in
    Arg.(value & opt (some string) None & info [ "root" ] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc = "Emit one machine-readable JSON line instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  (* Subcommands open the root explicitly: the YASKSITE_NO_STORE kill
     switch silences implicit persistence in tuning commands, not an
     operator asking about the store by name. *)
  let open_store root =
    Store.open_root
      (match root with Some r -> r | None -> Store.default_root ())
  in
  let stats_cmd =
    let run root json =
      protect @@ fun () ->
      let s = open_store root in
      let u = Store.usage s in
      let by_ns = Store.usage_by_ns s in
      if json then
        print_endline
          (Printf.sprintf
             "{\"root\":%S,\"active\":%b,\"writable\":%b,\"entries\":%d,\
              \"bytes\":%d,\"corrupt\":%d,\"schemas\":[%s]}"
             (Store.root s) (Store.active s) (Store.writable s)
             u.Store.entries u.Store.bytes u.Store.corrupt
             (String.concat ","
                (List.map
                   (fun (n : Store.ns_usage) ->
                     Printf.sprintf
                       "{\"ns\":%S,\"entries\":%d,\"bytes\":%d}" n.Store.ns
                       n.Store.ns_entries n.Store.ns_bytes)
                   by_ns)))
      else begin
        Printf.printf "root      %s\n" (Store.root s);
        Printf.printf "active    %b\n" (Store.active s);
        Printf.printf "writable  %b\n" (Store.writable s);
        Printf.printf "entries   %d (%d bytes)\n" u.Store.entries
          u.Store.bytes;
        List.iter
          (fun (n : Store.ns_usage) ->
            Printf.printf "  %-12s %d entries (%d bytes)\n" n.Store.ns
              n.Store.ns_entries n.Store.ns_bytes)
          by_ns;
        Printf.printf "corrupt   %d quarantined file(s)\n" u.Store.corrupt;
        List.iter
          (fun d -> Printf.printf "note      %s\n" d)
          (Store.diagnostics s)
      end
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Show the store's location, state and contents")
      Term.(const run $ root_arg $ json_arg)
  in
  let verify_cmd =
    let run root json =
      protect @@ fun () ->
      let s = open_store root in
      let r = Store.verify s in
      (* Healthy-but-stale kern-v1 payloads (legacy headerless, old
         codegen ABI, or a toolchain this machine no longer has) are
         reported, not quarantined: they are valid entries nothing
         will ever read again. [store gc --stale] drops them. The
         exit code stays corruption-only. *)
      let stale = List.length (Engine.Native.stale_kernels s) in
      if json then
        print_endline
          (Printf.sprintf
             "{\"root\":%S,\"scanned\":%d,\"ok\":%d,\"bad\":%d,\"stale\":%d}"
             (Store.root s) r.Store.scanned r.Store.ok r.Store.bad stale)
      else begin
        Printf.printf
          "verified %s: %d scanned, %d ok, %d bad (quarantined)\n"
          (Store.root s) r.Store.scanned r.Store.ok r.Store.bad;
        if stale > 0 then
          Printf.printf
            "%d stale kern-v1 payload(s) (old ABI or toolchain; run \
             `store gc --stale` to drop)\n"
            stale
      end;
      exit (if r.Store.bad > 0 then 1 else 0)
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Check every entry's header, checksum and content address, \
               quarantining invalid ones (exit 1 if any were found); also \
               reports stale compiled-kernel payloads")
      Term.(const run $ root_arg $ json_arg)
  in
  let gc_cmd =
    let max_age_arg =
      let doc = "Expire entries older than this many seconds." in
      Arg.(
        value & opt (some float) None & info [ "max-age" ] ~docv:"S" ~doc)
    in
    let max_size_arg =
      let doc =
        "Evict oldest entries until at most this many bytes remain."
      in
      Arg.(
        value & opt (some int) None & info [ "max-size" ] ~docv:"BYTES" ~doc)
    in
    let ns_arg =
      let doc =
        "Restrict collection to one schema namespace (e.g. $(b,kern-v1) \
         to drop compiled kernels without touching tuning results)."
      in
      Arg.(value & opt (some string) None & info [ "ns" ] ~docv:"NS" ~doc)
    in
    let stale_arg =
      let doc =
        "Also drop stale $(b,kern-v1) payloads: compiled kernels whose \
         metadata header names an old codegen ABI or a toolchain other \
         than this machine's (plus legacy headerless entries). They are \
         unreachable — the store key binds the toolchain — so this only \
         reclaims bytes."
      in
      Arg.(value & flag & info [ "stale" ] ~doc)
    in
    let run root json max_age max_size ns stale =
      protect @@ fun () ->
      let s = open_store root in
      let stale_removed = if stale then Engine.Native.gc_stale s else 0 in
      let r = Store.gc ?ns ?max_age_s:max_age ?max_size_bytes:max_size s in
      if json then
        print_endline
          (Printf.sprintf
             "{\"root\":%S,\"scanned\":%d,\"removed\":%d,\"kept\":%d,\
              \"bytes_removed\":%d,\"bytes_kept\":%d,\"stale_removed\":%d}"
             (Store.root s) r.Store.scanned r.Store.removed r.Store.kept
             r.Store.bytes_removed r.Store.bytes_kept stale_removed)
      else begin
        Printf.printf
          "gc %s: %d scanned, %d removed (%d bytes), %d kept (%d bytes)\n"
          (Store.root s) r.Store.scanned r.Store.removed r.Store.bytes_removed
          r.Store.kept r.Store.bytes_kept;
        if stale then
          Printf.printf "stale kern-v1 payloads removed: %d\n" stale_removed
      end
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Expire old entries, bound the store's size, and sweep stale \
               temp files")
      Term.(
        const run $ root_arg $ json_arg $ max_age_arg $ max_size_arg $ ns_arg
        $ stale_arg)
  in
  let path_cmd =
    let run root =
      print_endline
        (match root with Some r -> r | None -> Store.default_root ())
    in
    Cmd.v
      (Cmd.info "path" ~doc:"Print the resolved store root and exit")
      Term.(const run $ root_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain the persistent tuning store")
    [ stats_cmd; verify_cmd; gc_cmd; path_cmd ]

let () =
  let info =
    Cmd.info "yasksite" ~version:Yasksite.version
      ~doc:"Stencil optimization with the ECM model (CGO 2021 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ machines_cmd; stencils_cmd; predict_cmd; run_cmd; tune_cmd;
            lint_cmd; program_cmd; ode_cmd; methods_cmd; store_cmd ]))
