(* Bechamel micro-benchmarks: one Test.make per experiment, timing the
   core computational kernel that the corresponding table/figure
   exercises (run with: dune exec bench/main.exe -- --micro). *)
open Yasksite
open Bechamel
open Toolkit
module Ustats = Yasksite_util.Stats

let clx = Exp.clx

let small_kernel spec dims =
  let spec = Stencil.Suite.resolve_defaults spec in
  let info = Stencil.Analysis.of_spec spec in
  let halo = Stencil.Analysis.halo info in
  let rng = Yasksite_util.Prng.create ~seed:7 in
  let input = Grid.create ~halo ~dims () in
  Grid.fill input ~f:(fun _ -> Yasksite_util.Prng.float rng);
  Grid.halo_dirichlet input 0.0;
  let output = Grid.create ~halo ~dims () in
  (spec, input, output)

let sweep_case name ?pool spec dims config =
  let spec, input, output = small_kernel spec dims in
  ( name,
    fun () ->
      ignore
        (Engine.Sweep.run ?pool ~config spec ~inputs:[| input |] ~output
          : Engine.Sweep.stats) )

(* Each case is a named thunk: the same closure feeds bechamel's OLS
   estimator and the plain Welford summary below. *)
let cases =
  let heat3d = Stencil.Suite.heat_3d_7pt in
  let dims3 = [| 24; 24; 24 |] in
  [ (* e1: machine model construction *)
    ( "e1-machine-describe",
      fun () ->
        ignore (Machine.describe Machine.cascade_lake : Yasksite_util.Table.t)
    );
    (* e2: stencil analysis *)
    ( "e2-stencil-analysis",
      fun () ->
        ignore
          (Stencil.Analysis.of_spec Stencil.Suite.box_3d_27pt
            : Stencil.Analysis.t) );
    (* e3/e4: single-core model evaluation and a sweep *)
    (let info = Stencil.Analysis.of_spec heat3d in
     ( "e3-ecm-predict",
       fun () ->
         ignore
           (Model.predict clx info ~dims:[| 64; 64; 64 |]
              ~config:Config.default
             : Model.prediction) ));
    sweep_case "e4-naive-sweep" heat3d dims3 (Config.v ());
    (* e5: multicore scaling model *)
    (let info = Stencil.Analysis.of_spec heat3d in
     ( "e5-chip-scaling",
       fun () ->
         ignore
           (Model.chip_scaling clx info ~dims:[| 64; 64; 64 |]
              ~config:Config.default ~max_threads:20
             : (int * float) array) ));
    (* e6: blocked sweep *)
    sweep_case "e6-blocked-sweep" heat3d dims3 (Config.v ~block:[| 0; 8; 24 |] ());
    (* e7: folded layout sweep *)
    sweep_case "e7-folded-sweep" heat3d dims3 (Config.v ~fold:[| 1; 2; 4 |] ());
    (* e8: wavefront execution *)
    (let spec = Stencil.Suite.resolve_defaults heat3d in
     let halo = [| 1; 1; 1 |] in
     let a = Grid.create ~halo ~dims:dims3 () in
     let b = Grid.create ~halo ~dims:dims3 () in
     ( "e8-wavefront",
       fun () ->
         ignore
           (Engine.Wavefront.steps ~config:(Config.v ~wavefront:4 ()) spec ~a
              ~b ~steps:4
             : Grid.t * Engine.Sweep.stats) ));
    (* e9: analytic tuning pass *)
    (let info = Stencil.Analysis.of_spec heat3d in
     ( "e9-advisor-rank-all",
       fun () ->
         ignore
           (Advisor.rank_all clx info ~dims:[| 64; 64; 64 |] ~threads:8
             : (Config.t * Model.prediction) list) ));
    (* e10: one ODE step of the fused RK4 variant *)
    (let pde = Ode.Pde.heat ~rank:2 ~n:48 ~alpha:1.0 in
     let variant = Offsite.Variant.fused Ode.Tableau.rk4 pde ~h:1e-5 in
     let ex = Offsite.Executor.create pde variant in
     ("e10-rk4-fused-step", fun () -> Offsite.Executor.step ex));
    (* e15: the blocked sweep again, split over the shared domain pool *)
    sweep_case "e15-parallel-sweep" ~pool:(Pool.shared ()) heat3d dims3
      (Config.v ~block:[| 0; 8; 24 |] ()) ]

let tests =
  List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) cases

(* One-pass Welford summary over raw wall-clock runs: cheaper than a
   two-pass mean-then-variance scan and it never stores the samples. *)
let welford_summary () =
  let runs = 50 in
  Printf.printf "\nwall-clock summary (Welford over %d runs):\n" runs;
  List.iter
    (fun (name, fn) ->
      for _ = 1 to 3 do fn () done;
      let w = Ustats.welford_create () in
      for _ = 1 to runs do
        let t0 = Unix.gettimeofday () in
        fn ();
        Ustats.welford_add w ((Unix.gettimeofday () -. t0) *. 1e9)
      done;
      Printf.printf "%-24s %12.1f ns/run  (stddev %.1f)\n" name
        (Ustats.welford_mean w) (Ustats.welford_stddev w))
    cases

let run () =
  let benchmark test =
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ())
      Instance.[ minor_allocated; major_allocated; monotonic_clock ]
      test
  in
  let results =
    List.map
      (fun test ->
        let results = benchmark test in
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results)
      tests
  in
  List.iter2
    (fun test result ->
      Hashtbl.iter
        (fun _ ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "%-24s %12.1f ns/run\n"
                (Test.Elt.name (List.hd (Test.elements test)))
                est
          | _ -> ())
        result)
    tests results;
  welford_summary ()
